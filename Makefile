# Tier-1 gate: `make ci` is what CI and pre-merge checks run.
GO ?= go

# COVER_BASELINE is the committed total-statement-coverage floor for
# `make cover-check`. Update it deliberately (and review why) when
# coverage genuinely moves; it should trail the measured total by a
# small margin so routine refactors don't trip it.
COVER_BASELINE ?= 84.0

.PHONY: ci fmt vet staticcheck build test race bench bench-analysis bench-analysis-short \
	bench-check bench-check-short bench-baseline cover cover-check fuzz-smoke fuzz smoke-tad \
	chaos-smoke

ci: fmt vet staticcheck build race bench cover-check bench-check-short fuzz-smoke chaos-smoke smoke-tad

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The smoke-tagged files (cmd/pdt-tad's end-to-end test) are not part of
# a plain build, so vet them explicitly alongside the default tag set.
vet:
	$(GO) vet ./...
	$(GO) vet -tags smoke ./...

# staticcheck is optional tooling: run it when the host has it, skip
# loudly when it does not (the gate must not require network installs).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the trace-load benchmarks (BenchmarkLoadLargeTrace,
# BenchmarkTraceLoad) to catch load-path regressions that only show up
# under -bench; -short shrinks the synthetic trace.
bench:
	$(GO) test -run '^$$' -bench BenchmarkLoad -benchtime 1x -short .

# Analysis-kernel and service-cache benchmarks: parallel vs serial
# Profile/ComputeCriticalPath and warm vs cold pdt-tad summary (the
# warm/cold split is the cache speedup recorded in EXPERIMENTS.md).
bench-analysis:
	$(GO) test -run '^$$' -bench 'BenchmarkProfileLargeTrace|BenchmarkCritPathLargeTrace|BenchmarkGapsLargeTrace|BenchmarkDiffLargeTrace' -benchtime 10x .
	$(GO) test -run '^$$' -bench BenchmarkTADSummary -benchtime 10x ./cmd/pdt-tad

# One -short pass of the same benchmarks for ci: catches kernel/cache
# regressions that only show up under -bench without the full cost.
bench-analysis-short:
	$(GO) test -run '^$$' -bench 'BenchmarkProfileLargeTrace|BenchmarkCritPathLargeTrace|BenchmarkGapsLargeTrace|BenchmarkDiffLargeTrace' -benchtime 1x -short .
	$(GO) test -run '^$$' -bench BenchmarkTADSummary -benchtime 1x -short ./cmd/pdt-tad

# Benchmark regression gate: run the reference benchmarks (trace load,
# interval profile, critical path, gap hunting, trace differencing,
# end-to-end TAD summary) with -benchmem and fail on any ns/op, B/op or
# allocs/op result >25% worse than BENCH_baseline.json. The short
# variant (10x smaller traces) is what ci runs; bench-baseline rewrites
# the committed baseline — only after verifying the change is real.
bench-check:
	$(GO) run ./internal/tools/benchcheck -baseline BENCH_baseline.json

bench-check-short:
	$(GO) run ./internal/tools/benchcheck -short -baseline BENCH_baseline.json

bench-baseline:
	$(GO) run ./internal/tools/benchcheck -update -baseline BENCH_baseline.json

# Coverage: `make cover` prints per-package and total statement
# coverage; `make cover-check` additionally fails when the total drops
# below the committed COVER_BASELINE floor.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | grep '^total:'

cover-check: cover
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit !(t+0 >= b+0) }' || \
		{ echo "coverage regression: $$total% < committed baseline $(COVER_BASELINE)%"; exit 1; }; \
	echo "coverage ok: $$total% >= baseline $(COVER_BASELINE)%"

# Replay the checked-in fuzz corpora (seed inputs + past findings) as
# plain tests — fast, deterministic, no fuzzing engine. Covers the
# salvage fuzzer and the pdt-tad HTTP-handler fuzzer.
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/core/traceio ./cmd/pdt-tad ./internal/jobs
	$(GO) test -run 'FuzzColumnarRoundTrip' ./internal/analyzer

# Service-level chaos drill under the race detector: kill the daemon at
# every job phase and assert journal replay converges byte-identically
# (cmd/pdt-tad), plus the disk-fault/corruption sweeps over the durable
# tier (internal/integration).
chaos-smoke:
	$(GO) test -race -run 'TestChaos' ./cmd/pdt-tad ./internal/integration ./internal/jobs

# Actual coverage-guided fuzzing (long; not in ci).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSalvage -fuzztime 60s ./internal/core/traceio
	$(GO) test -run '^$$' -fuzz FuzzTADHandler -fuzztime 60s ./cmd/pdt-tad
	$(GO) test -run '^$$' -fuzz FuzzJournalReplay -fuzztime 60s ./internal/jobs

# End-to-end service smoke test: builds the real pdt-tad binary, starts
# it, and checks the operator contract — 200 on the golden trace, 413
# over the body limit, 429 under saturation, graceful SIGTERM drain.
smoke-tad:
	$(GO) test -tags smoke -run TestSmokeTAD ./cmd/pdt-tad
