# Tier-1 gate: `make ci` is what CI and pre-merge checks run.
GO ?= go

# COVER_BASELINE is the committed total-statement-coverage floor for
# `make cover-check`. Update it deliberately (and review why) when
# coverage genuinely moves; it should trail the measured total by a
# small margin so routine refactors don't trip it.
COVER_BASELINE ?= 84.2

.PHONY: ci fmt vet staticcheck build test race bench bench-analysis bench-analysis-short \
	bench-check bench-check-short bench-baseline cover cover-check fuzz-smoke fuzz smoke-tad \
	chaos-smoke chaos-cluster loadtest-smoke stream-smoke

ci: fmt vet staticcheck build race bench cover-check bench-check-short fuzz-smoke chaos-smoke chaos-cluster loadtest-smoke stream-smoke smoke-tad

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The smoke-tagged files (cmd/pdt-tad's end-to-end test) are not part of
# a plain build, so vet them explicitly alongside the default tag set.
vet:
	$(GO) vet ./...
	$(GO) vet -tags smoke ./...

# staticcheck is optional tooling: run it when the host has it, skip
# loudly when it does not (the gate must not require network installs).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the trace-load benchmarks (BenchmarkLoadLargeTrace,
# BenchmarkTraceLoad) to catch load-path regressions that only show up
# under -bench; -short shrinks the synthetic trace.
bench:
	$(GO) test -run '^$$' -bench BenchmarkLoad -benchtime 1x -short .

# Analysis-kernel and service-cache benchmarks: parallel vs serial
# Profile/ComputeCriticalPath and warm vs cold pdt-tad summary (the
# warm/cold split is the cache speedup recorded in EXPERIMENTS.md).
bench-analysis:
	$(GO) test -run '^$$' -bench 'BenchmarkProfileLargeTrace|BenchmarkCritPathLargeTrace|BenchmarkGapsLargeTrace|BenchmarkDiffLargeTrace|BenchmarkCyclesLargeTrace|BenchmarkDiffAlignLargeTrace' -benchtime 10x .
	$(GO) test -run '^$$' -bench BenchmarkTADSummary -benchtime 10x ./cmd/pdt-tad

# One -short pass of the same benchmarks for ci: catches kernel/cache
# regressions that only show up under -bench without the full cost.
bench-analysis-short:
	$(GO) test -run '^$$' -bench 'BenchmarkProfileLargeTrace|BenchmarkCritPathLargeTrace|BenchmarkGapsLargeTrace|BenchmarkDiffLargeTrace|BenchmarkCyclesLargeTrace|BenchmarkDiffAlignLargeTrace' -benchtime 1x -short .
	$(GO) test -run '^$$' -bench BenchmarkTADSummary -benchtime 1x -short ./cmd/pdt-tad

# Benchmark regression gate: run the reference benchmarks (trace load,
# interval profile, critical path, gap hunting, trace differencing,
# cycle detection, align-mode cycle diffing, end-to-end TAD summary)
# with -benchmem and fail on any ns/op, B/op or
# allocs/op result >25% worse than BENCH_baseline.json. The short
# variant (10x smaller traces) is what ci runs; bench-baseline rewrites
# the committed baseline — only after verifying the change is real.
bench-check:
	$(GO) run ./internal/tools/benchcheck -baseline BENCH_baseline.json

# The short sizes finish in microseconds, so single-digit iteration
# counts are all scheduler noise on a busy host; 40x matches the
# iteration count the committed baseline was recorded at.
bench-check-short:
	$(GO) run ./internal/tools/benchcheck -short -benchtime 40x -baseline BENCH_baseline.json

bench-baseline:
	$(GO) run ./internal/tools/benchcheck -update -baseline BENCH_baseline.json

# Coverage: `make cover` prints per-package and total statement
# coverage; `make cover-check` additionally fails when the total drops
# below the committed COVER_BASELINE floor.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | grep '^total:'

cover-check: cover
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit !(t+0 >= b+0) }' || \
		{ echo "coverage regression: $$total% < committed baseline $(COVER_BASELINE)%"; exit 1; }; \
	echo "coverage ok: $$total% >= baseline $(COVER_BASELINE)%"; \
	rm -f cover.out

# Replay the checked-in fuzz corpora (seed inputs + past findings) as
# plain tests — fast, deterministic, no fuzzing engine. Covers the
# salvage fuzzer, the pdt-tad HTTP-handler fuzzer, and the cycle
# detection / align-diff fuzzers.
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/core/traceio ./cmd/pdt-tad ./internal/jobs ./internal/cluster
	$(GO) test -run 'FuzzColumnarRoundTrip|FuzzStreamDecode' ./internal/analyzer
	$(GO) test -run 'FuzzCycles' ./internal/analyzer/cycles
	$(GO) test -run 'FuzzDiffAlign' ./internal/analyzer/diff

# Service-level chaos drill under the race detector: kill the daemon at
# every job phase and assert journal replay converges byte-identically
# (cmd/pdt-tad), plus the disk-fault/corruption sweeps over the durable
# tier (internal/integration). Cluster chaos has its own target below.
chaos-smoke:
	$(GO) test -race -run 'TestChaos' -skip 'TestChaosCluster' ./cmd/pdt-tad ./internal/integration ./internal/jobs

# Multi-replica chaos drill under the race detector: partition or crash
# one replica of a three-node ring mid-request and assert every response
# stays byte-identical to single-node with no 5xx, the victim's breaker
# opens, and it re-closes after the partition heals.
chaos-cluster:
	$(GO) test -race -run 'TestChaosCluster' ./cmd/pdt-tad

# Actual coverage-guided fuzzing (long; not in ci).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSalvage -fuzztime 60s ./internal/core/traceio
	$(GO) test -run '^$$' -fuzz FuzzTADHandler -fuzztime 60s ./cmd/pdt-tad
	$(GO) test -run '^$$' -fuzz FuzzJournalReplay -fuzztime 60s ./internal/jobs
	$(GO) test -run '^$$' -fuzz FuzzStreamDecode -fuzztime 60s ./internal/analyzer
	$(GO) test -run '^$$' -fuzz FuzzCycles -fuzztime 60s ./internal/analyzer/cycles
	$(GO) test -run '^$$' -fuzz FuzzDiffAlign -fuzztime 60s ./internal/analyzer/diff

# End-to-end service smoke test: builds the real pdt-tad binary, starts
# it, and checks the operator contract — 200 on the golden trace, 413
# over the body limit, 429 under saturation, graceful SIGTERM drain.
smoke-tad:
	$(GO) test -tags smoke -run TestSmokeTAD ./cmd/pdt-tad

# Load gate: builds the real pdt-tad binary, starts a three-replica
# ring, and replays workload traces through pdt-load at concurrency —
# whole-body POSTs first, then full chunked-upload sessions. Fails on
# any 5xx/transport error or a p99 above LOADTEST_P99.
LOADTEST_P99 ?= 2s
loadtest-smoke:
	LOADTEST_P99=$(LOADTEST_P99) $(GO) test -tags smoke -run TestSmokeLoadRing ./cmd/pdt-load

# Bounded-RSS streaming gate: synthesizes a ~100 MB on-disk trace
# (>10x the stream window) and loads it through StreamLoader under a
# hard runtime memory limit, failing if the live heap ever grows past
# twice the window.
stream-smoke:
	$(GO) test -tags smoke -run TestSmokeStreamBoundedRSS ./internal/integration
