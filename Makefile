# Tier-1 gate: `make ci` is what CI and pre-merge checks run.
GO ?= go

.PHONY: ci fmt vet build test race bench

ci: fmt vet build race bench

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the trace-load benchmarks (BenchmarkLoadLargeTrace,
# BenchmarkTraceLoad) to catch load-path regressions that only show up
# under -bench; -short shrinks the synthetic trace.
bench:
	$(GO) test -run '^$$' -bench BenchmarkLoad -benchtime 1x -short .
