# Tier-1 gate: `make ci` is what CI and pre-merge checks run.
GO ?= go

.PHONY: ci fmt vet build test race bench fuzz-smoke fuzz

ci: fmt vet build race bench fuzz-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the trace-load benchmarks (BenchmarkLoadLargeTrace,
# BenchmarkTraceLoad) to catch load-path regressions that only show up
# under -bench; -short shrinks the synthetic trace.
bench:
	$(GO) test -run '^$$' -bench BenchmarkLoad -benchtime 1x -short .

# Replay the checked-in fuzz corpora (seed inputs + past findings) as
# plain tests — fast, deterministic, no fuzzing engine.
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/core/traceio

# Actual coverage-guided fuzzing of the salvage path (long; not in ci).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSalvage -fuzztime 60s ./internal/core/traceio
