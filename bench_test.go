// Package pdt_test holds the benchmark harness: one testing.B benchmark
// per evaluation table/figure (see DESIGN.md section 3), each delegating
// to the shared experiment implementations in internal/harness so that
// `go test -bench` and `pdt-bench` produce the same rows. Under -short
// the experiments run with shrunken problem sizes.
//
// Custom metrics: experiments report simulated cycles and record counts
// through the printed tables; the b.N loop measures host-side cost of
// regenerating each table.
package pdt_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cycles"
	"github.com/celltrace/pdt/internal/analyzer/diff"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
	"github.com/celltrace/pdt/internal/harness"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	quick := testing.Short()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, quick); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkE1EventInventory regenerates Table 1 (PDT event inventory).
func BenchmarkE1EventInventory(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2EventCost regenerates Table 2 (per-event tracing cost).
func BenchmarkE2EventCost(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3TracingOverhead regenerates Table 3 (application slowdown
// under cumulative tracing configurations).
func BenchmarkE3TracingOverhead(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4BufferSweep regenerates Figure 4 (overhead vs trace-buffer
// size, single vs double buffered flushing).
func BenchmarkE4BufferSweep(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5LoadBalance regenerates Figure 5 (per-SPE busy time, static
// vs dynamic Julia partitioning).
func BenchmarkE5LoadBalance(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6DoubleBuffer regenerates Figure 6 (DMA stall breakdown,
// single vs double buffered matmul).
func BenchmarkE6DoubleBuffer(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7Pipeline regenerates Figure 7 (per-stage wait breakdown
// around a slow pipeline stage).
func BenchmarkE7Pipeline(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8TraceVolume regenerates Table 4 (trace size and record
// rates per workload).
func BenchmarkE8TraceVolume(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9EventRate regenerates Figure 8 (overhead vs event rate).
func BenchmarkE9EventRate(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10AnalyzerThroughput regenerates Table 5 (TA decode+analyze
// throughput).
func BenchmarkE10AnalyzerThroughput(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11BandwidthAblation regenerates Table 6 (machine-model
// ablation: STREAM bandwidth vs SPEs/memory/EIB parameters).
func BenchmarkE11BandwidthAblation(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12BarrierAblation regenerates Table 7 (barrier mechanism
// ablation: atomic vs signal-fabric barriers).
func BenchmarkE12BarrierAblation(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13Scaling regenerates Figure 9 (speedup vs SPE count).
func BenchmarkE13Scaling(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14OverheadDiff regenerates Table 8 (overhead attribution by
// trace differencing across instrumentation levels).
func BenchmarkE14OverheadDiff(b *testing.B) { benchExperiment(b, "E14") }

// ---- micro-benchmarks of the hot paths backing the tables ----

// BenchmarkRecordEncode measures trace-record serialization.
func BenchmarkRecordEncode(b *testing.B) {
	r := event.Record{ID: event.SPEMFCGet, Core: 3, Flags: event.FlagDecrTime,
		Time: 12345, Args: []uint64{0, 0x10000, 4096, 5}}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = r.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecordDecode measures trace-record parsing.
func BenchmarkRecordDecode(b *testing.B) {
	r := event.Record{ID: event.SPEMFCGet, Core: 3, Flags: event.FlagDecrTime,
		Time: 12345, Args: []uint64{0, 0x10000, 4096, 5}}
	buf, err := r.AppendTo(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := event.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceLoad measures full trace load+merge on a mid-size trace.
func BenchmarkTraceLoad(b *testing.B) {
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "synthetic",
		Params:   map[string]string{"events": "5000", "gap": "300"},
		Trace:    &cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(res.TraceBytes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzer.Load(bytes.NewReader(res.TraceBytes)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadLargeTrace measures the analyzer's load pipeline on a
// synthetic multi-MiB, multi-chunk trace (one chunk per SPE run plus the
// PPE chunk): the parallel decode + k-way merge + index path against the
// serial decode + global-stable-sort reference it replaced. Both
// sub-benchmarks start from the same parsed file, so the delta is purely
// the pipeline.
func BenchmarkLoadLargeTrace(b *testing.B) {
	events := 20000
	if testing.Short() {
		events = 2000
	}
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "synthetic",
		Params:   map[string]string{"events": fmt.Sprint(events), "gap": "100"},
		Trace:    &cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	f, err := traceio.Parse(res.TraceBytes)
	if err != nil {
		b.Fatal(err)
	}
	recs := res.Stats.SPERecords + res.Stats.PPERecords
	b.Logf("trace: %d bytes, %d records, %d chunks", len(res.TraceBytes), recs, len(f.Chunks))
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(len(res.TraceBytes)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := analyzer.FromFile(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(res.TraceBytes)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := analyzer.FromFileSerial(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLoadStream measures the incremental streaming loader on the
// same standard large trace as BenchmarkLoadLargeTrace, fed through
// StreamLoader in transport-sized writes under the default bounded
// window — the delta against LoadLargeTrace/parallel is the price of
// flat-RSS streaming ingest.
func BenchmarkLoadStream(b *testing.B) {
	events := 20000
	if testing.Short() {
		events = 2000
	}
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "synthetic",
		Params:   map[string]string{"events": fmt.Sprint(events), "gap": "100"},
		Trace:    &cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	data := res.TraceBytes
	const write = 64 << 10
	b.Logf("trace: %d bytes", len(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := analyzer.NewStreamLoader(analyzer.StreamOptions{})
		for off := 0; off < len(data); off += write {
			end := off + write
			if end > len(data) {
				end = len(data)
			}
			if _, err := l.Write(data[off:end]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := l.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// largeTrace loads the standard multi-MiB benchmark trace once; the
// analysis-kernel benchmarks below all chew on the same loaded trace so
// their parallel/serial deltas are purely the kernels.
func largeTrace(b *testing.B) *analyzer.Trace {
	b.Helper()
	events := 20000
	if testing.Short() {
		events = 2000
	}
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "synthetic",
		Params:   map[string]string{"events": fmt.Sprint(events), "gap": "100"},
		Trace:    &cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := analyzer.Load(bytes.NewReader(res.TraceBytes))
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("trace: %d bytes, %d events", len(res.TraceBytes), tr.NumEvents())
	return tr
}

// BenchmarkProfileLargeTrace measures the interval profile: the per-core
// sharded scan against the single-pass serial reference.
func BenchmarkProfileLargeTrace(b *testing.B) {
	tr := largeTrace(b)
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			analyzer.Profile(tr)
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			analyzer.ProfileSerial(tr)
		}
	})
}

// BenchmarkCritPathLargeTrace measures critical-path extraction: the
// sharded predecessor/dependency scans against the serial reference (the
// backward walk is shared and serial in both).
func BenchmarkCritPathLargeTrace(b *testing.B) {
	tr := largeTrace(b)
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			analyzer.ComputeCriticalPath(tr)
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			analyzer.ComputeCriticalPathSerial(tr)
		}
	})
}

// BenchmarkGapsLargeTrace measures gap hunting: the per-run sharded
// scan against the serial reference, at a threshold the suggester would
// pick so the result set is realistic.
func BenchmarkGapsLargeTrace(b *testing.B) {
	tr := largeTrace(b)
	minTicks := analyzer.SuggestGapThreshold(tr)
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			analyzer.FindGaps(tr, minTicks)
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			analyzer.FindGapsSerial(tr, minTicks)
		}
	})
}

// BenchmarkDiffLargeTrace measures trace differencing on the standard
// large trace (self-diff: both sides scan the full event volume, so the
// cost is representative while needing only one load).
func BenchmarkDiffLargeTrace(b *testing.B) {
	tr := largeTrace(b)
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := diff.Diff(tr, tr, diff.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := diff.DiffSerial(tr, tr, diff.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// largeCyclicTrace loads the standard iterative benchmark trace (a deep
// pipeline run, so every SPE carries a long cycle structure) for the
// cycle-detection and align-diff benchmarks.
func largeCyclicTrace(b *testing.B) *analyzer.Trace {
	b.Helper()
	blocks := 64
	if testing.Short() {
		blocks = 8
	}
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "pipeline",
		Params:   map[string]string{"blocks": fmt.Sprint(blocks), "blockbytes": "4096"},
		Trace:    &cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := analyzer.Load(bytes.NewReader(res.TraceBytes))
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("trace: %d bytes, %d events", len(res.TraceBytes), tr.NumEvents())
	return tr
}

// BenchmarkCyclesLargeTrace measures cycle/phase detection on the
// standard iterative trace: the per-run parallel fan-out against the
// serial reference.
func BenchmarkCyclesLargeTrace(b *testing.B) {
	tr := largeCyclicTrace(b)
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cycles.Detect(tr, cycles.Options{})
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cycles.DetectSerial(tr, cycles.Options{})
		}
	})
}

// BenchmarkDiffAlignLargeTrace measures a cycle-aware align-mode diff
// end to end — detection on both sides plus the LCS alignment — on the
// standard iterative trace (self-diff, same rationale as
// BenchmarkDiffLargeTrace).
func BenchmarkDiffAlignLargeTrace(b *testing.B) {
	tr := largeCyclicTrace(b)
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := diff.Diff(tr, tr, diff.Options{Mode: diff.ModeAlign}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := diff.DiffSerial(tr, tr, diff.Options{Mode: diff.ModeAlign}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatedMachine measures simulator throughput: simulated
// cycles per host second on an untraced DMA-heavy workload.
func BenchmarkSimulatedMachine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(harness.Spec{
			Workload: "histogram",
			Params:   map[string]string{"size": "262144"},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "simcycles/op")
	}
}
