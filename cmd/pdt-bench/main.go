// pdt-bench regenerates the evaluation tables and figures (see DESIGN.md
// section 3 for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	pdt-bench -experiment all
//	pdt-bench -experiment all -parallel
//	pdt-bench -experiment E6
//	pdt-bench -experiment E3 -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"github.com/celltrace/pdt/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdt-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pdt-bench", flag.ContinueOnError)
	exp := fs.String("experiment", "all", "experiment id (E1..E14) or 'all'")
	quick := fs.Bool("quick", false, "shrink problem sizes for a fast smoke run")
	parallel := fs.Bool("parallel", false, "regenerate independent experiment tables concurrently (one worker per host core); output stays in experiment order")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range harness.Experiments() {
			fmt.Fprintf(out, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var todo []harness.Experiment
	if *exp == "all" {
		todo = harness.Experiments()
	} else {
		e, ok := harness.ByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *exp)
		}
		todo = []harness.Experiment{e}
	}
	workers := 1
	if *parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	return harness.RunExperiments(out, todo, *quick, workers)
}
