package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E5", "E10", "E11"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list missing %s:\n%s", id, out.String())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "E99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "E1", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E1: Table 1") {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SPE_MFC_GET") {
		t.Fatal("table body missing")
	}
}

// TestParallelFlagMatchesSerial compares -parallel output against the
// serial run for the same experiment selection.
func TestParallelFlagMatchesSerial(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run([]string{"-experiment", "E1", "-quick"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-experiment", "E1", "-quick", "-parallel"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("-parallel output differs:\nserial:\n%s\nparallel:\n%s",
			serial.String(), parallel.String())
	}
}

func TestQuickUseCaseExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "E5", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "imbalance") {
		t.Fatalf("output:\n%s", out.String())
	}
}
