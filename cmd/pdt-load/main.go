// pdt-load replays the workload suite's traces against one or more
// pdt-tad replicas at a fixed concurrency and reports the latency
// distribution. It is the CI load gate for the daemon: the run fails on
// any transport error or 5xx response, and — when -p99-budget is set —
// on a p99 latency above the budget. 429/503 shedding under deliberate
// overload is counted separately and does not fail the run as long as
// some requests got through; a saturated daemon that sheds cleanly is
// behaving, one that times out or 500s is not.
//
// Usage:
//
//	pdt-load -targets http://h1:8329,http://h2:8329 -requests 200
//	pdt-load -targets http://h1:8329 -workloads julia,matmul -kinds summary,profile
//	pdt-load -targets http://h1:8329 -p99-budget 500ms
//
// Traces are generated in-process at startup (one per selected
// workload, at the small "quick" sizes) and replayed round-robin over
// targets × workloads × kinds, so a multi-replica ring sees a mix of
// keys it owns and keys its peers own.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/harness"
)

// loadParams sizes each workload so trace generation stays in the tens
// of milliseconds; the point is HTTP-path load, not simulation scale.
var loadParams = map[string]map[string]string{
	"matmul":    {"n": "64", "t": "16"},
	"fft":       {"n": "256", "batches": "4"},
	"pipeline":  {"blocks": "8", "blockbytes": "1024"},
	"julia":     {"w": "64", "h": "32", "maxiter": "16", "mode": "dynamic"},
	"histogram": {"size": "65536"},
	"synthetic": {"events": "400", "gap": "100"},
	"stream":    {"elements": "8192"},
	"stencil":   {"w": "64", "h": "16", "iters": "2"},
	"sort":      {"elements": "8192", "chunk": "1024"},
	"nbody":     {"n": "64"},
	"taskfarm":  {"tasks": "16", "blockbytes": "1024"},
}

// analysisKinds are the synchronous endpoints pdt-load can target
// (diff is excluded: it takes a two-trace body).
var analysisKinds = map[string]bool{
	"summary":  true,
	"profile":  true,
	"gaps":     true,
	"critpath": true,
	"doctor":   true,
}

// summary is the JSON document printed after a run.
type summary struct {
	Targets     []string `json:"targets"`
	Workloads   []string `json:"workloads"`
	Kinds       []string `json:"kinds"`
	Requests    int      `json:"requests"`
	OK          int      `json:"ok"`
	Shed        int      `json:"shed"`
	Failures    int      `json:"failures"`
	Elapsed     string   `json:"elapsed"`
	RPS         float64  `json:"rps"`
	P50ms       float64  `json:"p50_ms"`
	P95ms       float64  `json:"p95_ms"`
	P99ms       float64  `json:"p99_ms"`
	MaxMs       float64  `json:"max_ms"`
	P99BudgetMs float64  `json:"p99_budget_ms,omitempty"`
	Errors      []string `json:"errors,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdt-load:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pdt-load", flag.ContinueOnError)
	var (
		targetSpec  = fs.String("targets", "", "comma-separated replica base URLs (required)")
		wlSpec      = fs.String("workloads", "all", "comma-separated workloads to replay, or \"all\"")
		kindSpec    = fs.String("kinds", "summary", "comma-separated analysis kinds to request")
		requests    = fs.Int("requests", 120, "total requests to send")
		concurrency = fs.Int("concurrency", 8, "in-flight requests")
		p99Budget   = fs.Duration("p99-budget", 0, "fail when p99 latency exceeds this (0 = report only)")
		timeout     = fs.Duration("timeout", 15*time.Second, "per-request deadline")
		streamMode  = fs.Bool("stream", false, "replay through chunked-upload sessions (/v1/upload) instead of whole-body POSTs")
		chunkBytes  = fs.Int("chunk-bytes", 64<<10, "upload chunk size in stream mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets, err := splitTargets(*targetSpec)
	if err != nil {
		return err
	}
	names, err := splitWorkloads(*wlSpec)
	if err != nil {
		return err
	}
	kinds := strings.Split(*kindSpec, ",")
	if *streamMode {
		// One streamed session yields the summary; -kinds does not apply.
		kinds = []string{"upload"}
		if *chunkBytes <= 0 {
			return fmt.Errorf("-chunk-bytes must be positive")
		}
	} else {
		for _, k := range kinds {
			if !analysisKinds[k] {
				return fmt.Errorf("unknown analysis kind %q", k)
			}
		}
	}
	if *requests <= 0 || *concurrency <= 0 {
		return fmt.Errorf("-requests and -concurrency must be positive")
	}

	traces := make([][]byte, len(names))
	for i, name := range names {
		cfg := core.DefaultTraceConfig()
		res, err := harness.Run(harness.Spec{Workload: name, Params: loadParams[name], Trace: &cfg})
		if err != nil {
			return fmt.Errorf("generating %s trace: %w", name, err)
		}
		traces[i] = res.TraceBytes
	}

	client := &http.Client{Timeout: *timeout}
	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		shed      int
		failures  []string
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				target := targets[i%len(targets)]
				trace := traces[i%len(traces)]
				kind := kinds[i%len(kinds)]
				if *streamMode {
					t0 := time.Now()
					shedded, err := streamOnce(client, target, trace, *chunkBytes, i)
					dur := time.Since(t0)
					mu.Lock()
					switch {
					case err != nil:
						failures = append(failures, err.Error())
					case shedded:
						shed++
					default:
						latencies = append(latencies, dur)
					}
					mu.Unlock()
					continue
				}
				t0 := time.Now()
				resp, err := client.Post(target+"/v1/"+kind,
					"application/octet-stream", bytes.NewReader(trace))
				dur := time.Since(t0)
				if err != nil {
					mu.Lock()
					failures = append(failures, err.Error())
					mu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				switch {
				case resp.StatusCode == http.StatusOK:
					latencies = append(latencies, dur)
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					shed++
				default:
					failures = append(failures, fmt.Sprintf("%s /v1/%s: status %d",
						target, kind, resp.StatusCode))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	sum := summary{
		Targets:   targets,
		Workloads: names,
		Kinds:     kinds,
		Requests:  *requests,
		OK:        len(latencies),
		Shed:      shed,
		Failures:  len(failures),
		Elapsed:   elapsed.Round(time.Millisecond).String(),
		RPS:       float64(*requests) / elapsed.Seconds(),
		P50ms:     ms(percentile(latencies, 0.50)),
		P95ms:     ms(percentile(latencies, 0.95)),
		P99ms:     ms(percentile(latencies, 0.99)),
		MaxMs:     ms(percentile(latencies, 1.0)),
	}
	if *p99Budget > 0 {
		sum.P99BudgetMs = ms(*p99Budget)
	}
	// Cap the error sample so a total outage doesn't dump thousands of
	// identical lines into the summary.
	for i, f := range failures {
		if i == 5 {
			sum.Errors = append(sum.Errors, fmt.Sprintf("... and %d more", len(failures)-5))
			break
		}
		sum.Errors = append(sum.Errors, f)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		return err
	}

	if len(failures) > 0 {
		return fmt.Errorf("%d of %d requests failed (first: %s)",
			len(failures), *requests, failures[0])
	}
	if len(latencies) == 0 {
		return fmt.Errorf("all %d requests were shed; nothing measured", *requests)
	}
	if *p99Budget > 0 {
		if p99 := percentile(latencies, 0.99); p99 > *p99Budget {
			return fmt.Errorf("p99 %s over budget %s", p99.Round(time.Millisecond), *p99Budget)
		}
	}
	return nil
}

// splitTargets parses the -targets list: absolute http(s) URLs, no
// trailing slash, at least one.
func splitTargets(spec string) ([]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("-targets is required")
	}
	var targets []string
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSuffix(strings.TrimSpace(raw), "/")
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("target %q is not an absolute http(s) URL", raw)
		}
		targets = append(targets, raw)
	}
	return targets, nil
}

// splitWorkloads resolves the -workloads list against loadParams;
// "all" selects every sized workload, sorted.
func splitWorkloads(spec string) ([]string, error) {
	if spec == "all" {
		names := make([]string, 0, len(loadParams))
		for n := range loadParams {
			names = append(names, n)
		}
		sort.Strings(names)
		return names, nil
	}
	names := strings.Split(spec, ",")
	for _, n := range names {
		if _, ok := loadParams[n]; !ok {
			return nil, fmt.Errorf("unknown workload %q", n)
		}
	}
	return names, nil
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
