package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stub returns a test server that answers every POST with the given
// status after an optional delay, counting requests.
func stub(t *testing.T, status int, delay time.Duration, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		w.WriteHeader(status)
		w.Write([]byte(`{"ok":true}`))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// decode parses the run summary printed to out.
func decode(t *testing.T, out *bytes.Buffer) summary {
	t.Helper()
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out.Bytes())
	}
	return s
}

func TestRunHappyPath(t *testing.T) {
	var hits atomic.Int64
	ts := stub(t, http.StatusOK, 0, &hits)

	var out bytes.Buffer
	err := run([]string{
		"-targets", ts.URL + "/", // trailing slash must be tolerated
		"-workloads", "julia",
		"-requests", "20",
		"-concurrency", "4",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.Bytes())
	}
	if got := hits.Load(); got != 20 {
		t.Fatalf("stub saw %d requests, want 20", got)
	}
	s := decode(t, &out)
	if s.OK != 20 || s.Failures != 0 || s.Shed != 0 {
		t.Fatalf("summary = %+v, want 20 ok", s)
	}
	if s.P99ms <= 0 || s.P50ms > s.P99ms {
		t.Fatalf("implausible percentiles: p50=%v p99=%v", s.P50ms, s.P99ms)
	}
}

func TestRunFailsOn5xx(t *testing.T) {
	var hits atomic.Int64
	ts := stub(t, http.StatusInternalServerError, 0, &hits)

	var out bytes.Buffer
	err := run([]string{"-targets", ts.URL, "-workloads", "julia",
		"-requests", "8", "-concurrency", "2"}, &out)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("err = %v, want request failures", err)
	}
	s := decode(t, &out)
	if s.Failures != 8 {
		t.Fatalf("failures = %d, want 8", s.Failures)
	}
	if len(s.Errors) == 0 || !strings.Contains(s.Errors[0], "status 500") {
		t.Fatalf("errors sample = %v, want a status 500 line", s.Errors)
	}
}

func TestRunShedIsNotFailure(t *testing.T) {
	// Alternate 200/429: shedding under load is the daemon behaving, so
	// the run passes as long as something got through.
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-targets", ts.URL, "-workloads", "julia",
		"-requests", "10", "-concurrency", "1"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.Bytes())
	}
	s := decode(t, &out)
	if s.Shed != 5 || s.OK != 5 {
		t.Fatalf("summary = %+v, want 5 ok / 5 shed", s)
	}
}

func TestRunAllShedFails(t *testing.T) {
	var hits atomic.Int64
	ts := stub(t, http.StatusTooManyRequests, 0, &hits)

	var out bytes.Buffer
	err := run([]string{"-targets", ts.URL, "-workloads", "julia",
		"-requests", "4", "-concurrency", "2"}, &out)
	if err == nil || !strings.Contains(err.Error(), "shed") {
		t.Fatalf("err = %v, want all-shed failure", err)
	}
}

func TestRunP99BudgetGate(t *testing.T) {
	var hits atomic.Int64
	ts := stub(t, http.StatusOK, 25*time.Millisecond, &hits)

	var out bytes.Buffer
	err := run([]string{"-targets", ts.URL, "-workloads", "julia",
		"-requests", "6", "-concurrency", "2", "-p99-budget", "1ms"}, &out)
	if err == nil || !strings.Contains(err.Error(), "over budget") {
		t.Fatalf("err = %v, want p99 budget violation", err)
	}
	s := decode(t, &out)
	if s.P99BudgetMs != 1 {
		t.Fatalf("budget in summary = %v, want 1", s.P99BudgetMs)
	}
	if s.P99ms < 20 {
		t.Fatalf("p99 = %vms, want >= the stub delay", s.P99ms)
	}
}

func TestRunSpreadsAcrossTargets(t *testing.T) {
	var a, b atomic.Int64
	tsA := stub(t, http.StatusOK, 0, &a)
	tsB := stub(t, http.StatusOK, 0, &b)

	var out bytes.Buffer
	err := run([]string{"-targets", tsA.URL + "," + tsB.URL,
		"-workloads", "julia", "-requests", "10", "-concurrency", "2"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.Load() != 5 || b.Load() != 5 {
		t.Fatalf("split = %d/%d, want 5/5", a.Load(), b.Load())
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                        // no targets
		{"-targets", "not-a-url"}, // scheme missing
		{"-targets", "ftp://h"},   // wrong scheme
		{"-targets", "http://h", "-workloads", "nope"}, // unknown workload
		{"-targets", "http://h", "-kinds", "diff"},     // diff not replayable
		{"-targets", "http://h", "-requests", "0"},     // empty run
		{"-targets", "http://h", "-concurrency", "-1"}, // no workers
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted, want error", args)
		}
	}
}

func TestSplitWorkloadsAllCoversSuite(t *testing.T) {
	names, err := splitWorkloads("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 11 {
		t.Fatalf("workload suite has %d entries, want 11", len(names))
	}
	if !sortedStrings(names) {
		t.Fatalf("names not sorted: %v", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestPercentile(t *testing.T) {
	d := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(d, 0.50); got != 5 {
		t.Fatalf("p50 = %d, want 5", got)
	}
	if got := percentile(d, 0.99); got != 9 {
		t.Fatalf("p99 = %d, want 9", got)
	}
	if got := percentile(d, 1.0); got != 10 {
		t.Fatalf("p100 = %d, want 10", got)
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Fatalf("empty p99 = %d, want 0", got)
	}
}
