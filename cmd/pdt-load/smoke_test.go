//go:build smoke

package main

// End-to-end load smoke for `make loadtest-smoke`: builds the real
// pdt-tad binary, starts a three-replica consistent-hash ring on
// loopback, and drives it with the pdt-load replay loop in-process. The
// committed budget (overridable via LOADTEST_P99) gates tail latency;
// any 5xx or transport error fails outright.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// pickPorts reserves n distinct loopback ports by binding and releasing
// them; the tiny reuse race is acceptable for a smoke test.
func pickPorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func TestSmokeLoadRing(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "pdt-tad")
	build := exec.Command("go", "build", "-o", bin, "../pdt-tad")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building pdt-tad: %v", err)
	}

	addrs := pickPorts(t, 3)
	names := []string{"a", "b", "c"}
	var peers []string
	for i, name := range names {
		peers = append(peers, fmt.Sprintf("%s=http://%s", name, addrs[i]))
	}
	peersSpec := strings.Join(peers, ",")

	var targets []string
	for i, name := range names {
		cmd := exec.Command(bin,
			"-addr", addrs[i],
			"-self", name,
			"-peers", peersSpec,
			"-max-concurrent", "4",
			"-max-queue", "32",
			"-drain", "5s")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

		lines := bufio.NewScanner(stdout)
		if !lines.Scan() {
			t.Fatalf("replica %s: no startup line", name)
		}
		line := lines.Text()
		const prefix = "pdt-tad: listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("replica %s: unexpected startup line %q", name, line)
		}
		go io.Copy(io.Discard, stdout)
		targets = append(targets, "http://"+strings.TrimPrefix(line, prefix))
	}

	budget := os.Getenv("LOADTEST_P99")
	if budget == "" {
		budget = "2s"
	}
	var out bytes.Buffer
	err := run([]string{
		"-targets", strings.Join(targets, ","),
		"-workloads", "julia,matmul,stream",
		"-kinds", "summary,profile",
		"-requests", "90",
		"-concurrency", "6",
		"-p99-budget", budget,
		"-timeout", "30s",
	}, &out)
	t.Logf("pdt-load summary:\n%s", out.Bytes())
	if err != nil {
		t.Fatalf("load run failed: %v", err)
	}

	s := decode(t, &out)
	if s.OK+s.Shed != 90 || s.Failures != 0 {
		t.Fatalf("summary = %+v, want 90 answered, 0 failures", s)
	}
	if s.OK == 0 {
		t.Fatal("every request was shed; ring never did any work")
	}

	// Second leg: the same ring under streaming ingest — every request a
	// full chunked-upload session — so the p99 gate covers that path too.
	out.Reset()
	err = run([]string{
		"-targets", strings.Join(targets, ","),
		"-workloads", "julia,matmul,stream",
		"-stream",
		"-chunk-bytes", "16384",
		"-requests", "30",
		"-concurrency", "6",
		"-p99-budget", budget,
		"-timeout", "30s",
	}, &out)
	t.Logf("pdt-load stream summary:\n%s", out.Bytes())
	if err != nil {
		t.Fatalf("stream load run failed: %v", err)
	}
	s = decode(t, &out)
	if s.OK+s.Shed != 30 || s.Failures != 0 {
		t.Fatalf("stream summary = %+v, want 30 answered, 0 failures", s)
	}
	if s.OK == 0 {
		t.Fatal("every streamed session was shed; ring never did any work")
	}
}
