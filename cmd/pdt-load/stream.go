package main

// Streaming replay: with -stream each "request" is a complete chunked
// upload session against /v1/upload — create, append the trace in
// -chunk-bytes slices (every other chunk gzip-compressed, exercising
// the mid-inflate caps), complete, and read back the final summary. The
// latency recorded is the whole session end to end, so the p99 gate
// covers the streaming ingest path the same way it covers the batch
// endpoints.

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// streamShed reports the statuses that mean "the daemon is protecting
// itself" rather than "the daemon is broken" — same split as the batch
// loop.
func streamShed(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// streamOnce drives one upload session. The bool result reports clean
// shedding (session slots exhausted or draining); any other non-2xx is
// an error. seq seeds the gzip alternation so the fleet as a whole
// sends a mix of plain and compressed chunks.
func streamOnce(client *http.Client, target string, trace []byte, chunkSize, seq int) (bool, error) {
	resp, err := client.Post(target+"/v1/upload", "application/json", nil)
	if err != nil {
		return false, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if streamShed(resp.StatusCode) {
		return true, nil
	}
	if resp.StatusCode != http.StatusCreated {
		return false, fmt.Errorf("%s /v1/upload: status %d", target, resp.StatusCode)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || doc.ID == "" {
		return false, fmt.Errorf("%s /v1/upload: bad create body %q", target, body)
	}
	// Free the session slot if the session dies partway, so a failing run
	// doesn't also wedge the registry.
	abort := func() {
		req, err := http.NewRequest(http.MethodDelete, target+"/v1/upload/"+doc.ID, nil)
		if err != nil {
			return
		}
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	for off, i := 0, seq; off < len(trace); i++ {
		end := off + chunkSize
		if end > len(trace) {
			end = len(trace)
		}
		payload := trace[off:end]
		gz := i%2 == 1
		if gz {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			zw.Write(payload)
			zw.Close()
			payload = buf.Bytes()
		}
		req, err := http.NewRequest(http.MethodPost,
			fmt.Sprintf("%s/v1/upload/%s?offset=%d", target, doc.ID, off),
			bytes.NewReader(payload))
		if err != nil {
			abort()
			return false, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		if gz {
			req.Header.Set("Content-Encoding", "gzip")
		}
		resp, err := client.Do(req)
		if err != nil {
			abort()
			return false, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if streamShed(resp.StatusCode) {
			abort()
			return true, nil
		}
		if resp.StatusCode != http.StatusOK {
			abort()
			return false, fmt.Errorf("%s /v1/upload/{id} at %d: status %d", target, off, resp.StatusCode)
		}
		off = end
	}

	resp, err = client.Post(target+"/v1/upload/"+doc.ID+"/complete", "application/json", nil)
	if err != nil {
		abort()
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if streamShed(resp.StatusCode) {
		abort()
		return true, nil
	}
	if resp.StatusCode != http.StatusOK {
		abort()
		return false, fmt.Errorf("%s /v1/upload/{id}/complete: status %d", target, resp.StatusCode)
	}
	return false, nil
}
