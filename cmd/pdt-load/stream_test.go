package main

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// uploadStub speaks just enough of the chunked-upload protocol for the
// driver: 201 on create, offset acks on append (inflating gzip chunks
// to prove the driver really compresses them), 200 on complete.
func uploadStub(t *testing.T, creates, chunks *atomic.Int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/upload" && r.Method == http.MethodPost:
			creates.Add(1)
			w.WriteHeader(http.StatusCreated)
			w.Write([]byte(`{"id":"stub-session"}`))
		case strings.HasSuffix(r.URL.Path, "/complete"):
			w.Write([]byte(`{"complete":true}`))
		case r.Method == http.MethodDelete:
			w.WriteHeader(http.StatusNoContent)
		default:
			chunks.Add(1)
			body := io.Reader(r.Body)
			if r.Header.Get("Content-Encoding") == "gzip" {
				zr, err := gzip.NewReader(body)
				if err != nil {
					t.Errorf("bad gzip chunk: %v", err)
					w.WriteHeader(http.StatusBadRequest)
					return
				}
				body = zr
			}
			n, _ := io.Copy(io.Discard, body)
			if n == 0 {
				t.Error("empty chunk")
			}
			w.Write([]byte(`{"offset":0}`))
		}
	}))
}

// TestRunStreamMode drives -stream against the stub: every session is
// one create plus several chunk appends, and the summary counts whole
// sessions, not HTTP calls.
func TestRunStreamMode(t *testing.T) {
	var creates, chunks atomic.Int64
	ts := uploadStub(t, &creates, &chunks)
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{
		"-targets", ts.URL,
		"-workloads", "julia",
		"-stream",
		"-chunk-bytes", "2048",
		"-requests", "6",
		"-concurrency", "3",
	}, &out)
	if err != nil {
		t.Fatalf("stream run: %v\n%s", err, out.String())
	}
	s := decode(t, &out)
	if s.OK != 6 || s.Failures != 0 {
		t.Fatalf("summary = %+v, want 6 ok", s)
	}
	if got := creates.Load(); got != 6 {
		t.Errorf("creates = %d, want 6", got)
	}
	// Each session sends multiple chunks of the trace.
	if got := chunks.Load(); got < 12 {
		t.Errorf("chunk appends = %d, want several per session", got)
	}
	if !strings.Contains(out.String(), `"upload"`) {
		t.Errorf("summary kinds missing upload marker:\n%s", out.String())
	}
}

// TestRunStreamShedOnCreate: 429 on session create is clean shedding,
// not a failure — unless everything was shed.
func TestRunStreamShedOnCreate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{
		"-targets", ts.URL,
		"-workloads", "julia",
		"-stream",
		"-requests", "4",
		"-concurrency", "2",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "shed") {
		t.Fatalf("all-shed stream run: err = %v, want all-shed error", err)
	}
	s := decode(t, &out)
	if s.Shed != 4 || s.Failures != 0 {
		t.Fatalf("summary = %+v, want 4 shed, 0 failures", s)
	}
}

// TestRunStreamChunkValidation rejects a nonsensical chunk size.
func TestRunStreamChunkValidation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-targets", "http://127.0.0.1:1", "-stream", "-chunk-bytes", "0"}, &out)
	if err == nil || !strings.Contains(err.Error(), "chunk-bytes") {
		t.Fatalf("err = %v, want chunk-bytes validation", err)
	}
}
