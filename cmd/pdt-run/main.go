// pdt-run executes a workload on the simulated Cell BE under PDT tracing
// and writes the trace file, playing the role of launching an application
// with the instrumented libraries installed.
//
// Usage:
//
//	pdt-run -workload matmul -param n=256 -param buffers=2 -o matmul.pdt
//	pdt-run -workload julia -param mode=dynamic -groups mfc,sync -o julia.pdt
//	pdt-run -workload fft -config pdt.xml -o fft.pdt
//	pdt-run -workload matmul -faults kill:250000 -o crash.pdt
//	pdt-run -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
	"github.com/celltrace/pdt/internal/faults"
	"github.com/celltrace/pdt/internal/harness"
	"github.com/celltrace/pdt/internal/workloads"
)

type paramList map[string]string

func (p paramList) String() string { return fmt.Sprint(map[string]string(p)) }
func (p paramList) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected key=value, got %q", s)
	}
	p[k] = v
	return nil
}

// exitTimeout is the distinct status for a run killed by -timeout, so
// scripts can tell a stuck or runaway simulation (3) apart from ordinary
// failures (1).
const exitTimeout = 3

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdt-run:", err)
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(exitTimeout)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pdt-run", flag.ContinueOnError)
	params := paramList{}
	var (
		workload   = fs.String("workload", "", "workload to run (see -list)")
		list       = fs.Bool("list", false, "list available workloads and exit")
		output     = fs.String("o", "trace.pdt", "trace output path (empty = no trace)")
		livePath   = fs.String("live", "", "mirror the trace to this file while the run executes (tail it with `pdt-ta summary -follow`)")
		configPath = fs.String("config", "", "PDT XML configuration file")
		groups     = fs.String("groups", "", "comma-separated event groups (overrides config)")
		spes       = fs.Int("spes", 0, "number of SPEs (0 = machine default of 8)")
		bufKiB     = fs.Int("buffer", 0, "SPE trace buffer KiB (0 = config default)")
		single     = fs.Bool("singlebuffer", false, "use a single synchronous flush buffer")
		wrap       = fs.Bool("wrap", false, "wrap the main trace region, keeping the most recent records")
		winStart   = fs.Uint64("windowstart", 0, "record only events at/after this cycle")
		winEnd     = fs.Uint64("windowend", 0, "record only events before this cycle (0 = open)")
		untraced   = fs.Bool("untraced", false, "run without tracing (baseline timing)")
		faultSpec  = fs.String("faults", "", "fault injection spec, e.g. kill:250000,stall:0:5000:4000,corrupt:rand:rand (see internal/faults)")
		timeout    = fs.Duration("timeout", 0, "abort the run after this wall-clock duration (exit status 3)")
	)
	fs.Var(params, "param", "workload parameter key=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range workloads.Names() {
			w, _ := workloads.New(n)
			fmt.Fprintf(out, "%-10s %s\n", n, w.Description())
			for k, v := range w.Params() {
				fmt.Fprintf(out, "    %s=%s (default)\n", k, v)
			}
		}
		return nil
	}
	if *workload == "" {
		return fmt.Errorf("missing -workload (try -list)")
	}

	spec := harness.Spec{
		Workload:  *workload,
		Params:    params,
		NumSPEs:   *spes,
		TracePath: *output,
		LivePath:  *livePath,
	}
	if *livePath != "" && *untraced {
		return fmt.Errorf("-live requires tracing (drop -untraced)")
	}
	if *faultSpec != "" {
		plan, err := faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
		spec.Faults = plan
	}
	if !*untraced {
		cfg := core.DefaultTraceConfig()
		if *configPath != "" {
			var err error
			cfg, err = core.LoadConfigFile(*configPath)
			if err != nil {
				return err
			}
		}
		if *groups != "" {
			cfg.Groups = 0
			for _, g := range strings.Split(*groups, ",") {
				bit, ok := event.ParseGroup(strings.TrimSpace(g))
				if !ok {
					return fmt.Errorf("unknown group %q", g)
				}
				cfg.Groups |= bit
			}
		}
		if *bufKiB > 0 {
			cfg.SPEBufferSize = *bufKiB * 1024
		}
		if *single {
			cfg.DoubleBuffered = false
		}
		if *wrap {
			cfg.WrapMain = true
		}
		cfg.WindowStart = *winStart
		cfg.WindowEnd = *winEnd
		spec.Trace = &cfg
	} else {
		spec.TracePath = ""
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := harness.RunContext(ctx, spec)
	if err != nil {
		if traceio.IsCorrupt(err) || errors.Is(err, traceio.ErrUnsalvageable) {
			return fmt.Errorf("%v — try `pdt-ta doctor %s` on the written trace", err, *output)
		}
		return err
	}
	if res.Crashed {
		fmt.Fprintf(out, "workload %s KILLED at cycle %d by fault injection; crash-consistent trace written\n",
			*workload, res.Cycles)
	} else {
		fmt.Fprintf(out, "workload %s finished in %d cycles (%.3f ms at 3.2 GHz), result verified\n",
			*workload, res.Cycles, float64(res.Cycles)/3.2e6)
	}
	if spec.Trace != nil {
		st := res.Stats
		fmt.Fprintf(out, "trace: %d SPE + %d PPE records, %d flushes (%d cycles), %d dropped -> %s (%d bytes)\n",
			st.SPERecords, st.PPERecords, st.Flushes, st.FlushCycles, st.Dropped,
			*output, len(res.TraceBytes))
		if st.FlushRetries > 0 || st.FlushFailDrops > 0 {
			fmt.Fprintf(out, "trace: %d flush retries, %d records dropped by failed flushes\n",
				st.FlushRetries, st.FlushFailDrops)
		}
		for _, n := range res.FaultNotes {
			fmt.Fprintf(out, "fault: %s\n", n)
		}
		if res.Salvage != nil {
			fmt.Fprintf(out, "salvage: %d/%d chunks recovered, %d records; inspect with `pdt-ta doctor %s`\n",
				res.Salvage.ChunksRecovered,
				res.Salvage.ChunksRecovered+res.Salvage.ChunksDamaged+res.Salvage.ChunksDropped,
				res.Salvage.RecordsRecovered, *output)
		}
	}
	return nil
}
