// pdt-run executes a workload on the simulated Cell BE under PDT tracing
// and writes the trace file, playing the role of launching an application
// with the instrumented libraries installed.
//
// Usage:
//
//	pdt-run -workload matmul -param n=256 -param buffers=2 -o matmul.pdt
//	pdt-run -workload julia -param mode=dynamic -groups mfc,sync -o julia.pdt
//	pdt-run -workload fft -config pdt.xml -o fft.pdt
//	pdt-run -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/harness"
	"github.com/celltrace/pdt/internal/workloads"
)

type paramList map[string]string

func (p paramList) String() string { return fmt.Sprint(map[string]string(p)) }
func (p paramList) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected key=value, got %q", s)
	}
	p[k] = v
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdt-run:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pdt-run", flag.ContinueOnError)
	params := paramList{}
	var (
		workload   = fs.String("workload", "", "workload to run (see -list)")
		list       = fs.Bool("list", false, "list available workloads and exit")
		output     = fs.String("o", "trace.pdt", "trace output path (empty = no trace)")
		configPath = fs.String("config", "", "PDT XML configuration file")
		groups     = fs.String("groups", "", "comma-separated event groups (overrides config)")
		spes       = fs.Int("spes", 0, "number of SPEs (0 = machine default of 8)")
		bufKiB     = fs.Int("buffer", 0, "SPE trace buffer KiB (0 = config default)")
		single     = fs.Bool("singlebuffer", false, "use a single synchronous flush buffer")
		wrap       = fs.Bool("wrap", false, "wrap the main trace region, keeping the most recent records")
		winStart   = fs.Uint64("windowstart", 0, "record only events at/after this cycle")
		winEnd     = fs.Uint64("windowend", 0, "record only events before this cycle (0 = open)")
		untraced   = fs.Bool("untraced", false, "run without tracing (baseline timing)")
	)
	fs.Var(params, "param", "workload parameter key=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range workloads.Names() {
			w, _ := workloads.New(n)
			fmt.Fprintf(out, "%-10s %s\n", n, w.Description())
			for k, v := range w.Params() {
				fmt.Fprintf(out, "    %s=%s (default)\n", k, v)
			}
		}
		return nil
	}
	if *workload == "" {
		return fmt.Errorf("missing -workload (try -list)")
	}

	spec := harness.Spec{
		Workload:  *workload,
		Params:    params,
		NumSPEs:   *spes,
		TracePath: *output,
	}
	if !*untraced {
		cfg := core.DefaultTraceConfig()
		if *configPath != "" {
			var err error
			cfg, err = core.LoadConfigFile(*configPath)
			if err != nil {
				return err
			}
		}
		if *groups != "" {
			cfg.Groups = 0
			for _, g := range strings.Split(*groups, ",") {
				bit, ok := event.ParseGroup(strings.TrimSpace(g))
				if !ok {
					return fmt.Errorf("unknown group %q", g)
				}
				cfg.Groups |= bit
			}
		}
		if *bufKiB > 0 {
			cfg.SPEBufferSize = *bufKiB * 1024
		}
		if *single {
			cfg.DoubleBuffered = false
		}
		if *wrap {
			cfg.WrapMain = true
		}
		cfg.WindowStart = *winStart
		cfg.WindowEnd = *winEnd
		spec.Trace = &cfg
	} else {
		spec.TracePath = ""
	}

	res, err := harness.Run(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workload %s finished in %d cycles (%.3f ms at 3.2 GHz), result verified\n",
		*workload, res.Cycles, float64(res.Cycles)/3.2e6)
	if spec.Trace != nil {
		st := res.Stats
		fmt.Fprintf(out, "trace: %d SPE + %d PPE records, %d flushes (%d cycles), %d dropped -> %s (%d bytes)\n",
			st.SPERecords, st.PPERecords, st.Flushes, st.FlushCycles, st.Dropped,
			*output, len(res.TraceBytes))
	}
	return nil
}
