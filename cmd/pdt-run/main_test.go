package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"matmul", "julia", "pipeline", "fft", "histogram", "stream", "synthetic"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %s:\n%s", want, out.String())
		}
	}
}

func TestMissingWorkload(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -workload accepted")
	}
}

func TestUnknownGroup(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "julia", "-groups", "bogus"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown group") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadParamSyntax(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", "julia", "-param", "noequals"}, &out); err == nil {
		t.Fatal("bad -param accepted")
	}
}

func TestRunTracedWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pdt")
	var out bytes.Buffer
	err := run([]string{
		"-workload", "julia",
		"-param", "w=64", "-param", "h=32", "-param", "maxiter=32",
		"-o", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "result verified") {
		t.Fatalf("output: %s", out.String())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}
}

func TestRunUntraced(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "histogram", "-param", "size=65536", "-untraced",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "trace:") {
		t.Fatal("untraced run reported a trace")
	}
}

func TestRunWithGroupsAndBuffer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pdt")
	var out bytes.Buffer
	err := run([]string{
		"-workload", "julia",
		"-param", "w=64", "-param", "h=32", "-param", "maxiter=32",
		"-groups", "lifecycle,mfc", "-buffer", "4", "-singlebuffer",
		"-spes", "2",
		"-o", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "records") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestRunWithConfigFile(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "pdt.xml")
	xml := `<pdt><buffer spe="4096" doubleBuffered="true" mainPerSPE="1048576"/>
<groups><group name="mfc" enabled="true"/><group name="lifecycle" enabled="true"/></groups></pdt>`
	if err := os.WriteFile(cfgPath, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-workload", "histogram", "-param", "size=65536",
		"-config", cfgPath, "-o", filepath.Join(dir, "t.pdt"),
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParamListString(t *testing.T) {
	p := paramList{"a": "1"}
	if p.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunWithWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pdt")
	var out bytes.Buffer
	err := run([]string{
		"-workload", "julia",
		"-param", "w=64", "-param", "h=32", "-param", "maxiter=32",
		"-windowstart", "10000", "-windowend", "200000",
		"-wrap",
		"-o", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "records") {
		t.Fatalf("output: %s", out.String())
	}
}

// TestTimeoutFlag: a microscopic -timeout aborts the simulation with
// context.DeadlineExceeded, the error main maps to exit status 3.
func TestTimeoutFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "julia",
		"-param", "w=64", "-param", "h=32", "-param", "maxiter=32",
		"-o", filepath.Join(t.TempDir(), "t.pdt"),
		"-timeout", "1ns",
	}, &out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}
