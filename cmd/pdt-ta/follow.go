package main

// Live-tail mode: `pdt-ta summary -follow live.pdt` watches a trace
// file that is still being written (pdt-run -live) and reports on it as
// it grows. New bytes are fed through the incremental StreamLoader —
// memory stays bounded by the stream window no matter how large the
// trace gets — with a running status line on stderr, and the standard
// summary report lands on stdout once the writer seals the stream (or
// the file goes idle past -idle, whichever is first).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/celltrace/pdt/internal/analyzer"
)

// followSummary tails path until the trace footer arrives, the file is
// idle past idle (0 = wait forever), or ctx expires. The final report —
// possibly of a truncated stream, if the writer crashed — goes to out.
func followSummary(ctx context.Context, path string, poll, idle time.Duration, out io.Writer) error {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	f, err := openFollow(ctx, path, poll)
	if err != nil {
		return err
	}
	defer f.Close()

	l := analyzer.NewStreamLoader(analyzer.StreamOptions{Validate: true, Ctx: ctx})
	buf := make([]byte, 1<<20)
	lastGrowth := time.Now()
	for {
		n, rerr := f.Read(buf)
		if n > 0 {
			lastGrowth = time.Now()
			if _, werr := l.Write(buf[:n]); werr != nil {
				return werr
			}
			continue // drain everything available before sleeping
		}
		if rerr != nil && rerr != io.EOF {
			return rerr
		}
		// Caught up with the writer. A sealed stream is finished; an idle
		// one is abandoned (the writer crashed or stalled) — report what
		// survives, exactly like loading the truncated file.
		if l.Sealed() {
			break
		}
		if idle > 0 && time.Since(lastGrowth) > idle {
			fmt.Fprintf(os.Stderr, "pdt-ta: %s idle for %s; reporting what arrived\n", path, idle)
			break
		}
		fmt.Fprintf(os.Stderr, "\rpdt-ta: following %s: %d bytes, %d events ",
			path, l.Bytes(), l.Events())
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr)
			return ctx.Err()
		case <-time.After(poll):
		}
	}
	fmt.Fprintln(os.Stderr)

	res, err := l.Finish()
	if err != nil {
		return err
	}
	res.Report(out)
	return nil
}

// openFollow opens the trace, waiting for the writer to create it first
// if -follow raced ahead of pdt-run.
func openFollow(ctx context.Context, path string, poll time.Duration) (*os.File, error) {
	for {
		f, err := os.Open(path)
		if err == nil {
			return f, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("waiting for %s: %w", path, ctx.Err())
		case <-time.After(poll):
		}
	}
}
