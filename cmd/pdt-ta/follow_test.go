package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFollowGrowingTrace drip-feeds a sealed trace into a file while
// `summary -follow` tails it: follow must stop on its own when the
// footer lands and print the same report the batch path prints.
func TestFollowGrowingTrace(t *testing.T) {
	src := makeTrace(t)
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}

	live := filepath.Join(t.TempDir(), "live.pdt")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f, err := os.Create(live)
		if err != nil {
			t.Error(err)
			return
		}
		defer f.Close()
		const step = 4 << 10
		for off := 0; off < len(data); off += step {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			if _, err := f.Write(data[off:end]); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var followed bytes.Buffer
	if err := run([]string{"summary", "-follow", "-poll", "5ms", "-timeout", "30s", live}, &followed); err != nil {
		t.Fatalf("follow: %v", err)
	}
	wg.Wait()

	var batch bytes.Buffer
	if err := run([]string{"summary", src}, &batch); err != nil {
		t.Fatal(err)
	}
	if followed.String() != batch.String() {
		t.Errorf("follow report differs from batch:\nfollow:\n%s\nbatch:\n%s", &followed, &batch)
	}
}

// TestFollowIdleTruncated covers the crashed-writer path: the file stops
// growing before the footer, so -idle makes follow report what survived.
func TestFollowIdleTruncated(t *testing.T) {
	src := makeTrace(t)
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	dead := filepath.Join(t.TempDir(), "dead.pdt")
	if err := os.WriteFile(dead, data[:len(data)*3/5], 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"summary", "-follow", "-poll", "5ms", "-idle", "50ms", "-timeout", "30s", dead}, &out); err != nil {
		t.Fatalf("follow idle: %v", err)
	}
	if !strings.Contains(out.String(), "workload: julia") {
		t.Errorf("truncated follow report missing summary:\n%s", out.String())
	}
}

// TestFollowWrongSubcommand rejects -follow outside summary.
func TestFollowWrongSubcommand(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"timeline", "-follow", "x.pdt"}, &out); err == nil {
		t.Fatal("-follow accepted for timeline")
	}
}
