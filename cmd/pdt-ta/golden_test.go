package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/harness"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden CLI output files")

// goldenWorkloadTrace runs the fixed golden workload (julia, small and
// deterministic) with the given event-group mask and writes the trace
// where the CLI can read it.
func goldenWorkloadTrace(t *testing.T, groups event.Group) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.pdt")
	cfg := core.DefaultTraceConfig()
	cfg.Groups = groups
	_, err := harness.Run(harness.Spec{
		Workload:  "julia",
		Params:    map[string]string{"w": "64", "h": "32", "maxiter": "32", "mode": "dynamic"},
		Trace:     &cfg,
		TracePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// checkGolden compares CLI output to testdata/<name>, rewriting the file
// under -update-golden (review the diff before committing).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s rewritten (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s output drifted from %s — if the change is intentional, "+
			"re-run with -update-golden and review the diff.\n--- got ---\n%s",
			t.Name(), path, got)
	}
}

// TestGoldenReport pins the combined `pdt-ta report` text byte-for-byte:
// any drift in the summary, profile, gap, or critical-path renderers (or
// in the simulator's schedule) shows up here.
func TestGoldenReport(t *testing.T) {
	path := goldenWorkloadTrace(t, event.GroupAll)
	var out bytes.Buffer
	if err := run([]string{"report", path}, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.golden", out.Bytes())
}

// goldenPipelineTrace runs the pipeline workload (iterative: 8 blocks
// through 8 stages), which is what the cycle goldens need — julia's
// dynamic row scheduling has no per-run iteration structure.
func goldenPipelineTrace(t *testing.T, groups event.Group) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.pdt")
	cfg := core.DefaultTraceConfig()
	cfg.Groups = groups
	_, err := harness.Run(harness.Spec{
		Workload:  "pipeline",
		Params:    map[string]string{"blocks": "8", "blockbytes": "1024"},
		Trace:     &cfg,
		TracePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGoldenCycles pins `pdt-ta cycles` text and JSON byte-for-byte on
// the pipeline workload (every stage detects blocks=8 cycles).
func TestGoldenCycles(t *testing.T) {
	path := goldenPipelineTrace(t, event.GroupAll)

	var text bytes.Buffer
	if err := run([]string{"cycles", path}, &text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cycles.golden", text.Bytes())

	var js bytes.Buffer
	if err := run([]string{"cycles", "-json", path}, &js); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cycles.json.golden", js.Bytes())
}

// TestGoldenDiffAlign pins `pdt-ta diff -mode align` — the per-cycle
// section rides on the pipeline reduced-vs-full diff, where signature
// drift between the group configurations exercises real edits.
func TestGoldenDiffAlign(t *testing.T) {
	reduced := goldenPipelineTrace(t, event.GroupLifecycle|event.GroupMFC)
	full := goldenPipelineTrace(t, event.GroupAll)

	var text bytes.Buffer
	if err := run([]string{"diff", "-mode", "align", reduced, full}, &text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diff.align.golden", text.Bytes())

	var js bytes.Buffer
	if err := run([]string{"diff", "-mode", "align", "-json", reduced, full}, &js); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diff.align.json.golden", js.Bytes())
}

// TestGoldenDiff pins `pdt-ta diff` for the reduced-vs-full comparison
// the overhead experiments use, in both text and JSON form.
func TestGoldenDiff(t *testing.T) {
	reduced := goldenWorkloadTrace(t, event.GroupLifecycle|event.GroupMFC)
	full := goldenWorkloadTrace(t, event.GroupAll)

	var text bytes.Buffer
	if err := run([]string{"diff", reduced, full}, &text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diff.golden", text.Bytes())

	var js bytes.Buffer
	if err := run([]string{"diff", "-json", reduced, full}, &js); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diff.json.golden", js.Bytes())
}
