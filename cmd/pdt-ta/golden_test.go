package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/harness"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden CLI output files")

// goldenWorkloadTrace runs the fixed golden workload (julia, small and
// deterministic) with the given event-group mask and writes the trace
// where the CLI can read it.
func goldenWorkloadTrace(t *testing.T, groups event.Group) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.pdt")
	cfg := core.DefaultTraceConfig()
	cfg.Groups = groups
	_, err := harness.Run(harness.Spec{
		Workload:  "julia",
		Params:    map[string]string{"w": "64", "h": "32", "maxiter": "32", "mode": "dynamic"},
		Trace:     &cfg,
		TracePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// checkGolden compares CLI output to testdata/<name>, rewriting the file
// under -update-golden (review the diff before committing).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s rewritten (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s output drifted from %s — if the change is intentional, "+
			"re-run with -update-golden and review the diff.\n--- got ---\n%s",
			t.Name(), path, got)
	}
}

// TestGoldenReport pins the combined `pdt-ta report` text byte-for-byte:
// any drift in the summary, profile, gap, or critical-path renderers (or
// in the simulator's schedule) shows up here.
func TestGoldenReport(t *testing.T) {
	path := goldenWorkloadTrace(t, event.GroupAll)
	var out bytes.Buffer
	if err := run([]string{"report", path}, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.golden", out.Bytes())
}

// TestGoldenDiff pins `pdt-ta diff` for the reduced-vs-full comparison
// the overhead experiments use, in both text and JSON form.
func TestGoldenDiff(t *testing.T) {
	reduced := goldenWorkloadTrace(t, event.GroupLifecycle|event.GroupMFC)
	full := goldenWorkloadTrace(t, event.GroupAll)

	var text bytes.Buffer
	if err := run([]string{"diff", reduced, full}, &text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diff.golden", text.Bytes())

	var js bytes.Buffer
	if err := run([]string{"diff", "-json", reduced, full}, &js); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diff.json.golden", js.Bytes())
}
