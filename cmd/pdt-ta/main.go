// pdt-ta is the trace analyzer CLI: it loads a PDT trace and prints
// summaries, timelines, or machine-readable exports.
//
// Usage:
//
//	pdt-ta summary trace.pdt
//	pdt-ta report trace.pdt
//	pdt-ta timeline -width 100 trace.pdt
//	pdt-ta svg -o timeline.svg trace.pdt
//	pdt-ta csv trace.pdt > events.csv
//	pdt-ta json trace.pdt
//	pdt-ta validate trace.pdt
//	pdt-ta doctor damaged.pdt
//	pdt-ta events -n 50 trace.pdt
//	pdt-ta html -o report.html trace.pdt
//	pdt-ta slack trace.pdt
//	pdt-ta bw -n 20 trace.pdt
//	pdt-ta compare before.pdt after.pdt
//	pdt-ta diff baseline.pdt instrumented.pdt
//	pdt-ta diff -mode align before.pdt after.pdt
//	pdt-ta cycles trace.pdt
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cycles"
	"github.com/celltrace/pdt/internal/analyzer/diff"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// exitTimeout is the distinct status for a run killed by -timeout, so
// scripts can tell "analysis hung or was too slow" (3) apart from
// ordinary failures (1).
const exitTimeout = 3

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdt-ta:", err)
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(exitTimeout)
		}
		os.Exit(1)
	}
}

// loadFriendly loads a trace, pointing the user at `pdt-ta doctor` when
// the file is damaged rather than dumping a raw parse error.
func loadFriendly(ctx context.Context, path string) (*analyzer.Trace, error) {
	tr, err := analyzer.LoadFileContext(ctx, path, analyzer.Limits{})
	if err != nil && traceio.IsCorrupt(err) {
		return nil, fmt.Errorf("%s looks damaged (%v) — try `pdt-ta doctor %s` to recover what survives", path, err, path)
	}
	return tr, err
}

// report prints the combined report: summary, interval profile, gaps, and
// critical path in one pass over the file. Validation runs first (it
// mutates tr.Issues and must be exclusive); the four analyses after it are
// independent reads of the immutable trace and run concurrently, so the
// combined report costs about as much wall-clock as its slowest section.
func report(tr *analyzer.Trace, out io.Writer) error {
	analyzer.Validate(tr)
	var (
		sum    *analyzer.Summary
		pairs  []analyzer.PairProfile
		gapMin uint64
		gaps   []analyzer.Gap
		cp     *analyzer.CriticalPath
	)
	var wg sync.WaitGroup
	for _, task := range []func(){
		func() { sum = analyzer.Summarize(tr) },
		func() { pairs = analyzer.Profile(tr) },
		func() { gapMin = analyzer.SuggestGapThreshold(tr); gaps = analyzer.FindGaps(tr, gapMin) },
		func() { cp = analyzer.ComputeCriticalPath(tr) },
	} {
		wg.Add(1)
		go func(f func()) { defer wg.Done(); f() }(task)
	}
	wg.Wait()

	analyzer.Report(tr, sum, out)
	fmt.Fprintf(out, "\ninterval profile:\n")
	analyzer.WriteProfilePairs(tr, pairs, out)
	fmt.Fprintln(out)
	analyzer.WriteGapsFound(gapMin, gaps, 15, out)
	fmt.Fprintln(out)
	analyzer.WriteCriticalPathFrom(cp, out, 10)
	return nil
}

func usage() error {
	return fmt.Errorf("usage: pdt-ta <summary|report|timeline|svg|html|csv|json|validate|doctor|events|profile|tags|intervals|slack|bw|compensate|critpath|gaps|cycles|compare|diff> [flags] trace.pdt [trace2.pdt]")
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return usage()
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet("pdt-ta "+cmd, flag.ContinueOnError)
	width := fs.Int("width", 100, "timeline width in characters (timeline)")
	pxWidth := fs.Int("px", 900, "timeline width in pixels (svg)")
	svgOut := fs.String("o", "", "output path (svg; empty = stdout)")
	maxEvents := fs.Int("n", 0, "max events to print (events; 0 = all)")
	gapTicks := fs.Int("min", 0, "minimum gap ticks (gaps; 0 = auto threshold)")
	asJSON := fs.Bool("json", false, "emit JSON instead of text (diff, cycles)")
	mode := fs.String("mode", "", "per-cycle diff mode: match or align (diff; empty = off)")
	follow := fs.Bool("follow", false, "tail a still-growing trace (pdt-run -live) and report when it seals (summary)")
	poll := fs.Duration("poll", 500*time.Millisecond, "file poll interval in follow mode")
	idle := fs.Duration("idle", 0, "give up and report after the file stops growing for this long (follow; 0 = wait forever)")
	timeout := fs.Duration("timeout", 0, "abort the whole command after this wall-clock duration (exit status 3)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	wantArgs := 1
	if cmd == "compare" || cmd == "diff" {
		wantArgs = 2
	}
	if fs.NArg() != wantArgs {
		return usage()
	}
	if *follow {
		if cmd != "summary" {
			return errors.New("-follow only applies to `pdt-ta summary`")
		}
		return followSummary(ctx, fs.Arg(0), *poll, *idle, out)
	}
	if cmd == "doctor" {
		rep, err := analyzer.DoctorFileContext(ctx, fs.Arg(0), analyzer.Limits{})
		if err != nil {
			return err
		}
		rep.Write(out)
		if !rep.Recoverable() {
			return fmt.Errorf("nothing recoverable in %s", fs.Arg(0))
		}
		return nil
	}
	tr, err := loadFriendly(ctx, fs.Arg(0))
	if err != nil {
		return err
	}

	switch cmd {
	case "compare":
		tr2, err := loadFriendly(ctx, fs.Arg(1))
		if err != nil {
			return err
		}
		c := analyzer.Compare(analyzer.Summarize(tr), analyzer.Summarize(tr2))
		analyzer.RenderComparison(c, "A:"+fs.Arg(0), "B:"+fs.Arg(1), out)
		return nil
	case "diff":
		tr2, err := loadFriendly(ctx, fs.Arg(1))
		if err != nil {
			return err
		}
		rep, err := diff.Diff(tr, tr2, diff.Options{Mode: *mode})
		if err != nil {
			return err
		}
		if *asJSON {
			return rep.WriteJSON(out)
		}
		rep.Write(out)
		return nil
	case "cycles":
		rep := cycles.Detect(tr, cycles.Options{})
		if *asJSON {
			return rep.WriteJSON(out)
		}
		rep.Write(out)
		return nil
	case "html":
		analyzer.Validate(tr)
		var buf bytes.Buffer
		if err := analyzer.WriteHTML(tr, analyzer.Summarize(tr), &buf); err != nil {
			return err
		}
		if *svgOut == "" {
			_, err := out.Write(buf.Bytes())
			return err
		}
		return os.WriteFile(*svgOut, buf.Bytes(), 0o644)
	case "slack":
		fmt.Fprintf(out, "%-4s %-4s %8s %14s %14s %14s\n",
			"run", "core", "waits", "mean slack", "max slack", "mean wait")
		for run := range tr.Meta.Anchors {
			st := analyzer.DMASlack(tr, run)
			fmt.Fprintf(out, "%-4d %-4d %8d %14.1f %14d %14.1f\n",
				st.Run, st.Core, st.Waits, st.Slack.Mean(), st.Slack.Max, st.WaitDur.Mean())
		}
		return nil
	case "profile":
		analyzer.WriteProfile(tr, out)
		return nil
	case "tags":
		fmt.Fprintf(out, "%-4s %8s %14s\n", "tag", "cmds", "bytes")
		for _, ts := range analyzer.TagBreakdown(tr) {
			fmt.Fprintf(out, "%-4d %8d %14d\n", ts.Tag, ts.Cmds, ts.Bytes)
		}
		return nil
	case "compensate":
		analyzer.WriteCompensation(tr, out)
		return nil
	case "critpath":
		n := *maxEvents
		if n <= 0 {
			n = 10
		}
		analyzer.WriteCriticalPath(tr, out, n)
		return nil
	case "gaps":
		n := *maxEvents
		if n <= 0 {
			n = 15
		}
		analyzer.WriteGaps(tr, uint64(*gapTicks), n, out)
		return nil
	case "intervals":
		return analyzer.WriteIntervalsCSV(tr, out)
	case "bw":
		n := *maxEvents
		if n <= 0 {
			n = 20
		}
		for _, p := range analyzer.BandwidthSeries(tr, n) {
			fmt.Fprintf(out, "%12d %12d\n", p.StartTick, p.Bytes)
		}
		return nil
	}

	switch cmd {
	case "summary":
		analyzer.Validate(tr)
		analyzer.Report(tr, analyzer.Summarize(tr), out)
	case "report":
		return report(tr, out)
	case "timeline":
		fmt.Fprint(out, analyzer.Timeline(tr, *width))
	case "svg":
		svg := analyzer.SVGTimeline(tr, *pxWidth)
		if *svgOut == "" {
			fmt.Fprint(out, svg)
			return nil
		}
		return os.WriteFile(*svgOut, []byte(svg), 0o644)
	case "csv":
		return analyzer.WriteCSV(tr, out)
	case "json":
		analyzer.Validate(tr)
		return analyzer.WriteJSON(tr, analyzer.Summarize(tr), out)
	case "validate":
		issues := analyzer.Validate(tr)
		if len(issues) == 0 {
			fmt.Fprintf(out, "OK: %d events, no issues\n", tr.NumEvents())
			return nil
		}
		for _, is := range issues {
			fmt.Fprintln(out, is)
		}
		if len(analyzer.Errors(issues)) > 0 {
			return fmt.Errorf("%d errors", len(analyzer.Errors(issues)))
		}
	case "events":
		for i, n := 0, tr.NumEvents(); i < n; i++ {
			if *maxEvents > 0 && i >= *maxEvents {
				fmt.Fprintf(out, "... %d more\n", n-i)
				break
			}
			e := tr.Event(i)
			fmt.Fprintf(out, "%8d %s\n", e.Global, e.Record.String())
		}
	default:
		return usage()
	}
	return nil
}
