package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/harness"
)

// makeTrace produces a real trace file for the CLI to chew on.
func makeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.pdt")
	cfg := core.DefaultTraceConfig()
	_, err := harness.Run(harness.Spec{
		Workload:  "julia",
		Params:    map[string]string{"w": "64", "h": "32", "maxiter": "32"},
		Trace:     &cfg,
		TracePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"frobnicate", "x.pdt"}, &out); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"summary"}, &out); err == nil {
		t.Fatal("missing trace path accepted")
	}
	if err := run([]string{"summary", "/does/not/exist.pdt"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSummary(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"summary", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workload: julia", "dma-wait", "top events"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

// TestReportCombined checks the concurrent combined report carries all
// four sections and that each matches its standalone subcommand's output.
func TestReportCombined(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"report", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"workload: julia", "interval profile:", "event-free stretches", "critical path:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
	// The concurrently-computed sections must render exactly what the
	// standalone subcommands print.
	var prof, gaps, crit bytes.Buffer
	if err := run([]string{"profile", path}, &prof); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"gaps", path}, &gaps); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"critpath", path}, &crit); err != nil {
		t.Fatal(err)
	}
	for name, section := range map[string]string{
		"profile": prof.String(), "gaps": gaps.String(), "critpath": crit.String(),
	} {
		if !strings.Contains(out.String(), section) {
			t.Fatalf("report's %s section differs from the standalone subcommand", name)
		}
	}
}

func TestTimeline(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"timeline", "-width", "60", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "legend") {
		t.Fatalf("timeline output:\n%s", out.String())
	}
}

func TestSVGToFile(t *testing.T) {
	path := makeTrace(t)
	svgPath := filepath.Join(t.TempDir(), "o.svg")
	var out bytes.Buffer
	if err := run([]string{"svg", "-o", svgPath, path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("not an svg")
	}
}

func TestHTMLToStdout(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"html", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "<!DOCTYPE html>") {
		t.Fatal("not html")
	}
}

func TestCSVAndJSON(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SPE_PROGRAM_START") {
		t.Fatal("csv missing records")
	}
	out.Reset()
	if err := run([]string{"json", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"utilization"`) {
		t.Fatal("json missing fields")
	}
}

func TestValidateClean(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"validate", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("validate output:\n%s", out.String())
	}
}

func TestEventsLimited(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"events", "-n", "5", path}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 6 { // 5 events + "... N more"
		t.Fatalf("lines = %d:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[5], "more") {
		t.Fatal("missing continuation marker")
	}
}

func TestSlackAndBW(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"slack", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mean slack") {
		t.Fatalf("slack output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"bw", "-n", "5", path}, &out); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(out.String()), "\n")) != 5 {
		t.Fatalf("bw output:\n%s", out.String())
	}
}

func TestProfileIntervalsCompensate(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"profile", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "total ticks") {
		t.Fatalf("profile output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"intervals", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "run,core,state") {
		t.Fatalf("intervals output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"compensate", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "corrected") {
		t.Fatalf("compensate output:\n%s", out.String())
	}
}

func TestCritpathAndGaps(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"critpath", "-n", "3", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "critical path:") {
		t.Fatalf("critpath output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"gaps", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "event-free") {
		t.Fatalf("gaps output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"gaps", "-min", "1", "-n", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ">= 1 ticks") {
		t.Fatalf("gaps -min output:\n%s", out.String())
	}
}

func TestCompare(t *testing.T) {
	a := makeTrace(t)
	b := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"compare", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "speedup") {
		t.Fatalf("compare output:\n%s", out.String())
	}
	if err := run([]string{"compare", a}, &out); err == nil {
		t.Fatal("compare with one file accepted")
	}
}

func TestCorruptTraceRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.pdt")
	if err := os.WriteFile(path, []byte("this is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"summary", path}, &out); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTags(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"tags", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bytes") {
		t.Fatalf("tags output:\n%s", out.String())
	}
}

// TestTimeoutFlag: a microscopic -timeout aborts the analysis with
// context.DeadlineExceeded, the error main maps to exit status 3.
func TestTimeoutFlag(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	err := run([]string{"summary", "-timeout", "1ns", path}, &out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	// doctor shares the deadline plumbing through the salvage path.
	err = run([]string{"doctor", "-timeout", "1ns", path}, &out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("doctor: want context.DeadlineExceeded, got %v", err)
	}
}
