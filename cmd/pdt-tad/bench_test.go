package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/harness"
)

// BenchmarkTADSummary measures one end-to-end /v1/summary request on the
// standard multi-MiB benchmark trace, cold (cache disabled: every request
// re-parses, re-merges and re-analyzes) versus warm (content-addressed
// cache primed, so the request is a hash + memoized render). The warm/cold
// ratio is the service-path speedup the cache buys for repeated uploads.
func BenchmarkTADSummary(b *testing.B) {
	events := 20000
	if testing.Short() {
		events = 2000
	}
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "synthetic",
		Params:   map[string]string{"events": fmt.Sprint(events), "gap": "100"},
		Trace:    &cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	trace := res.TraceBytes
	b.Logf("trace: %d bytes", len(trace))

	post := func(b *testing.B, url string) {
		b.Helper()
		resp, err := http.Post(url+"/v1/summary", "application/octet-stream",
			bytes.NewReader(trace))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	serve := func(mut func(*config)) *httptest.Server {
		cfg := defaultConfig()
		if mut != nil {
			mut(&cfg)
		}
		return httptest.NewServer(newServer(cfg, quietLogger()).handler())
	}

	b.Run("cold", func(b *testing.B) {
		ts := serve(func(c *config) { c.cacheBytes = 0; c.cacheEntries = 0 })
		defer ts.Close()
		b.SetBytes(int64(len(trace)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL)
		}
	})
	b.Run("warm", func(b *testing.B) {
		ts := serve(nil)
		defer ts.Close()
		post(b, ts.URL) // prime the cache
		b.SetBytes(int64(len(trace)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL)
		}
	})
}
