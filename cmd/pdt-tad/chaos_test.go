package main

// Service-level chaos tests: the daemon is killed (in-process, via the
// chaos plan's killphase seam) at every job phase, restarted over the
// same state directory, and must converge — exactly one completion per
// job, byte-identical to an uninterrupted run. Plus the durable tier's
// happy paths: async round-trip, warm restart from disk, and graceful
// degrade to synchronous mode when the disk is failing.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/celltrace/pdt/internal/analyzer/cache"
	"github.com/celltrace/pdt/internal/faults"
	"github.com/celltrace/pdt/internal/jobs"
)

// durableServer builds a server over a state directory, running
// setupState (disk tier + journal + job manager) like main does.
func durableServer(t *testing.T, stateDir string, mut func(*config)) (*server, *httptest.Server) {
	t.Helper()
	cfg := defaultConfig()
	cfg.stateDir = stateDir
	cfg.jobBackoff = time.Millisecond
	cfg.jobBackoffCap = 5 * time.Millisecond
	if mut != nil {
		mut(&cfg)
	}
	s := newServer(cfg, quietLogger())
	if err := s.setupState(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.closeState)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func submitJob(t *testing.T, ts *httptest.Server, kind string, trace []byte, extra string) (*http.Response, jobs.Job) {
	t.Helper()
	resp, body := post(t, ts.URL+"/v1/jobs?kind="+kind+extra, trace)
	var jb jobs.Job
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(body, &jb); err != nil {
			t.Fatalf("202 body not a job doc: %v\n%s", err, body)
		}
	}
	return resp, jb
}

func waitJobStatus(t *testing.T, ts *httptest.Server, id, status string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var jb jobs.Job
	for time.Now().Before(deadline) {
		resp, body := getBody(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll: %d %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &jb); err != nil {
			t.Fatal(err)
		}
		if jb.Status == status {
			return jb
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s: %+v", id, status, jb)
	return jb
}

// TestJobAsyncRoundTrip: submit, 202, poll to done, fetch the result,
// and receive the webhook — with the result byte-identical to the
// synchronous endpoint's answer.
func TestJobAsyncRoundTrip(t *testing.T) {
	trace := smallTrace(t)
	var hooks atomic.Int32
	var hookBody atomic.Value
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		hookBody.Store(string(b))
		hooks.Add(1)
	}))
	defer hook.Close()

	_, ts := durableServer(t, t.TempDir(), nil)
	// Baseline from the synchronous endpoint.
	resp, want := post(t, ts.URL+"/v1/critpath", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync baseline: %d", resp.StatusCode)
	}

	resp, jb := submitJob(t, ts, "critpath", trace, "&webhook="+hook.URL)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+jb.ID {
		t.Fatalf("Location: %q", loc)
	}
	done := waitJobStatus(t, ts, jb.ID, jobs.StatusDone)
	if done.Attempts != 1 || done.Error != "" {
		t.Fatalf("done job: %+v", done)
	}

	resp, got := getBody(t, ts.URL+"/v1/jobs/"+jb.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("async result differs from the synchronous endpoint")
	}
	deadline := time.Now().Add(5 * time.Second)
	for hooks.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if hooks.Load() != 1 {
		t.Fatalf("webhook deliveries: %d", hooks.Load())
	}
	if b, _ := hookBody.Load().(string); !strings.Contains(b, `"status":"done"`) {
		t.Fatalf("webhook payload: %q", b)
	}
}

// TestJobSyncDegradeNoStateDir: without -state-dir the job endpoint
// still answers — synchronously, flagged, and byte-identical to the
// matching endpoint.
func TestJobSyncDegradeNoStateDir(t *testing.T) {
	trace := smallTrace(t)
	_, ts := testServer(t, nil)
	_, want := post(t, ts.URL+"/v1/summary", trace)

	resp, got := post(t, ts.URL+"/v1/jobs?kind=summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded submit: %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Pdt-Mode") != "sync" {
		t.Fatal("sync degrade not flagged")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("sync-degraded job result differs from /v1/summary")
	}
	// And the poll endpoints say the API is off rather than 500ing.
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/j-nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("job poll without state dir: %d", resp.StatusCode)
	}
}

// TestJobDiskFullDegradesToSync: once the disk tier starts failing
// writes, job submissions degrade to synchronous responses and readyz
// reports the degradation — no 500s, no lost requests.
func TestJobDiskFullDegradesToSync(t *testing.T) {
	trace := smallTrace(t)
	_, ts := durableServer(t, t.TempDir(), func(c *config) {
		c.chaosSpec = "diskfull:0:*" // every disk-tier write fails
	})
	resp, got := post(t, ts.URL+"/v1/jobs?kind=summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disk-full submit: %d %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Pdt-Mode") != "sync" {
		t.Fatal("disk-full degrade not flagged as sync")
	}
	var doc struct {
		Totals any `json:"totals"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("sync response not analysis JSON: %v", err)
	}
	resp, body := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Fatalf("readyz during disk failure: %d %q", resp.StatusCode, body)
	}
}

// TestWarmRestartServesFromDisk: a second daemon over the same state
// directory serves a known trace without re-running the load/analysis
// pipeline — the artifact comes off the disk tier, byte-identical.
func TestWarmRestartServesFromDisk(t *testing.T) {
	trace := smallTrace(t)
	dir := t.TempDir()

	s1, ts1 := durableServer(t, dir, nil)
	resp, want := post(t, ts1.URL+"/v1/summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold request: %d", resp.StatusCode)
	}
	cold := s1.cache.Stats()
	if cold.Misses != 1 {
		t.Fatalf("cold run should load once: %+v", cold)
	}
	ts1.Close()
	s1.closeState()

	s2, ts2 := durableServer(t, dir, nil)
	resp, got := post(t, ts2.URL+"/v1/summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("warm-restart response differs")
	}
	warm := s2.cache.Stats()
	if warm.Misses != 0 {
		t.Fatalf("warm restart re-ran the load: %+v", warm)
	}
	dst := s2.cache.Disk().Stats()
	if dst.Hits == 0 || dst.Rehydrated == 0 {
		t.Fatalf("warm restart did not use the disk tier: %+v", dst)
	}
}

// TestChaosKillEveryPhase is the headline chaos drill: a daemon armed
// with killphase:PHASE dies mid-job at each phase in turn; a clean
// daemon over the same state directory must replay the journal and
// converge — job done, exactly one done record, exactly one webhook,
// and the result byte-identical to an uninterrupted run's.
func TestChaosKillEveryPhase(t *testing.T) {
	trace := smallTrace(t)

	// Baseline artifact from an undisturbed server.
	_, clean := testServer(t, nil)
	resp, want := post(t, clean.URL+"/v1/gaps", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline: %d", resp.StatusCode)
	}

	for _, phase := range []string{"accept", "start", "render", "done", "webhook"} {
		t.Run(phase, func(t *testing.T) {
			dir := t.TempDir()
			var hooks atomic.Int32
			hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				io.Copy(io.Discard, r.Body)
				hooks.Add(1)
			}))
			defer hook.Close()

			s1, ts1 := durableServer(t, dir, func(c *config) {
				c.chaosSpec = "killphase:" + phase
			})
			resp, jb := submitJob(t, ts1, "gaps", trace, "&webhook="+hook.URL)
			// A kill at accept happens before the 202 can be written; any
			// later phase acknowledges normally and dies in a worker.
			if phase == "accept" {
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Fatalf("kill at accept: %d", resp.StatusCode)
				}
			} else if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: %d", resp.StatusCode)
			}
			// The "process" is dead once the manager crashes; for phases at
			// or after done the job may have finished first — the crash
			// still fires (webhook phase) or already fired.
			deadline := time.Now().Add(10 * time.Second)
			for !s1.jobs.Crashed() && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
			if !s1.jobs.Crashed() {
				t.Fatal("chaos kill never fired")
			}
			// A dead durable tier must show on readyz.
			if resp, body := getBody(t, ts1.URL+"/readyz"); resp.StatusCode != http.StatusOK ||
				!strings.Contains(string(body), "degraded") {
				t.Fatalf("readyz after crash: %d %q", resp.StatusCode, body)
			}
			ts1.Close()
			s1.closeState()
			preRestart := hooks.Load()

			// Restart clean over the same state dir: the journal replays.
			s2, ts2 := durableServer(t, dir, nil)
			adopted := s2.jobs.Jobs()
			if len(adopted) != 1 {
				t.Fatalf("replay adopted %d jobs", len(adopted))
			}
			id := adopted[0].ID
			if jb.ID != "" && jb.ID != id {
				t.Fatalf("journal job %s != accepted job %s", id, jb.ID)
			}
			done := waitJobStatus(t, ts2, id, jobs.StatusDone)
			if phase != "done" && phase != "webhook" && !done.Replayed {
				t.Fatalf("job not marked replayed: %+v", done)
			}

			// Byte-identical convergence with the uninterrupted run.
			resp, got := getBody(t, ts2.URL+"/v1/jobs/"+id+"/result")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("result after replay: %d %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("kill at %s: replayed result differs from uninterrupted run", phase)
			}

			// Exactly-once: one done record in the journal, one webhook.
			raw, err := os.ReadFile(filepath.Join(dir, "jobs.journal"))
			if err != nil {
				t.Fatal(err)
			}
			if n := countJournalOps(raw, id, "done"); n != 1 {
				t.Fatalf("kill at %s: %d done records, want exactly 1", phase, n)
			}
			deadline = time.Now().Add(5 * time.Second)
			for hooks.Load() == preRestart && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if total := hooks.Load(); total != 1 {
				t.Fatalf("kill at %s: %d webhook deliveries, want exactly 1", phase, total)
			}
			if n := countJournalOps(raw, id, "accept"); n != 1 {
				t.Fatalf("kill at %s: %d accept records", phase, n)
			}
		})
	}
}

// countJournalOps counts journal records for one job without importing
// the package internals: each line is "pdtj1 <crc> <json>".
func countJournalOps(raw []byte, id, op string) int {
	n := 0
	for _, line := range strings.Split(string(raw), "\n") {
		parts := strings.SplitN(line, " ", 3)
		if len(parts) != 3 {
			continue
		}
		var rec struct {
			Op string `json:"op"`
			ID string `json:"id"`
		}
		if err := json.Unmarshal([]byte(parts[2]), &rec); err != nil {
			continue
		}
		if rec.ID == id && rec.Op == op {
			n++
		}
	}
	return n
}

// TestChaosTornJournalWrite: a torn journal append is a crash; the
// damaged line must be invisible to the next boot's replay and the job
// must still converge.
func TestChaosTornJournalWrite(t *testing.T) {
	trace := smallTrace(t)
	dir := t.TempDir()
	// Faulted writes, in order: #1 the trace image spill, #2 the accept
	// record, #3 the start record — which is the one that tears.
	s1, ts1 := durableServer(t, dir, func(c *config) {
		c.chaosSpec = "torn:3"
	})
	resp, _ := submitJob(t, ts1, "summary", trace, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !s1.jobs.Crashed() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !s1.jobs.Crashed() {
		t.Fatal("torn journal write did not crash the manager")
	}
	ts1.Close()
	s1.closeState()

	s2, ts2 := durableServer(t, dir, nil)
	if st := s2.jobs.Stats(); st.Damaged != 1 {
		t.Fatalf("torn line not dropped at replay: %+v", st)
	}
	adopted := s2.jobs.Jobs()
	if len(adopted) != 1 {
		t.Fatalf("replay adopted %d jobs", len(adopted))
	}
	done := waitJobStatus(t, ts2, adopted[0].ID, jobs.StatusDone)
	if done.ResultCRC == 0 {
		t.Fatalf("replayed job has no result CRC: %+v", done)
	}
}

// TestJobResultRecomputesAfterMemoryLoss: the /result endpoint restores
// through the disk tier even when the artifact object is corrupt — it
// recomputes from the durable raw image rather than erroring.
func TestJobResultRecomputesAfterMemoryLoss(t *testing.T) {
	trace := smallTrace(t)
	dir := t.TempDir()
	s1, ts1 := durableServer(t, dir, nil)
	resp, jb := submitJob(t, ts1, "profile", trace, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitJobStatus(t, ts1, jb.ID, jobs.StatusDone)
	_, want := getBody(t, ts1.URL+"/v1/jobs/"+jb.ID+"/result")
	ts1.Close()
	s1.closeState()

	// Corrupt the stored profile artifact; keep the raw image intact.
	key := cache.KeyOf(trace)
	objPath := filepath.Join(dir, "objects", key.String()+"."+cache.KindProfile)
	raw, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x40
	if err := os.WriteFile(objPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := durableServer(t, dir, nil)
	resp, got := getBody(t, ts2.URL+"/v1/jobs/"+jb.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result over corrupt artifact: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recomputed result differs")
	}
	if dst := s2.cache.Disk().Stats(); dst.Corrupt == 0 {
		t.Fatalf("corruption not detected: %+v", dst)
	}
}

// TestChaosPhaseListsAgree: the phases the chaos grammar accepts must
// match the manager's — a drifted list would silently skip kill points.
func TestChaosPhaseListsAgree(t *testing.T) {
	want := fmt.Sprint([]string{jobs.PhaseAccept, jobs.PhaseStart, jobs.PhaseRender, jobs.PhaseDone, jobs.PhaseWebhook})
	if got := fmt.Sprint(faults.JobPhases); got != want {
		t.Fatalf("faults.JobPhases drifted from the jobs package: %s vs %s", got, want)
	}
}

// TestJobSyncAllKinds: the degraded (no -state-dir) job endpoint must
// render every analysis kind byte-identically to its synchronous
// endpoint — the kind → renderer mapping has no odd one out.
func TestJobSyncAllKinds(t *testing.T) {
	trace := smallTrace(t)
	_, ts := testServer(t, nil)
	for _, kind := range cache.AnalysisKinds {
		_, want := post(t, ts.URL+"/v1/"+kind, trace)
		resp, got := post(t, ts.URL+"/v1/jobs?kind="+kind, trace)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: degraded submit status %d", kind, resp.StatusCode)
		}
		if resp.Header.Get("X-Pdt-Mode") != "sync" {
			t.Fatalf("%s: sync degrade not flagged", kind)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: sync job bytes differ from /v1/%s", kind, kind)
		}
	}
	// An unknown kind is rejected up front, durable or not.
	if resp, _ := post(t, ts.URL+"/v1/jobs?kind=nonsense", trace); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d", resp.StatusCode)
	}
}

// TestJobResultStates walks GET /v1/jobs/{id}/result through its
// non-happy states: unknown id → 404, job still pending → 409 with a
// derived Retry-After, terminally failed → 409 with the job document.
func TestJobResultStates(t *testing.T) {
	garbage := []byte("this is not a PDT trace image")

	// A huge backoff freezes the job in queued after its first failed
	// attempt, making the pending window deterministic.
	_, slow := durableServer(t, t.TempDir(), func(c *config) {
		c.jobBackoff = time.Hour
		c.jobBackoffCap = time.Hour
	})
	if resp, _ := getBody(t, slow.URL+"/v1/jobs/j-nope/result"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", resp.StatusCode)
	}
	resp, jb := submitJob(t, slow, cache.KindSummary, garbage, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur := waitJobStatus(t, slow, jb.ID, jobs.StatusQueued)
		if cur.Attempts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached its backoff window")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, _ = getBody(t, slow.URL+"/v1/jobs/"+jb.ID+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("pending result: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("pending result missing Retry-After")
	}

	// Fast backoff: the same garbage exhausts its attempt budget and
	// fails terminally; the result endpoint reports that, not a 500.
	_, fast := durableServer(t, t.TempDir(), nil)
	resp, jb = submitJob(t, fast, cache.KindSummary, garbage, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	failed := waitJobStatus(t, fast, jb.ID, jobs.StatusFailed)
	if failed.Error == "" {
		t.Fatal("failed job carries no error")
	}
	resp, body := getBody(t, fast.URL+"/v1/jobs/"+jb.ID+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("failed result: status %d %s", resp.StatusCode, body)
	}
	var doc jobs.Job
	if err := json.Unmarshal(body, &doc); err != nil || doc.Status != jobs.StatusFailed {
		t.Fatalf("failed result body: %v %s", err, body)
	}
}
