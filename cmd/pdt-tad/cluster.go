package main

// Cluster mode. With -peers and -self the daemon becomes one replica in
// a consistent-hash ring: every trace key (SHA-256 of the upload) has an
// owner replica, and on a local cache miss the serving replica asks the
// owner for its cached artifact before recomputing. The peer protocol is
// a single read-only endpoint — GET /v1/cluster/artifact/{key}/{kind},
// CRC-framed — so a cold owner answers cheaply and no replica can be
// made to compute on another's behalf. Peer calls run through
// internal/cluster's resilience stack (timeouts, jittered capped
// backoff, per-peer circuit breakers); any failure degrades to local
// computation, marked X-Pdt-Cluster: degraded, never a 5xx.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/celltrace/pdt/internal/analyzer/cache"
	"github.com/celltrace/pdt/internal/cluster"
	"github.com/celltrace/pdt/internal/faults"
)

// parsePeers parses "a=http://h1:8329,b=http://h2:8329" into a name→URL
// map. Names are the spelling the fault grammar's netdrop/partition
// directives and the ring use; URLs must carry a scheme.
func parsePeers(spec string) (map[string]string, error) {
	peers := map[string]string{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("-peers: want name=URL, got %q", part)
		}
		if !strings.Contains(url, "://") {
			return nil, fmt.Errorf("-peers: %s: URL %q has no scheme", name, url)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("-peers: duplicate name %q", name)
		}
		peers[name] = strings.TrimRight(url, "/")
	}
	if len(peers) == 0 {
		return nil, errors.New("-peers: empty peer list")
	}
	return peers, nil
}

// setupCluster builds the ring client from -peers/-self. Call after the
// chaos plan is parsed (the fault transport needs it) and before the
// server starts handling requests.
func (s *server) setupCluster() error {
	if s.cfg.peersSpec == "" {
		if s.cfg.selfName != "" {
			return errors.New("-self requires -peers")
		}
		return nil
	}
	if s.cfg.selfName == "" {
		return errors.New("-peers requires -self")
	}
	if s.cache == nil {
		return errors.New("-peers requires the cache to be enabled")
	}
	peers, err := parsePeers(s.cfg.peersSpec)
	if err != nil {
		return err
	}
	var transport http.RoundTripper = http.DefaultTransport
	if s.chaos != nil {
		transport = &netFaultTransport{self: s.cfg.selfName, plan: s.chaos, next: transport}
	}
	c, err := cluster.New(cluster.Config{
		Self:             s.cfg.selfName,
		Peers:            peers,
		Timeout:          s.cfg.peerTimeout,
		Attempts:         s.cfg.peerAttempts,
		BackoffBase:      s.cfg.peerBackoff,
		BackoffCap:       s.cfg.peerBackoffCap,
		BreakerThreshold: s.cfg.peerBreakerThreshold,
		BreakerCooldown:  s.cfg.peerBreakerCooldown,
		Transport:        transport,
	})
	if err != nil {
		return err
	}
	s.cluster = c
	s.log.Info("cluster mode", "self", c.Self(), "replicas", len(peers))
	return nil
}

// netFaultTransport injects the chaos plan's network directives into
// outgoing peer calls: netlat delays first, then netdrop/partition turn
// the call into a transport error — which is exactly what a real broken
// link looks like to the cluster client, so retries, breakers, and the
// degraded path are exercised end to end.
type netFaultTransport struct {
	self string
	plan *faults.ServicePlan
	next http.RoundTripper
}

func (t *netFaultTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	peer := cluster.TargetPeer(r)
	delay, drop := t.plan.NetFault(t.self, peer)
	if delay > 0 {
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
	}
	if drop {
		return nil, fmt.Errorf("%w (%s -> %s)", faults.ErrNetDrop, t.self, peer)
	}
	return t.next.RoundTrip(r)
}

// clusterNote carries the routing outcome from the render path (which
// only sees an io.Writer) back to the HTTP layer, which turns it into
// the X-Pdt-Cluster response header.
type clusterNote struct{ v string }

type clusterNoteKey struct{}

func (s *server) noteCluster(ctx context.Context, v string) {
	if n, _ := ctx.Value(clusterNoteKey{}).(*clusterNote); n != nil {
		n.v = v
	}
}

// clusterFetch consults the key's owner replica for an already-rendered
// artifact. It returns (bytes, true) only on a remote hit; on a clean
// miss or any failure the caller computes locally, and failures mark
// the request degraded — the ring losing a member must never surface as
// an error to the uploader.
func (s *server) clusterFetch(ctx context.Context, key cache.Key, kind string) ([]byte, bool) {
	owner := s.cluster.Owner(cluster.Key(key))
	if owner == s.cluster.Self() {
		s.noteCluster(ctx, "self")
		return nil, false
	}
	b, err := s.cluster.FetchArtifact(ctx, owner, cluster.Key(key), kind)
	switch {
	case err == nil:
		b = s.cache.AdoptArtifact(key, kind, b)
		s.noteCluster(ctx, "hit:"+owner)
		return b, true
	case errors.Is(err, cluster.ErrNotCached):
		s.noteCluster(ctx, "miss:"+owner)
		return nil, false
	case ctx.Err() != nil:
		// Our request's own deadline died; what little budget remains
		// belongs to the local attempt, not to blame-keeping.
		return nil, false
	default:
		s.clusterFallbacks.Add(1)
		s.noteCluster(ctx, "degraded")
		s.log.Warn("cluster: owner unreachable, computing locally",
			"owner", owner, "kind", kind, "err", err)
		return nil, false
	}
}

// handleClusterArtifact serves GET /v1/cluster/artifact/{key}/{kind}:
// a read-only peek into the local cache tiers, CRC-framed. It never
// computes and never touches admission control — a peek must stay cheap
// on a replica that is saturated with real analyses.
func (s *server) handleClusterArtifact(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeError(w, http.StatusNotFound, errors.New("cluster mode disabled"))
		return
	}
	key, ok := cache.ParseKey(r.PathValue("key"))
	if !ok {
		s.writeError(w, http.StatusBadRequest, errors.New("malformed trace key"))
		return
	}
	kind := r.PathValue("kind")
	if !cache.ValidKind(kind) {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown artifact kind %q", kind))
		return
	}
	b, ok := s.cache.Peek(key, kind)
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("not cached here"))
		return
	}
	frame := cluster.EncodeFrame(b)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	_, _ = w.Write(frame)
}

// clusterStats is the /v1/stats cluster section.
type clusterStats struct {
	Self string `json:"self"`
	// Degraded/Reason mirror what readyz reports: some peer's breaker is
	// open, the ring is serving locally where it would rather peek.
	Degraded bool   `json:"degraded"`
	Reason   string `json:"reason,omitempty"`
	// LocalFallbacks counts requests served by local computation because
	// the key's owner was unreachable.
	LocalFallbacks uint64               `json:"localFallbacks"`
	Replicas       []string             `json:"replicas"`
	Peers          []cluster.PeerStatus `json:"peers"`
}

func (s *server) clusterStatsSnapshot() *clusterStats {
	if s.cluster == nil {
		return nil
	}
	deg, reason := s.cluster.Degraded()
	replicas := s.cluster.Peers()
	sort.Strings(replicas)
	return &clusterStats{
		Self:           s.cluster.Self(),
		Degraded:       deg,
		Reason:         reason,
		LocalFallbacks: s.clusterFallbacks.Load(),
		Replicas:       replicas,
		Peers:          s.cluster.Status(),
	}
}
