package main

// The multi-replica chaos suite (make chaos-cluster). Three in-process
// replicas form a ring; the suite cuts links mid-request, crashes a
// replica outright, and asserts the acceptance contract: every request
// — in-flight and subsequent — answers 200 with bytes identical to a
// single-node deployment, the cut peer's breaker opens on the survivors,
// and re-closes once the partition heals. Run under -race: the fault
// plan is mutated from the test while request goroutines consult it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/celltrace/pdt/internal/cluster"
	"github.com/celltrace/pdt/internal/faults"
	"github.com/celltrace/pdt/internal/jobs"
)

// chaosRing builds n replicas, each with an armed, runtime-mutable
// fault plan; plans[i] is replica i's view of the network.
func chaosRing(t *testing.T, n int, mut func(i int, cfg *config)) ([]*server, []string, []*faults.ServicePlan) {
	t.Helper()
	plans := make([]*faults.ServicePlan, n)
	servers, urls, _ := ringServersHook(t, n, mut, func(i int, s *server) {
		p, err := faults.ParseService("")
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = p
		s.chaos = p
	})
	return servers, urls, plans
}

// chaosTraces builds distinct trace images so ownership spreads across
// the ring, plus their single-node golden summaries.
func chaosTraces(t *testing.T) (traces, golden [][]byte) {
	t.Helper()
	for _, p := range []map[string]string{
		{"w": "64", "h": "32", "maxiter": "32"},
		{"w": "48", "h": "48", "maxiter": "24"},
		{"w": "80", "h": "24", "maxiter": "16"},
		{"w": "32", "h": "64", "maxiter": "40"},
	} {
		traces = append(traces, traceBytes(t, p))
	}
	_, single := testServer(t, nil)
	for _, tr := range traces {
		resp, b := post(t, single.URL+"/v1/summary", tr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("golden: %d: %s", resp.StatusCode, b)
		}
		golden = append(golden, b)
	}
	return traces, golden
}

// TestChaosClusterPartitionMidRequest is the acceptance scenario: one
// of three replicas is partitioned away while requests are in flight.
func TestChaosClusterPartitionMidRequest(t *testing.T) {
	traces, golden := chaosTraces(t)
	servers, urls, plans := chaosRing(t, 3, func(i int, cfg *config) {
		cfg.peerAttempts = 1
		cfg.peerBreakerThreshold = 2
		cfg.peerBreakerCooldown = 150 * time.Millisecond
	})
	victim := ownerOf(t, servers, traces[0])
	victimName := servers[victim].cluster.Self()
	var survivors []int
	var survivorNames []string
	for i, s := range servers {
		if i != victim {
			survivors = append(survivors, i)
			survivorNames = append(survivorNames, s.cluster.Self())
		}
	}

	// Flood every replica with every trace while the partition lands
	// halfway through. One goroutine per (replica, trace) keeps each
	// replica inside its admission budget, so a non-200 can only mean a
	// real failure, never load shedding.
	const perWorker = 12
	var wg sync.WaitGroup
	var wrong atomic.Int32
	for ri := range servers {
		for ti := range traces {
			wg.Add(1)
			go func(ri, ti int) {
				defer wg.Done()
				for n := 0; n < perWorker; n++ {
					resp, err := http.Post(urls[ri]+"/v1/summary", "application/octet-stream", bytes.NewReader(traces[ti]))
					if err != nil {
						wrong.Add(1)
						t.Errorf("replica %d trace %d: %v", ri, ti, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK || !bytes.Equal(body, golden[ti]) {
						wrong.Add(1)
						t.Errorf("replica %d trace %d req %d: status %d, identical=%v",
							ri, ti, n, resp.StatusCode, bytes.Equal(body, golden[ti]))
						return
					}
				}
			}(ri, ti)
		}
	}
	// Land the partition mid-flood, on every replica's plan at once.
	time.Sleep(50 * time.Millisecond)
	for _, p := range plans {
		p.Partition([]string{victimName}, survivorNames)
	}
	wg.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d requests failed the contract during the partition", wrong.Load())
	}

	// Survivors' breakers toward the victim must open: keep poking keys
	// the victim owns until the consecutive-failure threshold trips.
	victimTrace := -1
	for ti := range traces {
		if ownerOf(t, servers, traces[ti]) == victim {
			victimTrace = ti
			break
		}
	}
	if victimTrace < 0 {
		t.Fatal("no trace owned by the victim")
	}
	for _, si := range survivors {
		// Fresh keys force peer consults (cached ones serve locally).
		br := servers[si].cluster.Breaker(victimName)
		deadline := time.Now().Add(5 * time.Second)
		for n := 0; br.State() != cluster.StateOpen; n++ {
			if time.Now().After(deadline) {
				t.Fatalf("survivor %d: breaker toward %s never opened", si, victimName)
			}
			tr := traceBytes(t, map[string]string{"w": fmt.Sprint(16 * (7 + n)), "h": "16", "maxiter": "16"})
			if ownerOf(t, servers, tr) != victim {
				continue
			}
			resp, err := http.Post(urls[si]+"/v1/summary", "application/octet-stream", bytes.NewReader(tr))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("survivor %d answered %d during partition", si, resp.StatusCode)
			}
		}
		// Degraded is visible, readiness is not failed.
		resp, err := http.Get(urls[si] + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("survivor %d readyz %d during partition", si, resp.StatusCode)
		}
		if !bytes.Contains(body, []byte("degraded")) {
			t.Fatalf("survivor %d readyz %q does not say degraded", si, body)
		}
	}

	// Heal. After the cooldown the next fetch is the half-open probe;
	// its success must re-close the breaker on every survivor.
	for _, p := range plans {
		p.Heal()
	}
	time.Sleep(200 * time.Millisecond)
	for _, si := range survivors {
		br := servers[si].cluster.Breaker(victimName)
		deadline := time.Now().Add(5 * time.Second)
		for n := 0; br.State() != cluster.StateClosed; n++ {
			if time.Now().After(deadline) {
				t.Fatalf("survivor %d: breaker toward %s never re-closed after heal", si, victimName)
			}
			tr := traceBytes(t, map[string]string{"w": fmt.Sprint(16 * (7 + n)), "h": "20", "maxiter": "16"})
			if ownerOf(t, servers, tr) != victim {
				continue
			}
			resp, err := http.Post(urls[si]+"/v1/summary", "application/octet-stream", bytes.NewReader(tr))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("survivor %d answered %d after heal", si, resp.StatusCode)
			}
		}
		if reason := servers[si].degradedReason(); reason != "" {
			t.Fatalf("survivor %d still degraded after heal: %s", si, reason)
		}
	}
}

// TestChaosClusterReplicaCrashMidRequest kills a replica's listener
// outright (connection refused, not a polite drop) while requests are
// in flight on the survivors.
func TestChaosClusterReplicaCrashMidRequest(t *testing.T) {
	traces, golden := chaosTraces(t)
	servers, urls, tss := ringServersHook(t, 3, func(i int, cfg *config) {
		cfg.peerAttempts = 1
		cfg.peerBreakerThreshold = 2
	}, nil)
	victim := ownerOf(t, servers, traces[0])

	var wg sync.WaitGroup
	var wrong atomic.Int32
	for ri := range servers {
		if ri == victim {
			continue
		}
		for ti := range traces {
			wg.Add(1)
			go func(ri, ti int) {
				defer wg.Done()
				for n := 0; n < 10; n++ {
					resp, err := http.Post(urls[ri]+"/v1/summary", "application/octet-stream", bytes.NewReader(traces[ti]))
					if err != nil {
						wrong.Add(1)
						t.Errorf("replica %d trace %d: %v", ri, ti, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK || !bytes.Equal(body, golden[ti]) {
						wrong.Add(1)
						t.Errorf("replica %d trace %d: status %d", ri, ti, resp.StatusCode)
						return
					}
				}
			}(ri, ti)
		}
	}
	time.Sleep(30 * time.Millisecond)
	tss[victim].CloseClientConnections()
	tss[victim].Close()
	wg.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d requests failed the contract after the crash", wrong.Load())
	}
}

// TestChaosClusterNoDuplicateJobs submits the same trace as an async
// job on every replica during a partition: each replica journals and
// executes its own job exactly once — the ring must not re-run or
// double-deliver work because the network is down.
func TestChaosClusterNoDuplicateJobs(t *testing.T) {
	traces, golden := chaosTraces(t)
	stateDirs := make([]string, 3)
	servers, urls, plans := chaosRing(t, 3, func(i int, cfg *config) {
		stateDirs[i] = t.TempDir()
		cfg.stateDir = stateDirs[i]
		cfg.peerAttempts = 1
	})
	victim := ownerOf(t, servers, traces[0])
	victimName := servers[victim].cluster.Self()
	var survivorNames []string
	for i, s := range servers {
		if i != victim {
			survivorNames = append(survivorNames, s.cluster.Self())
		}
	}
	for _, p := range plans {
		p.Partition([]string{victimName}, survivorNames)
	}

	ids := make([]string, len(servers))
	for i := range servers {
		resp, body := post(t, urls[i]+"/v1/jobs?kind=summary", traces[0])
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("replica %d: submit %d: %s", i, resp.StatusCode, body)
		}
		var jb jobs.Job
		if err := json.Unmarshal(body, &jb); err != nil {
			t.Fatal(err)
		}
		ids[i] = jb.ID
	}
	for i, id := range ids {
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(urls[i] + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var jb jobs.Job
			if err := json.NewDecoder(resp.Body).Decode(&jb); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if jb.Status == jobs.StatusDone {
				break
			}
			if jb.Status == jobs.StatusFailed || time.Now().After(deadline) {
				t.Fatalf("replica %d job %s: %s", i, id, jb.Status)
			}
			time.Sleep(20 * time.Millisecond)
		}
		// The result is the same bytes a single node computes.
		resp, err := http.Get(urls[i] + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, golden[0]) {
			t.Fatalf("replica %d result: %d, identical=%v", i, resp.StatusCode, bytes.Equal(body, golden[0]))
		}
		// Exactly one execution in the journal: one start, one done.
		raw, err := os.ReadFile(filepath.Join(stateDirs[i], "jobs.journal"))
		if err != nil {
			t.Fatal(err)
		}
		if n := countJournalOps(raw, id, "start"); n != 1 {
			t.Fatalf("replica %d job %s: %d starts", i, id, n)
		}
		if n := countJournalOps(raw, id, "done"); n != 1 {
			t.Fatalf("replica %d job %s: %d dones", i, id, n)
		}
	}
}
