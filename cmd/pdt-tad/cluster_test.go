package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/celltrace/pdt/internal/analyzer/cache"
	"github.com/celltrace/pdt/internal/cluster"
)

// ringServers starts n in-process replicas wired into one ring. Every
// replica knows every URL up front: listeners are bound before any
// server is built, so the -peers list is complete from the first boot.
// Returns the servers and their base URLs, index-aligned with the
// replica names "a", "b", "c", ...
func ringServers(t *testing.T, n int, mut func(i int, cfg *config)) ([]*server, []string) {
	t.Helper()
	servers, urls, _ := ringServersHook(t, n, mut, nil)
	return servers, urls
}

// ringServersHook is ringServers with a seam between newServer and
// setupState — the chaos suite uses it to arm a runtime-mutable fault
// plan before the peer transport is built — and with the HTTP servers
// returned so a test can crash one mid-flight.
func ringServersHook(t *testing.T, n int, mut func(i int, cfg *config), postNew func(i int, s *server)) ([]*server, []string, []*httptest.Server) {
	t.Helper()
	names := make([]string, n)
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	var peersSpec strings.Builder
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
		if i > 0 {
			peersSpec.WriteByte(',')
		}
		fmt.Fprintf(&peersSpec, "%s=%s", names[i], urls[i])
	}
	servers := make([]*server, n)
	tss := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		cfg := defaultConfig()
		cfg.peersSpec = peersSpec.String()
		cfg.selfName = names[i]
		// Fast failure detection so ring tests stay quick.
		cfg.peerTimeout = 500 * time.Millisecond
		cfg.peerBackoff = 5 * time.Millisecond
		cfg.peerBackoffCap = 20 * time.Millisecond
		cfg.peerBreakerCooldown = 200 * time.Millisecond
		if mut != nil {
			mut(i, &cfg)
		}
		s := newServer(cfg, quietLogger())
		if postNew != nil {
			postNew(i, s)
		}
		if err := s.setupState(); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(s.handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		t.Cleanup(ts.Close)
		t.Cleanup(s.closeState)
		servers[i] = s
		tss[i] = ts
	}
	return servers, urls, tss
}

// ownerOf maps a trace image to its owning replica index.
func ownerOf(t *testing.T, servers []*server, data []byte) int {
	t.Helper()
	owner := servers[0].cluster.Owner(cluster.Key(cache.KeyOf(data)))
	for i, s := range servers {
		if s.cluster.Self() == owner {
			return i
		}
	}
	t.Fatalf("owner %q not among the replicas", owner)
	return -1
}

func TestClusterRemoteHitIsByteIdentical(t *testing.T) {
	servers, urls := ringServers(t, 2, nil)
	trace := smallTrace(t)
	owner := ownerOf(t, servers, trace)
	other := 1 - owner

	// Warm the owner, then hit the other replica: it must peek the
	// owner's cache and serve the exact same bytes without recomputing.
	resp, want := post(t, urls[owner]+"/v1/summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: %d: %s", resp.StatusCode, want)
	}
	resp, got := post(t, urls[other]+"/v1/summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed request: %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("remote hit not byte-identical to the owner's artifact")
	}
	ownerName := servers[owner].cluster.Self()
	if h := resp.Header.Get("X-Pdt-Cluster"); h != "hit:"+ownerName {
		t.Fatalf("X-Pdt-Cluster = %q, want hit:%s", h, ownerName)
	}

	// The fetched artifact was adopted: the next request is local.
	resp, _ = post(t, urls[other]+"/v1/summary", trace)
	if h := resp.Header.Get("X-Pdt-Cluster"); h != "local" {
		t.Fatalf("after adoption X-Pdt-Cluster = %q, want local", h)
	}
}

func TestClusterColdOwnerIsACleanMiss(t *testing.T) {
	servers, urls := ringServers(t, 2, nil)
	trace := smallTrace(t)
	owner := ownerOf(t, servers, trace)
	other := 1 - owner

	resp, body := post(t, urls[other]+"/v1/summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ownerName := servers[owner].cluster.Self()
	if h := resp.Header.Get("X-Pdt-Cluster"); h != "miss:"+ownerName {
		t.Fatalf("X-Pdt-Cluster = %q, want miss:%s", h, ownerName)
	}
	// A clean miss is not degradation: the breaker stays closed.
	if st := servers[other].cluster.Status(); st[0].Failures != 0 {
		t.Fatalf("cold owner scored as failure: %+v", st)
	}
}

func TestClusterOwnerServesSelf(t *testing.T) {
	servers, urls := ringServers(t, 2, nil)
	trace := smallTrace(t)
	owner := ownerOf(t, servers, trace)

	resp, body := post(t, urls[owner]+"/v1/summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Pdt-Cluster"); h != "self" {
		t.Fatalf("X-Pdt-Cluster = %q, want self", h)
	}
}

func TestClusterPeekEndpoint(t *testing.T) {
	servers, urls := ringServers(t, 2, nil)
	trace := smallTrace(t)
	owner := ownerOf(t, servers, trace)
	key := cache.KeyOf(trace)

	peekURL := fmt.Sprintf("%s/v1/cluster/artifact/%s/%s", urls[owner], key, cache.KindSummary)
	resp, err := http.Get(peekURL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold peek: %d, want 404", resp.StatusCode)
	}

	_, want := post(t, urls[owner]+"/v1/summary", trace)
	resp, err = http.Get(peekURL)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm peek: %d: %s", resp.StatusCode, raw)
	}
	payload, err := cluster.DecodeFrame(raw)
	if err != nil {
		t.Fatalf("peek frame: %v", err)
	}
	if !bytes.Equal(payload, want) {
		t.Fatal("peeked artifact differs from the served one")
	}

	// Malformed requests are rejected, not computed.
	for _, path := range []string{
		"/v1/cluster/artifact/nothex/summary",
		"/v1/cluster/artifact/" + key.String() + "/nonesuch",
	} {
		resp, err := http.Get(urls[owner] + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestClusterPeekDisabledWithoutPeers(t *testing.T) {
	_, ts := testServer(t, nil)
	key := cache.KeyOf([]byte("x"))
	resp, err := http.Get(fmt.Sprintf("%s/v1/cluster/artifact/%s/summary", ts.URL, key))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestClusterDegradedNeverErrors is the heart of the failure semantics:
// with the owner unreachable the request is computed locally, marked
// degraded, and byte-identical to a single-node answer — never a 5xx.
func TestClusterDegradedNeverErrors(t *testing.T) {
	trace := smallTrace(t)
	// Single-node golden answer.
	_, ts := testServer(t, nil)
	resp, want := post(t, ts.URL+"/v1/summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("golden: %d", resp.StatusCode)
	}

	// Every peer call from every replica drops: whatever replica we hit,
	// its view of the owner is a dead link.
	servers, urls := ringServers(t, 2, func(i int, cfg *config) {
		cfg.chaosSpec = "netdrop:*:*"
	})
	owner := ownerOf(t, servers, trace)
	other := 1 - owner

	resp, got := post(t, urls[other]+"/v1/summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request: %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded answer differs from single-node answer")
	}
	if h := resp.Header.Get("X-Pdt-Cluster"); h != "degraded" {
		t.Fatalf("X-Pdt-Cluster = %q, want degraded", h)
	}
	if n := servers[other].clusterFallbacks.Load(); n != 1 {
		t.Fatalf("localFallbacks = %d, want 1", n)
	}
}

func TestClusterStatsAndReadyzSurfaceBreakerState(t *testing.T) {
	trace := smallTrace(t)
	servers, urls := ringServers(t, 2, func(i int, cfg *config) {
		cfg.chaosSpec = "netdrop:*:*"
		cfg.peerBreakerThreshold = 2
		cfg.peerAttempts = 2
	})
	owner := ownerOf(t, servers, trace)
	other := 1 - owner

	// One request = two failed attempts = threshold: breaker opens.
	resp, _ := post(t, urls[other]+"/v1/summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	ownerName := servers[owner].cluster.Self()
	if st := servers[other].cluster.Breaker(ownerName).State(); st != cluster.StateOpen {
		t.Fatalf("breaker %v, want open", st)
	}

	sresp, err := http.Get(urls[other] + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	cl, ok := st["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("no cluster section in stats: %v", st)
	}
	if cl["degraded"] != true {
		t.Fatalf("stats degraded = %v", cl["degraded"])
	}
	if !strings.Contains(cl["reason"].(string), ownerName) {
		t.Fatalf("stats reason %q does not name the peer", cl["reason"])
	}
	peers := cl["peers"].([]any)
	if len(peers) != 1 {
		t.Fatalf("peers: %v", peers)
	}
	if p := peers[0].(map[string]any); p["breaker"] != "open" || p["failures"].(float64) < 2 {
		t.Fatalf("peer status %v", p)
	}

	// Degraded is visible on readyz but is not a readiness failure.
	rresp, err := http.Get(urls[other] + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d, want 200", rresp.StatusCode)
	}
	if !strings.Contains(string(body), "degraded") || !strings.Contains(string(body), ownerName) {
		t.Fatalf("readyz body %q", body)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("a=http://h1:1, b=http://h2:2/")
	if err != nil {
		t.Fatal(err)
	}
	if peers["a"] != "http://h1:1" || peers["b"] != "http://h2:2" {
		t.Fatalf("peers %v", peers)
	}
	for _, spec := range []string{
		"",                      // empty
		"a=http://x,a=http://y", // duplicate
		"a=hostport",            // no scheme
		"=http://x",             // no name
		"a",                     // no URL
	} {
		if _, err := parsePeers(spec); err == nil {
			t.Errorf("parsePeers(%q) accepted", spec)
		}
	}
}

func TestClusterConfigValidation(t *testing.T) {
	for _, tc := range []struct{ peers, self string }{
		{"", "a"},                      // -self without -peers
		{"a=http://x", ""},             // -peers without -self
		{"a=http://x,b=http://y", "z"}, // self not in list
	} {
		cfg := defaultConfig()
		cfg.peersSpec = tc.peers
		cfg.selfName = tc.self
		s := newServer(cfg, quietLogger())
		if err := s.setupState(); err == nil {
			t.Errorf("peers=%q self=%q accepted", tc.peers, tc.self)
		}
	}
}

func TestGzipUploadMatchesPlain(t *testing.T) {
	_, ts := testServer(t, nil)
	trace := smallTrace(t)
	_, want := post(t, ts.URL+"/v1/summary", trace)

	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(trace); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/summary", bytes.NewReader(zbuf.Bytes()))
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gzip upload: %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gzip upload answered differently than the plain upload")
	}
}

func TestGzipUploadRejections(t *testing.T) {
	_, ts := testServer(t, func(cfg *config) {
		cfg.maxBody = 4096
		cfg.limits.MaxFileBytes = 4096
	})

	// A tiny compressed body whose decompressed size exceeds the cap:
	// the limit applies to what comes out of the decompressor.
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	if zbuf.Len() >= 4096 {
		t.Fatalf("bomb not small on the wire: %d bytes", zbuf.Len())
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/summary", bytes.NewReader(zbuf.Bytes()))
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("gzip bomb: %d, want 413", resp.StatusCode)
	}

	// Garbage under a gzip header is a 400, not a 500.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/summary", strings.NewReader("not gzip"))
	req.Header.Set("Content-Encoding", "gzip")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad gzip: %d, want 400", resp.StatusCode)
	}

	// Unknown encodings are refused up front.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/summary", strings.NewReader("x"))
	req.Header.Set("Content-Encoding", "br")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("unknown encoding: %d, want 415", resp.StatusCode)
	}
}

func TestGzipResponseNegotiation(t *testing.T) {
	_, ts := testServer(t, nil)
	trace := smallTrace(t)
	_, want := post(t, ts.URL+"/v1/summary", trace)

	// Explicit Accept-Encoding, transparent decompression disabled: the
	// wire bytes must actually be gzip.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/summary", bytes.NewReader(trace))
	req.Header.Set("Accept-Encoding", "gzip")
	tr := &http.Transport{DisableCompression: true}
	defer tr.CloseIdleConnections()
	resp, err := (&http.Client{Transport: tr}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q", resp.Header.Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gzip response decompressed to different bytes")
	}
	if len(raw) >= len(want) {
		t.Fatalf("compression did not shrink the body: %d vs %d", len(raw), len(want))
	}

	// No Accept-Encoding: identity bytes.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/summary", bytes.NewReader(trace))
	resp, err = (&http.Client{Transport: tr}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "" {
		t.Fatalf("unsolicited Content-Encoding %q", resp.Header.Get("Content-Encoding"))
	}
	if !bytes.Equal(plain, want) {
		t.Fatal("identity response differs")
	}
}
