package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer/cache"
)

// postCycles sends one /v1/cycles request through the full handler stack.
func postCycles(t testing.TB, s *server, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/cycles", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/octet-stream")
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, req)
	return rec
}

// TestCyclesEndpoint drives POST /v1/cycles in both cache modes. The
// synthetic trace's 40 evenly spaced MFC gets are as periodic as a
// trace can be, so detection must fire and count one cycle per record.
func TestCyclesEndpoint(t *testing.T) {
	data := buildNamedTrace(t, "wl", 40)

	for _, tc := range []struct {
		name  string
		cache bool
	}{{"cached", true}, {"uncached", false}} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := defaultConfig()
			if !tc.cache {
				cfg.cacheBytes, cfg.cacheEntries = 0, 0
			}
			s := newServer(cfg, quietLogger())

			rec := postCycles(t, s, data)
			if rec.Code != http.StatusOK {
				t.Fatalf("status %d, body %s", rec.Code, rec.Body.String())
			}
			var rep struct {
				Workload    string `json:"workload"`
				TotalCycles int    `json:"totalCycles"`
				Runs        []struct {
					Detected bool `json:"detected"`
				} `json:"runs"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
				t.Fatal(err)
			}
			if rep.Workload != "wl" || len(rep.Runs) != 1 || !rep.Runs[0].Detected {
				t.Fatalf("cycles report = %+v, want one detected run for workload wl", rep)
			}
			if rep.TotalCycles == 0 {
				t.Fatal("periodic trace detected but reports zero cycles")
			}
		})
	}
}

// TestCyclesEndpointCachedArtifact verifies the second identical request
// is served from the memoized artifact: same bytes out, no second trace
// load (one miss, then hits).
func TestCyclesEndpointCachedArtifact(t *testing.T) {
	data := buildNamedTrace(t, "wl", 40)
	s := newServer(defaultConfig(), quietLogger())

	first := postCycles(t, s, data)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: status %d", first.Code)
	}
	second := postCycles(t, s, data)
	if second.Code != http.StatusOK {
		t.Fatalf("second request: status %d", second.Code)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cached cycles artifact differs from the first render")
	}
	st := s.cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("cache stats %+v: want exactly 1 miss for one distinct image", st)
	}
	if st.Hits < 1 {
		t.Fatalf("cache stats %+v: second request should have hit", st)
	}
	if _, ok := s.cache.Peek(cache.KeyOf(data), cache.KindCycles); !ok {
		t.Fatal("cycles artifact not peekable after a served request")
	}
}

// TestDiffEndpointModes drives /v1/diff?mode=: align adds the per-cycle
// layer to the JSON document, an unknown mode is a clean 400, and no
// mode keeps the document cycle-free (the compatibility contract).
func TestDiffEndpointModes(t *testing.T) {
	a := buildNamedTrace(t, "wl", 40)
	b := buildNamedTrace(t, "wl", 80)
	body := diffBody(t, a, b)
	ct := "multipart/form-data; boundary=" + diffBoundary

	for _, tc := range []struct {
		name  string
		cache bool
	}{{"cached", true}, {"uncached", false}} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := defaultConfig()
			if !tc.cache {
				cfg.cacheBytes, cfg.cacheEntries = 0, 0
			}
			s := newServer(cfg, quietLogger())
			h := s.handler()

			post := func(path string) *httptest.ResponseRecorder {
				req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
				req.Header.Set("Content-Type", ct)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				return rec
			}

			rec := post("/v1/diff?mode=align")
			if rec.Code != http.StatusOK {
				t.Fatalf("mode=align: status %d, body %s", rec.Code, rec.Body.String())
			}
			var rep struct {
				Cycles *struct {
					Mode string `json:"mode"`
				} `json:"cycles"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
				t.Fatal(err)
			}
			if rep.Cycles == nil || rep.Cycles.Mode != "align" {
				t.Fatalf("mode=align response carries no align cycle layer: %s", rec.Body.String())
			}

			rec = post("/v1/diff?mode=bogus")
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("mode=bogus: status %d, want 400; body %s", rec.Code, rec.Body.String())
			}
			if !strings.Contains(rec.Body.String(), "mode") {
				t.Fatalf("mode=bogus error does not mention the mode: %s", rec.Body.String())
			}

			rec = post("/v1/diff")
			if rec.Code != http.StatusOK {
				t.Fatalf("no mode: status %d", rec.Code)
			}
			if bytes.Contains(rec.Body.Bytes(), []byte(`"cycles"`)) {
				t.Fatal("mode-less diff response grew a cycles key")
			}
		})
	}
}
