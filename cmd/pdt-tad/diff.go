package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cache"
	"github.com/celltrace/pdt/internal/analyzer/diff"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// diffSides extracts the two trace images from a /v1/diff request body.
// Two encodings are accepted:
//
//   - multipart/form-data with parts named "a" and "b" (curl -F a=@x.pdt
//     -F b=@y.pdt), and
//   - a JSON document {"a": "<base64>", "b": "<base64>"}.
func diffSides(r *http.Request, data []byte) (a, b []byte, err error) {
	ct := r.Header.Get("Content-Type")
	mt, params, _ := mime.ParseMediaType(ct)
	if mt == "multipart/form-data" {
		boundary := params["boundary"]
		if boundary == "" {
			return nil, nil, errors.New("multipart body without boundary")
		}
		mr := multipart.NewReader(bytes.NewReader(data), boundary)
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, nil, fmt.Errorf("reading multipart body: %w", err)
			}
			buf, err := io.ReadAll(part)
			if err != nil {
				return nil, nil, fmt.Errorf("reading part %q: %w", part.FormName(), err)
			}
			switch part.FormName() {
			case "a":
				a = buf
			case "b":
				b = buf
			}
		}
	} else {
		var body struct {
			A []byte `json:"a"`
			B []byte `json:"b"`
		}
		if err := json.Unmarshal(data, &body); err != nil {
			return nil, nil, fmt.Errorf(`diff body must be multipart (fields "a","b") or JSON {"a":base64,"b":base64}: %w`, err)
		}
		a, b = body.A, body.B
	}
	if len(a) == 0 || len(b) == 0 {
		return nil, nil, errors.New(`diff needs both sides: multipart fields (or JSON keys) "a" and "b"`)
	}
	return a, b, nil
}

// renderDiff serves POST /v1/diff: load both sides (through the shared
// content-addressed cache when enabled, so each distinct image loads
// once no matter how many diffs reference it), diff them, and emit the
// structured report. A corrupt side comes back as a doctor-style 422
// naming the side and carrying its recovery report with partial
// confidence; a workload mismatch or a bad ?mode= is a clear 400.
//
// The optional ?mode=match|align query parameter turns on the per-cycle
// layer; with the cache enabled the cycle reports come from the handles'
// memoized artifacts, so repeated cycle-aware diffs of the same images
// never re-detect.
func (s *server) renderDiff(ctx context.Context, r *http.Request, data []byte, w io.Writer) error {
	da, db, err := diffSides(r, data)
	if err != nil {
		return err
	}
	var trA, trB *analyzer.Trace
	opt := diff.Options{Mode: r.URL.Query().Get("mode")}
	if s.cache != nil {
		ha, hb, err := s.cache.LoadPair(ctx, da, db, s.cfg.limits)
		if err != nil {
			return s.diffLoadError(ctx, err)
		}
		trA, trB = ha.Trace(), hb.Trace()
		opt.CritPathA, opt.CritPathB = ha.CriticalPath(), hb.CriticalPath()
		if opt.Mode != "" {
			opt.CyclesA, opt.CyclesB = ha.Cycles(), hb.Cycles()
		}
	} else {
		if trA, err = s.loadDiffSide(ctx, "a", da); err != nil {
			return err
		}
		if trB, err = s.loadDiffSide(ctx, "b", db); err != nil {
			return err
		}
	}
	rep, err := diff.Diff(trA, trB, opt)
	if err != nil {
		if errors.Is(err, diff.ErrWorkloadMismatch) || errors.Is(err, diff.ErrBadMode) {
			return &statusError{status: http.StatusBadRequest, err: err}
		}
		return err
	}
	return rep.WriteJSON(w)
}

// loadDiffSide is the cache-disabled load of one diff side, with the
// same corrupt-side mapping as the cached path.
func (s *server) loadDiffSide(ctx context.Context, side string, data []byte) (*analyzer.Trace, error) {
	tr, err := analyzer.LoadContext(ctx, bytes.NewReader(data), s.cfg.limits)
	if err != nil {
		return nil, s.diffLoadError(ctx, &cache.SideError{Side: side, Err: err, Data: data})
	}
	analyzer.Validate(tr)
	return tr, nil
}

// diffLoadError maps a one-sided load failure: corrupt bytes become a
// doctor-style 422 whose body names the side and embeds that side's
// recovery report (verdict plus partial confidence), everything else
// passes through to the generic status mapping.
func (s *server) diffLoadError(ctx context.Context, err error) error {
	var se *cache.SideError
	if !errors.As(err, &se) || !traceio.IsCorrupt(se.Err) {
		return err
	}
	doc := struct {
		Error  string          `json:"error"`
		Side   string          `json:"side"`
		Doctor json.RawMessage `json:"doctor,omitempty"`
	}{
		Error: fmt.Sprintf("side %s is corrupt: %v — see embedded doctor report", se.Side, se.Err),
		Side:  se.Side,
	}
	var d *analyzer.DoctorReport
	var derr error
	if s.cache != nil {
		d, derr = s.cache.Doctor(ctx, se.Data, s.cfg.limits)
	} else {
		d, derr = analyzer.DoctorDataContext(ctx, se.Data, s.cfg.limits)
	}
	if derr == nil && d != nil {
		var buf bytes.Buffer
		if d.WriteJSON(&buf) == nil {
			doc.Doctor = json.RawMessage(buf.Bytes())
		}
	}
	body, merr := json.MarshalIndent(&doc, "", "  ")
	if merr != nil {
		body = nil
	}
	return &statusError{status: http.StatusUnprocessableEntity, body: body, err: se}
}
