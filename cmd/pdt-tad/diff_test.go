package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// diffBoundary is the fixed multipart boundary the test requests use.
const diffBoundary = "pdtdiffboundary"

// diffBody encodes two trace images as the multipart body /v1/diff
// accepts (fields "a" and "b").
func diffBody(t testing.TB, a, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	if err := mw.SetBoundary(diffBoundary); err != nil {
		t.Fatal(err)
	}
	for _, side := range []struct {
		name string
		data []byte
	}{{"a", a}, {"b", b}} {
		fw, err := mw.CreateFormFile(side.name, side.name+".pdt")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(side.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postDiff sends one /v1/diff request through the full handler stack.
func postDiff(t testing.TB, s *server, body []byte, contentType string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/diff", bytes.NewReader(body))
	req.Header.Set("Content-Type", contentType)
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, req)
	return rec
}

// corruptTrace flips a run of bytes in the middle of a valid image —
// recoverable damage, so the doctor reports partial confidence.
func corruptTrace(data []byte) []byte {
	bad := append([]byte(nil), data...)
	for i := len(bad) / 2; i < len(bad)/2+32 && i < len(bad); i++ {
		bad[i] ^= 0xFF
	}
	return bad
}

// TestDiffEndpoint drives the happy path through both request encodings
// and both cache modes.
func TestDiffEndpoint(t *testing.T) {
	a := buildNamedTrace(t, "wl", 40)
	b := buildNamedTrace(t, "wl", 80)

	for _, tc := range []struct {
		name  string
		cache bool
	}{{"cached", true}, {"uncached", false}} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := defaultConfig()
			if !tc.cache {
				cfg.cacheBytes, cfg.cacheEntries = 0, 0
			}
			s := newServer(cfg, quietLogger())

			rec := postDiff(t, s, diffBody(t, a, b), "multipart/form-data; boundary="+diffBoundary)
			if rec.Code != http.StatusOK {
				t.Fatalf("multipart diff: status %d, body %s", rec.Code, rec.Body.String())
			}
			var rep struct {
				Workload    string `json:"workload"`
				RecordDelta int64  `json:"recordDelta"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
				t.Fatal(err)
			}
			if rep.Workload != "wl" || rep.RecordDelta != 40 {
				t.Fatalf("diff report = %+v, want workload wl with recordDelta 40", rep)
			}

			jsonBody := fmt.Sprintf(`{"a":%q,"b":%q}`,
				base64.StdEncoding.EncodeToString(a), base64.StdEncoding.EncodeToString(b))
			rec = postDiff(t, s, []byte(jsonBody), "application/json")
			if rec.Code != http.StatusOK {
				t.Fatalf("json diff: status %d, body %s", rec.Code, rec.Body.String())
			}
			var rep2 struct {
				RecordDelta int64 `json:"recordDelta"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &rep2); err != nil {
				t.Fatal(err)
			}
			if rep2.RecordDelta != rep.RecordDelta {
				t.Fatalf("json and multipart encodings disagree: %d vs %d",
					rep2.RecordDelta, rep.RecordDelta)
			}
		})
	}
}

// TestDiffEndpointCacheReuse verifies each side loads once: two diffs
// referencing the same images must hit, not re-load.
func TestDiffEndpointCacheReuse(t *testing.T) {
	a := buildNamedTrace(t, "wl", 40)
	b := buildNamedTrace(t, "wl", 80)
	s := newServer(defaultConfig(), quietLogger())

	if rec := postDiff(t, s, diffBody(t, a, b), "multipart/form-data; boundary="+diffBoundary); rec.Code != http.StatusOK {
		t.Fatalf("first diff: status %d", rec.Code)
	}
	if rec := postDiff(t, s, diffBody(t, a, b), "multipart/form-data; boundary="+diffBoundary); rec.Code != http.StatusOK {
		t.Fatalf("second diff: status %d", rec.Code)
	}
	st := s.cache.Stats()
	if st.Misses != 2 {
		t.Fatalf("cache stats %+v: want exactly 2 misses (one per distinct image)", st)
	}
	if st.Hits < 2 {
		t.Fatalf("cache stats %+v: second diff should have hit both sides", st)
	}
}

// TestDiffEndpointNegative is the table-driven negative-path sweep: a
// corrupt side must come back as a doctor-style 422 naming the side with
// partial confidence, a workload mismatch as a clear 400, and malformed
// bodies as 400 — in both cache modes.
func TestDiffEndpointNegative(t *testing.T) {
	good := buildNamedTrace(t, "wl", 40)
	other := buildNamedTrace(t, "mismatched", 40)
	corrupt := corruptTrace(buildNamedTrace(t, "wl", 80))

	cases := []struct {
		name        string
		body        func(t *testing.T) []byte
		contentType string
		wantStatus  int
		wantInBody  []string
		checkDoctor string // side whose doctor report must appear, "" = none
	}{
		{
			name:        "corrupt side a",
			body:        func(t *testing.T) []byte { return diffBody(t, corrupt, good) },
			contentType: "multipart/form-data; boundary=" + diffBoundary,
			wantStatus:  http.StatusUnprocessableEntity,
			wantInBody:  []string{`"side": "a"`, "corrupt"},
			checkDoctor: "a",
		},
		{
			name:        "corrupt side b",
			body:        func(t *testing.T) []byte { return diffBody(t, good, corrupt) },
			contentType: "multipart/form-data; boundary=" + diffBoundary,
			wantStatus:  http.StatusUnprocessableEntity,
			wantInBody:  []string{`"side": "b"`},
			checkDoctor: "b",
		},
		{
			name:        "mismatched workloads",
			body:        func(t *testing.T) []byte { return diffBody(t, good, other) },
			contentType: "multipart/form-data; boundary=" + diffBoundary,
			wantStatus:  http.StatusBadRequest,
			wantInBody:  []string{"different workloads", "wl", "mismatched"},
		},
		{
			name:        "missing side b",
			body:        func(t *testing.T) []byte { return diffBody(t, good, nil) },
			contentType: "multipart/form-data; boundary=" + diffBoundary,
			wantStatus:  http.StatusBadRequest,
			wantInBody:  []string{"both sides"},
		},
		{
			name:        "not multipart, not json",
			body:        func(t *testing.T) []byte { return good },
			contentType: "application/octet-stream",
			wantStatus:  http.StatusBadRequest,
		},
		{
			name:        "multipart without boundary",
			body:        func(t *testing.T) []byte { return diffBody(t, good, good) },
			contentType: "multipart/form-data",
			wantStatus:  http.StatusBadRequest,
			wantInBody:  []string{"boundary"},
		},
	}

	for _, mode := range []struct {
		name  string
		cache bool
	}{{"cached", true}, {"uncached", false}} {
		t.Run(mode.name, func(t *testing.T) {
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					cfg := defaultConfig()
					if !mode.cache {
						cfg.cacheBytes, cfg.cacheEntries = 0, 0
					}
					s := newServer(cfg, quietLogger())
					rec := postDiff(t, s, tc.body(t), tc.contentType)
					if rec.Code != tc.wantStatus {
						t.Fatalf("status %d, want %d; body %s", rec.Code, tc.wantStatus, rec.Body.String())
					}
					body := rec.Body.String()
					var v any
					if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
						t.Fatalf("status %d with non-JSON body %q", rec.Code, body)
					}
					for _, want := range tc.wantInBody {
						if !strings.Contains(body, want) {
							t.Errorf("body missing %q: %s", want, body)
						}
					}
					if tc.checkDoctor != "" {
						var doc struct {
							Side   string `json:"side"`
							Doctor struct {
								Verdict     string  `json:"verdict"`
								Recoverable bool    `json:"recoverable"`
								Confidence  float64 `json:"confidence"`
							} `json:"doctor"`
						}
						if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
							t.Fatal(err)
						}
						if doc.Side != tc.checkDoctor {
							t.Errorf("doc.side = %q, want %q", doc.Side, tc.checkDoctor)
						}
						if doc.Doctor.Verdict == "" {
							t.Error("422 body carries no doctor verdict")
						}
						if doc.Doctor.Recoverable && !(doc.Doctor.Confidence > 0 && doc.Doctor.Confidence < 1) {
							t.Errorf("recoverable corrupt side should report partial confidence, got %v",
								doc.Doctor.Confidence)
						}
					}
				})
			}
		})
	}
}
