package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// buildValidTrace produces a structurally valid trace image for mutation
// (the cmd-level sibling of traceio's buildValid).
func buildValidTrace(t *testing.T) []byte {
	return buildNamedTrace(t, "fuzz", 40)
}

// buildNamedTrace builds a valid single-core trace image with a chosen
// workload name and record count, so diff tests can produce same- and
// cross-workload pairs with distinct content addresses.
func buildNamedTrace(t *testing.T, workload string, records int) []byte {
	t.Helper()
	var out bytes.Buffer
	w, err := traceio.NewWriter(&out, traceio.Header{
		Version: traceio.Version, NumSPEs: 8, TimebaseDiv: 40, ClockHz: 3_200_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(&traceio.Meta{
		Workload: workload,
		Anchors:  []traceio.Anchor{{SPE: 0, Timebase: 100, Loaded: 0xFFFFFFFF, Program: "p"}},
	}); err != nil {
		t.Fatal(err)
	}
	var data []byte
	for i := 0; i < records; i++ {
		r := event.Record{ID: event.SPEMFCGet, Core: 0, Flags: event.FlagDecrTime,
			Time: uint64(i * 10), Args: []uint64{0, 64, 128, uint64(i % 16)}}
		data, err = r.AppendTo(data)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteChunk(traceio.Chunk{Core: 0, AnchorIdx: 0, Data: data}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// FuzzTADHandler drives the full handler stack with mutated trace uploads
// (flip, insert, delete, truncate — the FuzzSalvage operation set): any
// status is acceptable except a 500, which would mean a panic or internal
// failure escaped the analyzer's hardening; error responses must carry a
// JSON body.
func FuzzTADHandler(f *testing.F) {
	f.Add(uint32(0), uint8(0), uint8(0x5A), uint16(0))
	f.Add(uint32(30), uint8(1), uint8(0xC5), uint16(0)) // insert a fake chunk magic
	f.Add(uint32(60), uint8(2), uint8(0), uint16(0))    // delete inside meta
	f.Add(uint32(100), uint8(0), uint8(0xFF), uint16(50))
	f.Add(uint32(4), uint8(0), uint8(1), uint16(0)) // version field flip
	f.Add(uint32(0), uint8(3), uint8(0), uint16(9)) // footer-only truncation

	f.Fuzz(func(t *testing.T, pos uint32, op, val uint8, cut uint16) {
		valid := buildValidTrace(t)
		data := append([]byte(nil), valid...)
		p := int(pos) % len(data)
		switch op % 4 {
		case 0: // flip
			data[p] ^= val | 1
		case 1: // insert
			data = append(data[:p], append([]byte{val}, data[p:]...)...)
		case 2: // delete
			data = append(data[:p], data[p+1:]...)
		case 3: // truncate from the end
			n := int(cut) % (len(data) + 1)
			data = data[:len(data)-n]
		}
		if int(cut) > 0 && op%4 != 3 {
			n := int(cut) % (len(data) + 1)
			data = data[:len(data)-n]
		}

		s := newServer(defaultConfig(), quietLogger())
		h := s.handler()
		for _, path := range []string{"/v1/summary", "/v1/profile", "/v1/cycles", "/v1/doctor"} {
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			res := rec.Result()
			if res.StatusCode == http.StatusInternalServerError {
				t.Fatalf("%s: mutated trace produced a 500 (escaped panic?): %s",
					path, rec.Body.String())
			}
			if res.StatusCode != http.StatusOK && res.StatusCode != http.StatusBadRequest &&
				res.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("%s: unexpected status %d", path, res.StatusCode)
			}
			var v any
			if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
				t.Fatalf("%s: status %d with non-JSON body %q",
					path, res.StatusCode, rec.Body.String())
			}
		}

		// /v1/diff with the pristine base as side a and the mutated bytes
		// as side b: a clean diff, a 4xx, anything but a 500 — and the
		// body must stay JSON either way. The raw mutated bytes are also
		// thrown at the endpoint directly (they parse as neither encoding,
		// which must map to a clean 400). The same pair goes through
		// mode=align so the per-cycle layer sees mutated inputs too.
		diffReqs := []struct {
			path string
			body []byte
			ct   string
		}{
			{"/v1/diff", diffBody(t, valid, data), "multipart/form-data; boundary=" + diffBoundary},
			{"/v1/diff?mode=align", diffBody(t, valid, data), "multipart/form-data; boundary=" + diffBoundary},
			{"/v1/diff", data, "application/octet-stream"},
		}
		for _, dr := range diffReqs {
			req := httptest.NewRequest(http.MethodPost, dr.path, bytes.NewReader(dr.body))
			req.Header.Set("Content-Type", dr.ct)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			res := rec.Result()
			if res.StatusCode == http.StatusInternalServerError {
				t.Fatalf("/v1/diff: mutated side produced a 500: %s", rec.Body.String())
			}
			switch res.StatusCode {
			case http.StatusOK, http.StatusBadRequest,
				http.StatusRequestEntityTooLarge, http.StatusUnprocessableEntity:
			default:
				t.Fatalf("/v1/diff: unexpected status %d", res.StatusCode)
			}
			var v any
			if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
				t.Fatalf("/v1/diff: status %d with non-JSON body %q",
					res.StatusCode, rec.Body.String())
			}
		}
	})
}
