package main

// gzip transport. Uploads may arrive Content-Encoding: gzip (trace
// images compress well — they are mostly deltas and zeros) and JSON
// responses are compressed when the client's Accept-Encoding allows it.
// The body cap applies on both sides of the decompressor: MaxBytesReader
// bounds the wire bytes and the decompressed image is re-checked against
// the same limit, so a small gzip bomb cannot smuggle an oversized trace
// past admission control.

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// gzipPool recycles response compressors: a gzip.Writer carries the
// full deflate state (~800 KiB), which would otherwise be reallocated
// on every compressed response.
var gzipPool = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

// readBody reads one request body under the configured cap,
// transparently decompressing gzip uploads. All failures come back as
// *statusError so both the analysis stack and the job endpoint map them
// the same way.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body := io.Reader(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	if enc := r.Header.Get("Content-Encoding"); enc != "" {
		if !strings.EqualFold(enc, "gzip") {
			return nil, &statusError{
				status: http.StatusUnsupportedMediaType,
				err:    fmt.Errorf("unsupported Content-Encoding %q", enc),
			}
		}
		zr, err := gzip.NewReader(body)
		if err != nil {
			return nil, &statusError{
				status: http.StatusBadRequest,
				err:    fmt.Errorf("gzip body: %w", err),
			}
		}
		defer zr.Close()
		// One byte past the cap is enough to prove the overflow without
		// inflating the whole bomb.
		body = io.LimitReader(zr, s.cfg.maxBody+1)
	}
	data, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &statusError{status: http.StatusRequestEntityTooLarge, err: err}
		}
		return nil, &statusError{
			status: http.StatusBadRequest,
			err:    fmt.Errorf("reading body: %w", err),
		}
	}
	if int64(len(data)) > s.cfg.maxBody {
		return nil, &statusError{
			status: http.StatusRequestEntityTooLarge,
			err:    fmt.Errorf("decompressed body exceeds %d bytes", s.cfg.maxBody),
		}
	}
	return data, nil
}

// streamBody returns the request body as a plain decompressed stream
// for the chunked-upload handlers: wire bytes are capped by
// MaxBytesReader and gzip is inflated lazily, so the caller sees (and
// caps) decompressed bytes as they emerge instead of after the whole
// body was buffered — admission control applies mid-inflate.
func (s *server) streamBody(w http.ResponseWriter, r *http.Request) (io.ReadCloser, *statusError) {
	body := io.Reader(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	if enc := r.Header.Get("Content-Encoding"); enc != "" {
		if !strings.EqualFold(enc, "gzip") {
			return nil, &statusError{
				status: http.StatusUnsupportedMediaType,
				err:    fmt.Errorf("unsupported Content-Encoding %q", enc),
			}
		}
		zr, err := gzip.NewReader(body)
		if err != nil {
			return nil, &statusError{
				status: http.StatusBadRequest,
				err:    fmt.Errorf("gzip body: %w", err),
			}
		}
		return zr, nil
	}
	return io.NopCloser(body), nil
}

// gzipResponses negotiates response compression: when the client
// accepts gzip, application/json bodies are compressed. The cluster
// peer frames (application/octet-stream) pass through untouched so
// their CRC covers exactly the bytes on the wire.
func gzipResponses(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Add("Vary", "Accept-Encoding")
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			next.ServeHTTP(w, r)
			return
		}
		gw := &gzipWriter{ResponseWriter: w}
		defer gw.close()
		next.ServeHTTP(gw, r)
	})
}

// gzipWriter decides on the first write (when Content-Type is known)
// whether to compress, so non-JSON responses keep their exact bytes.
type gzipWriter struct {
	http.ResponseWriter
	zw      *gzip.Writer
	decided bool
}

func (g *gzipWriter) decide() {
	if g.decided {
		return
	}
	g.decided = true
	if strings.HasPrefix(g.Header().Get("Content-Type"), "application/json") {
		g.Header().Set("Content-Encoding", "gzip")
		g.Header().Del("Content-Length")
		g.zw = gzipPool.Get().(*gzip.Writer)
		g.zw.Reset(g.ResponseWriter)
	}
}

func (g *gzipWriter) WriteHeader(code int) {
	g.decide()
	g.ResponseWriter.WriteHeader(code)
}

func (g *gzipWriter) Write(p []byte) (int, error) {
	g.decide()
	if g.zw != nil {
		return g.zw.Write(p)
	}
	return g.ResponseWriter.Write(p)
}

// close flushes the compressor and returns it to the pool; a response
// that never wrote stays empty.
func (g *gzipWriter) close() {
	if g.zw != nil {
		_ = g.zw.Close()
		gzipPool.Put(g.zw)
		g.zw = nil
	}
}
