package main

// The async job API. POST /v1/jobs accepts a trace upload plus an
// analysis kind and answers 202 with a job id; the work runs in the job
// manager's worker pool, journaled so a crash between the 202 and the
// result re-runs the job on the next boot. Without a -state-dir (or with
// the disk tier down) the endpoint degrades gracefully: the analysis
// runs synchronously in the request and the response is a plain 200,
// flagged with X-Pdt-Mode: sync.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"github.com/celltrace/pdt/internal/analyzer/cache"
	"github.com/celltrace/pdt/internal/faults"
	"github.com/celltrace/pdt/internal/jobs"
)

// setupState wires the durable tier under cfg.stateDir: the disk-backed
// cache tier, the job journal, and the job manager (including journal
// replay — interrupted jobs restart here). A no-op when stateDir is
// empty. Call once, before the server starts handling requests.
func (s *server) setupState() error {
	if s.cfg.chaosSpec != "" {
		plan, err := faults.ParseService(s.cfg.chaosSpec)
		if err != nil {
			return err
		}
		s.chaos = plan
		s.log.Warn("chaos plan armed", "plan", plan.String())
	}
	if err := s.setupCluster(); err != nil {
		return err
	}
	if s.cfg.stateDir == "" {
		return nil
	}
	if s.cache == nil {
		return errors.New("-state-dir requires the cache to be enabled")
	}
	if err := os.MkdirAll(s.cfg.stateDir, 0o755); err != nil {
		return fmt.Errorf("state dir: %w", err)
	}
	tier, err := cache.OpenDiskTier(filepath.Join(s.cfg.stateDir, "objects"), s.cfg.diskCacheBytes, s.disturber())
	if err != nil {
		return err
	}
	s.cache.AttachDisk(tier)
	if st := tier.Stats(); st.Rehydrated > 0 {
		s.log.Info("disk tier rehydrated", "objects", st.Rehydrated, "bytes", st.Bytes)
	}

	j, recs, st, err := jobs.OpenJournal(filepath.Join(s.cfg.stateDir, "jobs.journal"), s.disturber())
	if err != nil {
		return err
	}
	s.journal = j
	if st.Damaged > 0 {
		s.log.Warn("job journal damage dropped", "lines", st.Damaged)
	}
	s.jobs = jobs.New(j, recs, st, jobs.Config{
		Workers:     s.cfg.jobWorkers,
		MaxAttempts: s.cfg.jobAttempts,
		BackoffBase: s.cfg.jobBackoff,
		BackoffCap:  s.cfg.jobBackoffCap,
		Fetch: func(key string) ([]byte, bool) {
			k, ok := cache.ParseKey(key)
			if !ok {
				return nil, false
			}
			return s.cache.RawImage(k)
		},
		Exec: func(ctx context.Context, kind string, image []byte) ([]byte, error) {
			if s.cfg.requestTimeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, s.cfg.requestTimeout)
				defer cancel()
			}
			// Through the cluster-aware path: a job executing on a
			// non-owner replica peeks the owner's cache like a
			// synchronous request would.
			var buf bytes.Buffer
			err := s.artifact(ctx, kind, image, &buf, func() error {
				return errors.New("jobs require the cache")
			})
			return buf.Bytes(), err
		},
		Notify: notifyWebhook,
		Release: func(key string) {
			if k, ok := cache.ParseKey(key); ok {
				tier.Unpin(k)
			}
		},
		PhaseHook: s.phaseHook(),
		Log:       s.log,
	})
	// Replayed jobs were pinned by the process that accepted them; that
	// pin died with it. Re-pin before the workers start so the evictor
	// cannot drop an image a replay is about to need.
	replayed := 0
	for _, jb := range s.jobs.Jobs() {
		if jb.Terminal() {
			continue
		}
		if k, ok := cache.ParseKey(jb.Key); ok {
			tier.Pin(k)
		}
		replayed++
	}
	if replayed > 0 {
		s.log.Info("replaying interrupted jobs", "count", replayed)
	}
	s.jobs.Start()
	return nil
}

// closeState stops the job workers and closes the journal.
func (s *server) closeState() {
	if s.jobs != nil {
		s.jobs.Stop()
	}
	if s.journal != nil {
		_ = s.journal.Close()
	}
}

// disturber exposes the chaos plan to the disk tier and journal; nil
// when no plan is armed.
func (s *server) disturber() *faults.ServicePlan { return s.chaos }

// phaseHook translates the chaos plan's killphase directives into the
// job manager's crash seam.
func (s *server) phaseHook() func(id, phase string) error {
	if s.chaos == nil {
		return nil
	}
	return func(id, phase string) error {
		if s.chaos.Kill(phase) {
			s.log.Error("chaos: simulated kill", "job", id, "phase", phase)
			return fmt.Errorf("chaos kill at %s", phase)
		}
		return nil
	}
}

// notifyWebhook delivers a job document to its callback URL.
func notifyWebhook(url string, payload []byte) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("webhook: %s", resp.Status)
	}
	return nil
}

// asyncAvailable reports whether a job can be accepted durably right
// now; otherwise submissions degrade to synchronous execution.
func (s *server) asyncAvailable() bool {
	if s.jobs == nil || s.jobs.Crashed() {
		return false
	}
	if deg, _ := s.cache.Disk().Degraded(); deg {
		return false
	}
	return true
}

// handleSubmitJob accepts POST /v1/jobs?kind=summary[&webhook=URL] with
// the raw trace image as the body. On the durable path it persists the
// image to the disk tier, journals the acceptance, and answers 202 with
// the job document; when durability is unavailable it answers like the
// matching synchronous endpoint would, with X-Pdt-Mode: sync.
func (s *server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	kind := r.URL.Query().Get("kind")
	if kind == "" {
		kind = cache.KindSummary
	}
	if !cache.ValidKind(kind) {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown analysis kind %q", kind))
		return
	}
	webhook := r.URL.Query().Get("webhook")
	if !s.asyncAvailable() {
		s.runSync(w, r, kind, nil)
		return
	}
	data, err := s.readBody(w, r)
	if err != nil {
		var se *statusError
		if errors.As(err, &se) {
			s.writeError(w, se.status, se.err)
			return
		}
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key := cache.KeyOf(data)
	tier := s.cache.Disk()
	// The image must be durable before the 202: a replayed job has no
	// request body to fall back on. A failed spill degrades this
	// request to the synchronous path instead of losing it.
	if err := tier.Put(key, cache.KindTrace, data); err != nil {
		s.log.Warn("job image spill failed, degrading to sync", "err", err)
		s.runSync(w, r, kind, data)
		return
	}
	tier.Pin(key)
	jb, err := s.jobs.Submit(kind, key.String(), webhook)
	if err != nil {
		tier.Unpin(key)
		switch {
		case errors.Is(err, jobs.ErrBusy):
			w.Header().Set("Retry-After", s.retryAfter())
			s.writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, jobs.ErrCrashed):
			s.writeError(w, http.StatusServiceUnavailable, err)
		default:
			// The journal would not take the accept record; the job is
			// not durable, so don't pretend. Serve it synchronously.
			s.log.Warn("job journal rejected accept, degrading to sync", "err", err)
			s.runSync(w, r, kind, data)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+jb.ID)
	s.writeJSON(w, http.StatusAccepted, jb)
}

// runSync executes a job submission synchronously through the normal
// analysis stack (admission control, deadline, error mapping included).
// data, when non-nil, replaces the already-consumed request body.
func (s *server) runSync(w http.ResponseWriter, r *http.Request, kind string, data []byte) {
	w.Header().Set("X-Pdt-Mode", "sync")
	if data != nil {
		// data is already decompressed; the replayed body must not claim
		// the original Content-Encoding.
		r = r.Clone(r.Context())
		r.Body = io.NopCloser(bytes.NewReader(data))
		r.ContentLength = int64(len(data))
		r.Header.Del("Content-Encoding")
	}
	s.analysis(kind, s.renderFor(kind)).ServeHTTP(w, r)
}

// renderFor maps an artifact kind to its renderFunc.
func (s *server) renderFor(kind string) renderFunc {
	switch kind {
	case cache.KindProfile:
		return s.renderProfile
	case cache.KindGaps:
		return s.renderGaps
	case cache.KindCritPath:
		return s.renderCritPath
	case cache.KindCycles:
		return s.renderCycles
	case cache.KindDoctor:
		return s.renderDoctor
	default:
		return s.renderSummary
	}
}

// handleGetJob serves GET /v1/jobs/{id}: the job document as JSON.
func (s *server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.writeError(w, http.StatusNotFound, errors.New("async jobs disabled (no -state-dir)"))
		return
	}
	jb, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	s.writeJSON(w, http.StatusOK, jb)
}

// handleJobResult serves GET /v1/jobs/{id}/result: the rendered artifact
// of a completed job, restored through the cache tiers (or recomputed
// from the durable trace image). 409 until the job is done; 410 if the
// trace image has been evicted from the disk tier since.
func (s *server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.writeError(w, http.StatusNotFound, errors.New("async jobs disabled (no -state-dir)"))
		return
	}
	jb, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	if jb.Status == jobs.StatusFailed {
		s.writeJSON(w, http.StatusConflict, jb)
		return
	}
	if jb.Status != jobs.StatusDone {
		w.Header().Set("Retry-After", s.retryAfter())
		s.writeJSON(w, http.StatusConflict, jb)
		return
	}
	key, ok := cache.ParseKey(jb.Key)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, errors.New("malformed job key"))
		return
	}
	img, ok := s.cache.RawImage(key)
	if !ok {
		s.writeError(w, http.StatusGone, errors.New("trace image evicted from the disk tier"))
		return
	}
	b, err := s.cache.Artifact(r.Context(), img, jb.Kind, s.cfg.limits)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// writeJSON emits one JSON document with the given status.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
