// pdt-tad is the trace-analysis daemon: a long-running HTTP service that
// accepts PDT trace uploads and returns analysis JSON, hardened for
// unattended operation — per-request deadlines, body and resource limits,
// bounded concurrency with load shedding, panic containment, health
// probes, and graceful drain on SIGTERM.
//
// Repeated uploads of the same trace bytes are served from a
// content-addressed (SHA-256), size-bounded LRU cache of loaded traces
// and memoized analysis artifacts, with singleflight dedup of concurrent
// loads; GET /v1/stats exposes its counters. With -state-dir the cache
// gains a disk-backed second tier (CRC-framed objects, atomic writes,
// rehydrated on boot) and the async job API becomes durable: accepted
// jobs are journaled and replayed after a crash.
//
// With -peers and -self the daemon joins a consistent-hash replica
// ring: each trace key has an owner replica, local misses peek the
// owner's cache before recomputing, and every peer call runs behind
// timeouts, retries with jittered backoff, and per-peer circuit
// breakers. An unreachable owner degrades to local computation
// (X-Pdt-Cluster: degraded), never an error. Uploads may be sent
// Content-Encoding: gzip and JSON responses are gzip-compressed when
// the client accepts it.
//
// Endpoints:
//
//	POST /v1/summary  trace body -> summary JSON (pdt-ta json)
//	POST /v1/profile  trace body -> interval profile JSON
//	POST /v1/gaps     trace body -> event-free stretches JSON
//	POST /v1/critpath trace body -> critical-path JSON
//	POST /v1/doctor   trace body -> salvage/recovery report JSON
//	POST /v1/diff     two traces -> overhead-attribution diff JSON
//	POST /v1/upload   open a chunked-upload session -> 201 + id
//	POST /v1/upload/{id}?offset=N  append a chunk (gzip ok); 409 + current
//	                  offset on mismatch (resume point)
//	POST /v1/upload/{id}/complete  seal the stream -> final summary + key
//	DELETE /v1/upload/{id}         abort the session
//	GET  /v1/live/{id}  running summary of an in-flight upload
//	POST /v1/jobs     trace body + ?kind= -> 202 + job id (or sync 200)
//	GET  /v1/jobs/{id}         job document JSON
//	GET  /v1/jobs/{id}/result  completed job's artifact JSON
//	GET  /v1/cluster/artifact/{key}/{kind}  peer cache peek (CRC-framed)
//	GET  /v1/stats    cache/disk/jobs/cluster counters
//	GET  /healthz     liveness probe
//	GET  /readyz      readiness probe (503 draining, "degraded" body
//	                  when the durable tier is down)
//
// Usage:
//
//	pdt-tad -addr 127.0.0.1:8329 -state-dir /var/lib/pdt-tad
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "pdt-tad:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until the listener fails or a
// shutdown signal drains it. ready, when non-nil, receives the bound
// address once the listener is up (tests use it; main passes nil and
// reads the address from the log line on stdout).
func run(args []string, stdout io.Writer, logw io.Writer, ready chan<- net.Addr) error {
	def := defaultConfig()
	fs := flag.NewFlagSet("pdt-tad", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", def.addr, "listen address (host:port; port 0 picks a free port)")
		reqTimeout = fs.Duration("request-timeout", def.requestTimeout, "per-request analysis deadline (0 = none)")
		maxBody    = fs.Int64("max-body", def.maxBody, "max request body bytes (413 beyond)")
		maxConc    = fs.Int("max-concurrent", def.maxConcurrent, "analyses running at once")
		maxQueue   = fs.Int("max-queue", def.maxQueue, "requests allowed to wait for a slot (429 beyond)")
		drain      = fs.Duration("drain", def.drain, "graceful shutdown budget after SIGTERM/SIGINT")
		maxChunk   = fs.Int("max-chunk-bytes", def.limits.MaxChunkBytes, "max declared chunk payload bytes")
		maxMeta    = fs.Int("max-meta-bytes", def.limits.MaxMetaBytes, "max declared metadata bytes")
		maxRecords = fs.Int("max-records", def.limits.MaxRecords, "max decoded records per trace")
		maxDecode  = fs.Int64("max-decode-bytes", def.limits.MaxDecodeBytes, "decode memory budget in bytes")
		cacheBytes = fs.Int64("cache-bytes", def.cacheBytes, "trace cache retention budget in bytes (0 with -cache-entries 0 disables the cache)")
		cacheEnts  = fs.Int("cache-entries", def.cacheEntries, "max cached traces (0 = unbounded when the cache is enabled)")
		stateDir   = fs.String("state-dir", "", "directory for the disk cache tier and job journal (empty = memory-only, jobs run synchronously)")
		diskBytes  = fs.Int64("disk-cache-bytes", def.diskCacheBytes, "disk cache tier budget in bytes (0 = unbounded)")
		jobWorkers = fs.Int("job-workers", def.jobWorkers, "async job worker count")
		jobTries   = fs.Int("job-attempts", def.jobAttempts, "per-job attempt budget before it fails terminally")
		jobBackoff = fs.Duration("job-backoff", def.jobBackoff, "base retry backoff between job attempts")
		jobBackCap = fs.Duration("job-backoff-cap", def.jobBackoffCap, "ceiling on the exponential job retry backoff")
		chaosSpec  = fs.String("chaos", "", "fault-injection plan for the durable tier and peer transport (e.g. diskfull:3,netdrop:b:2) — test harness only")
		peersSpec  = fs.String("peers", "", "comma-separated name=URL replica list enabling cluster mode (e.g. a=http://h1:8329,b=http://h2:8329)")
		selfName   = fs.String("self", "", "this replica's name in -peers")
		peerTime   = fs.Duration("peer-timeout", def.peerTimeout, "deadline for one peer cache-peek call")
		peerTries  = fs.Int("peer-attempts", def.peerAttempts, "call budget per peer fetch, first try included")
		peerBack   = fs.Duration("peer-backoff", def.peerBackoff, "base retry backoff between peer call attempts")
		peerBackC  = fs.Duration("peer-backoff-cap", def.peerBackoffCap, "ceiling on the peer retry backoff")
		brkThresh  = fs.Int("peer-breaker-threshold", def.peerBreakerThreshold, "consecutive failures that open a peer's circuit breaker")
		brkCool    = fs.Duration("peer-breaker-cooldown", def.peerBreakerCooldown, "open breaker cooldown before a half-open probe")
		maxUploads = fs.Int("max-uploads", def.maxUploads, "concurrent chunked-upload sessions (429 beyond)")
		uploadTTL  = fs.Duration("upload-ttl", def.uploadTTL, "idle chunked-upload session expiry")
		maxUpload  = fs.Int64("max-upload-bytes", def.maxUploadBytes, "total decompressed bytes one chunked upload may stream")
		streamWin  = fs.Int64("stream-window-bytes", def.limits.StreamWindowBytes, "streaming-analysis memory window in bytes (0 = analyzer default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := def
	cfg.addr = *addr
	cfg.requestTimeout = *reqTimeout
	cfg.maxBody = *maxBody
	cfg.maxConcurrent = *maxConc
	cfg.maxQueue = *maxQueue
	cfg.drain = *drain
	cfg.limits.MaxChunkBytes = *maxChunk
	cfg.limits.MaxMetaBytes = *maxMeta
	cfg.limits.MaxRecords = *maxRecords
	cfg.limits.MaxDecodeBytes = *maxDecode
	cfg.cacheBytes = *cacheBytes
	cfg.cacheEntries = *cacheEnts
	cfg.stateDir = *stateDir
	cfg.diskCacheBytes = *diskBytes
	cfg.jobWorkers = *jobWorkers
	cfg.jobAttempts = *jobTries
	cfg.jobBackoff = *jobBackoff
	cfg.jobBackoffCap = *jobBackCap
	cfg.chaosSpec = *chaosSpec
	cfg.peersSpec = *peersSpec
	cfg.selfName = *selfName
	cfg.peerTimeout = *peerTime
	cfg.peerAttempts = *peerTries
	cfg.peerBackoff = *peerBack
	cfg.peerBackoffCap = *peerBackC
	cfg.peerBreakerThreshold = *brkThresh
	cfg.peerBreakerCooldown = *brkCool
	cfg.maxUploads = *maxUploads
	cfg.uploadTTL = *uploadTTL
	cfg.maxUploadBytes = *maxUpload
	cfg.limits.StreamWindowBytes = *streamWin
	// The body cap is the outer wall; keep the analyzer's file limit in
	// step so admission control agrees with the HTTP layer.
	cfg.limits.MaxFileBytes = cfg.maxBody

	log := slog.New(slog.NewJSONHandler(logw, nil))
	srv := newServer(cfg, log)
	if err := srv.setupState(); err != nil {
		return err
	}
	defer srv.closeState()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// The smoke test and operators both scrape this line for the port.
	fmt.Fprintf(stdout, "pdt-tad: listening on %s\n", ln.Addr())
	log.Info("listening", "addr", ln.Addr().String(),
		"max_concurrent", cfg.maxConcurrent, "max_queue", cfg.maxQueue,
		"max_body", cfg.maxBody, "request_timeout", cfg.requestTimeout.String())
	if ready != nil {
		ready <- ln.Addr()
	}

	hs := &http.Server{
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Drain: flip readiness first so probes stop sending work, then let
	// in-flight requests finish within the budget.
	srv.draining.Store(true)
	log.Info("draining", "budget", cfg.drain.String())
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		_ = hs.Close()
		return fmt.Errorf("drain exceeded %s: %w", cfg.drain, err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Info("stopped")
	return nil
}
