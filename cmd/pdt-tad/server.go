package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cache"
	"github.com/celltrace/pdt/internal/analyzer/cycles"
	"github.com/celltrace/pdt/internal/cluster"
	"github.com/celltrace/pdt/internal/faults"
	"github.com/celltrace/pdt/internal/jobs"
)

// config collects the service knobs; every one maps to a flag in main.
type config struct {
	addr string
	// requestTimeout bounds one analysis end to end (read + decode +
	// render); expiry maps to 504.
	requestTimeout time.Duration
	// maxBody caps the request body via http.MaxBytesReader; larger
	// uploads are rejected with 413 before the analyzer sees them.
	maxBody int64
	// maxConcurrent analyses run at once; up to maxQueue more wait their
	// turn and anything beyond that is shed with 429.
	maxConcurrent int
	maxQueue      int
	// drain bounds the graceful shutdown after SIGTERM/SIGINT.
	drain time.Duration
	// limits is the admission control handed to the analyzer.
	limits analyzer.Limits
	// cacheBytes/cacheEntries bound the content-addressed trace cache
	// (0 = unbounded on that axis); both 0 via flags disables it and
	// every request re-analyzes from scratch.
	cacheBytes   int64
	cacheEntries int
	// stateDir, when set, makes the daemon durable: a disk-backed cache
	// tier under stateDir/objects and a job journal at
	// stateDir/jobs.journal. Empty = memory-only; the async job API
	// degrades to synchronous execution.
	stateDir string
	// diskCacheBytes bounds the disk tier (0 = unbounded).
	diskCacheBytes int64
	// jobWorkers/jobAttempts/jobBackoff/jobBackoffCap shape the async
	// job manager: worker pool size, per-job attempt budget, and the
	// capped exponential retry backoff.
	jobWorkers    int
	jobAttempts   int
	jobBackoff    time.Duration
	jobBackoffCap time.Duration
	// chaosSpec is a faults.ParseService plan injected into the disk
	// tier, the journal, the job phase hooks, and the peer transport
	// (test harness only).
	chaosSpec string
	// peersSpec/selfName enable cluster mode: a comma-separated
	// name=URL replica list and this replica's name in it. Empty =
	// single-node.
	peersSpec string
	selfName  string
	// peerTimeout/peerAttempts/peerBackoff/peerBackoffCap bound one peer
	// fetch: per-call deadline, call budget, and the jittered capped
	// exponential backoff between attempts.
	peerTimeout    time.Duration
	peerAttempts   int
	peerBackoff    time.Duration
	peerBackoffCap time.Duration
	// peerBreakerThreshold consecutive failures open a peer's circuit
	// breaker; peerBreakerCooldown is the open → half-open delay.
	peerBreakerThreshold int
	peerBreakerCooldown  time.Duration
	// maxUploads bounds concurrent chunked-upload sessions (429 beyond);
	// uploadTTL expires sessions idle longer than this; maxUploadBytes
	// caps one streamed trace's total decompressed size — deliberately
	// separate from maxBody, which stays the per-request cap.
	maxUploads     int
	uploadTTL      time.Duration
	maxUploadBytes int64
}

func defaultConfig() config {
	return config{
		addr:           "127.0.0.1:8329",
		requestTimeout: 30 * time.Second,
		maxBody:        64 << 20,
		maxConcurrent:  4,
		maxQueue:       8,
		drain:          20 * time.Second,
		limits:         analyzer.DefaultServiceLimits(),
		cacheBytes:     256 << 20,
		diskCacheBytes: 1 << 30,
		jobWorkers:     2,
		jobAttempts:    3,
		jobBackoff:     250 * time.Millisecond,
		jobBackoffCap:  5 * time.Second,

		peerTimeout:          time.Second,
		peerAttempts:         2,
		peerBackoff:          25 * time.Millisecond,
		peerBackoffCap:       250 * time.Millisecond,
		peerBreakerThreshold: 3,
		peerBreakerCooldown:  2 * time.Second,

		maxUploads:     8,
		uploadTTL:      2 * time.Minute,
		maxUploadBytes: 256 << 20,
	}
}

// server is the trace-analysis daemon: a handler stack over the analyzer
// with admission control, load shedding, and health/readiness probes.
type server struct {
	cfg config
	log *slog.Logger
	// slots is the concurrency semaphore; queue bounds how many requests
	// may block waiting for a slot.
	slots    chan struct{}
	queue    chan struct{}
	draining atomic.Bool
	// cache is the content-addressed trace cache shared by the analysis
	// endpoints; nil when disabled (every request analyzes from scratch).
	cache *cache.Cache
	// jobs/journal are the async job manager and its durable journal;
	// nil without -state-dir (the job API then runs synchronously).
	jobs    *jobs.Manager
	journal *jobs.Journal
	// chaos is the parsed fault-injection plan; nil without -chaos.
	chaos *faults.ServicePlan
	// cluster is the consistent-hash ring client; nil without -peers.
	// clusterFallbacks counts requests computed locally because the
	// key's owner replica was unreachable.
	cluster          *cluster.Client
	clusterFallbacks atomic.Uint64
	// avgNanos is an EWMA of recent analysis durations, feeding the
	// derived Retry-After on 429/504 responses.
	avgNanos atomic.Int64
	// analysisHook, when non-nil, runs inside each analysis handler after
	// admission (test seam for panic and saturation tests).
	analysisHook func()
	// uploads is the chunked-upload session registry.
	uploads *uploads
}

func newServer(cfg config, log *slog.Logger) *server {
	if cfg.maxConcurrent < 1 {
		cfg.maxConcurrent = 1
	}
	if cfg.maxQueue < 0 {
		cfg.maxQueue = 0
	}
	s := &server{
		cfg:   cfg,
		log:   log,
		slots: make(chan struct{}, cfg.maxConcurrent),
		queue: make(chan struct{}, cfg.maxQueue),
	}
	if cfg.cacheBytes > 0 || cfg.cacheEntries > 0 {
		s.cache = cache.New(cfg.cacheEntries, cfg.cacheBytes)
	}
	if s.cfg.maxUploads < 1 {
		s.cfg.maxUploads = 1
	}
	if s.cfg.uploadTTL <= 0 {
		s.cfg.uploadTTL = 2 * time.Minute
	}
	s.uploads = newUploads(s.cfg.maxUploads, s.cfg.uploadTTL)
	return s
}

// errShed signals that both the semaphore and the wait queue are full.
var errShed = errors.New("pdt-tad: saturated, request shed")

// admit acquires an analysis slot, waiting in the bounded queue when all
// slots are busy. It returns the release func, or errShed when the queue
// is full too, or ctx.Err() when the deadline fires while queued.
func (s *server) admit(ctx context.Context) (release func(), err error) {
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, nil
	default:
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, errShed
	}
	defer func() { <-s.queue }()
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// handler builds the full middleware stack.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("POST /v1/summary", s.analysis("summary", s.renderSummary))
	mux.Handle("POST /v1/profile", s.analysis("profile", s.renderProfile))
	mux.Handle("POST /v1/gaps", s.analysis("gaps", s.renderGaps))
	mux.Handle("POST /v1/critpath", s.analysis("critpath", s.renderCritPath))
	mux.Handle("POST /v1/doctor", s.analysis("doctor", s.renderDoctor))
	mux.Handle("POST /v1/diff", s.analysis("diff", s.renderDiff))
	mux.Handle("POST /v1/cycles", s.analysis("cycles", s.renderCycles))
	mux.HandleFunc("POST /v1/upload", s.handleUploadCreate)
	mux.HandleFunc("POST /v1/upload/{id}", s.handleUploadAppend)
	mux.HandleFunc("POST /v1/upload/{id}/complete", s.handleUploadComplete)
	mux.HandleFunc("DELETE /v1/upload/{id}", s.handleUploadAbort)
	mux.HandleFunc("GET /v1/live/{id}", s.handleLive)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/cluster/artifact/{key}/{kind}", s.handleClusterArtifact)
	return s.logRequests(s.recoverPanics(gzipResponses(mux)))
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports 503 once a drain has begun so load balancers stop
// routing new work here while in-flight requests finish. A failing disk
// tier or a dead job manager does not fail readiness — the synchronous
// path still works — but the body says "degraded" so operators and the
// chaos harness can see the durable tier is out.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if reason := s.degradedReason(); reason != "" {
		fmt.Fprintln(w, "degraded:", reason)
		return
	}
	fmt.Fprintln(w, "ready")
}

// degradedReason reports why a durable or distributed tier is
// unavailable ("" = everything is healthy or was never configured).
// Degraded is informational, not a readiness failure: the synchronous
// local path still serves every request.
func (s *server) degradedReason() string {
	if s.jobs != nil && s.jobs.Crashed() {
		return "job manager stopped"
	}
	if s.cache != nil && s.cache.Disk() != nil {
		if deg, errText := s.cache.Disk().Degraded(); deg {
			return "disk tier: " + errText
		}
	}
	if s.cluster != nil {
		if deg, reason := s.cluster.Degraded(); deg {
			return reason
		}
	}
	return ""
}

// retryAfter derives the Retry-After advice for shed work from actual
// load: the backlog ahead of a retry (running + queued analyses, plus
// itself) over the service rate, using an EWMA of recent analysis
// durations. Clamped to [1s, 60s] so the advice is always sane even
// with no samples or a pathological backlog.
func (s *server) retryAfter() string {
	avg := time.Duration(s.avgNanos.Load())
	if avg <= 0 {
		avg = 500 * time.Millisecond
	}
	backlog := len(s.slots) + len(s.queue) + 1
	drain := avg * time.Duration(backlog) / time.Duration(s.cfg.maxConcurrent)
	secs := int64(math.Ceil(drain.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.FormatInt(secs, 10)
}

// observe feeds one analysis duration into the EWMA (weight 1/8). The
// load/store race is harmless: any interleaving still converges on the
// recent mean.
func (s *server) observe(d time.Duration) {
	old := s.avgNanos.Load()
	if old == 0 {
		s.avgNanos.Store(int64(d))
		return
	}
	s.avgNanos.Store(old + (int64(d)-old)/8)
}

// renderFunc turns an uploaded request body into a JSON response body.
// Most endpoints only look at the raw trace image in data; /v1/diff also
// reads the request's Content-Type to pick its two-side encoding.
type renderFunc func(ctx context.Context, r *http.Request, data []byte, w io.Writer) error

// statusError pins a render failure to a specific HTTP status, with an
// optional prebuilt JSON body (the diff endpoint's doctor-style 422).
type statusError struct {
	status int
	body   []byte // optional JSON document; nil = default error doc
	err    error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

// loadShared resolves a trace through the cache (one load per content
// address, artifacts memoized) or, when the cache is disabled, loads and
// validates it directly. The second return is nil exactly when the cache
// is bypassed.
func (s *server) loadShared(ctx context.Context, data []byte) (*analyzer.Trace, *cache.Handle, error) {
	if s.cache != nil {
		h, err := s.cache.Load(ctx, data, s.cfg.limits)
		if err != nil {
			return nil, nil, err
		}
		return h.Trace(), h, nil
	}
	tr, err := analyzer.LoadContext(ctx, bytes.NewReader(data), s.cfg.limits)
	if err != nil {
		return nil, nil, err
	}
	analyzer.Validate(tr)
	return tr, nil, nil
}

// artifact serves one analysis kind through all the tiers — local
// memory memo, CRC-verified disk tier, then (in cluster mode) a peek at
// the key's owner replica, then recompute with write-through — falling
// back to direct computation when the cache is disabled. Remote fetches
// are adopted into the local tiers so the next request for the same
// bytes stays on this box.
func (s *server) artifact(ctx context.Context, kind string, data []byte, w io.Writer, direct func() error) error {
	if s.cache == nil {
		return direct()
	}
	key := cache.KeyOf(data)
	if b, ok := s.cache.Peek(key, kind); ok {
		if s.cluster != nil {
			s.noteCluster(ctx, "local")
		}
		_, err := w.Write(b)
		return err
	}
	if s.cluster != nil {
		if b, ok := s.clusterFetch(ctx, key, kind); ok {
			_, err := w.Write(b)
			return err
		}
	}
	b, err := s.cache.Artifact(ctx, data, kind, s.cfg.limits)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func (s *server) renderSummary(ctx context.Context, _ *http.Request, data []byte, w io.Writer) error {
	return s.artifact(ctx, cache.KindSummary, data, w, func() error {
		tr, _, err := s.loadShared(ctx, data)
		if err != nil {
			return err
		}
		return analyzer.WriteJSON(tr, analyzer.Summarize(tr), w)
	})
}

func (s *server) renderProfile(ctx context.Context, _ *http.Request, data []byte, w io.Writer) error {
	return s.artifact(ctx, cache.KindProfile, data, w, func() error {
		tr, _, err := s.loadShared(ctx, data)
		if err != nil {
			return err
		}
		return analyzer.WriteProfileJSON(tr, w)
	})
}

func (s *server) renderGaps(ctx context.Context, _ *http.Request, data []byte, w io.Writer) error {
	return s.artifact(ctx, cache.KindGaps, data, w, func() error {
		tr, _, err := s.loadShared(ctx, data)
		if err != nil {
			return err
		}
		min := analyzer.SuggestGapThreshold(tr)
		return analyzer.WriteGapsJSON(min, analyzer.FindGaps(tr, min), w)
	})
}

func (s *server) renderCritPath(ctx context.Context, _ *http.Request, data []byte, w io.Writer) error {
	return s.artifact(ctx, cache.KindCritPath, data, w, func() error {
		tr, _, err := s.loadShared(ctx, data)
		if err != nil {
			return err
		}
		return analyzer.WriteCriticalPathJSON(analyzer.ComputeCriticalPath(tr), w)
	})
}

func (s *server) renderCycles(ctx context.Context, _ *http.Request, data []byte, w io.Writer) error {
	return s.artifact(ctx, cache.KindCycles, data, w, func() error {
		tr, _, err := s.loadShared(ctx, data)
		if err != nil {
			return err
		}
		return cycles.Detect(tr, cycles.Options{}).WriteJSON(w)
	})
}

// renderDoctor never treats damage as an error — that is the point of the
// endpoint — but limit violations and deadlines still abort.
func (s *server) renderDoctor(ctx context.Context, _ *http.Request, data []byte, w io.Writer) error {
	return s.artifact(ctx, cache.KindDoctor, data, w, func() error {
		d, err := analyzer.DoctorDataContext(ctx, data, s.cfg.limits)
		if err != nil {
			return err
		}
		return d.WriteJSON(w)
	})
}

// handleStats reports the cache counters (GET /v1/stats).
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	type cacheStats struct {
		Enabled         bool   `json:"enabled"`
		Hits            uint64 `json:"hits"`
		Misses          uint64 `json:"misses"`
		Dedups          uint64 `json:"dedups"`
		Evictions       uint64 `json:"evictions"`
		Entries         int    `json:"entries"`
		Bytes           int64  `json:"bytes"`
		CapacityBytes   int64  `json:"capacityBytes"`
		CapacityEntries int    `json:"capacityEntries"`
	}
	out := struct {
		Cache   cacheStats       `json:"cache"`
		Disk    *cache.DiskStats `json:"disk,omitempty"`
		Jobs    *jobs.Stats      `json:"jobs,omitempty"`
		Cluster *clusterStats    `json:"cluster,omitempty"`
	}{}
	out.Cluster = s.clusterStatsSnapshot()
	if s.cache != nil {
		st := s.cache.Stats()
		out.Cache = cacheStats{
			Enabled: true,
			Hits:    st.Hits, Misses: st.Misses, Dedups: st.Dedups,
			Evictions: st.Evictions, Entries: st.Entries, Bytes: st.Bytes,
			CapacityBytes: st.MaxBytes, CapacityEntries: st.MaxEntries,
		}
		if d := s.cache.Disk(); d != nil {
			dst := d.Stats()
			out.Disk = &dst
		}
	}
	if s.jobs != nil {
		jst := s.jobs.Stats()
		out.Jobs = &jst
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&out)
}

// analysis wraps a renderFunc with the whole protection stack: request
// deadline, admission control, body cap, and error-to-status mapping.
// The JSON body is rendered into a buffer first so a mid-render failure
// still produces a clean error response instead of truncated output.
func (s *server) analysis(name string, render renderFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if s.cfg.requestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.requestTimeout)
			defer cancel()
		}
		release, err := s.admit(ctx)
		if err != nil {
			if errors.Is(err, errShed) {
				w.Header().Set("Retry-After", s.retryAfter())
				s.writeError(w, http.StatusTooManyRequests, err)
				return
			}
			// A queue-deadline 504 is as retryable as a 429 shed: the
			// server was busy, not broken. Advertise that consistently.
			w.Header().Set("Retry-After", s.retryAfter())
			s.writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("queued past the request deadline: %w", err))
			return
		}
		defer release()
		start := time.Now()
		defer func() { s.observe(time.Since(start)) }()
		if s.analysisHook != nil {
			s.analysisHook()
		}
		data, err := s.readBody(w, r)
		if err != nil {
			var se *statusError
			if errors.As(err, &se) {
				s.writeError(w, se.status, se.err)
				return
			}
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		var note *clusterNote
		if s.cluster != nil {
			note = &clusterNote{}
			ctx = context.WithValue(ctx, clusterNoteKey{}, note)
		}
		var buf bytes.Buffer
		if err := render(ctx, r, data, &buf); err != nil {
			var se *statusError
			switch {
			case errors.As(err, &se):
				if se.body != nil {
					w.Header().Set("Content-Type", "application/json")
					w.WriteHeader(se.status)
					_, _ = w.Write(se.body)
					return
				}
				s.writeError(w, se.status, se.err)
			case errors.Is(err, analyzer.ErrLimitExceeded):
				s.writeError(w, http.StatusRequestEntityTooLarge, err)
			case errors.Is(err, context.DeadlineExceeded):
				w.Header().Set("Retry-After", s.retryAfter())
				s.writeError(w, http.StatusGatewayTimeout, err)
			case errors.Is(err, context.Canceled):
				// Client went away; nothing useful to write.
			default:
				s.writeError(w, http.StatusBadRequest,
					fmt.Errorf("%s: %w", name, err))
			}
			return
		}
		if note != nil && note.v != "" {
			w.Header().Set("X-Pdt-Cluster", note.v)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		_, _ = w.Write(buf.Bytes())
	})
}

// writeError emits a small JSON error document.
func (s *server) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// recoverPanics converts handler panics into 500s so one hostile trace
// cannot take the daemon down.
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				s.log.Error("handler panic",
					"method", r.Method, "path", r.URL.Path, "panic", fmt.Sprint(v))
				s.writeError(w, http.StatusInternalServerError,
					fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// statusWriter captures the status and size for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// logRequests emits one structured line per request.
func (s *server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes_in", r.ContentLength,
			"bytes_out", sw.bytes,
			"duration_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr)
	})
}
