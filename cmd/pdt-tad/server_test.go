package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/harness"
)

// traceBytes produces a real serialized trace for the service to chew on.
func traceBytes(t *testing.T, params map[string]string) []byte {
	t.Helper()
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "julia",
		Params:   params,
		Trace:    &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.TraceBytes
}

func smallTrace(t *testing.T) []byte {
	return traceBytes(t, map[string]string{"w": "64", "h": "32", "maxiter": "32"})
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}

func testServer(t *testing.T, mut func(*config)) (*server, *httptest.Server) {
	t.Helper()
	cfg := defaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	s := newServer(cfg, quietLogger())
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// postCode is post for goroutines: no t.Fatal, -1 on transport error.
func postCode(url string, body []byte) int {
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func TestEndpointsGolden(t *testing.T) {
	_, ts := testServer(t, nil)
	trace := smallTrace(t)

	resp, body := post(t, ts.URL+"/v1/summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary: status %d: %s", resp.StatusCode, body)
	}
	var sum map[string]any
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatalf("summary: bad JSON: %v", err)
	}
	if sum["workload"] != "julia" {
		t.Fatalf("summary: workload = %v, want julia", sum["workload"])
	}

	resp, body = post(t, ts.URL+"/v1/profile", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: status %d: %s", resp.StatusCode, body)
	}
	var prof struct {
		Intervals []map[string]any `json:"intervals"`
	}
	if err := json.Unmarshal(body, &prof); err != nil {
		t.Fatalf("profile: bad JSON: %v", err)
	}
	if len(prof.Intervals) == 0 {
		t.Fatal("profile: no intervals")
	}

	resp, body = post(t, ts.URL+"/v1/doctor", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("doctor: status %d: %s", resp.StatusCode, body)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("doctor: bad JSON: %v", err)
	}
	if doc["verdict"] != "CLEAN" || doc["recoverable"] != true {
		t.Fatalf("doctor on clean trace: %s", body)
	}
}

func TestCorruptTrace(t *testing.T) {
	_, ts := testServer(t, nil)
	garbage := bytes.Repeat([]byte("not a pdt trace "), 64)

	resp, body := post(t, ts.URL+"/v1/summary", garbage)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("summary on garbage: status %d: %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
		t.Fatalf("summary error body not JSON: %s", body)
	}

	// Doctor exists for damaged input: it reports, it does not reject.
	resp, body = post(t, ts.URL+"/v1/doctor", garbage)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("doctor on garbage: status %d: %s", resp.StatusCode, body)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("doctor: bad JSON: %v", err)
	}
	if doc["verdict"] != "UNRECOVERABLE" || doc["recoverable"] != false {
		t.Fatalf("doctor on garbage: %s", body)
	}

	// A truncated-but-real trace must come back recoverable.
	trace := smallTrace(t)
	resp, body = post(t, ts.URL+"/v1/doctor", trace[:len(trace)-len(trace)/3])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("doctor on truncated: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("doctor: bad JSON: %v", err)
	}
	if doc["recoverable"] != true {
		t.Fatalf("doctor on truncated trace: %s", body)
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, ts := testServer(t, func(c *config) { c.maxBody = 512 })
	resp, body := post(t, ts.URL+"/v1/summary", make([]byte, 4096))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

func TestAnalyzerLimitMapsTo413(t *testing.T) {
	_, ts := testServer(t, func(c *config) { c.limits.MaxChunkBytes = 64 })
	resp, body := post(t, ts.URL+"/v1/summary", smallTrace(t))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "limit") {
		t.Fatalf("error body does not mention the limit: %s", body)
	}
}

func TestMethodAndPathRouting(t *testing.T) {
	_, ts := testServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/summary: status %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/nonesuch", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/nonesuch: status %d", resp.StatusCode)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := testServer(t, nil)
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", probe, resp.StatusCode)
		}
	}
	s.draining.Store(true)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d", resp.StatusCode)
	}
	// Liveness must stay green during a drain.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: status %d", resp.StatusCode)
	}
}

func TestSheddingUnderSaturation(t *testing.T) {
	block := make(chan struct{})
	s, ts := testServer(t, func(c *config) {
		c.maxConcurrent = 1
		c.maxQueue = 1
		c.requestTimeout = 10 * time.Second
	})
	s.analysisHook = func() { <-block }
	trace := smallTrace(t)

	// First request occupies the only slot, second waits in the queue.
	results := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- postCode(ts.URL+"/v1/summary", trace)
		}()
		// Give the request time to take its slot/queue position.
		time.Sleep(100 * time.Millisecond)
	}

	// Slot busy, queue full: this one must be shed immediately.
	resp, body := post(t, ts.URL+"/v1/summary", trace)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(block)
	wg.Wait()
	close(results)
	for code := range results {
		if code != http.StatusOK {
			t.Fatalf("blocked request finished with %d, want 200", code)
		}
	}
}

func TestQueuedRequestHitsDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s, ts := testServer(t, func(c *config) {
		c.maxConcurrent = 1
		c.maxQueue = 1
		c.requestTimeout = 300 * time.Millisecond
	})
	s.analysisHook = func() { <-block }
	trace := smallTrace(t)

	go postCode(ts.URL+"/v1/summary", trace) // takes the slot, blocks
	time.Sleep(100 * time.Millisecond)

	resp, body := post(t, ts.URL+"/v1/summary", trace) // queues, then times out
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued past deadline: status %d: %s", resp.StatusCode, body)
	}
	// A queue-deadline 504 means "busy, try again" — it must advertise
	// retryability exactly like the 429 shed does.
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-deadline 504 without Retry-After")
	}
}

func TestGapsAndCritPathEndpoints(t *testing.T) {
	_, ts := testServer(t, nil)
	trace := smallTrace(t)

	resp, body := post(t, ts.URL+"/v1/gaps", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gaps: status %d: %s", resp.StatusCode, body)
	}
	var gaps struct {
		MinTicks uint64           `json:"minTicks"`
		Gaps     []map[string]any `json:"gaps"`
	}
	if err := json.Unmarshal(body, &gaps); err != nil {
		t.Fatalf("gaps: bad JSON: %v", err)
	}
	if gaps.MinTicks == 0 {
		t.Fatalf("gaps: zero threshold: %s", body)
	}

	resp, body = post(t, ts.URL+"/v1/critpath", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("critpath: status %d: %s", resp.StatusCode, body)
	}
	var cp struct {
		TotalTicks uint64           `json:"totalTicks"`
		Segments   []map[string]any `json:"segments"`
	}
	if err := json.Unmarshal(body, &cp); err != nil {
		t.Fatalf("critpath: bad JSON: %v", err)
	}
	if cp.TotalTicks == 0 || len(cp.Segments) == 0 {
		t.Fatalf("critpath: empty result: %s", body)
	}
}

// statsBody fetches and decodes GET /v1/stats.
func statsBody(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Cache map[string]any `json:"cache"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("stats: bad JSON: %v", err)
	}
	return out.Cache
}

// TestCacheStatsEndpoint proves a repeated upload is a cache hit and that
// /v1/stats reflects it; hits across different endpoints share the entry.
func TestCacheStatsEndpoint(t *testing.T) {
	_, ts := testServer(t, nil) // cache on by default
	trace := smallTrace(t)

	for _, ep := range []string{"/v1/summary", "/v1/summary", "/v1/profile", "/v1/critpath"} {
		if resp, body := post(t, ts.URL+ep, trace); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", ep, resp.StatusCode, body)
		}
	}
	st := statsBody(t, ts.URL)
	if st["enabled"] != true {
		t.Fatalf("stats: cache not enabled: %v", st)
	}
	if st["misses"] != float64(1) || st["hits"] != float64(3) {
		t.Fatalf("stats: misses=%v hits=%v, want 1 miss + 3 hits", st["misses"], st["hits"])
	}
	if st["entries"] != float64(1) || st["bytes"].(float64) <= 0 {
		t.Fatalf("stats: entries=%v bytes=%v, want 1 entry with weight", st["entries"], st["bytes"])
	}
}

func TestCacheDisabled(t *testing.T) {
	_, ts := testServer(t, func(c *config) { c.cacheBytes = 0; c.cacheEntries = 0 })
	trace := smallTrace(t)
	for i := 0; i < 2; i++ {
		if resp, body := post(t, ts.URL+"/v1/summary", trace); resp.StatusCode != http.StatusOK {
			t.Fatalf("summary: status %d: %s", resp.StatusCode, body)
		}
	}
	st := statsBody(t, ts.URL)
	if st["enabled"] != false {
		t.Fatalf("stats: cache should be disabled: %v", st)
	}
}

// TestCacheChurnNoBleed hammers a 2-entry cache with concurrent uploads of
// four distinct traces and checks every response is byte-identical to that
// trace's uncached baseline — eviction churn must never serve one trace's
// analysis for another's bytes — while retention stays within the bound.
func TestCacheChurnNoBleed(t *testing.T) {
	traces := [][]byte{
		traceBytes(t, map[string]string{"w": "48", "h": "24", "maxiter": "16"}),
		traceBytes(t, map[string]string{"w": "64", "h": "32", "maxiter": "24"}),
		traceBytes(t, map[string]string{"w": "80", "h": "40", "maxiter": "32"}),
		traceBytes(t, map[string]string{"w": "96", "h": "48", "maxiter": "40"}),
	}
	endpoints := []string{"/v1/summary", "/v1/profile", "/v1/gaps", "/v1/critpath"}

	// Baselines from a cache-disabled server: the ground truth per trace.
	_, plain := testServer(t, func(c *config) { c.cacheBytes = 0; c.cacheEntries = 0 })
	want := make(map[string][]byte)
	for ti, tr := range traces {
		for _, ep := range endpoints {
			resp, body := post(t, plain.URL+ep, tr)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("baseline %s trace %d: status %d: %s", ep, ti, resp.StatusCode, body)
			}
			want[ep+strconv.Itoa(ti)] = body
		}
	}

	s, ts := testServer(t, func(c *config) { c.cacheEntries = 2; c.cacheBytes = 0 })
	const workers, iters = 8, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ti := (w + i) % len(traces)
				ep := endpoints[(w+i)%len(endpoints)]
				resp, err := http.Post(ts.URL+ep, "application/octet-stream",
					bytes.NewReader(traces[ti]))
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("%s trace %d: status %d err %v", ep, ti, resp.StatusCode, err)
					return
				}
				if !bytes.Equal(body, want[ep+strconv.Itoa(ti)]) {
					t.Errorf("%s trace %d: response differs from baseline (cross-trace bleed?)", ep, ti)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.cache.Stats()
	if st.Entries > 2 {
		t.Fatalf("cache retained %d entries, bound is 2", st.Entries)
	}
	if st.Hits == 0 || st.Evictions == 0 {
		t.Fatalf("stats %+v: churn should both hit and evict", st)
	}
}

func TestPanicBecomes500AndServerSurvives(t *testing.T) {
	s, ts := testServer(t, nil)
	trace := smallTrace(t)

	s.analysisHook = func() { panic("hostile trace tickled a bug") }
	resp, body := post(t, ts.URL+"/v1/summary", trace)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d: %s", resp.StatusCode, body)
	}

	// The daemon must keep serving after a panic — including the slot,
	// which the deferred release must have returned.
	s.analysisHook = nil
	for i := 0; i < defaultConfig().maxConcurrent+1; i++ {
		resp, body = post(t, ts.URL+"/v1/summary", trace)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("after panic: status %d: %s", resp.StatusCode, body)
		}
	}
}

// TestCancelledRequestNoGoroutineLeak kills an in-flight analysis request
// and checks the daemon sheds every goroutine it spawned for it.
func TestCancelledRequestNoGoroutineLeak(t *testing.T) {
	trace := traceBytes(t, map[string]string{"w": "256", "h": "128", "maxiter": "64"})
	baseline := runtime.NumGoroutine()

	cfg := defaultConfig()
	s := newServer(cfg, quietLogger())
	ts := httptest.NewServer(s.handler())

	for trial := 0; trial < 10; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/summary", bytes.NewReader(trace))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		time.Sleep(time.Duration(trial) * 500 * time.Microsecond)
		cancel()
		<-done
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunListenFailure exercises the real entry point around Serve: run()
// must surface a listener error promptly instead of hanging. (The full
// SIGTERM drain path needs a real process and lives in the smoke test.)
func TestRunListenFailure(t *testing.T) {
	_, ts := testServer(t, nil)
	addr := ts.Listener.Addr().String()
	err := run([]string{"-addr", addr}, io.Discard, io.Discard, nil)
	if err == nil {
		t.Fatal("run() on an occupied port should fail")
	}
	if !strings.Contains(err.Error(), "address already in use") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFlagParsing(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard, io.Discard, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "999.999.999.999:1"}, io.Discard, io.Discard, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// TestRetryAfterClampBounds pins the EWMA-derived Retry-After estimate
// to its contract: never below 1s, never above 60s, and the honest
// backlog-drain estimate in between.
func TestRetryAfterClampBounds(t *testing.T) {
	cfg := defaultConfig()
	cfg.maxConcurrent = 4
	s := newServer(cfg, quietLogger())

	// No observations yet: the 500ms prior over an empty backlog rounds
	// up to the 1s floor.
	if got := s.retryAfter(); got != "1" {
		t.Fatalf("cold retryAfter = %q, want 1", got)
	}

	// An absurd average must clamp at the 60s ceiling, not leak a
	// multi-minute hint that parks clients forever.
	s.avgNanos.Store(int64(10 * time.Minute))
	if got := s.retryAfter(); got != "60" {
		t.Fatalf("huge-average retryAfter = %q, want 60", got)
	}

	// Mid-range: 8s average, empty backlog (=1), 4 slots → ceil(2s) = 2.
	s.avgNanos.Store(int64(8 * time.Second))
	if got := s.retryAfter(); got != "2" {
		t.Fatalf("mid-range retryAfter = %q, want 2", got)
	}

	// A busier backlog stretches the estimate: three held slots plus the
	// caller = 4 drain turns at 8s/4 slots each → 8s.
	for i := 0; i < 3; i++ {
		s.slots <- struct{}{}
	}
	if got := s.retryAfter(); got != "8" {
		t.Fatalf("backlogged retryAfter = %q, want 8", got)
	}

	// A negative (corrupt) average falls back to the prior, not panic
	// or zero.
	s.avgNanos.Store(-1)
	for i := 0; i < 3; i++ {
		<-s.slots
	}
	if got := s.retryAfter(); got != "1" {
		t.Fatalf("negative-average retryAfter = %q, want 1", got)
	}
}

// TestObserveEWMA pins the averaging rule retryAfter builds on: first
// sample seeds the average, later samples move it by 1/8 of the gap.
func TestObserveEWMA(t *testing.T) {
	s := newServer(defaultConfig(), quietLogger())
	s.observe(800 * time.Millisecond)
	if got := time.Duration(s.avgNanos.Load()); got != 800*time.Millisecond {
		t.Fatalf("first observation = %v, want 800ms", got)
	}
	s.observe(1600 * time.Millisecond)
	if got := time.Duration(s.avgNanos.Load()); got != 900*time.Millisecond {
		t.Fatalf("after second observation = %v, want 900ms (800 + 800/8)", got)
	}
	s.observe(100 * time.Millisecond)
	if got := time.Duration(s.avgNanos.Load()); got != 800*time.Millisecond {
		t.Fatalf("after downward observation = %v, want 800ms (900 - 800/8)", got)
	}
}
