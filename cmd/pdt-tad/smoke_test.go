//go:build smoke

package main

// End-to-end smoke test for `make smoke-tad`: builds the real pdt-tad
// binary, starts it on a random port, and exercises the contract an
// operator relies on — 200 on a good trace, 413 over the body limit,
// 429 when saturated, and a graceful SIGTERM drain that finishes the
// in-flight request before the process exits cleanly.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestSmokeTAD(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "pdt-tad")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building pdt-tad: %v", err)
	}

	golden, err := os.ReadFile("../../internal/core/testdata/golden.pdt")
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-max-body", fmt.Sprint(1<<20),
		"-max-concurrent", "1",
		"-max-queue", "0",
		"-drain", "10s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	var addr string
	lines := bufio.NewScanner(stdout)
	if !lines.Scan() {
		t.Fatal("no startup line on stdout")
	}
	line := lines.Text()
	const prefix = "pdt-tad: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	addr = strings.TrimPrefix(line, prefix)
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	base := "http://" + addr
	client := &http.Client{Timeout: 10 * time.Second}

	// Probes answer.
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := client.Get(base + probe)
		if err != nil {
			t.Fatalf("GET %s: %v", probe, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", probe, resp.StatusCode)
		}
	}

	// Golden trace → 200 with a summary.
	resp, err := client.Post(base+"/v1/summary", "application/octet-stream",
		bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("golden trace: status %d: %s", resp.StatusCode, body)
	}
	var sum map[string]any
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatalf("summary not JSON: %v", err)
	}
	if _, ok := sum["workload"]; !ok {
		t.Fatalf("summary missing workload: %s", body)
	}

	// Over the body limit → 413.
	resp, err = client.Post(base+"/v1/summary", "application/octet-stream",
		bytes.NewReader(make([]byte, 2<<20)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", resp.StatusCode)
	}

	// Saturate the single slot with a slow upload: the handler admits
	// before reading the body, so a stalled body pins the slot.
	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fmt.Fprintf(slow, "POST /v1/summary HTTP/1.1\r\nHost: pdt-tad\r\n"+
		"Content-Type: application/octet-stream\r\nContent-Length: %d\r\n\r\n",
		len(golden))
	if _, err := slow.Write(golden[:16]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let it claim the slot

	// Slot busy, queue zero → immediate 429.
	resp, err = client.Post(base+"/v1/summary", "application/octet-stream",
		bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d, want 429", resp.StatusCode)
	}

	// Graceful drain: SIGTERM with a request in flight. The server must
	// finish that request before exiting.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if _, err := slow.Write(golden[16:]); err != nil {
		t.Fatalf("finishing in-flight upload during drain: %v", err)
	}
	drained, err := http.ReadResponse(bufio.NewReader(slow), nil)
	if err != nil {
		t.Fatalf("reading in-flight response during drain: %v", err)
	}
	io.Copy(io.Discard, drained.Body)
	drained.Body.Close()
	if drained.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", drained.StatusCode)
	}
	slow.Close()

	// The process must exit cleanly within the drain budget.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pdt-tad exited with error after drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("pdt-tad did not exit within the drain budget")
	}
}
