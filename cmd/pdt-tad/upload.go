package main

// Chunked, resumable trace upload with live analysis. A client creates
// an upload session, streams the trace in as many POSTs as it likes
// (each optionally gzip-compressed), and can read a running summary at
// any point — the analyzer's incremental kernels fold each chunk as it
// arrives, so memory stays bounded by the stream window no matter how
// large the trace grows. The session hashes the decompressed bytes on
// the fly; on completion the finished artifacts are adopted into the
// content-addressed cache under that key, so a later whole-body POST of
// the same trace is a cache hit.
//
//	POST   /v1/upload                  -> 201 {"id", "offset": 0}
//	POST   /v1/upload/{id}?offset=N    append chunk; 409 + current offset
//	                                   on mismatch (resume point)
//	POST   /v1/upload/{id}/complete    -> final summary + content key
//	DELETE /v1/upload/{id}             abort and free the session
//	GET    /v1/live/{id}               running summary snapshot

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cache"
)

// uploadSession is one in-progress chunked upload: the streaming loader
// holding the incremental analysis, the running content hash, and the
// resume offset (decompressed bytes accepted so far).
type uploadSession struct {
	mu     sync.Mutex
	id     string
	loader *analyzer.StreamLoader
	hash   hash.Hash
	offset int64
	last   time.Time
	// failed latches the first fatal stream error; every later append or
	// complete reports it (the trace bytes are corrupt — resending the
	// same data cannot help).
	failed error
	// result is set once /complete ran; /v1/live serves it afterwards.
	result *analyzer.StreamResult
	key    cache.Key
}

// uploads is the session registry: bounded population, idle expiry swept
// lazily on every operation (no janitor goroutine to leak).
type uploads struct {
	mu  sync.Mutex
	m   map[string]*uploadSession
	max int
	ttl time.Duration
}

func newUploads(max int, ttl time.Duration) *uploads {
	return &uploads{m: map[string]*uploadSession{}, max: max, ttl: ttl}
}

// sweep drops sessions idle past the TTL. Callers hold u.mu.
func (u *uploads) sweep(now time.Time) {
	for id, sess := range u.m {
		sess.mu.Lock()
		idle := now.Sub(sess.last)
		sess.mu.Unlock()
		if idle > u.ttl {
			delete(u.m, id)
		}
	}
}

func (u *uploads) create(sess *uploadSession) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.sweep(time.Now())
	if len(u.m) >= u.max {
		return fmt.Errorf("upload sessions exhausted (%d active; retry or complete one)", len(u.m))
	}
	u.m[sess.id] = sess
	return nil
}

func (u *uploads) get(id string) (*uploadSession, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.sweep(time.Now())
	sess, ok := u.m[id]
	return sess, ok
}

func (u *uploads) remove(id string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.m, id)
}

func (u *uploads) active() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.m)
}

// uploadLimits derives the streaming loader's admission control from the
// service config: chunked uploads may legitimately exceed the per-request
// body cap — that is their point — so the file cap is the dedicated
// upload budget instead.
func (s *server) uploadLimits() analyzer.Limits {
	lim := s.cfg.limits
	lim.MaxFileBytes = s.cfg.maxUploadBytes
	return lim
}

// handleUploadCreate opens a session (POST /v1/upload).
func (s *server) handleUploadCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter())
		s.writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess := &uploadSession{
		id: hex.EncodeToString(raw[:]),
		loader: analyzer.NewStreamLoader(analyzer.StreamOptions{
			Limits:   s.uploadLimits(),
			Validate: true,
		}),
		hash: sha256.New(),
		last: time.Now(),
	}
	if err := s.uploads.create(sess); err != nil {
		w.Header().Set("Retry-After", s.retryAfter())
		s.writeError(w, http.StatusTooManyRequests, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(map[string]any{"id": sess.id, "offset": 0})
}

// handleUploadAppend feeds one chunk into the session's streaming loader
// (POST /v1/upload/{id}?offset=N). The body may be gzip-compressed; it is
// inflated straight into the loader in small slices, with the per-request
// decompressed cap and the loader's cumulative budgets enforced
// mid-inflate — a gzip bomb dies at the first slice past a cap, never
// fully inflated in memory. An offset mismatch is a 409 carrying the
// session's current offset: the client re-slices its data there and
// resumes (append is otherwise not idempotent, so the check is
// mandatory whenever ?offset is supplied).
func (s *server) handleUploadAppend(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.uploads.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("unknown or expired upload session"))
		return
	}
	release, err := s.admit(r.Context())
	if err != nil {
		w.Header().Set("Retry-After", s.retryAfter())
		status := http.StatusTooManyRequests
		if !errors.Is(err, errShed) {
			status = http.StatusGatewayTimeout
		}
		s.writeError(w, status, err)
		return
	}
	defer release()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.last = time.Now()
	if sess.result != nil {
		s.writeError(w, http.StatusConflict, errors.New("upload already completed"))
		return
	}
	if sess.failed != nil {
		s.writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("upload failed earlier: %w", sess.failed))
		return
	}
	if off := r.URL.Query().Get("offset"); off != "" {
		want, err := strconv.ParseInt(off, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad offset: %w", err))
			return
		}
		if want != sess.offset {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error":  "offset mismatch",
				"offset": sess.offset,
			})
			return
		}
	}

	body, serr := s.streamBody(w, r)
	if serr != nil {
		s.writeError(w, serr.status, serr.err)
		return
	}
	defer body.Close()
	buf := make([]byte, 256<<10)
	var chunkBytes int64
	for {
		n, rerr := body.Read(buf)
		if n > 0 {
			chunkBytes += int64(n)
			if chunkBytes > s.cfg.maxBody {
				// Mid-inflate cap: the decompressed request outgrew the
				// body limit; stop before inflating the rest.
				s.writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("decompressed chunk exceeds %d bytes", s.cfg.maxBody))
				return
			}
			if _, werr := sess.loader.Write(buf[:n]); werr != nil {
				if errors.Is(werr, analyzer.ErrLimitExceeded) {
					sess.failed = werr
					s.writeError(w, http.StatusRequestEntityTooLarge, werr)
					return
				}
				sess.failed = werr
				s.writeError(w, http.StatusUnprocessableEntity, werr)
				return
			}
			sess.hash.Write(buf[:n])
			sess.offset += int64(n)
		}
		if rerr != nil {
			if rerr == io.EOF {
				break
			}
			var mbe *http.MaxBytesError
			if errors.As(rerr, &mbe) {
				s.writeError(w, http.StatusRequestEntityTooLarge, rerr)
				return
			}
			// Transport or gzip failure mid-chunk: whatever bytes were
			// accepted stay accepted; the client resumes from the offset
			// the next 409 reports.
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("reading chunk: %w", rerr))
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"offset": sess.offset,
		"events": sess.loader.Events(),
	})
}

// handleUploadComplete seals the stream, renders the final analysis, and
// adopts the artifacts into the content-addressed cache under the
// running hash — the same key a whole-body POST of these bytes computes,
// so the upload pre-warms /v1/summary and /v1/profile
// (POST /v1/upload/{id}/complete).
func (s *server) handleUploadComplete(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.uploads.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("unknown or expired upload session"))
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.last = time.Now()
	if sess.failed != nil {
		s.uploads.remove(sess.id)
		s.writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("upload failed earlier: %w", sess.failed))
		return
	}
	if sess.result == nil {
		res, err := sess.loader.Finish()
		if err != nil {
			sess.failed = err
			s.uploads.remove(sess.id)
			s.writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		sess.result = res
		copy(sess.key[:], sess.hash.Sum(nil))
		if s.cache != nil && res.Complete && !res.Trace.Truncated {
			s.adoptStreamArtifacts(sess.key, res)
		}
	}
	doc, err := liveDoc(sess, sess.result, true)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(doc)
}

// handleUploadAbort frees a session (DELETE /v1/upload/{id}).
func (s *server) handleUploadAbort(w http.ResponseWriter, r *http.Request) {
	s.uploads.remove(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

// handleLive serves the running summary of an in-flight upload
// (GET /v1/live/{id}): a consistent snapshot of every incremental
// kernel, identical field for field to what a batch /v1/summary of the
// bytes seen so far would report.
func (s *server) handleLive(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.uploads.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("unknown or expired upload session"))
		return
	}
	sess.mu.Lock()
	sess.last = time.Now()
	res := sess.result
	final := res != nil
	if !final {
		res = sess.loader.Snapshot()
	}
	doc, err := liveDoc(sess, res, final)
	sess.mu.Unlock()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(doc)
}

// liveDoc renders the envelope shared by /v1/live and /complete: upload
// progress plus the standard summary document. Callers hold sess.mu.
func liveDoc(sess *uploadSession, res *analyzer.StreamResult, final bool) ([]byte, error) {
	var sumBuf bytes.Buffer
	if err := analyzer.WriteJSON(res.Trace, res.Summary, &sumBuf); err != nil {
		return nil, err
	}
	out := struct {
		ID        string          `json:"id"`
		Offset    int64           `json:"offset"`
		Events    int64           `json:"events"`
		Final     bool            `json:"final"`
		Complete  bool            `json:"complete"`
		Truncated bool            `json:"truncated"`
		Key       string          `json:"key,omitempty"`
		Summary   json.RawMessage `json:"summary"`
	}{
		ID: sess.id, Offset: sess.offset, Events: res.Events,
		Final: final, Complete: res.Complete, Truncated: res.Trace.Truncated,
		Summary: json.RawMessage(sumBuf.Bytes()),
	}
	if final {
		out.Key = hex.EncodeToString(sess.key[:])
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// adoptStreamArtifacts installs the stream-computed summary and profile
// under the upload's content key, exactly the bytes the batch renderers
// would produce (the streaming kernels are batch-identical, so the cache
// cannot tell the difference). Gaps and critical path stay uncached:
// their batch forms need the whole trace in memory.
func (s *server) adoptStreamArtifacts(key cache.Key, res *analyzer.StreamResult) {
	var buf bytes.Buffer
	if err := analyzer.WriteJSON(res.Trace, res.Summary, &buf); err == nil {
		s.cache.AdoptArtifact(key, cache.KindSummary, append([]byte(nil), buf.Bytes()...))
	}
	buf.Reset()
	if err := analyzer.WriteProfilePairsJSON(res.Trace, res.Profile, &buf); err == nil {
		s.cache.AdoptArtifact(key, cache.KindProfile, append([]byte(nil), buf.Bytes()...))
	}
}
