package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// get fetches a URL and returns the response plus its body.
func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := new(bytes.Buffer)
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// uploadDoc is the envelope /v1/live and /complete return.
type uploadDoc struct {
	ID        string          `json:"id"`
	Offset    int64           `json:"offset"`
	Events    int64           `json:"events"`
	Final     bool            `json:"final"`
	Complete  bool            `json:"complete"`
	Truncated bool            `json:"truncated"`
	Key       string          `json:"key"`
	Summary   json.RawMessage `json:"summary"`
}

func createUpload(t *testing.T, base string) string {
	t.Helper()
	resp, body := post(t, base+"/v1/upload", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || doc.ID == "" {
		t.Fatalf("create: bad body %s (%v)", body, err)
	}
	return doc.ID
}

func appendChunk(t *testing.T, base, id string, offset int64, chunk []byte, gz bool) (*http.Response, []byte) {
	t.Helper()
	body := chunk
	if gz {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(chunk)
		zw.Close()
		body = buf.Bytes()
	}
	req, err := http.NewRequest("POST",
		fmt.Sprintf("%s/v1/upload/%s?offset=%d", base, id, offset), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if gz {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := new(bytes.Buffer)
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

// TestUploadChunkedMatchesBatch streams a real trace in small chunks
// (alternating plain and gzip transport), reads a live snapshot along
// the way, completes, and checks the final summary is byte-identical to
// the whole-body /v1/summary of the same trace — and that the upload
// pre-warmed the cache under the same content key.
func TestUploadChunkedMatchesBatch(t *testing.T) {
	s, ts := testServer(t, nil)
	trace := smallTrace(t)

	id := createUpload(t, ts.URL)
	const chunkSize = 8 << 10
	var off int64
	for i := 0; off < int64(len(trace)); i++ {
		end := off + chunkSize
		if end > int64(len(trace)) {
			end = int64(len(trace))
		}
		resp, body := appendChunk(t, ts.URL, id, off, trace[off:end], i%2 == 1)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append at %d: status %d: %s", off, resp.StatusCode, body)
		}
		var ack struct {
			Offset int64 `json:"offset"`
		}
		if err := json.Unmarshal(body, &ack); err != nil || ack.Offset != end {
			t.Fatalf("append at %d: ack %s (want offset %d)", off, body, end)
		}
		off = end

		if i == 2 {
			resp, body := get(t, ts.URL+"/v1/live/"+id)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("live: status %d: %s", resp.StatusCode, body)
			}
			var live uploadDoc
			if err := json.Unmarshal(body, &live); err != nil {
				t.Fatalf("live: bad JSON: %v", err)
			}
			if live.Final || live.Complete {
				t.Fatalf("live mid-upload reported final=%v complete=%v", live.Final, live.Complete)
			}
			if live.Offset != off {
				t.Fatalf("live offset %d, want %d", live.Offset, off)
			}
		}
	}

	resp, body := post(t, ts.URL+"/v1/upload/"+id+"/complete", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("complete: status %d: %s", resp.StatusCode, body)
	}
	var fin uploadDoc
	if err := json.Unmarshal(body, &fin); err != nil {
		t.Fatalf("complete: bad JSON: %v", err)
	}
	if !fin.Final || !fin.Complete || fin.Truncated {
		t.Fatalf("complete: final=%v complete=%v truncated=%v", fin.Final, fin.Complete, fin.Truncated)
	}
	if fin.Key == "" {
		t.Fatal("complete: no content key")
	}

	// The streamed summary must match the batch endpoint's byte for byte
	// once both are compacted (the upload envelope re-indents the nested
	// document; the content must be identical).
	resp, batch := post(t, ts.URL+"/v1/summary", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary: status %d: %s", resp.StatusCode, batch)
	}
	var streamC, batchC bytes.Buffer
	if err := json.Compact(&streamC, fin.Summary); err != nil {
		t.Fatalf("compact stream summary: %v", err)
	}
	if err := json.Compact(&batchC, batch); err != nil {
		t.Fatalf("compact batch summary: %v", err)
	}
	if !bytes.Equal(streamC.Bytes(), batchC.Bytes()) {
		t.Errorf("streamed summary differs from batch:\nstream: %s\nbatch:  %s", streamC.Bytes(), batchC.Bytes())
	}

	// The upload adopted its artifacts: that batch /v1/summary must have
	// been a cache hit, not a recompute.
	if s.cache != nil {
		st := s.cache.Stats()
		if st.Hits == 0 {
			t.Errorf("batch summary after upload missed the cache (hits=%d misses=%d)", st.Hits, st.Misses)
		}
	}
}

// TestUploadResume checks the 409 resume protocol: a chunk at the wrong
// offset is refused with the session's current offset, and re-slicing
// from there succeeds.
func TestUploadResume(t *testing.T) {
	_, ts := testServer(t, nil)
	trace := smallTrace(t)
	id := createUpload(t, ts.URL)

	cut := int64(len(trace) / 3)
	if resp, body := appendChunk(t, ts.URL, id, 0, trace[:cut], false); resp.StatusCode != http.StatusOK {
		t.Fatalf("first chunk: status %d: %s", resp.StatusCode, body)
	}

	// Replay the same chunk (offset 0): refused, current offset returned.
	resp, body := appendChunk(t, ts.URL, id, 0, trace[:cut], false)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("replay: status %d, want 409: %s", resp.StatusCode, body)
	}
	var conflict struct {
		Offset int64 `json:"offset"`
	}
	if err := json.Unmarshal(body, &conflict); err != nil || conflict.Offset != cut {
		t.Fatalf("replay: conflict doc %s (want offset %d)", body, cut)
	}

	// Resume from the advertised offset and finish.
	if resp, body := appendChunk(t, ts.URL, id, conflict.Offset, trace[cut:], true); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/upload/"+id+"/complete", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("complete: status %d: %s", resp.StatusCode, body)
	}
	var fin uploadDoc
	if err := json.Unmarshal(body, &fin); err != nil || !fin.Complete {
		t.Fatalf("complete after resume: %s (%v)", body, err)
	}
}

// TestUploadGzipBomb is the mid-inflate admission regression test: a
// tiny gzip body that inflates far past every cap must be rejected with
// 413 while it is still being inflated — the decompressed-size checks
// run per slice, so the bomb is never fully expanded in memory.
func TestUploadGzipBomb(t *testing.T) {
	_, ts := testServer(t, func(c *config) {
		c.maxBody = 1 << 20
		c.maxUploadBytes = 1 << 20
	})
	id := createUpload(t, ts.URL)

	// A valid trace followed by 64 MiB of zeros: parseable all the way, so
	// the decompressed-size caps — not the format checks — are what reject
	// it. Compresses to well under the wire cap.
	var bomb bytes.Buffer
	zw := gzip.NewWriter(&bomb)
	zw.Write(smallTrace(t))
	zero := make([]byte, 1<<20)
	for i := 0; i < 64; i++ {
		zw.Write(zero)
	}
	zw.Close()
	if bomb.Len() >= 1<<20 {
		t.Fatalf("bomb did not compress: %d bytes", bomb.Len())
	}

	req, err := http.NewRequest("POST", ts.URL+"/v1/upload/"+id, bytes.NewReader(bomb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("gzip bomb: status %d, want 413", resp.StatusCode)
	}
}

// TestUploadSessionLimit fills the registry and checks the next create
// is shed with 429 + Retry-After, then that DELETE frees a slot.
func TestUploadSessionLimit(t *testing.T) {
	_, ts := testServer(t, func(c *config) { c.maxUploads = 2 })
	a := createUpload(t, ts.URL)
	_ = createUpload(t, ts.URL)

	resp, body := post(t, ts.URL+"/v1/upload", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third create: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/upload/"+a, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("abort: status %d, want 204", dresp.StatusCode)
	}
	_ = createUpload(t, ts.URL) // slot freed
}

// TestUploadCorruptFailsSticky checks a hostile stream poisons the
// session: the first bad chunk is 422 and so is every later append.
func TestUploadCorruptFailsSticky(t *testing.T) {
	_, ts := testServer(t, nil)
	id := createUpload(t, ts.URL)

	// Long enough to cover the fixed header, so the magic check actually
	// runs (shorter prefixes are buffered pending more bytes).
	garbage := bytes.Repeat([]byte("not a PDT trace at all. "), 4)
	resp, body := appendChunk(t, ts.URL, id, 0, garbage, false)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt chunk: status %d, want 422: %s", resp.StatusCode, body)
	}
	resp, body = appendChunk(t, ts.URL, id, 0, []byte("more"), false)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("append after failure: status %d, want 422: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/upload/"+id+"/complete", nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("complete after failure: status %d, want 422: %s", resp.StatusCode, body)
	}
}

// TestLiveUnknownSession covers the 404s.
func TestLiveUnknownSession(t *testing.T) {
	_, ts := testServer(t, nil)
	for _, u := range []string{"/v1/live/deadbeef", "/v1/upload/deadbeef"} {
		var resp *http.Response
		var body []byte
		if u == "/v1/live/deadbeef" {
			resp, body = get(t, ts.URL+u)
		} else {
			resp, body = post(t, ts.URL+u, []byte("x"))
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404: %s", u, resp.StatusCode, body)
		}
	}
}
