// Doublebuffer reproduces the paper's DMA-stall use case: trace the
// blocked matrix multiply with single- and double-buffered operand
// streaming and let TA show where the time went. Single buffering spends
// a large fraction of each SPE's time in tag-group waits; double
// buffering overlaps the next tile's DMA with the current tile's compute
// and removes most of the stall.
package main

import (
	"fmt"
	"log"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/harness"
)

func main() {
	var wall [2]uint64
	for i, buffers := range []string{"1", "2"} {
		cfg := core.DefaultTraceConfig()
		// Trace only lifecycle+MFC: the question is about DMA, and a
		// narrow configuration keeps tracing perturbation minimal.
		cfg.Groups = event.GroupLifecycle | event.GroupMFC
		res, err := harness.Run(harness.Spec{
			Workload: "matmul",
			Params:   map[string]string{"n": "256", "t": "64", "buffers": buffers},
			Trace:    &cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		wall[i] = res.Cycles
		s := analyzer.Summarize(res.Trace)
		compute := s.TotalState(analyzer.StateCompute)
		dma := s.TotalState(analyzer.StateStallDMA)
		fmt.Printf("buffers=%s: wall %d cycles, compute %d ticks, dma-wait %d ticks (%.1f%% of SPE time)\n",
			buffers, res.Cycles, compute, dma, 100*float64(dma)/float64(compute+dma))
		fmt.Print(analyzer.Timeline(res.Trace, 90))
		fmt.Println()
	}
	fmt.Printf("double-buffering speedup: %.2fx\n", float64(wall[0])/float64(wall[1]))
}
