// Loadbalance reproduces the paper's load-imbalance use case: render a
// Julia set with static row partitioning (rows near the fractal interior
// are far more expensive, so some SPEs finish long before others) and
// with a dynamic work queue, and compare the per-SPE busy times TA
// reports. The trace makes the imbalance obvious before any code is read.
package main

import (
	"fmt"
	"log"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/harness"
)

func main() {
	var wall [2]uint64
	for i, mode := range []string{"static", "dynamic"} {
		cfg := core.DefaultTraceConfig()
		res, err := harness.Run(harness.Spec{
			Workload: "julia",
			Params:   map[string]string{"w": "512", "h": "256", "maxiter": "200", "mode": mode},
			Trace:    &cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		wall[i] = res.Cycles
		s := analyzer.Summarize(res.Trace)
		fmt.Printf("mode=%s: wall %d cycles, load imbalance %.3f\n", mode, res.Cycles, s.LoadImbalance)
		for _, r := range s.Runs {
			bar := int(60 * float64(r.Busy()) / float64(s.WallTicks))
			fmt.Printf("  SPE%d busy %8d ticks |%s\n", r.Core, r.Busy(), repeat('#', bar))
		}
		fmt.Println()
	}
	fmt.Printf("dynamic partitioning speedup: %.2fx\n", float64(wall[0])/float64(wall[1]))
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
