// Overhead demonstrates the paper's tracing-cost discussion end to end:
// the same workload runs untraced, traced with a narrow group selection,
// and traced fully; the example reports the measured slowdown of each
// configuration and then uses TA's compensation analysis to recover the
// untraced timing from the fully-traced run alone.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/harness"
)

func main() {
	params := map[string]string{"w": "256", "h": "128", "maxiter": "128", "mode": "dynamic"}

	base, err := harness.Run(harness.Spec{Workload: "julia", Params: params})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("untraced:            %8d cycles\n", base.Cycles)

	narrow := core.DefaultTraceConfig()
	narrow.Groups = event.GroupLifecycle | event.GroupMFC
	resNarrow, err := harness.Run(harness.Spec{Workload: "julia", Params: params, Trace: &narrow})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced (mfc only):   %8d cycles (%+.2f%%), %d records\n",
		resNarrow.Cycles, harness.Overhead(base.Cycles, resNarrow.Cycles),
		resNarrow.Stats.SPERecords+resNarrow.Stats.PPERecords)

	full := core.DefaultTraceConfig()
	resFull, err := harness.Run(harness.Spec{Workload: "julia", Params: params, Trace: &full})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced (all groups): %8d cycles (%+.2f%%), %d records\n\n",
		resFull.Cycles, harness.Overhead(base.Cycles, resFull.Cycles),
		resFull.Stats.SPERecords+resFull.Stats.PPERecords)

	tr, err := analyzer.Load(bytes.NewReader(resFull.TraceBytes))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TA overhead compensation (from the fully-traced run only):")
	analyzer.WriteCompensation(tr, os.Stdout)
}
