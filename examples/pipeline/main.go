// Pipeline reproduces the paper's communication-bottleneck use case: a
// stream pipeline across all eight SPEs where one stage is artificially
// slow. TA's per-stage wait breakdown localizes the bottleneck — stages
// upstream of the slow one block pushing into its inbox, stages
// downstream starve — and the SVG timeline makes it visual.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/harness"
)

func main() {
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "pipeline",
		Params: map[string]string{
			"blocks": "48", "blockbytes": "4096",
			"slowstage": "3", "slowfactor": "12",
		},
		Trace: &cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := analyzer.Summarize(res.Trace)
	fmt.Printf("pipeline of %d stages, wall %d cycles\n\n", len(s.Runs), res.Cycles)
	fmt.Printf("%-6s %12s %12s %12s %7s\n", "stage", "busy", "sync-wait", "mbox-wait", "util")
	for _, r := range s.Runs {
		fmt.Printf("SPE%-3d %12d %12d %12d %6.1f%%\n",
			r.Core, r.Busy(), r.StateTicks[analyzer.StateStallSync],
			r.StateTicks[analyzer.StateStallMbox], 100*r.Utilization())
	}
	fmt.Println()
	fmt.Print(analyzer.Timeline(res.Trace, 100))

	const svgPath = "pipeline-timeline.svg"
	if err := os.WriteFile(svgPath, []byte(analyzer.SVGTimeline(res.Trace, 1000)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSVG timeline written to %s\n", svgPath)
}
