// Quickstart: trace one workload on the simulated Cell BE with PDT and
// analyze the result with TA — the minimal end-to-end tour of the public
// API (machine, session, workload, analyzer).
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/workloads"
)

func main() {
	// 1. Build a machine: 8 SPEs, 256 KiB local stores, default timing.
	mc := cell.DefaultConfig()
	mc.MemSize = 64 * cell.MiB
	m := cell.NewMachine(mc)

	// 2. Attach a PDT session. DefaultTraceConfig traces all groups into
	// a 16 KiB double-buffered local-store buffer per SPE.
	cfg := core.DefaultTraceConfig()
	cfg.Workload = "quickstart-matmul"
	session := core.NewSession(m, cfg)
	session.Attach()

	// 3. Prepare a workload (it installs the PPE main program) and run.
	w, err := workloads.New("matmul")
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Configure(map[string]string{"n": "128", "t": "32"}); err != nil {
		log.Fatal(err)
	}
	if err := w.Prepare(m); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	if err := w.Verify(m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation finished at cycle %d; result verified\n\n", m.Now())

	// 4. Serialize the trace and analyze it.
	var buf bytes.Buffer
	if err := session.WriteTrace(&buf); err != nil {
		log.Fatal(err)
	}
	tr, err := analyzer.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	if errs := analyzer.Errors(analyzer.Validate(tr)); len(errs) > 0 {
		log.Fatalf("trace validation failed: %v", errs)
	}
	analyzer.Report(tr, analyzer.Summarize(tr), os.Stdout)
	fmt.Println()
	fmt.Print(analyzer.Timeline(tr, 90))
}
