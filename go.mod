module github.com/celltrace/pdt

go 1.22
