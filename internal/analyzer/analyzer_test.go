package analyzer

import (
	"bytes"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// buildTrace constructs a trace in memory directly through the writer (for
// precise control over contents).
func buildTrace(t *testing.T, meta traceio.Meta, chunks ...traceio.Chunk) *Trace {
	t.Helper()
	var buf bytes.Buffer
	w, err := traceio.NewWriter(&buf, traceio.Header{
		Version: traceio.Version, NumSPEs: 8, TimebaseDiv: 40, ClockHz: core.NominalClockHz,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(&meta); err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if err := w.WriteChunk(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func enc(t *testing.T, recs ...event.Record) []byte {
	t.Helper()
	var b []byte
	for i := range recs {
		var err error
		b, err = recs[i].AppendTo(b)
		if err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// simTrace runs main on a traced machine and loads the resulting trace.
func simTrace(t *testing.T, cfg core.Config, main func(h cell.Host)) *Trace {
	t.Helper()
	mc := cell.DefaultConfig()
	mc.MemSize = 32 * cell.MiB
	m := cell.NewMachine(mc)
	s := core.NewSession(m, cfg)
	s.Attach()
	m.RunMain(main)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestClockCorrelation(t *testing.T) {
	// Anchor at timebase 1000: an SPE record with elapsed 50 lands at
	// global 1050, interleaving correctly with PPE records.
	meta := traceio.Meta{Anchors: []traceio.Anchor{{SPE: 0, Timebase: 1000, Loaded: 0xFFFFFFFF, Program: "p"}}}
	spe := enc(t,
		event.Record{ID: event.SPEProgramStart, Core: 0, Flags: event.FlagDecrTime, Time: 0, Args: []uint64{1}},
		event.Record{ID: event.SPEProgramEnd, Core: 0, Flags: event.FlagDecrTime, Time: 50, Args: []uint64{0}},
	)
	ppe := enc(t,
		event.Record{ID: event.StringDef, Core: event.CorePPE, Flags: event.FlagHasStr, Time: 990, Args: []uint64{1}, Str: "p"},
		event.Record{ID: event.PPESPEStart, Core: event.CorePPE, Time: 995, Args: []uint64{0, 1}},
		event.Record{ID: event.PPEWaitExit, Core: event.CorePPE, Time: 1060, Args: []uint64{0, 0}},
	)
	tr := buildTrace(t, meta,
		traceio.Chunk{Core: event.CorePPE, AnchorIdx: traceio.NoAnchor, Data: ppe},
		traceio.Chunk{Core: 0, AnchorIdx: 0, Data: spe},
	)
	wantOrder := []event.ID{event.StringDef, event.PPESPEStart, event.SPEProgramStart, event.SPEProgramEnd, event.PPEWaitExit}
	if tr.NumEvents() != len(wantOrder) {
		t.Fatalf("events = %d", tr.NumEvents())
	}
	for i, id := range wantOrder {
		if tr.Event(i).ID != id {
			t.Fatalf("event %d = %v, want %v", i, tr.Event(i).ID, id)
		}
	}
	if tr.Event(2).Global != 1000 || tr.Event(3).Global != 1050 {
		t.Fatalf("correlated times: %d, %d", tr.Event(2).Global, tr.Event(3).Global)
	}
	if tr.StringRef(1) != "p" {
		t.Fatalf("StringRef = %q", tr.StringRef(1))
	}
	if tr.StringRef(99) == "" {
		t.Fatal("unknown ref should yield placeholder")
	}
}

func TestLoadRejectsBadAnchorIndex(t *testing.T) {
	spe := enc(t, event.Record{ID: event.SPEProgramStart, Core: 0, Flags: event.FlagDecrTime, Time: 0, Args: []uint64{1}})
	var buf bytes.Buffer
	w, _ := traceio.NewWriter(&buf, traceio.Header{Version: traceio.Version, NumSPEs: 8, TimebaseDiv: 40})
	w.WriteMeta(&traceio.Meta{}) // no anchors
	w.WriteChunk(traceio.Chunk{Core: 0, AnchorIdx: 0, Data: spe})
	w.Close()
	if _, err := Load(&buf); err == nil {
		t.Fatal("bad anchor index accepted")
	}
}

func TestValidateCleanTrace(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		hd := h.Run(0, "w", func(spu cell.SPU) uint32 {
			spu.Get(0, 0, 256, 1)
			spu.WaitTagAll(1 << 1)
			spu.WriteOutMbox(5)
			return 0
		})
		h.ReadOutMbox(0)
		h.Wait(hd)
	})
	issues := Validate(tr)
	if len(Errors(issues)) != 0 {
		t.Fatalf("clean trace has errors: %v", issues)
	}
}

func TestValidateDetectsUnmatchedEnter(t *testing.T) {
	meta := traceio.Meta{Anchors: []traceio.Anchor{{SPE: 0, Timebase: 0, Program: "p"}}}
	spe := enc(t,
		event.Record{ID: event.SPEProgramStart, Core: 0, Flags: event.FlagDecrTime, Time: 0, Args: []uint64{1}},
		event.Record{ID: event.SPEWaitTagEnter, Core: 0, Flags: event.FlagDecrTime, Time: 5, Args: []uint64{1}},
		event.Record{ID: event.SPEProgramEnd, Core: 0, Flags: event.FlagDecrTime, Time: 9, Args: []uint64{0}},
	)
	tr := buildTrace(t, meta, traceio.Chunk{Core: 0, AnchorIdx: 0, Data: spe})
	issues := Validate(tr)
	if len(Errors(issues)) == 0 {
		t.Fatalf("unmatched enter not detected: %v", issues)
	}
}

func TestValidateDetectsBackwardsTime(t *testing.T) {
	meta := traceio.Meta{Anchors: []traceio.Anchor{{SPE: 0, Timebase: 100, Program: "p"}}}
	// Two chunks for the same core with overlapping time ranges force a
	// backwards step within the core's stream.
	c1 := enc(t, event.Record{ID: event.SPEUserEvent, Core: 0, Flags: event.FlagDecrTime, Time: 50, Args: []uint64{1, 0, 0}})
	c2 := enc(t, event.Record{ID: event.SPEUserEvent, Core: 0, Flags: event.FlagDecrTime, Time: 50, Args: []uint64{2, 0, 0}})
	_ = c2
	tr := buildTrace(t, meta, traceio.Chunk{Core: 0, AnchorIdx: 0, Data: c1})
	// Inject a manual out-of-order event stream.
	tr.SetEvents([]Event{
		{Record: event.Record{ID: event.SPEUserEvent, Core: 0, Args: []uint64{1, 0, 0}}, Global: 150, Run: 0, Seq: 0},
		{Record: event.Record{ID: event.SPEUserEvent, Core: 0, Args: []uint64{2, 0, 0}}, Global: 100, Run: 0, Seq: 1},
	})
	issues := Validate(tr)
	found := false
	for _, i := range issues {
		if strings.Contains(i.Msg, "backwards") {
			found = true
		}
	}
	if !found {
		t.Fatalf("backwards time not detected: %v", issues)
	}
}

func TestValidateMailboxConservation(t *testing.T) {
	meta := traceio.Meta{Groups: "mailbox|host"}
	ppe := enc(t,
		event.Record{ID: event.PPEReadOutMboxEnter, Core: event.CorePPE, Time: 1, Args: []uint64{0}},
		event.Record{ID: event.PPEReadOutMboxExit, Core: event.CorePPE, Time: 2, Args: []uint64{0, 7}},
	)
	tr := buildTrace(t, meta, traceio.Chunk{Core: event.CorePPE, AnchorIdx: traceio.NoAnchor, Data: ppe})
	issues := Validate(tr)
	found := false
	for _, i := range issues {
		if strings.Contains(i.Msg, "conservation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("conservation violation not detected: %v", issues)
	}
}

func TestIntervalsBasic(t *testing.T) {
	// Program: start(0) compute(10) waitEnter(10) waitExit(30) compute end(40).
	meta := traceio.Meta{Anchors: []traceio.Anchor{{SPE: 2, Timebase: 0, Program: "p"}}}
	spe := enc(t,
		event.Record{ID: event.SPEProgramStart, Core: 2, Flags: event.FlagDecrTime, Time: 0, Args: []uint64{1}},
		event.Record{ID: event.SPEWaitTagEnter, Core: 2, Flags: event.FlagDecrTime, Time: 10, Args: []uint64{1}},
		event.Record{ID: event.SPEWaitTagExit, Core: 2, Flags: event.FlagDecrTime, Time: 30, Args: []uint64{1, 1}},
		event.Record{ID: event.SPEProgramEnd, Core: 2, Flags: event.FlagDecrTime, Time: 40, Args: []uint64{0}},
	)
	tr := buildTrace(t, meta, traceio.Chunk{Core: 2, AnchorIdx: 0, Data: spe})
	ivs := RunIntervals(tr, 0)
	want := []struct {
		st   State
		s, e uint64
	}{
		{StateCompute, 0, 10},
		{StateStallDMA, 10, 30},
		{StateCompute, 30, 40},
	}
	if len(ivs) != len(want) {
		t.Fatalf("intervals = %+v", ivs)
	}
	for i, w := range want {
		if ivs[i].State != w.st || ivs[i].Start != w.s || ivs[i].End != w.e {
			t.Fatalf("interval %d = %+v, want %+v", i, ivs[i], w)
		}
	}
}

func TestIntervalsCoverRunExactly(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < 4; i++ {
			hs = append(hs, h.Run(i, "w", func(spu cell.SPU) uint32 {
				for j := 0; j < 20; j++ {
					spu.Get(0, 0, 1024, 0)
					spu.WaitTagAll(1)
					spu.Compute(500)
				}
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	if errs := Errors(Validate(tr)); len(errs) != 0 {
		t.Fatalf("validation errors: %v", errs)
	}
	s := Summarize(tr)
	for _, rs := range s.Runs {
		var total uint64
		for _, st := range States() {
			total += rs.StateTicks[st]
		}
		if total != rs.Wall() {
			t.Fatalf("run %d: states sum %d != wall %d", rs.Run, total, rs.Wall())
		}
		if rs.StateTicks[StateStallDMA] == 0 {
			t.Fatalf("run %d has no DMA wait despite blocking waits", rs.Run)
		}
	}
}

func TestSummarizeDMAStats(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		src := h.Alloc(64*1024, 128)
		h.Wait(h.Run(0, "dma", func(spu cell.SPU) uint32 {
			for j := 0; j < 10; j++ {
				spu.Get(0, src, 4096, 0)
				spu.WaitTagAll(1)
			}
			spu.Put(0, src, 2048, 1)
			spu.WaitTagAll(1 << 1)
			return 0
		}))
	})
	s := Summarize(tr)
	if len(s.DMA) != 1 {
		t.Fatalf("DMA summaries = %d", len(s.DMA))
	}
	d := s.DMA[0]
	if d.Gets != 10 || d.Puts != 1 {
		t.Fatalf("gets/puts = %d/%d", d.Gets, d.Puts)
	}
	if d.BytesIn != 40960 || d.BytesOut != 2048 {
		t.Fatalf("bytes = %d/%d", d.BytesIn, d.BytesOut)
	}
	if d.Waits != 11 || d.WaitTicks.Count != 11 || d.WaitTicks.Mean() <= 0 {
		t.Fatalf("waits = %+v", d.WaitTicks)
	}
	if d.SizeBytes.Max != 4096 {
		t.Fatalf("size max = %d", d.SizeBytes.Max)
	}
}

func TestSummarizeLoadImbalance(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < 4; i++ {
			work := uint64(1000)
			if i == 0 {
				work = 100000 // heavy SPE
			}
			w := work
			hs = append(hs, h.Run(i, "skew", func(spu cell.SPU) uint32 {
				spu.Compute(w)
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	s := Summarize(tr)
	if s.LoadImbalance < 2 {
		t.Fatalf("imbalance = %.2f, want > 2 for skewed load", s.LoadImbalance)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1024, 1 << 39, 1 << 45} {
		h.Add(v)
	}
	if h.Count != 8 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Max != 1<<45 {
		t.Fatalf("max = %d", h.Max)
	}
	if h.Mean() <= 0 {
		t.Fatal("mean <= 0")
	}
	if h.Buckets[0] != 2 { // 0 and 1
		t.Fatalf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 2 { // 2 and 3
		t.Fatalf("bucket1 = %d", h.Buckets[1])
	}
	var empty Histogram
	if empty.Mean() != 0 {
		t.Fatal("empty mean != 0")
	}
}

func TestTimelineRendering(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < 2; i++ {
			hs = append(hs, h.Run(i, "tl", func(spu cell.SPU) uint32 {
				spu.Compute(10000)
				spu.Get(0, 0, 16*1024, 0)
				spu.WaitTagAll(1)
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	txt := Timeline(tr, 60)
	if !strings.Contains(txt, "SPE0") || !strings.Contains(txt, "SPE1") {
		t.Fatalf("timeline missing lanes:\n%s", txt)
	}
	if !strings.Contains(txt, "#") {
		t.Fatalf("timeline has no compute glyphs:\n%s", txt)
	}
	if !strings.Contains(txt, "legend") {
		t.Fatal("timeline missing legend")
	}
	svg := SVGTimeline(tr, 400)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("SVG not well-formed")
	}
	if !strings.Contains(svg, stateColors[StateCompute]) {
		t.Fatal("SVG missing compute rects")
	}
}

func TestTimelineEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if s := Timeline(tr, 40); !strings.Contains(s, "empty") {
		t.Fatalf("empty timeline = %q", s)
	}
	if pts := UtilizationSeries(tr, 10); pts != nil {
		t.Fatal("series on empty trace")
	}
}

func TestUtilizationSeries(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(0, "us", func(spu cell.SPU) uint32 {
			spu.Compute(50000) // long pure-compute phase
			for i := 0; i < 50; i++ {
				spu.Get(0, 0, 16*1024, 0)
				spu.WaitTagAll(1) // long DMA-bound phase
			}
			return 0
		}))
	})
	pts := UtilizationSeries(tr, 20)
	if len(pts) != 20 {
		t.Fatalf("points = %d", len(pts))
	}
	// Early buckets mostly compute; later buckets mostly waiting.
	if pts[1].Busy < 0.5 {
		t.Fatalf("early busy = %.2f, want high", pts[1].Busy)
	}
	if pts[18].Busy > 0.6 {
		t.Fatalf("late busy = %.2f, want low (DMA-bound)", pts[18].Busy)
	}
}

func TestCSVExport(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(0, "csv", func(spu cell.SPU) uint32 {
			spu.Get(0, 0, 128, 3)
			spu.WaitTagAll(1 << 3)
			return 0
		}))
	})
	var buf bytes.Buffer
	if err := WriteCSV(tr, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != tr.NumEvents()+1 {
		t.Fatalf("csv lines = %d, events = %d", len(lines), tr.NumEvents())
	}
	if !strings.Contains(out, "SPE_MFC_GET") || !strings.Contains(out, "tag=3") {
		t.Fatalf("csv content:\n%s", out)
	}
}

func TestJSONExportAndReport(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(0, "js", func(spu cell.SPU) uint32 {
			spu.Compute(100)
			return 0
		}))
	})
	Validate(tr)
	s := Summarize(tr)
	var buf bytes.Buffer
	if err := WriteJSON(tr, s, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"workload"`, `"runs"`, `"utilization"`, `"eventCounts"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("json missing %s:\n%s", want, buf.String())
		}
	}
	var rep bytes.Buffer
	Report(tr, s, &rep)
	for _, want := range []string{"workload:", "run", "top events"} {
		if !strings.Contains(rep.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, rep.String())
		}
	}
}

func TestStateString(t *testing.T) {
	if StateCompute.String() != "compute" || StateStallDMA.String() != "dma-wait" {
		t.Fatal("state names wrong")
	}
	if !strings.Contains(State(99).String(), "99") {
		t.Fatal("unknown state string")
	}
}

func TestFlushIntervalsAppearUnderTinyBuffer(t *testing.T) {
	cfg := core.DefaultTraceConfig()
	cfg.SPEBufferSize = 512
	cfg.DoubleBuffered = false
	tr := simTrace(t, cfg, func(h cell.Host) {
		h.Wait(h.Run(0, "fl", func(spu cell.SPU) uint32 {
			for i := 0; i < 100; i++ {
				spu.Get(0, 0, 64, 0)
				spu.WaitTagAll(1)
			}
			return 0
		}))
	})
	s := Summarize(tr)
	if s.FlushTicks == 0 {
		t.Fatal("no flush time despite tiny trace buffer")
	}
	if s.Runs[0].StateTicks[StateFlush] == 0 {
		t.Fatal("run summary missing flush state")
	}
}
