// Package cache provides a content-addressed, size-bounded LRU cache of
// loaded traces and their memoized analysis artifacts, with
// singleflight-style deduplication of concurrent loads. pdt-tad's
// endpoints sit on top of it so a repeated upload of the same trace bytes
// skips parsing, decoding, merging and analysis entirely.
//
// Keying is by SHA-256 of the raw trace image, so identical uploads share
// one entry regardless of client or endpoint, and a single flipped byte
// addresses a different entry. Entries are evicted least-recently-used
// once the cache exceeds its entry or byte bound; an entry with a load
// still in flight is pinned and skipped by the evictor, so the bound
// applies to retained entries (concurrent distinct loads can transiently
// exceed it — the requests must be served either way). Load failures are
// never cached: the flight is removed on settle, so the next request for
// those bytes retries.
//
// The cached *Trace is shared by every request that hits its entry. It is
// validated exactly once, when the load settles (analyzer.Validate
// appends to the trace and must not run concurrently), and is read-only
// from then on; the memoized artifacts are computed at most once under
// the entry's lock. Callers must not mutate anything a Handle returns.
package cache

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"sync"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cycles"
)

// Key is the content address of a trace image: SHA-256 over its bytes.
type Key [sha256.Size]byte

// KeyOf hashes a trace image.
func KeyOf(data []byte) Key { return sha256.Sum256(data) }

// String renders the key as lowercase hex (the disk tier's and the job
// journal's on-disk spelling).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex spelling back into a Key.
func ParseKey(s string) (Key, bool) {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(Key{}) {
		return Key{}, false
	}
	return Key(raw), true
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts requests served from a settled entry; Misses counts
	// requests that had to run the load themselves; Dedups counts
	// requests that piggybacked on another request's in-flight load.
	Hits, Misses, Dedups uint64
	// Evictions counts entries removed by the LRU bound.
	Evictions uint64
	// Entries and Bytes describe current retention; MaxEntries/MaxBytes
	// are the configured bounds (0 = unbounded).
	Entries    int
	Bytes      int64
	MaxEntries int
	MaxBytes   int64
}

// Cache is the content-addressed trace cache. The zero value is not
// usable; call New.
type Cache struct {
	maxEntries int
	maxBytes   int64
	// disk is the optional second tier; see AttachDisk. Artifacts and
	// raw images are written through to it so a warm cache survives a
	// process restart, and restores are CRC-verified so a corrupt
	// object recomputes instead of serving wrong bytes.
	disk *DiskTier

	mu        sync.Mutex
	ll        *list.List // *entry, most recently used at the front
	entries   map[Key]*entry
	bytes     int64
	hits      uint64
	misses    uint64
	dedups    uint64
	evictions uint64
}

// New builds a cache bounded to maxEntries entries and maxBytes estimated
// trace bytes (each 0 = unbounded on that axis).
func New(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		entries:    map[Key]*entry{},
	}
}

// entry is one content address worth of cached state. The trace and
// doctor flights are independent: corrupt bytes fail the strict load but
// still produce a doctor report, and both can be cached side by side.
type entry struct {
	key    Key
	elem   *list.Element
	weight int64
	trace  *flight
	doctor *flight
	// adopted holds artifact bytes installed from a peer replica for a
	// key no local flight has loaded (the replica has the artifact but
	// never saw the trace bytes). A later local load supersedes it via
	// the flight memo; LRU eviction applies to it like any other weight.
	adopted map[string][]byte
}

// inFlight reports whether any of the entry's loads is still running;
// such entries are pinned against eviction.
func (e *entry) inFlight() bool {
	return (e.trace != nil && !e.trace.settled) || (e.doctor != nil && !e.doctor.settled)
}

// flight is one load (trace or doctor) plus its memoized artifacts.
// done/err/trace/doctor follow the singleflight protocol: the leader
// fills them, settles, then closes done; waiters read only after done.
type flight struct {
	done    chan struct{}
	settled bool // guarded by Cache.mu
	weight  int64
	err     error
	trace   *analyzer.Trace
	doctor  *analyzer.DoctorReport

	memoMu   sync.Mutex
	summary  *analyzer.Summary
	profile  []analyzer.PairProfile
	gapsDone bool
	gapMin   uint64
	gaps     []analyzer.Gap
	critpath *analyzer.CriticalPath
	cycles   *cycles.Report
	// arts memoizes the rendered JSON artifact bytes per kind — what
	// the service actually serves, and what spills to the disk tier.
	arts map[string][]byte
}

// Handle is the per-request view of a cached trace: the shared loaded
// Trace plus lazily memoized analysis artifacts. Everything it returns is
// shared across requests and must be treated as immutable.
type Handle struct{ f *flight }

// Trace returns the loaded, validated trace.
func (h *Handle) Trace() *analyzer.Trace { return h.f.trace }

// Summary returns the memoized full-trace summary.
func (h *Handle) Summary() *analyzer.Summary {
	h.f.memoMu.Lock()
	defer h.f.memoMu.Unlock()
	if h.f.summary == nil {
		h.f.summary = analyzer.Summarize(h.f.trace)
	}
	return h.f.summary
}

// Profile returns the memoized per-pair interval profile.
func (h *Handle) Profile() []analyzer.PairProfile {
	h.f.memoMu.Lock()
	defer h.f.memoMu.Unlock()
	if h.f.profile == nil {
		h.f.profile = analyzer.Profile(h.f.trace)
	}
	return h.f.profile
}

// Gaps returns the memoized gap report at the auto-suggested threshold.
func (h *Handle) Gaps() (minTicks uint64, gaps []analyzer.Gap) {
	h.f.memoMu.Lock()
	defer h.f.memoMu.Unlock()
	if !h.f.gapsDone {
		h.f.gapMin = analyzer.SuggestGapThreshold(h.f.trace)
		h.f.gaps = analyzer.FindGaps(h.f.trace, h.f.gapMin)
		h.f.gapsDone = true
	}
	return h.f.gapMin, h.f.gaps
}

// CriticalPath returns the memoized critical-path analysis.
func (h *Handle) CriticalPath() *analyzer.CriticalPath {
	h.f.memoMu.Lock()
	defer h.f.memoMu.Unlock()
	if h.f.critpath == nil {
		h.f.critpath = analyzer.ComputeCriticalPath(h.f.trace)
	}
	return h.f.critpath
}

// Cycles returns the memoized cycle/phase detection report.
func (h *Handle) Cycles() *cycles.Report {
	h.f.memoMu.Lock()
	defer h.f.memoMu.Unlock()
	if h.f.cycles == nil {
		h.f.cycles = cycles.Detect(h.f.trace, cycles.Options{})
	}
	return h.f.cycles
}

// Load returns a handle for the trace image, loading it at most once per
// content address no matter how many requests race: the first request
// becomes the leader and runs the load under its own ctx; concurrent
// requests for the same bytes wait on the same flight. If the leader's
// request is cancelled mid-load, a live waiter retries the load itself
// rather than failing on the leader's context error.
func (c *Cache) Load(ctx context.Context, data []byte, lim analyzer.Limits) (*Handle, error) {
	key := KeyOf(data)
	for {
		f, lead := c.acquire(key, false)
		if lead {
			tr, err := analyzer.LoadContext(ctx, bytes.NewReader(data), lim)
			if err == nil {
				// Validate once while the flight is still exclusive; the
				// shared trace is immutable from here on.
				analyzer.Validate(tr)
				f.trace = tr
				f.weight = tr.Footprint()
			}
			f.err = err
			c.settle(key, f, false)
			if err != nil {
				return nil, err
			}
			// Spill the raw image to the disk tier after settling, so
			// dedup waiters are not held behind an fsync. Failure only
			// latches the tier degraded; the request is served either way.
			if c.disk != nil {
				_ = c.disk.Put(key, KindTrace, data)
			}
			return &Handle{f}, nil
		}
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if f.err != nil {
			if isCtxErr(f.err) && ctx.Err() == nil {
				continue // the leader's request died, not ours: retry
			}
			return nil, f.err
		}
		return &Handle{f}, nil
	}
}

// Doctor returns the salvage/recovery report for the trace image, cached
// and deduplicated exactly like Load. Recoverable damage is a valid
// (cached) result; only hard failures — cancellation, admission limits —
// are errors, and those are never cached.
func (c *Cache) Doctor(ctx context.Context, data []byte, lim analyzer.Limits) (*analyzer.DoctorReport, error) {
	key := KeyOf(data)
	for {
		f, lead := c.acquire(key, true)
		if lead {
			d, err := analyzer.DoctorDataContext(ctx, data, lim)
			if err == nil {
				f.doctor = d
				f.weight = 4096
				if d.Trace != nil {
					f.weight += d.Trace.Footprint()
				}
			}
			f.err = err
			c.settle(key, f, true)
			if err != nil {
				return nil, err
			}
			return d, nil
		}
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if f.err != nil {
			if isCtxErr(f.err) && ctx.Err() == nil {
				continue
			}
			return nil, f.err
		}
		return f.doctor, nil
	}
}

// AttachDisk wires a disk-backed second tier under the same content
// addresses: rendered artifacts and raw trace images write through to
// it, Artifact consults it between the memory tier and a recompute, and
// a warm cache therefore survives a process restart. Call before the
// cache starts serving.
func (c *Cache) AttachDisk(d *DiskTier) { c.disk = d }

// Disk returns the attached disk tier, or nil.
func (c *Cache) Disk() *DiskTier { return c.disk }

// RawImage restores a trace image from the disk tier by content key —
// how a replayed job recovers the bytes of an upload whose HTTP request
// died with the previous process.
func (c *Cache) RawImage(key Key) ([]byte, bool) {
	if c.disk == nil {
		return nil, false
	}
	return c.disk.Get(key, KindTrace)
}

// AnalysisKinds lists the artifact kinds Artifact can produce.
var AnalysisKinds = []string{KindSummary, KindProfile, KindGaps, KindCritPath, KindCycles, KindDoctor}

// ValidKind reports whether kind names a servable artifact.
func ValidKind(kind string) bool {
	for _, k := range AnalysisKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// Render computes the canonical JSON artifact of one kind from a
// handle, using the handle's memoized analysis (each underlying kernel
// still runs at most once per entry). The bytes are deterministic for a
// given trace image, which is what makes the disk tier's
// content-addressed artifacts and the chaos harness's byte-convergence
// check possible.
func Render(kind string, h *Handle) ([]byte, error) {
	var buf bytes.Buffer
	var err error
	switch kind {
	case KindSummary:
		err = analyzer.WriteJSON(h.Trace(), h.Summary(), &buf)
	case KindProfile:
		err = analyzer.WriteProfilePairsJSON(h.Trace(), h.Profile(), &buf)
	case KindGaps:
		min, gaps := h.Gaps()
		err = analyzer.WriteGapsJSON(min, gaps, &buf)
	case KindCritPath:
		err = analyzer.WriteCriticalPathJSON(h.CriticalPath(), &buf)
	case KindCycles:
		err = h.Cycles().WriteJSON(&buf)
	default:
		return nil, fmt.Errorf("cache: unknown artifact kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Artifact returns the rendered JSON artifact of the given kind for the
// trace image, from the fastest tier that has it:
//
//  1. the memory tier's memoized artifact bytes (a settled entry),
//  2. the disk tier, CRC-verified (a corrupt object is deleted and the
//     lookup falls through to recompute),
//  3. computed — loading the trace through the normal singleflight path
//     if needed — then memoized and spilled to the disk tier.
//
// After a restart, path 2 is what makes the warm cache real: the upload
// is hashed and served without parsing, decoding, or analyzing.
func (c *Cache) Artifact(ctx context.Context, data []byte, kind string, lim analyzer.Limits) ([]byte, error) {
	key := KeyOf(data)
	if b, ok := c.peekArtifact(key, kind); ok {
		return b, nil
	}
	if c.disk != nil {
		if b, ok := c.disk.Get(key, kind); ok {
			return b, nil
		}
	}
	if kind == KindDoctor {
		d, err := c.Doctor(ctx, data, lim)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return c.adoptArtifact(key, kind, buf.Bytes()), nil
	}
	h, err := c.Load(ctx, data, lim)
	if err != nil {
		return nil, err
	}
	b, err := Render(kind, h)
	if err != nil {
		return nil, err
	}
	b = storeArtifact(h.f, kind, b)
	if c.disk != nil {
		_ = c.disk.Put(key, kind, b)
	}
	return b, nil
}

// Peek returns the rendered artifact for a key from the fastest tier
// that already holds it — the memory memo, then the disk tier — and
// never computes. It is the cluster peer-peek read path: a replica asks
// the key's owner "do you have this?", and a cold owner must answer
// cheaply instead of analyzing a trace it does not even have the bytes
// for.
func (c *Cache) Peek(key Key, kind string) ([]byte, bool) {
	if b, ok := c.peekArtifact(key, kind); ok {
		return b, true
	}
	if c.disk != nil {
		if b, ok := c.disk.Get(key, kind); ok {
			return b, true
		}
	}
	return nil, false
}

// AdoptArtifact installs externally produced artifact bytes (fetched
// from the key's owner replica) into the local tiers: memoized onto the
// entry if one is settled, and written through to the disk tier. The
// bytes must be the canonical rendering for the key — in cluster mode
// both sides derive them deterministically from the same trace image.
func (c *Cache) AdoptArtifact(key Key, kind string, b []byte) []byte {
	return c.adoptArtifact(key, kind, b)
}

// peekArtifact serves the memory tier's memoized artifact bytes without
// triggering a load. A hit counts as a cache hit and refreshes LRU.
func (c *Cache) peekArtifact(key Key, kind string) ([]byte, bool) {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		c.mu.Unlock()
		return nil, false
	}
	var f *flight
	if kind == KindDoctor {
		f = e.doctor
	} else {
		f = e.trace
	}
	adopted := e.adopted[kind]
	if f == nil || !f.settled || f.err != nil {
		if adopted == nil {
			c.mu.Unlock()
			return nil, false
		}
		c.ll.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		return adopted, true
	}
	c.ll.MoveToFront(e.elem)
	c.mu.Unlock()
	f.memoMu.Lock()
	b := f.arts[kind]
	f.memoMu.Unlock()
	if b == nil {
		// A local flight that never rendered this kind does not hide
		// bytes adopted from a peer earlier.
		if adopted == nil {
			return nil, false
		}
		b = adopted
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	return b, true
}

// storeArtifact memoizes rendered bytes on a flight; the first writer
// wins so concurrent renders converge on one shared slice.
func storeArtifact(f *flight, kind string, b []byte) []byte {
	f.memoMu.Lock()
	defer f.memoMu.Unlock()
	if prev := f.arts[kind]; prev != nil {
		return prev
	}
	if f.arts == nil {
		f.arts = map[string][]byte{}
	}
	f.arts[kind] = b
	return b
}

// adoptArtifact memoizes rendered bytes onto whatever flight currently
// holds the key or, when no settled flight exists, retains them on the
// entry directly (bounded by the normal LRU accounting) — a memory-only
// replica must not re-fetch what it just got — and spills them to the
// disk tier.
func (c *Cache) adoptArtifact(key Key, kind string, b []byte) []byte {
	c.mu.Lock()
	e := c.entries[key]
	var f *flight
	if e != nil {
		if kind == KindDoctor {
			f = e.doctor
		} else {
			f = e.trace
		}
	}
	if f != nil && f.settled && f.err == nil {
		c.mu.Unlock()
		b = storeArtifact(f, kind, b)
	} else {
		if e == nil {
			e = &entry{key: key}
			e.elem = c.ll.PushFront(e)
			c.entries[key] = e
		}
		if prev := e.adopted[kind]; prev != nil {
			b = prev
		} else {
			if e.adopted == nil {
				e.adopted = map[string][]byte{}
			}
			e.adopted[kind] = b
			e.weight += int64(len(b))
			c.bytes += int64(len(b))
		}
		c.ll.MoveToFront(e.elem)
		c.evict(e)
		c.mu.Unlock()
	}
	if c.disk != nil {
		_ = c.disk.Put(key, kind, b)
	}
	return b
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Dedups: c.dedups,
		Evictions: c.evictions,
		Entries:   len(c.entries), Bytes: c.bytes,
		MaxEntries: c.maxEntries, MaxBytes: c.maxBytes,
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// acquire looks up (or creates) the flight for key. lead reports whether
// the caller must run the load and settle it. Settled failed flights are
// removed in settle, so an existing flight seen here is either in flight
// or a settled success.
func (c *Cache) acquire(key Key, doctor bool) (f *flight, lead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		e = &entry{key: key}
		e.elem = c.ll.PushFront(e)
		c.entries[key] = e
	} else {
		c.ll.MoveToFront(e.elem)
	}
	f = e.trace
	if doctor {
		f = e.doctor
	}
	if f == nil {
		f = &flight{done: make(chan struct{})}
		if doctor {
			e.doctor = f
		} else {
			e.trace = f
		}
		c.misses++
		return f, true
	}
	if f.settled {
		c.hits++
	} else {
		c.dedups++
	}
	return f, false
}

// settle publishes the flight result: accounts its weight (or removes the
// failed flight so the next request retries), runs eviction, and releases
// the waiters.
func (c *Cache) settle(key Key, f *flight, doctor bool) {
	c.mu.Lock()
	f.settled = true
	e := c.entries[key]
	if f.err != nil {
		if e != nil {
			if doctor && e.doctor == f {
				e.doctor = nil
			} else if !doctor && e.trace == f {
				e.trace = nil
			}
			if e.trace == nil && e.doctor == nil && len(e.adopted) == 0 {
				c.ll.Remove(e.elem)
				delete(c.entries, key)
			}
		}
	} else if e != nil {
		e.weight += f.weight
		c.bytes += f.weight
		c.ll.MoveToFront(e.elem)
		c.evict(e)
	}
	c.mu.Unlock()
	close(f.done)
}

// over reports whether either bound is exceeded. Called with mu held.
func (c *Cache) over() bool {
	return (c.maxEntries > 0 && len(c.entries) > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes)
}

// evict removes least-recently-used entries until the cache fits its
// bounds, skipping in-flight entries and the entry just touched (the
// request being served needs it regardless of budget). Called with mu
// held.
func (c *Cache) evict(keep *entry) {
	for c.over() {
		var victim *entry
		for el := c.ll.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if e == keep || e.inFlight() {
				continue
			}
			victim = e
			break
		}
		if victim == nil {
			return
		}
		c.ll.Remove(victim.elem)
		delete(c.entries, victim.key)
		c.bytes -= victim.weight
		c.evictions++
	}
}
