// Package cache provides a content-addressed, size-bounded LRU cache of
// loaded traces and their memoized analysis artifacts, with
// singleflight-style deduplication of concurrent loads. pdt-tad's
// endpoints sit on top of it so a repeated upload of the same trace bytes
// skips parsing, decoding, merging and analysis entirely.
//
// Keying is by SHA-256 of the raw trace image, so identical uploads share
// one entry regardless of client or endpoint, and a single flipped byte
// addresses a different entry. Entries are evicted least-recently-used
// once the cache exceeds its entry or byte bound; an entry with a load
// still in flight is pinned and skipped by the evictor, so the bound
// applies to retained entries (concurrent distinct loads can transiently
// exceed it — the requests must be served either way). Load failures are
// never cached: the flight is removed on settle, so the next request for
// those bytes retries.
//
// The cached *Trace is shared by every request that hits its entry. It is
// validated exactly once, when the load settles (analyzer.Validate
// appends to the trace and must not run concurrently), and is read-only
// from then on; the memoized artifacts are computed at most once under
// the entry's lock. Callers must not mutate anything a Handle returns.
package cache

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"errors"

	"sync"

	"github.com/celltrace/pdt/internal/analyzer"
)

// Key is the content address of a trace image: SHA-256 over its bytes.
type Key [sha256.Size]byte

// KeyOf hashes a trace image.
func KeyOf(data []byte) Key { return sha256.Sum256(data) }

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts requests served from a settled entry; Misses counts
	// requests that had to run the load themselves; Dedups counts
	// requests that piggybacked on another request's in-flight load.
	Hits, Misses, Dedups uint64
	// Evictions counts entries removed by the LRU bound.
	Evictions uint64
	// Entries and Bytes describe current retention; MaxEntries/MaxBytes
	// are the configured bounds (0 = unbounded).
	Entries    int
	Bytes      int64
	MaxEntries int
	MaxBytes   int64
}

// Cache is the content-addressed trace cache. The zero value is not
// usable; call New.
type Cache struct {
	maxEntries int
	maxBytes   int64

	mu        sync.Mutex
	ll        *list.List // *entry, most recently used at the front
	entries   map[Key]*entry
	bytes     int64
	hits      uint64
	misses    uint64
	dedups    uint64
	evictions uint64
}

// New builds a cache bounded to maxEntries entries and maxBytes estimated
// trace bytes (each 0 = unbounded on that axis).
func New(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		entries:    map[Key]*entry{},
	}
}

// entry is one content address worth of cached state. The trace and
// doctor flights are independent: corrupt bytes fail the strict load but
// still produce a doctor report, and both can be cached side by side.
type entry struct {
	key    Key
	elem   *list.Element
	weight int64
	trace  *flight
	doctor *flight
}

// inFlight reports whether any of the entry's loads is still running;
// such entries are pinned against eviction.
func (e *entry) inFlight() bool {
	return (e.trace != nil && !e.trace.settled) || (e.doctor != nil && !e.doctor.settled)
}

// flight is one load (trace or doctor) plus its memoized artifacts.
// done/err/trace/doctor follow the singleflight protocol: the leader
// fills them, settles, then closes done; waiters read only after done.
type flight struct {
	done    chan struct{}
	settled bool // guarded by Cache.mu
	weight  int64
	err     error
	trace   *analyzer.Trace
	doctor  *analyzer.DoctorReport

	memoMu   sync.Mutex
	summary  *analyzer.Summary
	profile  []analyzer.PairProfile
	gapsDone bool
	gapMin   uint64
	gaps     []analyzer.Gap
	critpath *analyzer.CriticalPath
}

// Handle is the per-request view of a cached trace: the shared loaded
// Trace plus lazily memoized analysis artifacts. Everything it returns is
// shared across requests and must be treated as immutable.
type Handle struct{ f *flight }

// Trace returns the loaded, validated trace.
func (h *Handle) Trace() *analyzer.Trace { return h.f.trace }

// Summary returns the memoized full-trace summary.
func (h *Handle) Summary() *analyzer.Summary {
	h.f.memoMu.Lock()
	defer h.f.memoMu.Unlock()
	if h.f.summary == nil {
		h.f.summary = analyzer.Summarize(h.f.trace)
	}
	return h.f.summary
}

// Profile returns the memoized per-pair interval profile.
func (h *Handle) Profile() []analyzer.PairProfile {
	h.f.memoMu.Lock()
	defer h.f.memoMu.Unlock()
	if h.f.profile == nil {
		h.f.profile = analyzer.Profile(h.f.trace)
	}
	return h.f.profile
}

// Gaps returns the memoized gap report at the auto-suggested threshold.
func (h *Handle) Gaps() (minTicks uint64, gaps []analyzer.Gap) {
	h.f.memoMu.Lock()
	defer h.f.memoMu.Unlock()
	if !h.f.gapsDone {
		h.f.gapMin = analyzer.SuggestGapThreshold(h.f.trace)
		h.f.gaps = analyzer.FindGaps(h.f.trace, h.f.gapMin)
		h.f.gapsDone = true
	}
	return h.f.gapMin, h.f.gaps
}

// CriticalPath returns the memoized critical-path analysis.
func (h *Handle) CriticalPath() *analyzer.CriticalPath {
	h.f.memoMu.Lock()
	defer h.f.memoMu.Unlock()
	if h.f.critpath == nil {
		h.f.critpath = analyzer.ComputeCriticalPath(h.f.trace)
	}
	return h.f.critpath
}

// Load returns a handle for the trace image, loading it at most once per
// content address no matter how many requests race: the first request
// becomes the leader and runs the load under its own ctx; concurrent
// requests for the same bytes wait on the same flight. If the leader's
// request is cancelled mid-load, a live waiter retries the load itself
// rather than failing on the leader's context error.
func (c *Cache) Load(ctx context.Context, data []byte, lim analyzer.Limits) (*Handle, error) {
	key := KeyOf(data)
	for {
		f, lead := c.acquire(key, false)
		if lead {
			tr, err := analyzer.LoadContext(ctx, bytes.NewReader(data), lim)
			if err == nil {
				// Validate once while the flight is still exclusive; the
				// shared trace is immutable from here on.
				analyzer.Validate(tr)
				f.trace = tr
				f.weight = tr.Footprint()
			}
			f.err = err
			c.settle(key, f, false)
			if err != nil {
				return nil, err
			}
			return &Handle{f}, nil
		}
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if f.err != nil {
			if isCtxErr(f.err) && ctx.Err() == nil {
				continue // the leader's request died, not ours: retry
			}
			return nil, f.err
		}
		return &Handle{f}, nil
	}
}

// Doctor returns the salvage/recovery report for the trace image, cached
// and deduplicated exactly like Load. Recoverable damage is a valid
// (cached) result; only hard failures — cancellation, admission limits —
// are errors, and those are never cached.
func (c *Cache) Doctor(ctx context.Context, data []byte, lim analyzer.Limits) (*analyzer.DoctorReport, error) {
	key := KeyOf(data)
	for {
		f, lead := c.acquire(key, true)
		if lead {
			d, err := analyzer.DoctorDataContext(ctx, data, lim)
			if err == nil {
				f.doctor = d
				f.weight = 4096
				if d.Trace != nil {
					f.weight += d.Trace.Footprint()
				}
			}
			f.err = err
			c.settle(key, f, true)
			if err != nil {
				return nil, err
			}
			return d, nil
		}
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if f.err != nil {
			if isCtxErr(f.err) && ctx.Err() == nil {
				continue
			}
			return nil, f.err
		}
		return f.doctor, nil
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Dedups: c.dedups,
		Evictions: c.evictions,
		Entries:   len(c.entries), Bytes: c.bytes,
		MaxEntries: c.maxEntries, MaxBytes: c.maxBytes,
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// acquire looks up (or creates) the flight for key. lead reports whether
// the caller must run the load and settle it. Settled failed flights are
// removed in settle, so an existing flight seen here is either in flight
// or a settled success.
func (c *Cache) acquire(key Key, doctor bool) (f *flight, lead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		e = &entry{key: key}
		e.elem = c.ll.PushFront(e)
		c.entries[key] = e
	} else {
		c.ll.MoveToFront(e.elem)
	}
	f = e.trace
	if doctor {
		f = e.doctor
	}
	if f == nil {
		f = &flight{done: make(chan struct{})}
		if doctor {
			e.doctor = f
		} else {
			e.trace = f
		}
		c.misses++
		return f, true
	}
	if f.settled {
		c.hits++
	} else {
		c.dedups++
	}
	return f, false
}

// settle publishes the flight result: accounts its weight (or removes the
// failed flight so the next request retries), runs eviction, and releases
// the waiters.
func (c *Cache) settle(key Key, f *flight, doctor bool) {
	c.mu.Lock()
	f.settled = true
	e := c.entries[key]
	if f.err != nil {
		if e != nil {
			if doctor && e.doctor == f {
				e.doctor = nil
			} else if !doctor && e.trace == f {
				e.trace = nil
			}
			if e.trace == nil && e.doctor == nil {
				c.ll.Remove(e.elem)
				delete(c.entries, key)
			}
		}
	} else if e != nil {
		e.weight += f.weight
		c.bytes += f.weight
		c.ll.MoveToFront(e.elem)
		c.evict(e)
	}
	c.mu.Unlock()
	close(f.done)
}

// over reports whether either bound is exceeded. Called with mu held.
func (c *Cache) over() bool {
	return (c.maxEntries > 0 && len(c.entries) > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes)
}

// evict removes least-recently-used entries until the cache fits its
// bounds, skipping in-flight entries and the entry just touched (the
// request being served needs it regardless of budget). Called with mu
// held.
func (c *Cache) evict(keep *entry) {
	for c.over() {
		var victim *entry
		for el := c.ll.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if e == keep || e.inFlight() {
				continue
			}
			victim = e
			break
		}
		if victim == nil {
			return
		}
		c.ll.Remove(victim.elem)
		delete(c.entries, victim.key)
		c.bytes -= victim.weight
		c.evictions++
	}
}
