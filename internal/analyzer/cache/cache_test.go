package cache_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cache"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/harness"
)

// traceImage builds a distinct serialized trace per events count.
func traceImage(t *testing.T, events int) []byte {
	t.Helper()
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "synthetic",
		Params:   map[string]string{"events": fmt.Sprint(events), "gap": "100"},
		Trace:    &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.TraceBytes
}

func TestLoadHitReturnsSameTrace(t *testing.T) {
	c := cache.New(0, 0)
	data := traceImage(t, 300)
	ctx := context.Background()

	h1, err := c.Load(ctx, data, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Load(ctx, data, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if h1.Trace() != h2.Trace() {
		t.Fatal("second load did not reuse the cached *Trace")
	}
	if h1.Summary() != h2.Summary() {
		t.Fatal("summary memo not shared")
	}
	if h1.CriticalPath() != h2.CriticalPath() {
		t.Fatal("critical-path memo not shared")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v, want 1 entry with positive weight", st)
	}
}

// TestSingleflightDedup races many loads of the same bytes: exactly one
// must run the load, all must observe the same trace.
func TestSingleflightDedup(t *testing.T) {
	c := cache.New(0, 0)
	data := traceImage(t, 500)
	ctx := context.Background()

	const n = 16
	traces := make([]*analyzer.Trace, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := c.Load(ctx, data, analyzer.Limits{})
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = h.Trace()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if traces[i] != traces[0] {
			t.Fatalf("goroutine %d got a different *Trace", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (singleflight)", st.Misses)
	}
	if st.Hits+st.Dedups != n-1 {
		t.Fatalf("hits %d + dedups %d, want %d", st.Hits, st.Dedups, n-1)
	}
}

func TestEntryBoundEvictsLRU(t *testing.T) {
	c := cache.New(2, 0)
	ctx := context.Background()
	a := traceImage(t, 200)
	b := traceImage(t, 400)
	d := traceImage(t, 600)

	for _, img := range [][]byte{a, b, d} {
		if _, err := c.Load(ctx, img, analyzer.Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// a was least recently used: reloading it must miss again.
	if _, err := c.Load(ctx, a, analyzer.Limits{}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != 4 {
		t.Fatalf("misses = %d, want 4 (a evicted and reloaded)", got)
	}
}

func TestByteBoundEvicts(t *testing.T) {
	ctx := context.Background()
	a := traceImage(t, 400)
	// Budget that holds one loaded trace but not two.
	h, err := cache.New(0, 0).Load(ctx, a, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	budget := h.Trace().Footprint() + h.Trace().Footprint()/2

	c := cache.New(0, budget)
	if _, err := c.Load(ctx, a, analyzer.Limits{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(ctx, traceImage(t, 500), analyzer.Limits{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats %+v: expected the byte bound to evict", st)
	}
	if st.Bytes > budget {
		t.Fatalf("retained %d bytes over budget %d", st.Bytes, budget)
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	c := cache.New(0, 0)
	ctx := context.Background()
	junk := []byte("not a trace at all")

	for i := 0; i < 2; i++ {
		if _, err := c.Load(ctx, junk, analyzer.Limits{}); err == nil {
			t.Fatal("junk loaded without error")
		}
	}
	st := c.Stats()
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (failures must not be cached)", st.Misses)
	}
	if st.Entries != 0 {
		t.Fatalf("entries = %d, want 0 after failed loads", st.Entries)
	}
}

// TestDoctorCachedBesideFailedLoad: corrupt bytes fail the strict load
// but still produce a cacheable doctor report under the same key.
func TestDoctorCachedBesideFailedLoad(t *testing.T) {
	c := cache.New(0, 0)
	ctx := context.Background()
	img := traceImage(t, 300)
	img[len(img)/2] ^= 0xFF // corrupt the body

	if _, err := c.Load(ctx, img, analyzer.Limits{}); err == nil {
		t.Fatal("corrupt image loaded cleanly; test needs a corrupting flip")
	}
	d1, err := c.Doctor(ctx, img, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.Doctor(ctx, img, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("doctor report not cached")
	}
	st := c.Stats()
	if st.Hits != 1 {
		t.Fatalf("stats %+v: want exactly 1 hit (second doctor)", st)
	}
}

// TestChurnMixedTracesNoBleed hammers a 2-entry cache with concurrent
// requests for four distinct traces and asserts every response matches
// that trace's baseline — no cross-trace result bleed — while retention
// stays within the bound. Run under -race this also proves the shared
// trace and memos are data-race-free under churn.
func TestChurnMixedTracesNoBleed(t *testing.T) {
	ctx := context.Background()
	images := [][]byte{
		traceImage(t, 200), traceImage(t, 350),
		traceImage(t, 500), traceImage(t, 650),
	}
	// Baselines via the uncached path.
	type base struct {
		events int
		wall   uint64
		total  uint64
	}
	bases := make([]base, len(images))
	for i, img := range images {
		tr, err := analyzer.Load(bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		s := analyzer.Summarize(tr)
		cp := analyzer.ComputeCriticalPathSerial(tr)
		bases[i] = base{events: tr.NumEvents(), wall: s.WallTicks, total: cp.Total}
	}

	c := cache.New(2, 0)
	const workers, iters = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w + i) % len(images)
				h, err := c.Load(ctx, images[k], analyzer.Limits{})
				if err != nil {
					t.Error(err)
					return
				}
				if got := h.Trace().NumEvents(); got != bases[k].events {
					t.Errorf("trace %d: %d events, want %d (cross-trace bleed?)", k, got, bases[k].events)
					return
				}
				if got := h.Summary().WallTicks; got != bases[k].wall {
					t.Errorf("trace %d: wall %d, want %d", k, got, bases[k].wall)
					return
				}
				if got := h.CriticalPath().Total; got != bases[k].total {
					t.Errorf("trace %d: critpath total %d, want %d", k, got, bases[k].total)
					return
				}
				h.Profile()
				h.Gaps()
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 2 {
		t.Fatalf("retained %d entries, bound is 2", st.Entries)
	}
	if st.Evictions == 0 || st.Hits == 0 {
		t.Fatalf("stats %+v: churn should both hit and evict", st)
	}
}

func TestPeekNeverComputes(t *testing.T) {
	ctx := context.Background()
	c := cache.New(0, 0)
	img := traceImage(t, 200)
	key := cache.KeyOf(img)

	// Cold cache: a peek answers "no" without loading anything.
	if _, ok := c.Peek(key, cache.KindSummary); ok {
		t.Fatal("cold peek claimed a hit")
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("peek left tracks: %+v", st)
	}

	want, err := c.Artifact(ctx, img, cache.KindSummary, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Peek(key, cache.KindSummary)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("warm peek ok=%v", ok)
	}
	// The artifact kind matters: only summary was rendered.
	if _, ok := c.Peek(key, cache.KindProfile); ok {
		t.Fatal("peek invented an unrendered kind")
	}
}

func TestAdoptArtifactWithoutLocalFlight(t *testing.T) {
	// A memory-only replica adopting a peer-fetched artifact for a trace
	// it never loaded must retain (and serve) it.
	c := cache.New(0, 0)
	key := cache.KeyOf([]byte("trace bytes this replica never saw"))
	art := []byte(`{"adopted":true}`)

	c.AdoptArtifact(key, cache.KindSummary, art)
	got, ok := c.Peek(key, cache.KindSummary)
	if !ok || !bytes.Equal(got, art) {
		t.Fatalf("adopted artifact not peekable: ok=%v", ok)
	}
	// First adoption wins, like the flight memo.
	kept := c.AdoptArtifact(key, cache.KindSummary, []byte(`{"other":1}`))
	if !bytes.Equal(kept, art) {
		t.Fatal("second adoption replaced the first")
	}
	if st := c.Stats(); st.Bytes != int64(len(art)) {
		t.Fatalf("adopted bytes not accounted: %+v", st)
	}
}

func TestAdoptedEntriesEvict(t *testing.T) {
	c := cache.New(2, 0)
	for i := 0; i < 5; i++ {
		key := cache.KeyOf([]byte(fmt.Sprintf("trace %d", i)))
		c.AdoptArtifact(key, cache.KindSummary, []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 3 {
		t.Fatalf("entries=%d evictions=%d, want 2/3", st.Entries, st.Evictions)
	}
	// The newest adoption survives LRU.
	if _, ok := c.Peek(cache.KeyOf([]byte("trace 4")), cache.KindSummary); !ok {
		t.Fatal("most recent adoption evicted")
	}
}

func TestAdoptedBytesSurviveLocalLoad(t *testing.T) {
	ctx := context.Background()
	c := cache.New(0, 0)
	img := traceImage(t, 150)
	key := cache.KeyOf(img)

	adopted := []byte(`{"from":"peer"}`)
	c.AdoptArtifact(key, cache.KindSummary, adopted)
	// A later local load settles a flight for the same key without
	// rendering the summary; the adopted bytes must stay visible.
	if _, err := c.Load(ctx, img, analyzer.Limits{}); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Peek(key, cache.KindSummary)
	if !ok || !bytes.Equal(got, adopted) {
		t.Fatalf("adopted bytes hidden by the local flight: ok=%v", ok)
	}
	// A kind the adoption never covered still renders locally.
	if _, err := c.Artifact(ctx, img, cache.KindProfile, analyzer.Limits{}); err != nil {
		t.Fatal(err)
	}
}
