package cache

// The disk tier: a second, process-restart-surviving cache level under
// the same SHA-256 content addresses as the memory tier. It stores the
// raw trace image and each rendered analysis artifact as one object
// file apiece, named <key>.<kind>, with a small CRC-framed header so a
// restore is verified before it is trusted: a corrupt or torn object is
// deleted and reported as a miss, and the caller recomputes — the tier
// can lose work, never serve wrong bytes.
//
// Writes are crash-safe by construction: the object is assembled in a
// temp file in the same directory, fsync'd, then renamed into place
// (rename is atomic on POSIX), and the directory is fsync'd so the name
// survives a power cut. A write that dies before the rename leaves only
// a .tmp- file, which the next Open sweeps away.
//
// The tier is LRU-bounded by payload bytes. Keys can be pinned (the job
// manager pins a job's trace image until the job is terminal) and
// pinned keys are skipped by the evictor. Any I/O failure latches the
// tier into a degraded state — the memory tier keeps serving, readyz
// reports "degraded" — and the first subsequent successful write clears
// it.

import (
	"container/list"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Artifact kinds stored by the disk tier. KindTrace is the raw uploaded
// image; the rest are rendered JSON artifacts keyed by the image that
// produced them.
const (
	KindTrace    = "trace"
	KindSummary  = "summary"
	KindProfile  = "profile"
	KindGaps     = "gaps"
	KindCritPath = "critpath"
	KindCycles   = "cycles"
	KindDoctor   = "doctor"
)

// diskMagic frames every object file: 4 magic bytes, CRC-32 (IEEE) of
// the payload, payload length. 16 bytes total.
var diskMagic = [4]byte{'P', 'D', 'C', '1'}

const diskHeaderSize = 16

// Disturber is the fault-injection seam the chaos harness plugs into
// disk writes; *faults.ServicePlan implements it. A nil Disturber (or a
// typed-nil plan) injects nothing.
type Disturber interface {
	// BeforeIO may block to simulate a slow disk.
	BeforeIO()
	// WriteFault is consulted once per write of n payload bytes and
	// returns how many bytes actually persist plus the injected error
	// (faults.ErrDiskFull, faults.ErrTornWrite), if any.
	WriteFault(n int) (keep int, err error)
}

// DiskStats is a point-in-time snapshot of the disk tier counters.
type DiskStats struct {
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	MaxBytes   int64  `json:"maxBytes"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Puts       uint64 `json:"puts"`
	Corrupt    uint64 `json:"corrupt"` // CRC/frame failures detected on restore; each one was deleted
	Evictions  uint64 `json:"evictions"`
	Errors     uint64 `json:"errors"`     // write-path failures (latching degraded)
	Rehydrated int    `json:"rehydrated"` // entries adopted from disk at Open
	Degraded   bool   `json:"degraded"`
	LastError  string `json:"lastError,omitempty"`
}

type diskEntry struct {
	name string // "<hexkey>.<kind>"
	key  Key
	size int64 // payload bytes (file size minus header)
	elem *list.Element
}

// DiskTier is the disk-backed cache level. Methods are safe for
// concurrent use. The zero value is not usable; call OpenDiskTier.
type DiskTier struct {
	dir      string
	maxBytes int64
	disturb  Disturber

	mu         sync.Mutex
	ll         *list.List // *diskEntry, most recently used at the front
	entries    map[string]*diskEntry
	pins       map[Key]int
	bytes      int64
	hits       uint64
	misses     uint64
	puts       uint64
	corrupt    uint64
	evictions  uint64
	errors     uint64
	rehydrated int
	degraded   bool
	lastErr    string
}

// OpenDiskTier opens (creating if needed) a disk tier rooted at dir,
// bounded to maxBytes of payload (0 = unbounded), and rehydrates its
// index from the objects already present: leftover temp files are
// removed, structurally broken objects are deleted, and the LRU order
// is recovered from file modification times. disturb may be nil.
func OpenDiskTier(dir string, maxBytes int64, disturb Disturber) (*DiskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk tier: %w", err)
	}
	d := &DiskTier{
		dir:      dir,
		maxBytes: maxBytes,
		disturb:  disturb,
		ll:       list.New(),
		entries:  map[string]*diskEntry{},
		pins:     map[Key]int{},
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk tier: %w", err)
	}
	type found struct {
		e     *diskEntry
		mtime int64
	}
	var adopt []found
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasPrefix(name, ".tmp-") {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		key, ok := parseObjName(name)
		if !ok {
			continue // not ours; leave foreign files alone
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		payload := info.Size() - diskHeaderSize
		if payload < 0 || !d.headerOK(name, payload) {
			_ = os.Remove(filepath.Join(dir, name))
			d.corrupt++
			continue
		}
		adopt = append(adopt, found{
			e:     &diskEntry{name: name, key: key, size: payload},
			mtime: info.ModTime().UnixNano(),
		})
	}
	// Oldest first, so PushFront leaves the most recent at the front.
	sort.Slice(adopt, func(i, j int) bool { return adopt[i].mtime < adopt[j].mtime })
	for _, f := range adopt {
		f.e.elem = d.ll.PushFront(f.e)
		d.entries[f.e.name] = f.e
		d.bytes += f.e.size
	}
	d.rehydrated = len(adopt)
	d.mu.Lock()
	d.evictLocked()
	d.mu.Unlock()
	return d, nil
}

// Dir returns the tier's root directory.
func (d *DiskTier) Dir() string { return d.dir }

// headerOK reads just the 16-byte header and checks the frame against
// the payload size on disk; the full CRC check is deferred to Get, so
// rehydrating a large cache stays cheap.
func (d *DiskTier) headerOK(name string, payload int64) bool {
	f, err := os.Open(filepath.Join(d.dir, name))
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [diskHeaderSize]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return false
	}
	if [4]byte(hdr[:4]) != diskMagic {
		return false
	}
	return binary.LittleEndian.Uint64(hdr[8:16]) == uint64(payload)
}

func objName(key Key, kind string) string {
	return hex.EncodeToString(key[:]) + "." + kind
}

// parseObjName recovers the key from "<64 hex>.<kind>"; anything else
// is not one of our objects.
func parseObjName(name string) (Key, bool) {
	dot := strings.IndexByte(name, '.')
	if dot != 2*len(Key{}) || dot+1 >= len(name) {
		return Key{}, false
	}
	raw, err := hex.DecodeString(name[:dot])
	if err != nil {
		return Key{}, false
	}
	for _, c := range name[dot+1:] {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return Key{}, false
		}
	}
	return Key(raw), true
}

// Put stores one object durably: temp file, fsync, rename, directory
// fsync. Re-putting an existing object is a no-op (content addressing
// makes the payload identical by construction). Errors latch the tier
// degraded and are returned; callers treat them as "the disk tier is
// unavailable", not as request failures.
func (d *DiskTier) Put(key Key, kind string, payload []byte) error {
	name := objName(key, kind)
	d.mu.Lock()
	_, exists := d.entries[name]
	d.mu.Unlock()
	if exists {
		return nil
	}

	buf := make([]byte, diskHeaderSize+len(payload))
	copy(buf[:4], diskMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(payload)))
	copy(buf[diskHeaderSize:], payload)

	if d.disturb != nil {
		d.disturb.BeforeIO()
	}
	keep, ferr := len(buf), error(nil)
	if d.disturb != nil {
		keep, ferr = d.disturb.WriteFault(len(buf))
	}

	tmp, err := os.CreateTemp(d.dir, ".tmp-")
	if err != nil {
		return d.fail(err)
	}
	tmpName := tmp.Name()
	if ferr != nil && keep < len(buf) {
		// Torn write: persist the prefix and then "die" — no rename, so
		// the partial object is invisible and swept by the next Open.
		_, _ = tmp.Write(buf[:keep])
		_ = tmp.Close()
		return d.fail(ferr)
	}
	if ferr != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return d.fail(ferr)
	}
	if _, err := tmp.Write(buf); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return d.fail(err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return d.fail(err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return d.fail(err)
	}
	if err := os.Rename(tmpName, filepath.Join(d.dir, name)); err != nil {
		_ = os.Remove(tmpName)
		return d.fail(err)
	}
	d.syncDir()

	d.mu.Lock()
	defer d.mu.Unlock()
	d.puts++
	d.degraded = false
	d.lastErr = ""
	if _, raced := d.entries[name]; !raced {
		e := &diskEntry{name: name, key: key, size: int64(len(payload))}
		e.elem = d.ll.PushFront(e)
		d.entries[name] = e
		d.bytes += e.size
		d.evictLocked()
	}
	return nil
}

// Get restores one object, verifying the CRC frame before trusting it.
// A structurally broken or CRC-failing object is deleted and reported
// as a miss — the caller recomputes and re-spills.
func (d *DiskTier) Get(key Key, kind string) ([]byte, bool) {
	name := objName(key, kind)
	d.mu.Lock()
	e := d.entries[name]
	if e == nil {
		d.misses++
		d.mu.Unlock()
		return nil, false
	}
	d.mu.Unlock()
	if d.disturb != nil {
		d.disturb.BeforeIO()
	}
	path := filepath.Join(d.dir, name)
	raw, err := os.ReadFile(path)
	payload, ok := verifyFrame(raw)
	if err != nil || !ok {
		d.dropCorrupt(name, path)
		return nil, false
	}
	d.mu.Lock()
	if e := d.entries[name]; e != nil {
		d.ll.MoveToFront(e.elem)
	}
	d.hits++
	d.mu.Unlock()
	return payload, true
}

// verifyFrame checks magic, declared length, and CRC, returning the
// payload on success.
func verifyFrame(raw []byte) ([]byte, bool) {
	if len(raw) < diskHeaderSize || [4]byte(raw[:4]) != diskMagic {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	if uint64(len(raw)-diskHeaderSize) != n {
		return nil, false
	}
	payload := raw[diskHeaderSize:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(raw[4:8]) {
		return nil, false
	}
	return payload, true
}

// dropCorrupt removes a failed restore from disk and the index.
func (d *DiskTier) dropCorrupt(name, path string) {
	d.mu.Lock()
	if e := d.entries[name]; e != nil {
		d.ll.Remove(e.elem)
		delete(d.entries, name)
		d.bytes -= e.size
	}
	d.corrupt++
	d.misses++
	d.mu.Unlock()
	_ = os.Remove(path)
}

// Has reports whether an object is present (without touching LRU order
// or verifying its CRC).
func (d *DiskTier) Has(key Key, kind string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.entries[objName(key, kind)]
	return ok
}

// Pin marks every object of a key as unevictable until the matching
// Unpin; pins nest. The job manager pins a job's trace image so the
// LRU cannot evict the bytes a journaled job still needs.
func (d *DiskTier) Pin(key Key) {
	d.mu.Lock()
	d.pins[key]++
	d.mu.Unlock()
}

// Unpin releases one Pin of the key.
func (d *DiskTier) Unpin(key Key) {
	d.mu.Lock()
	if d.pins[key] > 1 {
		d.pins[key]--
	} else {
		delete(d.pins, key)
	}
	d.mu.Unlock()
}

// Degraded reports whether the last write failed, with the error.
func (d *DiskTier) Degraded() (bool, string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded, d.lastErr
}

// Stats snapshots the counters.
func (d *DiskTier) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DiskStats{
		Entries:    len(d.entries),
		Bytes:      d.bytes,
		MaxBytes:   d.maxBytes,
		Hits:       d.hits,
		Misses:     d.misses,
		Puts:       d.puts,
		Corrupt:    d.corrupt,
		Evictions:  d.evictions,
		Errors:     d.errors,
		Rehydrated: d.rehydrated,
		Degraded:   d.degraded,
		LastError:  d.lastErr,
	}
}

// fail latches the degraded state and passes the error through.
func (d *DiskTier) fail(err error) error {
	d.mu.Lock()
	d.errors++
	d.degraded = true
	d.lastErr = err.Error()
	d.mu.Unlock()
	return fmt.Errorf("disk tier: %w", err)
}

// syncDir fsyncs the tier directory so a rename survives power loss;
// best effort (some filesystems refuse directory fsync).
func (d *DiskTier) syncDir() {
	if f, err := os.Open(d.dir); err == nil {
		_ = f.Sync()
		_ = f.Close()
	}
}

// evictLocked removes least-recently-used, unpinned objects until the
// byte bound holds. Called with mu held; file removal happens inline
// (the entry is already gone from the index, so a racing Get misses).
func (d *DiskTier) evictLocked() {
	if d.maxBytes <= 0 {
		return
	}
	for d.bytes > d.maxBytes {
		var victim *diskEntry
		for el := d.ll.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*diskEntry)
			if d.pins[e.key] > 0 {
				continue
			}
			victim = e
			break
		}
		if victim == nil {
			return
		}
		d.ll.Remove(victim.elem)
		delete(d.entries, victim.name)
		d.bytes -= victim.size
		d.evictions++
		_ = os.Remove(filepath.Join(d.dir, victim.name))
	}
}
