package cache

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/celltrace/pdt/internal/faults"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestDiskTierPutGetRoundTrip(t *testing.T) {
	d, err := OpenDiskTier(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"hello":"world"}`)
	key := KeyOf(payload)
	if err := d.Put(key, KindSummary, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(key, KindSummary)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := d.Get(key, KindProfile); ok {
		t.Fatal("Get of an unwritten kind hit")
	}
	if _, ok := d.Get(testKey(9), KindSummary); ok {
		t.Fatal("Get of an unwritten key hit")
	}
	st := d.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes != int64(len(payload)) {
		t.Fatalf("bytes %d, want payload size %d", st.Bytes, len(payload))
	}
	// Content-addressed re-put is a no-op.
	if err := d.Put(key, KindSummary, payload); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Puts != 1 {
		t.Fatalf("re-put wrote again: %+v", st)
	}
}

// TestDiskTierSurvivesReopen is the restart story: a new tier on the
// same directory adopts the objects and serves them verified.
func TestDiskTierSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskTier(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[string][]byte{
		KindTrace:   bytes.Repeat([]byte{0xAB}, 4096),
		KindSummary: []byte(`{"s":1}`),
		KindGaps:    []byte(`{"g":[]}`),
	}
	key := KeyOf(payloads[KindTrace])
	for kind, p := range payloads {
		if err := d.Put(key, kind, p); err != nil {
			t.Fatal(err)
		}
	}
	// Plant a leftover temp file: Open must sweep it.
	tmp := filepath.Join(dir, ".tmp-leftover")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDiskTier(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := d2.Stats(); st.Rehydrated != 3 || st.Entries != 3 {
		t.Fatalf("rehydration stats %+v", st)
	}
	for kind, want := range payloads {
		got, ok := d2.Get(key, kind)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("reopened Get(%s) = %v, %v", kind, ok, got)
		}
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("leftover temp file survived Open")
	}
}

// TestDiskTierCorruptRestore flips bytes in stored objects: every
// flavor of damage must be detected, deleted, and reported as a miss —
// never served.
func TestDiskTierCorruptRestore(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"payload flip", func(b []byte) []byte { b[diskHeaderSize+2] ^= 0x40; return b }},
		{"crc flip", func(b []byte) []byte { b[5] ^= 0x01; return b }},
		{"magic flip", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"header only", func(b []byte) []byte { return b[:diskHeaderSize] }},
		{"empty file", func(b []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDiskTier(dir, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte("pdt"), 64)
			key := KeyOf(payload)
			if err := d.Put(key, KindCritPath, payload); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, objName(key, KindCritPath))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := d.Get(key, KindCritPath); ok {
				t.Fatalf("corrupt object served: %q", got)
			}
			if st := d.Stats(); st.Corrupt == 0 {
				t.Fatalf("corruption not counted: %+v", st)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatal("corrupt object not deleted")
			}
			// The slot is clean again: a re-put works and verifies.
			if err := d.Put(key, KindCritPath, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := d.Get(key, KindCritPath); !ok || !bytes.Equal(got, payload) {
				t.Fatal("re-put after corruption does not serve")
			}
		})
	}
}

// TestDiskTierRehydrationDropsBrokenFrames: structurally broken objects
// (bad magic, size mismatch) are discarded at Open, not adopted.
func TestDiskTierRehydrationDropsBrokenFrames(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskTier(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := []byte("good payload")
	if err := d.Put(KeyOf(good), KindTrace, good); err != nil {
		t.Fatal(err)
	}
	// A file with our name shape but garbage content.
	bad := filepath.Join(dir, objName(testKey(1), KindTrace))
	if err := os.WriteFile(bad, []byte("not a frame at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A foreign file that is not ours: left alone.
	foreign := filepath.Join(dir, "README")
	if err := os.WriteFile(foreign, []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDiskTier(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := d2.Stats(); st.Rehydrated != 1 || st.Corrupt != 1 {
		t.Fatalf("stats %+v, want 1 adopted + 1 dropped", st)
	}
	if _, err := os.Stat(bad); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("broken object survived rehydration")
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("foreign file was touched")
	}
}

func TestDiskTierLRUEvictionAndPinning(t *testing.T) {
	dir := t.TempDir()
	// Budget fits two 100-byte payloads.
	d, err := OpenDiskTier(dir, 220, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(b byte) (Key, []byte) {
		p := bytes.Repeat([]byte{b}, 100)
		return KeyOf(p), p
	}
	k1, p1 := mk(1)
	k2, p2 := mk(2)
	k3, p3 := mk(3)
	if err := d.Put(k1, KindTrace, p1); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(k2, KindTrace, p2); err != nil {
		t.Fatal(err)
	}
	// Touch k1 so k2 is the LRU victim.
	if _, ok := d.Get(k1, KindTrace); !ok {
		t.Fatal("k1 missing")
	}
	if err := d.Put(k3, KindTrace, p3); err != nil {
		t.Fatal(err)
	}
	if d.Has(k2, KindTrace) {
		t.Fatal("LRU victim k2 survived")
	}
	if !d.Has(k1, KindTrace) || !d.Has(k3, KindTrace) {
		t.Fatal("wrong eviction victim")
	}

	// Pin k1; adding k4 must evict k3 (k1 is protected despite being LRU).
	d.Pin(k1)
	if _, ok := d.Get(k3, KindTrace); !ok { // make k1 the LRU
		t.Fatal("k3 missing")
	}
	k4, p4 := mk(4)
	if err := d.Put(k4, KindTrace, p4); err != nil {
		t.Fatal(err)
	}
	if !d.Has(k1, KindTrace) {
		t.Fatal("pinned key evicted")
	}
	if d.Has(k3, KindTrace) {
		t.Fatal("unpinned LRU survivor")
	}
	d.Unpin(k1)
	if st := d.Stats(); st.Evictions != 2 || st.Bytes > 220 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiskTierDiskFullDegradesAndRecovers(t *testing.T) {
	plan, err := faults.ParseService("diskfull:0:1")
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskTier(t.TempDir(), 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	p := []byte("payload")
	key := KeyOf(p)
	if err := d.Put(key, KindTrace, p); !errors.Is(err, faults.ErrDiskFull) {
		t.Fatalf("Put under disk-full: %v", err)
	}
	if deg, msg := d.Degraded(); !deg || msg == "" {
		t.Fatal("tier not degraded after write failure")
	}
	if d.Has(key, KindTrace) {
		t.Fatal("failed write left an entry")
	}
	// The rule is consumed; the next write succeeds and clears degraded.
	if err := d.Put(key, KindTrace, p); err != nil {
		t.Fatal(err)
	}
	if deg, _ := d.Degraded(); deg {
		t.Fatal("tier still degraded after successful write")
	}
	if got, ok := d.Get(key, KindTrace); !ok || !bytes.Equal(got, p) {
		t.Fatal("recovered write does not serve")
	}
}

// TestDiskTierTornWriteInvisible: a torn write must never make a
// corrupt object visible — the temp file never got renamed, and the
// next Open sweeps the debris.
func TestDiskTierTornWriteInvisible(t *testing.T) {
	dir := t.TempDir()
	plan, err := faults.ParseService("torn:1")
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskTier(dir, 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	p := bytes.Repeat([]byte("x"), 1000)
	key := KeyOf(p)
	if err := d.Put(key, KindTrace, p); !errors.Is(err, faults.ErrTornWrite) {
		t.Fatalf("Put under torn write: %v", err)
	}
	if d.Has(key, KindTrace) {
		t.Fatal("torn write produced a visible object")
	}
	if _, ok := d.Get(key, KindTrace); ok {
		t.Fatal("torn write served")
	}
	// The torn temp file exists on disk (the "crash" left it behind)…
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var debris int
	for _, de := range names {
		if len(de.Name()) > 5 && de.Name()[:5] == ".tmp-" {
			debris++
		}
	}
	if debris == 0 {
		t.Fatal("expected torn-write debris before reopen")
	}
	// …and the restart sweeps it.
	if _, err := OpenDiskTier(dir, 0, nil); err != nil {
		t.Fatal(err)
	}
	names, _ = os.ReadDir(dir)
	for _, de := range names {
		if len(de.Name()) > 5 && de.Name()[:5] == ".tmp-" {
			t.Fatalf("torn debris %s survived reopen", de.Name())
		}
	}
}

func TestDiskTierSlowDisk(t *testing.T) {
	plan, err := faults.ParseService("slowdisk:20")
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskTier(t.TempDir(), 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	p := []byte("slow")
	start := time.Now()
	if err := d.Put(KeyOf(p), KindTrace, p); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("slow-disk Put returned in %v", d)
	}
}

// TestDiskTierConcurrent exercises concurrent Put/Get of overlapping
// keys under -race, including racing puts of the same object.
func TestDiskTierConcurrent(t *testing.T) {
	d, err := OpenDiskTier(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, 256+i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				p := payloads[(g+i)%len(payloads)]
				key := KeyOf(p)
				if err := d.Put(key, KindTrace, p); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, ok := d.Get(key, KindTrace)
				if ok && !bytes.Equal(got, p) {
					t.Error("Get returned wrong bytes")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := d.Stats(); st.Entries != len(payloads) {
		t.Fatalf("entries %d, want %d", st.Entries, len(payloads))
	}
}
