package cache

import (
	"context"
	"sync"

	"github.com/celltrace/pdt/internal/analyzer"
)

// SideError tags a load failure with which side of a pair produced it,
// so the diff endpoint can doctor the failing side specifically.
type SideError struct {
	Side string // "a" or "b"
	Err  error
	// Data is the failing side's raw image, for follow-up doctoring.
	Data []byte
}

func (e *SideError) Error() string { return "side " + e.Side + ": " + e.Err.Error() }
func (e *SideError) Unwrap() error { return e.Err }

// LoadPair loads two trace images concurrently through the cache, so a
// diff request pays at most one load per distinct content address —
// none when both sides are already cached, and exactly one when the two
// sides are byte-identical (the second request piggybacks on the
// first's flight). A failure is reported as a *SideError naming the
// side; when both sides fail, side "a" wins deterministically.
func (c *Cache) LoadPair(ctx context.Context, a, b []byte, lim analyzer.Limits) (ha, hb *Handle, err error) {
	var ea, eb error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hb, eb = c.Load(ctx, b, lim)
	}()
	ha, ea = c.Load(ctx, a, lim)
	wg.Wait()
	if ea != nil {
		return nil, nil, &SideError{Side: "a", Err: ea, Data: a}
	}
	if eb != nil {
		return nil, nil, &SideError{Side: "b", Err: eb, Data: b}
	}
	return ha, hb, nil
}
