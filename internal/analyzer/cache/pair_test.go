package cache_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cache"
)

// TestLoadPairSharesCache loads two distinct images as a pair and then
// individually: the pair load must populate the cache (2 misses) and the
// follow-up single loads must both hit the same entries.
func TestLoadPairSharesCache(t *testing.T) {
	c := cache.New(0, 0)
	ctx := context.Background()
	a := traceImage(t, 300)
	b := traceImage(t, 500)

	ha, hb, err := c.LoadPair(ctx, a, b, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if ha.Trace() == hb.Trace() {
		t.Fatal("distinct images returned the same trace")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses from the pair load", st)
	}

	h2, err := c.Load(ctx, a, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if h2.Trace() != ha.Trace() {
		t.Fatal("single load of side a missed the pair-loaded entry")
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 hit after re-loading side a", st)
	}
}

// TestLoadPairIdenticalSides diffs a trace against itself: the two pair
// sides share one content address, so only one load may run and both
// handles must expose the same shared trace.
func TestLoadPairIdenticalSides(t *testing.T) {
	c := cache.New(0, 0)
	data := traceImage(t, 300)

	ha, hb, err := c.LoadPair(context.Background(), data, data, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if ha.Trace() != hb.Trace() {
		t.Fatal("identical images did not share one cached trace")
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly 1 miss for identical sides", st)
	}
	if st.Dedups+st.Hits != 1 {
		t.Fatalf("stats = %+v, want the second side to dedup or hit", st)
	}
}

// TestLoadPairSideError corrupts one side and checks the error names it
// and carries the failing bytes for doctoring.
func TestLoadPairSideError(t *testing.T) {
	c := cache.New(0, 0)
	good := traceImage(t, 300)
	bad := append([]byte(nil), traceImage(t, 500)...)
	for i := len(bad) / 3; i < len(bad)/3+64 && i < len(bad); i++ {
		bad[i] ^= 0xFF
	}

	_, _, err := c.LoadPair(context.Background(), good, bad, analyzer.Limits{})
	if err == nil {
		t.Fatal("corrupt side b did not fail the pair load")
	}
	var se *cache.SideError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a SideError", err)
	}
	if se.Side != "b" {
		t.Fatalf("SideError names side %q, want b", se.Side)
	}
	if !bytes.Equal(se.Data, bad) {
		t.Fatal("SideError does not carry the failing side's bytes")
	}
}
