package cache_test

// Tier-interaction tests: the memory tier, the disk tier, and the
// recompute path layered under one content address. These are the edge
// cases a restart-heavy fleet actually hits — disk entry present but
// memory evicted, disk entry corrupt, and concurrent spill/restore of
// the same key.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cache"
)

// objPath computes where the disk tier stores one object.
func objPath(dir string, key cache.Key, kind string) string {
	return filepath.Join(dir, key.String()+"."+kind)
}

// diskCache builds a memory cache with a disk tier under dir.
func diskCache(t *testing.T, dir string, maxEntries int) *cache.Cache {
	t.Helper()
	d, err := cache.OpenDiskTier(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(maxEntries, 0)
	c.AttachDisk(d)
	return c
}

// TestArtifactWarmRestart: a fresh process (new memory cache, reopened
// disk tier) serves the same artifact bytes without reloading the trace.
func TestArtifactWarmRestart(t *testing.T) {
	dir := t.TempDir()
	data := traceImage(t, 400)
	ctx := context.Background()

	c1 := diskCache(t, dir, 0)
	want, err := c1.Artifact(ctx, data, cache.KindSummary, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": brand-new memory tier over the same directory.
	c2 := diskCache(t, dir, 0)
	got, err := c2.Artifact(ctx, data, cache.KindSummary, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("warm-restart artifact differs from the original")
	}
	st := c2.Stats()
	if st.Misses != 0 {
		t.Fatalf("warm restart ran a load: %+v", st)
	}
	dst := c2.Disk().Stats()
	if dst.Hits == 0 {
		t.Fatalf("warm restart did not hit the disk tier: %+v", dst)
	}
	// The raw image also survived, for job replay.
	if img, ok := c2.RawImage(cache.KeyOf(data)); !ok || !bytes.Equal(img, data) {
		t.Fatal("raw trace image not restorable from the disk tier")
	}
}

// TestArtifactDiskHitAfterMemoryEviction: a one-entry memory tier is
// churned so the first trace's entry is evicted; its artifact must come
// back from disk, byte-identical, with no recompute load.
func TestArtifactDiskHitAfterMemoryEviction(t *testing.T) {
	dir := t.TempDir()
	c := diskCache(t, dir, 1)
	ctx := context.Background()
	a := traceImage(t, 400)
	b := traceImage(t, 700)

	want, err := c.Artifact(ctx, a, cache.KindCritPath, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// Loading b evicts a from the one-entry memory tier.
	if _, err := c.Artifact(ctx, b, cache.KindCritPath, analyzer.Limits{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("churn did not evict: %+v", st)
	}

	loadsBefore := c.Stats().Misses
	got, err := c.Artifact(ctx, a, cache.KindCritPath, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("disk-restored artifact differs")
	}
	if c.Stats().Misses != loadsBefore {
		t.Fatal("memory-evicted entry triggered a reload despite the disk tier")
	}
	if dst := c.Disk().Stats(); dst.Hits == 0 {
		t.Fatalf("restore did not come from disk: %+v", dst)
	}
}

// TestArtifactCorruptDiskRecomputes: a flipped byte in the stored
// artifact must be detected by the CRC frame and recomputed — the
// caller gets correct bytes, never an error, never the corrupt object.
func TestArtifactCorruptDiskRecomputes(t *testing.T) {
	dir := t.TempDir()
	data := traceImage(t, 400)
	key := cache.KeyOf(data)
	ctx := context.Background()

	c1 := diskCache(t, dir, 0)
	want, err := c1.Artifact(ctx, data, cache.KindGaps, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the stored artifact on disk, then restart.
	path := objPath(dir, key, cache.KindGaps)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := diskCache(t, dir, 0)
	got, err := c2.Artifact(ctx, data, cache.KindGaps, analyzer.Limits{})
	if err != nil {
		t.Fatalf("corrupt disk object surfaced as an error: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recomputed artifact differs from the original")
	}
	dst := c2.Disk().Stats()
	if dst.Corrupt == 0 {
		t.Fatalf("corruption not detected: %+v", dst)
	}
	// The recompute must have re-spilled a good copy.
	fresh, err := os.ReadFile(path)
	if err != nil {
		t.Fatal("recompute did not re-spill the artifact")
	}
	if bytes.Equal(fresh, raw) {
		t.Fatal("corrupt object still on disk")
	}
	if got2, err := c2.Artifact(ctx, data, cache.KindGaps, analyzer.Limits{}); err != nil || !bytes.Equal(got2, want) {
		t.Fatal("re-spilled artifact does not serve")
	}
}

// TestArtifactDoctorThroughTiers: the doctor artifact (computed from
// corrupt bytes the strict load rejects) also survives the tiers.
func TestArtifactDoctorThroughTiers(t *testing.T) {
	dir := t.TempDir()
	data := traceImage(t, 400)
	data = data[:len(data)-len(data)/3] // truncate: strict load fails, doctor reports
	ctx := context.Background()

	c1 := diskCache(t, dir, 0)
	want, err := c1.Artifact(ctx, data, cache.KindDoctor, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := diskCache(t, dir, 0)
	got, err := c2.Artifact(ctx, data, cache.KindDoctor, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("doctor artifact not stable across restart")
	}
	if st := c2.Disk().Stats(); st.Hits == 0 {
		t.Fatalf("doctor restart did not use the disk tier: %+v", st)
	}
}

// TestConcurrentSpillRestoreSameKey hammers one key from many
// goroutines while a churn goroutine keeps evicting it from a one-entry
// memory tier: every response must be byte-identical under -race.
func TestConcurrentSpillRestoreSameKey(t *testing.T) {
	dir := t.TempDir()
	c := diskCache(t, dir, 1)
	ctx := context.Background()
	hot := traceImage(t, 400)
	churn := [][]byte{traceImage(t, 600), traceImage(t, 800)}

	want, err := c.Artifact(ctx, hot, cache.KindSummary, analyzer.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	var wg, churnWG sync.WaitGroup
	stop := make(chan struct{})
	churnWG.Add(1)
	go func() { // eviction churn
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Artifact(ctx, churn[i%len(churn)], cache.KindSummary, analyzer.Limits{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := c.Artifact(ctx, hot, cache.KindSummary, analyzer.Limits{})
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Error("concurrent spill/restore served wrong bytes")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()
}
