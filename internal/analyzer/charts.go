package analyzer

import (
	"fmt"
	"strings"
)

// SVGLineChart renders a simple filled line chart for a series of
// non-negative values — the HTML report's bandwidth and parallelism
// panels. Pure SVG, no scripting.
func SVGLineChart(title, yLabel string, values []float64, width, height int) string {
	if width < 100 {
		width = 100
	}
	if height < 40 {
		height = 40
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	const padL, padB, padT = 50, 18, 18
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`,
		width, height)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<text x="%d" y="12">%s</text>`, padL, xmlEscape(title))
	b.WriteString("\n")
	plotW := width - padL - 8
	plotH := height - padT - padB
	if len(values) > 0 && max > 0 {
		var pts strings.Builder
		// Area polygon: baseline, the series, baseline.
		fmt.Fprintf(&pts, "%d,%d ", padL, padT+plotH)
		for i, v := range values {
			x := padL
			if len(values) > 1 {
				x = padL + i*plotW/(len(values)-1)
			}
			y := padT + plotH - int(v/max*float64(plotH))
			fmt.Fprintf(&pts, "%d,%d ", x, y)
		}
		fmt.Fprintf(&pts, "%d,%d", padL+plotW, padT+plotH)
		fmt.Fprintf(&b, `<polygon points="%s" fill="#4caf50" fill-opacity="0.35" stroke="#2e7d32" stroke-width="1"/>`,
			strings.TrimSpace(pts.String()))
		b.WriteString("\n")
	}
	// Axes and max label.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		padL, padT, padL, padT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		padL, padT+plotH, padL+plotW, padT+plotH)
	fmt.Fprintf(&b, `<text x="2" y="%d">%s</text>`, padT+10, xmlEscape(fmt.Sprintf("%.3g", max)))
	fmt.Fprintf(&b, `<text x="2" y="%d">%s</text>`, padT+plotH, "0")
	fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`, padL, height-4, xmlEscape(yLabel))
	b.WriteString("</svg>\n")
	return b.String()
}

// BandwidthChart renders the DMA-traffic series as an SVG chart in
// GB/s at the nominal clock.
func BandwidthChart(tr *Trace, buckets, width int) string {
	pts := BandwidthSeries(tr, buckets)
	start, end := tr.Span()
	vals := make([]float64, len(pts))
	if end > start && len(pts) > 0 {
		bucketTicks := float64(end-start) / float64(len(pts))
		bucketSec := bucketTicks * float64(tr.CyclesPerTick()) / 3.2e9
		for i, p := range pts {
			if bucketSec > 0 {
				vals[i] = float64(p.Bytes) / bucketSec / 1e9
			}
		}
	}
	return SVGLineChart("DMA traffic", "GB/s over time", vals, width, 120)
}

// ParallelismChart renders the computing-SPE count over time.
func ParallelismChart(tr *Trace, buckets, width int) string {
	pts := ParallelismSeries(tr, buckets)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.Busy
	}
	return SVGLineChart("SPE parallelism", "computing SPEs over time", vals, width, 120)
}
