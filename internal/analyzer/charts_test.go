package analyzer

import (
	"bytes"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
)

func TestSVGLineChart(t *testing.T) {
	svg := SVGLineChart("title & co", "y", []float64{0, 1, 3, 2}, 300, 100)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an svg")
	}
	if !strings.Contains(svg, "polygon") {
		t.Fatal("no series polygon")
	}
	if !strings.Contains(svg, "title &amp; co") {
		t.Fatal("title not escaped")
	}
}

func TestSVGLineChartEmpty(t *testing.T) {
	svg := SVGLineChart("t", "y", nil, 10, 10)
	if strings.Contains(svg, "polygon") {
		t.Fatal("polygon for empty series")
	}
	if !strings.Contains(svg, "<svg") {
		t.Fatal("no svg scaffold")
	}
}

func TestChartsFromTrace(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(0, "ch", func(spu cell.SPU) uint32 {
			for i := 0; i < 10; i++ {
				spu.Get(0, 0, 4096, 0)
				spu.WaitTagAll(1)
				spu.Compute(2000)
			}
			return 0
		}))
	})
	bw := BandwidthChart(tr, 20, 400)
	if !strings.Contains(bw, "GB/s") || !strings.Contains(bw, "polygon") {
		t.Fatalf("bandwidth chart:\n%s", bw)
	}
	par := ParallelismChart(tr, 20, 400)
	if !strings.Contains(par, "parallelism") || !strings.Contains(par, "polygon") {
		t.Fatalf("parallelism chart:\n%s", par)
	}
}

func TestHTMLIncludesCharts(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(0, "hc", func(spu cell.SPU) uint32 {
			spu.Get(0, 0, 1024, 0)
			spu.WaitTagAll(1)
			return 0
		}))
	})
	var buf bytes.Buffer
	if err := WriteHTML(tr, Summarize(tr), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Traffic and parallelism") {
		t.Fatal("charts section missing")
	}
	if strings.Count(buf.String(), "<svg") < 3 {
		t.Fatal("expected timeline + two charts")
	}
}
