// Package colstore holds the analyzer's struct-of-arrays event store.
//
// The record-of-structs layout the analyzer used to keep ([]Event, each
// embedding an event.Record with its own Args slice and Str header) costs
// ~88 bytes plus a pointer chase per event even when a kernel only wants
// the event ID and timestamp. The columnar Store splits every field into
// its own parallel slice so a scan touches only the columns it reads:
// Profile walks 2-byte IDs and 8-byte timestamps, the critical-path
// dependency scans walk the ID column alone, and the whole store costs
// ~32 bytes per event plus argument words.
//
// Arguments are packed into one shared arena (Args) addressed by a
// prefix-sum offset column (ArgOff), and string payloads are interned
// into a table (Strs) addressed by StrIdx, so loading a trace performs a
// constant number of allocations instead of one per record.
package colstore

import "github.com/celltrace/pdt/internal/core/event"

// Store is a struct-of-arrays event table. All column slices have the
// same length (the event count) except ArgOff, which has one extra
// trailing entry so event i's arguments are Args[ArgOff[i]:ArgOff[i+1]].
// Row order is the analyzer's merged order (ascending Global, stable by
// input order), so an event's sequence number is simply its row index.
type Store struct {
	ID     []event.ID
	Core   []uint8
	Flags  []uint8
	Time   []uint64 // raw record timestamp (decrementer or timebase)
	Global []uint64 // correlated global timebase ticks
	Run    []int32  // SPE run index, or -1 for PPE events
	ArgOff []uint32 // len()+1 entries; prefix sums into Args
	Args   []uint64 // shared argument arena
	StrIdx []int32  // index into Strs, or -1 when the record has no string
	Strs   []string // interned string payloads
}

// Len returns the number of events in the store.
func (s *Store) Len() int { return len(s.ID) }

// EventArgs returns event i's argument words as a view into the shared
// arena, or nil when the event has none. Callers must not mutate it.
func (s *Store) EventArgs(i int) []uint64 {
	lo, hi := s.ArgOff[i], s.ArgOff[i+1]
	if lo == hi {
		return nil
	}
	return s.Args[lo:hi:hi]
}

// Str returns event i's string payload ("" when it has none).
func (s *Store) Str(i int) string {
	if idx := s.StrIdx[i]; idx >= 0 {
		return s.Strs[idx]
	}
	return ""
}

// Record materializes event i as a decoded wire record. The Args slice
// aliases the shared arena (nil for zero-argument events, matching
// event.Decode) and must not be mutated.
func (s *Store) Record(i int) event.Record {
	return event.Record{
		ID:    s.ID[i],
		Core:  s.Core[i],
		Flags: s.Flags[i],
		Time:  s.Time[i],
		Args:  s.EventArgs(i),
		Str:   s.Str(i),
	}
}

// Bytes returns the exact heap footprint of the column data: the sum of
// every column's backing array plus string headers and bytes. Slice and
// map headers of the Store struct itself are not counted; they are O(1).
func (s *Store) Bytes() int64 {
	n := int64(cap(s.ID))*2 + int64(cap(s.Core)) + int64(cap(s.Flags)) +
		int64(cap(s.Time))*8 + int64(cap(s.Global))*8 + int64(cap(s.Run))*4 +
		int64(cap(s.ArgOff))*4 + int64(cap(s.Args))*8 + int64(cap(s.StrIdx))*4
	n += int64(cap(s.Strs)) * 16 // string headers
	for _, str := range s.Strs {
		n += int64(len(str))
	}
	return n
}

// Builder appends rows to a Store, interning strings as it goes. Use
// NewBuilder with the final event count when it is known up front so the
// columns are allocated exactly once.
type Builder struct {
	s      Store
	intern map[string]int32
}

// NewBuilder returns a Builder with capacity for n events and argWords
// total argument words. Either may be 0 when unknown; the columns then
// grow geometrically.
func NewBuilder(n, argWords int) *Builder {
	b := &Builder{intern: make(map[string]int32)}
	b.s = Store{
		ID:     make([]event.ID, 0, n),
		Core:   make([]uint8, 0, n),
		Flags:  make([]uint8, 0, n),
		Time:   make([]uint64, 0, n),
		Global: make([]uint64, 0, n),
		Run:    make([]int32, 0, n),
		ArgOff: make([]uint32, 1, n+1),
		Args:   make([]uint64, 0, argWords),
		StrIdx: make([]int32, 0, n),
	}
	return b
}

// Append adds one event row from a decoded record plus its correlated
// global time and run assignment. The record's Args are copied into the
// shared arena and its Str is interned.
func (b *Builder) Append(r *event.Record, global uint64, run int32) {
	s := &b.s
	s.ID = append(s.ID, r.ID)
	s.Core = append(s.Core, r.Core)
	s.Flags = append(s.Flags, r.Flags)
	s.Time = append(s.Time, r.Time)
	s.Global = append(s.Global, global)
	s.Run = append(s.Run, run)
	s.Args = append(s.Args, r.Args...)
	s.ArgOff = append(s.ArgOff, uint32(len(s.Args)))
	if r.Flags&event.FlagHasStr != 0 || r.Str != "" {
		idx, ok := b.intern[r.Str]
		if !ok {
			idx = int32(len(s.Strs))
			s.Strs = append(s.Strs, r.Str)
			b.intern[r.Str] = idx
		}
		s.StrIdx = append(s.StrIdx, idx)
	} else {
		s.StrIdx = append(s.StrIdx, -1)
	}
}

// Len returns the number of rows appended so far.
func (b *Builder) Len() int { return len(b.s.ID) }

// Done returns the built store. The Builder must not be used afterwards.
func (b *Builder) Done() *Store {
	b.intern = nil
	return &b.s
}
