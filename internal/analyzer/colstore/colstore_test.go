package colstore

import (
	"reflect"
	"testing"

	"github.com/celltrace/pdt/internal/core/event"
)

func TestBuilderRoundTrip(t *testing.T) {
	recs := []event.Record{
		{ID: event.SPEProgramStart, Core: 0, Flags: event.FlagDecrTime, Time: 10},
		{ID: event.SPEMFCGet, Core: 0, Flags: event.FlagDecrTime, Time: 20,
			Args: []uint64{1, 0x1000, 256, 5}},
		{ID: event.StringDef, Core: event.CorePPE, Flags: event.FlagHasStr, Time: 30,
			Args: []uint64{7}, Str: "hello"},
		{ID: event.SPEProgramEnd, Core: 1, Flags: event.FlagDecrTime, Time: 40},
		{ID: event.StringDef, Core: event.CorePPE, Flags: event.FlagHasStr, Time: 50,
			Args: []uint64{8}, Str: "hello"}, // interned duplicate
	}
	b := NewBuilder(len(recs), 16)
	for i, r := range recs {
		b.Append(&r, uint64(100+i), int32(i%2))
	}
	if b.Len() != len(recs) {
		t.Fatalf("builder len = %d, want %d", b.Len(), len(recs))
	}
	s := b.Done()
	if s.Len() != len(recs) {
		t.Fatalf("store len = %d, want %d", s.Len(), len(recs))
	}
	for i, want := range recs {
		got := s.Record(i)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
		if s.Global[i] != uint64(100+i) || s.Run[i] != int32(i%2) {
			t.Fatalf("row %d global/run = %d/%d", i, s.Global[i], s.Run[i])
		}
	}
	if len(s.Strs) != 1 {
		t.Fatalf("interning failed: %d distinct strings, want 1", len(s.Strs))
	}
	if s.EventArgs(0) != nil {
		t.Fatal("zero-arg record must materialize nil Args")
	}
	if s.Bytes() <= 0 {
		t.Fatal("Bytes must be positive for a non-empty store")
	}
	// Footprint must scale with the data actually held: at least the raw
	// column widths, at most a small constant factor over them.
	min := int64(s.Len()) * 32
	if got := s.Bytes(); got < min || got > 8*min {
		t.Fatalf("Bytes = %d, want within [%d, %d]", got, min, 8*min)
	}
}

func TestEmptyStore(t *testing.T) {
	s := NewBuilder(0, 0).Done()
	if s.Len() != 0 {
		t.Fatalf("empty store len = %d", s.Len())
	}
	if s.Bytes() < 0 {
		t.Fatal("negative footprint")
	}
}
