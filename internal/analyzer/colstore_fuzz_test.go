package analyzer_test

// FuzzColumnarRoundTrip drives mutated trace images through the salvage
// loader and the columnar store: whatever events salvage recovers must
// survive materialization (Events) and re-ingestion (SetEvents)
// unchanged, the analysis kernels must run on the round-tripped store
// without panicking, and the footprint must stay positive.

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// buildColFuzzTrace produces a structurally valid two-core trace image
// for mutation, including a string-carrying record so the intern table
// is exercised.
func buildColFuzzTrace(tb testing.TB) []byte {
	tb.Helper()
	var out bytes.Buffer
	w, err := traceio.NewWriter(&out, traceio.Header{
		Version: traceio.Version, NumSPEs: 8, TimebaseDiv: 40, ClockHz: 3_200_000_000,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteMeta(&traceio.Meta{
		Workload: "fuzz",
		Anchors: []traceio.Anchor{
			{SPE: 0, Timebase: 100, Loaded: 0xFFFFFFFF, Program: "p"},
			{SPE: 1, Timebase: 120, Loaded: 0xFFFFFFFF, Program: "p"},
		},
	}); err != nil {
		tb.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		var data []byte
		sd := event.Record{ID: event.StringDef, Core: uint8(c), Flags: event.FlagDecrTime | event.FlagHasStr,
			Time: 1, Args: []uint64{uint64(c + 1)}, Str: "fuzz-name"}
		data, err = sd.AppendTo(data)
		if err != nil {
			tb.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			r := event.Record{ID: event.SPEMFCGet, Core: uint8(c), Flags: event.FlagDecrTime,
				Time: uint64(10 + i*10), Args: []uint64{0, 64, 128, uint64(i % 16)}}
			data, err = r.AppendTo(data)
			if err != nil {
				tb.Fatal(err)
			}
		}
		if err := w.WriteChunk(traceio.Chunk{Core: uint8(c), AnchorIdx: uint16(c), Data: data}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return out.Bytes()
}

func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint8(0), uint8(0x5A), uint16(0))
	f.Add(uint32(30), uint8(1), uint8(0xC5), uint16(0))
	f.Add(uint32(60), uint8(2), uint8(0), uint16(0))
	f.Add(uint32(100), uint8(0), uint8(0xFF), uint16(50))
	f.Add(uint32(0), uint8(3), uint8(0), uint16(9))

	f.Fuzz(func(t *testing.T, pos uint32, op, val uint8, cut uint16) {
		data := append([]byte(nil), buildColFuzzTrace(t)...)
		p := int(pos) % len(data)
		switch op % 4 {
		case 0: // flip
			data[p] ^= val | 1
		case 1: // insert
			data = append(data[:p], append([]byte{val}, data[p:]...)...)
		case 2: // delete
			data = append(data[:p], data[p+1:]...)
		case 3: // truncate from the end
			n := int(cut) % (len(data) + 1)
			data = data[:len(data)-n]
		}
		if int(cut) > 0 && op%4 != 3 {
			n := int(cut) % (len(data) + 1)
			data = data[:len(data)-n]
		}

		d := analyzer.DoctorData(data)
		if d == nil || d.Trace == nil {
			return // nothing recoverable
		}
		tr := d.Trace

		evs := tr.Events()
		rt := &analyzer.Trace{Meta: tr.Meta, Strings: tr.Strings, Confidence: tr.Confidence}
		rt.SetEvents(evs)
		if tr.NumEvents() != rt.NumEvents() {
			t.Fatalf("round trip lost events: %d -> %d", tr.NumEvents(), rt.NumEvents())
		}
		for i, n := 0, tr.NumEvents(); i < n; i++ {
			if !reflect.DeepEqual(tr.Event(i), rt.Event(i)) {
				t.Fatalf("event %d differs after round trip:\nwant %+v\ngot  %+v",
					i, tr.Event(i), rt.Event(i))
			}
		}

		// The kernels must run on the round-tripped store without
		// panicking, salvaged input or not.
		analyzer.Profile(rt)
		analyzer.ComputeCriticalPath(rt)
		analyzer.Intervals(rt)
		analyzer.PPEIntervals(rt)
		analyzer.FindGaps(rt, 1)

		if tr.Footprint() <= 0 || rt.Footprint() <= 0 {
			t.Fatalf("footprint not positive: %d / %d", tr.Footprint(), rt.Footprint())
		}
	})
}
