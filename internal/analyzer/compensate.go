package analyzer

import (
	"fmt"
	"io"

	"github.com/celltrace/pdt/internal/core/event"
)

// Compensation estimates what one SPE run would have measured without
// tracing, by subtracting the known instrumentation costs the trace
// itself documents: the per-record cost (recorded in the metadata) times
// the record count, plus the observed buffer-flush time. This is the
// analysis-side answer to the paper's discussion of tracing's impact on
// the measurements: the perturbation is bounded and largely correctable
// because the tracer accounts for itself.
type Compensation struct {
	Run     int
	Core    uint8
	Records int // SPE records of this run (flush records excluded)
	// InstrTicks is records x per-record cost, in timebase ticks.
	InstrTicks uint64
	// FlushTicks is the observed trace-flush time.
	FlushTicks uint64
	// Wall and CorrectedWall are the measured and compensated run times.
	Wall, CorrectedWall uint64
	// Compute and CorrectedCompute are measured and compensated compute.
	Compute, CorrectedCompute uint64
}

// OverheadPct returns the estimated tracing overhead of the run.
func (c *Compensation) OverheadPct() float64 {
	if c.CorrectedWall == 0 {
		return 0
	}
	return 100 * float64(c.Wall-c.CorrectedWall) / float64(c.CorrectedWall)
}

// Compensate computes per-run compensation from the trace's own metadata.
// Cross-SPE coupling (a stall shortened or lengthened by someone else's
// instrumentation) is not correctable from a single trace; the paper's
// negative-overhead pipeline case is exactly that residual.
func Compensate(tr *Trace) []Compensation {
	cpt := tr.CyclesPerTick()
	perRecTicks := float64(tr.Meta.SPEEventCost) / float64(cpt)
	s := Summarize(tr)
	out := make([]Compensation, 0, len(s.Runs))
	for i := range s.Runs {
		r := &s.Runs[i]
		c := Compensation{
			Run: r.Run, Core: r.Core,
			Wall:       r.Wall(),
			Compute:    r.StateTicks[StateCompute],
			FlushTicks: r.StateTicks[StateFlush],
		}
		for _, e := range tr.RunEvents(r.Run) {
			if e.ID != event.SPETraceFlush {
				c.Records++
			}
		}
		c.InstrTicks = uint64(float64(c.Records) * perRecTicks)
		sub := c.InstrTicks + c.FlushTicks
		if sub < c.Wall {
			c.CorrectedWall = c.Wall - sub
		}
		if c.InstrTicks < c.Compute {
			// Instrumentation cycles are charged inside what the
			// interval builder classifies as compute.
			c.CorrectedCompute = c.Compute - c.InstrTicks
		}
		out = append(out, c)
	}
	return out
}

// WriteCompensation renders the compensation report.
func WriteCompensation(tr *Trace, w io.Writer) {
	if tr.Meta.SPEEventCost == 0 {
		fmt.Fprintln(w, "trace metadata carries no instrumentation costs; cannot compensate")
		return
	}
	fmt.Fprintf(w, "per-record cost: %d cycles (SPE), %d (PPE)\n\n",
		tr.Meta.SPEEventCost, tr.Meta.PPEEventCost)
	fmt.Fprintf(w, "%-4s %-4s %8s %10s %10s %12s %12s %9s\n",
		"run", "core", "records", "instr", "flush", "wall", "corrected", "overhead")
	for _, c := range Compensate(tr) {
		fmt.Fprintf(w, "%-4d %-4d %8d %10d %10d %12d %12d %8.2f%%\n",
			c.Run, c.Core, c.Records, c.InstrTicks, c.FlushTicks,
			c.Wall, c.CorrectedWall, c.OverheadPct())
	}
}
