package analyzer

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
)

func TestCompensateRecoversUntracedTime(t *testing.T) {
	// A known workload: N user events separated by `gap` compute cycles.
	// Untraced per-SPE busy time is ~N*gap; traced adds N*eventCost plus
	// flushes. Compensation must land within a few percent of truth.
	const events, gap = 2000, 500
	prog := func(spu cell.SPU) uint32 {
		for i := 0; i < events; i++ {
			spu.Compute(gap)
			core.User(spu, 1, uint64(i), 0)
		}
		return 0
	}
	run := func(traced bool) (uint64, *Trace) {
		mc := cell.DefaultConfig()
		mc.NumSPEs = 2
		mc.MemSize = 32 * cell.MiB
		m := cell.NewMachine(mc)
		var s *core.Session
		if traced {
			s = core.NewSession(m, core.DefaultTraceConfig())
			s.Attach()
		}
		m.RunMain(func(h cell.Host) {
			a := h.Run(0, "comp", prog)
			b := h.Run(1, "comp", prog)
			h.Wait(a)
			h.Wait(b)
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if !traced {
			return m.Now(), nil
		}
		var buf bytes.Buffer
		if err := s.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		tr, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return m.Now(), tr
	}
	_, tr := run(true)
	comps := Compensate(tr)
	if len(comps) != 2 {
		t.Fatalf("compensations = %d", len(comps))
	}
	truthTicks := float64(events*gap) / 40 // per-run busy in timebase ticks
	for _, c := range comps {
		if c.Records < events {
			t.Fatalf("run %d records = %d", c.Run, c.Records)
		}
		rawErr := math.Abs(float64(c.Wall)-truthTicks) / truthTicks
		corrErr := math.Abs(float64(c.CorrectedWall)-truthTicks) / truthTicks
		if corrErr > 0.05 {
			t.Fatalf("run %d corrected wall %d vs truth %.0f (%.1f%% off)",
				c.Run, c.CorrectedWall, truthTicks, 100*corrErr)
		}
		if corrErr >= rawErr {
			t.Fatalf("run %d: compensation did not improve (raw %.3f corrected %.3f)",
				c.Run, rawErr, corrErr)
		}
		if c.OverheadPct() <= 0 {
			t.Fatalf("run %d overhead %.2f%%", c.Run, c.OverheadPct())
		}
	}
}

func TestWriteCompensation(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(0, "wc", func(spu cell.SPU) uint32 {
			spu.Get(0, 0, 1024, 0)
			spu.WaitTagAll(1)
			return 0
		}))
	})
	var buf bytes.Buffer
	WriteCompensation(tr, &buf)
	for _, want := range []string{"per-record cost", "corrected", "overhead"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q:\n%s", want, buf.String())
		}
	}
}

func TestWriteCompensationNoCosts(t *testing.T) {
	tr := &Trace{}
	var buf bytes.Buffer
	WriteCompensation(tr, &buf)
	if !strings.Contains(buf.String(), "cannot compensate") {
		t.Fatalf("output: %s", buf.String())
	}
}
