package analyzer

import (
	"fmt"
	"io"
	"sort"

	"github.com/celltrace/pdt/internal/core/event"
)

// Critical-path analysis walks the chain of binding constraints backwards
// from the last event in the trace: at every step the predecessor is the
// dependency that completed last — the same-core predecessor event, or the
// cross-core sender that the event was waiting for. The result explains
// *why* the run took as long as it did, attributing wall time to cores.
//
// Cross-core dependencies recovered from the trace:
//
//   - PPE_SPE_START        -> SPE_PROGRAM_START       (program launch)
//   - SPE_PROGRAM_END      -> PPE_WAIT_EXIT           (join)
//   - SPE_WRITE_OUT_MBOX_EXIT -> PPE_READ_OUT_MBOX_EXIT (FIFO per SPE)
//   - PPE_WRITE_IN_MBOX_EXIT  -> SPE_READ_IN_MBOX_EXIT  (FIFO per SPE)
//   - PPE_WRITE_SIGNAL / SPE_SNDSIG -> SPE_READ_SIGNAL_EXIT (FIFO per SPE+reg)
//
// Atomic and barrier orderings are not modeled (the spin is visible as
// compute on the waiting core), which the report notes.

// PathSegment is one hop of the critical path.
type PathSegment struct {
	Core  uint8 // core the time was spent on (receiver side)
	Run   int
	Start uint64 // timebase ticks
	End   uint64
	// Via names the event at the segment's end.
	Via event.ID
	// Cross marks a hop that jumped cores through a dependency.
	Cross bool
}

// Dur returns the segment length.
func (s PathSegment) Dur() uint64 { return s.End - s.Start }

// CriticalPath is the full analysis result.
type CriticalPath struct {
	// Segments from earliest to latest.
	Segments []PathSegment
	// CoreTicks attributes path time per core (event.CorePPE for PPE).
	CoreTicks map[uint8]uint64
	// Total is the covered span.
	Total uint64
}

// ComputeCriticalPath runs the backward walk.
func ComputeCriticalPath(tr *Trace) *CriticalPath {
	cp := &CriticalPath{CoreTicks: map[uint8]uint64{}}
	n := len(tr.Events)
	if n == 0 {
		return cp
	}

	// prevOnCore[i] = index of the previous event on the same core.
	prevOnCore := make([]int, n)
	lastOnCore := map[uint8]int{}
	for i := range tr.Events {
		c := tr.Events[i].Core
		if j, ok := lastOnCore[c]; ok {
			prevOnCore[i] = j
		} else {
			prevOnCore[i] = -1
		}
		lastOnCore[c] = i
	}

	// crossDep[i] = index of the cross-core sender event, or -1.
	crossDep := make([]int, n)
	for i := range crossDep {
		crossDep[i] = -1
	}
	type fifo struct{ q []int }
	push := func(f *fifo, i int) { f.q = append(f.q, i) }
	pop := func(f *fifo) int {
		if len(f.q) == 0 {
			return -1
		}
		v := f.q[0]
		f.q = f.q[1:]
		return v
	}
	outMbox := map[uint8]*fifo{}  // SPE -> pending out-mbox writes
	inMbox := map[uint64]*fifo{}  // spe arg -> pending PPE in-mbox writes
	signals := map[string]*fifo{} // "spe/reg" -> pending signal sends
	starts := map[uint64]*fifo{}  // spe arg -> pending PPE starts
	ends := map[uint8]*fifo{}     // SPE -> pending program ends

	ensure := func(m map[uint8]*fifo, k uint8) *fifo {
		f := m[k]
		if f == nil {
			f = &fifo{}
			m[k] = f
		}
		return f
	}
	ensure64 := func(m map[uint64]*fifo, k uint64) *fifo {
		f := m[k]
		if f == nil {
			f = &fifo{}
			m[k] = f
		}
		return f
	}
	ensureS := func(m map[string]*fifo, k string) *fifo {
		f := m[k]
		if f == nil {
			f = &fifo{}
			m[k] = f
		}
		return f
	}

	for i := range tr.Events {
		e := &tr.Events[i]
		switch e.ID {
		case event.PPESPEStart:
			push(ensure64(starts, e.Args[0]), i)
		case event.SPEProgramStart:
			crossDep[i] = pop(ensure64(starts, uint64(e.Core)))
		case event.SPEProgramEnd:
			push(ensure(ends, e.Core), i)
		case event.PPEWaitExit:
			crossDep[i] = pop(ensure(ends, uint8(e.Args[0])))
		case event.SPEWriteOutMboxExit, event.SPEWriteIntrMboxExit:
			push(ensure(outMbox, e.Core), i)
		case event.PPEReadOutMboxExit, event.PPEReadIntrMboxExit:
			crossDep[i] = pop(ensure(outMbox, uint8(e.Args[0])))
		case event.PPEWriteInMboxExit:
			push(ensure64(inMbox, e.Args[0]), i)
		case event.SPEReadInMboxExit:
			crossDep[i] = pop(ensure64(inMbox, uint64(e.Core)))
		case event.PPEWriteSignal:
			push(ensureS(signals, fmt.Sprintf("%d/%d", e.Args[0], e.Args[1])), i)
		case event.SPESndsig:
			push(ensureS(signals, fmt.Sprintf("%d/%d", e.Args[0], e.Args[1])), i)
		case event.SPEReadSignalExit:
			crossDep[i] = pop(ensureS(signals, fmt.Sprintf("%d/%d", e.Core, e.Args[0])))
		}
	}

	// Backward walk from the last event.
	cur := n - 1
	for cur >= 0 {
		e := &tr.Events[cur]
		prev := prevOnCore[cur]
		cross := crossDep[cur]
		// The binding predecessor is the later of the two.
		next := prev
		isCross := false
		if cross >= 0 && (prev < 0 || tr.Events[cross].Global > tr.Events[prev].Global) {
			next = cross
			isCross = true
		}
		start := uint64(0)
		if next >= 0 {
			start = tr.Events[next].Global
		} else if len(tr.Events) > 0 {
			start = tr.Events[0].Global
		}
		if e.Global > start {
			cp.Segments = append(cp.Segments, PathSegment{
				Core: e.Core, Run: e.Run, Start: start, End: e.Global,
				Via: e.ID, Cross: isCross,
			})
			cp.CoreTicks[e.Core] += e.Global - start
		}
		cur = next
	}
	// Reverse into chronological order.
	for i, j := 0, len(cp.Segments)-1; i < j; i, j = i+1, j-1 {
		cp.Segments[i], cp.Segments[j] = cp.Segments[j], cp.Segments[i]
	}
	for _, t := range cp.CoreTicks {
		cp.Total += t
	}
	return cp
}

// WriteCriticalPath renders the analysis: per-core attribution and the
// largest segments.
func WriteCriticalPath(tr *Trace, w io.Writer, topN int) {
	cp := ComputeCriticalPath(tr)
	if cp.Total == 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	fmt.Fprintf(w, "critical path: %d timebase ticks across %d segments\n", cp.Total, len(cp.Segments))
	fmt.Fprintln(w, "note: atomic/barrier orderings appear as compute on the waiting core")
	cores := make([]int, 0, len(cp.CoreTicks))
	for c := range cp.CoreTicks {
		cores = append(cores, int(c))
	}
	sort.Ints(cores)
	for _, c := range cores {
		name := event.CoreName(uint8(c))
		t := cp.CoreTicks[uint8(c)]
		fmt.Fprintf(w, "  %-6s %10d ticks (%.1f%%)\n", name, t, 100*float64(t)/float64(cp.Total))
	}
	segs := append([]PathSegment(nil), cp.Segments...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].Dur() > segs[j].Dur() })
	if topN > len(segs) {
		topN = len(segs)
	}
	fmt.Fprintf(w, "largest segments:\n")
	for _, s := range segs[:topN] {
		name := event.CoreName(s.Core)
		kind := "local"
		if s.Cross {
			kind = "cross"
		}
		fmt.Fprintf(w, "  %-6s [%d,%d) %8d ticks %-5s ending at %s\n",
			name, s.Start, s.End, s.Dur(), kind, s.Via)
	}
}
