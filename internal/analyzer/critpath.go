package analyzer

import (
	"fmt"
	"io"
	"sort"

	"github.com/celltrace/pdt/internal/analyzer/colstore"
	"github.com/celltrace/pdt/internal/core/event"
)

// Critical-path analysis walks the chain of binding constraints backwards
// from the last event in the trace: at every step the predecessor is the
// dependency that completed last — the same-core predecessor event, or the
// cross-core sender that the event was waiting for. The result explains
// *why* the run took as long as it did, attributing wall time to cores.
//
// Cross-core dependencies recovered from the trace:
//
//   - PPE_SPE_START        -> SPE_PROGRAM_START       (program launch)
//   - SPE_PROGRAM_END      -> PPE_WAIT_EXIT           (join)
//   - SPE_WRITE_OUT_MBOX_EXIT -> PPE_READ_OUT_MBOX_EXIT (FIFO per SPE)
//   - PPE_WRITE_IN_MBOX_EXIT  -> SPE_READ_IN_MBOX_EXIT  (FIFO per SPE)
//   - PPE_WRITE_SIGNAL / SPE_SNDSIG -> SPE_READ_SIGNAL_EXIT (FIFO per SPE+reg)
//
// Atomic and barrier orderings are not modeled (the spin is visible as
// compute on the waiting core), which the report notes.
//
// The analysis has three stages: two full-stream preparation scans — the
// same-core predecessor index and the cross-core dependency match — and
// the backward walk. The walk is inherently sequential (each hop depends
// on the previous), but the preparation is not: the predecessor index is
// independent per core, and the five dependency channels (start, join,
// out-mbox, in-mbox, signal) touch disjoint event ids and therefore
// disjoint slots of the dependency array. All scans read the columnar
// store — the channel matchers walk the 2-byte ID column and touch
// arguments only on the rare matching rows. ComputeCriticalPath runs the
// scans concurrently on a bounded pool once the trace is past the
// adaptive-parallelism threshold; ComputeCriticalPathSerial is the
// single-threaded reference it is tested against.

// PathSegment is one hop of the critical path.
type PathSegment struct {
	Core  uint8 // core the time was spent on (receiver side)
	Run   int
	Start uint64 // timebase ticks
	End   uint64
	// Via names the event at the segment's end.
	Via event.ID
	// Cross marks a hop that jumped cores through a dependency.
	Cross bool
}

// Dur returns the segment length.
func (s PathSegment) Dur() uint64 { return s.End - s.Start }

// CriticalPath is the full analysis result.
type CriticalPath struct {
	// Segments from earliest to latest.
	Segments []PathSegment
	// CoreTicks attributes path time per core (event.CorePPE for PPE).
	CoreTicks map[uint8]uint64
	// Total is the covered span.
	Total uint64
}

// fifo is one dependency channel queue: pending sender event indices.
type fifo struct{ q []int }

func (f *fifo) push(i int) { f.q = append(f.q, i) }
func (f *fifo) pop() int {
	if len(f.q) == 0 {
		return -1
	}
	v := f.q[0]
	f.q = f.q[1:]
	return v
}

func ensureFifo[K comparable](m map[K]*fifo, k K) *fifo {
	f := m[k]
	if f == nil {
		f = &fifo{}
		m[k] = f
	}
	return f
}

// sigKey identifies one signal-notification channel: target SPE + register.
type sigKey struct{ spe, reg uint64 }

// arg0 returns event i's first argument word.
func arg0(s *colstore.Store, i int) uint64 { return s.Args[s.ArgOff[i]] }

// arg1 returns event i's second argument word.
func arg1(s *colstore.Store, i int) uint64 { return s.Args[s.ArgOff[i]+1] }

// scanStarts matches program launches: PPE_SPE_START -> SPE_PROGRAM_START.
func scanStarts(s *colstore.Store, crossDep []int) {
	starts := map[uint64]*fifo{}
	for i, id := range s.ID {
		switch id {
		case event.PPESPEStart:
			ensureFifo(starts, arg0(s, i)).push(i)
		case event.SPEProgramStart:
			crossDep[i] = ensureFifo(starts, uint64(s.Core[i])).pop()
		}
	}
}

// scanEnds matches joins: SPE_PROGRAM_END -> PPE_WAIT_EXIT.
func scanEnds(s *colstore.Store, crossDep []int) {
	ends := map[uint8]*fifo{}
	for i, id := range s.ID {
		switch id {
		case event.SPEProgramEnd:
			ensureFifo(ends, s.Core[i]).push(i)
		case event.PPEWaitExit:
			crossDep[i] = ensureFifo(ends, uint8(arg0(s, i))).pop()
		}
	}
}

// scanOutMbox matches the outbound mailbox FIFO per SPE.
func scanOutMbox(s *colstore.Store, crossDep []int) {
	outMbox := map[uint8]*fifo{}
	for i, id := range s.ID {
		switch id {
		case event.SPEWriteOutMboxExit, event.SPEWriteIntrMboxExit:
			ensureFifo(outMbox, s.Core[i]).push(i)
		case event.PPEReadOutMboxExit, event.PPEReadIntrMboxExit:
			crossDep[i] = ensureFifo(outMbox, uint8(arg0(s, i))).pop()
		}
	}
}

// scanInMbox matches the inbound mailbox FIFO per SPE.
func scanInMbox(s *colstore.Store, crossDep []int) {
	inMbox := map[uint64]*fifo{}
	for i, id := range s.ID {
		switch id {
		case event.PPEWriteInMboxExit:
			ensureFifo(inMbox, arg0(s, i)).push(i)
		case event.SPEReadInMboxExit:
			crossDep[i] = ensureFifo(inMbox, uint64(s.Core[i])).pop()
		}
	}
}

// scanSignals matches the signal-notification FIFO per SPE+register.
func scanSignals(s *colstore.Store, crossDep []int) {
	signals := map[sigKey]*fifo{}
	for i, id := range s.ID {
		switch id {
		case event.PPEWriteSignal, event.SPESndsig:
			ensureFifo(signals, sigKey{arg0(s, i), arg1(s, i)}).push(i)
		case event.SPEReadSignalExit:
			crossDep[i] = ensureFifo(signals, sigKey{uint64(s.Core[i]), arg0(s, i)}).pop()
		}
	}
}

// ComputeCriticalPath runs the backward walk. The sharded preparation
// (per-core predecessor blocks off the core index, per-channel ID-column
// scans) beats the serial reference's combined passes at every size, so
// it always runs; adaptive parallelism only decides whether the shards
// go to a worker pool or execute inline on the calling goroutine (small
// traces and single-processor hosts, where pool startup is pure loss).
func ComputeCriticalPath(tr *Trace) *CriticalPath {
	s := tr.col
	if s == nil {
		return ComputeCriticalPathSerial(tr)
	}
	n := s.Len()
	prevOnCore := make([]int, n)
	crossDep := make([]int, n)
	for i := range crossDep {
		crossDep[i] = -1
	}

	// One task per core for the predecessor index (the per-core index
	// blocks are stream-ordered rows of the store), plus one task per
	// dependency channel. Tasks write disjoint array slots.
	cores := tr.Cores()
	tasks := make([]func(), 0, len(cores)+5)
	for _, c := range cores {
		seqs := tr.coreSeq[c]
		tasks = append(tasks, func() {
			prev := -1
			for _, seq := range seqs {
				prevOnCore[seq] = prev
				prev = int(seq)
			}
		})
	}
	tasks = append(tasks,
		func() { scanStarts(s, crossDep) },
		func() { scanEnds(s, crossDep) },
		func() { scanOutMbox(s, crossDep) },
		func() { scanInMbox(s, crossDep) },
		func() { scanSignals(s, crossDep) },
	)
	workers := 0 // GOMAXPROCS
	if !tr.parallelWorthwhile() {
		workers = 1 // inline: same shards, no pool
	}
	runParallel(workers, len(tasks), func(i int) { tasks[i]() })
	return walkCriticalPath(tr, prevOnCore, crossDep)
}

// ComputeCriticalPathSerial is the single-threaded reference: one scan
// builds the per-core predecessor index, one scan matches all five
// dependency channels, then the shared backward walk runs.
func ComputeCriticalPathSerial(tr *Trace) *CriticalPath {
	n := tr.NumEvents()
	if n == 0 {
		return &CriticalPath{CoreTicks: map[uint8]uint64{}}
	}
	s := tr.col

	// prevOnCore[i] = index of the previous event on the same core.
	prevOnCore := make([]int, n)
	lastOnCore := map[uint8]int{}
	for i, c := range s.Core {
		if j, ok := lastOnCore[c]; ok {
			prevOnCore[i] = j
		} else {
			prevOnCore[i] = -1
		}
		lastOnCore[c] = i
	}

	// crossDep[i] = index of the cross-core sender event, or -1.
	crossDep := make([]int, n)
	for i := range crossDep {
		crossDep[i] = -1
	}
	outMbox := map[uint8]*fifo{}  // SPE -> pending out-mbox writes
	inMbox := map[uint64]*fifo{}  // spe arg -> pending PPE in-mbox writes
	signals := map[sigKey]*fifo{} // spe+reg -> pending signal sends
	starts := map[uint64]*fifo{}  // spe arg -> pending PPE starts
	ends := map[uint8]*fifo{}     // SPE -> pending program ends

	for i, id := range s.ID {
		switch id {
		case event.PPESPEStart:
			ensureFifo(starts, arg0(s, i)).push(i)
		case event.SPEProgramStart:
			crossDep[i] = ensureFifo(starts, uint64(s.Core[i])).pop()
		case event.SPEProgramEnd:
			ensureFifo(ends, s.Core[i]).push(i)
		case event.PPEWaitExit:
			crossDep[i] = ensureFifo(ends, uint8(arg0(s, i))).pop()
		case event.SPEWriteOutMboxExit, event.SPEWriteIntrMboxExit:
			ensureFifo(outMbox, s.Core[i]).push(i)
		case event.PPEReadOutMboxExit, event.PPEReadIntrMboxExit:
			crossDep[i] = ensureFifo(outMbox, uint8(arg0(s, i))).pop()
		case event.PPEWriteInMboxExit:
			ensureFifo(inMbox, arg0(s, i)).push(i)
		case event.SPEReadInMboxExit:
			crossDep[i] = ensureFifo(inMbox, uint64(s.Core[i])).pop()
		case event.PPEWriteSignal:
			ensureFifo(signals, sigKey{arg0(s, i), arg1(s, i)}).push(i)
		case event.SPESndsig:
			ensureFifo(signals, sigKey{arg0(s, i), arg1(s, i)}).push(i)
		case event.SPEReadSignalExit:
			crossDep[i] = ensureFifo(signals, sigKey{uint64(s.Core[i]), arg0(s, i)}).pop()
		}
	}
	return walkCriticalPath(tr, prevOnCore, crossDep)
}

// walkCriticalPath is the sequential backward walk over the prepared
// predecessor and dependency indexes, shared by both implementations.
func walkCriticalPath(tr *Trace, prevOnCore, crossDep []int) *CriticalPath {
	s := tr.col
	cp := &CriticalPath{CoreTicks: map[uint8]uint64{}}
	cur := s.Len() - 1
	for cur >= 0 {
		prev := prevOnCore[cur]
		cross := crossDep[cur]
		// The binding predecessor is the later of the two.
		next := prev
		isCross := false
		if cross >= 0 && (prev < 0 || s.Global[cross] > s.Global[prev]) {
			next = cross
			isCross = true
		}
		start := uint64(0)
		if next >= 0 {
			start = s.Global[next]
		} else if s.Len() > 0 {
			start = s.Global[0]
		}
		if g := s.Global[cur]; g > start {
			cp.Segments = append(cp.Segments, PathSegment{
				Core: s.Core[cur], Run: int(s.Run[cur]), Start: start, End: g,
				Via: s.ID[cur], Cross: isCross,
			})
			cp.CoreTicks[s.Core[cur]] += g - start
		}
		cur = next
	}
	// Reverse into chronological order.
	for i, j := 0, len(cp.Segments)-1; i < j; i, j = i+1, j-1 {
		cp.Segments[i], cp.Segments[j] = cp.Segments[j], cp.Segments[i]
	}
	for _, t := range cp.CoreTicks {
		cp.Total += t
	}
	return cp
}

// WriteCriticalPath renders the analysis: per-core attribution and the
// largest segments.
func WriteCriticalPath(tr *Trace, w io.Writer, topN int) {
	WriteCriticalPathFrom(ComputeCriticalPath(tr), w, topN)
}

// WriteCriticalPathFrom renders an already-computed critical path, letting
// callers reuse a memoized result.
func WriteCriticalPathFrom(cp *CriticalPath, w io.Writer, topN int) {
	if cp.Total == 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	fmt.Fprintf(w, "critical path: %d timebase ticks across %d segments\n", cp.Total, len(cp.Segments))
	fmt.Fprintln(w, "note: atomic/barrier orderings appear as compute on the waiting core")
	cores := make([]int, 0, len(cp.CoreTicks))
	for c := range cp.CoreTicks {
		cores = append(cores, int(c))
	}
	sort.Ints(cores)
	for _, c := range cores {
		name := event.CoreName(uint8(c))
		t := cp.CoreTicks[uint8(c)]
		fmt.Fprintf(w, "  %-6s %10d ticks (%.1f%%)\n", name, t, 100*float64(t)/float64(cp.Total))
	}
	segs := append([]PathSegment(nil), cp.Segments...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].Dur() > segs[j].Dur() })
	if topN > len(segs) {
		topN = len(segs)
	}
	fmt.Fprintf(w, "largest segments:\n")
	for _, s := range segs[:topN] {
		name := event.CoreName(s.Core)
		kind := "local"
		if s.Cross {
			kind = "cross"
		}
		fmt.Fprintf(w, "  %-6s [%d,%d) %8d ticks %-5s ending at %s\n",
			name, s.Start, s.End, s.Dur(), kind, s.Via)
	}
}
