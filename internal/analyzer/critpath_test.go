package analyzer

import (
	"bytes"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
)

func TestCriticalPathSkewedLoad(t *testing.T) {
	// One SPE does 10x the work: the path must be dominated by it.
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < 4; i++ {
			work := uint64(10000)
			if i == 2 {
				work = 100000
			}
			w := work
			hs = append(hs, h.Run(i, "cp", func(spu cell.SPU) uint32 {
				spu.Compute(w)
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	cp := ComputeCriticalPath(tr)
	if cp.Total == 0 || len(cp.Segments) == 0 {
		t.Fatal("empty critical path")
	}
	if cp.CoreTicks[2] == 0 {
		t.Fatal("heavy SPE not on the path")
	}
	// The heavy SPE must dominate the other SPEs on the path.
	for _, c := range []uint8{0, 1, 3} {
		if cp.CoreTicks[c] > cp.CoreTicks[2]/2 {
			t.Fatalf("SPE%d has %d path ticks vs heavy SPE's %d", c, cp.CoreTicks[c], cp.CoreTicks[2])
		}
	}
	// Segments are chronological and non-overlapping.
	for i := 1; i < len(cp.Segments); i++ {
		if cp.Segments[i].Start < cp.Segments[i-1].End {
			t.Fatalf("segments overlap: %+v then %+v", cp.Segments[i-1], cp.Segments[i])
		}
	}
}

func TestCriticalPathCrossesMailbox(t *testing.T) {
	// PPE waits on a mailbox value the SPE produces late: the path must
	// include a cross hop through the mailbox edge.
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		hd := h.Run(0, "mx", func(spu cell.SPU) uint32 {
			spu.Compute(50000)
			spu.WriteOutMbox(1)
			return 0
		})
		if h.ReadOutMbox(0) != 1 {
			t.Error("wrong value")
		}
		h.Compute(100)
		h.Wait(hd)
	})
	cp := ComputeCriticalPath(tr)
	foundCross := false
	for _, s := range cp.Segments {
		if s.Cross {
			foundCross = true
		}
	}
	if !foundCross {
		t.Fatalf("no cross-core hop on the path: %+v", cp.Segments)
	}
	// The SPE's long compute must be attributed to the SPE, not the PPE.
	if cp.CoreTicks[0] < cp.CoreTicks[event.CorePPE] {
		t.Fatalf("path attribution wrong: SPE %d vs PPE %d",
			cp.CoreTicks[0], cp.CoreTicks[event.CorePPE])
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	cp := ComputeCriticalPath(&Trace{})
	if cp.Total != 0 || len(cp.Segments) != 0 {
		t.Fatal("nonempty path from empty trace")
	}
	var buf bytes.Buffer
	WriteCriticalPath(&Trace{}, &buf, 5)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatalf("output: %s", buf.String())
	}
}

func TestWriteCriticalPath(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(1, "wcp", func(spu cell.SPU) uint32 {
			spu.Compute(5000)
			return 0
		}))
	})
	var buf bytes.Buffer
	WriteCriticalPath(tr, &buf, 5)
	out := buf.String()
	for _, want := range []string{"critical path:", "SPE1", "PPE", "largest segments"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
