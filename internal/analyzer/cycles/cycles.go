// Package cycles detects the repeating event patterns of iterative
// workloads — pipeline block loops, taskfarm rounds, stencil sweeps,
// streamed chunks — and segments each SPE program run into cycles with
// startup / steady-state / drain phase boundaries.
//
// Detection is per run and purely structural: the run's event-ID
// sequence (scanned from the columnar store's ID/Run columns) is
// segmented at every occurrence of a candidate anchor event — once with
// the anchor initiating each cycle and once with it terminating each
// cycle, since an event at the end of the loop body would otherwise
// leave a dangling truncated segment — and the candidate whose
// segmentation looks most like a cycle wins. "Looks like a cycle" is
// scored as the product of four terms:
//
//   - signature regularity: the mean Jaccard similarity between each
//     cycle's distinct-event-ID set and the majority set (IDs present
//     in at least half the cycles). Anchors that fire twice per true
//     iteration produce alternating signatures and score ~0.5.
//   - variety: the majority set's share of the run's distinct IDs. A
//     spin-poll anchor (SPE_ATOMIC_ENTER while waiting for a pipeline
//     producer) segments the wait into perfectly regular {enter, exit}
//     micro-cycles, but its majority set is 2 IDs out of the run's 5+.
//   - duration regularity: 1/(1+CV) of the per-cycle wall times.
//     Half-period anchors split an iteration into a stall part and a
//     compute part with very different durations.
//   - coverage: the fraction of the run's events inside the kept
//     cycles. A burst of identical setup events (e.g. the initial tile
//     loads of a stencil) segments perfectly but covers almost nothing.
//
// Boundary cycles whose signature deviates from the majority set are
// trimmed into the startup/drain phases before scoring, so anchors that
// also fire during load or writeback (DMA tag waits, typically) still
// converge on the configured iteration count.
//
// Overhead-group events (trace flushes) are excluded from anchors and
// signatures: they land wherever the trace buffer happens to fill, so
// two runs of the same workload would otherwise detect different
// patterns. Lifecycle events are likewise excluded (they occur once per
// run by construction).
package cycles

import (
	"math"
	"runtime"
	"sort"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/colstore"
	"github.com/celltrace/pdt/internal/core/event"
)

// Options tunes detection.
type Options struct {
	// MinCycles is the minimum number of anchor occurrences for a
	// candidate segmentation (default 2). Trimming never drops the kept
	// count below it.
	MinCycles int
	// MinScore is the acceptance threshold for the best candidate's
	// score (default 0.4); below it the run reports no cycles.
	MinScore float64
}

func (o Options) withDefaults() Options {
	if o.MinCycles <= 0 {
		o.MinCycles = 2
	}
	if o.MinScore <= 0 {
		o.MinScore = 0.4
	}
	return o
}

// trimThreshold is the Jaccard similarity (vs the majority set) at or
// below which a boundary cycle is folded into the startup or drain
// phase: a taskfarm worker's poison-round or a stencil writeback shares
// about half its signature with a real iteration, a real iteration
// shares clearly more.
const trimThreshold = 0.5

// Stats summarizes one per-cycle metric across the cycles of a run.
type Stats struct {
	Min    uint64
	Max    uint64
	Avg    float64
	Stddev float64 // population stddev; exactly 0 when all values equal
}

// Cycle is one detected iteration of a run.
type Cycle struct {
	Index    int    // 0-based among the kept cycles
	StartSeq int    // first store row of the cycle
	EndSeq   int    // last store row of the cycle (inclusive)
	Start    uint64 // global ticks of the first event
	End      uint64 // global ticks of the last event
	Events   int    // rows in [StartSeq, EndSeq]
	Wall     uint64 // End - Start
	Busy     uint64 // compute-state ticks inside the cycle
	Stall    uint64 // dma+mbox+signal+sync stall ticks inside the cycle
	DMAWait  uint64 // tag-group (DMA) wait ticks inside the cycle
	Sig      uint64 // FNV-1a hash of the cycle's distinct event-ID set
}

// Phases are the run's detected phase boundaries. Startup covers run
// start to the first kept cycle (plus any trimmed leading cycles),
// drain covers everything after the last kept cycle.
type Phases struct {
	StartupTicks uint64
	SteadyTicks  uint64
	DrainTicks   uint64
	SteadyStart  uint64 // global ticks: first kept cycle's start
	SteadyEnd    uint64 // global ticks: last kept cycle's end
}

// Run is the detection result for one SPE program run.
type Run struct {
	Core     uint8
	Run      int
	Detected bool
	Anchor   event.ID // anchor event of the winning segmentation
	Score    float64  // winning candidate's score
	Raw      int      // anchor occurrences before boundary trimming
	Events   int      // events in the run
	Start    uint64   // global ticks of the run's first event
	End      uint64   // global ticks of the run's last event
	Cycles   []Cycle
	Wall     Stats
	Busy     Stats
	Stall    Stats
	DMAWait  Stats
	Phases   Phases
}

// Report is the whole-trace cycle detection result.
type Report struct {
	Workload    string
	Runs        []Run
	TotalCycles int
}

// Detected returns how many runs detected a cycle structure.
func (r *Report) Detected() int {
	n := 0
	for i := range r.Runs {
		if r.Runs[i].Detected {
			n++
		}
	}
	return n
}

// Detect analyzes every SPE program run of the trace. Runs are
// independent, so past the adaptive threshold they are detected
// concurrently; the output is identical to DetectSerial.
func Detect(tr *analyzer.Trace, opt Options) *Report {
	return detect(tr, opt, false)
}

// DetectSerial is the sequential reference for Detect.
func DetectSerial(tr *analyzer.Trace, opt Options) *Report {
	return detect(tr, opt, true)
}

func detect(tr *analyzer.Trace, opt Options, serial bool) *Report {
	opt = opt.withDefaults()
	n := numRuns(tr)
	rep := &Report{Workload: tr.Meta.Workload}
	if n == 0 {
		return rep
	}
	runs := make([]Run, n)
	if serial || n < 2 || runtime.GOMAXPROCS(0) < 2 || tr.NumEvents() < analyzer.ParallelThreshold() {
		for r := 0; r < n; r++ {
			runs[r] = detectRun(tr, r, opt)
		}
	} else {
		analyzer.RunParallel(0, n, func(r int) {
			runs[r] = detectRun(tr, r, opt)
		})
	}
	for i := range runs {
		if runs[i].Events == 0 {
			continue // no rows for this run index
		}
		rep.Runs = append(rep.Runs, runs[i])
		rep.TotalCycles += len(runs[i].Cycles)
	}
	sort.SliceStable(rep.Runs, func(i, j int) bool {
		if rep.Runs[i].Core != rep.Runs[j].Core {
			return rep.Runs[i].Core < rep.Runs[j].Core
		}
		return rep.Runs[i].Run < rep.Runs[j].Run
	})
	return rep
}

// numRuns returns how many SPE run indexes the trace holds: the anchor
// count when metadata is present, otherwise (hand-assembled traces) one
// past the largest Run column value, clamped to a sane bound.
func numRuns(tr *analyzer.Trace) int {
	if n := len(tr.Meta.Anchors); n > 0 {
		return n
	}
	s := tr.Columns()
	if s == nil {
		return 0
	}
	max := -1
	for _, r := range s.Run {
		if int(r) > max {
			max = int(r)
		}
	}
	if max+1 > 1<<16 {
		return 1 << 16
	}
	return max + 1
}

// eligible reports whether an event ID may anchor a cycle or count in a
// cycle signature.
func eligible(id event.ID) bool {
	info, ok := event.Lookup(id)
	return ok && info.Group != event.GroupOverhead && info.Group != event.GroupLifecycle
}

// detectRun runs anchor selection and segmentation on one run.
func detectRun(tr *analyzer.Trace, run int, opt Options) Run {
	seqs := tr.RunSeqs(run)
	s := tr.Columns()
	if len(seqs) == 0 && s != nil {
		// Hand-assembled traces without anchor metadata: scan the column.
		for i, r := range s.Run {
			if int(r) == run {
				seqs = append(seqs, int32(i))
			}
		}
	}
	if len(seqs) == 0 {
		return Run{Run: run}
	}
	out := Run{
		Core:   s.Core[seqs[0]],
		Run:    run,
		Events: len(seqs),
		Start:  s.Global[seqs[0]],
		End:    s.Global[seqs[len(seqs)-1]],
	}

	// Occurrence positions (indexes into seqs) per eligible ID.
	occ := make(map[event.ID][]int32)
	ids := make([]event.ID, 0, 16)
	for j, seq := range seqs {
		id := s.ID[seq]
		if !eligible(id) {
			continue
		}
		if _, seen := occ[id]; !seen {
			ids = append(ids, id)
		}
		occ[id] = append(occ[id], int32(j))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	best := candidate{score: -1}
	sc := newScratch(seqs, s)
	sc.distinct = len(ids)
	for _, id := range ids {
		p := occ[id]
		if len(p) < opt.MinCycles {
			continue
		}
		for _, role := range [2]int{roleInitiator, roleTerminator} {
			c := sc.evaluate(id, p, role, opt)
			if c.better(&best) {
				best = c
			}
		}
	}
	if best.score < opt.MinScore || best.kept < 1 {
		return out
	}
	out.Detected = true
	out.Anchor = best.id
	out.Score = best.score
	out.Raw = best.raw
	out.Cycles = buildCycles(tr, run, seqs, best)
	out.Wall = statsOf(out.Cycles, func(c *Cycle) uint64 { return c.Wall })
	out.Busy = statsOf(out.Cycles, func(c *Cycle) uint64 { return c.Busy })
	out.Stall = statsOf(out.Cycles, func(c *Cycle) uint64 { return c.Stall })
	out.DMAWait = statsOf(out.Cycles, func(c *Cycle) uint64 { return c.DMAWait })

	first, last := &out.Cycles[0], &out.Cycles[len(out.Cycles)-1]
	out.Phases = Phases{
		StartupTicks: first.Start - out.Start,
		SteadyTicks:  last.End - first.Start,
		DrainTicks:   out.End - last.End,
		SteadyStart:  first.Start,
		SteadyEnd:    last.End,
	}
	return out
}

// candidate is one scored anchor segmentation.
type candidate struct {
	id       event.ID
	role     int // roleInitiator or roleTerminator
	score    float64
	raw      int     // anchor occurrences
	front    int     // cycles trimmed into startup
	kept     int     // cycles kept
	firstRow int32   // seqs index of the first kept cycle's first row
	pos      []int32 // anchor positions (indexes into seqs)
	sigs     []uint64
}

// better orders candidates: higher score, then more cycles (finer
// period), then initiator over terminator, then earlier start, then
// lower ID — all deterministic.
func (c *candidate) better(o *candidate) bool {
	if c.score != o.score {
		return c.score > o.score
	}
	if c.kept != o.kept {
		return c.kept > o.kept
	}
	if c.role != o.role {
		return c.role < o.role
	}
	if c.firstRow != o.firstRow {
		return c.firstRow < o.firstRow
	}
	return c.id < o.id
}

// scratch holds the per-run buffers candidate evaluation reuses across
// anchors: the run's row list, the columns, and a generation-stamped
// set for collecting distinct IDs per cycle without reallocating.
type scratch struct {
	seqs     []int32
	ids      []event.ID // ID column value per seqs entry
	global   []uint64   // Global column value per seqs entry
	distinct int        // distinct eligible IDs in the run
	stamp    map[event.ID]int
	gen      int
	sig      []event.ID // scratch for the current cycle's signature
}

func newScratch(seqs []int32, s *colstore.Store) *scratch {
	sc := &scratch{
		seqs:   seqs,
		ids:    make([]event.ID, len(seqs)),
		global: make([]uint64, len(seqs)),
		stamp:  make(map[event.ID]int),
	}
	for j, seq := range seqs {
		sc.ids[j] = s.ID[seq]
		sc.global[j] = s.Global[seq]
	}
	return sc
}

// cycleSig collects the sorted distinct eligible IDs of rows [lo, hi]
// (indexes into seqs). The returned slice is a copy.
func (sc *scratch) cycleSig(lo, hi int32) []event.ID {
	sc.gen++
	sc.sig = sc.sig[:0]
	for j := lo; j <= hi; j++ {
		id := sc.ids[j]
		if sc.stamp[id] == sc.gen {
			continue
		}
		sc.stamp[id] = sc.gen
		if eligible(id) {
			sc.sig = append(sc.sig, id)
		}
	}
	out := make([]event.ID, len(sc.sig))
	copy(out, sc.sig)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Anchor roles: an anchor either initiates its cycle (cycle i spans
// [P_i, P_{i+1})) or terminates it (cycle i spans (P_{i-1}, P_i]).
// Both roles are scored for every anchor: an event early in the loop
// body (a pipeline head's Get) segments cleanly as an initiator, an
// event at the end of the body (a tail stage's mailbox write) leaves a
// dangling truncated segment as an initiator but is exact as a
// terminator.
const (
	roleInitiator = iota
	roleTerminator
)

// segmentBounds returns cycle i's row range (indexes into the run's
// seqs, inclusive) for an anchor position list under the given role.
func segmentBounds(role int, pos []int32, i int, n int32) (lo, hi int32) {
	if role == roleInitiator {
		lo = pos[i]
		hi = n - 1
		if i < len(pos)-1 {
			hi = pos[i+1] - 1
		}
		return lo, hi
	}
	lo = 0
	if i > 0 {
		lo = pos[i-1] + 1
	}
	return lo, pos[i]
}

// evaluate scores one anchor candidate in one role: segment at every
// occurrence, trim deviant boundary cycles, and combine signature
// regularity, variety, duration regularity, and coverage.
func (sc *scratch) evaluate(id event.ID, pos []int32, role int, opt Options) candidate {
	k := len(pos)
	n := int32(len(sc.seqs))
	sigs := make([][]event.ID, k)
	for i := 0; i < k; i++ {
		lo, hi := segmentBounds(role, pos, i, n)
		sigs[i] = sc.cycleSig(lo, hi)
	}

	// Majority set: IDs present in at least half the cycles (>= not >:
	// a stream chunk's prefetch is absent from the final chunks, landing
	// in exactly half the cycles of a 4-chunk partition) — but always at
	// least two, so a 2-occurrence candidate's majority is the sigs'
	// intersection rather than their union.
	counts := make(map[event.ID]int)
	for _, sig := range sigs {
		for _, id := range sig {
			counts[id]++
		}
	}
	var maj []event.ID
	for id, c := range counts {
		if c >= 2 && c*2 >= k {
			maj = append(maj, id)
		}
	}
	sort.Slice(maj, func(i, j int) bool { return maj[i] < maj[j] })

	jacs := make([]float64, k)
	for i, sig := range sigs {
		jacs[i] = jaccard(sig, maj)
	}

	// Trim deviant boundary cycles into startup/drain. Trimming may go
	// below MinCycles (a taskfarm worker that claimed one task plus the
	// poison round genuinely has one cycle) but never to zero.
	front, back := 0, 0
	for front+back < k-1 && jacs[front] <= trimThreshold {
		front++
	}
	for front+back < k-1 && jacs[k-1-back] <= trimThreshold {
		back++
	}
	kept := k - front - back

	sum := 0.0
	for i := front; i < k-back; i++ {
		sum += jacs[i]
	}
	regularity := sum / float64(kept)

	// Duration regularity. Boundary cycles legitimately run long or
	// short (a pipeline's first block waits for the pipe to fill), so
	// with enough cycles the CV is taken over the middle ones only.
	walls := make([]float64, 0, kept)
	for i := front; i < k-back; i++ {
		lo, hi := segmentBounds(role, pos, i, n)
		walls = append(walls, float64(sc.global[hi]-sc.global[lo]))
	}
	if len(walls) >= 4 {
		walls = walls[1 : len(walls)-1]
	}
	mean := 0.0
	for _, w := range walls {
		mean += w
	}
	mean /= float64(len(walls))
	durFactor := 1.0
	if mean > 0 {
		varsum := 0.0
		for _, w := range walls {
			d := w - mean
			varsum += d * d
		}
		cv := math.Sqrt(varsum/float64(len(walls))) / mean
		durFactor = 1 / (1 + cv)
	}

	// Coverage: fraction of the run's events inside the kept cycles.
	loRow, _ := segmentBounds(role, pos, front, n)
	_, hiRow := segmentBounds(role, pos, front+kept-1, n)
	coverage := float64(hiRow-loRow+1) / float64(n)

	// Variety: the majority set's share of the run's distinct IDs.
	variety := 1.0
	if sc.distinct > 0 {
		variety = float64(len(maj)) / float64(sc.distinct)
	}

	hashes := make([]uint64, k)
	for i, sig := range sigs {
		hashes[i] = sigHash(sig)
	}
	return candidate{
		id:       id,
		role:     role,
		score:    regularity * variety * durFactor * coverage,
		raw:      k,
		front:    front,
		kept:     kept,
		firstRow: loRow,
		pos:      pos,
		sigs:     hashes,
	}
}

// jaccard computes |a∩b| / |a∪b| over two sorted ID slices; two empty
// sets are identical (similarity 1).
func jaccard(a, b []event.ID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// sigHash is FNV-1a over the sorted distinct ID set.
func sigHash(sig []event.ID) uint64 {
	h := uint64(14695981039346656037)
	for _, id := range sig {
		h ^= uint64(id) & 0xff
		h *= 1099511628211
		h ^= uint64(id) >> 8
		h *= 1099511628211
	}
	return h
}

// buildCycles materializes the winning candidate's kept cycles with
// interval-derived busy/stall/DMA-wait time.
func buildCycles(tr *analyzer.Trace, run int, seqs []int32, best candidate) []Cycle {
	s := tr.Columns()
	n := int32(len(seqs))
	out := make([]Cycle, best.kept)
	for i := 0; i < best.kept; i++ {
		ci := best.front + i
		lo, hi := segmentBounds(best.role, best.pos, ci, n)
		start, end := s.Global[seqs[lo]], s.Global[seqs[hi]]
		out[i] = Cycle{
			Index:    i,
			StartSeq: int(seqs[lo]),
			EndSeq:   int(seqs[hi]),
			Start:    start,
			End:      end,
			Events:   int(hi - lo + 1),
			Wall:     end - start,
			Sig:      best.sigs[ci],
		}
	}

	// Clip the run's state intervals onto the cycles. Both lists are
	// time-ordered, so a single sweep suffices; an interval spanning a
	// cycle boundary contributes its overlap to each side.
	ivs := analyzer.RunIntervals(tr, run)
	p := 0
	for i := range out {
		c := &out[i]
		for p < len(ivs) && ivs[p].End <= c.Start {
			p++
		}
		for q := p; q < len(ivs) && ivs[q].Start < c.End; q++ {
			lo, hi := ivs[q].Start, ivs[q].End
			if lo < c.Start {
				lo = c.Start
			}
			if hi > c.End {
				hi = c.End
			}
			if hi <= lo {
				continue
			}
			d := hi - lo
			switch ivs[q].State {
			case analyzer.StateCompute:
				c.Busy += d
			case analyzer.StateStallDMA:
				c.Stall += d
				c.DMAWait += d
			case analyzer.StateStallMbox, analyzer.StateStallSignal, analyzer.StateStallSync:
				c.Stall += d
			}
		}
	}
	return out
}

// statsOf summarizes one metric across cycles. Stddev is exactly zero
// when every value is equal (byte-identical cycles must not report
// float noise).
func statsOf(cs []Cycle, get func(*Cycle) uint64) Stats {
	if len(cs) == 0 {
		return Stats{}
	}
	st := Stats{Min: get(&cs[0]), Max: get(&cs[0])}
	sum := uint64(0)
	for i := range cs {
		v := get(&cs[i])
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		sum += v
	}
	st.Avg = float64(sum) / float64(len(cs))
	if st.Min == st.Max {
		return st
	}
	varsum := 0.0
	for i := range cs {
		d := float64(get(&cs[i])) - st.Avg
		varsum += d * d
	}
	st.Stddev = math.Sqrt(varsum / float64(len(cs)))
	return st
}
