package cycles_test

// Property suite for cycle detection. The anchors: the detected cycle
// count equals the configured iteration count for the iterative
// workloads (pipeline blocks, taskfarm tasks, stencil sweeps, stream
// chunks), per-cycle stats satisfy min <= avg <= max with stddev
// exactly 0 for byte-identical cycles, phases partition the run, and
// Detect is DeepEqual to DetectSerial for every registered workload
// (run under -race by `make race`).

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cycles"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/harness"
	"github.com/celltrace/pdt/internal/workloads"
)

// cycleParams configures every registered workload small but
// representative; the iterative four get iteration counts the detector
// must reproduce exactly.
var cycleParams = map[string]map[string]string{
	"matmul":    {"n": "64", "t": "16"},
	"fft":       {"n": "256", "batches": "4"},
	"pipeline":  {"blocks": "8", "blockbytes": "1024"},
	"julia":     {"w": "64", "h": "32", "maxiter": "16", "mode": "dynamic"},
	"histogram": {"size": "65536"},
	"synthetic": {"events": "400", "gap": "100"},
	"stream":    {"elements": "131072"},
	"stencil":   {"w": "64", "h": "16", "iters": "4"},
	"sort":      {"elements": "8192", "chunk": "1024"},
	"nbody":     {"n": "64"},
	"taskfarm":  {"tasks": "16", "blockbytes": "1024"},
}

func cycleTrace(t *testing.T, name string) *analyzer.Trace {
	t.Helper()
	params, ok := cycleParams[name]
	if !ok {
		t.Fatalf("no cycle params for workload %q — add it to cycleParams", name)
	}
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{Workload: name, Params: params, Trace: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := analyzer.Load(bytes.NewReader(res.TraceBytes))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestCycleCountsIterativeWorkloads pins detection to the configured
// iteration structure: per-run counts for workloads whose every core
// iterates a fixed number of times (pipeline stages, stencil sweeps),
// cross-core totals for workloads that partition a global work list
// (taskfarm tasks, stream chunks).
func TestCycleCountsIterativeWorkloads(t *testing.T) {
	cases := []struct {
		workload string
		perRun   int // exact cycles per detected run (0 = don't check)
		total    int // exact total across runs (0 = don't check)
	}{
		{"pipeline", 8, 0},  // blocks=8, every stage repeats per block
		{"stencil", 4, 0},   // iters=4 sweeps per SPE
		{"taskfarm", 0, 16}, // tasks=16 distributed across workers
		{"stream", 0, 32},   // elements/streamChunk = 131072/4096 chunks
	}
	for _, tc := range cases {
		t.Run(tc.workload, func(t *testing.T) {
			tr := cycleTrace(t, tc.workload)
			rep := cycles.Detect(tr, cycles.Options{})
			if len(rep.Runs) == 0 {
				t.Fatal("no runs analyzed")
			}
			total := 0
			for _, run := range rep.Runs {
				if !run.Detected {
					t.Errorf("%s run %d: no cycles detected (%d events)",
						event.CoreName(run.Core), run.Run, run.Events)
					continue
				}
				total += len(run.Cycles)
				if tc.perRun > 0 && len(run.Cycles) != tc.perRun {
					t.Errorf("%s run %d: %d cycles (anchor %v, raw %d), want %d",
						event.CoreName(run.Core), run.Run, len(run.Cycles), run.Anchor, run.Raw, tc.perRun)
				}
			}
			if tc.total > 0 && total != tc.total {
				t.Errorf("total cycles = %d, want %d", total, tc.total)
			}
			if rep.TotalCycles != total {
				t.Errorf("TotalCycles = %d, sum = %d", rep.TotalCycles, total)
			}
		})
	}
}

// TestCycleInvariantsAllWorkloads checks the structural invariants on
// every registered workload: stats ordering, cycle ordering and
// containment, phase partition, and metric containment (busy + stall
// never exceeds wall).
func TestCycleInvariantsAllWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			tr := cycleTrace(t, name)
			rep := cycles.Detect(tr, cycles.Options{})
			if rep.Workload != tr.Meta.Workload {
				t.Errorf("workload = %q, want %q", rep.Workload, tr.Meta.Workload)
			}
			for _, run := range rep.Runs {
				checkRun(t, run)
			}
			var buf bytes.Buffer
			rep.Write(&buf)
			if buf.Len() == 0 {
				t.Error("empty text render")
			}
			buf.Reset()
			if err := rep.WriteJSON(&buf); err != nil {
				t.Errorf("WriteJSON: %v", err)
			}
		})
	}
}

func checkRun(t *testing.T, run cycles.Run) {
	t.Helper()
	label := fmt.Sprintf("%s run %d", event.CoreName(run.Core), run.Run)
	if !run.Detected {
		if len(run.Cycles) != 0 {
			t.Errorf("%s: undetected run carries %d cycles", label, len(run.Cycles))
		}
		return
	}
	if len(run.Cycles) < 1 {
		t.Errorf("%s: detected with no cycles", label)
	}
	if run.Raw < len(run.Cycles) {
		t.Errorf("%s: raw %d < kept %d", label, run.Raw, len(run.Cycles))
	}
	for _, st := range []struct {
		name string
		s    cycles.Stats
	}{{"wall", run.Wall}, {"busy", run.Busy}, {"stall", run.Stall}, {"dma-wait", run.DMAWait}} {
		if !(float64(st.s.Min) <= st.s.Avg && st.s.Avg <= float64(st.s.Max)) {
			t.Errorf("%s %s: min %d <= avg %g <= max %d violated", label, st.name, st.s.Min, st.s.Avg, st.s.Max)
		}
		if st.s.Stddev < 0 {
			t.Errorf("%s %s: negative stddev %g", label, st.name, st.s.Stddev)
		}
		if st.s.Min == st.s.Max && st.s.Stddev != 0 {
			t.Errorf("%s %s: constant metric with stddev %g", label, st.name, st.s.Stddev)
		}
	}
	prevEnd := run.Start
	first := true
	for _, c := range run.Cycles {
		if c.Start < run.Start || c.End > run.End || c.End < c.Start {
			t.Errorf("%s cycle %d: span [%d,%d] outside run [%d,%d]", label, c.Index, c.Start, c.End, run.Start, run.End)
		}
		if !first && c.Start < prevEnd {
			t.Errorf("%s cycle %d: overlaps previous (start %d < prev end %d)", label, c.Index, c.Start, prevEnd)
		}
		if c.Wall != c.End-c.Start {
			t.Errorf("%s cycle %d: wall %d != span %d", label, c.Index, c.Wall, c.End-c.Start)
		}
		if c.Busy+c.Stall > c.Wall {
			t.Errorf("%s cycle %d: busy %d + stall %d > wall %d", label, c.Index, c.Busy, c.Stall, c.Wall)
		}
		if c.DMAWait > c.Stall {
			t.Errorf("%s cycle %d: dma-wait %d > stall %d", label, c.Index, c.DMAWait, c.Stall)
		}
		if c.Events <= 0 || c.EndSeq < c.StartSeq {
			t.Errorf("%s cycle %d: bad event span %d [%d,%d]", label, c.Index, c.Events, c.StartSeq, c.EndSeq)
		}
		prevEnd = c.End
		first = false
	}
	ph := run.Phases
	if ph.StartupTicks+ph.SteadyTicks+ph.DrainTicks != run.End-run.Start {
		t.Errorf("%s: phases %d+%d+%d do not partition run wall %d",
			label, ph.StartupTicks, ph.SteadyTicks, ph.DrainTicks, run.End-run.Start)
	}
	if ph.SteadyStart != run.Cycles[0].Start || ph.SteadyEnd != run.Cycles[len(run.Cycles)-1].End {
		t.Errorf("%s: steady span [%d,%d] != cycle span", label, ph.SteadyStart, ph.SteadyEnd)
	}
}

// TestDetectSerialEquivalence: the parallel and serial detectors are
// DeepEqual for every workload (and race-clean under `make race`).
func TestDetectSerialEquivalence(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			tr := cycleTrace(t, name)
			par := cycles.Detect(tr, cycles.Options{})
			ser := cycles.DetectSerial(tr, cycles.Options{})
			if !reflect.DeepEqual(par, ser) {
				t.Errorf("Detect != DetectSerial")
			}
		})
	}
}

// syntheticCycleTrace hand-assembles a run of k byte-identical cycles:
// the same event pattern with the same intra-cycle offsets at a fixed
// period. Stddev of every metric must be exactly zero — float noise in
// the stats pipeline would break the regression gate downstream.
func syntheticCycleTrace(k int) *analyzer.Trace {
	tr := &analyzer.Trace{}
	var evs []analyzer.Event
	add := func(id event.ID, global uint64, args ...uint64) {
		evs = append(evs, analyzer.Event{
			Record: event.Record{ID: id, Core: 0, Args: args},
			Global: global,
			Run:    0,
		})
	}
	const period = 1000
	add(event.SPEProgramStart, 5)
	for i := 0; i < k; i++ {
		base := uint64(100 + i*period)
		add(event.SPEMFCGet, base, 1, 0x1000, 0x2000, 256)
		add(event.SPEWaitTagEnter, base+10, 1<<1)
		add(event.SPEWaitTagExit, base+210, 1<<1)
		add(event.SPEMFCPut, base+700, 1, 0x1000, 0x2000, 256)
	}
	// End at the same tick as the final Put: the last cycle extends to the
	// run's last row by construction, so any gap here would make its wall
	// time differ from the interior cycles'.
	add(event.SPEProgramEnd, uint64(100+(k-1)*period+700), 0)
	tr.SetEvents(evs)
	return tr
}

func TestStddevZeroByteIdenticalCycles(t *testing.T) {
	const k = 6
	tr := syntheticCycleTrace(k)
	rep := cycles.Detect(tr, cycles.Options{})
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(rep.Runs))
	}
	run := rep.Runs[0]
	if !run.Detected {
		t.Fatal("no cycles detected in a perfectly periodic run")
	}
	if len(run.Cycles) != k {
		t.Fatalf("cycles = %d (anchor %v raw %d), want %d", len(run.Cycles), run.Anchor, run.Raw, k)
	}
	for _, st := range []struct {
		name string
		s    cycles.Stats
	}{{"wall", run.Wall}, {"busy", run.Busy}, {"stall", run.Stall}, {"dma-wait", run.DMAWait}} {
		if st.s.Stddev != 0 {
			t.Errorf("%s: stddev = %g over byte-identical cycles, want exactly 0", st.name, st.s.Stddev)
		}
		if st.s.Min != st.s.Max {
			t.Errorf("%s: min %d != max %d over byte-identical cycles", st.name, st.s.Min, st.s.Max)
		}
	}
	if run.DMAWait.Min == 0 {
		t.Error("dma-wait = 0; the synthetic pattern holds a tag wait for 200 ticks per cycle")
	}
	checkRun(t, run)
}

// TestNonIterativeTrace: a run without a repeating pattern reports
// Detected=false with zero cycles (the documented failure semantics of
// /v1/cycles for non-iterative traces).
func TestNonIterativeTrace(t *testing.T) {
	tr := &analyzer.Trace{}
	var evs []analyzer.Event
	evs = append(evs, analyzer.Event{Record: event.Record{ID: event.SPEProgramStart, Core: 0}, Global: 1, Run: 0})
	evs = append(evs, analyzer.Event{Record: event.Record{ID: event.SPEMFCGet, Core: 0, Args: []uint64{1, 0, 0, 64}}, Global: 10, Run: 0})
	evs = append(evs, analyzer.Event{Record: event.Record{ID: event.SPEProgramEnd, Core: 0, Args: []uint64{0}}, Global: 20, Run: 0})
	tr.SetEvents(evs)
	rep := cycles.Detect(tr, cycles.Options{})
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(rep.Runs))
	}
	if rep.Runs[0].Detected {
		t.Error("detected cycles in a single-pass run")
	}
	if rep.TotalCycles != 0 {
		t.Errorf("TotalCycles = %d, want 0", rep.TotalCycles)
	}
	var buf bytes.Buffer
	rep.Write(&buf)
	if err := rep.WriteJSON(&buf); err != nil {
		t.Errorf("WriteJSON: %v", err)
	}
}
