package cycles_test

// FuzzCycles drives mutated/salvaged trace images through cycle
// detection: flip, insert, delete, or truncate a structurally valid
// periodic trace (the FuzzSalvage operation set), salvage whatever is
// recoverable, and assert detection never panics, the parallel and
// serial detectors agree, and every structural invariant checkRun pins
// (stats ordering, cycle containment, phase partition) still holds.

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cycles"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// buildPeriodicTrace writes a valid two-core trace image whose record
// stream repeats a get/wait/put pattern eight times per core, so
// mutations land on a trace the detector would otherwise segment
// cleanly into eight cycles.
func buildPeriodicTrace(tb testing.TB) []byte {
	tb.Helper()
	var out bytes.Buffer
	w, err := traceio.NewWriter(&out, traceio.Header{
		Version: traceio.Version, NumSPEs: 8, TimebaseDiv: 40, ClockHz: 3_200_000_000,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteMeta(&traceio.Meta{
		Workload: "fuzz",
		Anchors: []traceio.Anchor{
			{SPE: 0, Timebase: 100, Loaded: 0xFFFFFFFF, Program: "p"},
			{SPE: 1, Timebase: 120, Loaded: 0xFFFFFFFF, Program: "p"},
		},
	}); err != nil {
		tb.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		var data []byte
		add := func(id event.ID, tm uint64, args ...uint64) {
			r := event.Record{ID: id, Core: uint8(c), Flags: event.FlagDecrTime, Time: tm, Args: args}
			data, err = r.AppendTo(data)
			if err != nil {
				tb.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ {
			t := uint64(i * 100)
			add(event.SPEMFCGet, t, 1, 0x1000, 0x2000, 256)
			add(event.SPEWaitTagEnter, t+10, 1<<1)
			add(event.SPEWaitTagExit, t+40, 1<<1)
			add(event.SPEMFCPut, t+70, 1, 0x1000, 0x2000, 256)
		}
		if err := w.WriteChunk(traceio.Chunk{Core: uint8(c), AnchorIdx: uint16(c), Data: data}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return out.Bytes()
}

func FuzzCycles(f *testing.F) {
	f.Add(uint32(0), uint8(0), uint8(0x5A), uint16(0))
	f.Add(uint32(40), uint8(1), uint8(0xC5), uint16(0))
	f.Add(uint32(80), uint8(2), uint8(0), uint16(0))
	f.Add(uint32(120), uint8(0), uint8(0xFF), uint16(60))
	f.Add(uint32(0), uint8(3), uint8(0), uint16(11))

	f.Fuzz(func(t *testing.T, pos uint32, op, val uint8, cut uint16) {
		valid := buildPeriodicTrace(t)
		data := append([]byte(nil), valid...)
		p := int(pos) % len(data)
		switch op % 4 {
		case 0: // flip
			data[p] ^= val | 1
		case 1: // insert
			data = append(data[:p], append([]byte{val}, data[p:]...)...)
		case 2: // delete
			data = append(data[:p], data[p+1:]...)
		case 3: // truncate from the end
			n := int(cut) % (len(data) + 1)
			data = data[:len(data)-n]
		}
		if int(cut) > 0 && op%4 != 3 {
			n := int(cut) % (len(data) + 1)
			data = data[:len(data)-n]
		}

		d := analyzer.DoctorData(data)
		if d == nil || d.Trace == nil {
			return // nothing recoverable; no trace to analyze
		}
		tr := d.Trace

		rep := cycles.Detect(tr, cycles.Options{})
		ser := cycles.DetectSerial(tr, cycles.Options{})
		if !reflect.DeepEqual(rep, ser) {
			t.Error("Detect and DetectSerial disagree on salvaged input")
		}
		total := 0
		for _, run := range rep.Runs {
			checkRun(t, run)
			total += len(run.Cycles)
		}
		if rep.TotalCycles != total {
			t.Errorf("TotalCycles = %d, sum over runs = %d", rep.TotalCycles, total)
		}
		var buf bytes.Buffer
		rep.Write(&buf)
		if err := rep.WriteJSON(&buf); err != nil {
			t.Errorf("WriteJSON on salvaged input: %v", err)
		}
	})
}
