package cycles

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/celltrace/pdt/internal/core/event"
)

// maxCycleRows caps the per-run cycle table in the text report; the
// stats block always covers every cycle.
const maxCycleRows = 40

// round6 trims float noise for display; detection keeps full precision.
func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// Write renders the human-readable cycle report. Output is byte-stable
// for a given report (deterministic row order, fixed float precision)
// so the pdt-ta golden tests can pin it.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "cycle report: workload %s\n", r.Workload)
	fmt.Fprintf(w, "runs: %d analyzed, %d with detected cycles, %d cycles total\n",
		len(r.Runs), r.Detected(), r.TotalCycles)
	for i := range r.Runs {
		run := &r.Runs[i]
		fmt.Fprintf(w, "\n%s run %d: ", event.CoreName(run.Core), run.Run)
		if !run.Detected {
			fmt.Fprintf(w, "no repeating pattern detected (%d events, wall %d ticks)\n",
				run.Events, run.End-run.Start)
			continue
		}
		info, _ := event.Lookup(run.Anchor)
		fmt.Fprintf(w, "%d cycles  anchor %s  score %.3f  (raw %d, trimmed %d)\n",
			len(run.Cycles), info.Name, run.Score, run.Raw, run.Raw-len(run.Cycles))
		wall := run.End - run.Start
		ph := &run.Phases
		fmt.Fprintf(w, "  phases: startup %d ticks (%.1f%%)  steady %d ticks (%.1f%%)  drain %d ticks (%.1f%%)\n",
			ph.StartupTicks, pct(ph.StartupTicks, wall),
			ph.SteadyTicks, pct(ph.SteadyTicks, wall),
			ph.DrainTicks, pct(ph.DrainTicks, wall))
		fmt.Fprintf(w, "  %-9s %10s %10s %12s %12s\n", "metric", "min", "max", "avg", "stddev")
		for _, row := range []struct {
			name string
			st   *Stats
		}{
			{"wall", &run.Wall},
			{"busy", &run.Busy},
			{"stall", &run.Stall},
			{"dma-wait", &run.DMAWait},
		} {
			fmt.Fprintf(w, "  %-9s %10d %10d %12.1f %12.1f\n",
				row.name, row.st.Min, row.st.Max, row.st.Avg, row.st.Stddev)
		}
		fmt.Fprintf(w, "  %-5s %12s %8s %10s %10s %10s %10s\n",
			"cycle", "start", "events", "wall", "busy", "stall", "dma-wait")
		for j := range run.Cycles {
			if j == maxCycleRows {
				fmt.Fprintf(w, "  ... %d more cycles\n", len(run.Cycles)-maxCycleRows)
				break
			}
			c := &run.Cycles[j]
			fmt.Fprintf(w, "  %-5d %12d %8d %10d %10d %10d %10d\n",
				c.Index, c.Start, c.Events, c.Wall, c.Busy, c.Stall, c.DMAWait)
		}
	}
}

// JSON mirror structs: field order (and therefore output bytes) is
// fixed, floats are rounded to 1e-6 so the encoding never carries
// accumulation noise.

type jsonStats struct {
	Min    uint64  `json:"min"`
	Max    uint64  `json:"max"`
	Avg    float64 `json:"avg"`
	Stddev float64 `json:"stddev"`
}

func mirrorStats(s *Stats) jsonStats {
	return jsonStats{Min: s.Min, Max: s.Max, Avg: round6(s.Avg), Stddev: round6(s.Stddev)}
}

type jsonCycle struct {
	Index    int    `json:"index"`
	Start    uint64 `json:"start"`
	End      uint64 `json:"end"`
	Events   int    `json:"events"`
	Wall     uint64 `json:"wall"`
	Busy     uint64 `json:"busy"`
	Stall    uint64 `json:"stall"`
	DMAWait  uint64 `json:"dmaWait"`
	Sig      uint64 `json:"sig"`
	StartSeq int    `json:"startSeq"`
	EndSeq   int    `json:"endSeq"`
}

type jsonPhases struct {
	StartupTicks uint64 `json:"startupTicks"`
	SteadyTicks  uint64 `json:"steadyTicks"`
	DrainTicks   uint64 `json:"drainTicks"`
	SteadyStart  uint64 `json:"steadyStart"`
	SteadyEnd    uint64 `json:"steadyEnd"`
}

type jsonRun struct {
	Core     string      `json:"core"`
	Run      int         `json:"run"`
	Detected bool        `json:"detected"`
	Anchor   string      `json:"anchor,omitempty"`
	Score    float64     `json:"score,omitempty"`
	Raw      int         `json:"rawCycles,omitempty"`
	Events   int         `json:"events"`
	Start    uint64      `json:"start"`
	End      uint64      `json:"end"`
	Phases   *jsonPhases `json:"phases,omitempty"`
	Wall     *jsonStats  `json:"wall,omitempty"`
	Busy     *jsonStats  `json:"busy,omitempty"`
	Stall    *jsonStats  `json:"stall,omitempty"`
	DMAWait  *jsonStats  `json:"dmaWait,omitempty"`
	Cycles   []jsonCycle `json:"cycles,omitempty"`
}

type jsonReport struct {
	Workload    string    `json:"workload"`
	Runs        []jsonRun `json:"runs"`
	TotalCycles int       `json:"totalCycles"`
}

// WriteJSON renders the machine-readable report (indented, stable field
// order).
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{Workload: r.Workload, Runs: []jsonRun{}, TotalCycles: r.TotalCycles}
	for i := range r.Runs {
		run := &r.Runs[i]
		jr := jsonRun{
			Core:     event.CoreName(run.Core),
			Run:      run.Run,
			Detected: run.Detected,
			Events:   run.Events,
			Start:    run.Start,
			End:      run.End,
		}
		if run.Detected {
			info, _ := event.Lookup(run.Anchor)
			jr.Anchor = info.Name
			jr.Score = round6(run.Score)
			jr.Raw = run.Raw
			ph := run.Phases
			jph := jsonPhases(ph)
			jr.Phases = &jph
			for _, m := range []struct {
				dst **jsonStats
				src *Stats
			}{
				{&jr.Wall, &run.Wall},
				{&jr.Busy, &run.Busy},
				{&jr.Stall, &run.Stall},
				{&jr.DMAWait, &run.DMAWait},
			} {
				st := mirrorStats(m.src)
				*m.dst = &st
			}
			jr.Cycles = make([]jsonCycle, len(run.Cycles))
			for j := range run.Cycles {
				c := &run.Cycles[j]
				jr.Cycles[j] = jsonCycle{
					Index: c.Index, Start: c.Start, End: c.End, Events: c.Events,
					Wall: c.Wall, Busy: c.Busy, Stall: c.Stall, DMAWait: c.DMAWait,
					Sig: c.Sig, StartSeq: c.StartSeq, EndSeq: c.EndSeq,
				}
			}
		}
		out.Runs = append(out.Runs, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
