package diff

// Per-cycle diffing. Whole-trace aggregates average a one-iteration
// regression away; cycle mode diffs iteration against iteration. Two
// pairing strategies (uplifter's match/align split):
//
//   - match: cycles pair by signature class, in order within each
//     class. Robust when a run's iterations were reordered, blind to
//     position.
//   - align: LCS positional alignment over the cycle signature
//     sequences. Unmatched cycles classify as insertions (B only — new
//     work) or deletions (A only — fused/removed work), the analogue of
//     uplifter's new-kernel/fused-kernel classes.
//
// Both sides' cycle reports come from the same detector, so a run pair
// aligns by (core, run) key; a run present on one side only contributes
// all its cycles as insertions or deletions.

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/celltrace/pdt/internal/analyzer/cycles"
	"github.com/celltrace/pdt/internal/core/event"
)

// Diff modes. The empty mode keeps per-cycle diffing off and the report
// shape identical to what pre-cycle callers expect.
const (
	ModeMatch = "match"
	ModeAlign = "align"
)

// ErrBadMode rejects an unknown Options.Mode.
var ErrBadMode = errors.New("diff: unknown mode (want \"match\" or \"align\")")

// maxLCSCells caps the alignment DP table. Beyond it (pathological
// cycle counts) align degrades to match pairing and marks the run
// Approx rather than blowing memory.
const maxLCSCells = 1 << 20

// CycleMetrics is one cycle's metric tuple on one side of the diff.
type CycleMetrics struct {
	Start   uint64
	Events  int
	Wall    uint64
	Busy    uint64
	Stall   uint64
	DMAWait uint64
}

func metricsOf(c *cycles.Cycle) CycleMetrics {
	return CycleMetrics{
		Start: c.Start, Events: c.Events, Wall: c.Wall,
		Busy: c.Busy, Stall: c.Stall, DMAWait: c.DMAWait,
	}
}

// CyclePairDelta is one aligned cycle pair.
type CyclePairDelta struct {
	IndexA, IndexB int
	Sig            uint64 // shared signature under align; A's under match
	A, B           CycleMetrics
	// Flagged marks a pair whose wall, busy, stall or DMA-wait delta
	// passes the effect-size gate.
	Flagged bool
}

// WallDelta returns B.Wall − A.Wall.
func (p *CyclePairDelta) WallDelta() int64 { return int64(p.B.Wall) - int64(p.A.Wall) }

// CycleEdit is an unmatched cycle: a deletion (present only in A,
// e.g. work fused away) or an insertion (present only in B, new work).
type CycleEdit struct {
	Index int
	Sig   uint64
	M     CycleMetrics
}

// CycleRunDelta aligns one (core, run) pair's cycles.
type CycleRunDelta struct {
	Core                 uint8
	Run                  int
	DetectedA, DetectedB bool
	CyclesA, CyclesB     int
	// Approx marks a run whose align DP exceeded maxLCSCells and fell
	// back to match pairing.
	Approx   bool
	Pairs    []CyclePairDelta
	Deleted  []CycleEdit // cycles only in A
	Inserted []CycleEdit // cycles only in B
	// ShiftAt localizes a one-off delay: the index into Pairs where the
	// inter-trace timeline shift (B.Start − A.Start) jumps by at least
	// the MinTicks gate relative to the previous pair. A stall between
	// two iterations does not widen any cycle's wall — the detector
	// re-segments around the gap — but it does displace every later
	// cycle's start, and that edge is where the regression entered.
	// −1 when the shift stays steady; always −1 under match mode, whose
	// pairing is position-blind. ShiftTicks is the largest such jump
	// (signed; negated under argument swap).
	ShiftAt    int
	ShiftTicks int64
}

// CycleDiffReport is the per-cycle layer of a diff report.
type CycleDiffReport struct {
	Mode    string
	Runs    []CycleRunDelta
	Matched int
	// Inserted and Deleted are edit totals across runs.
	Inserted, Deleted int
}

// Zero reports whether the per-cycle layer found no difference: every
// run pairs completely, every pair is metric-identical and unflagged.
func (c *CycleDiffReport) Zero() bool {
	if c.Inserted != 0 || c.Deleted != 0 {
		return false
	}
	for i := range c.Runs {
		r := &c.Runs[i]
		if r.DetectedA != r.DetectedB || r.CyclesA != r.CyclesB ||
			len(r.Deleted) != 0 || len(r.Inserted) != 0 || r.ShiftAt >= 0 {
			return false
		}
		for j := range r.Pairs {
			p := &r.Pairs[j]
			if p.A != p.B || p.Flagged {
				return false
			}
		}
	}
	return true
}

// cycleDiff aligns two cycle reports under the selected mode.
func cycleDiff(a, b *cycles.Report, opt Options) *CycleDiffReport {
	out := &CycleDiffReport{Mode: opt.Mode}

	type key struct {
		core uint8
		run  int
	}
	ra := map[key]*cycles.Run{}
	rb := map[key]*cycles.Run{}
	var keys []key
	seen := map[key]bool{}
	for i := range a.Runs {
		k := key{a.Runs[i].Core, a.Runs[i].Run}
		ra[k] = &a.Runs[i]
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for i := range b.Runs {
		k := key{b.Runs[i].Core, b.Runs[i].Run}
		rb[k] = &b.Runs[i]
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].core != keys[j].core {
			return keys[i].core < keys[j].core
		}
		return keys[i].run < keys[j].run
	})

	for _, k := range keys {
		rd := CycleRunDelta{Core: k.core, Run: k.run, ShiftAt: -1}
		var ca, cb []cycles.Cycle
		if r := ra[k]; r != nil {
			rd.DetectedA = r.Detected
			ca = r.Cycles
		}
		if r := rb[k]; r != nil {
			rd.DetectedB = r.Detected
			cb = r.Cycles
		}
		rd.CyclesA, rd.CyclesB = len(ca), len(cb)

		switch {
		case opt.Mode == ModeAlign && len(ca)*len(cb) <= maxLCSCells:
			alignCycles(&rd, ca, cb, opt)
		default:
			if opt.Mode == ModeAlign {
				rd.Approx = true
			}
			matchCycles(&rd, ca, cb, opt)
		}
		if opt.Mode == ModeAlign && !rd.Approx {
			locateShift(&rd, opt)
		}
		out.Matched += len(rd.Pairs)
		out.Inserted += len(rd.Inserted)
		out.Deleted += len(rd.Deleted)
		out.Runs = append(out.Runs, rd)
	}
	return out
}

// locateShift finds the largest gated jump in the pairwise timeline
// shift. Only positional (align) pairings make "consecutive pairs"
// meaningful, so match mode never sets it.
func locateShift(rd *CycleRunDelta, opt Options) {
	if len(rd.Pairs) < 2 {
		return
	}
	prev := int64(rd.Pairs[0].B.Start) - int64(rd.Pairs[0].A.Start)
	for j := 1; j < len(rd.Pairs); j++ {
		cur := int64(rd.Pairs[j].B.Start) - int64(rd.Pairs[j].A.Start)
		jump := cur - prev
		prev = cur
		mag := jump
		if mag < 0 {
			mag = -mag
		}
		if uint64(mag) < opt.MinTicks {
			continue
		}
		best := rd.ShiftTicks
		if best < 0 {
			best = -best
		}
		if rd.ShiftAt < 0 || mag > best {
			rd.ShiftAt, rd.ShiftTicks = j, jump
		}
	}
}

// pairOf builds one aligned pair and applies the effect-size gate.
func pairOf(ia, ib int, ca, cb *cycles.Cycle, opt Options) CyclePairDelta {
	p := CyclePairDelta{
		IndexA: ia, IndexB: ib, Sig: ca.Sig,
		A: metricsOf(ca), B: metricsOf(cb),
	}
	p.Flagged = opt.flagTicks(p.A.Wall, p.B.Wall) ||
		opt.flagTicks(p.A.Busy, p.B.Busy) ||
		opt.flagTicks(p.A.Stall, p.B.Stall) ||
		opt.flagTicks(p.A.DMAWait, p.B.DMAWait)
	return p
}

// matchCycles pairs cycles by signature class, in order within each
// class; leftovers become edits.
func matchCycles(rd *CycleRunDelta, ca, cb []cycles.Cycle, opt Options) {
	bySig := map[uint64][]int{}
	for i := range cb {
		bySig[cb[i].Sig] = append(bySig[cb[i].Sig], i)
	}
	usedB := make([]bool, len(cb))
	for i := range ca {
		q := bySig[ca[i].Sig]
		if len(q) == 0 {
			rd.Deleted = append(rd.Deleted, CycleEdit{Index: i, Sig: ca[i].Sig, M: metricsOf(&ca[i])})
			continue
		}
		j := q[0]
		bySig[ca[i].Sig] = q[1:]
		usedB[j] = true
		rd.Pairs = append(rd.Pairs, pairOf(i, j, &ca[i], &cb[j], opt))
	}
	for j := range cb {
		if !usedB[j] {
			rd.Inserted = append(rd.Inserted, CycleEdit{Index: j, Sig: cb[j].Sig, M: metricsOf(&cb[j])})
		}
	}
}

// alignCycles computes the LCS positional alignment of the two cycle
// signature sequences. Common prefix and suffix pair directly; only the
// differing middle goes through the DP. The matched pairs form a valid
// common subsequence: strictly increasing on both index axes with equal
// signatures.
func alignCycles(rd *CycleRunDelta, ca, cb []cycles.Cycle, opt Options) {
	n, m := len(ca), len(cb)
	pre := 0
	for pre < n && pre < m && ca[pre].Sig == cb[pre].Sig {
		pre++
	}
	suf := 0
	for suf < n-pre && suf < m-pre && ca[n-1-suf].Sig == cb[m-1-suf].Sig {
		suf++
	}
	for i := 0; i < pre; i++ {
		rd.Pairs = append(rd.Pairs, pairOf(i, i, &ca[i], &cb[i], opt))
	}

	// DP over the middle [pre, n-suf) × [pre, m-suf).
	mn, mm := n-suf-pre, m-suf-pre
	if mn > 0 && mm > 0 {
		lcs := make([]int32, (mn+1)*(mm+1))
		at := func(i, j int) int32 { return lcs[i*(mm+1)+j] }
		for i := 1; i <= mn; i++ {
			for j := 1; j <= mm; j++ {
				if ca[pre+i-1].Sig == cb[pre+j-1].Sig {
					lcs[i*(mm+1)+j] = at(i-1, j-1) + 1
				} else if at(i-1, j) >= at(i, j-1) {
					lcs[i*(mm+1)+j] = at(i-1, j)
				} else {
					lcs[i*(mm+1)+j] = at(i, j-1)
				}
			}
		}
		// Backtrack; pairs come out in reverse order.
		var rev []CyclePairDelta
		i, j := mn, mm
		for i > 0 && j > 0 {
			switch {
			case ca[pre+i-1].Sig == cb[pre+j-1].Sig:
				rev = append(rev, pairOf(pre+i-1, pre+j-1, &ca[pre+i-1], &cb[pre+j-1], opt))
				i--
				j--
			case at(i-1, j) >= at(i, j-1):
				i--
			default:
				j--
			}
		}
		for k := len(rev) - 1; k >= 0; k-- {
			rd.Pairs = append(rd.Pairs, rev[k])
		}
	}

	for i := 0; i < suf; i++ {
		rd.Pairs = append(rd.Pairs, pairOf(n-suf+i, m-suf+i, &ca[n-suf+i], &cb[m-suf+i], opt))
	}

	// Everything unmatched classifies as an edit.
	matchedA := make([]bool, n)
	matchedB := make([]bool, m)
	for _, p := range rd.Pairs {
		matchedA[p.IndexA] = true
		matchedB[p.IndexB] = true
	}
	for i := 0; i < n; i++ {
		if !matchedA[i] {
			rd.Deleted = append(rd.Deleted, CycleEdit{Index: i, Sig: ca[i].Sig, M: metricsOf(&ca[i])})
		}
	}
	for j := 0; j < m; j++ {
		if !matchedB[j] {
			rd.Inserted = append(rd.Inserted, CycleEdit{Index: j, Sig: cb[j].Sig, M: metricsOf(&cb[j])})
		}
	}
}

// write renders the per-cycle section of the text report.
func (c *CycleDiffReport) write(w io.Writer, gate Options) {
	fmt.Fprintf(w, "\nper-cycle diff (mode %s): %d matched, %d inserted, %d deleted\n",
		c.Mode, c.Matched, c.Inserted, c.Deleted)
	fmt.Fprintf(w, "%-7s %4s %8s %8s %8s %5s %5s\n",
		"core", "run", "cyc-A", "cyc-B", "matched", "ins", "del")
	for i := range c.Runs {
		r := &c.Runs[i]
		mark := " "
		if r.Approx {
			mark = "~" // DP cap hit; positional pairing approximated
		}
		fmt.Fprintf(w, "%-6s%s %4d %8d %8d %8d %5d %5d\n",
			event.CoreName(r.Core), mark, r.Run, r.CyclesA, r.CyclesB,
			len(r.Pairs), len(r.Inserted), len(r.Deleted))
	}

	for i := range c.Runs {
		r := &c.Runs[i]
		if r.ShiftAt < 0 {
			continue
		}
		p := &r.Pairs[r.ShiftAt]
		fmt.Fprintf(w, "timeline shift: %s run %d: %s ticks entering at cycle pair (%d,%d)\n",
			event.CoreName(r.Core), r.Run, signed(r.ShiftTicks), p.IndexA, p.IndexB)
	}

	flagged := 0
	for i := range c.Runs {
		flagged += countFlagged(c.Runs[i].Pairs)
	}
	fmt.Fprintf(w, "flagged cycle pairs (>=%d ticks and >=%.1f%% of the larger side): %d\n",
		gate.MinTicks, 100*gate.MinRel, flagged)
	if flagged > 0 {
		fmt.Fprintf(w, "%-7s %4s %6s %6s %10s %10s %10s %10s\n",
			"core", "run", "cyc-A", "cyc-B", "wall", "busy", "stall", "dma-wait")
		for i := range c.Runs {
			r := &c.Runs[i]
			for j := range r.Pairs {
				p := &r.Pairs[j]
				if !p.Flagged {
					continue
				}
				fmt.Fprintf(w, "%-7s %4d %6d %6d %10s %10s %10s %10s\n",
					event.CoreName(r.Core), r.Run, p.IndexA, p.IndexB,
					signed(p.WallDelta()),
					signed(int64(p.B.Busy)-int64(p.A.Busy)),
					signed(int64(p.B.Stall)-int64(p.A.Stall)),
					signed(int64(p.B.DMAWait)-int64(p.A.DMAWait)))
			}
		}
	}
}

func countFlagged(ps []CyclePairDelta) int {
	n := 0
	for i := range ps {
		if ps[i].Flagged {
			n++
		}
	}
	return n
}
