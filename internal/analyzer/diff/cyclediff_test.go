package diff_test

// Property suite for the per-cycle diff layer. Anchors: self-diff in
// align mode is identically zero with no insertions or deletions, swap
// antisymmetry holds per cycle pair, align output is a valid common
// subsequence (strictly increasing on both index axes with equal
// signatures, edits exactly the complement), and the parallel kernel
// stays DeepEqual to DiffSerial. FuzzDiffAlign extends FuzzDiff's
// mutate/salvage loop to align mode.

import (
	"bytes"
	"errors"
	"reflect"
	"sort"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/diff"
	"github.com/celltrace/pdt/internal/core/event"
)

// checkCycleAlignment asserts the align-mode structural invariants on
// one run delta: matched pairs form a common subsequence of both cycle
// sequences and the edit lists are exactly the unmatched complement.
func checkCycleAlignment(t *testing.T, r *diff.CycleRunDelta) {
	t.Helper()
	if r.Approx {
		return // degraded to match pairing; positional invariants waived
	}
	prevA, prevB := -1, -1
	for i := range r.Pairs {
		p := &r.Pairs[i]
		if p.IndexA <= prevA || p.IndexB <= prevB {
			t.Errorf("run %d pair %d: indexes (%d,%d) not strictly increasing after (%d,%d)",
				r.Run, i, p.IndexA, p.IndexB, prevA, prevB)
		}
		prevA, prevB = p.IndexA, p.IndexB
	}
	matchedA := map[int]bool{}
	matchedB := map[int]bool{}
	for i := range r.Pairs {
		matchedA[r.Pairs[i].IndexA] = true
		matchedB[r.Pairs[i].IndexB] = true
	}
	for _, e := range r.Deleted {
		if matchedA[e.Index] {
			t.Errorf("run %d: cycle A/%d both matched and deleted", r.Run, e.Index)
		}
		matchedA[e.Index] = true
	}
	for _, e := range r.Inserted {
		if matchedB[e.Index] {
			t.Errorf("run %d: cycle B/%d both matched and inserted", r.Run, e.Index)
		}
		matchedB[e.Index] = true
	}
	if len(matchedA) != r.CyclesA || len(matchedB) != r.CyclesB {
		t.Errorf("run %d: pairs+edits cover %d/%d of A, %d/%d of B",
			r.Run, len(matchedA), r.CyclesA, len(matchedB), r.CyclesB)
	}
}

// swappedCycles builds the cycle layer Diff(b, a) must produce from
// Diff(a, b)'s: every pair's sides exchanged, insertions and deletions
// exchanged.
func swappedCycles(c *diff.CycleDiffReport) *diff.CycleDiffReport {
	s := *c
	s.Inserted, s.Deleted = c.Deleted, c.Inserted
	s.Runs = append([]diff.CycleRunDelta(nil), c.Runs...)
	for i := range s.Runs {
		r := &s.Runs[i]
		r.DetectedA, r.DetectedB = r.DetectedB, r.DetectedA
		r.CyclesA, r.CyclesB = r.CyclesB, r.CyclesA
		r.ShiftTicks = -r.ShiftTicks // the jump's sign follows side B
		r.Pairs = append([]diff.CyclePairDelta(nil), r.Pairs...)
		for j := range r.Pairs {
			p := &r.Pairs[j]
			p.IndexA, p.IndexB = p.IndexB, p.IndexA
			p.A, p.B = p.B, p.A
		}
		r.Deleted = append([]diff.CycleEdit(nil), c.Runs[i].Inserted...)
		r.Inserted = append([]diff.CycleEdit(nil), c.Runs[i].Deleted...)
	}
	return &s
}

// sortPairs canonicalizes match-mode pair order (which follows the
// first argument's cycle order and so differs under argument swap).
func sortPairs(c *diff.CycleDiffReport) {
	for i := range c.Runs {
		ps := c.Runs[i].Pairs
		sort.Slice(ps, func(a, b int) bool {
			if ps[a].IndexA != ps[b].IndexA {
				return ps[a].IndexA < ps[b].IndexA
			}
			return ps[a].IndexB < ps[b].IndexB
		})
	}
}

// TestCycleDiffProperties: for the iterative workloads, in both modes —
// self-diff identically zero with no edits, antisymmetry under swap,
// serial equivalence, and align validity.
func TestCycleDiffProperties(t *testing.T) {
	for _, name := range []string{"pipeline", "taskfarm", "stencil", "stream"} {
		name := name
		t.Run(name, func(t *testing.T) {
			full := traceWithGroups(t, name, event.GroupAll)
			reduced := traceWithGroups(t, name, event.GroupLifecycle|event.GroupMFC)

			for _, mode := range []string{diff.ModeMatch, diff.ModeAlign} {
				opt := diff.Options{Mode: mode}

				self, err := diff.Diff(full, full, opt)
				if err != nil {
					t.Fatal(err)
				}
				if self.Cycles == nil {
					t.Fatalf("mode %s: no cycle layer", mode)
				}
				if !self.Zero() || !self.Cycles.Zero() {
					t.Errorf("mode %s: self-diff not identically zero", mode)
				}
				if self.Cycles.Inserted != 0 || self.Cycles.Deleted != 0 {
					t.Errorf("mode %s: self-diff has %d insertions, %d deletions",
						mode, self.Cycles.Inserted, self.Cycles.Deleted)
				}
				for i := range self.Cycles.Runs {
					r := &self.Cycles.Runs[i]
					for j := range r.Pairs {
						p := &r.Pairs[j]
						if p.IndexA != p.IndexB || p.A != p.B || p.Flagged {
							t.Errorf("mode %s: self-diff pair (%d,%d) not identical", mode, p.IndexA, p.IndexB)
						}
					}
				}

				// A cross-group diff exercises real insertions/deletions:
				// the reduced side's cycle signatures lack the sync events.
				rep, err := diff.Diff(reduced, full, opt)
				if err != nil {
					t.Fatal(err)
				}
				ser, err := diff.DiffSerial(reduced, full, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rep, ser) {
					t.Errorf("mode %s: Diff differs from DiffSerial", mode)
				}

				rev, err := diff.Diff(full, reduced, opt)
				if err != nil {
					t.Fatal(err)
				}
				want := swappedCycles(rep.Cycles)
				got := rev.Cycles
				if mode == diff.ModeMatch {
					sortPairs(want)
					gotCopy := *rev.Cycles
					gotCopy.Runs = append([]diff.CycleRunDelta(nil), rev.Cycles.Runs...)
					for i := range gotCopy.Runs {
						gotCopy.Runs[i].Pairs = append([]diff.CyclePairDelta(nil), rev.Cycles.Runs[i].Pairs...)
					}
					got = &gotCopy
					sortPairs(got)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("mode %s: cycle layer is not antisymmetric under swap", mode)
				}

				if mode == diff.ModeAlign {
					for i := range rep.Cycles.Runs {
						checkCycleAlignment(t, &rep.Cycles.Runs[i])
					}
				}
			}
		})
	}
}

func TestCycleDiffBadMode(t *testing.T) {
	tr := traceWithGroups(t, "synthetic", event.GroupAll)
	if _, err := diff.Diff(tr, tr, diff.Options{Mode: "bogus"}); !errors.Is(err, diff.ErrBadMode) {
		t.Fatalf("expected ErrBadMode, got %v", err)
	}
}

// TestCycleDiffModeOffUnchanged pins the compatibility contract: with
// no mode selected the report carries no cycle layer, so pre-cycle
// renderings (and the checked-in goldens) are unchanged.
func TestCycleDiffModeOffUnchanged(t *testing.T) {
	tr := traceWithGroups(t, "pipeline", event.GroupAll)
	rep, err := diff.Diff(tr, tr, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != nil {
		t.Fatal("mode-less diff grew a cycle layer")
	}
	var buf bytes.Buffer
	rep.Write(&buf)
	if bytes.Contains(buf.Bytes(), []byte("per-cycle")) {
		t.Error("mode-less text render mentions the per-cycle section")
	}
	buf.Reset()
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("\"cycles\"")) {
		t.Error("mode-less JSON render carries a cycles key")
	}
}

// FuzzDiffAlign drives the mutate/salvage loop through align mode: no
// panics, self-diff of the salvaged side stays zero, parallel and
// serial agree, and every run's alignment is a valid common
// subsequence.
func FuzzDiffAlign(f *testing.F) {
	f.Add(uint32(0), uint8(0), uint8(0x5A), uint16(0))
	f.Add(uint32(30), uint8(1), uint8(0xC5), uint16(0))
	f.Add(uint32(60), uint8(2), uint8(0), uint16(0))
	f.Add(uint32(100), uint8(0), uint8(0xFF), uint16(50))
	f.Add(uint32(0), uint8(3), uint8(0), uint16(9))

	f.Fuzz(func(t *testing.T, pos uint32, op, val uint8, cut uint16) {
		valid := buildFuzzTrace(t)
		base, err := analyzer.Load(bytes.NewReader(valid))
		if err != nil {
			t.Fatal(err)
		}
		data := append([]byte(nil), valid...)
		p := int(pos) % len(data)
		switch op % 4 {
		case 0:
			data[p] ^= val | 1
		case 1:
			data = append(data[:p], append([]byte{val}, data[p:]...)...)
		case 2:
			data = append(data[:p], data[p+1:]...)
		case 3:
			n := int(cut) % (len(data) + 1)
			data = data[:len(data)-n]
		}
		if int(cut) > 0 && op%4 != 3 {
			n := int(cut) % (len(data) + 1)
			data = data[:len(data)-n]
		}

		d := analyzer.DoctorData(data)
		if d == nil || d.Trace == nil {
			return
		}
		mut := d.Trace
		opt := diff.Options{Mode: diff.ModeAlign}

		self, err := diff.Diff(mut, mut, opt)
		if err != nil {
			t.Fatalf("self-diff of a salvaged trace errored: %v", err)
		}
		if !self.Zero() {
			t.Errorf("align self-diff of a salvaged trace is not zero")
		}

		rep, err := diff.Diff(base, mut, opt)
		if err != nil {
			return // e.g. the mutation destroyed the workload name
		}
		ser, err := diff.DiffSerial(base, mut, opt)
		if err != nil {
			t.Fatalf("Diff succeeded but DiffSerial errored: %v", err)
		}
		if !reflect.DeepEqual(rep, ser) {
			t.Errorf("parallel and serial align diffs disagree on salvaged input")
		}
		if rep.Cycles == nil {
			t.Fatal("align diff has no cycle layer")
		}
		for i := range rep.Cycles.Runs {
			checkCycleAlignment(t, &rep.Cycles.Runs[i])
		}
		var buf bytes.Buffer
		rep.Write(&buf)
		if err := rep.WriteJSON(&buf); err != nil {
			t.Errorf("WriteJSON: %v", err)
		}
	})
}
