// Package diff implements trace differencing and overhead attribution:
// given two loaded traces of the same workload — typically a
// full-instrumentation run and a reduced-event-group run — it aligns
// cores and event groups, computes per-core and per-group deltas of
// record counts, busy/stall/gap time and DMA wait distributions, and
// attributes the wall-clock delta to tracing overhead sources
// (trace-buffer flushes, per-record production cost) plus the critical
// path perturbation on both sides.
//
// A simple effect-size gate keeps noise out of the flagged set: a delta
// is significant only when it exceeds both an absolute floor and a
// relative fraction of the larger side.
//
// Diff shards its per-core scans on the analyzer's bounded worker pool;
// DiffSerial is the sequential reference implementation Diff is tested
// DeepEqual against for every registered workload.
package diff

import (
	"errors"
	"fmt"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/cycles"
	"github.com/celltrace/pdt/internal/core/event"
)

// ErrWorkloadMismatch rejects a diff of traces from different workloads;
// cross-workload deltas attribute nothing meaningful.
var ErrWorkloadMismatch = errors.New("diff: traces come from different workloads")

// Options tunes the effect-size gate and lets callers reuse memoized
// artifacts. The zero value picks the defaults below.
type Options struct {
	// MinRel is the minimum relative change — |Δ| as a fraction of the
	// larger side — for a delta to be flagged (default 0.01).
	MinRel float64
	// MinTicks is the minimum absolute tick delta to flag (default 500).
	MinTicks uint64
	// MinCount is the minimum absolute count delta to flag (default 8).
	MinCount int
	// CritPathA/CritPathB, when non-nil, are precomputed critical paths
	// for the two sides (pdt-tad passes its cache-memoized results so a
	// diff of cached traces recomputes nothing).
	CritPathA, CritPathB *analyzer.CriticalPath
	// Mode selects per-cycle diffing: ModeMatch pairs cycles by
	// signature class, ModeAlign LCS-aligns them positionally and
	// classifies insertions/deletions. Empty keeps per-cycle diffing off
	// (Report.Cycles stays nil and the output is unchanged).
	Mode string
	// CyclesA/CyclesB, when non-nil, are precomputed cycle reports for
	// the two sides (pdt-tad passes its memoized artifacts).
	CyclesA, CyclesB *cycles.Report
}

// withDefaults fills unset gate knobs.
func (o Options) withDefaults() Options {
	if o.MinRel == 0 {
		o.MinRel = 0.01
	}
	if o.MinTicks == 0 {
		o.MinTicks = 500
	}
	if o.MinCount == 0 {
		o.MinCount = 8
	}
	return o
}

// flagTicks applies the effect-size gate to a tick-valued pair.
func (o Options) flagTicks(a, b uint64) bool {
	d := a - b
	if b > a {
		d = b - a
	}
	m := a
	if b > m {
		m = b
	}
	return d > 0 && d >= o.MinTicks && float64(d) >= o.MinRel*float64(m)
}

// flagCount applies the effect-size gate to a count-valued pair.
func (o Options) flagCount(a, b int) bool {
	d := a - b
	if b > a {
		d = b - a
	}
	m := a
	if b > m {
		m = b
	}
	return d > 0 && d >= o.MinCount && float64(d) >= o.MinRel*float64(m)
}

// CoreSide is one side's metrics for one core.
type CoreSide struct {
	// Records is the number of trace records the core contributed.
	Records int
	// WallTicks spans the core's first to last event.
	WallTicks uint64
	// BusyTicks is compute-state interval time; StallTicks sums the DMA,
	// mailbox, signal, sync and host-wait stall states; FlushTicks is
	// PDT's own trace-buffer flush state.
	BusyTicks  uint64
	StallTicks uint64
	FlushTicks uint64
	// GapTicks is core wall time not covered by any reconstructed
	// interval (inter-run idle, untraced stretches).
	GapTicks uint64
	// DMAWait is the per-wait duration distribution of the core's
	// tag-group waits, in ticks.
	DMAWait analyzer.Histogram
}

// CoreDelta aligns one core across the two traces. A core present on
// only one side gets a zero CoreSide on the other.
type CoreDelta struct {
	Core uint8
	A, B CoreSide
	// Flagged marks a core whose busy, stall, flush, gap or wall delta
	// passes the effect-size gate; DMAFlagged gates on the mean DMA wait.
	Flagged    bool
	DMAFlagged bool
}

// GroupDelta aligns one event group's record counts.
type GroupDelta struct {
	Group   event.Group
	CountA  int
	CountB  int
	Flagged bool
}

// Delta returns CountB − CountA.
func (g GroupDelta) Delta() int64 { return int64(g.CountB) - int64(g.CountA) }

// Attribution explains where the wall-tick delta went. The invariant —
// preserved under arbitrary (salvaged, truncated) inputs and checked by
// FuzzDiff — is that attribution never exceeds the total:
//
//	FlushAttributed + RecordAttributed + ResidualTicks == WallDeltaTicks
//	|FlushAttributed| + |RecordAttributed| <= |WallDeltaTicks|
//
// with every attributed term carrying the sign of the total.
type Attribution struct {
	// WallDeltaTicks is the total to attribute: trace span B − A.
	WallDeltaTicks int64
	// FlushDeltaTicks is the measured trace-buffer flush-state delta;
	// FlushAttributed is the portion of the wall delta it can claim
	// (clamped so it never over-attributes).
	FlushDeltaTicks int64
	FlushAttributed int64
	// RecordDelta is total records B − A. When it moves in the same
	// direction as the remaining wall delta, the remainder is attributed
	// to record production cost and PerRecordTicks estimates the cost of
	// one extra record.
	RecordDelta      int64
	RecordAttributed int64
	PerRecordTicks   float64
	// ResidualTicks is whatever the sources above could not claim
	// (perturbation, scheduling shifts, measurement noise).
	ResidualTicks int64
}

// CritCoreDelta is one core's critical-path attribution on both sides.
type CritCoreDelta struct {
	Core uint8
	A, B uint64
}

// CritPathDelta compares the critical-path analyses of the two sides:
// how instrumentation perturbed what the run was actually waiting on.
type CritPathDelta struct {
	TotalA, TotalB uint64
	Cores          []CritCoreDelta
}

// Delta returns TotalB − TotalA.
func (c CritPathDelta) Delta() int64 { return int64(c.TotalB) - int64(c.TotalA) }

// Report is the structured result of a trace diff. All deltas are
// B − A: diffing a trace against itself yields the zero report, and
// swapping the arguments negates every delta.
type Report struct {
	Workload string
	// RecordsA/B and WallA/B are whole-trace totals.
	RecordsA, RecordsB int
	WallA, WallB       uint64
	// FlushA/B are whole-trace flush-state ticks.
	FlushA, FlushB uint64
	// ConfidenceA/B are the record-survival fractions of each side
	// (1.0 for clean traces; lower after drops or salvage).
	ConfidenceA, ConfidenceB float64
	// Cores aligns the union of both sides' cores, ascending.
	Cores []CoreDelta
	// Groups aligns every event group in declaration order.
	Groups []GroupDelta
	// Overhead attributes the wall delta; CritPath shows the critical
	// path on both sides.
	Overhead Attribution
	CritPath CritPathDelta
	// Cycles is the per-cycle layer; nil unless Options.Mode selected a
	// cycle-diff mode.
	Cycles *CycleDiffReport
	// Gate records the effective effect-size thresholds.
	Gate Options
}

// RecordDelta returns RecordsB − RecordsA.
func (r *Report) RecordDelta() int64 { return int64(r.RecordsB) - int64(r.RecordsA) }

// WallDelta returns WallB − WallA.
func (r *Report) WallDelta() int64 { return int64(r.WallB) - int64(r.WallA) }

// Zero reports whether the diff found no difference at all — the
// required result of diffing a trace against itself.
func (r *Report) Zero() bool {
	if r.RecordDelta() != 0 || r.WallDelta() != 0 || r.FlushA != r.FlushB ||
		r.ConfidenceA != r.ConfidenceB || r.CritPath.Delta() != 0 {
		return false
	}
	for _, c := range r.Cores {
		if c.A != c.B || c.Flagged || c.DMAFlagged {
			return false
		}
	}
	for _, g := range r.Groups {
		if g.Delta() != 0 || g.Flagged {
			return false
		}
	}
	for _, cc := range r.CritPath.Cores {
		if cc.A != cc.B {
			return false
		}
	}
	if r.Cycles != nil && !r.Cycles.Zero() {
		return false
	}
	o := r.Overhead
	return o.WallDeltaTicks == 0 && o.FlushDeltaTicks == 0 && o.FlushAttributed == 0 &&
		o.RecordDelta == 0 && o.RecordAttributed == 0 && o.ResidualTicks == 0
}

// side is everything the diff needs from one trace.
type side struct {
	workload   string
	records    int
	wall       uint64
	flush      uint64
	confidence float64
	perCore    map[uint8]*CoreSide
	groups     map[event.Group]int
	crit       *analyzer.CriticalPath
}

// Diff computes the structured diff of two loaded traces of the same
// workload. Per-core scans shard on the analyzer's bounded worker pool
// and the two sides are processed concurrently; the result is DeepEqual
// to DiffSerial's.
func Diff(a, b *analyzer.Trace, opt Options) (*Report, error) {
	return diffTraces(a, b, opt, true)
}

// DiffSerial is the single-threaded reference implementation.
func DiffSerial(a, b *analyzer.Trace, opt Options) (*Report, error) {
	return diffTraces(a, b, opt, false)
}

func diffTraces(a, b *analyzer.Trace, opt Options, par bool) (*Report, error) {
	if a == nil || b == nil {
		return nil, errors.New("diff: nil trace")
	}
	if a.Meta.Workload != b.Meta.Workload {
		return nil, fmt.Errorf("%w: %q vs %q", ErrWorkloadMismatch, a.Meta.Workload, b.Meta.Workload)
	}
	if opt.Mode != "" && opt.Mode != ModeMatch && opt.Mode != ModeAlign {
		return nil, fmt.Errorf("%w: %q", ErrBadMode, opt.Mode)
	}
	opt = opt.withDefaults()
	sides := make([]*side, 2)
	if par {
		analyzer.RunParallel(0, 2, func(i int) {
			sides[i] = computeSide([]*analyzer.Trace{a, b}[i], []*analyzer.CriticalPath{opt.CritPathA, opt.CritPathB}[i], true)
		})
	} else {
		sides[0] = computeSide(a, opt.CritPathA, false)
		sides[1] = computeSide(b, opt.CritPathB, false)
	}
	rep := assemble(sides[0], sides[1], opt)
	if opt.Mode != "" {
		ca, cb := opt.CyclesA, opt.CyclesB
		detect := cycles.DetectSerial
		if par {
			detect = cycles.Detect
		}
		if ca == nil {
			ca = detect(a, cycles.Options{})
		}
		if cb == nil {
			cb = detect(b, cycles.Options{})
		}
		rep.Cycles = cycleDiff(ca, cb, opt)
	}
	return rep, nil
}

// computeSide extracts one trace's metrics. In parallel mode the
// per-core scans run on the shared pool and the interval reconstruction
// uses the sharded kernels; serial mode uses the reference kernels and
// plain loops.
func computeSide(tr *analyzer.Trace, crit *analyzer.CriticalPath, par bool) *side {
	s := &side{
		workload:   tr.Meta.Workload,
		records:    tr.NumEvents(),
		confidence: overallConfidence(tr),
		perCore:    map[uint8]*CoreSide{},
		groups:     map[event.Group]int{},
	}
	start, end := tr.Span()
	s.wall = end - start

	// State intervals, grouped by core. Interval reconstruction is
	// already a (tested-equivalent) parallel kernel; the group-by is a
	// cheap fold.
	var ivs []analyzer.Interval
	if par {
		ivs = append(analyzer.Intervals(tr), analyzer.PPEIntervals(tr)...)
	} else {
		ivs = append(analyzer.IntervalsSerial(tr), analyzer.PPEIntervalsSerial(tr)...)
	}
	type stateAgg struct{ busy, stall, flush uint64 }
	states := map[uint8]*stateAgg{}
	for _, iv := range ivs {
		sa := states[iv.Core]
		if sa == nil {
			sa = &stateAgg{}
			states[iv.Core] = sa
		}
		switch iv.State {
		case analyzer.StateCompute:
			sa.busy += iv.Dur()
		case analyzer.StateFlush:
			sa.flush += iv.Dur()
		default:
			sa.stall += iv.Dur()
		}
	}

	// Per-core event scans: record counts, group counts, DMA wait
	// distribution, wall span. Each core's view is disjoint, so the
	// scans shard on the pool.
	cores := tr.Cores()
	perCore := make([]*CoreSide, len(cores))
	perGroups := make([]map[event.Group]int, len(cores))
	scan := func(i int) {
		perCore[i], perGroups[i] = scanCore(tr, cores[i])
	}
	if par && tr.NumEvents() >= analyzer.ParallelThreshold() {
		analyzer.RunParallel(0, len(cores), scan)
	} else {
		for i := range cores {
			scan(i)
		}
	}
	for i, c := range cores {
		cs := perCore[i]
		if sa := states[c]; sa != nil {
			cs.BusyTicks, cs.StallTicks, cs.FlushTicks = sa.busy, sa.stall, sa.flush
		}
		if covered := cs.BusyTicks + cs.StallTicks + cs.FlushTicks; cs.WallTicks > covered {
			cs.GapTicks = cs.WallTicks - covered
		}
		s.perCore[c] = cs
		s.flush += cs.FlushTicks
		for g, n := range perGroups[i] {
			s.groups[g] += n
		}
	}

	if crit == nil {
		if par {
			crit = analyzer.ComputeCriticalPath(tr)
		} else {
			crit = analyzer.ComputeCriticalPathSerial(tr)
		}
	}
	s.crit = crit
	return s
}

// scanCore computes one core's event-level metrics by walking the
// core's stream-ordered index block against the trace's columns.
func scanCore(tr *analyzer.Trace, core uint8) (*CoreSide, map[event.Group]int) {
	seqs := tr.CoreSeqs(core)
	s := tr.Columns()
	cs := &CoreSide{Records: len(seqs)}
	groups := map[event.Group]int{}
	if len(seqs) > 0 {
		cs.WallTicks = s.Global[seqs[len(seqs)-1]] - s.Global[seqs[0]]
	}
	var waitStart uint64
	inWait := false
	for _, seq := range seqs {
		id := s.ID[seq]
		global := s.Global[seq]
		if info, ok := event.Lookup(id); ok {
			groups[info.Group]++
		}
		switch id {
		case event.SPEWaitTagEnter, event.PPEWaitTagEnter:
			inWait = true
			waitStart = global
		case event.SPEWaitTagExit, event.PPEWaitTagExit:
			if inWait {
				cs.DMAWait.Add(global - waitStart)
				inWait = false
			}
		}
	}
	return cs, groups
}

// overallConfidence mirrors the summary's confidence figure: 1.0 unless
// the trace is degraded.
func overallConfidence(tr *analyzer.Trace) float64 {
	if tr.Confidence.Overall == 0 && !tr.Confidence.Degraded() {
		return 1
	}
	return tr.Confidence.Overall
}

// assemble aligns the two sides into the report.
func assemble(a, b *side, opt Options) *Report {
	gate := opt
	gate.CritPathA, gate.CritPathB = nil, nil // gate thresholds only
	gate.CyclesA, gate.CyclesB = nil, nil
	r := &Report{
		Workload: a.workload,
		RecordsA: a.records, RecordsB: b.records,
		WallA: a.wall, WallB: b.wall,
		FlushA: a.flush, FlushB: b.flush,
		ConfidenceA: a.confidence, ConfidenceB: b.confidence,
		Gate: gate,
	}

	// Core alignment: union of both sides, ascending.
	seen := map[uint8]bool{}
	var cores []uint8
	for c := range a.perCore {
		if !seen[c] {
			seen[c] = true
			cores = append(cores, c)
		}
	}
	for c := range b.perCore {
		if !seen[c] {
			seen[c] = true
			cores = append(cores, c)
		}
	}
	sortCores(cores)
	for _, c := range cores {
		cd := CoreDelta{Core: c}
		if cs := a.perCore[c]; cs != nil {
			cd.A = *cs
		}
		if cs := b.perCore[c]; cs != nil {
			cd.B = *cs
		}
		cd.Flagged = opt.flagTicks(cd.A.WallTicks, cd.B.WallTicks) ||
			opt.flagTicks(cd.A.BusyTicks, cd.B.BusyTicks) ||
			opt.flagTicks(cd.A.StallTicks, cd.B.StallTicks) ||
			opt.flagTicks(cd.A.FlushTicks, cd.B.FlushTicks) ||
			opt.flagTicks(cd.A.GapTicks, cd.B.GapTicks)
		cd.DMAFlagged = opt.flagTicks(uint64(cd.A.DMAWait.Mean()), uint64(cd.B.DMAWait.Mean()))
		r.Cores = append(r.Cores, cd)
	}

	// Group alignment: every group, declaration order, so the report
	// shape is independent of what either trace happened to record.
	for _, g := range event.Groups() {
		gd := GroupDelta{Group: g, CountA: a.groups[g], CountB: b.groups[g]}
		gd.Flagged = opt.flagCount(gd.CountA, gd.CountB)
		r.Groups = append(r.Groups, gd)
	}

	r.Overhead = attribute(r)
	r.CritPath = critDelta(a.crit, b.crit)
	return r
}

// attribute splits the wall delta across overhead sources without ever
// attributing more than the total: each source claims at most what is
// left, in the direction of the total.
func attribute(r *Report) Attribution {
	at := Attribution{
		WallDeltaTicks:  r.WallDelta(),
		FlushDeltaTicks: int64(r.FlushB) - int64(r.FlushA),
		RecordDelta:     r.RecordDelta(),
	}
	remaining := at.WallDeltaTicks
	at.FlushAttributed = clampAttr(remaining, at.FlushDeltaTicks)
	remaining -= at.FlushAttributed
	// Record production cost claims the remainder only when the record
	// count moved the same way the residual wall delta did.
	if at.RecordDelta != 0 && remaining != 0 && (at.RecordDelta > 0) == (remaining > 0) {
		at.RecordAttributed = remaining
		at.PerRecordTicks = float64(at.RecordAttributed) / float64(at.RecordDelta)
		remaining = 0
	}
	at.ResidualTicks = remaining
	return at
}

// clampAttr clamps v into the interval between 0 and remaining (which
// may be negative), so a source never claims more than what is left nor
// pushes the attribution past the total in either direction.
func clampAttr(remaining, v int64) int64 {
	if remaining >= 0 {
		if v < 0 {
			return 0
		}
		if v > remaining {
			return remaining
		}
		return v
	}
	if v > 0 {
		return 0
	}
	if v < remaining {
		return remaining
	}
	return v
}

// critDelta aligns the two critical-path analyses per core.
func critDelta(a, b *analyzer.CriticalPath) CritPathDelta {
	cd := CritPathDelta{}
	if a != nil {
		cd.TotalA = a.Total
	}
	if b != nil {
		cd.TotalB = b.Total
	}
	seen := map[uint8]bool{}
	var cores []uint8
	if a != nil {
		for c := range a.CoreTicks {
			if !seen[c] {
				seen[c] = true
				cores = append(cores, c)
			}
		}
	}
	if b != nil {
		for c := range b.CoreTicks {
			if !seen[c] {
				seen[c] = true
				cores = append(cores, c)
			}
		}
	}
	sortCores(cores)
	for _, c := range cores {
		var av, bv uint64
		if a != nil {
			av = a.CoreTicks[c]
		}
		if b != nil {
			bv = b.CoreTicks[c]
		}
		cd.Cores = append(cd.Cores, CritCoreDelta{Core: c, A: av, B: bv})
	}
	return cd
}

func sortCores(cores []uint8) {
	for i := 1; i < len(cores); i++ {
		for j := i; j > 0 && cores[j] < cores[j-1]; j-- {
			cores[j], cores[j-1] = cores[j-1], cores[j]
		}
	}
}
