package diff_test

// Property suite for the diff engine. Three algebraic properties anchor
// it: Diff(t, t) is identically zero, Diff(a, b) negates under argument
// swap, and the parallel Diff is DeepEqual to DiffSerial — each checked
// for every registered workload. FuzzDiff drives salvaged/truncated
// inputs through the kernel and asserts it never panics and never
// attributes more ticks than the total wall delta.

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/analyzer/diff"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
	"github.com/celltrace/pdt/internal/harness"
	"github.com/celltrace/pdt/internal/workloads"
)

// diffParams gives every registered workload a small but representative
// configuration (the analyzer equivalence suite's sizes).
var diffParams = map[string]map[string]string{
	"matmul":    {"n": "64", "t": "16"},
	"fft":       {"n": "256", "batches": "4"},
	"pipeline":  {"blocks": "8", "blockbytes": "1024"},
	"julia":     {"w": "64", "h": "32", "maxiter": "16", "mode": "dynamic"},
	"histogram": {"size": "65536"},
	"synthetic": {"events": "400", "gap": "100"},
	"stream":    {"elements": "8192"},
	"stencil":   {"w": "64", "h": "16", "iters": "2"},
	"sort":      {"elements": "8192", "chunk": "1024"},
	"nbody":     {"n": "64"},
	"taskfarm":  {"tasks": "16", "blockbytes": "1024"},
}

// traceWithGroups runs a workload with the given event groups enabled
// and loads the result.
func traceWithGroups(t *testing.T, name string, groups event.Group) *analyzer.Trace {
	t.Helper()
	params, ok := diffParams[name]
	if !ok {
		t.Fatalf("no diff params for workload %q — add it to diffParams", name)
	}
	cfg := core.DefaultTraceConfig()
	cfg.Groups = groups
	res, err := harness.Run(harness.Spec{Workload: name, Params: params, Trace: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := analyzer.Load(bytes.NewReader(res.TraceBytes))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// checkAttribution asserts the attribution invariant: the rows and the
// residual sum exactly to the wall delta, no row over-attributes, and
// every attributed row carries the sign of the total.
func checkAttribution(t *testing.T, o diff.Attribution) {
	t.Helper()
	if o.FlushAttributed+o.RecordAttributed+o.ResidualTicks != o.WallDeltaTicks {
		t.Errorf("attribution does not sum to the total: %+d + %+d + %+d != %+d",
			o.FlushAttributed, o.RecordAttributed, o.ResidualTicks, o.WallDeltaTicks)
	}
	if abs(o.FlushAttributed)+abs(o.RecordAttributed) > abs(o.WallDeltaTicks) {
		t.Errorf("attributed more than the total delta: |%+d| + |%+d| > |%+d|",
			o.FlushAttributed, o.RecordAttributed, o.WallDeltaTicks)
	}
	for _, v := range []int64{o.FlushAttributed, o.RecordAttributed} {
		if v != 0 && (v > 0) != (o.WallDeltaTicks > 0) {
			t.Errorf("attributed row %+d fights the total's sign (%+d)", v, o.WallDeltaTicks)
		}
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// swapped builds the report Diff(b, a) must produce from the report
// Diff(a, b) produced: every A/B pair exchanged. The flag bits stay as
// they are — the effect-size gate is symmetric by construction.
func swapped(r *diff.Report) *diff.Report {
	s := *r
	s.RecordsA, s.RecordsB = r.RecordsB, r.RecordsA
	s.WallA, s.WallB = r.WallB, r.WallA
	s.FlushA, s.FlushB = r.FlushB, r.FlushA
	s.ConfidenceA, s.ConfidenceB = r.ConfidenceB, r.ConfidenceA
	s.Cores = append([]diff.CoreDelta(nil), r.Cores...)
	for i := range s.Cores {
		s.Cores[i].A, s.Cores[i].B = s.Cores[i].B, s.Cores[i].A
	}
	s.Groups = append([]diff.GroupDelta(nil), r.Groups...)
	for i := range s.Groups {
		s.Groups[i].CountA, s.Groups[i].CountB = s.Groups[i].CountB, s.Groups[i].CountA
	}
	o := r.Overhead
	s.Overhead = diff.Attribution{
		WallDeltaTicks:  -o.WallDeltaTicks,
		FlushDeltaTicks: -o.FlushDeltaTicks, FlushAttributed: -o.FlushAttributed,
		RecordDelta: -o.RecordDelta, RecordAttributed: -o.RecordAttributed,
		PerRecordTicks: o.PerRecordTicks, ResidualTicks: -o.ResidualTicks,
	}
	s.CritPath = diff.CritPathDelta{
		TotalA: r.CritPath.TotalB, TotalB: r.CritPath.TotalA,
		Cores: append([]diff.CritCoreDelta(nil), r.CritPath.Cores...),
	}
	for i := range s.CritPath.Cores {
		s.CritPath.Cores[i].A, s.CritPath.Cores[i].B = s.CritPath.Cores[i].B, s.CritPath.Cores[i].A
	}
	return &s
}

// TestDiffPropertiesAllWorkloads runs every registered workload with a
// reduced and a full event-group configuration and checks, per workload:
// self-diff is identically zero, argument swap negates every delta,
// the parallel kernel is DeepEqual to the serial reference (under -race
// this also proves the shards are disjoint), and the attribution
// invariant holds on a real nonzero delta.
func TestDiffPropertiesAllWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			reduced := traceWithGroups(t, name, event.GroupLifecycle|event.GroupMFC)
			full := traceWithGroups(t, name, event.GroupAll)

			// Self-diff: identically zero, on both implementations.
			self, err := diff.Diff(full, full, diff.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !self.Zero() {
				t.Errorf("Diff(t, t) is not identically zero: %+v", self)
			}
			selfSerial, err := diff.DiffSerial(full, full, diff.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !selfSerial.Zero() {
				t.Errorf("DiffSerial(t, t) is not identically zero: %+v", selfSerial)
			}

			// Parallel/serial equivalence on a real delta.
			rep, err := diff.Diff(reduced, full, diff.Options{})
			if err != nil {
				t.Fatal(err)
			}
			repSerial, err := diff.DiffSerial(reduced, full, diff.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep, repSerial) {
				t.Errorf("Diff differs from DiffSerial:\nparallel %+v\nserial   %+v", rep, repSerial)
			}

			// Antisymmetry: Diff(b, a) is exactly the swapped report.
			rev, err := diff.Diff(full, reduced, diff.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if want := swapped(rep); !reflect.DeepEqual(rev, want) {
				t.Errorf("Diff(b, a) is not the negation of Diff(a, b):\ngot  %+v\nwant %+v", rev, want)
			}

			checkAttribution(t, rep.Overhead)
			checkAttribution(t, rev.Overhead)

			// The full-instrumentation side must actually carry more
			// records — otherwise this test isn't exercising a real delta.
			if rep.RecordDelta() <= 0 {
				t.Errorf("full config produced no extra records (%d -> %d)", rep.RecordsA, rep.RecordsB)
			}
		})
	}
}

func TestDiffWorkloadMismatch(t *testing.T) {
	a := traceWithGroups(t, "julia", event.GroupAll)
	b := traceWithGroups(t, "matmul", event.GroupAll)
	if _, err := diff.Diff(a, b, diff.Options{}); err == nil {
		t.Fatal("expected a workload-mismatch error")
	} else if !errors.Is(err, diff.ErrWorkloadMismatch) {
		t.Fatalf("expected ErrWorkloadMismatch, got %v", err)
	}
}

func TestDiffNilTrace(t *testing.T) {
	tr := traceWithGroups(t, "synthetic", event.GroupAll)
	if _, err := diff.Diff(nil, tr, diff.Options{}); err == nil {
		t.Error("Diff(nil, t) should error")
	}
	if _, err := diff.Diff(tr, nil, diff.Options{}); err == nil {
		t.Error("Diff(t, nil) should error")
	}
}

// buildFuzzTrace produces a structurally valid trace image for mutation
// (same shape as the traceio and pdt-tad fuzz bases, with two cores so
// core alignment is exercised).
func buildFuzzTrace(tb testing.TB) []byte {
	tb.Helper()
	var out bytes.Buffer
	w, err := traceio.NewWriter(&out, traceio.Header{
		Version: traceio.Version, NumSPEs: 8, TimebaseDiv: 40, ClockHz: 3_200_000_000,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteMeta(&traceio.Meta{
		Workload: "fuzz",
		Anchors: []traceio.Anchor{
			{SPE: 0, Timebase: 100, Loaded: 0xFFFFFFFF, Program: "p"},
			{SPE: 1, Timebase: 120, Loaded: 0xFFFFFFFF, Program: "p"},
		},
	}); err != nil {
		tb.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		var data []byte
		for i := 0; i < 30; i++ {
			r := event.Record{ID: event.SPEMFCGet, Core: uint8(c), Flags: event.FlagDecrTime,
				Time: uint64(i * 10), Args: []uint64{0, 64, 128, uint64(i % 16)}}
			data, err = r.AppendTo(data)
			if err != nil {
				tb.Fatal(err)
			}
		}
		if err := w.WriteChunk(traceio.Chunk{Core: uint8(c), AnchorIdx: uint16(c), Data: data}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return out.Bytes()
}

// FuzzDiff mutates one side of a diff (flip, insert, delete, truncate —
// the FuzzSalvage operation set), salvages it, and diffs it against the
// pristine base: the kernel must never panic, the parallel and serial
// results must agree, self-diff of the salvaged side must stay zero,
// and attribution must never exceed the total wall delta.
func FuzzDiff(f *testing.F) {
	f.Add(uint32(0), uint8(0), uint8(0x5A), uint16(0))
	f.Add(uint32(30), uint8(1), uint8(0xC5), uint16(0))
	f.Add(uint32(60), uint8(2), uint8(0), uint16(0))
	f.Add(uint32(100), uint8(0), uint8(0xFF), uint16(50))
	f.Add(uint32(0), uint8(3), uint8(0), uint16(9))

	f.Fuzz(func(t *testing.T, pos uint32, op, val uint8, cut uint16) {
		valid := buildFuzzTrace(t)
		base, err := analyzer.Load(bytes.NewReader(valid))
		if err != nil {
			t.Fatal(err)
		}
		data := append([]byte(nil), valid...)
		p := int(pos) % len(data)
		switch op % 4 {
		case 0: // flip
			data[p] ^= val | 1
		case 1: // insert
			data = append(data[:p], append([]byte{val}, data[p:]...)...)
		case 2: // delete
			data = append(data[:p], data[p+1:]...)
		case 3: // truncate from the end
			n := int(cut) % (len(data) + 1)
			data = data[:len(data)-n]
		}
		if int(cut) > 0 && op%4 != 3 {
			n := int(cut) % (len(data) + 1)
			data = data[:len(data)-n]
		}

		d := analyzer.DoctorData(data)
		if d == nil || d.Trace == nil {
			return // nothing recoverable; no trace to diff
		}
		mut := d.Trace

		self, err := diff.Diff(mut, mut, diff.Options{})
		if err != nil {
			t.Fatalf("self-diff of a salvaged trace errored: %v", err)
		}
		if !self.Zero() {
			t.Errorf("self-diff of a salvaged trace is not zero: %+v", self)
		}

		rep, err := diff.Diff(base, mut, diff.Options{})
		if err != nil {
			return // e.g. the mutation destroyed the workload name
		}
		repSerial, err := diff.DiffSerial(base, mut, diff.Options{})
		if err != nil {
			t.Fatalf("Diff succeeded but DiffSerial errored: %v", err)
		}
		if !reflect.DeepEqual(rep, repSerial) {
			t.Errorf("parallel and serial diffs disagree on salvaged input")
		}
		checkAttribution(t, rep.Overhead)
	})
}
