package diff

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/celltrace/pdt/internal/core/event"
)

// signed formats a delta with an explicit sign so zero reads as "+0"
// and the direction of every row is unambiguous.
func signed(v int64) string { return fmt.Sprintf("%+d", v) }

// Write renders the human-readable diff report. The output is
// byte-stable for a given report (all rows are in deterministic order,
// floats print at fixed precision), so the pdt-ta golden tests can pin
// it.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "trace diff: workload %s (deltas are B - A)\n", r.Workload)
	fmt.Fprintf(w, "records: %d -> %d (%s)\n", r.RecordsA, r.RecordsB, signed(r.RecordDelta()))
	fmt.Fprintf(w, "wall:    %d -> %d ticks (%s)\n", r.WallA, r.WallB, signed(r.WallDelta()))
	fmt.Fprintf(w, "flush:   %d -> %d ticks (%s)\n", r.FlushA, r.FlushB, signed(int64(r.FlushB)-int64(r.FlushA)))
	if r.ConfidenceA < 1 || r.ConfidenceB < 1 {
		fmt.Fprintf(w, "WARNING: degraded input — confidence A %.1f%%, B %.1f%%; deltas may understate activity\n",
			100*r.ConfidenceA, 100*r.ConfidenceB)
	}

	fmt.Fprintf(w, "\nper-core deltas (ticks; * passes gate: >=%d ticks and >=%.1f%% of the larger side):\n",
		r.Gate.MinTicks, 100*r.Gate.MinRel)
	fmt.Fprintf(w, "%-7s %9s %9s %9s %9s %9s %9s %9s %12s\n",
		"core", "recs-A", "recs-B", "wall",
		"busy", "stall", "flush", "gap", "dma-mean")
	for i := range r.Cores {
		c := &r.Cores[i]
		mark := " "
		if c.Flagged {
			mark = "*"
		}
		dmaMark := " "
		if c.DMAFlagged {
			dmaMark = "*"
		}
		fmt.Fprintf(w, "%-6s%s %9d %9d %9s %9s %9s %9s %9s %11.1f%s\n",
			event.CoreName(c.Core), mark, c.A.Records, c.B.Records,
			signed(int64(c.B.WallTicks)-int64(c.A.WallTicks)),
			signed(int64(c.B.BusyTicks)-int64(c.A.BusyTicks)),
			signed(int64(c.B.StallTicks)-int64(c.A.StallTicks)),
			signed(int64(c.B.FlushTicks)-int64(c.A.FlushTicks)),
			signed(int64(c.B.GapTicks)-int64(c.A.GapTicks)),
			c.B.DMAWait.Mean()-c.A.DMAWait.Mean(), dmaMark)
	}

	fmt.Fprintf(w, "\nevent-group deltas:\n")
	fmt.Fprintf(w, "%-11s %9s %9s %9s\n", "group", "count-A", "count-B", "delta")
	for i := range r.Groups {
		g := &r.Groups[i]
		mark := " "
		if g.Flagged {
			mark = "*"
		}
		fmt.Fprintf(w, "%-10s%s %9d %9d %9s\n", g.Group, mark, g.CountA, g.CountB, signed(g.Delta()))
	}

	o := &r.Overhead
	fmt.Fprintf(w, "\noverhead attribution (wall delta %s ticks):\n", signed(o.WallDeltaTicks))
	fmt.Fprintf(w, "  %-14s %12s   (measured flush delta %s)\n",
		"trace-flush", signed(o.FlushAttributed), signed(o.FlushDeltaTicks))
	if o.RecordDelta != 0 && o.RecordAttributed != 0 {
		fmt.Fprintf(w, "  %-14s %12s   (%s records, ~%.2f ticks/record)\n",
			"record-cost", signed(o.RecordAttributed), signed(o.RecordDelta), o.PerRecordTicks)
	} else {
		fmt.Fprintf(w, "  %-14s %12s   (%s records)\n",
			"record-cost", signed(o.RecordAttributed), signed(o.RecordDelta))
	}
	fmt.Fprintf(w, "  %-14s %12s\n", "unattributed", signed(o.ResidualTicks))

	cp := &r.CritPath
	fmt.Fprintf(w, "\ncritical path: %d -> %d ticks (%s)\n", cp.TotalA, cp.TotalB, signed(cp.Delta()))
	fmt.Fprintf(w, "%-7s %12s %12s %9s\n", "core", "A-ticks", "B-ticks", "delta")
	for i := range cp.Cores {
		cc := &cp.Cores[i]
		fmt.Fprintf(w, "%-7s %12d %12d %9s\n",
			event.CoreName(cc.Core), cc.A, cc.B, signed(int64(cc.B)-int64(cc.A)))
	}

	if r.Cycles != nil {
		r.Cycles.write(w, r.Gate)
	}
}

// jsonCoreSide mirrors CoreSide with histogram summarised.
type jsonCoreSide struct {
	Records     int     `json:"records"`
	WallTicks   uint64  `json:"wallTicks"`
	BusyTicks   uint64  `json:"busyTicks"`
	StallTicks  uint64  `json:"stallTicks"`
	FlushTicks  uint64  `json:"flushTicks"`
	GapTicks    uint64  `json:"gapTicks"`
	DMAWaits    uint64  `json:"dmaWaits"`
	DMAMeanWait float64 `json:"dmaMeanWaitTicks"`
	DMAMaxWait  uint64  `json:"dmaMaxWaitTicks"`
}

type jsonCoreDelta struct {
	Core       string       `json:"core"`
	A          jsonCoreSide `json:"a"`
	B          jsonCoreSide `json:"b"`
	Flagged    bool         `json:"flagged"`
	DMAFlagged bool         `json:"dmaFlagged"`
}

type jsonGroupDelta struct {
	Group   string `json:"group"`
	CountA  int    `json:"countA"`
	CountB  int    `json:"countB"`
	Delta   int64  `json:"delta"`
	Flagged bool   `json:"flagged"`
}

type jsonAttribution struct {
	WallDeltaTicks   int64   `json:"wallDeltaTicks"`
	FlushDeltaTicks  int64   `json:"flushDeltaTicks"`
	FlushAttributed  int64   `json:"flushAttributedTicks"`
	RecordDelta      int64   `json:"recordDelta"`
	RecordAttributed int64   `json:"recordAttributedTicks"`
	PerRecordTicks   float64 `json:"perRecordTicks"`
	ResidualTicks    int64   `json:"residualTicks"`
}

type jsonCritCore struct {
	Core  string `json:"core"`
	A     uint64 `json:"aTicks"`
	B     uint64 `json:"bTicks"`
	Delta int64  `json:"delta"`
}

type jsonCycleMetrics struct {
	Start   uint64 `json:"start"`
	Events  int    `json:"events"`
	Wall    uint64 `json:"wall"`
	Busy    uint64 `json:"busy"`
	Stall   uint64 `json:"stall"`
	DMAWait uint64 `json:"dmaWait"`
}

type jsonCyclePair struct {
	IndexA    int              `json:"indexA"`
	IndexB    int              `json:"indexB"`
	Sig       uint64           `json:"sig"`
	A         jsonCycleMetrics `json:"a"`
	B         jsonCycleMetrics `json:"b"`
	WallDelta int64            `json:"wallDelta"`
	Flagged   bool             `json:"flagged"`
}

type jsonCycleEdit struct {
	Index int              `json:"index"`
	Sig   uint64           `json:"sig"`
	M     jsonCycleMetrics `json:"metrics"`
}

type jsonCycleRun struct {
	Core      string          `json:"core"`
	Run       int             `json:"run"`
	DetectedA bool            `json:"detectedA"`
	DetectedB bool            `json:"detectedB"`
	CyclesA   int             `json:"cyclesA"`
	CyclesB   int             `json:"cyclesB"`
	Approx    bool            `json:"approx,omitempty"`
	Pairs     []jsonCyclePair `json:"pairs"`
	Deleted   []jsonCycleEdit `json:"deleted,omitempty"`
	Inserted  []jsonCycleEdit `json:"inserted,omitempty"`
	// shiftAt/shiftTicks appear only when a gated timeline shift was
	// localized (align mode).
	ShiftAt    *int  `json:"shiftAt,omitempty"`
	ShiftTicks int64 `json:"shiftTicks,omitempty"`
}

type jsonCycleDiff struct {
	Mode     string         `json:"mode"`
	Matched  int            `json:"matched"`
	Inserted int            `json:"inserted"`
	Deleted  int            `json:"deleted"`
	Runs     []jsonCycleRun `json:"runs"`
}

type jsonDiff struct {
	Workload    string           `json:"workload"`
	RecordsA    int              `json:"recordsA"`
	RecordsB    int              `json:"recordsB"`
	RecordDelta int64            `json:"recordDelta"`
	WallA       uint64           `json:"wallTicksA"`
	WallB       uint64           `json:"wallTicksB"`
	WallDelta   int64            `json:"wallDelta"`
	FlushA      uint64           `json:"flushTicksA"`
	FlushB      uint64           `json:"flushTicksB"`
	ConfidenceA float64          `json:"confidenceA,omitempty"`
	ConfidenceB float64          `json:"confidenceB,omitempty"`
	Cores       []jsonCoreDelta  `json:"cores"`
	Groups      []jsonGroupDelta `json:"groups"`
	Overhead    jsonAttribution  `json:"overhead"`
	CritPathA   uint64           `json:"critPathTicksA"`
	CritPathB   uint64           `json:"critPathTicksB"`
	CritDelta   int64            `json:"critPathDelta"`
	CritCores   []jsonCritCore   `json:"critPathCores"`
	Cycles      *jsonCycleDiff   `json:"cycles,omitempty"`
}

// WriteJSON renders the diff report as indented JSON (the `-json` CLI
// flag and the pdt-tad /v1/diff response body).
func (r *Report) WriteJSON(w io.Writer) error {
	toSide := func(s CoreSide) jsonCoreSide {
		return jsonCoreSide{
			Records: s.Records, WallTicks: s.WallTicks,
			BusyTicks: s.BusyTicks, StallTicks: s.StallTicks,
			FlushTicks: s.FlushTicks, GapTicks: s.GapTicks,
			DMAWaits: s.DMAWait.Count, DMAMeanWait: s.DMAWait.Mean(), DMAMaxWait: s.DMAWait.Max,
		}
	}
	out := jsonDiff{
		Workload: r.Workload,
		RecordsA: r.RecordsA, RecordsB: r.RecordsB, RecordDelta: r.RecordDelta(),
		WallA: r.WallA, WallB: r.WallB, WallDelta: r.WallDelta(),
		FlushA: r.FlushA, FlushB: r.FlushB,
		Cores:  []jsonCoreDelta{},
		Groups: []jsonGroupDelta{},
		Overhead: jsonAttribution{
			WallDeltaTicks:  r.Overhead.WallDeltaTicks,
			FlushDeltaTicks: r.Overhead.FlushDeltaTicks, FlushAttributed: r.Overhead.FlushAttributed,
			RecordDelta: r.Overhead.RecordDelta, RecordAttributed: r.Overhead.RecordAttributed,
			PerRecordTicks: r.Overhead.PerRecordTicks, ResidualTicks: r.Overhead.ResidualTicks,
		},
		CritPathA: r.CritPath.TotalA, CritPathB: r.CritPath.TotalB, CritDelta: r.CritPath.Delta(),
		CritCores: []jsonCritCore{},
	}
	if r.ConfidenceA < 1 || r.ConfidenceB < 1 {
		out.ConfidenceA, out.ConfidenceB = r.ConfidenceA, r.ConfidenceB
	}
	for i := range r.Cores {
		c := &r.Cores[i]
		out.Cores = append(out.Cores, jsonCoreDelta{
			Core: event.CoreName(c.Core), A: toSide(c.A), B: toSide(c.B),
			Flagged: c.Flagged, DMAFlagged: c.DMAFlagged,
		})
	}
	for i := range r.Groups {
		g := &r.Groups[i]
		out.Groups = append(out.Groups, jsonGroupDelta{
			Group: g.Group.String(), CountA: g.CountA, CountB: g.CountB,
			Delta: g.Delta(), Flagged: g.Flagged,
		})
	}
	for i := range r.CritPath.Cores {
		cc := &r.CritPath.Cores[i]
		out.CritCores = append(out.CritCores, jsonCritCore{
			Core: event.CoreName(cc.Core), A: cc.A, B: cc.B, Delta: int64(cc.B) - int64(cc.A),
		})
	}
	if r.Cycles != nil {
		toM := func(m CycleMetrics) jsonCycleMetrics {
			return jsonCycleMetrics{Start: m.Start, Events: m.Events, Wall: m.Wall,
				Busy: m.Busy, Stall: m.Stall, DMAWait: m.DMAWait}
		}
		jc := &jsonCycleDiff{
			Mode: r.Cycles.Mode, Matched: r.Cycles.Matched,
			Inserted: r.Cycles.Inserted, Deleted: r.Cycles.Deleted,
			Runs: []jsonCycleRun{},
		}
		for i := range r.Cycles.Runs {
			rr := &r.Cycles.Runs[i]
			jr := jsonCycleRun{
				Core: event.CoreName(rr.Core), Run: rr.Run,
				DetectedA: rr.DetectedA, DetectedB: rr.DetectedB,
				CyclesA: rr.CyclesA, CyclesB: rr.CyclesB, Approx: rr.Approx,
				Pairs: []jsonCyclePair{},
			}
			if rr.ShiftAt >= 0 {
				at := rr.ShiftAt
				jr.ShiftAt, jr.ShiftTicks = &at, rr.ShiftTicks
			}
			for j := range rr.Pairs {
				p := &rr.Pairs[j]
				jr.Pairs = append(jr.Pairs, jsonCyclePair{
					IndexA: p.IndexA, IndexB: p.IndexB, Sig: p.Sig,
					A: toM(p.A), B: toM(p.B), WallDelta: p.WallDelta(), Flagged: p.Flagged,
				})
			}
			for j := range rr.Deleted {
				e := &rr.Deleted[j]
				jr.Deleted = append(jr.Deleted, jsonCycleEdit{Index: e.Index, Sig: e.Sig, M: toM(e.M)})
			}
			for j := range rr.Inserted {
				e := &rr.Inserted[j]
				jr.Inserted = append(jr.Inserted, jsonCycleEdit{Index: e.Index, Sig: e.Sig, M: toM(e.M)})
			}
			jc.Runs = append(jc.Runs, jr)
		}
		out.Cycles = jc
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}
