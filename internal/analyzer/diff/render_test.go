package diff_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer/diff"
	"github.com/celltrace/pdt/internal/core/event"
)

// TestRenderTextAndJSON drives both renderers over a real reduced-vs-full
// diff and checks the load-bearing pieces: the text report carries every
// section with signed deltas, the JSON parses and round-trips the same
// totals, and rendering is deterministic.
func TestRenderTextAndJSON(t *testing.T) {
	a := traceWithGroups(t, "julia", event.GroupLifecycle|event.GroupMFC)
	b := traceWithGroups(t, "julia", event.GroupAll)
	rep, err := diff.Diff(a, b, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var text bytes.Buffer
	rep.Write(&text)
	for _, want := range []string{
		"trace diff: workload julia",
		"records:",
		"per-core deltas",
		"event-group deltas:",
		"overhead attribution",
		"trace-flush",
		"critical path",
		"+", // at least one signed delta
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
	var text2 bytes.Buffer
	rep.Write(&text2)
	if text.String() != text2.String() {
		t.Fatal("text rendering is not deterministic")
	}

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Workload    string `json:"workload"`
		RecordDelta int64  `json:"recordDelta"`
		WallDelta   int64  `json:"wallDeltaTicks"`
		Cores       []struct {
			Core string `json:"core"`
		} `json:"cores"`
		Groups   []json.RawMessage `json:"groups"`
		Overhead struct {
			WallDeltaTicks int64 `json:"wallDeltaTicks"`
		} `json:"overhead"`
	}
	if err := json.Unmarshal(js.Bytes(), &got); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v\n%s", err, js.String())
	}
	if got.Workload != "julia" || got.RecordDelta != rep.RecordDelta() {
		t.Fatalf("JSON totals drifted: %+v vs RecordDelta %d", got, rep.RecordDelta())
	}
	if got.Overhead.WallDeltaTicks != rep.Overhead.WallDeltaTicks {
		t.Fatalf("JSON overhead wallDeltaTicks = %d, want %d",
			got.Overhead.WallDeltaTicks, rep.Overhead.WallDeltaTicks)
	}
	if len(got.Cores) != len(rep.Cores) || len(got.Groups) != len(rep.Groups) {
		t.Fatalf("JSON table sizes: %d cores / %d groups, want %d / %d",
			len(got.Cores), len(got.Groups), len(rep.Cores), len(rep.Groups))
	}
}

// TestRenderZeroDiff checks a self-diff renders without signed noise in
// the attribution (everything +0) and stays valid JSON.
func TestRenderZeroDiff(t *testing.T) {
	a := traceWithGroups(t, "julia", event.GroupAll)
	rep, err := diff.Diff(a, a, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Zero() {
		t.Fatal("self-diff not zero")
	}
	var text bytes.Buffer
	rep.Write(&text)
	if !strings.Contains(text.String(), "(+0)") {
		t.Fatalf("zero diff should render +0 deltas:\n%s", text.String())
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(js.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
}
