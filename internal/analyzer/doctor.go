package analyzer

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/celltrace/pdt/internal/core/traceio"
)

// DoctorReport bundles everything `pdt-ta doctor` learns about a damaged
// trace: the byte-level salvage accounting, the trace rebuilt from the
// surviving chunks, and the structural validation of that rebuilt stream.
type DoctorReport struct {
	// Salvage is the byte-level recovery accounting; nil only when the
	// input could not be read at all.
	Salvage *traceio.SalvageReport
	// Trace is the analyzer view of the surviving records; nil when
	// nothing was recoverable or the lenient load itself failed.
	Trace *Trace
	// Validation holds the structural findings on the recovered stream.
	Validation []Issue
	// SalvageErr is the terminal salvage failure (traceio.ErrUnsalvageable
	// wrapped), LoadErr a failure turning the salvaged file into a trace.
	SalvageErr error
	LoadErr    error
}

// Recoverable reports whether any usable trace data survived.
func (d *DoctorReport) Recoverable() bool {
	return d.SalvageErr == nil && d.LoadErr == nil && d.Trace != nil
}

// DoctorFile runs the recovery pipeline on a trace file on disk.
func DoctorFile(path string) (*DoctorReport, error) {
	return DoctorFileContext(context.Background(), path, Limits{})
}

// DoctorFileContext is DoctorFile under cancellation and admission
// control.
func DoctorFileContext(ctx context.Context, path string, lim Limits) (*DoctorReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DoctorDataContext(ctx, data, lim)
}

// DoctorData salvages a raw trace image, loads the survivors leniently,
// and validates the result. The report is always non-nil; inspect
// Recoverable for the verdict.
func DoctorData(data []byte) *DoctorReport {
	d, _ := DoctorDataContext(context.Background(), data, Limits{})
	return d
}

// DoctorDataContext is DoctorData under cancellation and admission
// control; unlike recoverable damage, a cancelled context or an input
// over the limits is a hard error (nil report).
func DoctorDataContext(ctx context.Context, data []byte, lim Limits) (*DoctorReport, error) {
	if lim.MaxFileBytes > 0 && int64(len(data)) > lim.MaxFileBytes {
		return nil, fmt.Errorf("%w: doctor input %d bytes over limit %d",
			ErrLimitExceeded, len(data), lim.MaxFileBytes)
	}
	d := &DoctorReport{}
	f, rep, err := traceio.SalvageContext(ctx, data)
	d.Salvage = rep
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		d.SalvageErr = err
		return d, nil
	}
	tr, err := FromSalvagedContext(ctx, f, rep, lim)
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, ErrLimitExceeded) {
			return nil, err
		}
		d.LoadErr = err
		return d, nil
	}
	d.Trace = tr
	d.Validation = Validate(tr)
	return d, nil
}

// Verdict returns the one-word assessment Write prints: UNREADABLE,
// UNRECOVERABLE, CLEAN, or RECOVERED.
func (d *DoctorReport) Verdict() string {
	switch {
	case d.Salvage == nil:
		return "UNREADABLE"
	case d.SalvageErr != nil || d.LoadErr != nil:
		return "UNRECOVERABLE"
	}
	errs := 0
	for _, is := range d.Validation {
		if is.Severity == "error" {
			errs++
		}
	}
	if d.Salvage.Clean() && errs == 0 {
		return "CLEAN"
	}
	return "RECOVERED"
}

// jsonDoctor is the machine-readable shape of a DoctorReport, served by
// pdt-tad's /v1/doctor endpoint.
type jsonDoctor struct {
	Verdict     string                 `json:"verdict"`
	Recoverable bool                   `json:"recoverable"`
	Salvage     *traceio.SalvageReport `json:"salvage,omitempty"`
	SalvageErr  string                 `json:"salvageError,omitempty"`
	LoadErr     string                 `json:"loadError,omitempty"`
	Events      int                    `json:"events,omitempty"`
	Runs        int                    `json:"runs,omitempty"`
	Confidence  float64                `json:"confidence,omitempty"`
	Validation  []string               `json:"validation,omitempty"`
}

// WriteJSON renders the doctor report as JSON.
func (d *DoctorReport) WriteJSON(w io.Writer) error {
	out := jsonDoctor{
		Verdict:     d.Verdict(),
		Recoverable: d.Recoverable(),
		Salvage:     d.Salvage,
	}
	if d.SalvageErr != nil {
		out.SalvageErr = d.SalvageErr.Error()
	}
	if d.LoadErr != nil {
		out.LoadErr = d.LoadErr.Error()
	}
	if d.Trace != nil {
		out.Events = d.Trace.NumEvents()
		out.Runs = len(d.Trace.Meta.Anchors)
		out.Confidence = d.Trace.Confidence.Overall
	}
	for _, is := range d.Validation {
		out.Validation = append(out.Validation, is.String())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// Write renders the doctor report for humans.
func (d *DoctorReport) Write(w io.Writer) {
	rep := d.Salvage
	if rep == nil {
		fmt.Fprintln(w, "verdict: UNREADABLE — no salvage was attempted")
		return
	}
	status := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "DAMAGED"
	}
	fmt.Fprintf(w, "header:   %s\n", status(rep.HeaderOK))
	fmt.Fprintf(w, "metadata: %s\n", status(rep.MetaOK))
	fmt.Fprintf(w, "footer:   %s\n", status(rep.FooterOK))
	fmt.Fprintf(w, "bytes:    %d total = %d structural + %d recovered + %d damaged + %d skipped\n",
		rep.BytesTotal, rep.BytesStructural, rep.BytesRecovered, rep.BytesDamaged, rep.BytesSkipped)
	fmt.Fprintf(w, "chunks:   %d recovered, %d damaged (trimmed), %d dropped; %d records; %d resync(s)\n",
		rep.ChunksRecovered, rep.ChunksDamaged, rep.ChunksDropped, rep.RecordsRecovered, rep.Resyncs)

	if len(rep.PerCore) > 0 {
		cores := make([]int, 0, len(rep.PerCore))
		for c := range rep.PerCore {
			cores = append(cores, int(c))
		}
		sort.Ints(cores)
		fmt.Fprintf(w, "\n%-6s %9s %8s %8s %9s %10s %10s\n",
			"core", "recovered", "damaged", "dropped", "records", "bytes-ok", "bytes-bad")
		for _, c := range cores {
			cs := rep.PerCore[uint8(c)]
			fmt.Fprintf(w, "%-6d %9d %8d %8d %9d %10d %10d\n",
				c, cs.ChunksRecovered, cs.ChunksDamaged, cs.ChunksDropped,
				cs.RecordsRecovered, cs.BytesRecovered, cs.BytesDamaged)
		}
	}

	if len(rep.Notes) > 0 {
		fmt.Fprintf(w, "\nfindings:\n")
		for _, n := range rep.Notes {
			fmt.Fprintf(w, "  %s\n", n)
		}
	}

	switch {
	case d.SalvageErr != nil:
		fmt.Fprintf(w, "\nverdict: UNRECOVERABLE — %v\n", d.SalvageErr)
		return
	case d.LoadErr != nil:
		fmt.Fprintf(w, "\nverdict: UNRECOVERABLE — salvaged chunks did not load: %v\n", d.LoadErr)
		return
	}

	tr := d.Trace
	fmt.Fprintf(w, "\nrecovered trace: %d events across %d run(s)\n",
		tr.NumEvents(), len(tr.Meta.Anchors))
	fmt.Fprintf(w, "confidence: %.1f%% overall", 100*tr.Confidence.Overall)
	if len(tr.Confidence.PerCore) > 0 {
		cores := make([]int, 0, len(tr.Confidence.PerCore))
		for c := range tr.Confidence.PerCore {
			cores = append(cores, int(c))
		}
		sort.Ints(cores)
		fmt.Fprint(w, " (")
		for i, c := range cores {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "core %d: %.1f%%", c, 100*tr.Confidence.PerCore[uint8(c)])
		}
		fmt.Fprint(w, ")")
	}
	fmt.Fprintln(w)
	errs, warns := 0, 0
	for _, is := range d.Validation {
		if is.Severity == "error" {
			errs++
		} else {
			warns++
		}
	}
	fmt.Fprintf(w, "validation: %d error(s), %d warning(s) on the recovered stream\n", errs, warns)
	if rep.Clean() && errs == 0 {
		fmt.Fprintln(w, "verdict: CLEAN — no damage found")
	} else {
		fmt.Fprintln(w, "verdict: RECOVERED — partial trace is usable")
	}
}
