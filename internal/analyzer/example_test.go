package analyzer_test

import (
	"bytes"
	"fmt"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
)

// ExampleSummarize traces a run with a deliberate DMA stall and shows the
// analyzer attributing the time: the SPE spends most of its life waiting
// on the tag group.
func ExampleSummarize() {
	mc := cell.DefaultConfig()
	mc.MemSize = 8 * cell.MiB
	m := cell.NewMachine(mc)
	session := core.NewSession(m, core.DefaultTraceConfig())
	session.Attach()

	m.RunMain(func(h cell.Host) {
		src := h.Alloc(16*1024, 128)
		h.Wait(h.Run(0, "staller", func(spu cell.SPU) uint32 {
			for i := 0; i < 10; i++ {
				spu.Get(0, src, 16*1024, 0) // max-size transfer...
				spu.WaitTagAll(1)           // ...waited on synchronously
				spu.Compute(100)            // almost no compute
			}
			return 0
		}))
	})
	if err := m.Run(); err != nil {
		panic(err)
	}

	var buf bytes.Buffer
	if err := session.WriteTrace(&buf); err != nil {
		panic(err)
	}
	tr, err := analyzer.Load(&buf)
	if err != nil {
		panic(err)
	}
	s := analyzer.Summarize(tr)
	r := s.Runs[0]
	dmaShare := float64(r.StateTicks[analyzer.StateStallDMA]) / float64(r.Wall())
	fmt.Printf("runs: %d, DMA waits: %d\n", len(s.Runs), s.DMA[0].Waits)
	fmt.Printf("dma-wait dominates: %v\n", dmaShare > 0.5)
	// Output:
	// runs: 1, DMA waits: 10
	// dma-wait dominates: true
}
