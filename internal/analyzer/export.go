package analyzer

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/celltrace/pdt/internal/core/event"
)

// WriteCSV exports the merged event stream as CSV:
// seq,global_tick,core,run,event,args...,str
func WriteCSV(tr *Trace, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "global_tick", "core", "run", "event", "args", "str"}); err != nil {
		return err
	}
	for i, n := 0, tr.NumEvents(); i < n; i++ {
		e := tr.Event(i)
		core := event.CoreName(e.Core)
		args := ""
		info, _ := event.Lookup(e.ID)
		for i, a := range e.Args {
			if i > 0 {
				args += " "
			}
			name := fmt.Sprintf("a%d", i)
			if i < len(info.Args) {
				name = info.Args[i]
			}
			args += fmt.Sprintf("%s=%d", name, a)
		}
		rec := []string{
			strconv.Itoa(e.Seq),
			strconv.FormatUint(e.Global, 10),
			core,
			strconv.Itoa(e.Run),
			e.ID.String(),
			args,
			e.Str,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonSummary is the JSON shape of a Summary report.
type jsonSummary struct {
	Workload      string         `json:"workload"`
	WallTicks     uint64         `json:"wallTicks"`
	TotalRecords  int            `json:"totalRecords"`
	LoadImbalance float64        `json:"loadImbalance"`
	FlushTicks    uint64         `json:"flushTicks"`
	Confidence    float64        `json:"confidence,omitempty"`
	Runs          []jsonRun      `json:"runs"`
	EventCounts   map[string]int `json:"eventCounts"`
	Issues        []string       `json:"issues,omitempty"`
}

type jsonRun struct {
	Run         int               `json:"run"`
	Core        uint8             `json:"core"`
	Program     string            `json:"program"`
	WallTicks   uint64            `json:"wallTicks"`
	Utilization float64           `json:"utilization"`
	States      map[string]uint64 `json:"stateTicks"`
	Events      int               `json:"events"`
	Confidence  float64           `json:"confidence,omitempty"`
}

// WriteJSON exports the summary (and any validation issues on tr) as JSON.
func WriteJSON(tr *Trace, s *Summary, w io.Writer) error {
	out := jsonSummary{
		Workload:      s.Workload,
		WallTicks:     s.WallTicks,
		TotalRecords:  s.TotalRecs,
		LoadImbalance: s.LoadImbalance,
		FlushTicks:    s.FlushTicks,
		EventCounts:   map[string]int{},
	}
	if tr.Confidence.Degraded() {
		out.Confidence = tr.Confidence.Overall
	}
	for id, n := range s.EventCount {
		out.EventCounts[id.String()] = n
	}
	for i := range s.Runs {
		r := &s.Runs[i]
		jr := jsonRun{
			Run: r.Run, Core: r.Core, Program: r.Program,
			WallTicks: r.Wall(), Utilization: r.Utilization(),
			States: map[string]uint64{}, Events: r.Events,
		}
		if r.Confidence > 0 && r.Confidence < 1 {
			jr.Confidence = r.Confidence
		}
		for _, st := range States() {
			jr.States[st.String()] = r.StateTicks[st]
		}
		out.Runs = append(out.Runs, jr)
	}
	for _, i := range tr.Issues {
		out.Issues = append(out.Issues, i.String())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// jsonProfilePair is the JSON shape of one PairProfile row.
type jsonProfilePair struct {
	Interval   string  `json:"interval"`
	Count      int     `json:"count"`
	TotalTicks uint64  `json:"totalTicks"`
	MeanTicks  float64 `json:"meanTicks"`
	MaxTicks   uint64  `json:"maxTicks"`
	Confidence float64 `json:"confidence,omitempty"`
}

// WriteProfileJSON exports the interval profile (most expensive pair
// first, like WriteProfile) as JSON. Confidence appears only on degraded
// traces, mirroring the human-readable table.
func WriteProfileJSON(tr *Trace, w io.Writer) error {
	return WriteProfilePairsJSON(tr, Profile(tr), w)
}

// WriteProfilePairsJSON exports an already-computed profile as JSON,
// letting the cached service path reuse a memoized result instead of
// rescanning the trace.
func WriteProfilePairsJSON(tr *Trace, pairs []PairProfile, w io.Writer) error {
	degraded := tr.Confidence.Degraded()
	out := struct {
		Intervals []jsonProfilePair `json:"intervals"`
	}{Intervals: []jsonProfilePair{}}
	for _, p := range pairs {
		name := p.Enter.String()
		if n := len(name); n > 6 && name[n-6:] == "_ENTER" {
			name = name[:n-6]
		}
		jp := jsonProfilePair{
			Interval:   name,
			Count:      p.Count,
			TotalTicks: p.Ticks.Sum,
			MeanTicks:  p.Ticks.Mean(),
			MaxTicks:   p.Ticks.Max,
		}
		if degraded {
			jp.Confidence = p.Confidence
		}
		out.Intervals = append(out.Intervals, jp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// jsonGap is the JSON shape of one event-free stretch.
type jsonGap struct {
	Run       int    `json:"run"`
	Core      uint8  `json:"core"`
	StartTick uint64 `json:"startTick"`
	EndTick   uint64 `json:"endTick"`
	Ticks     uint64 `json:"ticks"`
}

// WriteGapsJSON exports an already-computed gap report (threshold plus
// the gaps FindGaps returned for it) as JSON, served by pdt-tad's
// /v1/gaps endpoint.
func WriteGapsJSON(minTicks uint64, gaps []Gap, w io.Writer) error {
	out := struct {
		MinTicks uint64    `json:"minTicks"`
		Gaps     []jsonGap `json:"gaps"`
	}{MinTicks: minTicks, Gaps: []jsonGap{}}
	for _, g := range gaps {
		out.Gaps = append(out.Gaps, jsonGap{
			Run: g.Run, Core: g.Core, StartTick: g.Start, EndTick: g.End, Ticks: g.Dur(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// jsonPathSegment is the JSON shape of one critical-path hop.
type jsonPathSegment struct {
	Core      string `json:"core"`
	Run       int    `json:"run"`
	StartTick uint64 `json:"startTick"`
	EndTick   uint64 `json:"endTick"`
	Ticks     uint64 `json:"ticks"`
	Via       string `json:"via"`
	Cross     bool   `json:"cross"`
}

// WriteCriticalPathJSON exports an already-computed critical path as
// JSON, served by pdt-tad's /v1/critpath endpoint.
func WriteCriticalPathJSON(cp *CriticalPath, w io.Writer) error {
	out := struct {
		TotalTicks uint64            `json:"totalTicks"`
		CoreTicks  map[string]uint64 `json:"coreTicks"`
		Segments   []jsonPathSegment `json:"segments"`
	}{TotalTicks: cp.Total, CoreTicks: map[string]uint64{}, Segments: []jsonPathSegment{}}
	for c, t := range cp.CoreTicks {
		out.CoreTicks[event.CoreName(c)] = t
	}
	for _, s := range cp.Segments {
		out.Segments = append(out.Segments, jsonPathSegment{
			Core: event.CoreName(s.Core), Run: s.Run,
			StartTick: s.Start, EndTick: s.End, Ticks: s.Dur(),
			Via: s.Via.String(), Cross: s.Cross,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// Report renders the human-readable summary the pdt-ta CLI prints.
func Report(tr *Trace, s *Summary, w io.Writer) {
	reportTo(w, tr, s, SummarizePPE(tr), EffectiveConcurrency(tr))
}

// Report renders the same human-readable summary from a streaming
// result: every figure comes from the incremental accumulators, so the
// bytes match Report on the batch-loaded trace exactly.
func (r *StreamResult) Report(w io.Writer) {
	reportTo(w, r.Trace, r.Summary, r.PPE, r.EffectiveConcurrency)
}

// reportTo is the shared renderer behind the batch and streaming
// reports: everything it prints arrives as an argument, so the two
// paths cannot drift apart.
func reportTo(w io.Writer, tr *Trace, s *Summary, ppe PPEStats, effConc float64) {
	fmt.Fprintf(w, "workload: %s\n", s.Workload)
	fmt.Fprintf(w, "records:  %d (wall %d timebase ticks)\n", s.TotalRecs, s.WallTicks)
	if tr.Confidence.Degraded() {
		fmt.Fprintf(w, "WARNING: degraded trace — confidence %.1f%% (estimated fraction of records that survived)\n",
			100*tr.Confidence.Overall)
	}
	if s.LoadImbalance > 0 {
		fmt.Fprintf(w, "load imbalance (max/mean busy): %.3f\n", s.LoadImbalance)
	}
	if len(tr.Meta.Drops) > 0 {
		for _, d := range tr.Meta.Drops {
			fmt.Fprintf(w, "WARNING: SPE %d dropped %d records\n", d.SPE, d.Count)
		}
	}
	fmt.Fprintf(w, "\n%-4s %-4s %-14s %12s %7s %10s %10s %10s %10s %10s %10s\n",
		"run", "core", "program", "wall", "util", "dma-wait", "mbox-wait", "sig-wait", "sync-wait", "flush", "events")
	for i := range s.Runs {
		r := &s.Runs[i]
		fmt.Fprintf(w, "%-4d %-4d %-14s %12d %6.1f%% %10d %10d %10d %10d %10d %10d\n",
			r.Run, r.Core, r.Program, r.Wall(), 100*r.Utilization(),
			r.StateTicks[StateStallDMA], r.StateTicks[StateStallMbox],
			r.StateTicks[StateStallSignal], r.StateTicks[StateStallSync],
			r.StateTicks[StateFlush], r.Events)
	}
	fmt.Fprintf(w, "\nDMA per run:\n%-4s %-6s %-6s %-6s %12s %12s %10s %12s\n",
		"run", "gets", "puts", "lists", "bytesIn", "bytesOut", "waits", "meanWait")
	for i := range s.DMA {
		d := &s.DMA[i]
		fmt.Fprintf(w, "%-4d %-6d %-6d %-6d %12d %12d %10d %12.1f\n",
			d.Run, d.Gets, d.Puts, d.Lists, d.BytesIn, d.BytesOut, d.Waits, d.WaitTicks.Mean())
	}
	if ppe.Records > 0 {
		fmt.Fprintf(w, "\nPPE: %d records, %d SPE waits (%d ticks blocked), %d/%d mbox reads/writes (%d ticks), %d proxy cmds (%d bytes)\n",
			ppe.Records, ppe.SPEWaits, ppe.WaitTicks, ppe.MboxReads, ppe.MboxWrites,
			ppe.MboxWaitTicks, ppe.ProxyGets+ppe.ProxyPuts, ppe.ProxyBytes)
	}
	fmt.Fprintf(w, "effective SPE concurrency: %.2f\n", effConc)
	fmt.Fprintf(w, "\ntop events:\n")
	for i, ec := range s.TopEvents() {
		if i >= 12 {
			break
		}
		fmt.Fprintf(w, "  %-28s %10d\n", ec.ID, ec.Count)
	}
	if len(tr.Issues) > 0 {
		fmt.Fprintf(w, "\nissues:\n")
		for _, is := range tr.Issues {
			fmt.Fprintf(w, "  %s\n", is)
		}
	}
}
