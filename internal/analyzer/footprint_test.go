package analyzer_test

// Footprint calibration: the trace cache bounds its memory by
// Trace.Footprint, so the estimate must track what a loaded trace
// actually keeps live. The test measures real heap growth across a
// batch of loads and requires the column-derived estimate to land
// within 2x of it in either direction.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/traceio"
	"github.com/celltrace/pdt/internal/harness"
)

func TestFootprintWithinTwiceMeasured(t *testing.T) {
	events := 20000
	if testing.Short() {
		events = 4000
	}
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{
		Workload: "synthetic",
		Params:   map[string]string{"events": fmt.Sprint(events), "gap": "100"},
		Trace:    &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := traceio.Parse(res.TraceBytes)
	if err != nil {
		t.Fatal(err)
	}

	// Load several copies so the per-trace live size dwarfs allocator
	// and GC noise; HeapAlloc after a forced GC counts live bytes only.
	const copies = 4
	trs := make([]*analyzer.Trace, copies)
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := range trs {
		trs[i], err = analyzer.FromFile(f)
		if err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	measured := int64(m1.HeapAlloc-m0.HeapAlloc) / copies
	estimate := trs[0].Footprint()
	runtime.KeepAlive(trs)

	t.Logf("events=%d estimate=%d measured=%d ratio=%.2f",
		trs[0].NumEvents(), estimate, measured, float64(estimate)/float64(measured))
	if measured <= 0 {
		t.Fatalf("measured live size not positive: %d", measured)
	}
	if estimate < measured/2 || estimate > measured*2 {
		t.Fatalf("Footprint()=%d not within 2x of measured live size %d", estimate, measured)
	}
}
