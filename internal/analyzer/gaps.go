package analyzer

import (
	"fmt"
	"io"
	"sort"
)

// Gap is one unusually long stretch of an SPE run with no trace events —
// either genuine heavy compute or a stall in an untraced code path. The
// TA surfaces these so the user knows where the trace is blind; the fix
// on the paper's tool was exactly the user-event API (annotate the gap).
type Gap struct {
	Run   int
	Core  uint8
	Start uint64
	End   uint64
}

// Dur returns the gap length in timebase ticks.
func (g Gap) Dur() uint64 { return g.End - g.Start }

// runGaps collects one run's gaps of at least minTicks by walking the
// run's index block against the Global column.
func runGaps(tr *Trace, run int, minTicks uint64) []Gap {
	seqs := tr.runSeqsOrScan(run)
	var out []Gap
	s := tr.col
	for i := 1; i < len(seqs); i++ {
		prev, cur := s.Global[seqs[i-1]], s.Global[seqs[i]]
		if cur-prev >= minTicks {
			out = append(out, Gap{
				Run: run, Core: s.Core[seqs[i]],
				Start: prev, End: cur,
			})
		}
	}
	return out
}

// FindGaps returns event-free stretches of at least minTicks inside SPE
// runs, longest first. Past the adaptive-parallelism threshold the
// independent per-run scans execute concurrently and are concatenated in
// run order before the global sort, which produces exactly the output of
// FindGapsSerial.
func FindGaps(tr *Trace, minTicks uint64) []Gap {
	n := len(tr.Meta.Anchors)
	if n < 2 || !tr.parallelWorthwhile() {
		return FindGapsSerial(tr, minTicks)
	}
	parts := make([][]Gap, n)
	runParallel(0, n, func(run int) {
		parts[run] = runGaps(tr, run, minTicks)
	})
	var out []Gap
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dur() > out[j].Dur() })
	return out
}

// FindGapsSerial is the sequential reference for FindGaps.
func FindGapsSerial(tr *Trace, minTicks uint64) []Gap {
	var out []Gap
	for run := range tr.Meta.Anchors {
		out = append(out, runGaps(tr, run, minTicks)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dur() > out[j].Dur() })
	return out
}

// SuggestGapThreshold proposes a threshold from the run statistics:
// twenty times the median inter-event distance (the median is robust to
// the very gaps being hunted), floored at 10 ticks.
func SuggestGapThreshold(tr *Trace) uint64 {
	var dists []uint64
	s := tr.col
	for run := range tr.Meta.Anchors {
		seqs := tr.runSeqsOrScan(run)
		for i := 1; i < len(seqs); i++ {
			dists = append(dists, s.Global[seqs[i]]-s.Global[seqs[i-1]])
		}
	}
	if len(dists) == 0 {
		return 10
	}
	sort.Slice(dists, func(i, j int) bool { return dists[i] < dists[j] })
	th := dists[len(dists)/2] * 20
	if th < 10 {
		th = 10
	}
	return th
}

// WriteGaps renders the gap report.
func WriteGaps(tr *Trace, minTicks uint64, topN int, w io.Writer) {
	if minTicks == 0 {
		minTicks = SuggestGapThreshold(tr)
	}
	WriteGapsFound(minTicks, FindGaps(tr, minTicks), topN, w)
}

// WriteGapsFound renders an already-computed gap report, letting callers
// (the cached service path, the concurrent report path) reuse a memoized
// result.
func WriteGapsFound(minTicks uint64, gaps []Gap, topN int, w io.Writer) {
	fmt.Fprintf(w, "event-free stretches >= %d ticks: %d found\n", minTicks, len(gaps))
	if topN > len(gaps) {
		topN = len(gaps)
	}
	for _, g := range gaps[:topN] {
		fmt.Fprintf(w, "  SPE%-3d run %-3d [%d,%d) %10d ticks\n", g.Core, g.Run, g.Start, g.End, g.Dur())
	}
	if len(gaps) > 0 {
		fmt.Fprintln(w, "hint: annotate hot loops with core.User / core.UserLog to subdivide gaps")
	}
}
