package analyzer

import (
	"bytes"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
)

func gapTrace(t *testing.T) *Trace {
	t.Helper()
	return simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(0, "gappy", func(spu cell.SPU) uint32 {
			spu.Get(0, 0, 64, 0)
			spu.WaitTagAll(1)
			spu.Compute(400000) // 10000 timebase ticks of silence
			spu.Get(0, 0, 64, 0)
			spu.WaitTagAll(1)
			return 0
		}))
	})
}

func TestFindGaps(t *testing.T) {
	tr := gapTrace(t)
	gaps := FindGaps(tr, 5000)
	if len(gaps) != 1 {
		t.Fatalf("gaps = %+v", gaps)
	}
	if gaps[0].Dur() < 9000 || gaps[0].Core != 0 {
		t.Fatalf("gap = %+v", gaps[0])
	}
	// A huge threshold finds nothing.
	if g := FindGaps(tr, 1<<40); len(g) != 0 {
		t.Fatalf("gaps at huge threshold: %+v", g)
	}
}

func TestSuggestGapThreshold(t *testing.T) {
	tr := gapTrace(t)
	th := SuggestGapThreshold(tr)
	if th < 10 {
		t.Fatalf("threshold = %d", th)
	}
	gaps := FindGaps(tr, th)
	if len(gaps) == 0 {
		t.Fatal("auto threshold misses the obvious gap")
	}
	if SuggestGapThreshold(&Trace{}) != 10 {
		t.Fatal("empty-trace threshold not floored")
	}
}

func TestWriteGaps(t *testing.T) {
	tr := gapTrace(t)
	var buf bytes.Buffer
	WriteGaps(tr, 0, 5, &buf)
	out := buf.String()
	for _, want := range []string{"event-free", "SPE0", "hint"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
