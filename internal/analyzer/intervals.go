package analyzer

import (
	"fmt"

	"github.com/celltrace/pdt/internal/core/event"
)

// State classifies what an SPE was doing during an interval.
type State int

const (
	// StateCompute is time between traced events: the SPU was running
	// application code (includes untraced library time).
	StateCompute State = iota
	// StateStallDMA is time inside a tag-group wait.
	StateStallDMA
	// StateStallMbox is time blocked on a mailbox access.
	StateStallMbox
	// StateStallSignal is time blocked reading a signal register.
	StateStallSignal
	// StateStallSync is time inside barrier/mutex/work-queue waits.
	StateStallSync
	// StateFlush is PDT's own trace-buffer flush time.
	StateFlush
	// StateHostWait is PPE time blocked waiting for an SPE program to
	// finish (PPE lane only).
	StateHostWait
	numStates
)

var stateNames = [numStates]string{"compute", "dma-wait", "mbox-wait", "signal-wait", "sync-wait", "trace-flush", "spe-wait"}

func (s State) String() string {
	if s >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// States lists all states in order.
func States() []State {
	out := make([]State, numStates)
	for i := range out {
		out[i] = State(i)
	}
	return out
}

// Interval is a span of one SPE program run in a single state.
type Interval struct {
	Core  uint8
	Run   int
	State State
	Start uint64 // timebase ticks, global
	End   uint64
}

// Dur returns the interval length in timebase ticks.
func (iv Interval) Dur() uint64 { return iv.End - iv.Start }

// stallState maps Enter events to the state they open.
var stallState = map[event.ID]State{
	event.SPEWaitTagEnter:       StateStallDMA,
	event.SPEReadInMboxEnter:    StateStallMbox,
	event.SPEWriteOutMboxEnter:  StateStallMbox,
	event.SPEWriteIntrMboxEnter: StateStallMbox,
	event.SPEReadSignalEnter:    StateStallSignal,
	event.SyncBarrierEnter:      StateStallSync,
	event.SyncMutexEnter:        StateStallSync,
	event.SyncWQGetEnter:        StateStallSync,
	event.SPEAtomicEnter:        StateStallSync,
}

// runSeqsOrScan returns the store rows of one run: the precomputed index
// block when the run is in range, otherwise (hand-assembled traces whose
// metadata lacks anchors) a fresh scan of the Run column.
func (tr *Trace) runSeqsOrScan(run int) []int32 {
	if tr.col == nil {
		return nil
	}
	if run >= 0 && run < len(tr.runSeq) {
		return tr.runSeq[run]
	}
	var out []int32
	for i, r := range tr.col.Run {
		if int(r) == run {
			out = append(out, int32(i))
		}
	}
	return out
}

// RunIntervals reconstructs the state intervals of one SPE program run.
// The run spans SPE_PROGRAM_START..SPE_PROGRAM_END; time not inside a
// stall or flush is attributed to compute. The scan walks the run's
// index block against the ID and Global columns, touching arguments only
// at flush markers.
func RunIntervals(tr *Trace, run int) []Interval {
	seqs := tr.runSeqsOrScan(run)
	if len(seqs) == 0 {
		return nil
	}
	s := tr.col
	var out []Interval
	core := s.Core[seqs[0]]
	cursor := s.Global[seqs[0]] // start of the segment being classified
	var openState State
	var open bool
	var openStart uint64
	cpt := tr.CyclesPerTick()

	emit := func(state State, start, end uint64) {
		if end > start {
			out = append(out, Interval{Core: core, Run: run, State: state, Start: start, End: end})
		}
	}

	for _, seq := range seqs {
		id := s.ID[seq]
		if int(id) >= len(kindOf) || id == 0 {
			continue
		}
		global := s.Global[seq]
		switch {
		case kindOf[id] == event.KindEnter:
			if st, stalls := stallState[id]; stalls && !open {
				emit(StateCompute, cursor, global)
				open = true
				openState = st
				openStart = global
			}
		case kindOf[id] == event.KindExit:
			if open && stallState[pairOf[id]] == openState {
				emit(openState, openStart, global)
				open = false
				cursor = global
			}
		case id == event.SPETraceFlush:
			// Point event stamped at flush completion; its duration in
			// cycles is the second argument.
			ticks := s.Args[s.ArgOff[seq]+1] / cpt
			start := global
			if ticks < global {
				start = global - ticks
			}
			if start < cursor {
				start = cursor // never overlap the previous interval
			}
			if !open {
				emit(StateCompute, cursor, start)
				emit(StateFlush, start, global)
				cursor = global
			}
		case id == event.SPEProgramEnd:
			if !open {
				emit(StateCompute, cursor, global)
				cursor = global
			}
		}
	}
	if open {
		// Truncated trace: close the stall at the last event time.
		last := s.Global[seqs[len(seqs)-1]]
		emit(openState, openStart, last)
	}
	return out
}

// Intervals reconstructs state intervals for every SPE run in the trace.
// Each run's reconstruction is independent (RunIntervals only reads that
// run's event view), so the per-run scans execute concurrently on a
// bounded pool and are concatenated in run order — the exact output of
// IntervalsSerial.
func Intervals(tr *Trace) []Interval {
	n := len(tr.Meta.Anchors)
	if n < 2 || !tr.parallelWorthwhile() {
		return IntervalsSerial(tr)
	}
	parts := make([][]Interval, n)
	runParallel(0, n, func(run int) {
		parts[run] = RunIntervals(tr, run)
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]Interval, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// IntervalsSerial is the sequential reference for Intervals.
func IntervalsSerial(tr *Trace) []Interval {
	var out []Interval
	for run := range tr.Meta.Anchors {
		out = append(out, RunIntervals(tr, run)...)
	}
	return out
}

// ppeStallState maps PPE Enter events to the state they open.
var ppeStallState = map[event.ID]State{
	event.PPEWaitEnter:         StateHostWait,
	event.PPEReadOutMboxEnter:  StateStallMbox,
	event.PPEReadIntrMboxEnter: StateStallMbox,
	event.PPEWriteInMboxEnter:  StateStallMbox,
	event.PPEWaitTagEnter:      StateStallDMA,
	event.PPEAtomicEnter:       StateStallSync,
}

// PPEIntervals reconstructs the host lanes — one per PPE thread (the
// main thread records as CorePPE, spawned threads count down), classified
// by the host's blocking calls. Returns nil when the trace has no PPE
// events. The interval Run field is -1 for the main thread, -2 for the
// first spawned thread, and so on.
//
// Each thread's lane depends only on that thread's stream-ordered events,
// so the per-thread scans run concurrently over the per-core views and
// are concatenated in thread order — the exact output of
// PPEIntervalsSerial, which rescans the full stream once per possible
// thread.
func PPEIntervals(tr *Trace) []Interval {
	n := int(event.CorePPE) - int(event.CorePPEBase) + 1
	parts := make([][]Interval, n)
	workers := 0
	if !tr.parallelWorthwhile() {
		workers = 1 // small trace: the lane scans are cheaper than the pool
	}
	runParallel(workers, n, func(i int) {
		core := uint8(int(event.CorePPE) - i)
		parts[i] = ppeLaneIntervals(tr, tr.CoreSeqs(core), core, -1-i)
	})
	var out []Interval
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// PPEIntervalsSerial is the sequential reference for PPEIntervals.
func PPEIntervalsSerial(tr *Trace) []Interval {
	var out []Interval
	for core := int(event.CorePPE); core >= int(event.CorePPEBase); core-- {
		out = append(out, ppeThreadIntervals(tr, uint8(core), -1-(int(event.CorePPE)-core))...)
	}
	return out
}

// ppeLaneIntervals builds the lane of one PPE thread from its own
// stream-ordered index block of the columnar store.
func ppeLaneIntervals(tr *Trace, seqs []int32, core uint8, run int) []Interval {
	if len(seqs) == 0 {
		return nil
	}
	s := tr.col
	var out []Interval
	var cursor, lastPPE uint64
	var started bool
	var open bool
	var openState State
	var openStart uint64
	emit := func(state State, start, end uint64) {
		if end > start {
			out = append(out, Interval{Core: core, Run: run, State: state, Start: start, End: end})
		}
	}
	for _, seq := range seqs {
		global := s.Global[seq]
		if !started {
			started = true
			cursor = global
		}
		lastPPE = global
		id := s.ID[seq]
		if id == 0 || int(id) >= len(kindOf) {
			continue
		}
		switch kindOf[id] {
		case event.KindEnter:
			if st, stalls := ppeStallState[id]; stalls && !open {
				emit(StateCompute, cursor, global)
				open = true
				openState = st
				openStart = global
			}
		case event.KindExit:
			if open && ppeStallState[pairOf[id]] == openState {
				emit(openState, openStart, global)
				open = false
				cursor = global
			}
		}
	}
	if !started {
		return nil
	}
	if open {
		emit(openState, openStart, lastPPE) // truncated trace
	} else {
		emit(StateCompute, cursor, lastPPE)
	}
	return out
}

// ppeThreadIntervals builds the lane of one PPE thread by scanning the
// merged stream's Core column (the serial reference path).
func ppeThreadIntervals(tr *Trace, core uint8, run int) []Interval {
	if tr.col == nil {
		return nil
	}
	s := tr.col
	var out []Interval
	var cursor, lastPPE uint64
	var started bool
	var open bool
	var openState State
	var openStart uint64
	emit := func(state State, start, end uint64) {
		if end > start {
			out = append(out, Interval{Core: core, Run: run, State: state, Start: start, End: end})
		}
	}
	for i, c := range s.Core {
		if c != core {
			continue
		}
		global := s.Global[i]
		if !started {
			started = true
			cursor = global
		}
		lastPPE = global
		id := s.ID[i]
		if id == 0 || int(id) >= len(kindOf) {
			continue
		}
		switch kindOf[id] {
		case event.KindEnter:
			if st, stalls := ppeStallState[id]; stalls && !open {
				emit(StateCompute, cursor, global)
				open = true
				openState = st
				openStart = global
			}
		case event.KindExit:
			if open && ppeStallState[pairOf[id]] == openState {
				emit(openState, openStart, global)
				open = false
				cursor = global
			}
		}
	}
	if !started {
		return nil
	}
	if open {
		emit(openState, openStart, lastPPE) // truncated trace
	} else {
		emit(StateCompute, cursor, lastPPE)
	}
	return out
}
