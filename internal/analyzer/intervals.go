package analyzer

import (
	"fmt"

	"github.com/celltrace/pdt/internal/core/event"
)

// State classifies what an SPE was doing during an interval.
type State int

const (
	// StateCompute is time between traced events: the SPU was running
	// application code (includes untraced library time).
	StateCompute State = iota
	// StateStallDMA is time inside a tag-group wait.
	StateStallDMA
	// StateStallMbox is time blocked on a mailbox access.
	StateStallMbox
	// StateStallSignal is time blocked reading a signal register.
	StateStallSignal
	// StateStallSync is time inside barrier/mutex/work-queue waits.
	StateStallSync
	// StateFlush is PDT's own trace-buffer flush time.
	StateFlush
	// StateHostWait is PPE time blocked waiting for an SPE program to
	// finish (PPE lane only).
	StateHostWait
	numStates
)

var stateNames = [numStates]string{"compute", "dma-wait", "mbox-wait", "signal-wait", "sync-wait", "trace-flush", "spe-wait"}

func (s State) String() string {
	if s >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// States lists all states in order.
func States() []State {
	out := make([]State, numStates)
	for i := range out {
		out[i] = State(i)
	}
	return out
}

// Interval is a span of one SPE program run in a single state.
type Interval struct {
	Core  uint8
	Run   int
	State State
	Start uint64 // timebase ticks, global
	End   uint64
}

// Dur returns the interval length in timebase ticks.
func (iv Interval) Dur() uint64 { return iv.End - iv.Start }

// stallState maps Enter events to the state they open.
var stallState = map[event.ID]State{
	event.SPEWaitTagEnter:       StateStallDMA,
	event.SPEReadInMboxEnter:    StateStallMbox,
	event.SPEWriteOutMboxEnter:  StateStallMbox,
	event.SPEWriteIntrMboxEnter: StateStallMbox,
	event.SPEReadSignalEnter:    StateStallSignal,
	event.SyncBarrierEnter:      StateStallSync,
	event.SyncMutexEnter:        StateStallSync,
	event.SyncWQGetEnter:        StateStallSync,
	event.SPEAtomicEnter:        StateStallSync,
}

// RunIntervals reconstructs the state intervals of one SPE program run.
// The run spans SPE_PROGRAM_START..SPE_PROGRAM_END; time not inside a
// stall or flush is attributed to compute.
func RunIntervals(tr *Trace, run int) []Interval {
	evs := tr.RunEvents(run)
	if len(evs) == 0 {
		return nil
	}
	var out []Interval
	core := evs[0].Core
	cursor := evs[0].Global // start of the segment being classified
	var openState State
	var open bool
	var openStart uint64
	cpt := tr.CyclesPerTick()

	emit := func(state State, start, end uint64) {
		if end > start {
			out = append(out, Interval{Core: core, Run: run, State: state, Start: start, End: end})
		}
	}

	for _, e := range evs {
		info, ok := event.Lookup(e.ID)
		if !ok {
			continue
		}
		switch {
		case info.Kind == event.KindEnter:
			if st, stalls := stallState[e.ID]; stalls && !open {
				emit(StateCompute, cursor, e.Global)
				open = true
				openState = st
				openStart = e.Global
			}
		case info.Kind == event.KindExit:
			if open && stallState[info.Pair] == openState {
				emit(openState, openStart, e.Global)
				open = false
				cursor = e.Global
			}
		case e.ID == event.SPETraceFlush:
			// Point event stamped at flush completion; its duration in
			// cycles is the second argument.
			ticks := e.Args[1] / cpt
			start := e.Global
			if ticks < e.Global {
				start = e.Global - ticks
			}
			if start < cursor {
				start = cursor // never overlap the previous interval
			}
			if !open {
				emit(StateCompute, cursor, start)
				emit(StateFlush, start, e.Global)
				cursor = e.Global
			}
		case e.ID == event.SPEProgramEnd:
			if !open {
				emit(StateCompute, cursor, e.Global)
				cursor = e.Global
			}
		}
	}
	if open {
		// Truncated trace: close the stall at the last event time.
		last := evs[len(evs)-1].Global
		emit(openState, openStart, last)
	}
	return out
}

// Intervals reconstructs state intervals for every SPE run in the trace.
// Each run's reconstruction is independent (RunIntervals only reads that
// run's event view), so the per-run scans execute concurrently on a
// bounded pool and are concatenated in run order — the exact output of
// IntervalsSerial.
func Intervals(tr *Trace) []Interval {
	n := len(tr.Meta.Anchors)
	if n < 2 {
		return IntervalsSerial(tr)
	}
	parts := make([][]Interval, n)
	runParallel(0, n, func(run int) {
		parts[run] = RunIntervals(tr, run)
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]Interval, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// IntervalsSerial is the sequential reference for Intervals.
func IntervalsSerial(tr *Trace) []Interval {
	var out []Interval
	for run := range tr.Meta.Anchors {
		out = append(out, RunIntervals(tr, run)...)
	}
	return out
}

// ppeStallState maps PPE Enter events to the state they open.
var ppeStallState = map[event.ID]State{
	event.PPEWaitEnter:         StateHostWait,
	event.PPEReadOutMboxEnter:  StateStallMbox,
	event.PPEReadIntrMboxEnter: StateStallMbox,
	event.PPEWriteInMboxEnter:  StateStallMbox,
	event.PPEWaitTagEnter:      StateStallDMA,
	event.PPEAtomicEnter:       StateStallSync,
}

// PPEIntervals reconstructs the host lanes — one per PPE thread (the
// main thread records as CorePPE, spawned threads count down), classified
// by the host's blocking calls. Returns nil when the trace has no PPE
// events. The interval Run field is -1 for the main thread, -2 for the
// first spawned thread, and so on.
//
// Each thread's lane depends only on that thread's stream-ordered events,
// so the per-thread scans run concurrently over the per-core views and
// are concatenated in thread order — the exact output of
// PPEIntervalsSerial, which rescans the full stream once per possible
// thread.
func PPEIntervals(tr *Trace) []Interval {
	n := int(event.CorePPE) - int(event.CorePPEBase) + 1
	parts := make([][]Interval, n)
	runParallel(0, n, func(i int) {
		core := uint8(int(event.CorePPE) - i)
		parts[i] = ppeLaneIntervals(tr.CoreEvents(core), core, -1-i)
	})
	var out []Interval
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// PPEIntervalsSerial is the sequential reference for PPEIntervals.
func PPEIntervalsSerial(tr *Trace) []Interval {
	var out []Interval
	for core := int(event.CorePPE); core >= int(event.CorePPEBase); core-- {
		out = append(out, ppeThreadIntervals(tr, uint8(core), -1-(int(event.CorePPE)-core))...)
	}
	return out
}

// ppeLaneIntervals builds the lane of one PPE thread from its own
// stream-ordered event view.
func ppeLaneIntervals(evs []Event, core uint8, run int) []Interval {
	var out []Interval
	var cursor, lastPPE uint64
	var started bool
	var open bool
	var openState State
	var openStart uint64
	emit := func(state State, start, end uint64) {
		if end > start {
			out = append(out, Interval{Core: core, Run: run, State: state, Start: start, End: end})
		}
	}
	for i := range evs {
		e := &evs[i]
		if !started {
			started = true
			cursor = e.Global
		}
		lastPPE = e.Global
		info, ok := event.Lookup(e.ID)
		if !ok {
			continue
		}
		switch info.Kind {
		case event.KindEnter:
			if st, stalls := ppeStallState[e.ID]; stalls && !open {
				emit(StateCompute, cursor, e.Global)
				open = true
				openState = st
				openStart = e.Global
			}
		case event.KindExit:
			if open && ppeStallState[info.Pair] == openState {
				emit(openState, openStart, e.Global)
				open = false
				cursor = e.Global
			}
		}
	}
	if !started {
		return nil
	}
	if open {
		emit(openState, openStart, lastPPE) // truncated trace
	} else {
		emit(StateCompute, cursor, lastPPE)
	}
	return out
}

// ppeThreadIntervals builds the lane of one PPE thread by scanning the
// merged stream (the serial reference path).
func ppeThreadIntervals(tr *Trace, core uint8, run int) []Interval {
	var out []Interval
	var cursor, lastPPE uint64
	var started bool
	var open bool
	var openState State
	var openStart uint64
	emit := func(state State, start, end uint64) {
		if end > start {
			out = append(out, Interval{Core: core, Run: run, State: state, Start: start, End: end})
		}
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Core != core {
			continue
		}
		if !started {
			started = true
			cursor = e.Global
		}
		lastPPE = e.Global
		info, ok := event.Lookup(e.ID)
		if !ok {
			continue
		}
		switch info.Kind {
		case event.KindEnter:
			if st, stalls := ppeStallState[e.ID]; stalls && !open {
				emit(StateCompute, cursor, e.Global)
				open = true
				openState = st
				openStart = e.Global
			}
		case event.KindExit:
			if open && ppeStallState[info.Pair] == openState {
				emit(openState, openStart, e.Global)
				open = false
				cursor = e.Global
			}
		}
	}
	if !started {
		return nil
	}
	if open {
		emit(openState, openStart, lastPPE) // truncated trace
	} else {
		emit(StateCompute, cursor, lastPPE)
	}
	return out
}
