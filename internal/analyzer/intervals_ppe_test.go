package analyzer

import (
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
)

func TestPPEIntervals(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		hd := h.Run(0, "pv", func(spu cell.SPU) uint32 {
			spu.Compute(50000)
			return 0
		})
		h.Compute(1000)
		h.Wait(hd) // long host-wait interval
	})
	ivs := PPEIntervals(tr)
	if len(ivs) == 0 {
		t.Fatal("no PPE intervals")
	}
	var hostWait uint64
	for _, iv := range ivs {
		if iv.Run != -1 || iv.Core != 0xFF {
			t.Fatalf("bad PPE interval identity: %+v", iv)
		}
		if iv.State == StateHostWait {
			hostWait += iv.Dur()
		}
	}
	if hostWait == 0 {
		t.Fatal("no host-wait time despite blocking Wait")
	}
	// Intervals must be non-overlapping and ordered.
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start < ivs[i-1].End {
			t.Fatalf("PPE intervals overlap: %+v then %+v", ivs[i-1], ivs[i])
		}
	}
}

func TestPPEIntervalsEmpty(t *testing.T) {
	if PPEIntervals(&Trace{}) != nil {
		t.Fatal("intervals on empty trace")
	}
}

func TestTimelineIncludesPPELane(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(0, "lane", func(spu cell.SPU) uint32 {
			spu.Compute(10000)
			return 0
		}))
	})
	txt := Timeline(tr, 50)
	if !strings.Contains(txt, "PPE") {
		t.Fatalf("timeline missing PPE lane:\n%s", txt)
	}
	if !strings.Contains(txt, "w") {
		t.Fatalf("PPE lane missing spe-wait glyph:\n%s", txt)
	}
	svg := SVGTimeline(tr, 300)
	if !strings.Contains(svg, ">PPE<") {
		t.Fatal("SVG missing PPE label")
	}
	if !strings.Contains(svg, stateColors[StateHostWait]) {
		t.Fatal("SVG missing host-wait color")
	}
}

func TestHostWaitStateString(t *testing.T) {
	if StateHostWait.String() != "spe-wait" {
		t.Fatalf("got %q", StateHostWait.String())
	}
}
