package analyzer_test

// Equivalence suite for the parallel analysis kernels: for every
// registered workload, the sharded Profile, ComputeCriticalPath,
// Intervals, and PPEIntervals must return results deeply equal to their
// serial references — same values, same order. Run under -race this also
// proves the shards touch disjoint state.

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/harness"
	"github.com/celltrace/pdt/internal/workloads"
)

func loadWorkloadTrace(t *testing.T, name string) *analyzer.Trace {
	t.Helper()
	params, ok := equivParams[name]
	if !ok {
		t.Fatalf("no equivalence params for workload %q — add it to equivParams", name)
	}
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{Workload: name, Params: params, Trace: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := analyzer.Load(bytes.NewReader(res.TraceBytes))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("workload produced no records")
	}
	return tr
}

func TestParallelKernelsMatchSerialAllWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr := loadWorkloadTrace(t, name)

			if want, got := analyzer.ProfileSerial(tr), analyzer.Profile(tr); !reflect.DeepEqual(want, got) {
				t.Errorf("Profile differs from serial:\nserial   %+v\nparallel %+v", want, got)
			}
			if want, got := analyzer.ComputeCriticalPathSerial(tr), analyzer.ComputeCriticalPath(tr); !reflect.DeepEqual(want, got) {
				t.Errorf("ComputeCriticalPath differs from serial:\nserial   %+v\nparallel %+v", want, got)
			}
			if want, got := analyzer.IntervalsSerial(tr), analyzer.Intervals(tr); !reflect.DeepEqual(want, got) {
				t.Errorf("Intervals differs from serial: %d vs %d intervals", len(want), len(got))
			}
			if want, got := analyzer.PPEIntervalsSerial(tr), analyzer.PPEIntervals(tr); !reflect.DeepEqual(want, got) {
				t.Errorf("PPEIntervals differs from serial: %d vs %d intervals", len(want), len(got))
			}
		})
	}
}
