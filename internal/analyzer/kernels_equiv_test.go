package analyzer_test

// Equivalence suite for the parallel analysis kernels: for every
// registered workload, the sharded Profile, ComputeCriticalPath,
// Intervals, and PPEIntervals must return results deeply equal to their
// serial references — same values, same order. Run under -race this also
// proves the shards touch disjoint state.

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/harness"
	"github.com/celltrace/pdt/internal/workloads"
)

func loadWorkloadTrace(t *testing.T, name string) *analyzer.Trace {
	t.Helper()
	params, ok := equivParams[name]
	if !ok {
		t.Fatalf("no equivalence params for workload %q — add it to equivParams", name)
	}
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{Workload: name, Params: params, Trace: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := analyzer.Load(bytes.NewReader(res.TraceBytes))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() == 0 {
		t.Fatal("workload produced no records")
	}
	return tr
}

func TestParallelKernelsMatchSerialAllWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr := loadWorkloadTrace(t, name)

			if want, got := analyzer.ProfileSerial(tr), analyzer.Profile(tr); !reflect.DeepEqual(want, got) {
				t.Errorf("Profile differs from serial:\nserial   %+v\nparallel %+v", want, got)
			}
			if want, got := analyzer.ComputeCriticalPathSerial(tr), analyzer.ComputeCriticalPath(tr); !reflect.DeepEqual(want, got) {
				t.Errorf("ComputeCriticalPath differs from serial:\nserial   %+v\nparallel %+v", want, got)
			}
			if want, got := analyzer.IntervalsSerial(tr), analyzer.Intervals(tr); !reflect.DeepEqual(want, got) {
				t.Errorf("Intervals differs from serial: %d vs %d intervals", len(want), len(got))
			}
			if want, got := analyzer.PPEIntervalsSerial(tr), analyzer.PPEIntervals(tr); !reflect.DeepEqual(want, got) {
				t.Errorf("PPEIntervals differs from serial: %d vs %d intervals", len(want), len(got))
			}
			minTicks := analyzer.SuggestGapThreshold(tr)
			if want, got := analyzer.FindGapsSerial(tr, minTicks), analyzer.FindGaps(tr, minTicks); !reflect.DeepEqual(want, got) {
				t.Errorf("FindGaps differs from serial: %d vs %d gaps", len(want), len(got))
			}
		})
	}
}

// TestColumnarRoundTripAllWorkloads checks the columnar store against
// the record view it materializes: every event rebuilt from the columns
// must survive a round trip through SetEvents unchanged, and the
// per-core/per-run index views must agree before and after.
func TestColumnarRoundTripAllWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr := loadWorkloadTrace(t, name)
			evs := tr.Events()
			rt := &analyzer.Trace{Meta: tr.Meta, Strings: tr.Strings, Confidence: tr.Confidence}
			rt.SetEvents(evs)
			if want, got := tr.NumEvents(), rt.NumEvents(); want != got {
				t.Fatalf("round trip lost events: %d -> %d", want, got)
			}
			for i, n := 0, tr.NumEvents(); i < n; i++ {
				if !reflect.DeepEqual(tr.Event(i), rt.Event(i)) {
					t.Fatalf("event %d differs after round trip:\nwant %+v\ngot  %+v",
						i, tr.Event(i), rt.Event(i))
				}
			}
			for _, c := range tr.Cores() {
				if want, got := tr.CoreEvents(c), rt.CoreEvents(c); !reflect.DeepEqual(want, got) {
					t.Fatalf("core %d view differs after round trip", c)
				}
			}
			for run := range tr.Meta.Anchors {
				if want, got := tr.RunEvents(run), rt.RunEvents(run); !reflect.DeepEqual(want, got) {
					t.Fatalf("run %d view differs after round trip", run)
				}
			}
		})
	}
}
