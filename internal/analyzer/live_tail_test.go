package analyzer_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
	"github.com/celltrace/pdt/internal/harness"
)

// liveWorkload runs one workload with a live mirror attached and returns
// (live stream bytes, sealed trace bytes).
func liveWorkload(t *testing.T, name string) ([]byte, []byte) {
	t.Helper()
	params, ok := streamEquivParams[name]
	if !ok {
		t.Fatalf("no equivalence params for workload %q", name)
	}
	cfg := core.DefaultTraceConfig()
	livePath := filepath.Join(t.TempDir(), "live.pdt")
	res, err := harness.Run(harness.Spec{
		Workload: name, Params: params, Trace: &cfg, LivePath: livePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	live, err := os.ReadFile(livePath)
	if err != nil {
		t.Fatal(err)
	}
	return live, res.TraceBytes
}

// TestLiveTailRoundTrip checks the whole live-tail contract: the mirror
// a run writes while executing is a well-formed PDT stream whose batch
// load resolves the in-band LiveAnchor records, whose streaming load is
// kernel-for-kernel identical to that batch load, and whose per-run
// analysis agrees with the sealed file the same run produced.
func TestLiveTailRoundTrip(t *testing.T) {
	for _, name := range []string{"pipeline", "matmul"} {
		t.Run(name, func(t *testing.T) {
			live, sealed := liveWorkload(t, name)

			// The live stream must be sealed (footer) and carry no
			// up-front anchors: they arrive in-band.
			f, err := traceio.Parse(live)
			if err != nil {
				t.Fatalf("live stream does not parse: %v", err)
			}
			if f.Truncated {
				t.Fatal("cleanly closed live stream parsed as truncated")
			}
			if len(f.Meta.Anchors) != 0 {
				t.Fatalf("live metadata carries %d anchors, want 0 (in-band)", len(f.Meta.Anchors))
			}

			// Batch load resolves anchors from LiveAnchor records, on
			// both the parallel and the serial reference path.
			liveBatch := loadBatch(t, live)
			anchors := len(liveBatch.tr.Meta.Anchors)
			if anchors == 0 {
				t.Fatal("batch load rebuilt no anchors from the live stream")
			}
			fs, err := traceio.Parse(live)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := analyzer.FromFileSerial(fs)
			if err != nil {
				t.Fatalf("serial load of live stream: %v", err)
			}
			if len(serial.Meta.Anchors) != anchors {
				t.Fatalf("serial load rebuilt %d anchors, parallel %d", len(serial.Meta.Anchors), anchors)
			}

			// Streaming the live stream == batch-loading it.
			sr := streamIn(t, live, 977, analyzer.StreamOptions{
				GapMinTicks: liveBatch.minGap, Validate: true,
			})
			assertStreamMatchesBatch(t, liveBatch, sr)

			// The live view agrees with the sealed file on everything
			// per-run: the only extra records in the stream are the
			// in-band anchors themselves.
			sealedBatch := loadBatch(t, sealed)
			if n := liveBatch.summary.EventCount[event.LiveAnchor]; n != anchors {
				t.Errorf("live stream has %d LIVE_ANCHOR records, want %d", n, anchors)
			}
			if sealedBatch.summary.EventCount[event.LiveAnchor] != 0 {
				t.Error("sealed file contains LIVE_ANCHOR records; they belong to the live stream only")
			}
			if !reflect.DeepEqual(liveBatch.summary.Runs, sealedBatch.summary.Runs) {
				t.Errorf("per-run summaries differ:\nlive   %+v\nsealed %+v",
					liveBatch.summary.Runs, sealedBatch.summary.Runs)
			}
			if !reflect.DeepEqual(liveBatch.summary.DMA, sealedBatch.summary.DMA) {
				t.Errorf("DMA summaries differ:\nlive   %+v\nsealed %+v",
					liveBatch.summary.DMA, sealedBatch.summary.DMA)
			}
			if !reflect.DeepEqual(liveBatch.summary.Mbox, sealedBatch.summary.Mbox) {
				t.Errorf("mailbox summaries differ:\nlive   %+v\nsealed %+v",
					liveBatch.summary.Mbox, sealedBatch.summary.Mbox)
			}
			if !reflect.DeepEqual(liveBatch.profile, sealedBatch.profile) {
				t.Errorf("profiles differ:\nlive   %+v\nsealed %+v",
					liveBatch.profile, sealedBatch.profile)
			}
			if !reflect.DeepEqual(liveBatch.tags, sealedBatch.tags) {
				t.Errorf("tag breakdowns differ:\nlive   %+v\nsealed %+v",
					liveBatch.tags, sealedBatch.tags)
			}
			gaps := analyzer.FindGaps(liveBatch.tr, sealedBatch.minGap)
			if !reflect.DeepEqual(gaps, sealedBatch.gaps) {
				t.Errorf("gaps differ at the sealed threshold:\nlive   %+v\nsealed %+v",
					gaps, sealedBatch.gaps)
			}
		})
	}
}

// TestLiveTailTruncated cuts a live stream off mid-file — the shape an
// interrupted pdt-run leaves — and checks that both loaders tolerate it
// and still agree with each other.
func TestLiveTailTruncated(t *testing.T) {
	live, _ := liveWorkload(t, "pipeline")
	for _, cut := range []int{len(live) - 8, len(live) * 3 / 5} {
		data := live[:cut]
		f, err := traceio.Parse(data)
		if err != nil {
			t.Fatalf("cut at %d: parse: %v", cut, err)
		}
		if !f.Truncated {
			t.Fatalf("cut at %d: not flagged truncated", cut)
		}
		tr, err := analyzer.FromFile(f)
		if err != nil {
			t.Fatalf("cut at %d: batch load: %v", cut, err)
		}
		analyzer.Validate(tr)
		b := &batchResults{
			tr:      tr,
			summary: analyzer.Summarize(tr),
			profile: analyzer.Profile(tr),
			tags:    analyzer.TagBreakdown(tr),
			ppe:     analyzer.SummarizePPE(tr),
			eff:     analyzer.EffectiveConcurrency(tr),
		}
		b.minGap = analyzer.SuggestGapThreshold(tr)
		b.gaps = analyzer.FindGaps(tr, b.minGap)

		l := analyzer.NewStreamLoader(analyzer.StreamOptions{
			GapMinTicks: b.minGap, Validate: true,
		})
		if _, err := l.Write(data); err != nil {
			t.Fatalf("cut at %d: stream write: %v", cut, err)
		}
		sr, err := l.Finish()
		if err != nil {
			t.Fatalf("cut at %d: stream finish: %v", cut, err)
		}
		if !sr.Trace.Truncated {
			t.Fatalf("cut at %d: stream not flagged truncated", cut)
		}
		if !reflect.DeepEqual(sr.Summary, b.summary) {
			t.Errorf("cut at %d: summaries differ:\nstream %+v\nbatch  %+v", cut, sr.Summary, b.summary)
		}
		if !reflect.DeepEqual(sr.Profile, b.profile) {
			t.Errorf("cut at %d: profiles differ", cut)
		}
		var sw, bw bytes.Buffer
		sr.Report(&sw)
		analyzer.Report(b.tr, b.summary, &bw)
		if sw.String() != bw.String() {
			t.Errorf("cut at %d: reports differ:\nstream:\n%s\nbatch:\n%s", cut, sw.String(), bw.String())
		}
	}
}
