// Package analyzer implements the TA (trace analyzer) side of the paper:
// it loads PDT traces, reconstructs a globally ordered event stream from
// the per-core buffers (converting SPU-decrementer timestamps to PPE
// timebase time through the recorded anchor pairs), validates structural
// invariants, derives per-core state intervals (compute vs. the various
// stall classes), and produces the statistics, timelines and exports the
// paper's use cases rely on.
package analyzer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/celltrace/pdt/internal/analyzer/colstore"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// Limits re-exports the trace-format admission-control knobs: the
// analyzer enforces the record-count and decode-memory budgets that the
// byte-level parser cannot, and passes the rest down to traceio. The
// zero value disables all admission control.
type Limits = traceio.Limits

// ErrLimitExceeded is the typed admission-control failure; errors.Is
// matches it across the analyzer and traceio layers.
var ErrLimitExceeded = traceio.ErrLimitExceeded

// DefaultServiceLimits mirrors traceio.DefaultServiceLimits for callers
// that only import the analyzer.
func DefaultServiceLimits() Limits { return traceio.DefaultServiceLimits() }

// eventFootprint is the budgeted in-core cost of one decoded event in
// bytes under the columnar store: ~32 bytes of fixed-width columns, a
// couple of argument words, and the 8 bytes of per-core plus per-run
// index entries. MaxDecodeBytes divided by this gives the record budget
// the decode stage enforces; Trace.Footprint reports the exact measured
// size after the fact.
const eventFootprint = 64

// errDecodePanic marks a chunk whose decode panicked; the per-worker
// recovery converts it into a per-chunk Issue so one poisoned chunk
// cannot take down the whole load (or, in a service, the process).
var errDecodePanic = errors.New("analyzer: panic while decoding chunk")

// decodePanicHook, when non-nil, runs at the top of every chunk decode.
// Tests use it to inject panics and prove the recovery path; it is never
// set in production code.
var decodePanicHook func(chunk int)

// Event is one trace record with its reconstructed global time (in
// timebase ticks) and a stable sequence number. It is the materialized,
// record-shaped view of one row of the columnar store: kernels scan the
// columns directly, while callers that want a self-contained value use
// Trace.Event or the CoreEvents/RunEvents views.
type Event struct {
	event.Record
	// Global is the event time in PPE timebase ticks.
	Global uint64
	// Run is the SPE program run index (anchor index) the event belongs
	// to, or -1 for PPE events.
	Run int
	// Seq is the stable index of the event in the merged stream.
	Seq int
}

// Issue is one validation finding.
type Issue struct {
	Severity string // "warn" or "error"
	Msg      string
}

func (i Issue) String() string { return i.Severity + ": " + i.Msg }

// Trace is a fully loaded and merged PDT trace. The event stream lives
// in a struct-of-arrays columnar store (see colstore): kernels scan the
// columns they need, everything else materializes Event values through
// the accessors.
type Trace struct {
	Header    traceio.Header
	Meta      traceio.Meta
	Strings   map[uint64]string
	Truncated bool
	Issues    []Issue // populated by Load (decoding) and Validate
	// Confidence estimates what fraction of the records the tracer
	// produced actually made it into the store, overall and per core —
	// 1.0 on a clean complete trace, lower when records were dropped at
	// trace time or lost to corruption (salvaged loads).
	Confidence Confidence

	// col is the columnar event store, in merged order (ascending
	// Global, stable by file position), so a row index is the event's
	// sequence number. Nil only on zero-value Traces; hand-assembled
	// traces populate it through SetEvents.
	col *colstore.Store

	// coreSeq and runSeq map cores and runs to their rows of col in
	// stream order. Both index families are carved out of one shared
	// int32 arena each, built once at load, so per-core kernel shards
	// walk a contiguous index block instead of re-scanning the stream.
	coreSeq map[uint8][]int32
	runSeq  [][]int32
}

// LoadFile loads a trace from disk through the zero-copy path: the file
// is memory-mapped when the platform allows (plain read otherwise) and
// records decode straight out of the mapped region into the column
// arenas, which own copies of everything by the time the mapping is
// released.
func LoadFile(path string) (*Trace, error) {
	return LoadFileContext(context.Background(), path, Limits{})
}

// LoadFileContext loads a trace from disk under cancellation and
// admission control. See LoadFile for the mmap semantics.
func LoadFileContext(ctx context.Context, path string, lim Limits) (*Trace, error) {
	m, err := traceio.MapFile(path)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	if lim.MaxFileBytes > 0 && int64(len(m.Data())) > lim.MaxFileBytes {
		return nil, fmt.Errorf("%w: file size %d exceeds limit %d",
			ErrLimitExceeded, len(m.Data()), lim.MaxFileBytes)
	}
	f, err := traceio.ParseContext(ctx, m.Data(), lim)
	if err != nil {
		return nil, err
	}
	return FromFileContext(ctx, f, lim)
}

// Load parses, decodes and merges a trace.
func Load(r io.Reader) (*Trace, error) {
	return LoadContext(context.Background(), r, Limits{})
}

// LoadContext parses, decodes and merges a trace under cancellation and
// admission control: oversized inputs, metadata blobs, declared chunk
// lengths, record counts, and decode-memory budgets are all rejected with
// ErrLimitExceeded, and a cancelled or expired ctx stops the pipeline
// promptly with ctx.Err().
func LoadContext(ctx context.Context, r io.Reader, lim Limits) (*Trace, error) {
	f, err := traceio.ReadContext(ctx, r, lim)
	if err != nil {
		return nil, err
	}
	return FromFileContext(ctx, f, lim)
}

// FromFile merges an already-parsed trace file through the parallel
// decode→merge→index pipeline: chunks are decoded concurrently by a
// bounded worker pool, the per-chunk streams (each time-ordered at the
// source) are combined with a k-way heap merge directly into the columnar
// store, and the per-core and per-run index arenas are built once. The
// resulting event order is exactly the one FromFileSerial's global stable
// sort produces: ascending Global time, ties broken by chunk position in
// the file, then record position within the chunk.
func FromFile(f *traceio.File) (*Trace, error) {
	return fromFile(context.Background(), f, runtime.GOMAXPROCS(0), false, Limits{})
}

// FromFileContext is FromFile under cancellation and admission control.
// Cancellation propagates to every decode worker and the merge loop; when
// it fires, all pipeline goroutines are joined before the call returns,
// so a cancelled load never leaks goroutines or leaves channels open.
func FromFileContext(ctx context.Context, f *traceio.File, lim Limits) (*Trace, error) {
	return fromFile(ctx, f, runtime.GOMAXPROCS(0), false, lim)
}

// newTrace builds the Trace shell shared by both load paths: header,
// metadata, and the file-level issues (truncation, drop accounting).
func newTrace(f *traceio.File) *Trace {
	tr := &Trace{
		Header:    f.Header,
		Meta:      f.Meta,
		Strings:   map[uint64]string{},
		Truncated: f.Truncated,
	}
	if f.Truncated {
		tr.Issues = append(tr.Issues, Issue{"warn", "trace is truncated (crashed or incomplete run)"})
	}
	for _, d := range f.Meta.Drops {
		tr.Issues = append(tr.Issues,
			Issue{"warn", fmt.Sprintf("SPE %d dropped %d records (main trace region full)", d.SPE, d.Count)})
	}
	return tr
}

// resolveLiveAnchors rebuilds the anchor table of a live-streamed
// trace. A live stream's up-front metadata carries no anchors (it is
// written before any SPE program exists); the tracer instead emits a
// LiveAnchor record as each run starts. When an SPE chunk references an
// anchor index beyond the metadata table, scan the PPE chunks in file
// order and append the anchors their LiveAnchor records describe —
// emission order is anchor-index order, so the rebuilt table lines up
// with the chunk references. Sealed files resolve every index from
// metadata alone and skip the scan entirely.
func resolveLiveAnchors(f *traceio.File) {
	need := false
	for _, c := range f.Chunks {
		if c.Core != event.CorePPE && c.AnchorIdx != traceio.NoAnchor &&
			int(c.AnchorIdx) >= len(f.Meta.Anchors) {
			need = true
			break
		}
	}
	if !need {
		return
	}
	for _, c := range f.Chunks {
		if c.Core != event.CorePPE {
			continue
		}
		recs, _, err := traceio.DecodeChunk(c)
		if err != nil {
			continue
		}
		for _, rec := range recs {
			if rec.ID == event.LiveAnchor && len(rec.Args) == 3 {
				f.Meta.Anchors = append(f.Meta.Anchors, traceio.Anchor{
					SPE:      int(rec.Args[0]),
					Timebase: rec.Args[1],
					Loaded:   uint32(rec.Args[2]),
					Program:  rec.Str,
				})
			}
		}
	}
}

// stringDef is one interned string observed while decoding a chunk.
type stringDef struct {
	ref uint64
	s   string
}

// chunkStream is one decoded chunk ready for the k-way merge: the
// records in stream order, the parallel Global-timeline column (anchor
// times already resolved), and the run every record belongs to (-1 for
// PPE chunks). Keeping records and timeline as two flat slices instead
// of wrapping each record in an Event halves the bytes the merge moves
// and lets the heap compare raw uint64s.
type chunkStream struct {
	recs    []event.Record
	globals []uint64
	run     int32
}

// chunkResult is everything one worker produced for one chunk.
type chunkResult struct {
	stream   chunkStream
	argWords int // total argument words across records
	strings  []stringDef
	issues   []Issue
	err      error
}

// recordBudget folds the record-count and decode-memory limits into one
// cumulative cap on decoded records (0 = unlimited).
func recordBudget(lim Limits) int64 {
	budget := int64(0)
	if lim.MaxRecords > 0 {
		budget = int64(lim.MaxRecords)
	}
	if lim.MaxDecodeBytes > 0 {
		if b := lim.MaxDecodeBytes / eventFootprint; budget == 0 || b < budget {
			budget = b
		}
	}
	return budget
}

// admitChunks is the pre-decode admission check: every chunk's actual
// data size against MaxChunkBytes (hand-assembled Files bypass Parse, so
// the parser's check alone is not enough), and the cheap whole-file
// record upper bound against the combined record budget.
func admitChunks(f *traceio.File, lim Limits) error {
	if lim.Unlimited() {
		return nil
	}
	for _, c := range f.Chunks {
		if lim.MaxChunkBytes > 0 && len(c.Data) > lim.MaxChunkBytes {
			return fmt.Errorf("%w: chunk for core %d holds %d bytes, limit %d",
				ErrLimitExceeded, c.Core, len(c.Data), lim.MaxChunkBytes)
		}
	}
	return nil
}

// fromFile runs the pipeline with a bounded number of decode workers. In
// lenient mode (salvaged files), chunk decode errors and unresolvable
// anchors become Issues on the trace instead of failing the load, and
// whatever records did decode are kept. Cancellation and admission
// failures are never lenient: both stop the load with a typed error after
// every worker has been joined.
func fromFile(ctx context.Context, f *traceio.File, workers int, lenient bool, lim Limits) (*Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := admitChunks(f, lim); err != nil {
		return nil, err
	}
	resolveLiveAnchors(f)
	tr := newTrace(f)
	n := len(f.Chunks)
	if n == 0 {
		tr.finish(colstore.NewBuilder(0, 0))
		return tr, nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// decoded counts records cumulatively across workers so the combined
	// record/memory budget trips mid-decode, not after the fact.
	var decoded atomic.Int64
	budget := recordBudget(lim)

	results := make([]chunkResult, n)
	if workers == 1 {
		for i := range f.Chunks {
			if ctx.Err() != nil {
				break
			}
			results[i] = decodeChunkEvents(ctx, f, i, lenient, lim, &decoded, budget)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					if ctx.Err() != nil {
						// Drain remaining indexes without decoding so the
						// feeder never blocks and the pool winds down fast.
						continue
					}
					results[i] = decodeChunkEvents(ctx, f, i, lenient, lim, &decoded, budget)
				}
			}()
		}
	feed:
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Aggregate in chunk order so issues, string interning and the error
	// returned are deterministic and identical to the serial path. Panics
	// recovered in a worker become per-chunk issues (the chunk's records
	// are lost to the unwind); admission failures abort even lenient
	// loads.
	total, argWords := 0, 0
	streams := make([]chunkStream, n)
	for i := range results {
		r := &results[i]
		if r.err != nil {
			switch {
			case errors.Is(r.err, errDecodePanic):
				tr.Issues = append(tr.Issues, Issue{"error", r.err.Error()})
				continue
			case errors.Is(r.err, ErrLimitExceeded), errors.Is(r.err, context.Canceled),
				errors.Is(r.err, context.DeadlineExceeded), !lenient:
				return nil, r.err
			default:
				// Lenient decode damage was already folded into r.issues
				// by the worker; r.err is only set on hard failures.
				return nil, r.err
			}
		}
		tr.Issues = append(tr.Issues, r.issues...)
		for _, sd := range r.strings {
			tr.Strings[sd.ref] = sd.s
		}
		streams[i] = r.stream
		total += len(r.stream.recs)
		argWords += r.argWords
	}
	b := colstore.NewBuilder(total, argWords)
	if err := mergeStreams(ctx, b, streams, total); err != nil {
		return nil, err
	}
	tr.finish(b)
	return tr, nil
}

// finish installs the built columns and derives the indexes and
// confidence shared by every load path.
func (tr *Trace) finish(b *colstore.Builder) {
	tr.col = b.Done()
	tr.buildIndexes()
	tr.Confidence = computeConfidence(tr, nil)
}

// decodeChunkEvents decodes one chunk into its event stream, resolving
// anchor times and collecting interned strings and per-chunk issues. The
// returned stream is ascending in Global: chunks are time-ordered at the
// source, and the rare unordered one (none of our writers produce them,
// but foreign traces may) is stable-sorted here, which preserves exact
// equivalence with a global stable sort.
//
// A panic anywhere in the decode is recovered and converted into a
// per-chunk errDecodePanic, so one poisoned chunk degrades into a trace
// Issue instead of crashing the worker pool. decoded accumulates the
// cross-chunk record count against budget (0 = unlimited).
func decodeChunkEvents(ctx context.Context, f *traceio.File, i int, lenient bool, lim Limits, decoded *atomic.Int64, budget int64) (res chunkResult) {
	c := f.Chunks[i]
	defer func() {
		if r := recover(); r != nil {
			res = chunkResult{err: fmt.Errorf("%w: core %d chunk %d: %v", errDecodePanic, c.Core, i, r)}
		}
	}()
	if decodePanicHook != nil {
		decodePanicHook(i)
	}
	recs, trunc, err := traceio.DecodeChunkContext(ctx, c, lim)
	if err != nil {
		if errors.Is(err, ErrLimitExceeded) || ctx.Err() != nil {
			res.err = err
			return res
		}
		if !lenient {
			res.err = err
			return res
		}
		// Lenient (salvaged) load: keep the records that did decode and
		// surface the damage as an issue.
		res.issues = append(res.issues,
			Issue{"error", fmt.Sprintf("chunk for core %d: decode stopped after %d records: %v",
				c.Core, len(recs), err)})
	}
	if budget > 0 {
		if n := decoded.Add(int64(len(recs))); n > budget {
			res = chunkResult{err: fmt.Errorf("%w: decoded records %d exceed budget %d (MaxRecords/MaxDecodeBytes)",
				ErrLimitExceeded, n, budget)}
			return res
		}
	}
	if trunc {
		res.issues = append(res.issues,
			Issue{"warn", fmt.Sprintf("chunk for core %d truncated mid-record", c.Core)})
	}
	run := -1
	var anchorTB uint64
	if c.Core != event.CorePPE {
		if int(c.AnchorIdx) >= len(f.Meta.Anchors) {
			if !lenient {
				res.err = fmt.Errorf("analyzer: chunk for SPE %d references anchor %d of %d",
					c.Core, c.AnchorIdx, len(f.Meta.Anchors))
				return res
			}
			// No anchor to place this chunk on the timeline: drop it.
			res.issues = append(res.issues,
				Issue{"error", fmt.Sprintf("chunk for SPE %d dropped: anchor %d of %d unresolvable",
					c.Core, c.AnchorIdx, len(f.Meta.Anchors))})
			return res
		}
		a := f.Meta.Anchors[c.AnchorIdx]
		if a.SPE != int(c.Core) {
			res.issues = append(res.issues,
				Issue{"error", fmt.Sprintf("anchor %d is for SPE %d but chunk is core %d", c.AnchorIdx, a.SPE, c.Core)})
		}
		run = int(c.AnchorIdx)
		anchorTB = a.Timebase
	}
	globals := make([]uint64, len(recs))
	sorted := true
	for j := range recs {
		rec := &recs[j]
		if rec.Flags&event.FlagDecrTime != 0 {
			// SPU decrementer time: elapsed ticks since the anchor.
			globals[j] = anchorTB + rec.Time
		} else {
			globals[j] = rec.Time
		}
		res.argWords += len(rec.Args)
		if rec.ID == event.StringDef && len(rec.Args) == 1 {
			res.strings = append(res.strings, stringDef{rec.Args[0], rec.Str})
		}
		if j > 0 && globals[j-1] > globals[j] {
			sorted = false
		}
	}
	if !sorted {
		sort.Stable(&streamSorter{recs, globals})
	}
	res.stream = chunkStream{recs, globals, int32(run)}
	return res
}

// streamSorter stable-sorts a decoded chunk by Global, keeping the
// record and timeline slices aligned.
type streamSorter struct {
	recs    []event.Record
	globals []uint64
}

func (s *streamSorter) Len() int           { return len(s.recs) }
func (s *streamSorter) Less(i, j int) bool { return s.globals[i] < s.globals[j] }
func (s *streamSorter) Swap(i, j int) {
	s.recs[i], s.recs[j] = s.recs[j], s.recs[i]
	s.globals[i], s.globals[j] = s.globals[j], s.globals[i]
}

// streamHead is one live input of the k-way merge: a chunk's stream and
// a cursor into it. Heads sit at fixed positions in one array; only the
// small mergeEnt keys move through the heap.
type streamHead struct {
	recs    []event.Record
	globals []uint64
	run     int32
	pos     int
}

// mergeEnt is one heap entry: the cached next key of a stream plus the
// stream's identity. 16 bytes, so heap swaps are two register moves
// instead of duffcopying whole stream heads, and the comparisons — the
// hottest reads of the merge — touch only the heap slice itself.
type mergeEnt struct {
	nextG uint64 // == head.globals[head.pos] while the stream is live
	idx   int32  // chunk file position: breaks Global ties
	hi    int32  // index into the heads array
}

// entLess orders heap entries by (Global of next event, chunk index);
// the chunk index is unique, so the order is total and the merge output
// is exactly the stable-sort order over the chunk-concatenated stream.
func entLess(a, b mergeEnt) bool {
	return a.nextG < b.nextG || (a.nextG == b.nextG && a.idx < b.idx)
}

func siftDown(h []mergeEnt, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && entLess(h[r], h[l]) {
			m = r
		}
		if !entLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// mergeCtxStride is how many merged events pass between context polls in
// the k-way merge hot loop: cheap enough to be invisible, frequent enough
// that cancellation lands well inside the 100 ms budget even on
// multi-million-event traces.
const mergeCtxStride = 1 << 14

// mergeStreams k-way merges per-chunk event streams, each ascending in
// Global, into the columnar builder: O(N log k) instead of the
// O(N log N) global sort, with no reflection in the hot loop, and the
// merged rows land directly in their final columns (the transient
// per-chunk record and timeline slices die here). The merge polls ctx
// every mergeCtxStride events and aborts with ctx.Err().
func mergeStreams(ctx context.Context, b *colstore.Builder, streams []chunkStream, total int) error {
	heads := make([]streamHead, 0, len(streams))
	h := make([]mergeEnt, 0, len(streams))
	for i := range streams {
		s := &streams[i]
		if len(s.recs) > 0 {
			h = append(h, mergeEnt{nextG: s.globals[0], idx: int32(i), hi: int32(len(heads))})
			heads = append(heads, streamHead{recs: s.recs, globals: s.globals, run: s.run})
		}
	}
	if len(h) == 0 {
		return nil
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	poll := mergeCtxStride
	for len(h) > 1 {
		// The runner-up entry (the smaller heap child of the root) bounds
		// how far the top stream may drain before the heap must be
		// re-established. Chunks are time-clustered — each SPE run owns a
		// contiguous region of the timeline — so draining a whole run per
		// heap round replaces one siftDown per event with one per run.
		e := h[0]
		hd := &heads[e.hi]
		r := 1
		if 2 < len(h) && entLess(h[2], h[1]) {
			r = 2
		}
		runner := h[r]
		g := e.nextG
		exhausted := false
		for {
			if poll--; poll <= 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
				poll = mergeCtxStride
			}
			if g > runner.nextG || (g == runner.nextG && e.idx > runner.idx) {
				break
			}
			b.Append(&hd.recs[hd.pos], g, hd.run)
			hd.pos++
			if hd.pos == len(hd.recs) {
				exhausted = true
				break
			}
			g = hd.globals[hd.pos]
		}
		if exhausted {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		} else {
			h[0].nextG = g
		}
		siftDown(h, 0)
	}
	// Sole surviving stream: drain its tail without heap maintenance.
	hd := &heads[h[0].hi]
	for ; hd.pos < len(hd.recs); hd.pos++ {
		b.Append(&hd.recs[hd.pos], hd.globals[hd.pos], hd.run)
	}
	return nil
}

// buildIndexes precomputes the per-core and per-run row-index arenas in
// two passes (count, then fill) so each index family is one allocation
// carved into contiguous per-core (per-run) blocks.
func (tr *Trace) buildIndexes() {
	s := tr.col
	n := s.Len()
	var coreCount [257]int // prefix offsets; entry c counts core c
	runCount := make([]int, len(tr.Meta.Anchors))
	for i := 0; i < n; i++ {
		coreCount[s.Core[i]]++
		if r := s.Run[i]; r >= 0 && int(r) < len(runCount) {
			runCount[r]++
		}
	}
	distinct := 0
	for c := 0; c < 256; c++ {
		if coreCount[c] > 0 {
			distinct++
		}
	}
	coreArena := make([]int32, n)
	var coreOff [257]int
	sum := 0
	for c := 0; c < 256; c++ {
		coreOff[c] = sum
		sum += coreCount[c]
	}
	coreOff[256] = sum

	runTotal := 0
	for _, c := range runCount {
		runTotal += c
	}
	runArena := make([]int32, runTotal)
	runOff := make([]int, len(runCount)+1)
	sum = 0
	for r, c := range runCount {
		runOff[r] = sum
		sum += c
	}
	runOff[len(runCount)] = sum

	coreCur := coreOff
	runCur := append([]int(nil), runOff...)
	for i := 0; i < n; i++ {
		c := s.Core[i]
		coreArena[coreCur[c]] = int32(i)
		coreCur[c]++
		if r := s.Run[i]; r >= 0 && int(r) < len(runCount) {
			runArena[runCur[r]] = int32(i)
			runCur[r]++
		}
	}
	tr.coreSeq = make(map[uint8][]int32, distinct)
	for c := 0; c < 256; c++ {
		if coreCount[c] > 0 {
			tr.coreSeq[uint8(c)] = coreArena[coreOff[c]:coreOff[c+1]:coreOff[c+1]]
		}
	}
	tr.runSeq = make([][]int32, len(runCount))
	for r := range runCount {
		if runCount[r] > 0 {
			tr.runSeq[r] = runArena[runOff[r]:runOff[r+1]:runOff[r+1]]
		}
	}
}

// NumEvents returns the number of events in the merged stream.
func (tr *Trace) NumEvents() int {
	if tr.col == nil {
		return 0
	}
	return tr.col.Len()
}

// Columns exposes the raw columnar store for kernels in sibling packages
// (analyzer/diff scans it directly). Nil on zero-value Traces; callers
// must not mutate it.
func (tr *Trace) Columns() *colstore.Store { return tr.col }

// Event materializes row i of the store as a self-contained value. The
// Args slice views the shared arena (nil for zero-argument events) and
// must not be mutated.
func (tr *Trace) Event(i int) Event {
	s := tr.col
	return Event{Record: s.Record(i), Global: s.Global[i], Run: int(s.Run[i]), Seq: i}
}

// Events materializes the whole merged stream. It exists for tests and
// small tools that want to range over record-shaped values; analysis
// code should scan the columns or index with Event instead of paying the
// O(n) copy.
func (tr *Trace) Events() []Event {
	if tr.col == nil {
		return nil
	}
	out := make([]Event, tr.col.Len())
	for i := range out {
		out[i] = tr.Event(i)
	}
	return out
}

// SetEvents replaces the trace's event store with the given events,
// rebuilding the columns and indexes. It is the assembly path for tests
// and tools that construct traces by hand; the events must already be in
// stream order (their Seq fields are ignored and become their indexes).
func (tr *Trace) SetEvents(evs []Event) {
	b := colstore.NewBuilder(len(evs), 0)
	for i := range evs {
		ev := &evs[i]
		b.Append(&ev.Record, ev.Global, int32(ev.Run))
	}
	tr.col = b.Done()
	tr.buildIndexes()
}

// StringRef resolves an interned string reference.
func (tr *Trace) StringRef(ref uint64) string {
	if s, ok := tr.Strings[ref]; ok {
		return s
	}
	return fmt.Sprintf("<str:%d>", ref)
}

// CoreSeqs returns the row indexes of one core's events in stream order
// (one contiguous block of the core index arena). Callers must not
// modify it.
func (tr *Trace) CoreSeqs(core uint8) []int32 { return tr.coreSeq[core] }

// RunSeqs returns the row indexes of one SPE program run in stream
// order, or nil when run is out of range (PPE events carry run -1 and
// are found by scanning the Run column). Callers must not modify it.
func (tr *Trace) RunSeqs(run int) []int32 {
	if run >= 0 && run < len(tr.runSeq) {
		return tr.runSeq[run]
	}
	return nil
}

// materialize builds Event values for the given store rows.
func (tr *Trace) materialize(seqs []int32) []Event {
	if len(seqs) == 0 {
		return nil
	}
	out := make([]Event, len(seqs))
	for j, i := range seqs {
		out[j] = tr.Event(int(i))
	}
	return out
}

// CoreEvents returns the events of one core in stream order. The slice
// is materialized from the columnar store on every call; kernels should
// scan CoreSeqs against the columns instead.
func (tr *Trace) CoreEvents(core uint8) []Event {
	if tr.col == nil {
		return nil
	}
	return tr.materialize(tr.coreSeq[core])
}

// RunEvents returns the events of one SPE program run in stream order.
// Out-of-range runs (notably -1, the PPE pseudo-run) fall back to a
// column scan. The slice is materialized on every call; kernels should
// scan RunSeqs against the columns instead.
func (tr *Trace) RunEvents(run int) []Event {
	if tr.col == nil {
		return nil
	}
	if run >= 0 && run < len(tr.runSeq) {
		return tr.materialize(tr.runSeq[run])
	}
	var out []Event
	for i, r := range tr.col.Run {
		if int(r) == run {
			out = append(out, tr.Event(i))
		}
	}
	return out
}

// Span returns the [first, last] global time covered by the trace.
func (tr *Trace) Span() (start, end uint64) {
	if tr.NumEvents() == 0 {
		return 0, 0
	}
	return tr.col.Global[0], tr.col.Global[tr.col.Len()-1]
}

// CyclesPerTick converts timebase ticks to processor cycles.
func (tr *Trace) CyclesPerTick() uint64 {
	if tr.Header.TimebaseDiv == 0 {
		return 1
	}
	return tr.Header.TimebaseDiv
}
