// Package analyzer implements the TA (trace analyzer) side of the paper:
// it loads PDT traces, reconstructs a globally ordered event stream from
// the per-core buffers (converting SPU-decrementer timestamps to PPE
// timebase time through the recorded anchor pairs), validates structural
// invariants, derives per-core state intervals (compute vs. the various
// stall classes), and produces the statistics, timelines and exports the
// paper's use cases rely on.
package analyzer

import (
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// Event is one trace record with its reconstructed global time (in
// timebase ticks) and a stable sequence number.
type Event struct {
	event.Record
	// Global is the event time in PPE timebase ticks.
	Global uint64
	// Run is the SPE program run index (anchor index) the event belongs
	// to, or -1 for PPE events.
	Run int
	// Seq is the stable index of the event in the merged stream.
	Seq int
}

// Issue is one validation finding.
type Issue struct {
	Severity string // "warn" or "error"
	Msg      string
}

func (i Issue) String() string { return i.Severity + ": " + i.Msg }

// Trace is a fully loaded and merged PDT trace.
type Trace struct {
	Header    traceio.Header
	Meta      traceio.Meta
	Events    []Event // merged, sorted by Global (stable)
	Strings   map[uint64]string
	Truncated bool
	Issues    []Issue // populated by Load (decoding) and Validate
}

// LoadFile loads a trace from disk.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Load parses, decodes and merges a trace.
func Load(r io.Reader) (*Trace, error) {
	f, err := traceio.Read(r)
	if err != nil {
		return nil, err
	}
	return FromFile(f)
}

// FromFile merges an already-parsed trace file.
func FromFile(f *traceio.File) (*Trace, error) {
	tr := &Trace{
		Header:    f.Header,
		Meta:      f.Meta,
		Strings:   map[uint64]string{},
		Truncated: f.Truncated,
	}
	if f.Truncated {
		tr.Issues = append(tr.Issues, Issue{"warn", "trace is truncated (crashed or incomplete run)"})
	}
	for _, d := range f.Meta.Drops {
		tr.Issues = append(tr.Issues,
			Issue{"warn", fmt.Sprintf("SPE %d dropped %d records (main trace region full)", d.SPE, d.Count)})
	}
	for _, c := range f.Chunks {
		recs, trunc, err := traceio.DecodeChunk(c)
		if err != nil {
			return nil, err
		}
		if trunc {
			tr.Issues = append(tr.Issues,
				Issue{"warn", fmt.Sprintf("chunk for core %d truncated mid-record", c.Core)})
		}
		run := -1
		var anchorTB uint64
		if c.Core != event.CorePPE {
			if int(c.AnchorIdx) >= len(f.Meta.Anchors) {
				return nil, fmt.Errorf("analyzer: chunk for SPE %d references anchor %d of %d",
					c.Core, c.AnchorIdx, len(f.Meta.Anchors))
			}
			a := f.Meta.Anchors[c.AnchorIdx]
			if a.SPE != int(c.Core) {
				tr.Issues = append(tr.Issues,
					Issue{"error", fmt.Sprintf("anchor %d is for SPE %d but chunk is core %d", c.AnchorIdx, a.SPE, c.Core)})
			}
			run = int(c.AnchorIdx)
			anchorTB = a.Timebase
		}
		for _, rec := range recs {
			ev := Event{Record: rec, Run: run}
			if rec.Flags&event.FlagDecrTime != 0 {
				// SPU decrementer time: elapsed ticks since the anchor.
				ev.Global = anchorTB + rec.Time
			} else {
				ev.Global = rec.Time
			}
			if rec.ID == event.StringDef && len(rec.Args) == 1 {
				tr.Strings[rec.Args[0]] = rec.Str
			}
			tr.Events = append(tr.Events, ev)
		}
	}
	sort.SliceStable(tr.Events, func(i, j int) bool {
		return tr.Events[i].Global < tr.Events[j].Global
	})
	for i := range tr.Events {
		tr.Events[i].Seq = i
	}
	return tr, nil
}

// StringRef resolves an interned string reference.
func (tr *Trace) StringRef(ref uint64) string {
	if s, ok := tr.Strings[ref]; ok {
		return s
	}
	return fmt.Sprintf("<str:%d>", ref)
}

// CoreEvents returns the events of one core in stream order.
func (tr *Trace) CoreEvents(core uint8) []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.Core == core {
			out = append(out, e)
		}
	}
	return out
}

// RunEvents returns the events of one SPE program run in stream order.
func (tr *Trace) RunEvents(run int) []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.Run == run {
			out = append(out, e)
		}
	}
	return out
}

// Span returns the [first, last] global time covered by the trace.
func (tr *Trace) Span() (start, end uint64) {
	if len(tr.Events) == 0 {
		return 0, 0
	}
	return tr.Events[0].Global, tr.Events[len(tr.Events)-1].Global
}

// CyclesPerTick converts timebase ticks to processor cycles.
func (tr *Trace) CyclesPerTick() uint64 {
	if tr.Header.TimebaseDiv == 0 {
		return 1
	}
	return tr.Header.TimebaseDiv
}
