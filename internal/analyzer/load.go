// Package analyzer implements the TA (trace analyzer) side of the paper:
// it loads PDT traces, reconstructs a globally ordered event stream from
// the per-core buffers (converting SPU-decrementer timestamps to PPE
// timebase time through the recorded anchor pairs), validates structural
// invariants, derives per-core state intervals (compute vs. the various
// stall classes), and produces the statistics, timelines and exports the
// paper's use cases rely on.
package analyzer

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"

	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// Event is one trace record with its reconstructed global time (in
// timebase ticks) and a stable sequence number.
type Event struct {
	event.Record
	// Global is the event time in PPE timebase ticks.
	Global uint64
	// Run is the SPE program run index (anchor index) the event belongs
	// to, or -1 for PPE events.
	Run int
	// Seq is the stable index of the event in the merged stream.
	Seq int
}

// Issue is one validation finding.
type Issue struct {
	Severity string // "warn" or "error"
	Msg      string
}

func (i Issue) String() string { return i.Severity + ": " + i.Msg }

// Trace is a fully loaded and merged PDT trace.
type Trace struct {
	Header    traceio.Header
	Meta      traceio.Meta
	Events    []Event // merged, sorted by Global (stable)
	Strings   map[uint64]string
	Truncated bool
	Issues    []Issue // populated by Load (decoding) and Validate
	// Confidence estimates what fraction of the records the tracer
	// produced actually made it into Events, overall and per core — 1.0
	// on a clean complete trace, lower when records were dropped at
	// trace time or lost to corruption (salvaged loads).
	Confidence Confidence

	// coreIndex and runIndex are per-core / per-run views of Events in
	// stream order, built once at load so CoreEvents and RunEvents do
	// not re-scan the whole stream on every call. They are nil on
	// hand-assembled Trace values, which fall back to scanning.
	coreIndex map[uint8][]Event
	runIndex  [][]Event
}

// LoadFile loads a trace from disk.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Load parses, decodes and merges a trace.
func Load(r io.Reader) (*Trace, error) {
	f, err := traceio.Read(r)
	if err != nil {
		return nil, err
	}
	return FromFile(f)
}

// FromFile merges an already-parsed trace file through the parallel
// decode→merge→index pipeline: chunks are decoded concurrently by a
// bounded worker pool, the per-chunk streams (each time-ordered at the
// source) are combined with a k-way heap merge, and the per-core and
// per-run views are indexed once. The resulting event order is exactly
// the one FromFileSerial's global stable sort produces: ascending Global
// time, ties broken by chunk position in the file, then record position
// within the chunk.
func FromFile(f *traceio.File) (*Trace, error) {
	return fromFile(f, runtime.GOMAXPROCS(0), false)
}

// newTrace builds the Trace shell shared by both load paths: header,
// metadata, and the file-level issues (truncation, drop accounting).
func newTrace(f *traceio.File) *Trace {
	tr := &Trace{
		Header:    f.Header,
		Meta:      f.Meta,
		Strings:   map[uint64]string{},
		Truncated: f.Truncated,
	}
	if f.Truncated {
		tr.Issues = append(tr.Issues, Issue{"warn", "trace is truncated (crashed or incomplete run)"})
	}
	for _, d := range f.Meta.Drops {
		tr.Issues = append(tr.Issues,
			Issue{"warn", fmt.Sprintf("SPE %d dropped %d records (main trace region full)", d.SPE, d.Count)})
	}
	return tr
}

// stringDef is one interned string observed while decoding a chunk.
type stringDef struct {
	ref uint64
	s   string
}

// chunkResult is everything one worker produced for one chunk.
type chunkResult struct {
	events  []Event
	strings []stringDef
	issues  []Issue
	err     error
}

// fromFile runs the pipeline with a bounded number of decode workers. In
// lenient mode (salvaged files), chunk decode errors and unresolvable
// anchors become Issues on the trace instead of failing the load, and
// whatever records did decode are kept.
func fromFile(f *traceio.File, workers int, lenient bool) (*Trace, error) {
	tr := newTrace(f)
	n := len(f.Chunks)
	if n == 0 {
		tr.buildIndexes()
		tr.Confidence = computeConfidence(tr, nil)
		return tr, nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]chunkResult, n)
	if workers == 1 {
		for i := range f.Chunks {
			results[i] = decodeChunkEvents(f, i, lenient)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = decodeChunkEvents(f, i, lenient)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Aggregate in chunk order so issues, string interning and the error
	// returned are deterministic and identical to the serial path.
	total := 0
	streams := make([][]Event, n)
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, r.err
		}
		tr.Issues = append(tr.Issues, r.issues...)
		for _, sd := range r.strings {
			tr.Strings[sd.ref] = sd.s
		}
		streams[i] = r.events
		total += len(r.events)
	}
	tr.Events = mergeStreams(streams, total)
	for i := range tr.Events {
		tr.Events[i].Seq = i
	}
	tr.buildIndexes()
	tr.Confidence = computeConfidence(tr, nil)
	return tr, nil
}

// decodeChunkEvents decodes one chunk into its event stream, resolving
// anchor times and collecting interned strings and per-chunk issues. The
// returned stream is ascending in Global: chunks are time-ordered at the
// source, and the rare unordered one (none of our writers produce them,
// but foreign traces may) is stable-sorted here, which preserves exact
// equivalence with a global stable sort.
func decodeChunkEvents(f *traceio.File, i int, lenient bool) chunkResult {
	c := f.Chunks[i]
	var res chunkResult
	recs, trunc, err := traceio.DecodeChunk(c)
	if err != nil {
		if !lenient {
			res.err = err
			return res
		}
		// Lenient (salvaged) load: keep the records that did decode and
		// surface the damage as an issue.
		res.issues = append(res.issues,
			Issue{"error", fmt.Sprintf("chunk for core %d: decode stopped after %d records: %v",
				c.Core, len(recs), err)})
	}
	if trunc {
		res.issues = append(res.issues,
			Issue{"warn", fmt.Sprintf("chunk for core %d truncated mid-record", c.Core)})
	}
	run := -1
	var anchorTB uint64
	if c.Core != event.CorePPE {
		if int(c.AnchorIdx) >= len(f.Meta.Anchors) {
			if !lenient {
				res.err = fmt.Errorf("analyzer: chunk for SPE %d references anchor %d of %d",
					c.Core, c.AnchorIdx, len(f.Meta.Anchors))
				return res
			}
			// No anchor to place this chunk on the timeline: drop it.
			res.issues = append(res.issues,
				Issue{"error", fmt.Sprintf("chunk for SPE %d dropped: anchor %d of %d unresolvable",
					c.Core, c.AnchorIdx, len(f.Meta.Anchors))})
			return res
		}
		a := f.Meta.Anchors[c.AnchorIdx]
		if a.SPE != int(c.Core) {
			res.issues = append(res.issues,
				Issue{"error", fmt.Sprintf("anchor %d is for SPE %d but chunk is core %d", c.AnchorIdx, a.SPE, c.Core)})
		}
		run = int(c.AnchorIdx)
		anchorTB = a.Timebase
	}
	evs := make([]Event, len(recs))
	sorted := true
	for j, rec := range recs {
		ev := &evs[j]
		ev.Record = rec
		ev.Run = run
		if rec.Flags&event.FlagDecrTime != 0 {
			// SPU decrementer time: elapsed ticks since the anchor.
			ev.Global = anchorTB + rec.Time
		} else {
			ev.Global = rec.Time
		}
		if rec.ID == event.StringDef && len(rec.Args) == 1 {
			res.strings = append(res.strings, stringDef{rec.Args[0], rec.Str})
		}
		if j > 0 && evs[j-1].Global > ev.Global {
			sorted = false
		}
	}
	if !sorted {
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].Global < evs[b].Global })
	}
	res.events = evs
	return res
}

// streamHead is one live input of the k-way merge: the remaining events
// of a chunk plus the chunk's file position, which breaks Global ties.
type streamHead struct {
	ev  []Event
	idx int
}

// headLess orders heap entries by (Global of next event, chunk index);
// the chunk index is unique, so the order is total and the merge output
// is exactly the stable-sort order over the chunk-concatenated stream.
func headLess(a, b *streamHead) bool {
	ga, gb := a.ev[0].Global, b.ev[0].Global
	return ga < gb || (ga == gb && a.idx < b.idx)
}

func siftDown(h []streamHead, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && headLess(&h[r], &h[l]) {
			m = r
		}
		if !headLess(&h[m], &h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// mergeStreams k-way merges per-chunk event streams, each ascending in
// Global, into one slice of length total: O(N log k) instead of the
// O(N log N) global sort, with no reflection in the hot loop.
func mergeStreams(streams [][]Event, total int) []Event {
	h := make([]streamHead, 0, len(streams))
	for i, s := range streams {
		if len(s) > 0 {
			h = append(h, streamHead{s, i})
		}
	}
	if len(h) == 0 {
		return nil
	}
	if len(h) == 1 {
		return h[0].ev
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	out := make([]Event, 0, total)
	for len(h) > 1 {
		top := &h[0]
		out = append(out, top.ev[0])
		top.ev = top.ev[1:]
		if len(top.ev) == 0 {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(h, 0)
	}
	return append(out, h[0].ev...)
}

// buildIndexes precomputes the CoreEvents and RunEvents views in two
// passes (count, then fill) so every view is allocated exactly once.
func (tr *Trace) buildIndexes() {
	coreCount := make(map[uint8]int)
	runCount := make([]int, len(tr.Meta.Anchors))
	for i := range tr.Events {
		e := &tr.Events[i]
		coreCount[e.Core]++
		if e.Run >= 0 && e.Run < len(runCount) {
			runCount[e.Run]++
		}
	}
	tr.coreIndex = make(map[uint8][]Event, len(coreCount))
	for c, n := range coreCount {
		tr.coreIndex[c] = make([]Event, 0, n)
	}
	tr.runIndex = make([][]Event, len(runCount))
	for r, n := range runCount {
		if n > 0 {
			tr.runIndex[r] = make([]Event, 0, n)
		}
	}
	for i := range tr.Events {
		e := tr.Events[i]
		tr.coreIndex[e.Core] = append(tr.coreIndex[e.Core], e)
		if e.Run >= 0 && e.Run < len(tr.runIndex) {
			tr.runIndex[e.Run] = append(tr.runIndex[e.Run], e)
		}
	}
}

// StringRef resolves an interned string reference.
func (tr *Trace) StringRef(ref uint64) string {
	if s, ok := tr.Strings[ref]; ok {
		return s
	}
	return fmt.Sprintf("<str:%d>", ref)
}

// CoreEvents returns the events of one core in stream order. On traces
// built by the load pipeline this is a precomputed view; callers must
// not modify it.
func (tr *Trace) CoreEvents(core uint8) []Event {
	if tr.coreIndex != nil {
		return tr.coreIndex[core]
	}
	var out []Event
	for _, e := range tr.Events {
		if e.Core == core {
			out = append(out, e)
		}
	}
	return out
}

// RunEvents returns the events of one SPE program run in stream order.
// On traces built by the load pipeline this is a precomputed view;
// callers must not modify it.
func (tr *Trace) RunEvents(run int) []Event {
	if tr.runIndex != nil && run >= 0 && run < len(tr.runIndex) {
		return tr.runIndex[run]
	}
	var out []Event
	for _, e := range tr.Events {
		if e.Run == run {
			out = append(out, e)
		}
	}
	return out
}

// Span returns the [first, last] global time covered by the trace.
func (tr *Trace) Span() (start, end uint64) {
	if len(tr.Events) == 0 {
		return 0, 0
	}
	return tr.Events[0].Global, tr.Events[len(tr.Events)-1].Global
}

// CyclesPerTick converts timebase ticks to processor cycles.
func (tr *Trace) CyclesPerTick() uint64 {
	if tr.Header.TimebaseDiv == 0 {
		return 1
	}
	return tr.Header.TimebaseDiv
}
