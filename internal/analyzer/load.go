// Package analyzer implements the TA (trace analyzer) side of the paper:
// it loads PDT traces, reconstructs a globally ordered event stream from
// the per-core buffers (converting SPU-decrementer timestamps to PPE
// timebase time through the recorded anchor pairs), validates structural
// invariants, derives per-core state intervals (compute vs. the various
// stall classes), and produces the statistics, timelines and exports the
// paper's use cases rely on.
package analyzer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// Limits re-exports the trace-format admission-control knobs: the
// analyzer enforces the record-count and decode-memory budgets that the
// byte-level parser cannot, and passes the rest down to traceio. The
// zero value disables all admission control.
type Limits = traceio.Limits

// ErrLimitExceeded is the typed admission-control failure; errors.Is
// matches it across the analyzer and traceio layers.
var ErrLimitExceeded = traceio.ErrLimitExceeded

// DefaultServiceLimits mirrors traceio.DefaultServiceLimits for callers
// that only import the analyzer.
func DefaultServiceLimits() Limits { return traceio.DefaultServiceLimits() }

// eventFootprint is the budgeted in-core cost of one decoded Event in
// bytes: the struct itself (~88 bytes) plus its share of argument backing
// arrays and the per-core/per-run index copies. MaxDecodeBytes divided by
// this gives the record budget the decode stage enforces.
const eventFootprint = 128

// errDecodePanic marks a chunk whose decode panicked; the per-worker
// recovery converts it into a per-chunk Issue so one poisoned chunk
// cannot take down the whole load (or, in a service, the process).
var errDecodePanic = errors.New("analyzer: panic while decoding chunk")

// decodePanicHook, when non-nil, runs at the top of every chunk decode.
// Tests use it to inject panics and prove the recovery path; it is never
// set in production code.
var decodePanicHook func(chunk int)

// Event is one trace record with its reconstructed global time (in
// timebase ticks) and a stable sequence number.
type Event struct {
	event.Record
	// Global is the event time in PPE timebase ticks.
	Global uint64
	// Run is the SPE program run index (anchor index) the event belongs
	// to, or -1 for PPE events.
	Run int
	// Seq is the stable index of the event in the merged stream.
	Seq int
}

// Issue is one validation finding.
type Issue struct {
	Severity string // "warn" or "error"
	Msg      string
}

func (i Issue) String() string { return i.Severity + ": " + i.Msg }

// Trace is a fully loaded and merged PDT trace.
type Trace struct {
	Header    traceio.Header
	Meta      traceio.Meta
	Events    []Event // merged, sorted by Global (stable)
	Strings   map[uint64]string
	Truncated bool
	Issues    []Issue // populated by Load (decoding) and Validate
	// Confidence estimates what fraction of the records the tracer
	// produced actually made it into Events, overall and per core — 1.0
	// on a clean complete trace, lower when records were dropped at
	// trace time or lost to corruption (salvaged loads).
	Confidence Confidence

	// coreIndex and runIndex are per-core / per-run views of Events in
	// stream order, built once at load so CoreEvents and RunEvents do
	// not re-scan the whole stream on every call. They are nil on
	// hand-assembled Trace values, which fall back to scanning.
	coreIndex map[uint8][]Event
	runIndex  [][]Event
}

// LoadFile loads a trace from disk.
func LoadFile(path string) (*Trace, error) {
	return LoadFileContext(context.Background(), path, Limits{})
}

// LoadFileContext loads a trace from disk under cancellation and
// admission control.
func LoadFileContext(ctx context.Context, path string, lim Limits) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadContext(ctx, f, lim)
}

// Load parses, decodes and merges a trace.
func Load(r io.Reader) (*Trace, error) {
	return LoadContext(context.Background(), r, Limits{})
}

// LoadContext parses, decodes and merges a trace under cancellation and
// admission control: oversized inputs, metadata blobs, declared chunk
// lengths, record counts, and decode-memory budgets are all rejected with
// ErrLimitExceeded, and a cancelled or expired ctx stops the pipeline
// promptly with ctx.Err().
func LoadContext(ctx context.Context, r io.Reader, lim Limits) (*Trace, error) {
	f, err := traceio.ReadContext(ctx, r, lim)
	if err != nil {
		return nil, err
	}
	return FromFileContext(ctx, f, lim)
}

// FromFile merges an already-parsed trace file through the parallel
// decode→merge→index pipeline: chunks are decoded concurrently by a
// bounded worker pool, the per-chunk streams (each time-ordered at the
// source) are combined with a k-way heap merge, and the per-core and
// per-run views are indexed once. The resulting event order is exactly
// the one FromFileSerial's global stable sort produces: ascending Global
// time, ties broken by chunk position in the file, then record position
// within the chunk.
func FromFile(f *traceio.File) (*Trace, error) {
	return fromFile(context.Background(), f, runtime.GOMAXPROCS(0), false, Limits{})
}

// FromFileContext is FromFile under cancellation and admission control.
// Cancellation propagates to every decode worker and the merge loop; when
// it fires, all pipeline goroutines are joined before the call returns,
// so a cancelled load never leaks goroutines or leaves channels open.
func FromFileContext(ctx context.Context, f *traceio.File, lim Limits) (*Trace, error) {
	return fromFile(ctx, f, runtime.GOMAXPROCS(0), false, lim)
}

// newTrace builds the Trace shell shared by both load paths: header,
// metadata, and the file-level issues (truncation, drop accounting).
func newTrace(f *traceio.File) *Trace {
	tr := &Trace{
		Header:    f.Header,
		Meta:      f.Meta,
		Strings:   map[uint64]string{},
		Truncated: f.Truncated,
	}
	if f.Truncated {
		tr.Issues = append(tr.Issues, Issue{"warn", "trace is truncated (crashed or incomplete run)"})
	}
	for _, d := range f.Meta.Drops {
		tr.Issues = append(tr.Issues,
			Issue{"warn", fmt.Sprintf("SPE %d dropped %d records (main trace region full)", d.SPE, d.Count)})
	}
	return tr
}

// stringDef is one interned string observed while decoding a chunk.
type stringDef struct {
	ref uint64
	s   string
}

// chunkResult is everything one worker produced for one chunk.
type chunkResult struct {
	events  []Event
	strings []stringDef
	issues  []Issue
	err     error
}

// recordBudget folds the record-count and decode-memory limits into one
// cumulative cap on decoded records (0 = unlimited).
func recordBudget(lim Limits) int64 {
	budget := int64(0)
	if lim.MaxRecords > 0 {
		budget = int64(lim.MaxRecords)
	}
	if lim.MaxDecodeBytes > 0 {
		if b := lim.MaxDecodeBytes / eventFootprint; budget == 0 || b < budget {
			budget = b
		}
	}
	return budget
}

// admitChunks is the pre-decode admission check: every chunk's actual
// data size against MaxChunkBytes (hand-assembled Files bypass Parse, so
// the parser's check alone is not enough), and the cheap whole-file
// record upper bound against the combined record budget.
func admitChunks(f *traceio.File, lim Limits) error {
	if lim.Unlimited() {
		return nil
	}
	for _, c := range f.Chunks {
		if lim.MaxChunkBytes > 0 && len(c.Data) > lim.MaxChunkBytes {
			return fmt.Errorf("%w: chunk for core %d holds %d bytes, limit %d",
				ErrLimitExceeded, c.Core, len(c.Data), lim.MaxChunkBytes)
		}
	}
	return nil
}

// fromFile runs the pipeline with a bounded number of decode workers. In
// lenient mode (salvaged files), chunk decode errors and unresolvable
// anchors become Issues on the trace instead of failing the load, and
// whatever records did decode are kept. Cancellation and admission
// failures are never lenient: both stop the load with a typed error after
// every worker has been joined.
func fromFile(ctx context.Context, f *traceio.File, workers int, lenient bool, lim Limits) (*Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := admitChunks(f, lim); err != nil {
		return nil, err
	}
	tr := newTrace(f)
	n := len(f.Chunks)
	if n == 0 {
		tr.buildIndexes()
		tr.Confidence = computeConfidence(tr, nil)
		return tr, nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// decoded counts records cumulatively across workers so the combined
	// record/memory budget trips mid-decode, not after the fact.
	var decoded atomic.Int64
	budget := recordBudget(lim)

	results := make([]chunkResult, n)
	if workers == 1 {
		for i := range f.Chunks {
			if ctx.Err() != nil {
				break
			}
			results[i] = decodeChunkEvents(ctx, f, i, lenient, lim, &decoded, budget)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					if ctx.Err() != nil {
						// Drain remaining indexes without decoding so the
						// feeder never blocks and the pool winds down fast.
						continue
					}
					results[i] = decodeChunkEvents(ctx, f, i, lenient, lim, &decoded, budget)
				}
			}()
		}
	feed:
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Aggregate in chunk order so issues, string interning and the error
	// returned are deterministic and identical to the serial path. Panics
	// recovered in a worker become per-chunk issues (the chunk's records
	// are lost to the unwind); admission failures abort even lenient
	// loads.
	total := 0
	streams := make([][]Event, n)
	for i := range results {
		r := &results[i]
		if r.err != nil {
			switch {
			case errors.Is(r.err, errDecodePanic):
				tr.Issues = append(tr.Issues, Issue{"error", r.err.Error()})
				continue
			case errors.Is(r.err, ErrLimitExceeded), errors.Is(r.err, context.Canceled),
				errors.Is(r.err, context.DeadlineExceeded), !lenient:
				return nil, r.err
			default:
				// Lenient decode damage was already folded into r.issues
				// by the worker; r.err is only set on hard failures.
				return nil, r.err
			}
		}
		tr.Issues = append(tr.Issues, r.issues...)
		for _, sd := range r.strings {
			tr.Strings[sd.ref] = sd.s
		}
		streams[i] = r.events
		total += len(r.events)
	}
	var err error
	tr.Events, err = mergeStreams(ctx, streams, total)
	if err != nil {
		return nil, err
	}
	for i := range tr.Events {
		tr.Events[i].Seq = i
	}
	tr.buildIndexes()
	tr.Confidence = computeConfidence(tr, nil)
	return tr, nil
}

// decodeChunkEvents decodes one chunk into its event stream, resolving
// anchor times and collecting interned strings and per-chunk issues. The
// returned stream is ascending in Global: chunks are time-ordered at the
// source, and the rare unordered one (none of our writers produce them,
// but foreign traces may) is stable-sorted here, which preserves exact
// equivalence with a global stable sort.
//
// A panic anywhere in the decode is recovered and converted into a
// per-chunk errDecodePanic, so one poisoned chunk degrades into a trace
// Issue instead of crashing the worker pool. decoded accumulates the
// cross-chunk record count against budget (0 = unlimited).
func decodeChunkEvents(ctx context.Context, f *traceio.File, i int, lenient bool, lim Limits, decoded *atomic.Int64, budget int64) (res chunkResult) {
	c := f.Chunks[i]
	defer func() {
		if r := recover(); r != nil {
			res = chunkResult{err: fmt.Errorf("%w: core %d chunk %d: %v", errDecodePanic, c.Core, i, r)}
		}
	}()
	if decodePanicHook != nil {
		decodePanicHook(i)
	}
	recs, trunc, err := traceio.DecodeChunkContext(ctx, c, lim)
	if err != nil {
		if errors.Is(err, ErrLimitExceeded) || ctx.Err() != nil {
			res.err = err
			return res
		}
		if !lenient {
			res.err = err
			return res
		}
		// Lenient (salvaged) load: keep the records that did decode and
		// surface the damage as an issue.
		res.issues = append(res.issues,
			Issue{"error", fmt.Sprintf("chunk for core %d: decode stopped after %d records: %v",
				c.Core, len(recs), err)})
	}
	if budget > 0 {
		if n := decoded.Add(int64(len(recs))); n > budget {
			res = chunkResult{err: fmt.Errorf("%w: decoded records %d exceed budget %d (MaxRecords/MaxDecodeBytes)",
				ErrLimitExceeded, n, budget)}
			return res
		}
	}
	if trunc {
		res.issues = append(res.issues,
			Issue{"warn", fmt.Sprintf("chunk for core %d truncated mid-record", c.Core)})
	}
	run := -1
	var anchorTB uint64
	if c.Core != event.CorePPE {
		if int(c.AnchorIdx) >= len(f.Meta.Anchors) {
			if !lenient {
				res.err = fmt.Errorf("analyzer: chunk for SPE %d references anchor %d of %d",
					c.Core, c.AnchorIdx, len(f.Meta.Anchors))
				return res
			}
			// No anchor to place this chunk on the timeline: drop it.
			res.issues = append(res.issues,
				Issue{"error", fmt.Sprintf("chunk for SPE %d dropped: anchor %d of %d unresolvable",
					c.Core, c.AnchorIdx, len(f.Meta.Anchors))})
			return res
		}
		a := f.Meta.Anchors[c.AnchorIdx]
		if a.SPE != int(c.Core) {
			res.issues = append(res.issues,
				Issue{"error", fmt.Sprintf("anchor %d is for SPE %d but chunk is core %d", c.AnchorIdx, a.SPE, c.Core)})
		}
		run = int(c.AnchorIdx)
		anchorTB = a.Timebase
	}
	evs := make([]Event, len(recs))
	sorted := true
	for j, rec := range recs {
		ev := &evs[j]
		ev.Record = rec
		ev.Run = run
		if rec.Flags&event.FlagDecrTime != 0 {
			// SPU decrementer time: elapsed ticks since the anchor.
			ev.Global = anchorTB + rec.Time
		} else {
			ev.Global = rec.Time
		}
		if rec.ID == event.StringDef && len(rec.Args) == 1 {
			res.strings = append(res.strings, stringDef{rec.Args[0], rec.Str})
		}
		if j > 0 && evs[j-1].Global > ev.Global {
			sorted = false
		}
	}
	if !sorted {
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].Global < evs[b].Global })
	}
	res.events = evs
	return res
}

// streamHead is one live input of the k-way merge: the remaining events
// of a chunk plus the chunk's file position, which breaks Global ties.
type streamHead struct {
	ev  []Event
	idx int
}

// headLess orders heap entries by (Global of next event, chunk index);
// the chunk index is unique, so the order is total and the merge output
// is exactly the stable-sort order over the chunk-concatenated stream.
func headLess(a, b *streamHead) bool {
	ga, gb := a.ev[0].Global, b.ev[0].Global
	return ga < gb || (ga == gb && a.idx < b.idx)
}

func siftDown(h []streamHead, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && headLess(&h[r], &h[l]) {
			m = r
		}
		if !headLess(&h[m], &h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// mergeCtxStride is how many merged events pass between context polls in
// the k-way merge hot loop: cheap enough to be invisible, frequent enough
// that cancellation lands well inside the 100 ms budget even on
// multi-million-event traces.
const mergeCtxStride = 1 << 14

// mergeStreams k-way merges per-chunk event streams, each ascending in
// Global, into one slice of length total: O(N log k) instead of the
// O(N log N) global sort, with no reflection in the hot loop. The merge
// polls ctx every mergeCtxStride events and aborts with ctx.Err().
func mergeStreams(ctx context.Context, streams [][]Event, total int) ([]Event, error) {
	h := make([]streamHead, 0, len(streams))
	for i, s := range streams {
		if len(s) > 0 {
			h = append(h, streamHead{s, i})
		}
	}
	if len(h) == 0 {
		return nil, nil
	}
	if len(h) == 1 {
		return h[0].ev, nil
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	out := make([]Event, 0, total)
	for len(h) > 1 {
		if len(out)%mergeCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		top := &h[0]
		out = append(out, top.ev[0])
		top.ev = top.ev[1:]
		if len(top.ev) == 0 {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(h, 0)
	}
	return append(out, h[0].ev...), nil
}

// buildIndexes precomputes the CoreEvents and RunEvents views in two
// passes (count, then fill) so every view is allocated exactly once.
func (tr *Trace) buildIndexes() {
	coreCount := make(map[uint8]int)
	runCount := make([]int, len(tr.Meta.Anchors))
	for i := range tr.Events {
		e := &tr.Events[i]
		coreCount[e.Core]++
		if e.Run >= 0 && e.Run < len(runCount) {
			runCount[e.Run]++
		}
	}
	tr.coreIndex = make(map[uint8][]Event, len(coreCount))
	for c, n := range coreCount {
		tr.coreIndex[c] = make([]Event, 0, n)
	}
	tr.runIndex = make([][]Event, len(runCount))
	for r, n := range runCount {
		if n > 0 {
			tr.runIndex[r] = make([]Event, 0, n)
		}
	}
	for i := range tr.Events {
		e := tr.Events[i]
		tr.coreIndex[e.Core] = append(tr.coreIndex[e.Core], e)
		if e.Run >= 0 && e.Run < len(tr.runIndex) {
			tr.runIndex[e.Run] = append(tr.runIndex[e.Run], e)
		}
	}
}

// StringRef resolves an interned string reference.
func (tr *Trace) StringRef(ref uint64) string {
	if s, ok := tr.Strings[ref]; ok {
		return s
	}
	return fmt.Sprintf("<str:%d>", ref)
}

// CoreEvents returns the events of one core in stream order. On traces
// built by the load pipeline this is a precomputed view; callers must
// not modify it.
func (tr *Trace) CoreEvents(core uint8) []Event {
	if tr.coreIndex != nil {
		return tr.coreIndex[core]
	}
	var out []Event
	for _, e := range tr.Events {
		if e.Core == core {
			out = append(out, e)
		}
	}
	return out
}

// RunEvents returns the events of one SPE program run in stream order.
// On traces built by the load pipeline this is a precomputed view;
// callers must not modify it.
func (tr *Trace) RunEvents(run int) []Event {
	if tr.runIndex != nil && run >= 0 && run < len(tr.runIndex) {
		return tr.runIndex[run]
	}
	var out []Event
	for _, e := range tr.Events {
		if e.Run == run {
			out = append(out, e)
		}
	}
	return out
}

// Span returns the [first, last] global time covered by the trace.
func (tr *Trace) Span() (start, end uint64) {
	if len(tr.Events) == 0 {
		return 0, 0
	}
	return tr.Events[0].Global, tr.Events[len(tr.Events)-1].Global
}

// CyclesPerTick converts timebase ticks to processor cycles.
func (tr *Trace) CyclesPerTick() uint64 {
	if tr.Header.TimebaseDiv == 0 {
		return 1
	}
	return tr.Header.TimebaseDiv
}
