package analyzer

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// assertNoLeakedGoroutines waits (briefly) for the goroutine count to
// return to the pre-test baseline: decode workers are joined before
// fromFile returns, so anything above baseline that persists is a leak.
func assertNoLeakedGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// bigTestFile builds a parsed multi-chunk file large enough that the
// pipeline is genuinely mid-flight when a cancel lands.
func bigTestFile(t *testing.T, chunks, recsPerChunk int) *traceio.File {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	meta := traceio.Meta{}
	var cs []traceio.Chunk
	for c := 0; c < chunks; c++ {
		spe := c % 4
		meta.Anchors = append(meta.Anchors, traceio.Anchor{
			SPE: spe, Timebase: uint64(c * 1000), Program: "cancel-test"})
		var data []byte
		var err error
		for r := 0; r < recsPerChunk; r++ {
			rec := event.Record{ID: event.SPEMFCGet, Core: uint8(spe), Flags: event.FlagDecrTime,
				Time: uint64(r*7 + rng.Intn(5)), Args: []uint64{0, 64, 128, uint64(r % 16)}}
			data, err = rec.AppendTo(data)
			if err != nil {
				t.Fatal(err)
			}
		}
		cs = append(cs, traceio.Chunk{Core: uint8(spe), AnchorIdx: uint16(c), Data: data})
	}
	return encodeFile(t, meta, cs)
}

// TestFromFileContextCancelMidPipeline cancels loads at a spread of
// delays — from "before the first worker runs" to "after the merge is
// done" — and checks every outcome is either a clean trace or ctx.Err(),
// with all pipeline goroutines joined (run under -race in CI).
func TestFromFileContextCancelMidPipeline(t *testing.T) {
	f := bigTestFile(t, 16, 4000)
	baseline := runtime.NumGoroutine()

	delays := []time.Duration{0, 50 * time.Microsecond, 200 * time.Microsecond,
		time.Millisecond, 5 * time.Millisecond, 50 * time.Millisecond}
	for trial := 0; trial < 30; trial++ {
		d := delays[trial%len(delays)]
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(d)
			cancel()
		}()
		tr, err := FromFileContext(ctx, f, Limits{})
		cancel()
		switch {
		case err == nil:
			if tr.NumEvents() != 16*4000 {
				t.Fatalf("trial %d: complete load has %d events, want %d", trial, tr.NumEvents(), 16*4000)
			}
		case errors.Is(err, context.Canceled):
			if tr != nil {
				t.Fatalf("trial %d: cancelled load returned a trace", trial)
			}
		default:
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
	}
	assertNoLeakedGoroutines(t, baseline)
}

// TestFromFileContextCancelledUpFront: an already-dead context never
// starts the pipeline.
func TestFromFileContextCancelledUpFront(t *testing.T) {
	f := bigTestFile(t, 2, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	baseline := runtime.NumGoroutine()
	if _, err := FromFileContext(ctx, f, Limits{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	assertNoLeakedGoroutines(t, baseline)
}

// TestFromFileContextDeadline: an expired deadline surfaces as
// context.DeadlineExceeded, the distinct error the CLIs map to their
// timeout exit code.
func TestFromFileContextDeadline(t *testing.T) {
	f := bigTestFile(t, 8, 4000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := FromFileContext(ctx, f, Limits{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestFromFileLimits exercises the analyzer-side admission checks:
// record-count budget, decode-memory budget, and per-chunk byte cap —
// the last also through the lenient salvage path, which must not excuse
// resource limits.
func TestFromFileLimits(t *testing.T) {
	f := bigTestFile(t, 4, 500) // 2000 records total
	ctx := context.Background()

	if _, err := FromFileContext(ctx, f, Limits{MaxRecords: 100}); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("MaxRecords: want ErrLimitExceeded, got %v", err)
	}
	if _, err := FromFileContext(ctx, f, Limits{MaxDecodeBytes: 1024}); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("MaxDecodeBytes: want ErrLimitExceeded, got %v", err)
	}
	if _, err := FromFileContext(ctx, f, Limits{MaxChunkBytes: 64}); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("MaxChunkBytes: want ErrLimitExceeded, got %v", err)
	}
	if _, err := FromSalvagedContext(ctx, f, nil, Limits{MaxChunkBytes: 64}); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("lenient MaxChunkBytes: want ErrLimitExceeded, got %v", err)
	}
	// Generous limits admit the trace untouched.
	tr, err := FromFileContext(ctx, f, DefaultServiceLimits())
	if err != nil {
		t.Fatalf("within limits: %v", err)
	}
	if tr.NumEvents() != 2000 {
		t.Fatalf("admitted load lost events: %d", tr.NumEvents())
	}
}

// TestDecodePanicBecomesIssue injects a panic into one chunk's decode and
// checks it degrades into a per-chunk Issue — the other chunks' records
// survive and the load succeeds.
func TestDecodePanicBecomesIssue(t *testing.T) {
	f := bigTestFile(t, 4, 100)
	decodePanicHook = func(chunk int) {
		if chunk == 2 {
			panic("injected decode fault")
		}
	}
	defer func() { decodePanicHook = nil }()

	baseline := runtime.NumGoroutine()
	tr, err := fromFile(context.Background(), f, 4, false, Limits{})
	if err != nil {
		t.Fatalf("load with poisoned chunk failed outright: %v", err)
	}
	if tr.NumEvents() != 3*100 {
		t.Fatalf("got %d events, want the 300 from intact chunks", tr.NumEvents())
	}
	found := false
	for _, is := range tr.Issues {
		if is.Severity == "error" && strings.Contains(is.Msg, "panic") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no panic issue recorded: %v", tr.Issues)
	}
	assertNoLeakedGoroutines(t, baseline)
}
