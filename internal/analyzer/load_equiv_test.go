package analyzer_test

// External test package: the equivalence suite drives whole traced
// workload runs through the harness (which itself imports analyzer), so
// it cannot live in package analyzer.

import (
	"reflect"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
	"github.com/celltrace/pdt/internal/harness"
	"github.com/celltrace/pdt/internal/workloads"
)

// equivParams gives every registered workload a small but representative
// configuration, so the suite stays fast while covering every record mix
// the workloads produce.
var equivParams = map[string]map[string]string{
	"matmul":    {"n": "64", "t": "16"},
	"fft":       {"n": "256", "batches": "4"},
	"pipeline":  {"blocks": "8", "blockbytes": "1024"},
	"julia":     {"w": "64", "h": "32", "maxiter": "16", "mode": "dynamic"},
	"histogram": {"size": "65536"},
	"synthetic": {"events": "400", "gap": "100"},
	"stream":    {"elements": "8192"},
	"stencil":   {"w": "64", "h": "16", "iters": "2"},
	"sort":      {"elements": "8192", "chunk": "1024"},
	"nbody":     {"n": "64"},
	"taskfarm":  {"tasks": "16", "blockbytes": "1024"},
}

// TestParallelLoadMatchesSerialAllWorkloads runs every registered
// workload traced and asserts the parallel pipeline reconstructs an
// event stream identical — Seq for Seq, including tie-break order — to
// the serial stable-sort reference.
func TestParallelLoadMatchesSerialAllWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			params, ok := equivParams[name]
			if !ok {
				t.Fatalf("no equivalence params for workload %q — add it to equivParams", name)
			}
			cfg := core.DefaultTraceConfig()
			res, err := harness.Run(harness.Spec{Workload: name, Params: params, Trace: &cfg})
			if err != nil {
				t.Fatal(err)
			}
			f, err := traceio.Parse(res.TraceBytes)
			if err != nil {
				t.Fatal(err)
			}
			want, err := analyzer.FromFileSerial(f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := analyzer.FromFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if want.NumEvents() == 0 {
				t.Fatal("reference trace is empty — workload produced no records")
			}
			if want.NumEvents() != got.NumEvents() {
				t.Fatalf("event count: serial %d, parallel %d", want.NumEvents(), got.NumEvents())
			}
			for i, n := 0, want.NumEvents(); i < n; i++ {
				if !reflect.DeepEqual(want.Event(i), got.Event(i)) {
					t.Fatalf("event %d differs:\nserial   %+v\nparallel %+v",
						i, want.Event(i), got.Event(i))
				}
			}
			if !reflect.DeepEqual(want.Issues, got.Issues) {
				t.Fatalf("issues differ: serial %v, parallel %v", want.Issues, got.Issues)
			}
			if !reflect.DeepEqual(want.Strings, got.Strings) {
				t.Fatalf("string tables differ")
			}
			for run := range want.Meta.Anchors {
				if !reflect.DeepEqual(want.RunEvents(run), got.RunEvents(run)) {
					t.Fatalf("RunEvents(%d) differ", run)
				}
			}
			if !reflect.DeepEqual(want.CoreEvents(event.CorePPE), got.CoreEvents(event.CorePPE)) {
				t.Fatal("CoreEvents(PPE) differ")
			}
		})
	}
}
