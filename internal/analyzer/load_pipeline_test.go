package analyzer

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer/colstore"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// encodeFile serializes meta+chunks through the writer and parses the
// result back, giving the pipeline exactly what a disk trace provides.
func encodeFile(t *testing.T, meta traceio.Meta, chunks []traceio.Chunk) *traceio.File {
	t.Helper()
	var buf bytes.Buffer
	w, err := traceio.NewWriter(&buf, traceio.Header{Version: traceio.Version, NumSPEs: 8, TimebaseDiv: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMeta(&meta); err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if err := w.WriteChunk(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := traceio.Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// assertTracesEqual compares every observable of two loaded traces,
// including the Seq-for-Seq event order and the precomputed views.
func assertTracesEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if want.Truncated != got.Truncated {
		t.Fatalf("Truncated: want %v got %v", want.Truncated, got.Truncated)
	}
	if !reflect.DeepEqual(want.Issues, got.Issues) {
		t.Fatalf("Issues differ:\nwant %v\ngot  %v", want.Issues, got.Issues)
	}
	if !reflect.DeepEqual(want.Strings, got.Strings) {
		t.Fatalf("Strings differ:\nwant %v\ngot  %v", want.Strings, got.Strings)
	}
	if want.NumEvents() != got.NumEvents() {
		t.Fatalf("event count: want %d got %d", want.NumEvents(), got.NumEvents())
	}
	for i, n := 0, want.NumEvents(); i < n; i++ {
		if !reflect.DeepEqual(want.Event(i), got.Event(i)) {
			t.Fatalf("event %d differs:\nwant %+v\ngot  %+v", i, want.Event(i), got.Event(i))
		}
	}
	for core := 0; core < 8; core++ {
		if !reflect.DeepEqual(want.CoreEvents(uint8(core)), got.CoreEvents(uint8(core))) {
			t.Fatalf("CoreEvents(%d) differ", core)
		}
	}
	if !reflect.DeepEqual(want.CoreEvents(event.CorePPE), got.CoreEvents(event.CorePPE)) {
		t.Fatalf("CoreEvents(PPE) differ")
	}
	for run := -1; run < len(want.Meta.Anchors)+1; run++ {
		if !reflect.DeepEqual(want.RunEvents(run), got.RunEvents(run)) {
			t.Fatalf("RunEvents(%d) differ", run)
		}
	}
}

// randChunks builds a reproducible random multi-chunk trace designed to
// stress the merge: heavy Global-time ties across chunks (exercising the
// chunk-order tie-break), zero padding runs, interned strings, and the
// occasional chunk that is not time-ordered at the source.
func randChunks(rng *rand.Rand) (traceio.Meta, []traceio.Chunk) {
	meta := traceio.Meta{Workload: "fuzz"}
	nChunks := 1 + rng.Intn(10)
	var chunks []traceio.Chunk
	for c := 0; c < nChunks; c++ {
		var data []byte
		spe := c % 6
		isPPE := rng.Intn(4) == 0
		core := uint8(spe)
		anchor := uint16(traceio.NoAnchor)
		var flags uint8
		if isPPE {
			core = event.CorePPE
		} else {
			anchor = uint16(len(meta.Anchors))
			meta.Anchors = append(meta.Anchors, traceio.Anchor{
				SPE: spe, Timebase: uint64(rng.Intn(50)), Program: fmt.Sprintf("p%d", c),
			})
			flags = event.FlagDecrTime
		}
		// Mostly-ascending times from a tiny range so cross-chunk ties
		// are common; ~1 in 5 chunks is deliberately unordered.
		tm := uint64(rng.Intn(4))
		shuffle := rng.Intn(5) == 0
		var times []uint64
		nRecs := rng.Intn(40)
		for r := 0; r < nRecs; r++ {
			times = append(times, tm)
			tm += uint64(rng.Intn(3))
		}
		if shuffle {
			rng.Shuffle(len(times), func(i, j int) { times[i], times[j] = times[j], times[i] })
		}
		for r := 0; r < nRecs; r++ {
			var rec event.Record
			switch rng.Intn(3) {
			case 0:
				rec = event.Record{ID: event.SPEUserEvent, Args: []uint64{uint64(r), 1, 2}}
			case 1:
				rec = event.Record{ID: event.SPEMFCGet, Args: []uint64{0, 4096, 128, uint64(r % 8)}}
			default:
				rec = event.Record{ID: event.StringDef, Flags: event.FlagHasStr,
					Args: []uint64{uint64(rng.Intn(6))}, Str: fmt.Sprintf("s%d-%d", c, r)}
			}
			rec.Core = core
			rec.Flags |= flags
			rec.Time = times[r]
			var err error
			data, err = rec.AppendTo(data)
			if err != nil {
				panic(err)
			}
			if rng.Intn(6) == 0 {
				// DMA-alignment padding run between flush regions.
				data = append(data, make([]byte, 1+rng.Intn(40))...)
			}
		}
		chunks = append(chunks, traceio.Chunk{Core: core, AnchorIdx: anchor, Data: data})
	}
	return meta, chunks
}

// TestPipelineMatchesSerialFuzzed proves the parallel pipeline and the
// stable-sort reference produce identical traces — Seq for Seq, issue
// for issue — on randomized multi-chunk inputs, across worker counts.
func TestPipelineMatchesSerialFuzzed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		meta, chunks := randChunks(rng)
		f := encodeFile(t, meta, chunks)
		want, err := FromFileSerial(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			got, err := fromFile(context.Background(), f, workers, false, Limits{})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			assertTracesEqual(t, want, got)
		}
	}
}

// TestPipelineChunkIssues checks that per-chunk findings (anchor
// mismatch, mid-record truncation) surface identically and in the same
// order from both load paths.
func TestPipelineChunkIssues(t *testing.T) {
	meta := traceio.Meta{
		Anchors: []traceio.Anchor{{SPE: 3, Timebase: 10, Program: "x"}}, // chunk below claims core 1
	}
	rec := event.Record{ID: event.SPEUserEvent, Core: 1, Flags: event.FlagDecrTime,
		Time: 5, Args: []uint64{1, 2, 3}}
	data, err := rec.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	truncated := append(append([]byte{}, data...), data[:5]...) // second record cut mid-header
	chunks := []traceio.Chunk{
		{Core: 1, AnchorIdx: 0, Data: data},
		{Core: 1, AnchorIdx: 0, Data: truncated},
	}
	f := encodeFile(t, meta, chunks)
	want, err := FromFileSerial(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Issues) != 3 { // mismatch (chunk 0), mismatch + truncation (chunk 1)
		t.Fatalf("expected 3 issues from reference path, got %v", want.Issues)
	}
	got, err := fromFile(context.Background(), f, 2, false, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, want, got)
}

// TestPipelineBadAnchorError checks both paths reject a chunk whose
// anchor index is out of range, with the same error.
func TestPipelineBadAnchorError(t *testing.T) {
	rec := event.Record{ID: event.SPEUserEvent, Core: 0, Flags: event.FlagDecrTime,
		Time: 1, Args: []uint64{1, 2, 3}}
	data, err := rec.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	f := encodeFile(t, traceio.Meta{}, []traceio.Chunk{{Core: 0, AnchorIdx: 4, Data: data}})
	_, errSerial := FromFileSerial(f)
	_, errPar := fromFile(context.Background(), f, 2, false, Limits{})
	if errSerial == nil || errPar == nil {
		t.Fatalf("expected errors, got serial=%v parallel=%v", errSerial, errPar)
	}
	if errSerial.Error() != errPar.Error() {
		t.Fatalf("errors differ: serial=%v parallel=%v", errSerial, errPar)
	}
}

// TestMergeStreams exercises the k-way merge directly on corner cases.
// Each stream's run tag is set to its own index so the Run column
// records which stream every merged row came from, making the
// tie-breaking order observable.
func TestMergeStreams(t *testing.T) {
	stream := func(tag int32, globals ...uint64) chunkStream {
		return chunkStream{recs: make([]event.Record, len(globals)), globals: globals, run: tag}
	}
	cases := []struct {
		name    string
		streams []chunkStream
		want    []uint64 // expected Global order
		runs    []int    // expected Run (stream tag) order, checking ties
	}{
		{"empty", nil, nil, nil},
		{"single", []chunkStream{stream(0, 3, 5)}, []uint64{3, 5}, []int{0, 0}},
		{"ties break by chunk order",
			[]chunkStream{stream(0, 1, 2), stream(1, 1, 2), stream(2, 1)},
			[]uint64{1, 1, 1, 2, 2}, []int{0, 1, 2, 0, 1}},
		{"with empty stream between",
			[]chunkStream{stream(0, 4), {run: 1}, stream(2, 2, 4)},
			[]uint64{2, 4, 4}, []int{2, 0, 2}},
	}
	for _, tc := range cases {
		total := 0
		for _, s := range tc.streams {
			total += len(s.recs)
		}
		b := colstore.NewBuilder(total, 0)
		if err := mergeStreams(context.Background(), b, tc.streams, total); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := b.Done()
		if got.Len() != len(tc.want) {
			t.Fatalf("%s: got %d events, want %d", tc.name, got.Len(), len(tc.want))
		}
		for i := 0; i < got.Len(); i++ {
			if got.Global[i] != tc.want[i] || int(got.Run[i]) != tc.runs[i] {
				t.Fatalf("%s: event %d = (t=%d, stream=%d), want (t=%d, stream=%d)",
					tc.name, i, got.Global[i], got.Run[i], tc.want[i], tc.runs[i])
			}
		}
	}
}

// TestManualTraceFallback checks that hand-assembled Trace values (no
// precomputed indexes) still answer CoreEvents/RunEvents by scanning.
func TestManualTraceFallback(t *testing.T) {
	tr := &Trace{}
	tr.SetEvents([]Event{
		{Record: event.Record{Core: 2}, Run: 0, Global: 1, Seq: 0},
		{Record: event.Record{Core: event.CorePPE}, Run: -1, Global: 2, Seq: 1},
		{Record: event.Record{Core: 2}, Run: 0, Global: 3, Seq: 2},
	})
	if n := len(tr.CoreEvents(2)); n != 2 {
		t.Fatalf("CoreEvents(2) = %d events, want 2", n)
	}
	if n := len(tr.RunEvents(-1)); n != 1 {
		t.Fatalf("RunEvents(-1) = %d events, want 1", n)
	}
	if n := len(tr.RunEvents(0)); n != 2 {
		t.Fatalf("RunEvents(0) = %d events, want 2", n)
	}
}
