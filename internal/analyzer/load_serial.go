package analyzer

import (
	"fmt"
	"sort"

	"github.com/celltrace/pdt/internal/analyzer/colstore"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// FromFileSerial is the single-threaded reference load path: decode the
// chunks one after another into a single record-shaped slice and
// establish the global order with one stable sort, exactly as the
// analyzer did before the parallel pipeline existed. It defines the
// ordering contract FromFile must reproduce (ascending Global, ties in
// file order), is what the equivalence tests compare against, and is the
// baseline BenchmarkLoadLargeTrace measures the pipeline's speedup over.
// Only after the order is fixed are the events transposed into the
// columnar store.
func FromFileSerial(f *traceio.File) (*Trace, error) {
	resolveLiveAnchors(f)
	tr := newTrace(f)
	var events []Event
	argWords := 0
	for _, c := range f.Chunks {
		recs, trunc, err := traceio.DecodeChunk(c)
		if err != nil {
			return nil, err
		}
		if trunc {
			tr.Issues = append(tr.Issues,
				Issue{"warn", fmt.Sprintf("chunk for core %d truncated mid-record", c.Core)})
		}
		run := -1
		var anchorTB uint64
		if c.Core != event.CorePPE {
			if int(c.AnchorIdx) >= len(f.Meta.Anchors) {
				return nil, fmt.Errorf("analyzer: chunk for SPE %d references anchor %d of %d",
					c.Core, c.AnchorIdx, len(f.Meta.Anchors))
			}
			a := f.Meta.Anchors[c.AnchorIdx]
			if a.SPE != int(c.Core) {
				tr.Issues = append(tr.Issues,
					Issue{"error", fmt.Sprintf("anchor %d is for SPE %d but chunk is core %d", c.AnchorIdx, a.SPE, c.Core)})
			}
			run = int(c.AnchorIdx)
			anchorTB = a.Timebase
		}
		for _, rec := range recs {
			ev := Event{Record: rec, Run: run}
			if rec.Flags&event.FlagDecrTime != 0 {
				// SPU decrementer time: elapsed ticks since the anchor.
				ev.Global = anchorTB + rec.Time
			} else {
				ev.Global = rec.Time
			}
			if rec.ID == event.StringDef && len(rec.Args) == 1 {
				tr.Strings[rec.Args[0]] = rec.Str
			}
			argWords += len(rec.Args)
			events = append(events, ev)
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].Global < events[j].Global
	})
	b := colstore.NewBuilder(len(events), argWords)
	for i := range events {
		ev := &events[i]
		b.Append(&ev.Record, ev.Global, int32(ev.Run))
	}
	tr.finish(b)
	return tr, nil
}
