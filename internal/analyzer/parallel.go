package analyzer

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// runParallel runs n independent tasks on a bounded pool of at most
// `workers` goroutines (GOMAXPROCS when workers <= 0) and returns once
// every task has finished. Tasks are handed out through a shared counter,
// so uneven task costs balance across the pool. A panic inside a task is
// captured and re-raised on the calling goroutine, preserving the
// panic-containment contract of the serial kernels (pdt-tad's recovery
// middleware can only catch panics on the handler goroutine).
func runParallel(workers, n int, task func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicked.CompareAndSwap(nil, v)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
	if v := panicked.Load(); v != nil {
		panic(v)
	}
}

// RunParallel exposes the bounded worker pool to sibling analysis
// packages (analyzer/diff shards its per-core scans on it): n
// independent tasks on at most `workers` goroutines (GOMAXPROCS when
// workers <= 0), panics re-raised on the caller.
func RunParallel(workers, n int, task func(i int)) { runParallel(workers, n, task) }

// parallelThreshold is the event count below which the sharded kernels
// run their serial variants instead of fanning out: at the benchmark's
// -short size (~16k events) pool startup and shard merging cost more
// than the whole serial scan, while at ~10x that the parallel variants
// win by integer factors. The crossover was measured with
// BenchmarkProfileLargeTrace, the kernel with the cheapest per-event
// work and therefore the worst parallel overhead ratio.
const parallelThreshold = 1 << 15

// ParallelThreshold exposes the adaptive-parallelism cutoff to sibling
// analysis packages (analyzer/diff gates its sharded scans on it).
func ParallelThreshold() int { return parallelThreshold }

// parallelWorthwhile reports whether fanning a kernel out over a worker
// pool can pay for itself: the trace must be past the measured size
// threshold AND the host must actually have more than one processor —
// on a single P the pool serializes anyway, so channel and shard-merge
// overhead is pure loss.
func (tr *Trace) parallelWorthwhile() bool {
	return runtime.GOMAXPROCS(0) > 1 && tr.NumEvents() >= parallelThreshold
}

// Cores returns the distinct core ids present in the trace, ascending.
func (tr *Trace) Cores() []uint8 {
	out := make([]uint8, 0, len(tr.coreSeq))
	for c := range tr.coreSeq {
		out = append(out, c)
	}
	slices.Sort(out)
	return out
}

// Footprint reports the resident size of the loaded trace in bytes: the
// exact columnar store size (fixed-width columns, argument arena,
// interned strings) plus the per-core/per-run index arenas and a small
// constant for the surrounding structures. The trace cache uses it as
// the entry weight for its byte bound.
func (tr *Trace) Footprint() int64 {
	n := int64(4096)
	if tr.col != nil {
		n += tr.col.Bytes()
	}
	// Index arenas: 4 bytes per entry; every event appears once in the
	// core index and SPE events once more in the run index.
	for _, seqs := range tr.coreSeq {
		n += int64(len(seqs)) * 4
	}
	for _, seqs := range tr.runSeq {
		n += int64(len(seqs)) * 4
	}
	for _, s := range tr.Strings {
		n += 8 + 16 + int64(len(s))
	}
	return n
}
