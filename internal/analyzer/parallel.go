package analyzer

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// runParallel runs n independent tasks on a bounded pool of at most
// `workers` goroutines (GOMAXPROCS when workers <= 0) and returns once
// every task has finished. Tasks are handed out through a shared counter,
// so uneven task costs balance across the pool. A panic inside a task is
// captured and re-raised on the calling goroutine, preserving the
// panic-containment contract of the serial kernels (pdt-tad's recovery
// middleware can only catch panics on the handler goroutine).
func runParallel(workers, n int, task func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicked.CompareAndSwap(nil, v)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
	if v := panicked.Load(); v != nil {
		panic(v)
	}
}

// RunParallel exposes the bounded worker pool to sibling analysis
// packages (analyzer/diff shards its per-core scans on it): n
// independent tasks on at most `workers` goroutines (GOMAXPROCS when
// workers <= 0), panics re-raised on the caller.
func RunParallel(workers, n int, task func(i int)) { runParallel(workers, n, task) }

// Cores returns the distinct core ids present in the trace, ascending.
// On pipeline-loaded traces this reads the precomputed index; on
// hand-assembled traces it scans the stream.
func (tr *Trace) Cores() []uint8 {
	var out []uint8
	if tr.coreIndex != nil {
		out = make([]uint8, 0, len(tr.coreIndex))
		for c := range tr.coreIndex {
			out = append(out, c)
		}
	} else {
		var seen [256]bool
		for i := range tr.Events {
			c := tr.Events[i].Core
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	slices.Sort(out)
	return out
}

// Footprint estimates the resident size of the loaded trace in bytes:
// the merged event stream plus its per-core/per-run index copies, at the
// same per-record budget the decode admission control charges. The trace
// cache uses it as the entry weight for its byte bound.
func (tr *Trace) Footprint() int64 {
	return int64(len(tr.Events))*eventFootprint + 4096
}
