package analyzer

import "github.com/celltrace/pdt/internal/core/event"

// PPEStats aggregates the host-side view of a trace: how long the PPE
// thread(s) spent blocked waiting on SPEs and mailboxes, and how much
// proxy traffic they drove. The paper's TA shows the PPE lane alongside
// the SPE lanes; these are its numbers.
type PPEStats struct {
	Records int
	// SPEWaits counts spe_context_run-style waits; WaitTicks is their
	// total blocked time.
	SPEWaits  int
	WaitTicks uint64
	// MboxReads/Writes are completed host mailbox operations, with
	// their blocked time.
	MboxReads, MboxWrites int
	MboxWaitTicks         uint64
	// ProxyGets/Puts count proxy DMA commands and their bytes.
	ProxyGets, ProxyPuts int
	ProxyBytes           uint64
	// ProxyWaitTicks is time blocked in proxy tag waits.
	ProxyWaits     int
	ProxyWaitTicks uint64
}

// SummarizePPE computes host-side statistics from the merged stream.
func SummarizePPE(tr *Trace) PPEStats {
	var st PPEStats
	var enter = map[event.ID]uint64{} // open Enter timestamps by enter ID
	for i, n := 0, tr.NumEvents(); i < n; i++ {
		e := tr.Event(i)
		if e.IsSPE() {
			continue
		}
		st.Records++
		info, ok := event.Lookup(e.ID)
		if !ok {
			continue
		}
		switch info.Kind {
		case event.KindEnter:
			enter[e.ID] = e.Global
		case event.KindExit:
			start, open := enter[info.Pair]
			if !open {
				break
			}
			delete(enter, info.Pair)
			d := e.Global - start
			switch e.ID {
			case event.PPEWaitExit:
				st.SPEWaits++
				st.WaitTicks += d
			case event.PPEReadOutMboxExit, event.PPEReadIntrMboxExit:
				st.MboxReads++
				st.MboxWaitTicks += d
			case event.PPEWriteInMboxExit:
				st.MboxWrites++
				st.MboxWaitTicks += d
			case event.PPEWaitTagExit:
				st.ProxyWaits++
				st.ProxyWaitTicks += d
			}
		}
		switch e.ID {
		case event.PPEDMAGet:
			st.ProxyGets++
			st.ProxyBytes += e.Args[3]
		case event.PPEDMAPut:
			st.ProxyPuts++
			st.ProxyBytes += e.Args[3]
		}
	}
	return st
}

// ParallelismPoint is one bucket of the parallelism profile.
type ParallelismPoint struct {
	StartTick uint64
	// Busy is the mean number of SPEs in compute state in the bucket.
	Busy float64
}

// ParallelismSeries computes the SPE parallelism profile: per time bucket,
// the average number of SPEs actively computing. Its time-average is the
// trace's effective concurrency.
func ParallelismSeries(tr *Trace, n int) []ParallelismPoint {
	if n <= 0 {
		n = 1
	}
	start, end := tr.Span()
	if end <= start {
		return nil
	}
	span := end - start
	busy := make([]uint64, n)
	for _, iv := range Intervals(tr) {
		if iv.State != StateCompute {
			continue
		}
		b0 := int((iv.Start - start) * uint64(n) / span)
		b1 := int((iv.End - start) * uint64(n) / span)
		if b1 >= n {
			b1 = n - 1
		}
		for bk := b0; bk <= b1; bk++ {
			lo := start + uint64(bk)*span/uint64(n)
			hi := start + uint64(bk+1)*span/uint64(n)
			s, e := iv.Start, iv.End
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			if e > s {
				busy[bk] += e - s
			}
		}
	}
	out := make([]ParallelismPoint, n)
	for i := range out {
		out[i].StartTick = start + uint64(i)*span/uint64(n)
		width := span / uint64(n)
		if width > 0 {
			out[i].Busy = float64(busy[i]) / float64(width)
		}
	}
	return out
}

// EffectiveConcurrency is the time-averaged number of computing SPEs.
func EffectiveConcurrency(tr *Trace) float64 {
	start, end := tr.Span()
	if end <= start {
		return 0
	}
	var busy uint64
	for _, iv := range Intervals(tr) {
		if iv.State == StateCompute {
			busy += iv.Dur()
		}
	}
	return float64(busy) / float64(end-start)
}
