package analyzer

import (
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
)

func TestSummarizePPE(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		src := h.Alloc(1024, 128)
		hd := h.Run(0, "w", func(spu cell.SPU) uint32 {
			spu.Compute(20000)
			spu.WriteOutMbox(1)
			spu.Compute(1000)
			return 0
		})
		h.DMAGet(0, 0, src, 512, 3)
		h.DMAWaitTagAll(0, 1<<3)
		if h.ReadOutMbox(0) != 1 {
			t.Error("mbox value wrong")
		}
		h.WriteInMbox(0, 9) // SPE never reads it; write completes instantly
		h.Wait(hd)
	})
	st := SummarizePPE(tr)
	if st.Records == 0 {
		t.Fatal("no PPE records")
	}
	if st.SPEWaits != 1 || st.WaitTicks == 0 {
		t.Fatalf("SPE waits = %d/%d", st.SPEWaits, st.WaitTicks)
	}
	if st.MboxReads != 1 || st.MboxWrites != 1 {
		t.Fatalf("mbox ops = %d/%d", st.MboxReads, st.MboxWrites)
	}
	if st.MboxWaitTicks == 0 {
		t.Fatal("no mbox wait time despite blocking read")
	}
	if st.ProxyGets != 1 || st.ProxyBytes != 512 || st.ProxyWaits != 1 {
		t.Fatalf("proxy = %d gets, %d bytes, %d waits", st.ProxyGets, st.ProxyBytes, st.ProxyWaits)
	}
}

func TestParallelismSeriesAndConcurrency(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < 4; i++ {
			hs = append(hs, h.Run(i, "p", func(spu cell.SPU) uint32 {
				spu.Compute(100000)
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	pts := ParallelismSeries(tr, 10)
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	// Mid-run all four SPEs compute simultaneously.
	if pts[5].Busy < 3.5 {
		t.Fatalf("mid-run parallelism = %.2f, want ~4", pts[5].Busy)
	}
	ec := EffectiveConcurrency(tr)
	if ec < 3 || ec > 4.01 {
		t.Fatalf("effective concurrency = %.2f, want ~4", ec)
	}
}

func TestParallelismEmptyTrace(t *testing.T) {
	if ParallelismSeries(&Trace{}, 4) != nil {
		t.Fatal("series on empty trace")
	}
	if EffectiveConcurrency(&Trace{}) != 0 {
		t.Fatal("concurrency on empty trace")
	}
}
