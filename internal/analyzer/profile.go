package analyzer

import (
	"fmt"
	"io"
	"sort"

	"github.com/celltrace/pdt/internal/core/event"
)

// PairProfile aggregates all occurrences of one Enter/Exit event pair
// across the trace: the TA statistics view ("where does blocked time go,
// by API call").
type PairProfile struct {
	Enter event.ID
	Count int
	// Ticks is the duration distribution in timebase ticks.
	Ticks Histogram
	// Confidence is the lowest record-survival fraction among the cores
	// that contributed intervals to this pair (1.0 on clean traces); a
	// low value means the counts and totals understate reality.
	Confidence float64
}

// Profile computes per-pair interval statistics over the whole trace.
// Pairs are matched per core in stream order; unmatched enters (truncated
// traces) are dropped.
func Profile(tr *Trace) []PairProfile {
	open := map[uint8]map[event.ID]uint64{} // core -> enterID -> start
	acc := map[event.ID]*PairProfile{}
	for _, e := range tr.Events {
		info, ok := event.Lookup(e.ID)
		if !ok {
			continue
		}
		switch info.Kind {
		case event.KindEnter:
			m := open[e.Core]
			if m == nil {
				m = map[event.ID]uint64{}
				open[e.Core] = m
			}
			m[e.ID] = e.Global
		case event.KindExit:
			m := open[e.Core]
			if m == nil {
				break
			}
			start, ok := m[info.Pair]
			if !ok {
				break
			}
			delete(m, info.Pair)
			p := acc[info.Pair]
			if p == nil {
				p = &PairProfile{Enter: info.Pair, Confidence: 1}
				acc[info.Pair] = p
			}
			p.Count++
			p.Ticks.Add(e.Global - start)
			if c := tr.Confidence.ForCore(e.Core); c < p.Confidence {
				p.Confidence = c
			}
		}
	}
	out := make([]PairProfile, 0, len(acc))
	for _, p := range acc {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ticks.Sum != out[j].Ticks.Sum {
			return out[i].Ticks.Sum > out[j].Ticks.Sum
		}
		return out[i].Enter < out[j].Enter
	})
	return out
}

// WriteProfile renders the profile as a table, most expensive pair first.
// On degraded (salvaged or lossy) traces a confidence column shows the
// record-survival fraction behind each row; clean traces keep the
// original layout.
func WriteProfile(tr *Trace, w io.Writer) {
	degraded := tr.Confidence.Degraded()
	fmt.Fprintf(w, "%-28s %8s %12s %12s %12s", "interval", "count", "total ticks", "mean", "max")
	if degraded {
		fmt.Fprintf(w, " %6s", "conf")
	}
	fmt.Fprintln(w)
	for _, p := range Profile(tr) {
		name := p.Enter.String()
		// Strip the _ENTER suffix for readability.
		if n := len(name); n > 6 && name[n-6:] == "_ENTER" {
			name = name[:n-6]
		}
		fmt.Fprintf(w, "%-28s %8d %12d %12.1f %12d",
			name, p.Count, p.Ticks.Sum, p.Ticks.Mean(), p.Ticks.Max)
		if degraded {
			fmt.Fprintf(w, " %5.1f%%", 100*p.Confidence)
		}
		fmt.Fprintln(w)
	}
}

// WriteIntervalsCSV exports the reconstructed state intervals:
// run,core,state,start,end,ticks.
func WriteIntervalsCSV(tr *Trace, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "run,core,state,start_tick,end_tick,ticks"); err != nil {
		return err
	}
	for _, iv := range Intervals(tr) {
		_, err := fmt.Fprintf(w, "%d,%d,%s,%d,%d,%d\n",
			iv.Run, iv.Core, iv.State, iv.Start, iv.End, iv.Dur())
		if err != nil {
			return err
		}
	}
	return nil
}
