package analyzer

import (
	"fmt"
	"io"
	"slices"

	"github.com/celltrace/pdt/internal/core/event"
)

// PairProfile aggregates all occurrences of one Enter/Exit event pair
// across the trace: the TA statistics view ("where does blocked time go,
// by API call").
type PairProfile struct {
	Enter event.ID
	Count int
	// Ticks is the duration distribution in timebase ticks.
	Ticks Histogram
	// Confidence is the lowest record-survival fraction among the cores
	// that contributed intervals to this pair (1.0 on clean traces); a
	// low value means the counts and totals understate reality.
	Confidence float64
}

// kindOf and pairOf are flat arrays indexed by event ID, replacing the
// metadata map lookup in the pair-matching hot loops: unknown ids keep
// the zero Kind (a point event) and are ignored, exactly like a failed
// Lookup.
var (
	kindOf []event.Kind
	pairOf []event.ID
)

func init() {
	n := int(event.NumIDs())
	kindOf = make([]event.Kind, n)
	pairOf = make([]event.ID, n)
	for id := event.ID(1); id < event.NumIDs(); id++ {
		if info, ok := event.Lookup(id); ok {
			kindOf[id] = info.Kind
			pairOf[id] = info.Pair
		}
	}
}

// Profile computes per-pair interval statistics over the whole trace.
// Pairs are matched per core in stream order; unmatched enters (truncated
// traces) are dropped.
//
// Matching is independent per core, so past the adaptive-parallelism
// threshold the per-core index blocks are profiled concurrently over the
// columnar store and the per-core accumulators merged (count and
// histogram sums are commutative, the confidence is a min), which
// produces exactly the result of ProfileSerial's single scan. Smaller
// traces take the serial scan, which beats pool startup at those sizes.
func Profile(tr *Trace) []PairProfile {
	cores := tr.Cores()
	if !tr.parallelWorthwhile() || len(cores) < 2 {
		return ProfileSerial(tr)
	}
	parts := make([]map[event.ID]*PairProfile, len(cores))
	runParallel(0, len(cores), func(i int) {
		parts[i] = profileCore(tr, cores[i])
	})
	acc := map[event.ID]*PairProfile{}
	for _, part := range parts {
		for id, p := range part {
			q := acc[id]
			if q == nil {
				cp := *p
				acc[id] = &cp
				continue
			}
			q.Count += p.Count
			q.Ticks.Merge(&p.Ticks)
			if p.Confidence < q.Confidence {
				q.Confidence = p.Confidence
			}
		}
	}
	return sortProfiles(acc)
}

// ProfileSerial is the single-scan reference implementation Profile's
// sharded version is tested against. It walks the ID and Global columns
// only; open enters live in per-core flat arrays indexed by event id
// (start+1, so 0 means "not open") instead of nested maps.
func ProfileSerial(tr *Trace) []PairProfile {
	acc := map[event.ID]*PairProfile{}
	if tr.col == nil {
		return sortProfiles(acc)
	}
	s := tr.col
	var open [256][]uint64 // core -> enterID -> start+1
	for i, id := range s.ID {
		if int(id) >= len(kindOf) {
			continue
		}
		switch kindOf[id] {
		case event.KindEnter:
			core := s.Core[i]
			m := open[core]
			if m == nil {
				m = make([]uint64, len(kindOf))
				open[core] = m
			}
			m[id] = s.Global[i] + 1
		case event.KindExit:
			core := s.Core[i]
			m := open[core]
			if m == nil {
				break
			}
			pair := pairOf[id]
			start := m[pair]
			if start == 0 {
				break
			}
			m[pair] = 0
			p := acc[pair]
			if p == nil {
				p = &PairProfile{Enter: pair, Confidence: 1}
				acc[pair] = p
			}
			p.Count++
			p.Ticks.Add(s.Global[i] - (start - 1))
			if c := tr.Confidence.ForCore(core); c < p.Confidence {
				p.Confidence = c
			}
		}
	}
	return sortProfiles(acc)
}

// profileCore matches Enter/Exit pairs over one core's stream-ordered
// index block of the columnar store. The core's record-survival fraction
// is constant, so the per-pair confidence is simply the min across
// contributing cores at merge time.
func profileCore(tr *Trace, core uint8) map[event.ID]*PairProfile {
	s := tr.col
	seqs := tr.coreSeq[core]
	open := make([]uint64, len(kindOf)) // enterID -> start+1; 0 = not open
	acc := map[event.ID]*PairProfile{}
	conf := tr.Confidence.ForCore(core)
	for _, seq := range seqs {
		id := s.ID[seq]
		if int(id) >= len(kindOf) {
			continue
		}
		switch kindOf[id] {
		case event.KindEnter:
			open[id] = s.Global[seq] + 1
		case event.KindExit:
			pair := pairOf[id]
			start := open[pair]
			if start == 0 {
				break
			}
			open[pair] = 0
			p := acc[pair]
			if p == nil {
				p = &PairProfile{Enter: pair, Confidence: 1}
				acc[pair] = p
			}
			p.Count++
			p.Ticks.Add(s.Global[seq] - (start - 1))
			if conf < p.Confidence {
				p.Confidence = conf
			}
		}
	}
	return acc
}

// sortProfiles flattens the accumulator into the report order: most
// expensive pair first, ties broken by enter id so the order is total.
func sortProfiles(acc map[event.ID]*PairProfile) []PairProfile {
	out := make([]PairProfile, 0, len(acc))
	for _, p := range acc {
		out = append(out, *p)
	}
	slices.SortFunc(out, func(a, b PairProfile) int {
		if a.Ticks.Sum != b.Ticks.Sum {
			if a.Ticks.Sum > b.Ticks.Sum {
				return -1
			}
			return 1
		}
		if a.Enter != b.Enter {
			if a.Enter < b.Enter {
				return -1
			}
			return 1
		}
		return 0
	})
	return out
}

// WriteProfile renders the profile as a table, most expensive pair first.
// On degraded (salvaged or lossy) traces a confidence column shows the
// record-survival fraction behind each row; clean traces keep the
// original layout.
func WriteProfile(tr *Trace, w io.Writer) {
	WriteProfilePairs(tr, Profile(tr), w)
}

// WriteProfilePairs renders an already-computed profile, letting callers
// (the cached service path, the concurrent report path) reuse a memoized
// result instead of rescanning the trace.
func WriteProfilePairs(tr *Trace, pairs []PairProfile, w io.Writer) {
	degraded := tr.Confidence.Degraded()
	fmt.Fprintf(w, "%-28s %8s %12s %12s %12s", "interval", "count", "total ticks", "mean", "max")
	if degraded {
		fmt.Fprintf(w, " %6s", "conf")
	}
	fmt.Fprintln(w)
	for _, p := range pairs {
		name := p.Enter.String()
		// Strip the _ENTER suffix for readability.
		if n := len(name); n > 6 && name[n-6:] == "_ENTER" {
			name = name[:n-6]
		}
		fmt.Fprintf(w, "%-28s %8d %12d %12.1f %12d",
			name, p.Count, p.Ticks.Sum, p.Ticks.Mean(), p.Ticks.Max)
		if degraded {
			fmt.Fprintf(w, " %5.1f%%", 100*p.Confidence)
		}
		fmt.Fprintln(w)
	}
}

// WriteIntervalsCSV exports the reconstructed state intervals:
// run,core,state,start,end,ticks.
func WriteIntervalsCSV(tr *Trace, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "run,core,state,start_tick,end_tick,ticks"); err != nil {
		return err
	}
	for _, iv := range Intervals(tr) {
		_, err := fmt.Fprintf(w, "%d,%d,%s,%d,%d,%d\n",
			iv.Run, iv.Core, iv.State, iv.Start, iv.End, iv.Dur())
		if err != nil {
			return err
		}
	}
	return nil
}
