package analyzer

import (
	"bytes"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
)

func TestProfilePairs(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		hd := h.Run(0, "pf", func(spu cell.SPU) uint32 {
			for i := 0; i < 5; i++ {
				spu.Get(0, 0, 4096, 0)
				spu.WaitTagAll(1)
			}
			spu.WriteOutMbox(1)
			return 0
		})
		h.ReadOutMbox(0)
		h.Wait(hd)
	})
	profs := Profile(tr)
	if len(profs) == 0 {
		t.Fatal("empty profile")
	}
	var wait *PairProfile
	for i := range profs {
		if profs[i].Enter == event.SPEWaitTagEnter {
			wait = &profs[i]
		}
	}
	if wait == nil || wait.Count != 5 {
		t.Fatalf("tag-wait profile = %+v", wait)
	}
	if wait.Ticks.Sum == 0 || wait.Ticks.Mean() <= 0 {
		t.Fatalf("tag-wait ticks = %+v", wait.Ticks)
	}
	// Sorted by total time descending.
	for i := 1; i < len(profs); i++ {
		if profs[i].Ticks.Sum > profs[i-1].Ticks.Sum {
			t.Fatal("profile not sorted by total time")
		}
	}
}

func TestWriteProfile(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(0, "wp", func(spu cell.SPU) uint32 {
			spu.Get(0, 0, 128, 0)
			spu.WaitTagAll(1)
			return 0
		}))
	})
	var buf bytes.Buffer
	WriteProfile(tr, &buf)
	out := buf.String()
	if !strings.Contains(out, "SPE_WAIT_TAG") || !strings.Contains(out, "total ticks") {
		t.Fatalf("profile output:\n%s", out)
	}
	if strings.Contains(out, "_ENTER ") {
		t.Fatalf("enter suffix not stripped:\n%s", out)
	}
}

func TestWriteIntervalsCSV(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(2, "iv", func(spu cell.SPU) uint32 {
			spu.Get(0, 0, 128, 0)
			spu.WaitTagAll(1)
			spu.Compute(500)
			return 0
		}))
	})
	var buf bytes.Buffer
	if err := WriteIntervalsCSV(tr, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "run,core,state") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "dma-wait") || !strings.Contains(out, "compute") {
		t.Fatalf("missing states:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		if !strings.HasPrefix(line, "0,2,") {
			t.Fatalf("bad row %q", line)
		}
	}
}

func TestProfileTruncatedUnmatchedEnter(t *testing.T) {
	// An enter without exit must not produce a pair (and not panic).
	tr := &Trace{}
	tr.SetEvents([]Event{
		{Record: event.Record{ID: event.SPEWaitTagEnter, Core: 0, Args: []uint64{1}}, Global: 10},
	})
	if p := Profile(tr); len(p) != 0 {
		t.Fatalf("profile = %+v", p)
	}
}

func TestTagBreakdown(t *testing.T) {
	tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		h.Wait(h.Run(0, "tags", func(spu cell.SPU) uint32 {
			spu.Get(0, 0, 1024, 2)
			spu.Get(0, 0, 2048, 2)
			spu.Put(0, 0, 512, 7)
			spu.WaitTagAll(1<<2 | 1<<7)
			return 0
		}))
	})
	tags := TagBreakdown(tr)
	// Tags 2 and 7 from the app, plus trace-flush tags 30/31.
	byTag := map[int]TagStats{}
	for _, ts := range tags {
		byTag[ts.Tag] = ts
	}
	if byTag[2].Cmds != 2 || byTag[2].Bytes != 3072 {
		t.Fatalf("tag2 = %+v", byTag[2])
	}
	if byTag[7].Cmds != 1 || byTag[7].Bytes != 512 {
		t.Fatalf("tag7 = %+v", byTag[7])
	}
	for i := 1; i < len(tags); i++ {
		if tags[i].Bytes > tags[i-1].Bytes {
			t.Fatal("not sorted by bytes")
		}
	}
}
