package analyzer

import (
	"github.com/celltrace/pdt/internal/core/event"
)

// Filter selects a subset of the merged event stream. Zero values mean
// "no constraint" (AnyCore / AnyRun sentinels for the index fields).
type Filter struct {
	// Core restricts to one core (SPE index or event.CorePPE); AnyCore
	// disables the constraint.
	Core int
	// Run restricts to one SPE program run; AnyRun disables.
	Run int
	// From/To restrict to global times in [From, To); To == 0 means
	// unbounded.
	From, To uint64
	// Groups restricts to events whose group intersects the mask;
	// 0 disables.
	Groups event.Group
	// IDs restricts to specific event types; empty disables.
	IDs []event.ID
}

// Sentinels for Filter index fields.
const (
	AnyCore = -1
	AnyRun  = -2 // distinct from the PPE's run index of -1
)

// NewFilter returns a filter with no constraints.
func NewFilter() Filter { return Filter{Core: AnyCore, Run: AnyRun} }

// Match reports whether e passes the filter.
func (f *Filter) Match(e *Event) bool {
	if f.Core != AnyCore && int(e.Core) != f.Core {
		return false
	}
	if f.Run != AnyRun && e.Run != f.Run {
		return false
	}
	if e.Global < f.From {
		return false
	}
	if f.To != 0 && e.Global >= f.To {
		return false
	}
	if f.Groups != 0 {
		info, ok := event.Lookup(e.ID)
		if !ok || info.Group&f.Groups == 0 {
			return false
		}
	}
	if len(f.IDs) > 0 {
		found := false
		for _, id := range f.IDs {
			if e.ID == id {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Select returns the events passing the filter, in stream order.
func (tr *Trace) Select(f Filter) []Event {
	var out []Event
	for i, n := 0, tr.NumEvents(); i < n; i++ {
		e := tr.Event(i)
		if f.Match(&e) {
			out = append(out, e)
		}
	}
	return out
}

// SlackStats quantifies how well DMA latency was overlapped with compute
// for one run: for every tag-group wait, the slack is the time between
// the last command issued on a waited tag and the start of the wait —
// the window in which the transfer could progress under compute. Waits
// that start immediately after issue (slack ~ 0) indicate synchronous,
// unoverlapped DMA; double buffering shows up as slack comparable to the
// transfer time and near-zero wait durations.
type SlackStats struct {
	Run   int
	Core  uint8
	Waits int
	// Slack is the issue-to-wait distance distribution (ticks).
	Slack Histogram
	// WaitDur is the in-wait duration distribution (ticks).
	WaitDur Histogram
}

// DMASlack computes slack statistics for one run.
func DMASlack(tr *Trace, run int) SlackStats {
	evs := tr.RunEvents(run)
	st := SlackStats{Run: run}
	if len(evs) == 0 {
		return st
	}
	st.Core = evs[0].Core
	var lastIssue [32]uint64 // per-tag last command issue time
	var lastIssueSet [32]bool
	var waitStart uint64
	var waitMask uint64
	inWait := false
	for _, e := range evs {
		switch e.ID {
		case event.SPEMFCGet, event.SPEMFCPut, event.SPEMFCGetList, event.SPEMFCPutList:
			tag := e.Args[3] % 32
			lastIssue[tag] = e.Global
			lastIssueSet[tag] = true
		case event.SPEWaitTagEnter:
			inWait = true
			waitStart = e.Global
			waitMask = e.Args[0]
		case event.SPEWaitTagExit:
			if !inWait {
				break
			}
			inWait = false
			st.Waits++
			st.WaitDur.Add(e.Global - waitStart)
			// Slack relative to the newest issue among waited tags.
			var newest uint64
			var any bool
			for t := 0; t < 32; t++ {
				if waitMask&(1<<uint(t)) != 0 && lastIssueSet[t] {
					if lastIssue[t] > newest {
						newest = lastIssue[t]
					}
					any = true
				}
			}
			if any && waitStart >= newest {
				st.Slack.Add(waitStart - newest)
			}
		}
	}
	return st
}

// BWPoint is one bucket of the DMA-traffic time series.
type BWPoint struct {
	StartTick uint64
	// Bytes issued in the bucket (GET+PUT+list totals, all SPEs).
	Bytes uint64
}

// BandwidthSeries buckets DMA bytes issued over the trace span — the
// traffic view of the timeline.
func BandwidthSeries(tr *Trace, n int) []BWPoint {
	if n <= 0 {
		n = 1
	}
	start, end := tr.Span()
	if end <= start {
		return nil
	}
	span := end - start
	out := make([]BWPoint, n)
	for i := range out {
		out[i].StartTick = start + uint64(i)*span/uint64(n)
	}
	s := tr.col
	for i, id := range s.ID {
		switch id {
		case event.SPEMFCGet, event.SPEMFCPut, event.SPEMFCGetList, event.SPEMFCPutList:
			b := int((s.Global[i] - start) * uint64(n) / span)
			if b >= n {
				b = n - 1
			}
			out[b].Bytes += s.Args[s.ArgOff[i]+2]
		}
	}
	return out
}

// Comparison is an A/B diff of two trace summaries (e.g. single- vs
// double-buffered runs of the same workload).
type Comparison struct {
	WallA, WallB uint64
	// Speedup is WallA/WallB (>1 means B is faster).
	Speedup float64
	// StateA/StateB are total per-state ticks.
	StateA, StateB [int(numStates)]uint64
	// RecordsA/B are total record counts.
	RecordsA, RecordsB int
}

// Compare diffs two summaries.
func Compare(a, b *Summary) *Comparison {
	c := &Comparison{
		WallA: a.WallTicks, WallB: b.WallTicks,
		RecordsA: a.TotalRecs, RecordsB: b.TotalRecs,
	}
	if b.WallTicks > 0 {
		c.Speedup = float64(a.WallTicks) / float64(b.WallTicks)
	}
	for _, st := range States() {
		c.StateA[st] = a.TotalState(st)
		c.StateB[st] = b.TotalState(st)
	}
	return c
}
