package analyzer

import (
	"bytes"
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
)

func queryTrace(t *testing.T) *Trace {
	t.Helper()
	return simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < 2; i++ {
			hs = append(hs, h.Run(i, "q", func(spu cell.SPU) uint32 {
				for j := 0; j < 5; j++ {
					spu.Get(0, 0, 1024, 0)
					spu.WaitTagAll(1)
					spu.Compute(1000)
				}
				spu.WriteOutMbox(1)
				return 0
			}))
		}
		h.ReadOutMbox(0)
		h.ReadOutMbox(1)
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
}

func TestFilterByCore(t *testing.T) {
	tr := queryTrace(t)
	f := NewFilter()
	f.Core = 1
	evs := tr.Select(f)
	if len(evs) == 0 {
		t.Fatal("no events for core 1")
	}
	for _, e := range evs {
		if e.Core != 1 {
			t.Fatalf("event from core %d leaked", e.Core)
		}
	}
}

func TestFilterByGroupAndID(t *testing.T) {
	tr := queryTrace(t)
	f := NewFilter()
	f.Groups = event.GroupMFC
	for _, e := range tr.Select(f) {
		info, _ := event.Lookup(e.ID)
		if info.Group != event.GroupMFC {
			t.Fatalf("non-MFC event %v", e.ID)
		}
	}
	f = NewFilter()
	f.IDs = []event.ID{event.SPEMFCGet}
	evs := tr.Select(f)
	if len(evs) != 10 { // 2 SPEs x 5 gets
		t.Fatalf("GET events = %d, want 10", len(evs))
	}
}

func TestFilterByTimeRange(t *testing.T) {
	tr := queryTrace(t)
	start, end := tr.Span()
	mid := (start + end) / 2
	f := NewFilter()
	f.From, f.To = start, mid
	first := tr.Select(f)
	f.From, f.To = mid, 0
	second := tr.Select(f)
	if len(first)+len(second) != tr.NumEvents() {
		t.Fatalf("split %d + %d != %d", len(first), len(second), tr.NumEvents())
	}
	for _, e := range first {
		if e.Global >= mid {
			t.Fatal("first half leaked late event")
		}
	}
}

func TestFilterByRun(t *testing.T) {
	tr := queryTrace(t)
	f := NewFilter()
	f.Run = 0
	for _, e := range tr.Select(f) {
		if e.Run != 0 {
			t.Fatalf("run %d leaked", e.Run)
		}
	}
}

func TestDMASlackSingleVsDoubleBuffer(t *testing.T) {
	// Single-buffered streaming waits immediately after issue (tiny
	// slack); double buffering issues the next transfer before waiting
	// (large slack, small wait).
	slack := func(buffers string) (meanSlack, meanWait float64) {
		tr := simTrace(t, core.DefaultTraceConfig(), func(h cell.Host) {
			src := h.Alloc(64*1024, 128)
			n := 8
			h.Wait(h.Run(0, "s", func(spu cell.SPU) uint32 {
				if buffers == "1" {
					for i := 0; i < n; i++ {
						spu.Get(0, src, 16*1024, 0)
						spu.WaitTagAll(1)
						spu.Compute(5000)
					}
				} else {
					spu.Get(0, src, 16*1024, 0)
					for i := 0; i < n; i++ {
						if i+1 < n {
							spu.Get(16*1024, src, 16*1024, 1)
						}
						spu.WaitTagAll(1)
						spu.Compute(5000)
						// Swap roles (tags 0/1 alternate).
						spu.Get(0, src, 16*1024, 0)
						spu.WaitTagAll(1 << 1)
						spu.Compute(5000)
					}
				}
				return 0
			}))
		})
		st := DMASlack(tr, 0)
		return st.Slack.Mean(), st.WaitDur.Mean()
	}
	s1, w1 := slack("1")
	s2, w2 := slack("2")
	if s2 <= s1 {
		t.Fatalf("double-buffer slack %.0f not above single %.0f", s2, s1)
	}
	if w2 >= w1 {
		t.Fatalf("double-buffer wait %.0f not below single %.0f", w2, w1)
	}
}

func TestBandwidthSeries(t *testing.T) {
	tr := queryTrace(t)
	pts := BandwidthSeries(tr, 10)
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	var total uint64
	for _, p := range pts {
		total += p.Bytes
	}
	if total != 10*1024 { // 10 GETs of 1 KiB
		t.Fatalf("total bytes = %d, want 10240", total)
	}
	if BandwidthSeries(&Trace{}, 5) != nil {
		t.Fatal("series on empty trace")
	}
}

func TestCompareSummaries(t *testing.T) {
	tr := queryTrace(t)
	s := Summarize(tr)
	c := Compare(s, s)
	if c.Speedup != 1 {
		t.Fatalf("self-compare speedup = %v", c.Speedup)
	}
	var buf bytes.Buffer
	RenderComparison(c, "before", "after", &buf)
	for _, want := range []string{"before", "after", "speedup", "dma-wait"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("comparison missing %q:\n%s", want, buf.String())
		}
	}
}

func TestWriteHTML(t *testing.T) {
	tr := queryTrace(t)
	Validate(tr)
	s := Summarize(tr)
	var buf bytes.Buffer
	if err := WriteHTML(tr, s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "SPE runs", "Event counts", "SPE_MFC_GET"} {
		if !strings.Contains(out, want) {
			t.Fatalf("html missing %q", want)
		}
	}
}

func TestHTMLEscapesWorkloadName(t *testing.T) {
	tr := queryTrace(t)
	s := Summarize(tr)
	s.Workload = `<script>alert(1)</script>`
	var buf bytes.Buffer
	if err := WriteHTML(tr, s, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert") {
		t.Fatal("workload name not escaped")
	}
}
