package analyzer

import (
	"context"
	"fmt"
	"runtime"

	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// Confidence estimates the fraction of tracer-produced records that
// survived into the loaded trace: 1.0 when nothing was lost, lower when
// records were dropped at trace time (full regions, failed flushes) or
// destroyed by corruption (salvaged files). Metrics derived from a
// low-confidence core understate that core's activity.
type Confidence struct {
	// Overall is the surviving fraction across the whole trace.
	Overall float64
	// PerCore is the surviving fraction per record core (SPE index or
	// PPE thread core).
	PerCore map[uint8]float64
}

// ForCore returns the confidence for one core, falling back to the
// overall figure. The zero value (hand-assembled traces) reports full
// confidence.
func (c Confidence) ForCore(core uint8) float64 {
	if v, ok := c.PerCore[core]; ok {
		return v
	}
	if c.Overall == 0 && c.PerCore == nil {
		return 1
	}
	return c.Overall
}

// Degraded reports whether any part of the trace lost records.
func (c Confidence) Degraded() bool {
	if c.Overall != 0 && c.Overall < 1 {
		return true
	}
	for _, v := range c.PerCore {
		if v < 1 {
			return true
		}
	}
	return false
}

// computeConfidence derives per-core and overall survival fractions from
// what was decoded, the trace-time drop accounting in the metadata, and —
// for salvaged loads — the salvage report's damage accounting. Damaged
// and skipped bytes are converted to an estimated record count using the
// mean size of the records that did survive.
func computeConfidence(tr *Trace, rep *traceio.SalvageReport) Confidence {
	// Per-core counts in a flat array: this scan runs on every load (it
	// is part of Trace.finish), and a map increment per event is several
	// times the cost of the whole column walk.
	var got [256]int
	if s := tr.col; s != nil {
		for _, c := range s.Core {
			got[c]++
		}
	}
	total := float64(tr.NumEvents())

	lost := map[uint8]float64{}
	var lostTotal float64
	for _, d := range tr.Meta.Drops {
		lost[uint8(d.SPE)] += float64(d.Count)
		lostTotal += float64(d.Count)
	}
	if rep != nil {
		avg := float64(event.MinRecordSize)
		if rep.RecordsRecovered > 0 && rep.BytesRecovered > 0 {
			avg = float64(rep.BytesRecovered) / float64(rep.RecordsRecovered)
		}
		for core, cs := range rep.PerCore {
			if cs.BytesDamaged > 0 {
				est := float64(cs.BytesDamaged) / avg
				lost[core] += est
				lostTotal += est
			}
		}
		if rep.BytesSkipped > 0 {
			// Unidentifiable bytes cannot be attributed to a core; they
			// lower only the overall figure.
			lostTotal += float64(rep.BytesSkipped) / avg
		}
	}

	c := Confidence{Overall: 1, PerCore: map[uint8]float64{}}
	if total+lostTotal > 0 {
		c.Overall = total / (total + lostTotal)
	}
	for core := 0; core < 256; core++ {
		n := float64(got[core])
		if n == 0 {
			continue
		}
		c.PerCore[uint8(core)] = 1
		if l := lost[uint8(core)]; l > 0 {
			c.PerCore[uint8(core)] = n / (n + l)
		}
	}
	for core, l := range lost {
		if got[core] == 0 && l > 0 {
			c.PerCore[core] = 0 // everything this core produced is gone
		}
	}
	return c
}

// FromSalvaged merges a salvaged trace file leniently: chunk decode
// errors and unresolvable anchors become Issues instead of load failures,
// the salvage report is folded into Trace.Issues, and Confidence reflects
// the reported damage. rep may be nil (plain lenient load).
func FromSalvaged(f *traceio.File, rep *traceio.SalvageReport) (*Trace, error) {
	return FromSalvagedContext(context.Background(), f, rep, Limits{})
}

// FromSalvagedContext is FromSalvaged under cancellation and admission
// control. Leniency covers damage, not resources: ErrLimitExceeded and
// ctx errors abort a salvaged load like any other.
func FromSalvagedContext(ctx context.Context, f *traceio.File, rep *traceio.SalvageReport, lim Limits) (*Trace, error) {
	tr, err := fromFile(ctx, f, runtime.GOMAXPROCS(0), true, lim)
	if err != nil {
		return nil, err
	}
	if rep != nil {
		foldSalvageReport(tr, rep)
		tr.Confidence = computeConfidence(tr, rep)
	}
	return tr, nil
}

// foldSalvageReport records the salvage findings as trace issues.
func foldSalvageReport(tr *Trace, rep *traceio.SalvageReport) {
	add := func(sev, format string, args ...interface{}) {
		tr.Issues = append(tr.Issues, Issue{sev, fmt.Sprintf(format, args...)})
	}
	if !rep.HeaderOK {
		add("error", "salvage: file header unreadable; layout assumed")
	}
	if !rep.MetaOK {
		add("error", "salvage: metadata lost; SPE chunks could not be anchored")
	}
	if !rep.FooterOK {
		add("warn", "salvage: footer missing or file checksum mismatched")
	}
	if rep.ChunksDamaged > 0 {
		add("warn", "salvage: %d damaged chunk(s) trimmed to their decodable prefix (%d bytes discarded)",
			rep.ChunksDamaged, rep.BytesDamaged)
	}
	if rep.ChunksDropped > 0 {
		add("error", "salvage: %d chunk(s) dropped entirely", rep.ChunksDropped)
	}
	if rep.BytesSkipped > 0 {
		add("warn", "salvage: %d unidentifiable byte(s) skipped while resynchronizing (%d resync(s))",
			rep.BytesSkipped, rep.Resyncs)
	}
}
