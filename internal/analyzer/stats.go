package analyzer

import (
	"math"
	"sort"

	"github.com/celltrace/pdt/internal/core/event"
)

// Histogram is a power-of-two bucketed histogram (bucket i counts values
// in [2^i, 2^(i+1))).
type Histogram struct {
	Buckets [40]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Add records one value.
func (h *Histogram) Add(v uint64) {
	b := 0
	for x := v; x > 1; x >>= 1 {
		b++
	}
	if b >= len(h.Buckets) {
		b = len(h.Buckets) - 1
	}
	h.Buckets[b]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge folds another histogram into this one. All fields are sums (or a
// max), so merging per-shard histograms yields exactly the histogram a
// single sequential scan would have produced.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Mean returns the average recorded value.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// RunSummary aggregates one SPE program run.
type RunSummary struct {
	Run     int
	Core    uint8
	Program string
	Start   uint64 // timebase ticks
	End     uint64
	// Per-state time in timebase ticks.
	StateTicks [int(numStates)]uint64
	Events     int
	// Confidence is the record-survival fraction for this run's core
	// (1.0 on clean traces); low values mean the per-state breakdown
	// understates the run's real activity.
	Confidence float64
}

// Wall returns the run duration.
func (r *RunSummary) Wall() uint64 { return r.End - r.Start }

// Busy returns compute ticks.
func (r *RunSummary) Busy() uint64 { return r.StateTicks[StateCompute] }

// Utilization returns compute time / wall time.
func (r *RunSummary) Utilization() float64 {
	if r.Wall() == 0 {
		return 0
	}
	return float64(r.Busy()) / float64(r.Wall())
}

// DMASummary aggregates MFC activity for one run.
type DMASummary struct {
	Run        int
	Core       uint8
	Gets, Puts int
	Lists      int
	BytesIn    uint64 // toward local store (GET)
	BytesOut   uint64 // toward main storage (PUT)
	Waits      int
	WaitTicks  Histogram // per-wait duration in timebase ticks
	SizeBytes  Histogram // per-command transfer size
}

// MboxSummary aggregates mailbox activity for one run.
type MboxSummary struct {
	Run            int
	Core           uint8
	Reads, Writes  int
	ReadWaitTicks  Histogram
	WriteWaitTicks Histogram
}

// Summary is the full-trace report.
type Summary struct {
	Workload   string
	WallTicks  uint64 // first to last event
	Runs       []RunSummary
	DMA        []DMASummary
	Mbox       []MboxSummary
	EventCount map[event.ID]int
	TotalRecs  int
	// LoadImbalance is max(busy)/mean(busy) over SPE runs (1.0 = even).
	LoadImbalance float64
	// FlushTicks is PDT's own overhead observed in the trace.
	FlushTicks uint64
}

// Summarize computes the full-trace report.
func Summarize(tr *Trace) *Summary {
	s := &Summary{
		Workload:   tr.Meta.Workload,
		EventCount: map[event.ID]int{},
		TotalRecs:  tr.NumEvents(),
	}
	start, end := tr.Span()
	s.WallTicks = end - start

	if c := tr.Columns(); c != nil {
		for _, id := range c.ID {
			s.EventCount[id]++
		}
	}

	for run, anchor := range tr.Meta.Anchors {
		evs := tr.RunEvents(run)
		if len(evs) == 0 {
			continue
		}
		rs := RunSummary{Run: run, Core: evs[0].Core, Program: anchor.Program,
			Start: evs[0].Global, End: evs[len(evs)-1].Global, Events: len(evs),
			Confidence: tr.Confidence.ForCore(evs[0].Core)}
		for _, iv := range RunIntervals(tr, run) {
			rs.StateTicks[iv.State] += iv.Dur()
			if iv.State == StateFlush {
				s.FlushTicks += iv.Dur()
			}
		}
		s.Runs = append(s.Runs, rs)

		ds := DMASummary{Run: run, Core: evs[0].Core}
		ms := MboxSummary{Run: run, Core: evs[0].Core}
		var waitStart uint64
		var inWait bool
		var mboxStart uint64
		var mboxKind event.ID
		for _, e := range evs {
			switch e.ID {
			case event.SPEMFCGet:
				ds.Gets++
				ds.BytesIn += e.Args[2]
				ds.SizeBytes.Add(e.Args[2])
			case event.SPEMFCPut:
				ds.Puts++
				ds.BytesOut += e.Args[2]
				ds.SizeBytes.Add(e.Args[2])
			case event.SPEMFCGetList:
				ds.Lists++
				ds.BytesIn += e.Args[2]
				ds.SizeBytes.Add(e.Args[2])
			case event.SPEMFCPutList:
				ds.Lists++
				ds.BytesOut += e.Args[2]
				ds.SizeBytes.Add(e.Args[2])
			case event.SPEWaitTagEnter:
				inWait = true
				waitStart = e.Global
			case event.SPEWaitTagExit:
				if inWait {
					ds.Waits++
					ds.WaitTicks.Add(e.Global - waitStart)
					inWait = false
				}
			case event.SPEReadInMboxEnter:
				mboxStart, mboxKind = e.Global, e.ID
			case event.SPEReadInMboxExit:
				if mboxKind == event.SPEReadInMboxEnter {
					ms.Reads++
					ms.ReadWaitTicks.Add(e.Global - mboxStart)
					mboxKind = 0
				}
			case event.SPEWriteOutMboxEnter, event.SPEWriteIntrMboxEnter:
				mboxStart, mboxKind = e.Global, e.ID
			case event.SPEWriteOutMboxExit, event.SPEWriteIntrMboxExit:
				if mboxKind != 0 && mboxKind != event.SPEReadInMboxEnter {
					ms.Writes++
					ms.WriteWaitTicks.Add(e.Global - mboxStart)
					mboxKind = 0
				}
			}
		}
		s.DMA = append(s.DMA, ds)
		s.Mbox = append(s.Mbox, ms)
	}

	// Load imbalance over runs (max busy / mean busy).
	if len(s.Runs) > 0 {
		var sum, max float64
		for i := range s.Runs {
			b := float64(s.Runs[i].Busy())
			sum += b
			max = math.Max(max, b)
		}
		mean := sum / float64(len(s.Runs))
		if mean > 0 {
			s.LoadImbalance = max / mean
		}
	}
	return s
}

// TagStats aggregates DMA activity per MFC tag group across the trace —
// the view that shows how an application partitions its transfer streams
// (operand prefetch vs writeback vs trace flush).
type TagStats struct {
	Tag   int
	Cmds  int
	Bytes uint64
}

// TagBreakdown computes per-tag DMA statistics over all SPE runs.
func TagBreakdown(tr *Trace) []TagStats {
	var agg [32]TagStats
	if s := tr.col; s != nil {
		for i, id := range s.ID {
			switch id {
			case event.SPEMFCGet, event.SPEMFCPut, event.SPEMFCGetList, event.SPEMFCPutList:
				args := s.Args[s.ArgOff[i]:]
				tag := int(args[3] % 32)
				agg[tag].Tag = tag
				agg[tag].Cmds++
				agg[tag].Bytes += args[2]
			}
		}
	}
	var out []TagStats
	for _, t := range agg {
		if t.Cmds > 0 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes > out[j].Bytes })
	return out
}

// TopEvents returns the (id, count) pairs sorted by descending count.
type EventCount struct {
	ID    event.ID
	Count int
}

// TopEvents lists event counts in descending order.
func (s *Summary) TopEvents() []EventCount {
	out := make([]EventCount, 0, len(s.EventCount))
	for id, n := range s.EventCount {
		out = append(out, EventCount{id, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TotalState sums one state's ticks across all runs.
func (s *Summary) TotalState(st State) uint64 {
	var total uint64
	for i := range s.Runs {
		total += s.Runs[i].StateTicks[st]
	}
	return total
}
