package analyzer

import (
	"context"
	"encoding/binary"
	"encoding/xml"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"github.com/celltrace/pdt/internal/analyzer/colstore"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// DefaultStreamWindowBytes is the working-memory budget a StreamLoader
// uses when Limits.StreamWindowBytes is zero: large enough that typical
// traces fold in a handful of segments, small enough that a 100 MB
// upload never holds more than a fraction of itself resident.
const DefaultStreamWindowBytes = 32 << 20

// StreamOptions configures a StreamLoader.
type StreamOptions struct {
	// Limits carries the admission-control caps (enforced cumulatively
	// as bytes arrive) and the StreamWindowBytes memory budget.
	Limits Limits
	// GapMinTicks enables incremental gap detection at the given
	// threshold. Zero disables it: the batch auto-threshold
	// (SuggestGapThreshold) needs every inter-event distance and is
	// deliberately not replicated on the streaming path.
	GapMinTicks uint64
	// Validate enables the incremental structural validator. On clean
	// traces it matches batch Validate (both find nothing); on damaged
	// multi-window streams the findings match in substance but sequence
	// numbers and ordering may differ from the batch scan.
	Validate bool
	// Ctx, when non-nil, cancels in-flight decode and merge work; Write
	// and Finish return its error once it is done.
	Ctx context.Context
}

// StreamResult is a snapshot or final result of a streaming load: the
// trace shell (header, metadata, interned strings, issues, confidence —
// no event columns) plus the incrementally folded kernel outputs.
type StreamResult struct {
	Trace   *Trace
	Summary *Summary
	Profile []PairProfile
	Gaps    []Gap
	Tags    []TagStats
	PPE     PPEStats
	// EffectiveConcurrency is the time-averaged number of computing
	// SPEs, matching EffectiveConcurrency on the batch-loaded trace.
	EffectiveConcurrency float64
	// Complete reports that the trace footer arrived and its checksum
	// verified; false on snapshots of a still-growing stream and on
	// truncated inputs.
	Complete bool
	// Bytes and Events count the input consumed so far.
	Bytes  int64
	Events int64
}

// Parse stages of the incremental trace parser.
const (
	stageHeader = iota
	stageMetaLen
	stageMeta
	stageChunk
	stageChunkData
	stageFooter
	stageDone
)

// streamChunk is the chunk currently being decoded.
type streamChunk struct {
	core      uint8
	anchorIdx uint16
	remaining int // data bytes not yet consumed
	dropped   bool
	run       int32 // resolved run (-1 for PPE chunks)
	anchorTB  uint64
	// recs/globals accumulate the records decoded since the last window
	// cut; a chunk larger than the window contributes several pieces.
	recs     []event.Record
	globals  []uint64
	argWords int
	sorted   bool
	count    int // records decoded across the whole chunk (MaxRecords cap)
	// Rollback marks: batch Parse drops a final chunk whose data was cut
	// off, so if the stream ends inside this chunk every side effect
	// after these high-water marks is undone (see Finish).
	strMark    int
	issueMark  int
	anchorMark int
}

// StreamLoader consumes a PDT trace incrementally — from a growing
// file, an io.Reader, or an HTTP chunked upload — and folds it into the
// incremental analysis kernels under a bounded memory window. It is an
// io.Writer: feed it bytes in any slicing, then call Finish. The
// byte-level parsing replicates traceio.ParseContext exactly (same
// errors, same truncation tolerance, same footer CRC check), each
// window is merged through the batch k-way heap merge, and every kernel
// fold is order-insensitive beyond the per-core/per-run order the
// window cuts preserve — so the final results are identical to loading
// the whole trace and running the batch kernels.
//
// Write and Finish must be called from one goroutine; Snapshot may be
// called concurrently from others (the live-tail path).
type StreamLoader struct {
	mu     sync.Mutex
	opts   StreamOptions
	ctx    context.Context
	window int64

	// Incremental parser state. buf holds only unconsumed prefix bytes
	// (never chunk data on the fast path); tail holds a record split
	// across Write or window boundaries (at most 255 bytes).
	stage   int
	buf     []byte
	tail    []byte
	pos     int64  // absolute stream offset of the next unbuffered byte
	crc     uint32 // running CRC32 over all consumed bytes (footer check)
	header  traceio.Header
	meta    traceio.Meta
	metaLen int
	chdr    int // chunk header length for this version
	cur     streamChunk

	// Pending decoded-but-unmerged chunk pieces for the current window.
	pending  []chunkStream
	pendRecs int
	pendArgs int
	pendStrs []stringDef

	decoded int64 // cumulative record count against budget
	budget  int64

	acc *streamAccumulators

	truncated bool
	complete  bool
	issues    []Issue // decode-time issues, batch (chunk) order
	strings   map[uint64]string
	err       error
	finished  bool
}

// NewStreamLoader returns a loader ready to consume a trace stream.
func NewStreamLoader(opts StreamOptions) *StreamLoader {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	window := opts.Limits.StreamWindowBytes
	if window <= 0 {
		window = DefaultStreamWindowBytes
	}
	l := &StreamLoader{
		opts:    opts,
		ctx:     ctx,
		window:  window,
		budget:  recordBudget(opts.Limits),
		strings: map[uint64]string{},
	}
	l.acc = newStreamAccumulators(opts)
	l.acc.meta = &l.meta
	return l
}

// fail latches a terminal error: every later Write and Finish returns it.
func (l *StreamLoader) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return l.err
}

// streamLimitErr mirrors traceio's limitErr wording for the caps the
// streaming path enforces itself.
func streamLimitErr(what string, declared, max int64) error {
	return fmt.Errorf("%w: %s %d exceeds limit %d", ErrLimitExceeded, what, declared, max)
}

// Write consumes the next bytes of the trace stream. p is always fully
// consumed unless a terminal error (corrupt framing, admission cap,
// cancelled context) latches, in which case the same error returns from
// every subsequent call.
func (l *StreamLoader) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(p)
	if l.err != nil {
		return 0, l.err
	}
	if l.finished {
		return 0, l.fail(errors.New("analyzer: stream write after Finish"))
	}
	if err := l.ctx.Err(); err != nil {
		return 0, l.fail(err)
	}
	if max := l.opts.Limits.MaxFileBytes; max > 0 && l.total()+int64(n) > max {
		return 0, l.fail(streamLimitErr("file size", l.total()+int64(n), max))
	}
	if l.stage == stageDone {
		// Batch Parse stops at the footer and ignores trailing bytes;
		// they still counted against MaxFileBytes above.
		l.pos += int64(n)
		return n, nil
	}
	// Chunk data with nothing buffered decodes straight out of p — the
	// zero-copy fast path every full-speed upload takes.
	if l.stage == stageChunkData && len(l.buf) == 0 && l.cur.remaining > 0 {
		k := l.cur.remaining
		if k > len(p) {
			k = len(p)
		}
		if err := l.consumeChunkData(p[:k]); err != nil {
			return 0, l.fail(err)
		}
		l.crc = crc32.Update(l.crc, crc32.IEEETable, p[:k])
		l.pos += int64(k)
		p = p[k:]
	}
	if len(p) > 0 {
		l.buf = append(l.buf, p...)
	}
	if err := l.advance(); err != nil {
		return 0, l.fail(err)
	}
	return n, nil
}

// total returns the stream bytes received so far (consumed + buffered).
func (l *StreamLoader) total() int64 { return l.pos + int64(len(l.buf)) }

// consume drops n consumed bytes from the front of buf, folding them
// into the running footer CRC.
func (l *StreamLoader) consume(n int) {
	l.crc = crc32.Update(l.crc, crc32.IEEETable, l.buf[:n])
	l.pos += int64(n)
	l.buf = l.buf[n:]
	if len(l.buf) == 0 {
		l.buf = nil
	}
}

// advance runs the parser state machine over whatever is buffered.
func (l *StreamLoader) advance() error {
	for {
		switch l.stage {
		case stageHeader:
			if len(l.buf) < 23 {
				return nil
			}
			if string(l.buf[:4]) != traceio.Magic {
				return traceio.ErrBadMagic
			}
			l.header.Version = binary.LittleEndian.Uint16(l.buf[4:6])
			if l.header.Version == 0 || l.header.Version > traceio.Version {
				return fmt.Errorf("%w: unsupported version %d", traceio.ErrCorrupt, l.header.Version)
			}
			l.header.NumSPEs = l.buf[6]
			l.header.TimebaseDiv = binary.LittleEndian.Uint64(l.buf[7:15])
			l.header.ClockHz = binary.LittleEndian.Uint64(l.buf[15:23])
			l.chdr = 8
			if l.header.Version >= 2 {
				l.chdr = 12
			}
			l.consume(23)
			l.acc.header = l.header
			l.stage = stageMetaLen
		case stageMetaLen:
			if len(l.buf) < 4 {
				return nil
			}
			l.metaLen = int(binary.LittleEndian.Uint32(l.buf[:4]))
			if max := l.opts.Limits.MaxMetaBytes; max > 0 && l.metaLen > max {
				return streamLimitErr("metadata length", int64(l.metaLen), int64(max))
			}
			l.consume(4)
			l.stage = stageMeta
		case stageMeta:
			if len(l.buf) < l.metaLen {
				return nil
			}
			if err := xml.Unmarshal(l.buf[:l.metaLen], &l.meta); err != nil {
				return fmt.Errorf("%w: metadata: %v", traceio.ErrCorrupt, err)
			}
			l.consume(l.metaLen)
			l.stage = stageChunk
		case stageChunk:
			if len(l.buf) == 0 {
				return nil
			}
			if l.buf[0] == traceio.FooterMagic[0] {
				l.stage = stageFooter
				continue
			}
			if l.buf[0] != traceio.ChunkMagic {
				return fmt.Errorf("%w: bad chunk magic %#x at offset %d", traceio.ErrCorrupt, l.buf[0], l.pos)
			}
			if len(l.buf) < l.chdr {
				return nil
			}
			clen := int(binary.LittleEndian.Uint32(l.buf[4:8]))
			if max := l.opts.Limits.MaxChunkBytes; max > 0 && clen > max {
				return streamLimitErr(fmt.Sprintf("chunk at offset %d declares", l.pos), int64(clen), int64(max))
			}
			l.cur = streamChunk{
				core:       l.buf[1],
				anchorIdx:  binary.LittleEndian.Uint16(l.buf[2:4]),
				remaining:  clen,
				sorted:     true,
				strMark:    len(l.pendStrs),
				issueMark:  len(l.issues),
				anchorMark: len(l.meta.Anchors),
			}
			l.consume(l.chdr)
			if err := l.openChunk(); err != nil {
				return err
			}
			l.stage = stageChunkData
		case stageChunkData:
			if l.cur.remaining > 0 {
				if len(l.buf) == 0 {
					return nil
				}
				n := l.cur.remaining
				if n > len(l.buf) {
					n = len(l.buf)
				}
				if err := l.consumeChunkData(l.buf[:n]); err != nil {
					return err
				}
				l.consume(n)
				continue
			}
			l.closeChunk()
			l.stage = stageChunk
		case stageFooter:
			if len(l.buf) < 8 {
				return nil
			}
			if string(l.buf[:4]) != traceio.FooterMagic {
				// Batch Parse treats a bad footer as truncation, not
				// corruption; parsing stops here for good.
				l.truncated = true
				l.stage = stageDone
				continue
			}
			want := binary.LittleEndian.Uint32(l.buf[4:8])
			if l.crc != want {
				return fmt.Errorf("%w: got %#x want %#x", traceio.ErrCRC, l.crc, want)
			}
			l.complete = true
			l.pos += int64(len(l.buf))
			l.buf = nil
			l.stage = stageDone
		case stageDone:
			l.pos += int64(len(l.buf))
			l.buf = nil
			return nil
		}
	}
}

// openChunk resolves the chunk's run/anchor placement, replicating the
// batch decodeChunkEvents checks. Unresolvable anchors fail the load:
// the streaming path is strict (salvage stays on the batch path), and a
// well-formed live stream always delivers the anchor — as a LiveAnchor
// record in an earlier PPE chunk — before any chunk referencing it.
func (l *StreamLoader) openChunk() error {
	c := &l.cur
	c.run = -1
	if c.core == event.CorePPE {
		return nil
	}
	if int(c.anchorIdx) >= len(l.meta.Anchors) {
		return fmt.Errorf("analyzer: chunk for SPE %d references anchor %d of %d",
			c.core, c.anchorIdx, len(l.meta.Anchors))
	}
	a := l.meta.Anchors[c.anchorIdx]
	if a.SPE != int(c.core) {
		l.issues = append(l.issues,
			Issue{"error", fmt.Sprintf("anchor %d is for SPE %d but chunk is core %d", c.anchorIdx, a.SPE, c.core)})
	}
	c.run = int32(c.anchorIdx)
	c.anchorTB = a.Timebase
	return nil
}

// consumeChunkData decodes records from the next data bytes of the
// current chunk. data is capped at cur.remaining by the caller, which
// also folds it into the footer CRC.
func (l *StreamLoader) consumeChunkData(data []byte) error {
	c := &l.cur
	c.remaining -= len(data)
	if c.dropped {
		return nil
	}
	// Complete a record split across Write boundaries first.
	for len(l.tail) > 0 && len(data) > 0 {
		need := int(l.tail[0]) - len(l.tail)
		if need <= 0 {
			break
		}
		if need > len(data) {
			need = len(data)
		}
		l.tail = append(l.tail, data[:need]...)
		data = data[need:]
	}
	if len(l.tail) > 0 {
		if len(l.tail) >= int(l.tail[0]) {
			rec := l.tail
			l.tail = nil
			if err := l.decodeRecords(rec); err != nil {
				return err
			}
			if len(l.tail) > 0 {
				// Still short: only possible when the chunk itself ended.
				return l.endOfChunkTail()
			}
		} else if c.remaining == 0 {
			return l.endOfChunkTail()
		} else {
			return nil
		}
	}
	if err := l.decodeRecords(data); err != nil {
		return err
	}
	if len(l.tail) > 0 && c.remaining == 0 {
		return l.endOfChunkTail()
	}
	return nil
}

// endOfChunkTail handles a chunk ending inside a record: the partial
// record is dropped with the batch decoder's mid-record warning, and
// the records decoded before it are kept.
func (l *StreamLoader) endOfChunkTail() error {
	l.tail = nil
	l.issues = append(l.issues,
		Issue{"warn", fmt.Sprintf("chunk for core %d truncated mid-record", l.cur.core)})
	l.cur.dropped = true
	return nil
}

// decodeRecords decodes every complete record in data into the current
// chunk piece, stashing a trailing partial record in l.tail.
func (l *StreamLoader) decodeRecords(data []byte) error {
	c := &l.cur
	// Size the record extension and a fresh argument arena from the
	// framing, exactly like the batch decoder: the arena never regrows
	// while this batch's records alias it.
	est, words := event.ScanChunk(data)
	if est > 0 && cap(c.recs)-len(c.recs) < est {
		recs := make([]event.Record, len(c.recs), len(c.recs)+est)
		copy(recs, c.recs)
		c.recs = recs
		globals := make([]uint64, len(c.globals), len(c.globals)+est)
		copy(globals, c.globals)
		c.globals = globals
	}
	var arena []uint64
	if words > 0 {
		arena = make([]uint64, 0, words)
	}
	for len(data) > 0 {
		if err := checkStreamCtx(l.ctx, c.count); err != nil {
			return err
		}
		if data[0] == 0 {
			// DMA-alignment padding between buffer flushes.
			n := 1
			for n < len(data) && data[n] == 0 {
				n++
			}
			data = data[n:]
			continue
		}
		if len(c.recs) < cap(c.recs) {
			c.recs = c.recs[:len(c.recs)+1]
		} else {
			c.recs = append(c.recs, event.Record{})
		}
		if len(c.globals) < cap(c.globals) {
			c.globals = c.globals[:len(c.globals)+1]
		} else {
			c.globals = append(c.globals, 0)
		}
		n, nextArena, derr := event.DecodeNext(&c.recs[len(c.recs)-1], data, arena)
		arena = nextArena
		if derr != nil {
			c.recs = c.recs[:len(c.recs)-1]
			c.globals = c.globals[:len(c.globals)-1]
			if errors.Is(derr, event.ErrShortRecord) {
				// Partial record: wait for the rest of it.
				l.tail = append(make([]byte, 0, 256), data...)
				return nil
			}
			return fmt.Errorf("traceio: core %d: %w", c.core, derr)
		}
		c.count++
		if max := l.opts.Limits.MaxRecords; max > 0 && c.count > max {
			return streamLimitErr(fmt.Sprintf("core %d record count", c.core), int64(c.count), int64(max))
		}
		if l.budget > 0 {
			if l.decoded++; l.decoded > l.budget {
				return fmt.Errorf("%w: decoded records %d exceed budget %d (MaxRecords/MaxDecodeBytes)",
					ErrLimitExceeded, l.decoded, l.budget)
			}
		}
		if err := l.placeRecord(); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// placeRecord resolves the global time of the record just decoded and
// applies stream-level side effects (string interning, live anchors),
// cutting a window when the pending footprint reaches the budget.
func (l *StreamLoader) placeRecord() error {
	c := &l.cur
	i := len(c.recs) - 1
	rec := &c.recs[i]
	if rec.Flags&event.FlagDecrTime != 0 {
		c.globals[i] = c.anchorTB + rec.Time
	} else {
		c.globals[i] = rec.Time
	}
	c.argWords += len(rec.Args)
	if rec.ID == event.StringDef && len(rec.Args) == 1 {
		l.pendStrs = append(l.pendStrs, stringDef{rec.Args[0], rec.Str})
	}
	if rec.ID == event.LiveAnchor && len(rec.Args) == 3 {
		// Live streams deliver clock anchors in-band (the tracer appends
		// one as each run starts) instead of in the up-front metadata.
		l.meta.Anchors = append(l.meta.Anchors, traceio.Anchor{
			SPE:      int(rec.Args[0]),
			Timebase: rec.Args[1],
			Loaded:   uint32(rec.Args[2]),
			Program:  rec.Str,
		})
	}
	if i > 0 && c.globals[i-1] > c.globals[i] {
		c.sorted = false
	}
	// Window pacing. Only completed chunks fold by default, so an
	// end-of-stream truncation can still drop the current chunk exactly
	// as batch Parse does; a chunk that alone outgrows the window is cut
	// mid-chunk anyway — bounded memory wins over drop-parity there.
	curBytes := int64(len(c.recs))*eventFootprint + int64(c.argWords)*8
	pendBytes := int64(l.pendRecs)*eventFootprint + int64(l.pendArgs)*8
	if pendBytes+curBytes >= l.window/2 {
		if curBytes >= l.window/2 {
			l.cutPiece()
		}
		if l.pendRecs > 0 {
			return l.flushWindow()
		}
	}
	return nil
}

// cutPiece moves the current chunk's decoded records into the pending
// merge window as one stream piece.
func (l *StreamLoader) cutPiece() {
	c := &l.cur
	if len(c.recs) == 0 {
		return
	}
	if !c.sorted {
		sort.Stable(&streamSorter{c.recs, c.globals})
	}
	l.pending = append(l.pending, chunkStream{recs: c.recs, globals: c.globals, run: c.run})
	l.pendRecs += len(c.recs)
	l.pendArgs += c.argWords
	c.recs = nil
	c.globals = nil
	c.argWords = 0
	c.sorted = true
}

// closeChunk finishes the current chunk; its final piece joins the
// pending window.
func (l *StreamLoader) closeChunk() {
	l.cutPiece()
	l.tail = nil
}

// flushWindow merges the pending chunk pieces into one columnar segment
// — the batch k-way heap merge, so intra-window order is exactly the
// batch order — and folds it into every accumulator. The segment is
// dropped afterwards, keeping resident memory bounded by the window.
func (l *StreamLoader) flushWindow() error {
	if len(l.pending) == 0 {
		return nil
	}
	for _, sd := range l.pendStrs {
		l.strings[sd.ref] = sd.s
	}
	l.pendStrs = l.pendStrs[:0]
	b := colstore.NewBuilder(l.pendRecs, l.pendArgs)
	if err := mergeStreams(l.ctx, b, l.pending, l.pendRecs); err != nil {
		return err
	}
	seg := b.Done()
	l.pending = l.pending[:0]
	l.pendRecs, l.pendArgs = 0, 0
	l.acc.fold(seg, l.strings)
	// Folded side effects cannot be rolled back any more: advance the
	// current chunk's drop marks past everything just flushed.
	l.cur.strMark = 0
	l.cur.anchorMark = len(l.meta.Anchors)
	return nil
}

// Bytes returns the number of stream bytes received so far.
// Events reports how many records have been decoded so far; like Bytes
// it is safe to call concurrently with Write.
func (l *StreamLoader) Events() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.decoded
}

func (l *StreamLoader) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total()
}

// Sealed reports that the stream's footer has arrived and its checksum
// verified — the writer closed the trace, so no more data is coming.
// Follow-mode readers use it to stop polling a live file.
func (l *StreamLoader) Sealed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.complete
}

// Err returns the latched terminal error, if any.
func (l *StreamLoader) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Finish flushes the final window, applies end-of-stream truncation
// semantics — a stream ending before the footer is Truncated, exactly
// like batch Parse — and returns the folded result. Idempotent.
func (l *StreamLoader) Finish() (*StreamResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return nil, l.err
	}
	if !l.finished {
		l.finished = true
		switch l.stage {
		case stageHeader:
			// Batch: too short to hold a header at all.
			return nil, l.fail(traceio.ErrBadMagic)
		case stageChunkData:
			// Ended inside a chunk: batch Parse drops a chunk whose
			// data was cut off, so undo this chunk's un-flushed side
			// effects (records, string defs, issues, live anchors). A
			// window-sized chunk may have folded earlier pieces already;
			// those stay — bounded memory made them irreversible.
			c := &l.cur
			l.tail = nil
			l.issues = l.issues[:c.issueMark]
			l.pendStrs = l.pendStrs[:c.strMark]
			l.meta.Anchors = l.meta.Anchors[:c.anchorMark]
			l.decoded -= int64(len(c.recs))
			c.recs, c.globals = nil, nil
			c.argWords = 0
			l.truncated = true
		case stageMetaLen, stageMeta, stageChunk, stageFooter:
			l.truncated = true
		}
		if err := l.flushWindow(); err != nil {
			return nil, l.fail(err)
		}
		l.acc.finishStream(l.truncated)
	}
	return l.snapshotLocked(true), nil
}

// Snapshot returns the running analysis over every window folded so
// far — the live-tail view of a stream still being written. Records
// decoded but still inside the current window are not yet included;
// the final Finish result always is.
func (l *StreamLoader) Snapshot() *StreamResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked(false)
}

func (l *StreamLoader) snapshotLocked(final bool) *StreamResult {
	return l.acc.snapshot(snapshotInput{
		final:     final,
		truncated: l.truncated,
		complete:  l.complete && final,
		issues:    l.issues,
		strings:   l.strings,
		bytes:     l.total(),
	})
}

// checkStreamCtx polls ctx once per ctx-stride records, mirroring the
// batch decoder's cadence.
func checkStreamCtx(ctx context.Context, n int) error {
	if n%4096 == 0 {
		return ctx.Err()
	}
	return nil
}

// StreamFile streams an on-disk trace through a StreamLoader in bounded
// reads and returns the final result — the flat-RSS alternative to
// LoadFile for traces larger than memory.
func StreamFile(ctx context.Context, path string, opts StreamOptions) (*StreamResult, error) {
	if opts.Ctx == nil {
		opts.Ctx = ctx
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l := NewStreamLoader(opts)
	buf := make([]byte, 1<<20)
	for {
		n, rerr := f.Read(buf)
		if n > 0 {
			if _, werr := l.Write(buf[:n]); werr != nil {
				return nil, werr
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, rerr
		}
	}
	return l.Finish()
}
