package analyzer_test

// Streaming-vs-batch equivalence: every registered workload is traced,
// loaded through the batch pipeline, and streamed through StreamLoader
// under hostile conditions (tiny windows, odd write slicing), asserting
// the incremental kernels reproduce the batch kernels exactly — down to
// the rendered report bytes. Runs under -race in CI, which also
// exercises the Snapshot-vs-Write locking.

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"sync"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/traceio"
	"github.com/celltrace/pdt/internal/harness"
	"github.com/celltrace/pdt/internal/workloads"
)

// streamEquivParams mirrors load_equiv_test.go's small-but-representative
// workload configurations.
var streamEquivParams = map[string]map[string]string{
	"matmul":    {"n": "64", "t": "16"},
	"fft":       {"n": "256", "batches": "4"},
	"pipeline":  {"blocks": "8", "blockbytes": "1024"},
	"julia":     {"w": "64", "h": "32", "maxiter": "16", "mode": "dynamic"},
	"histogram": {"size": "65536"},
	"synthetic": {"events": "400", "gap": "100"},
	"stream":    {"elements": "8192"},
	"stencil":   {"w": "64", "h": "16", "iters": "2"},
	"sort":      {"elements": "8192", "chunk": "1024"},
	"nbody":     {"n": "64"},
	"taskfarm":  {"tasks": "16", "blockbytes": "1024"},
}

// traceWorkload runs one workload under the harness and returns its
// trace bytes.
func traceWorkload(t *testing.T, name string) []byte {
	t.Helper()
	params, ok := streamEquivParams[name]
	if !ok {
		t.Fatalf("no equivalence params for workload %q — add it to streamEquivParams", name)
	}
	cfg := core.DefaultTraceConfig()
	res, err := harness.Run(harness.Spec{Workload: name, Params: params, Trace: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	return res.TraceBytes
}

// batchResults holds everything the batch pipeline derives from a trace.
type batchResults struct {
	tr      *analyzer.Trace
	summary *analyzer.Summary
	profile []analyzer.PairProfile
	gaps    []analyzer.Gap
	tags    []analyzer.TagStats
	ppe     analyzer.PPEStats
	eff     float64
	minGap  uint64
}

// loadBatch runs the full batch pipeline, including Validate, over raw
// trace bytes.
func loadBatch(t *testing.T, data []byte) *batchResults {
	t.Helper()
	f, err := traceio.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := analyzer.FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	analyzer.Validate(tr)
	b := &batchResults{
		tr:      tr,
		summary: analyzer.Summarize(tr),
		profile: analyzer.Profile(tr),
		tags:    analyzer.TagBreakdown(tr),
		ppe:     analyzer.SummarizePPE(tr),
		eff:     analyzer.EffectiveConcurrency(tr),
		minGap:  analyzer.SuggestGapThreshold(tr),
	}
	b.gaps = analyzer.FindGaps(tr, b.minGap)
	return b
}

// streamIn feeds data to a fresh StreamLoader in writeSize slices and
// finishes it.
func streamIn(t *testing.T, data []byte, writeSize int, opts analyzer.StreamOptions) *analyzer.StreamResult {
	t.Helper()
	l := analyzer.NewStreamLoader(opts)
	for off := 0; off < len(data); off += writeSize {
		end := off + writeSize
		if end > len(data) {
			end = len(data)
		}
		if _, err := l.Write(data[off:end]); err != nil {
			t.Fatalf("Write at offset %d: %v", off, err)
		}
	}
	res, err := l.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return res
}

// assertStreamMatchesBatch compares every kernel output, struct for
// struct and rendered byte for byte.
func assertStreamMatchesBatch(t *testing.T, want *batchResults, got *analyzer.StreamResult) {
	t.Helper()
	if !got.Complete {
		t.Error("stream result not marked Complete on a clean trace")
	}
	if got.Events != int64(want.tr.NumEvents()) {
		t.Errorf("events: stream %d, batch %d", got.Events, want.tr.NumEvents())
	}
	if !reflect.DeepEqual(got.Summary, want.summary) {
		t.Errorf("summary differs:\nstream %+v\nbatch  %+v", got.Summary, want.summary)
	}
	if !reflect.DeepEqual(got.Profile, want.profile) {
		t.Errorf("profile differs:\nstream %+v\nbatch  %+v", got.Profile, want.profile)
	}
	if !reflect.DeepEqual(got.Gaps, want.gaps) {
		t.Errorf("gaps differ:\nstream %+v\nbatch  %+v", got.Gaps, want.gaps)
	}
	if !reflect.DeepEqual(got.Tags, want.tags) {
		t.Errorf("tags differ:\nstream %+v\nbatch  %+v", got.Tags, want.tags)
	}
	if !reflect.DeepEqual(got.PPE, want.ppe) {
		t.Errorf("ppe stats differ:\nstream %+v\nbatch  %+v", got.PPE, want.ppe)
	}
	if got.EffectiveConcurrency != want.eff {
		t.Errorf("effective concurrency: stream %v, batch %v", got.EffectiveConcurrency, want.eff)
	}
	if !reflect.DeepEqual(got.Trace.Confidence, want.tr.Confidence) {
		t.Errorf("confidence differs:\nstream %+v\nbatch  %+v", got.Trace.Confidence, want.tr.Confidence)
	}
	if !reflect.DeepEqual(got.Trace.Issues, want.tr.Issues) {
		t.Errorf("issues differ:\nstream %v\nbatch  %v", got.Trace.Issues, want.tr.Issues)
	}
	if !reflect.DeepEqual(got.Trace.Strings, want.tr.Strings) {
		t.Errorf("strings differ:\nstream %v\nbatch  %v", got.Trace.Strings, want.tr.Strings)
	}
	if got.Trace.Truncated != want.tr.Truncated {
		t.Errorf("truncated: stream %v, batch %v", got.Trace.Truncated, want.tr.Truncated)
	}

	// Byte-identical rendered outputs: the summary report, the JSON
	// export, the profile table, and the gap report.
	var wantBuf, gotBuf bytes.Buffer
	analyzer.Report(want.tr, want.summary, &wantBuf)
	got.Report(&gotBuf)
	if wantBuf.String() != gotBuf.String() {
		t.Errorf("rendered report differs:\n--- batch ---\n%s\n--- stream ---\n%s", wantBuf.String(), gotBuf.String())
	}
	wantBuf.Reset()
	gotBuf.Reset()
	if err := analyzer.WriteJSON(want.tr, want.summary, &wantBuf); err != nil {
		t.Fatal(err)
	}
	if err := analyzer.WriteJSON(got.Trace, got.Summary, &gotBuf); err != nil {
		t.Fatal(err)
	}
	if wantBuf.String() != gotBuf.String() {
		t.Errorf("JSON summary differs:\n--- batch ---\n%s\n--- stream ---\n%s", wantBuf.String(), gotBuf.String())
	}
	wantBuf.Reset()
	gotBuf.Reset()
	analyzer.WriteProfilePairs(want.tr, want.profile, &wantBuf)
	analyzer.WriteProfilePairs(got.Trace, got.Profile, &gotBuf)
	if wantBuf.String() != gotBuf.String() {
		t.Errorf("profile table differs:\n--- batch ---\n%s\n--- stream ---\n%s", wantBuf.String(), gotBuf.String())
	}
	wantBuf.Reset()
	gotBuf.Reset()
	analyzer.WriteGapsFound(want.minGap, want.gaps, 10, &wantBuf)
	analyzer.WriteGapsFound(want.minGap, got.Gaps, 10, &gotBuf)
	if wantBuf.String() != gotBuf.String() {
		t.Errorf("gap report differs:\n--- batch ---\n%s\n--- stream ---\n%s", wantBuf.String(), gotBuf.String())
	}
}

// TestStreamMatchesBatchAllWorkloads is the headline equivalence suite:
// all workloads, a window small enough to force many segment folds, and
// an odd write size so records split across Write boundaries constantly.
func TestStreamMatchesBatchAllWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			data := traceWorkload(t, name)
			want := loadBatch(t, data)
			got := streamIn(t, data, 977, analyzer.StreamOptions{
				Limits:      analyzer.Limits{StreamWindowBytes: 1 << 14},
				GapMinTicks: want.minGap,
				Validate:    true,
			})
			assertStreamMatchesBatch(t, want, got)
		})
	}
}

// TestStreamWriteSlicings re-streams one workload under several write
// slicings, including byte-at-a-time, and several window budgets —
// the result must never depend on how the bytes arrive.
func TestStreamWriteSlicings(t *testing.T) {
	data := traceWorkload(t, "synthetic")
	want := loadBatch(t, data)
	for _, tc := range []struct {
		name      string
		writeSize int
		window    int64
	}{
		{"byte-at-a-time", 1, 1 << 12},
		{"tiny-window", 4096, 1 << 10},
		{"page-writes", 4096, 1 << 20},
		{"one-shot", len(data), 0}, // 0 window = default
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := streamIn(t, data, tc.writeSize, analyzer.StreamOptions{
				Limits:      analyzer.Limits{StreamWindowBytes: tc.window},
				GapMinTicks: want.minGap,
				Validate:    true,
			})
			assertStreamMatchesBatch(t, want, got)
		})
	}
}

// TestStreamTruncationMatchesBatch cuts the trace at arbitrary byte
// offsets and asserts the streaming loader lands in the same truncation
// state as batch Parse+FromFile: same summary, same issues, same
// confidence. This covers the drop-the-partial-final-chunk semantics.
func TestStreamTruncationMatchesBatch(t *testing.T) {
	data := traceWorkload(t, "matmul")
	for _, frac := range []int{30, 55, 80, 95, 99} {
		cut := len(data) * frac / 100
		t.Run(string(rune('0'+frac/10))+string(rune('0'+frac%10))+"pct", func(t *testing.T) {
			trunc := data[:cut]
			f, err := traceio.Parse(trunc)
			if err != nil {
				t.Skipf("batch Parse rejects this cut (%v) — nothing to compare", err)
			}
			tr, err := analyzer.FromFile(f)
			if err != nil {
				t.Skipf("batch load rejects this cut (%v)", err)
			}
			want := &batchResults{
				tr:      tr,
				summary: analyzer.Summarize(tr),
				profile: analyzer.Profile(tr),
				tags:    analyzer.TagBreakdown(tr),
				ppe:     analyzer.SummarizePPE(tr),
				eff:     analyzer.EffectiveConcurrency(tr),
			}
			got := streamIn(t, trunc, 977, analyzer.StreamOptions{})
			if !tr.Truncated {
				t.Fatal("expected a truncated batch load")
			}
			if got.Complete {
				t.Error("stream result marked Complete on truncated input")
			}
			if !got.Trace.Truncated {
				t.Error("stream result not marked Truncated")
			}
			if !reflect.DeepEqual(got.Summary, want.summary) {
				t.Errorf("summary differs:\nstream %+v\nbatch  %+v", got.Summary, want.summary)
			}
			if !reflect.DeepEqual(got.Profile, want.profile) {
				t.Errorf("profile differs:\nstream %+v\nbatch  %+v", got.Profile, want.profile)
			}
			if !reflect.DeepEqual(got.PPE, want.ppe) {
				t.Errorf("ppe differs:\nstream %+v\nbatch  %+v", got.PPE, want.ppe)
			}
			if got.EffectiveConcurrency != want.eff {
				t.Errorf("effective concurrency: stream %v, batch %v", got.EffectiveConcurrency, want.eff)
			}
			if !reflect.DeepEqual(got.Trace.Issues, want.tr.Issues) {
				t.Errorf("issues differ:\nstream %v\nbatch  %v", got.Trace.Issues, want.tr.Issues)
			}
			if !reflect.DeepEqual(got.Trace.Confidence, want.tr.Confidence) {
				t.Errorf("confidence differs:\nstream %+v\nbatch  %+v", got.Trace.Confidence, want.tr.Confidence)
			}
		})
	}
}

// TestStreamSnapshotConcurrent hammers Snapshot from other goroutines
// while the stream is being written — the live-tail access pattern. The
// -race run is the real assertion; the checks here just keep the
// snapshots honest (monotone byte counts, final equality).
func TestStreamSnapshotConcurrent(t *testing.T) {
	data := traceWorkload(t, "julia")
	want := loadBatch(t, data)
	l := analyzer.NewStreamLoader(analyzer.StreamOptions{
		Limits: analyzer.Limits{StreamWindowBytes: 1 << 12},
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastBytes int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := l.Snapshot()
				if snap.Bytes < lastBytes {
					t.Errorf("snapshot bytes went backwards: %d after %d", snap.Bytes, lastBytes)
					return
				}
				lastBytes = snap.Bytes
			}
		}()
	}
	for off := 0; off < len(data); off += 512 {
		end := off + 512
		if end > len(data) {
			end = len(data)
		}
		if _, err := l.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	res, err := l.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Summary, want.summary) {
		t.Errorf("final summary differs from batch after concurrent snapshots")
	}
}

// TestStreamFile covers the file-streaming convenience wrapper.
func TestStreamFile(t *testing.T) {
	data := traceWorkload(t, "histogram")
	want := loadBatch(t, data)
	path := t.TempDir() + "/trace.pdt"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := analyzer.StreamFile(context.Background(), path, analyzer.StreamOptions{
		GapMinTicks: want.minGap,
		Validate:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertStreamMatchesBatch(t, want, got)
}

// TestStreamLimits checks the streaming admission controls: cumulative
// file size and the decoded-record budget latch mid-stream.
func TestStreamLimits(t *testing.T) {
	data := traceWorkload(t, "synthetic")
	t.Run("file-bytes", func(t *testing.T) {
		l := analyzer.NewStreamLoader(analyzer.StreamOptions{
			Limits: analyzer.Limits{MaxFileBytes: int64(len(data) / 2)},
		})
		var failed error
		for off := 0; off < len(data) && failed == nil; off += 4096 {
			end := off + 4096
			if end > len(data) {
				end = len(data)
			}
			_, failed = l.Write(data[off:end])
		}
		if failed == nil {
			t.Fatal("expected MaxFileBytes to reject the stream")
		}
		if _, err := l.Finish(); err == nil {
			t.Fatal("Finish after a latched error must fail")
		}
	})
	t.Run("record-budget", func(t *testing.T) {
		l := analyzer.NewStreamLoader(analyzer.StreamOptions{
			Limits: analyzer.Limits{MaxDecodeBytes: 1 << 10},
		})
		var failed error
		for off := 0; off < len(data) && failed == nil; off += 4096 {
			end := off + 4096
			if end > len(data) {
				end = len(data)
			}
			_, failed = l.Write(data[off:end])
		}
		if failed == nil {
			t.Fatal("expected the decode budget to reject the stream")
		}
	})
}
