package analyzer_test

// FuzzStreamDecode feeds mutated trace images through the incremental
// StreamLoader in adversarial write slicings with a tiny memory window,
// and checks it against the batch pipeline on the same bytes: no
// panics ever, error parity (the stream fails exactly when batch
// loading fails), and on success the incremental kernels reproduce the
// batch summary, event count, and truncation flag.

import (
	"reflect"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/core/traceio"
)

func FuzzStreamDecode(f *testing.F) {
	f.Add(uint32(0), uint8(4), uint8(0), uint16(0), uint16(1))     // clean trace, byte-at-a-time writes
	f.Add(uint32(0), uint8(4), uint8(0), uint16(0), uint16(977))   // clean trace, odd slicing
	f.Add(uint32(0), uint8(0), uint8(0x5A), uint16(0), uint16(64)) // header flip
	f.Add(uint32(30), uint8(1), uint8(0xC5), uint16(0), uint16(7)) // fake chunk magic inserted
	f.Add(uint32(60), uint8(2), uint8(0), uint16(0), uint16(128))  // delete inside meta
	f.Add(uint32(0), uint8(3), uint8(0), uint16(9), uint16(33))    // footer-only truncation
	f.Add(uint32(100), uint8(0), uint8(0xFF), uint16(50), uint16(256))
	f.Add(uint32(0), uint8(3), uint8(0), uint16(500), uint16(3)) // deep truncation

	f.Fuzz(func(t *testing.T, pos uint32, op, val uint8, cut uint16, writeSize uint16) {
		data := append([]byte(nil), buildColFuzzTrace(t)...)
		p := int(pos) % len(data)
		switch op % 5 {
		case 0: // flip
			data[p] ^= val | 1
		case 1: // insert
			data = append(data[:p], append([]byte{val}, data[p:]...)...)
		case 2: // delete
			data = append(data[:p], data[p+1:]...)
		case 3: // truncate from the end
			n := int(cut) % (len(data) + 1)
			data = data[:len(data)-n]
		case 4: // clean — exercise the equality path
		}

		// Batch reference: structural parse plus the eager load.
		var batchTr *analyzer.Trace
		file, batchErr := traceio.Parse(data)
		if batchErr == nil {
			batchTr, batchErr = analyzer.FromFile(file)
		}

		// Stream the same bytes in hostile slicings under a tiny window,
		// so chunks are cut into many pieces and every rollback path runs.
		step := int(writeSize)%4096 + 1
		l := analyzer.NewStreamLoader(analyzer.StreamOptions{
			Limits: analyzer.Limits{StreamWindowBytes: 1 << 12},
		})
		var streamErr error
		for off := 0; off < len(data) && streamErr == nil; off += step {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			_, streamErr = l.Write(data[off:end])
		}
		var res *analyzer.StreamResult
		if streamErr == nil {
			res, streamErr = l.Finish()
		}

		if batchErr != nil {
			// The stream parser is never laxer than batch loading.
			if streamErr == nil {
				t.Fatalf("stream accepted input batch rejects: batch err %v", batchErr)
			}
			return
		}
		if streamErr != nil {
			// Strictly-stream failures are allowed only in a truncated
			// tail: batch drops a cut-off final chunk wholesale, while the
			// stream must judge each chunk header the moment it arrives.
			if !batchTr.Truncated {
				t.Fatalf("stream rejected a clean batch-loadable trace: %v", streamErr)
			}
			return
		}

		if res.Trace.Truncated != batchTr.Truncated {
			t.Fatalf("truncated: stream %v, batch %v", res.Trace.Truncated, batchTr.Truncated)
		}
		if batchTr.Truncated {
			// A cut-off final chunk: batch drops it whole, but pieces the
			// bounded window already folded are irreversible in the stream —
			// the stream may only ever know MORE of the tail, never less.
			if res.Events < int64(batchTr.NumEvents()) {
				t.Fatalf("truncated stream lost events: stream %d, batch %d",
					res.Events, batchTr.NumEvents())
			}
			return
		}
		if res.Events != int64(batchTr.NumEvents()) {
			t.Fatalf("events: stream %d, batch %d", res.Events, batchTr.NumEvents())
		}
		if want := analyzer.Summarize(batchTr); !reflect.DeepEqual(res.Summary, want) {
			t.Fatalf("summary differs:\nstream %+v\nbatch  %+v", res.Summary, want)
		}
	})
}
