package analyzer

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"github.com/celltrace/pdt/internal/analyzer/colstore"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// This file holds the incremental (Accumulate) forms of the analysis
// kernels. Each accumulator folds one merged columnar segment at a time
// and produces, at any point, exactly what the batch kernel would
// produce over the events folded so far. The equivalence argument every
// accumulator leans on: window segments preserve the batch merged order
// *within each core and each run* (chunks decode in file order, each
// chunk is time-ordered, and the in-window merge is the batch k-way
// merge), and every batch kernel is a per-core/per-run state machine
// combined with order-insensitive sums — so folding segments in stream
// order drives each state machine through the same transitions as the
// batch scan. stream_equiv_test.go checks the identity byte-for-byte
// against every workload.

// snapshotInput is the loader-side state a snapshot combines with the
// accumulated kernel state.
type snapshotInput struct {
	final     bool
	truncated bool
	complete  bool
	issues    []Issue
	strings   map[uint64]string
	bytes     int64
}

// runAcc carries the per-run state of the incremental Summarize: the
// RunIntervals state machine, the DMA and mailbox scanners, and the
// run's bounds. It mirrors, field for field, the locals of the batch
// loops in stats.go and intervals.go.
type runAcc struct {
	seen   bool
	core   uint8
	start  uint64
	end    uint64
	events int

	// RunIntervals machine.
	state     [int(numStates)]uint64
	cursor    uint64
	open      bool
	openState State
	openStart uint64

	// DMA scanner (stats.go).
	dma       DMASummary
	inWait    bool
	waitStart uint64

	// Mailbox scanner (stats.go).
	mbox      MboxSummary
	mboxStart uint64
	mboxKind  event.ID

	// Incremental gap detection: end doubles as the previous global.
	gaps []Gap
}

// pairAcc is one pair's incremental profile plus the set of cores that
// contributed intervals (confidence is resolved against the final
// per-core figures at snapshot time, exactly the min the batch scan
// takes as it goes).
type pairAcc struct {
	prof  PairProfile
	cores [4]uint64 // 256-bit contributing-core set
}

// valAcc is the incremental Validate state (validate.go's locals).
type valAcc struct {
	lastTime  map[uint8]uint64
	openPairs map[uint8][]event.ID
	runsSeen  map[int]bool
	runEnded  map[int]bool

	spuOutWrites, ppeOutReads, ppeInWrites, spuInReads int

	issues []Issue // scan-order findings
}

// streamAccumulators folds merged segments into every incremental
// kernel. All calls happen under the owning StreamLoader's mutex.
type streamAccumulators struct {
	opts   StreamOptions
	header traceio.Header
	// meta points at the loader's metadata so anchors appended by
	// in-band LiveAnchor records are visible without re-plumbing.
	meta *traceio.Meta

	events   int64
	minG     uint64
	maxG     uint64
	haveSpan bool

	eventCount map[event.ID]int
	got        [256]int
	tags       [32]TagStats
	runs       []runAcc

	ppe      PPEStats
	ppeEnter map[event.ID]uint64

	profOpen [256][]uint64 // core -> enterID -> start+1
	profAcc  map[event.ID]*pairAcc

	val       *valAcc
	valIssues []Issue

	finished bool
}

func newStreamAccumulators(opts StreamOptions) *streamAccumulators {
	a := &streamAccumulators{
		opts:       opts,
		eventCount: map[event.ID]int{},
		ppeEnter:   map[event.ID]uint64{},
		profAcc:    map[event.ID]*pairAcc{},
	}
	if opts.Validate {
		a.val = &valAcc{
			lastTime:  map[uint8]uint64{},
			openPairs: map[uint8][]event.ID{},
			runsSeen:  map[int]bool{},
			runEnded:  map[int]bool{},
		}
	}
	return a
}

// run returns the accumulator of one run, growing the table on demand
// (live streams discover runs as their anchors arrive).
func (a *streamAccumulators) run(run int) *runAcc {
	for run >= len(a.runs) {
		a.runs = append(a.runs, runAcc{})
	}
	return &a.runs[run]
}

// fold consumes one merged segment. strings is the loader's interned
// string table, already updated with every StringDef up to and
// including this segment.
func (a *streamAccumulators) fold(seg *colstore.Store, strings map[uint64]string) {
	n := seg.Len()
	if n == 0 {
		return
	}
	// Segments are internally ascending in Global but not ordered
	// across windows, so the span folds as min/max of segment bounds.
	if !a.haveSpan {
		a.haveSpan = true
		a.minG, a.maxG = seg.Global[0], seg.Global[n-1]
	} else {
		if seg.Global[0] < a.minG {
			a.minG = seg.Global[0]
		}
		if seg.Global[n-1] > a.maxG {
			a.maxG = seg.Global[n-1]
		}
	}
	cpt := a.header.TimebaseDiv
	if cpt == 0 {
		cpt = 1
	}
	for i := 0; i < n; i++ {
		id := seg.ID[i]
		core := seg.Core[i]
		g := seg.Global[i]
		seq := int(a.events)
		a.events++
		a.eventCount[id]++
		a.got[core]++

		// TagBreakdown (stats.go): per-tag DMA sums.
		switch id {
		case event.SPEMFCGet, event.SPEMFCPut, event.SPEMFCGetList, event.SPEMFCPutList:
			base := seg.ArgOff[i]
			tag := int(seg.Args[base+3] % 32)
			a.tags[tag].Tag = tag
			a.tags[tag].Cmds++
			a.tags[tag].Bytes += seg.Args[base+2]
		}

		if run := seg.Run[i]; run >= 0 {
			a.foldRun(seg, i, int(run), id, core, g, cpt)
		}
		if core >= event.CorePPEBase {
			a.foldPPE(seg, i, id, g)
		}
		a.foldProfile(seg, i, id, core, g)
		if a.val != nil {
			a.foldValidate(seg, i, id, core, g, seq, strings)
		}
	}
}

// foldRun advances one run's Summarize state machines by one event —
// the bodies of the per-run loops in stats.go and RunIntervals fused
// into a single per-event step.
func (a *streamAccumulators) foldRun(seg *colstore.Store, i, run int, id event.ID, core uint8, g, cpt uint64) {
	ra := a.run(run)
	if !ra.seen {
		ra.seen = true
		ra.core = core
		ra.start = g
		ra.end = g
		ra.cursor = g
	} else {
		if a.opts.GapMinTicks > 0 && g-ra.end >= a.opts.GapMinTicks {
			ra.gaps = append(ra.gaps, Gap{Run: run, Core: core, Start: ra.end, End: g})
		}
		ra.end = g
	}
	ra.events++

	// DMA and mailbox scanners (stats.go, Summarize inner loop).
	switch id {
	case event.SPEMFCGet:
		base := seg.ArgOff[i]
		ra.dma.Gets++
		ra.dma.BytesIn += seg.Args[base+2]
		ra.dma.SizeBytes.Add(seg.Args[base+2])
	case event.SPEMFCPut:
		base := seg.ArgOff[i]
		ra.dma.Puts++
		ra.dma.BytesOut += seg.Args[base+2]
		ra.dma.SizeBytes.Add(seg.Args[base+2])
	case event.SPEMFCGetList:
		base := seg.ArgOff[i]
		ra.dma.Lists++
		ra.dma.BytesIn += seg.Args[base+2]
		ra.dma.SizeBytes.Add(seg.Args[base+2])
	case event.SPEMFCPutList:
		base := seg.ArgOff[i]
		ra.dma.Lists++
		ra.dma.BytesOut += seg.Args[base+2]
		ra.dma.SizeBytes.Add(seg.Args[base+2])
	case event.SPEWaitTagEnter:
		ra.inWait = true
		ra.waitStart = g
	case event.SPEWaitTagExit:
		if ra.inWait {
			ra.dma.Waits++
			ra.dma.WaitTicks.Add(g - ra.waitStart)
			ra.inWait = false
		}
	case event.SPEReadInMboxEnter:
		ra.mboxStart, ra.mboxKind = g, id
	case event.SPEReadInMboxExit:
		if ra.mboxKind == event.SPEReadInMboxEnter {
			ra.mbox.Reads++
			ra.mbox.ReadWaitTicks.Add(g - ra.mboxStart)
			ra.mboxKind = 0
		}
	case event.SPEWriteOutMboxEnter, event.SPEWriteIntrMboxEnter:
		ra.mboxStart, ra.mboxKind = g, id
	case event.SPEWriteOutMboxExit, event.SPEWriteIntrMboxExit:
		if ra.mboxKind != 0 && ra.mboxKind != event.SPEReadInMboxEnter {
			ra.mbox.Writes++
			ra.mbox.WriteWaitTicks.Add(g - ra.mboxStart)
			ra.mboxKind = 0
		}
	}

	// RunIntervals state machine (intervals.go), emitting straight into
	// the per-state tick sums.
	if int(id) >= len(kindOf) || id == 0 {
		return
	}
	emit := func(state State, start, end uint64) {
		if end > start {
			ra.state[state] += end - start
		}
	}
	switch {
	case kindOf[id] == event.KindEnter:
		if st, stalls := stallState[id]; stalls && !ra.open {
			emit(StateCompute, ra.cursor, g)
			ra.open = true
			ra.openState = st
			ra.openStart = g
		}
	case kindOf[id] == event.KindExit:
		if ra.open && stallState[pairOf[id]] == ra.openState {
			emit(ra.openState, ra.openStart, g)
			ra.open = false
			ra.cursor = g
		}
	case id == event.SPETraceFlush:
		ticks := seg.Args[seg.ArgOff[i]+1] / cpt
		start := g
		if ticks < g {
			start = g - ticks
		}
		if start < ra.cursor {
			start = ra.cursor
		}
		if !ra.open {
			emit(StateCompute, ra.cursor, start)
			emit(StateFlush, start, g)
			ra.cursor = g
		}
	case id == event.SPEProgramEnd:
		if !ra.open {
			emit(StateCompute, ra.cursor, g)
			ra.cursor = g
		}
	}
}

// foldPPE advances the host-side scanner (ppe.go, SummarizePPE) by one
// non-SPE event. PPE records keep their batch relative order across
// windows — they come from the single PPE buffer's chunks, decoded in
// file order — so the shared enter map pairs exactly as the batch scan.
func (a *streamAccumulators) foldPPE(seg *colstore.Store, i int, id event.ID, g uint64) {
	st := &a.ppe
	st.Records++
	info, ok := event.Lookup(id)
	if !ok {
		return
	}
	switch info.Kind {
	case event.KindEnter:
		a.ppeEnter[id] = g
	case event.KindExit:
		start, open := a.ppeEnter[info.Pair]
		if open {
			delete(a.ppeEnter, info.Pair)
			d := g - start
			switch id {
			case event.PPEWaitExit:
				st.SPEWaits++
				st.WaitTicks += d
			case event.PPEReadOutMboxExit, event.PPEReadIntrMboxExit:
				st.MboxReads++
				st.MboxWaitTicks += d
			case event.PPEWriteInMboxExit:
				st.MboxWrites++
				st.MboxWaitTicks += d
			case event.PPEWaitTagExit:
				st.ProxyWaits++
				st.ProxyWaitTicks += d
			}
		}
	}
	switch id {
	case event.PPEDMAGet:
		st.ProxyGets++
		st.ProxyBytes += seg.Args[seg.ArgOff[i]+3]
	case event.PPEDMAPut:
		st.ProxyPuts++
		st.ProxyBytes += seg.Args[seg.ArgOff[i]+3]
	}
}

// foldProfile advances the pair profile (profile.go, ProfileSerial) by
// one event. Matching is per core and per-pair sums commute, so window
// order is equivalent to merged order.
func (a *streamAccumulators) foldProfile(seg *colstore.Store, i int, id event.ID, core uint8, g uint64) {
	if int(id) >= len(kindOf) {
		return
	}
	switch kindOf[id] {
	case event.KindEnter:
		m := a.profOpen[core]
		if m == nil {
			m = make([]uint64, len(kindOf))
			a.profOpen[core] = m
		}
		m[id] = g + 1
	case event.KindExit:
		m := a.profOpen[core]
		if m == nil {
			break
		}
		pair := pairOf[id]
		start := m[pair]
		if start == 0 {
			break
		}
		m[pair] = 0
		p := a.profAcc[pair]
		if p == nil {
			p = &pairAcc{prof: PairProfile{Enter: pair, Confidence: 1}}
			a.profAcc[pair] = p
		}
		p.prof.Count++
		p.prof.Ticks.Add(g - (start - 1))
		p.cores[core>>6] |= 1 << (core & 63)
	}
}

// foldValidate advances the structural validator (validate.go) by one
// event. seq is the fold-order sequence number: it matches the batch
// seq on clean traces (which produce no findings) and is a best-effort
// locator on damaged multi-window streams.
func (a *streamAccumulators) foldValidate(seg *colstore.Store, i int, id event.ID, core uint8, g uint64, seq int, strings map[uint64]string) {
	v := a.val
	report := func(sev, format string, args ...interface{}) {
		v.issues = append(v.issues, Issue{sev, fmt.Sprintf(format, args...)})
	}
	info, ok := event.Lookup(id)
	if !ok {
		report("error", "unknown event id %d at seq %d", id, seq)
		return
	}
	if last, seen := v.lastTime[core]; seen && g < last {
		report("error", "core %d time went backwards at seq %d (%d < %d)", core, seq, g, last)
	}
	v.lastTime[core] = g

	switch info.Kind {
	case event.KindEnter:
		v.openPairs[core] = append(v.openPairs[core], id)
	case event.KindExit:
		stack := v.openPairs[core]
		if len(stack) == 0 {
			report("error", "core %d: %s without matching enter at seq %d", core, info.Name, seq)
			break
		}
		top := stack[len(stack)-1]
		if top != info.Pair {
			report("error", "core %d: %s exits %s (crossed pair) at seq %d",
				core, info.Name, top, seq)
		}
		v.openPairs[core] = stack[:len(stack)-1]
	}

	run := int(seg.Run[i])
	switch id {
	case event.SPEProgramStart:
		if v.runsSeen[run] {
			report("error", "run %d has duplicate SPE_PROGRAM_START", run)
		}
		v.runsSeen[run] = true
		if ref := seg.Args[seg.ArgOff[i]]; strings[ref] == "" {
			report("warn", "run %d program name ref %d unresolved", run, ref)
		}
	case event.SPEProgramEnd:
		v.runEnded[run] = true
	case event.SPEWriteOutMboxExit:
		v.spuOutWrites++
	case event.PPEReadOutMboxExit:
		v.ppeOutReads++
	case event.PPEWriteInMboxExit:
		v.ppeInWrites++
	case event.SPEReadInMboxExit:
		v.spuInReads++
	}
}

// finishStream runs the end-of-stream validator checks (the trailing
// section of Validate). Idempotent; called once from Finish.
func (a *streamAccumulators) finishStream(truncated bool) {
	if a.finished {
		return
	}
	a.finished = true
	v := a.val
	if v == nil {
		return
	}
	report := func(sev, format string, args ...interface{}) {
		v.issues = append(v.issues, Issue{sev, fmt.Sprintf(format, args...)})
	}
	for core, stack := range v.openPairs {
		for _, id := range stack {
			sev := "error"
			if truncated {
				sev = "warn"
			}
			report(sev, "core %d: %s never exited", core, id)
		}
	}
	for run := range v.runsSeen {
		if !v.runEnded[run] && !truncated {
			report("error", "run %d has no SPE_PROGRAM_END", run)
		}
	}
	conf := a.confidence()
	groups := groupMaskFromMeta(a.meta.Groups)
	if groups&event.GroupMailbox != 0 && groups&event.GroupHost != 0 &&
		!truncated && !conf.Degraded() {
		if v.ppeOutReads > v.spuOutWrites {
			report("error", "mailbox conservation violated: PPE read %d outbound values but SPUs wrote %d",
				v.ppeOutReads, v.spuOutWrites)
		}
		if v.spuInReads > v.ppeInWrites {
			report("error", "mailbox conservation violated: SPUs read %d inbound values but PPE wrote %d",
				v.spuInReads, v.ppeInWrites)
		}
	}
	a.valIssues = v.issues
}

// confidence derives survival fractions from the folded per-core counts
// and the metadata drop accounting — computeConfidence with the event
// columns replaced by the running counters.
func (a *streamAccumulators) confidence() Confidence {
	total := float64(a.events)
	lost := map[uint8]float64{}
	var lostTotal float64
	for _, d := range a.meta.Drops {
		lost[uint8(d.SPE)] += float64(d.Count)
		lostTotal += float64(d.Count)
	}
	c := Confidence{Overall: 1, PerCore: map[uint8]float64{}}
	if total+lostTotal > 0 {
		c.Overall = total / (total + lostTotal)
	}
	for core := 0; core < 256; core++ {
		n := float64(a.got[core])
		if n == 0 {
			continue
		}
		c.PerCore[uint8(core)] = 1
		if l := lost[uint8(core)]; l > 0 {
			c.PerCore[uint8(core)] = n / (n + l)
		}
	}
	for core, l := range lost {
		if a.got[core] == 0 && l > 0 {
			c.PerCore[core] = 0
		}
	}
	return c
}

// snapshot materializes the batch kernel outputs from the accumulated
// state. Open state machines are closed virtually — on copies — exactly
// as the batch kernels close them at end of input, so a snapshot of a
// finished stream is the batch result and a mid-stream snapshot is the
// batch result over the events folded so far.
func (a *streamAccumulators) snapshot(in snapshotInput) *StreamResult {
	conf := a.confidence()
	meta := *a.meta

	issues := make([]Issue, 0, len(in.issues)+len(meta.Drops)+len(a.valIssues)+1)
	if in.truncated {
		issues = append(issues, Issue{"warn", "trace is truncated (crashed or incomplete run)"})
	}
	for _, d := range meta.Drops {
		issues = append(issues,
			Issue{"warn", fmt.Sprintf("SPE %d dropped %d records (main trace region full)", d.SPE, d.Count)})
	}
	issues = append(issues, in.issues...)
	if in.final {
		issues = append(issues, a.valIssues...)
	}
	if len(issues) == 0 {
		issues = nil // batch leaves Issues nil on clean traces
	}

	strs := make(map[uint64]string, len(in.strings))
	for k, v := range in.strings {
		strs[k] = v
	}
	tr := &Trace{
		Header:     a.header,
		Meta:       meta,
		Strings:    strs,
		Truncated:  in.truncated,
		Issues:     issues,
		Confidence: conf,
	}

	s := &Summary{
		Workload:   meta.Workload,
		EventCount: make(map[event.ID]int, len(a.eventCount)),
		TotalRecs:  int(a.events),
	}
	for id, n := range a.eventCount {
		s.EventCount[id] = n
	}
	if a.haveSpan {
		s.WallTicks = a.maxG - a.minG
	}

	var busy uint64
	for run := 0; run < len(meta.Anchors); run++ {
		if run >= len(a.runs) || !a.runs[run].seen {
			continue
		}
		ra := a.runs[run] // value copy: virtual close must not disturb the live machine
		if ra.open && ra.end > ra.openStart {
			ra.state[ra.openState] += ra.end - ra.openStart
		}
		rs := RunSummary{
			Run: run, Core: ra.core, Program: meta.Anchors[run].Program,
			Start: ra.start, End: ra.end, StateTicks: ra.state, Events: ra.events,
			Confidence: conf.ForCore(ra.core),
		}
		s.Runs = append(s.Runs, rs)
		s.FlushTicks += ra.state[StateFlush]
		busy += ra.state[StateCompute]

		ds := ra.dma
		ds.Run, ds.Core = run, ra.core
		s.DMA = append(s.DMA, ds)
		ms := ra.mbox
		ms.Run, ms.Core = run, ra.core
		s.Mbox = append(s.Mbox, ms)
	}
	if len(s.Runs) > 0 {
		var sum, max float64
		for i := range s.Runs {
			b := float64(s.Runs[i].Busy())
			sum += b
			max = math.Max(max, b)
		}
		mean := sum / float64(len(s.Runs))
		if mean > 0 {
			s.LoadImbalance = max / mean
		}
	}

	// Profile: resolve each pair's confidence against the contributing
	// cores, then the batch report order.
	profs := make(map[event.ID]*PairProfile, len(a.profAcc))
	for id, p := range a.profAcc {
		cp := p.prof
		for w := 0; w < 4; w++ {
			for mask := p.cores[w]; mask != 0; mask &= mask - 1 {
				core := uint8(w*64 + bits.TrailingZeros64(mask))
				if c := conf.ForCore(core); c < cp.Confidence {
					cp.Confidence = c
				}
			}
		}
		profs[id] = &cp
	}
	profile := sortProfiles(profs)

	var gaps []Gap
	if a.opts.GapMinTicks > 0 {
		for run := 0; run < len(meta.Anchors) && run < len(a.runs); run++ {
			gaps = append(gaps, a.runs[run].gaps...)
		}
		sort.SliceStable(gaps, func(i, j int) bool { return gaps[i].Dur() > gaps[j].Dur() })
	}

	var tags []TagStats
	for _, t := range a.tags {
		if t.Cmds > 0 {
			tags = append(tags, t)
		}
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i].Bytes > tags[j].Bytes })

	var eff float64
	if a.haveSpan && a.maxG > a.minG {
		eff = float64(busy) / float64(a.maxG-a.minG)
	}

	return &StreamResult{
		Trace:                tr,
		Summary:              s,
		Profile:              profile,
		Gaps:                 gaps,
		Tags:                 tags,
		PPE:                  a.ppe,
		EffectiveConcurrency: eff,
		Complete:             in.complete,
		Bytes:                in.bytes,
		Events:               a.events,
	}
}
