package analyzer

import (
	"fmt"
	"sort"
	"strings"
)

// stateGlyphs render one bucket of a core lane in the ASCII timeline.
var stateGlyphs = [numStates]byte{'#', 'd', 'm', 's', 'y', 'f', 'w'}

// stateColors render interval classes in the SVG timeline.
var stateColors = [numStates]string{"#4caf50", "#e53935", "#fb8c00", "#8e24aa", "#3949ab", "#757575", "#00897b"}

// Timeline renders an ASCII Gantt chart: one lane per SPE run, one column
// per time bucket, glyph = state occupying most of the bucket
// ('#'=compute, 'd'=dma-wait, 'm'=mbox-wait, 's'=signal-wait,
// 'y'=sync-wait, 'f'=trace-flush, '.'=idle/not running).
func Timeline(tr *Trace, width int) string {
	if width < 10 {
		width = 10
	}
	start, end := tr.Span()
	if end <= start {
		return "(empty trace)\n"
	}
	ivs := append(Intervals(tr), PPEIntervals(tr)...)
	runs := map[int][]Interval{}
	for _, iv := range ivs {
		runs[iv.Run] = append(runs[iv.Run], iv)
	}
	runIDs := make([]int, 0, len(runs))
	for r := range runs {
		runIDs = append(runIDs, r)
	}
	sort.Ints(runIDs)

	span := end - start
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d timebase ticks (%d buckets of %d)\n",
		span, width, (span+uint64(width)-1)/uint64(width))
	for _, run := range runIDs {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		// Per bucket, accumulate tick counts per state and pick the max.
		occupancy := make([][numStates]uint64, width)
		for _, iv := range runs[run] {
			b0 := int((iv.Start - start) * uint64(width) / span)
			b1 := int((iv.End - start) * uint64(width) / span)
			if b1 >= width {
				b1 = width - 1
			}
			for bk := b0; bk <= b1; bk++ {
				lo := start + uint64(bk)*span/uint64(width)
				hi := start + uint64(bk+1)*span/uint64(width)
				s, e := iv.Start, iv.End
				if s < lo {
					s = lo
				}
				if e > hi {
					e = hi
				}
				if e > s {
					occupancy[bk][iv.State] += e - s
				}
			}
		}
		for i := range lane {
			best := uint64(0)
			for st, ticks := range occupancy[i] {
				if ticks > best {
					best = ticks
					lane[i] = stateGlyphs[st]
				}
			}
		}
		label := fmt.Sprintf("PPE.%d", -1-run)
		if run == -1 {
			label = "PPE"
		}
		if run >= 0 && run < len(tr.Meta.Anchors) {
			label = fmt.Sprintf("SPE%d %s", tr.Meta.Anchors[run].SPE, tr.Meta.Anchors[run].Program)
		}
		fmt.Fprintf(&b, "%-17s |%s|\n", label, lane)
	}
	b.WriteString("legend: #=compute d=dma-wait m=mbox-wait s=signal-wait y=sync-wait f=trace-flush w=spe-wait .=idle\n")
	return b.String()
}

// SVGTimeline renders the interval timeline as a standalone SVG document,
// one lane per SPE run, colored by state.
func SVGTimeline(tr *Trace, pxWidth int) string {
	if pxWidth < 100 {
		pxWidth = 100
	}
	start, end := tr.Span()
	ivs := append(Intervals(tr), PPEIntervals(tr)...)
	runs := map[int]bool{}
	for _, iv := range ivs {
		runs[iv.Run] = true
	}
	runIDs := make([]int, 0, len(runs))
	for r := range runs {
		runIDs = append(runIDs, r)
	}
	sort.Ints(runIDs)
	laneIdx := map[int]int{}
	for i, r := range runIDs {
		laneIdx[r] = i
	}

	const laneH, pad, labelW = 24, 4, 140
	height := len(runIDs)*(laneH+pad) + pad + 30
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`,
		pxWidth+labelW+2*pad, height)
	b.WriteString("\n")
	span := end - start
	if span == 0 {
		span = 1
	}
	x := func(t uint64) float64 {
		return float64(labelW+pad) + float64(t-start)/float64(span)*float64(pxWidth)
	}
	for _, iv := range ivs {
		y := pad + laneIdx[iv.Run]*(laneH+pad)
		x0, x1 := x(iv.Start), x(iv.End)
		if x1-x0 < 0.25 {
			x1 = x0 + 0.25
		}
		fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"><title>run %d %s [%d,%d)</title></rect>`,
			x0, y, x1-x0, laneH, stateColors[iv.State], iv.Run, iv.State, iv.Start, iv.End)
		b.WriteString("\n")
	}
	for _, run := range runIDs {
		y := pad + laneIdx[run]*(laneH+pad) + laneH/2 + 4
		label := fmt.Sprintf("PPE.%d", -1-run)
		if run == -1 {
			label = "PPE"
		}
		if run >= 0 && run < len(tr.Meta.Anchors) {
			a := tr.Meta.Anchors[run]
			label = fmt.Sprintf("SPE%d %s", a.SPE, a.Program)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`, pad, y, xmlEscape(label))
		b.WriteString("\n")
	}
	// Legend.
	lx := labelW + pad
	ly := height - 18
	for st := State(0); st < numStates; st++ {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/><text x="%d" y="%d">%s</text>`,
			lx, ly, stateColors[st], lx+14, ly+10, st)
		b.WriteString("\n")
		lx += 110
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// UtilizationSeries buckets the trace span and returns, per bucket, the
// fraction of SPE-run time spent computing (the figure-style time series).
type SeriesPoint struct {
	StartTick uint64
	Busy      float64 // 0..1 averaged over active runs
}

// UtilizationSeries computes a compute-utilization time series with n
// buckets across the trace span.
func UtilizationSeries(tr *Trace, n int) []SeriesPoint {
	if n <= 0 {
		n = 1
	}
	start, end := tr.Span()
	if end <= start {
		return nil
	}
	span := end - start
	busy := make([]uint64, n)
	active := make([]uint64, n)
	for _, iv := range Intervals(tr) {
		b0 := int((iv.Start - start) * uint64(n) / span)
		b1 := int((iv.End - start) * uint64(n) / span)
		if b1 >= n {
			b1 = n - 1
		}
		for bk := b0; bk <= b1; bk++ {
			lo := start + uint64(bk)*span/uint64(n)
			hi := start + uint64(bk+1)*span/uint64(n)
			s, e := iv.Start, iv.End
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			if e > s {
				active[bk] += e - s
				if iv.State == StateCompute {
					busy[bk] += e - s
				}
			}
		}
	}
	out := make([]SeriesPoint, n)
	for i := range out {
		out[i].StartTick = start + uint64(i)*span/uint64(n)
		if active[i] > 0 {
			out[i].Busy = float64(busy[i]) / float64(active[i])
		}
	}
	return out
}
