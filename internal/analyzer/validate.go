package analyzer

import (
	"fmt"

	"github.com/celltrace/pdt/internal/core/event"
)

// Validate checks structural invariants of the merged stream and appends
// findings to tr.Issues, returning the new findings:
//
//   - per-core timestamps are monotonically non-decreasing,
//   - Enter/Exit events pair up properly per core (no unmatched or
//     crossed pairs),
//   - every SPE run is bracketed by SPE_PROGRAM_START / SPE_PROGRAM_END
//     (unless the trace is truncated),
//   - string references resolve,
//   - mailbox conservation: SPU outbound writes >= PPE outbound reads,
//     and likewise for the inbound direction.
func Validate(tr *Trace) []Issue {
	var issues []Issue
	report := func(sev, format string, args ...interface{}) {
		issues = append(issues, Issue{sev, fmt.Sprintf(format, args...)})
	}

	lastTime := map[uint8]uint64{}
	openPairs := map[uint8][]event.ID{} // stack of open Enter events per core
	runsSeen := map[int]bool{}
	runEnded := map[int]bool{}
	var spuOutWrites, ppeOutReads, ppeInWrites, spuInReads int

	for i, n := 0, tr.NumEvents(); i < n; i++ {
		e := tr.Event(i)
		info, ok := event.Lookup(e.ID)
		if !ok {
			report("error", "unknown event id %d at seq %d", e.ID, e.Seq)
			continue
		}
		if last, seen := lastTime[e.Core]; seen && e.Global < last {
			report("error", "core %d time went backwards at seq %d (%d < %d)", e.Core, e.Seq, e.Global, last)
		}
		lastTime[e.Core] = e.Global

		switch info.Kind {
		case event.KindEnter:
			openPairs[e.Core] = append(openPairs[e.Core], e.ID)
		case event.KindExit:
			stack := openPairs[e.Core]
			if len(stack) == 0 {
				report("error", "core %d: %s without matching enter at seq %d", e.Core, info.Name, e.Seq)
				break
			}
			top := stack[len(stack)-1]
			if top != info.Pair {
				report("error", "core %d: %s exits %s (crossed pair) at seq %d",
					e.Core, info.Name, top, e.Seq)
			}
			openPairs[e.Core] = stack[:len(stack)-1]
		}

		switch e.ID {
		case event.SPEProgramStart:
			if runsSeen[e.Run] {
				report("error", "run %d has duplicate SPE_PROGRAM_START", e.Run)
			}
			runsSeen[e.Run] = true
			if ref := e.Args[0]; tr.Strings[ref] == "" {
				report("warn", "run %d program name ref %d unresolved", e.Run, ref)
			}
		case event.SPEProgramEnd:
			runEnded[e.Run] = true
		case event.SPEWriteOutMboxExit:
			spuOutWrites++
		case event.PPEReadOutMboxExit:
			ppeOutReads++
		case event.PPEWriteInMboxExit:
			ppeInWrites++
		case event.SPEReadInMboxExit:
			spuInReads++
		}
	}

	for core, stack := range openPairs {
		for _, id := range stack {
			sev := "error"
			if tr.Truncated {
				sev = "warn"
			}
			report(sev, "core %d: %s never exited", core, id)
		}
	}
	for run := range runsSeen {
		if !runEnded[run] && !tr.Truncated {
			report("error", "run %d has no SPE_PROGRAM_END", run)
		}
	}
	// Conservation checks are only meaningful when both sides' event
	// groups were recorded and neither side lost records (a crash or
	// salvage can destroy one side of a handshake that did happen).
	groups := groupMaskFromMeta(tr.Meta.Groups)
	if groups&event.GroupMailbox != 0 && groups&event.GroupHost != 0 &&
		!tr.Truncated && !tr.Confidence.Degraded() {
		if ppeOutReads > spuOutWrites {
			report("error", "mailbox conservation violated: PPE read %d outbound values but SPUs wrote %d",
				ppeOutReads, spuOutWrites)
		}
		if spuInReads > ppeInWrites {
			report("error", "mailbox conservation violated: SPUs read %d inbound values but PPE wrote %d",
				spuInReads, ppeInWrites)
		}
	}

	tr.Issues = append(tr.Issues, issues...)
	return issues
}

// groupMaskFromMeta parses the "a|b|c" group list recorded in trace
// metadata back into a mask; unknown names are ignored.
func groupMaskFromMeta(s string) event.Group {
	var mask event.Group
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '|' {
			if g, ok := event.ParseGroup(s[start:i]); ok {
				mask |= g
			}
			start = i + 1
		}
	}
	return mask
}

// Errors filters issues down to severity "error".
func Errors(issues []Issue) []Issue {
	var out []Issue
	for _, i := range issues {
		if i.Severity == "error" {
			out = append(out, i)
		}
	}
	return out
}
