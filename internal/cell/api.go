package cell

// ListElem is one element of an MFC list (GETL/PUTL) command: a transfer of
// Size bytes at effective address EA. Successive elements advance the
// local-store address by the element size, as on hardware.
type ListElem struct {
	EA   uint64
	Size int
}

// SPUProgram is the code an SPE runs. The return value plays the role of
// the SPU stop-and-signal exit code.
type SPUProgram func(spu SPU) uint32

// SPU is the programming interface of one synergistic processing unit, as
// seen by SPE-resident code (the analogue of the spu_mfcio intrinsics).
// All blocking calls consume simulated time; Compute models pure
// computation. Implementations are bound to the SPE's simulated process,
// so an SPU must never be shared between programs.
//
// The PDT instrumented wrappers in internal/core implement this same
// interface, so workloads run traced or untraced without modification.
type SPU interface {
	// Index returns the SPE number (0-based).
	Index() int
	// LS returns the local store. Reads and writes model load/store
	// traffic that stays on-chip; bulk work should be paired with
	// Compute for timing.
	LS() []byte

	// Get enqueues an MFC GET: transfer size bytes from effective
	// address ea into local store at lsOff, tagged with tag. Blocks only
	// when the MFC command queue is full.
	Get(lsOff int, ea uint64, size int, tag int)
	// Put enqueues an MFC PUT: local store -> effective address.
	Put(lsOff int, ea uint64, size int, tag int)
	// GetList enqueues an MFC list GET (scatter/gather into LS).
	GetList(lsOff int, list []ListElem, tag int)
	// PutList enqueues an MFC list PUT.
	PutList(lsOff int, list []ListElem, tag int)

	// WaitTagAll blocks until every tag group in mask has no outstanding
	// commands (mfc_write_tag_mask + mfc_read_tag_status_all).
	WaitTagAll(mask uint32)
	// WaitTagAny blocks until at least one tag group in mask has no
	// outstanding commands and returns the completed subset of mask.
	WaitTagAny(mask uint32) uint32
	// TagStatus returns, without blocking, the subset of mask whose tag
	// groups have no outstanding commands.
	TagStatus(mask uint32) uint32

	// ReadInMbox reads the PPE->SPU mailbox, blocking while empty.
	ReadInMbox() uint32
	// TryReadInMbox is the non-blocking variant.
	TryReadInMbox() (uint32, bool)
	// InMboxCount returns the number of queued inbound entries.
	InMboxCount() int
	// WriteOutMbox writes the SPU->PPE mailbox, blocking while full.
	WriteOutMbox(v uint32)
	// TryWriteOutMbox is the non-blocking variant.
	TryWriteOutMbox(v uint32) bool
	// WriteOutIntrMbox writes the interrupting SPU->PPE mailbox.
	WriteOutIntrMbox(v uint32)

	// ReadSignal1 blocks until signal-notification register 1 is
	// non-zero, then returns and clears it.
	ReadSignal1() uint32
	// ReadSignal2 is the second signal-notification register.
	ReadSignal2() uint32
	// Sndsig ORs v into another SPE's signal-notification register
	// (mfc_sndsig): an MFC command on the given tag group, so it
	// completes asynchronously and can be fenced with WaitTagAll.
	Sndsig(spe int, reg int, v uint32, tag int)

	// ReadDecr returns the SPU decrementer (counts down at the timebase
	// frequency from the value loaded at program start).
	ReadDecr() uint32

	// Compute advances the SPU by the given number of cycles of pure
	// computation.
	Compute(cycles uint64)

	// AtomicCAS performs an atomic compare-and-swap on the 8-byte
	// big-endian word at ea (a getllar/putllc reservation sequence).
	AtomicCAS(ea uint64, old, new uint64) bool
	// AtomicAdd atomically adds delta to the 8-byte word at ea and
	// returns the new value.
	AtomicAdd(ea uint64, delta uint64) uint64

	// Now returns the global simulated cycle. Real SPUs have no such
	// register; it exists for assertions and for the tracing runtime.
	Now() uint64
}

// Host is the PPE-side programming interface (the analogue of libspe2 plus
// direct main-storage access). A Host is bound to one PPE thread's process.
type Host interface {
	// NumSPEs returns the machine's SPE count.
	NumSPEs() int
	// Machine returns the underlying machine (for stats and tracing).
	Machine() *Machine
	// Mem exposes main memory for direct PPE access.
	Mem() []byte
	// Alloc carves out main memory (convenience for Machine.Alloc).
	Alloc(size, align int) uint64

	// Run loads and starts prog on SPE spe and returns immediately with
	// a handle. Starting costs SPEStartupCost cycles on the PPE thread.
	Run(spe int, name string, prog SPUProgram) *SPEHandle
	// Wait blocks until the handle's program returns and yields its
	// exit code.
	Wait(h *SPEHandle) uint32

	// WriteInMbox writes SPE spe's PPE->SPU mailbox, blocking while full.
	WriteInMbox(spe int, v uint32)
	// TryWriteInMbox is the non-blocking variant.
	TryWriteInMbox(spe int, v uint32) bool
	// ReadOutMbox reads SPE spe's SPU->PPE mailbox, blocking while empty.
	ReadOutMbox(spe int) uint32
	// TryReadOutMbox is the non-blocking variant.
	TryReadOutMbox(spe int) (uint32, bool)
	// ReadOutIntrMbox reads the interrupting mailbox, blocking while
	// empty (models the PPE taking the interrupt).
	ReadOutIntrMbox(spe int) uint32

	// WriteSignal1 ORs v into SPE spe's signal-notification register 1.
	WriteSignal1(spe int, v uint32)
	// WriteSignal2 ORs v into signal-notification register 2.
	WriteSignal2(spe int, v uint32)

	// DMAGet enqueues a proxy GET on SPE spe's MFC (spe_mfcio_get):
	// main storage -> that SPE's local store. Blocks only on a full
	// proxy queue.
	DMAGet(spe int, lsOff int, ea uint64, size int, tag int)
	// DMAPut is the proxy PUT: local store -> main storage.
	DMAPut(spe int, lsOff int, ea uint64, size int, tag int)
	// DMAWaitTagAll blocks until the given tag groups on SPE spe's MFC
	// have no outstanding commands (proxy tag-status wait).
	DMAWaitTagAll(spe int, mask uint32)

	// Compute advances this PPE thread by the given cycles.
	Compute(cycles uint64)
	// Timebase returns the PPE timebase register.
	Timebase() uint64
	// Now returns the global simulated cycle.
	Now() uint64

	// AtomicCAS/AtomicAdd are the PPE's lwarx/stwcx-style primitives,
	// coherent with the SPEs' MFC atomics.
	AtomicCAS(ea uint64, old, new uint64) bool
	AtomicAdd(ea uint64, delta uint64) uint64

	// Spawn starts another PPE thread running fn with its own Host.
	Spawn(name string, fn func(h Host))
}
