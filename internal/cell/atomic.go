package cell

import (
	"encoding/binary"

	"github.com/celltrace/pdt/internal/sim"
)

// Atomic operations model the Cell's lock-line reservation primitives
// (getllar/putllc on the SPE, lwarx/stwcx on the PPE) at the granularity of
// one 8-byte big-endian word in main storage. All requesters serialize
// through a single atomic unit, which is what the reservation protocol
// effectively provides for contended lines, and each operation costs
// AtomicCost cycles plus memory latency.

// atomicCAS performs the compare-and-swap on behalf of process p.
func (m *Machine) atomicCAS(p *sim.Proc, ea uint64, old, new uint64) bool {
	m.atomicUnit.Acquire(p, 1)
	p.Delay(m.cfg.AtomicCost + m.cfg.MemLatency)
	buf := m.atomicWord(ea)
	cur := binary.BigEndian.Uint64(buf)
	ok := cur == old
	if ok {
		binary.BigEndian.PutUint64(buf, new)
	}
	m.atomicUnit.Release(1)
	return ok
}

// atomicAdd adds delta to the word at ea and returns the new value.
func (m *Machine) atomicAdd(p *sim.Proc, ea uint64, delta uint64) uint64 {
	m.atomicUnit.Acquire(p, 1)
	p.Delay(m.cfg.AtomicCost + m.cfg.MemLatency)
	buf := m.atomicWord(ea)
	v := binary.BigEndian.Uint64(buf) + delta
	binary.BigEndian.PutUint64(buf, v)
	m.atomicUnit.Release(1)
	return v
}

// atomicWord resolves and validates the 8-byte target of an atomic op.
func (m *Machine) atomicWord(ea uint64) []byte {
	if ea%8 != 0 {
		panic("cell: atomic operation on misaligned address")
	}
	buf, isLS, _ := m.resolveEA(ea, 8)
	if isLS {
		panic("cell: atomic operations target main storage, not local store")
	}
	return buf
}

// ReadWord64 reads the big-endian 8-byte word at ea without timing; it is
// a host/test convenience coherent with the atomic ops.
func (m *Machine) ReadWord64(ea uint64) uint64 {
	return binary.BigEndian.Uint64(m.atomicWord(ea))
}

// WriteWord64 writes the big-endian 8-byte word at ea without timing.
func (m *Machine) WriteWord64(ea uint64, v uint64) {
	binary.BigEndian.PutUint64(m.atomicWord(ea), v)
}
