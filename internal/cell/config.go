// Package cell models the Cell Broadband Engine processor as a
// deterministic discrete-event system: one PPE (with spawnable threads),
// a configurable number of SPEs each with a 256 KiB local store and an MFC
// (DMA queue, tag groups, mailboxes, signal-notification registers,
// atomic commands), an EIB bandwidth model, and a main-memory controller.
//
// Programs are ordinary Go functions written against the SPU and Host
// interfaces; DMA really moves bytes between local stores and main memory,
// so workloads compute verifiable results while the kernel accounts cycles.
package cell

// Kibi/Mebi byte sizes used throughout the model.
const (
	KiB = 1024
	MiB = 1024 * KiB
)

// Effective-address map: main memory occupies [0, MemSize); the local store
// of SPE i is aliased at LSBaseEA + i*LSSpanEA, as on real Cell hardware
// where local stores are mapped into the effective-address space (this is
// what makes SPE-to-SPE DMA possible).
const (
	LSBaseEA = 0x4000_0000
	LSSpanEA = 0x0010_0000
)

// MaxDMASize is the architectural limit for a single MFC transfer.
const MaxDMASize = 16 * KiB

// NumTagGroups is the number of MFC tag groups per SPE.
const NumTagGroups = 32

// Config holds the machine parameters. The defaults approximate a 3.2 GHz
// Cell BE with 8 SPEs; all timing is expressed in 3.2 GHz cycles.
type Config struct {
	NumSPEs       int    // number of synergistic processing elements
	MemSize       int    // bytes of simulated main (XDR) memory
	LocalStore    int    // bytes of local store per SPE
	TimebaseDiv   uint64 // cycles per timebase tick (3.2GHz/40 = 80 MHz)
	MFCQueueDepth int    // MFC command queue entries per SPE

	InMboxDepth      int // PPE->SPU mailbox depth
	OutMboxDepth     int // SPU->PPE mailbox depth
	OutIntrMboxDepth int // SPU->PPE interrupting mailbox depth

	EIBRings         int     // parallel EIB data rings
	EIBBytesPerCycle float64 // per-ring bandwidth
	EIBStartup       uint64  // per-transfer arbitration+setup latency, cycles

	MemBytesPerCycle float64 // memory interface controller bandwidth
	MemLatency       uint64  // fixed memory access latency, cycles

	MFCIssueCost   uint64 // SPU cycles to enqueue an MFC command
	MboxAccessCost uint64 // SPU/PPE cycles per mailbox register access
	SignalCost     uint64 // cycles per signal-register access
	AtomicCost     uint64 // cycles per atomic (getllar/putllc-style) op

	SPEStartupCost uint64 // cycles to load+start an SPE context from the PPE
}

// DefaultConfig returns the reference machine: 8 SPEs, 256 KiB local
// stores, 25.6 GB/s memory interface (8 B/cycle at 3.2 GHz), four EIB data
// rings of 25.6 GB/s each.
func DefaultConfig() Config {
	return Config{
		NumSPEs:          8,
		MemSize:          64 * MiB,
		LocalStore:       256 * KiB,
		TimebaseDiv:      40,
		MFCQueueDepth:    16,
		InMboxDepth:      4,
		OutMboxDepth:     1,
		OutIntrMboxDepth: 1,
		EIBRings:         4,
		EIBBytesPerCycle: 8,
		EIBStartup:       100,
		MemBytesPerCycle: 8,
		MemLatency:       200,
		MFCIssueCost:     10,
		MboxAccessCost:   10,
		SignalCost:       10,
		AtomicCost:       50,
		SPEStartupCost:   2000,
	}
}

// validate panics on obviously broken configurations; NewMachine calls it.
func (c *Config) validate() {
	switch {
	case c.NumSPEs <= 0 || c.NumSPEs > 16:
		panic("cell: NumSPEs must be in 1..16")
	case c.MemSize <= 0:
		panic("cell: MemSize must be positive")
	case c.MemSize > LSBaseEA:
		panic("cell: MemSize overlaps the local-store EA window")
	case c.LocalStore <= 0 || c.LocalStore > LSSpanEA:
		panic("cell: LocalStore must be in (0, LSSpanEA]")
	case c.TimebaseDiv == 0:
		panic("cell: TimebaseDiv must be nonzero")
	case c.MFCQueueDepth <= 0:
		panic("cell: MFCQueueDepth must be positive")
	case c.InMboxDepth <= 0 || c.OutMboxDepth <= 0 || c.OutIntrMboxDepth <= 0:
		panic("cell: mailbox depths must be positive")
	case c.EIBRings <= 0 || c.EIBBytesPerCycle <= 0:
		panic("cell: EIB parameters must be positive")
	case c.MemBytesPerCycle <= 0:
		panic("cell: MemBytesPerCycle must be positive")
	}
}
