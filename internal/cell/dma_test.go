package cell

import (
	"bytes"
	"testing"
	"testing/quick"
)

// runSPE runs prog on SPE 0 of a small machine and returns the machine.
func runSPE(t *testing.T, mut func(*Config), prog SPUProgram) *Machine {
	t.Helper()
	m := testMachine(t, mut)
	m.RunMain(func(h Host) {
		h.Wait(h.Run(0, "t", prog))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDMAGetMovesBytes(t *testing.T) {
	m := testMachine(t, nil)
	src := m.Alloc(256, 16)
	for i := 0; i < 256; i++ {
		m.Mem()[src+uint64(i)] = byte(i)
	}
	m.RunMain(func(h Host) {
		h.Wait(h.Run(0, "get", func(spu SPU) uint32 {
			spu.Get(512, src, 256, 3)
			spu.WaitTagAll(1 << 3)
			return 0
		}))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if m.SPE(0).LS()[512+i] != byte(i) {
			t.Fatalf("LS[%d] = %d, want %d", 512+i, m.SPE(0).LS()[512+i], byte(i))
		}
	}
}

func TestDMAPutMovesBytes(t *testing.T) {
	m := testMachine(t, nil)
	dst := m.Alloc(128, 16)
	m.RunMain(func(h Host) {
		h.Wait(h.Run(0, "put", func(spu SPU) uint32 {
			for i := 0; i < 128; i++ {
				spu.LS()[i] = byte(255 - i)
			}
			spu.Put(0, dst, 128, 0)
			spu.WaitTagAll(1)
			return 0
		}))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if m.Mem()[dst+uint64(i)] != byte(255-i) {
			t.Fatalf("mem[%d] wrong", i)
		}
	}
}

func TestDMASPEToSPE(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		h1 := h.Run(1, "sink", func(spu SPU) uint32 {
			// Wait for a mailbox token saying data has landed.
			if spu.ReadInMbox() != 1 {
				return 1
			}
			if !bytes.Equal(spu.LS()[0:16], []byte("0123456789abcdef")) {
				return 2
			}
			return 0
		})
		h0 := h.Run(0, "source", func(spu SPU) uint32 {
			copy(spu.LS()[1024:], "0123456789abcdef")
			spu.Put(1024, LSEA(1, 0), 16, 5)
			spu.WaitTagAll(1 << 5)
			spu.WriteOutMbox(1)
			return 0
		})
		h.Wait(h0)
		h.WriteInMbox(1, h.ReadOutMbox(0))
		if code := h.Wait(h1); code != 0 {
			t.Errorf("sink exit = %d", code)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDMAListGather(t *testing.T) {
	m := testMachine(t, nil)
	a := m.Alloc(64, 16)
	b := m.Alloc(64, 16)
	for i := 0; i < 64; i++ {
		m.Mem()[a+uint64(i)] = 0x11
		m.Mem()[b+uint64(i)] = 0x22
	}
	m.RunMain(func(h Host) {
		h.Wait(h.Run(0, "getl", func(spu SPU) uint32 {
			spu.GetList(0, []ListElem{{EA: a, Size: 64}, {EA: b, Size: 64}}, 0)
			spu.WaitTagAll(1)
			return 0
		}))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ls := m.SPE(0).LS()
	if ls[0] != 0x11 || ls[63] != 0x11 || ls[64] != 0x22 || ls[127] != 0x22 {
		t.Fatalf("list gather wrong: % x", ls[:128])
	}
}

func TestDMAListScatter(t *testing.T) {
	m := testMachine(t, nil)
	a := m.Alloc(32, 16)
	b := m.Alloc(32, 16)
	m.RunMain(func(h Host) {
		h.Wait(h.Run(0, "putl", func(spu SPU) uint32 {
			for i := 0; i < 64; i++ {
				spu.LS()[i] = byte(i)
			}
			spu.PutList(0, []ListElem{{EA: a, Size: 32}, {EA: b, Size: 32}}, 7)
			spu.WaitTagAll(1 << 7)
			return 0
		}))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Mem()[a] != 0 || m.Mem()[a+31] != 31 || m.Mem()[b] != 32 || m.Mem()[b+31] != 63 {
		t.Fatal("list scatter wrong")
	}
}

func TestDMATagIsolation(t *testing.T) {
	// A pending command on tag 1 must not block WaitTagAll on tag 0.
	m := testMachine(t, nil)
	src := m.Alloc(16*KiB, 16)
	var tag0Done, tag1Done uint64
	m.RunMain(func(h Host) {
		h.Wait(h.Run(0, "tags", func(spu SPU) uint32 {
			spu.Get(0, src, 16*KiB, 1) // big transfer on tag 1
			spu.Get(32*KiB, src, 16, 0)
			spu.WaitTagAll(1 << 0)
			tag0Done = spu.Now()
			spu.WaitTagAll(1 << 1)
			tag1Done = spu.Now()
			return 0
		}))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// In-order MFC: tag1's big transfer executes first, so tag0 completes
	// after it; but both waits return, and tag1Done >= tag0Done.
	if tag0Done == 0 || tag1Done < tag0Done {
		t.Fatalf("tag waits wrong: tag0 %d tag1 %d", tag0Done, tag1Done)
	}
}

func TestWaitTagAnyReturnsCompletedSubset(t *testing.T) {
	m := testMachine(t, nil)
	src := m.Alloc(1024, 16)
	m.RunMain(func(h Host) {
		h.Wait(h.Run(0, "any", func(spu SPU) uint32 {
			spu.Get(0, src, 16, 2)
			done := spu.WaitTagAny(1<<2 | 1<<9) // tag 9 has no commands: already "drained"
			if done&(1<<9) == 0 {
				return 1 // idle tags count as complete, as on hardware
			}
			spu.WaitTagAll(1 << 2)
			if spu.TagStatus(1<<2) != 1<<2 {
				return 2
			}
			return 0
		}))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMFCQueueBackpressure(t *testing.T) {
	// With a queue depth of 2, issuing 3 commands must stall the SPU on
	// the third until a slot frees.
	var thirdIssued, firstLatency uint64
	runSPE(t, func(c *Config) { c.MFCQueueDepth = 2 },
		func(spu SPU) uint32 {
			src := uint64(0)
			spu.Get(0, src, 16*KiB, 0)
			spu.Get(16*KiB, src, 16*KiB, 0)
			before := spu.Now()
			spu.Get(32*KiB, src, 16*KiB, 0) // must block for a slot
			thirdIssued = spu.Now() - before
			spu.WaitTagAll(1)
			firstLatency = spu.Now()
			return 0
		})
	if thirdIssued < 1000 {
		t.Fatalf("third issue stalled only %d cycles; queue backpressure missing", thirdIssued)
	}
	if firstLatency == 0 {
		t.Fatal("no completion recorded")
	}
}

func TestDMAValidation(t *testing.T) {
	cases := []struct {
		name string
		run  func(spu SPU)
	}{
		{"zero size", func(spu SPU) { spu.Get(0, 0, 0, 0) }},
		{"oversize", func(spu SPU) { spu.Get(0, 0, MaxDMASize+16, 0) }},
		{"bad small size", func(spu SPU) { spu.Get(0, 0, 3, 0) }},
		{"unaligned small", func(spu SPU) { spu.Get(4, 2, 4, 0) }},
		{"not multiple of 16", func(spu SPU) { spu.Get(0, 0, 24, 0) }},
		{"unaligned bulk LS", func(spu SPU) { spu.Get(8, 0, 32, 0) }},
		{"unaligned bulk EA", func(spu SPU) { spu.Get(0, 8, 32, 0) }},
		{"bad tag low", func(spu SPU) { spu.Get(0, 0, 16, -1) }},
		{"bad tag high", func(spu SPU) { spu.Get(0, 0, 16, 32) }},
		{"LS overrun", func(spu SPU) { spu.Get(256*KiB-8, 0, 16, 0) }},
		{"empty list", func(spu SPU) { spu.GetList(0, nil, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testMachine(t, nil)
			m.RunMain(func(h Host) {
				h.Wait(h.Run(0, "bad", func(spu SPU) uint32 {
					defer func() {
						if recover() == nil {
							t.Errorf("%s: no DMA exception", tc.name)
						}
					}()
					tc.run(spu)
					return 0
				}))
			})
			_ = m.Run()
		})
	}
}

func TestDMATimingScalesWithSize(t *testing.T) {
	measure := func(size int) uint64 {
		var lat uint64
		runSPE(t, nil, func(spu SPU) uint32 {
			start := spu.Now()
			spu.Get(0, 0, size, 0)
			spu.WaitTagAll(1)
			lat = spu.Now() - start
			return 0
		})
		return lat
	}
	small := measure(16)
	big := measure(16 * KiB)
	if big <= small {
		t.Fatalf("16K transfer (%d cycles) not slower than 16B (%d)", big, small)
	}
	// 16 KiB at 8 B/cycle through two sequential servers is ~4k cycles of
	// service; allow generous bounds but catch gross model breakage.
	if big < 2000 || big > 20000 {
		t.Fatalf("16K latency = %d cycles, outside sane window", big)
	}
}

func TestMemoryBandwidthContention(t *testing.T) {
	// Many SPEs streaming from main memory must serialize on the memory
	// interface controller: total time with 8 SPEs should be much more
	// than with 1 for the same per-SPE volume.
	run := func(nspe int) uint64 {
		m := testMachine(t, func(c *Config) { c.NumSPEs = 8 })
		src := m.Alloc(16*KiB, 128)
		m.RunMain(func(h Host) {
			var hs []*SPEHandle
			for i := 0; i < nspe; i++ {
				hs = append(hs, h.Run(i, "stream", func(spu SPU) uint32 {
					for j := 0; j < 8; j++ {
						spu.Get(0, src, 16*KiB, 0)
						spu.WaitTagAll(1)
					}
					return 0
				}))
			}
			for _, hd := range hs {
				h.Wait(hd)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Now()
	}
	one := run(1)
	eight := run(8)
	if eight < one*3 {
		t.Fatalf("8-SPE streaming (%d) not >3x 1-SPE (%d); memory contention missing", eight, one)
	}
}

// Property: a GET followed by a PUT of random-size aligned blocks round-
// trips arbitrary data through the local store unchanged.
func TestDMARoundTripProperty(t *testing.T) {
	f := func(seed uint32, nBlocks uint8) bool {
		n := int(nBlocks%8) + 1
		m := NewMachine(func() Config {
			c := DefaultConfig()
			c.MemSize = 4 * MiB
			c.NumSPEs = 1
			return c
		}())
		src := m.Alloc(n*1024, 16)
		dst := m.Alloc(n*1024, 16)
		x := seed | 1
		for i := 0; i < n*1024; i++ {
			x = x*1664525 + 1013904223
			m.Mem()[src+uint64(i)] = byte(x >> 24)
		}
		m.RunMain(func(h Host) {
			h.Wait(h.Run(0, "rt", func(spu SPU) uint32 {
				for b := 0; b < n; b++ {
					spu.Get(b*1024, src+uint64(b*1024), 1024, b%16)
				}
				spu.WaitTagAll((1 << 16) - 1)
				for b := 0; b < n; b++ {
					spu.Put(b*1024, dst+uint64(b*1024), 1024, b%16)
				}
				spu.WaitTagAll((1 << 16) - 1)
				return 0
			}))
		})
		if err := m.Run(); err != nil {
			return false
		}
		return bytes.Equal(m.Mem()[src:src+uint64(n*1024)], m.Mem()[dst:dst+uint64(n*1024)])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
