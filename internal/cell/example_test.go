package cell_test

import (
	"fmt"

	"github.com/celltrace/pdt/internal/cell"
)

// ExampleMachine shows the minimal host/SPU round trip: the PPE launches
// an SPE program that DMAs data in, transforms it, DMAs it back, and
// reports through its outbound mailbox. The simulation is deterministic,
// so even the cycle count is stable.
func ExampleMachine() {
	cfg := cell.DefaultConfig()
	cfg.MemSize = 4 * cell.MiB
	m := cell.NewMachine(cfg)

	src := m.Alloc(16, 16)
	copy(m.Mem()[src:], "hello, cell be!\x00")

	m.RunMain(func(h cell.Host) {
		hd := h.Run(3, "upper", func(spu cell.SPU) uint32 {
			spu.Get(0, src, 16, 0) // main memory -> local store
			spu.WaitTagAll(1 << 0)
			for i, b := range spu.LS()[:16] {
				if b >= 'a' && b <= 'z' {
					spu.LS()[i] = b - 'a' + 'A'
				}
			}
			spu.Compute(16)        // model the loop's cycles
			spu.Put(0, src, 16, 1) // local store -> main memory
			spu.WaitTagAll(1 << 1)
			spu.WriteOutMbox(16) // bytes processed
			return 0
		})
		n := h.ReadOutMbox(3)
		h.Wait(hd)
		fmt.Printf("SPE3 processed %d bytes: %s\n", n, m.Mem()[src:src+15])
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("finished at cycle %d\n", m.Now())
	// Output:
	// SPE3 processed 16 bytes: HELLO, CELL BE!
	// finished at cycle 2654
}
