package cell

import (
	"context"
	"fmt"

	"github.com/celltrace/pdt/internal/sim"
)

// Machine is one simulated Cell BE processor plus its main memory.
type Machine struct {
	cfg Config
	eng *sim.Engine

	mem       []byte
	allocNext uint64

	eib    *sim.BandwidthServer // data rings
	memBus *sim.BandwidthServer // memory interface controller

	spes []*SPE

	atomicUnit *sim.Resource // serializes atomic line operations

	// SPUWrap, when non-nil, wraps every SPU context handed to a program
	// (the PDT instrumented runtime installs itself here, playing the
	// role of the instrumented SPU libraries). The returned finish hook,
	// if non-nil, runs after the program returns with its exit code.
	SPUWrap SPUWrapper
	// HostWrap likewise wraps every Host context (instrumented libspe2).
	HostWrap func(Host) Host

	// DMAStall, when non-nil, is consulted once per MFC command as it
	// starts executing and returns extra cycles the command must stall
	// before touching the interconnect (fault injection). The stall holds
	// the MFC's in-order execution slot, so it backpressures the whole
	// command queue exactly as a slow real transfer would.
	DMAStall func(spe, tag int, now uint64) uint64
}

// SPUWrapper wraps an SPU context at program start; see Machine.SPUWrap.
type SPUWrapper func(u SPU, name string) (SPU, func(exitCode uint32))

// NewMachine builds a machine from cfg. Call RunMain to install the PPE
// main program, then Run to simulate.
func NewMachine(cfg Config) *Machine {
	cfg.validate()
	eng := sim.NewEngine()
	m := &Machine{
		cfg:        cfg,
		eng:        eng,
		mem:        make([]byte, cfg.MemSize),
		eib:        sim.NewBandwidthServer(eng, cfg.EIBRings, cfg.EIBBytesPerCycle, cfg.EIBStartup),
		memBus:     sim.NewBandwidthServer(eng, 1, cfg.MemBytesPerCycle, cfg.MemLatency),
		atomicUnit: sim.NewResource(eng, 1),
	}
	for i := 0; i < cfg.NumSPEs; i++ {
		m.spes = append(m.spes, newSPE(m, i))
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Engine exposes the simulation engine (tests and the harness use it).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Now returns the current simulated cycle.
func (m *Machine) Now() uint64 { return m.eng.Now() }

// Timebase returns the current timebase tick (cycles / TimebaseDiv).
func (m *Machine) Timebase() uint64 { return m.eng.Now() / m.cfg.TimebaseDiv }

// Mem exposes the simulated main memory. Host code may read/write it
// directly (the PPE has cache-coherent access to main storage); timing for
// bulk PPE access should be modeled with Host.Compute.
func (m *Machine) Mem() []byte { return m.mem }

// Alloc carves size bytes out of main memory at the given alignment and
// returns the effective address. It panics when memory is exhausted
// (simulated machines are sized by the caller).
func (m *Machine) Alloc(size, align int) uint64 {
	if size < 0 {
		panic("cell: Alloc negative size")
	}
	if align <= 0 {
		align = 1
	}
	a := uint64(align)
	next := (m.allocNext + a - 1) / a * a
	if next+uint64(size) > uint64(len(m.mem)) {
		panic(fmt.Sprintf("cell: out of simulated memory (%d requested at %d of %d)",
			size, next, len(m.mem)))
	}
	m.allocNext = next + uint64(size)
	return next
}

// SPE returns SPE number i.
func (m *Machine) SPE(i int) *SPE { return m.spes[i] }

// NumSPEs returns the configured SPE count.
func (m *Machine) NumSPEs() int { return len(m.spes) }

// resolveEA maps an effective address range onto its backing storage:
// main memory or some SPE's local store. It panics on unmapped or
// straddling ranges, as the hardware would raise an MFC exception.
func (m *Machine) resolveEA(ea uint64, size int) (buf []byte, isLS bool, spe int) {
	end := ea + uint64(size)
	if end <= uint64(len(m.mem)) {
		return m.mem[ea:end], false, -1
	}
	if ea >= LSBaseEA {
		idx := int((ea - LSBaseEA) / LSSpanEA)
		off := (ea - LSBaseEA) % LSSpanEA
		if idx < len(m.spes) && off+uint64(size) <= uint64(len(m.spes[idx].ls)) {
			return m.spes[idx].ls[off : off+uint64(size)], true, idx
		}
	}
	panic(fmt.Sprintf("cell: DMA exception: EA range [0x%x,0x%x) unmapped", ea, end))
}

// signalReg resolves SPE spe's signal-notification register 1 or 2,
// panicking on bad indices (the hardware would raise an exception for an
// unmapped problem-state access).
func (m *Machine) signalReg(spe, reg int) *signalReg {
	if spe < 0 || spe >= len(m.spes) {
		panic(fmt.Sprintf("cell: signal target SPE %d out of range", spe))
	}
	switch reg {
	case 1:
		return m.spes[spe].sig1
	case 2:
		return m.spes[spe].sig2
	}
	panic(fmt.Sprintf("cell: signal register %d out of range", reg))
}

// LSEA returns the effective address at which SPE i's local store offset
// off is aliased (for SPE-to-SPE and PPE-to-LS DMA).
func LSEA(spe int, off uint64) uint64 {
	return LSBaseEA + uint64(spe)*LSSpanEA + off
}

// RunMain installs and schedules the PPE main program. The Host passed to
// fn must only be used from within fn (it is bound to fn's process).
func (m *Machine) RunMain(fn func(h Host)) { m.spawnHost("ppe:main", fn) }

// spawnHost starts a PPE thread process running fn.
func (m *Machine) spawnHost(name string, fn func(h Host)) {
	m.eng.Spawn(name, func(p *sim.Proc) {
		var h Host = &hostCtx{m: m, p: p, name: name}
		if m.HostWrap != nil {
			h = m.HostWrap(h)
		}
		fn(h)
	})
}

// CrashAt schedules a whole-machine crash: at the given cycle the
// simulation stops dead (Run returns sim.ErrStopped) with every process —
// SPU programs, MFC transfers, PPE threads — abandoned mid-flight, the
// model of a hard fault while the workload runs. If everything has
// already finished by then, the crash is a no-op and Run returns
// normally. Call before Run.
func (m *Machine) CrashAt(cycle uint64) {
	m.eng.SpawnAt(cycle, "fault:kill", func(p *sim.Proc) {
		e := p.Engine()
		if e.Live() > 1 { // anything besides this killer still running?
			e.Stop()
		}
	})
}

// Run simulates until all processes finish (deadlocks propagate from the
// kernel as errors).
func (m *Machine) Run() error { return m.eng.Run() }

// RunContext simulates like Run but aborts with ctx.Err() when the
// context is cancelled or its deadline expires, unwinding every live
// process. Wall-clock bounded runs (`pdt-run -timeout`) use it to keep a
// stuck or runaway simulation diagnosable.
func (m *Machine) RunContext(ctx context.Context) error { return m.eng.RunContext(ctx) }

// EIBStats returns lifetime EIB totals (bytes, transfers, busy ring-cycles).
func (m *Machine) EIBStats() (bytes, transfers, busy uint64) { return m.eib.Stats() }

// MemBusStats returns lifetime memory-interface totals.
func (m *Machine) MemBusStats() (bytes, transfers, busy uint64) { return m.memBus.Stats() }
