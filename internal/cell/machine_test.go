package cell

import (
	"strings"
	"testing"
)

func testMachine(t *testing.T, mut func(*Config)) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MemSize = 4 * MiB // keep tests light
	if mut != nil {
		mut(&cfg)
	}
	return NewMachine(cfg)
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.validate() // must not panic
	if cfg.NumSPEs != 8 {
		t.Fatalf("NumSPEs = %d, want 8", cfg.NumSPEs)
	}
	if cfg.LocalStore != 256*KiB {
		t.Fatalf("LocalStore = %d, want 256 KiB", cfg.LocalStore)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero SPEs", func(c *Config) { c.NumSPEs = 0 }},
		{"too many SPEs", func(c *Config) { c.NumSPEs = 17 }},
		{"zero mem", func(c *Config) { c.MemSize = 0 }},
		{"mem overlaps LS window", func(c *Config) { c.MemSize = LSBaseEA + 1 }},
		{"zero LS", func(c *Config) { c.LocalStore = 0 }},
		{"LS exceeds span", func(c *Config) { c.LocalStore = LSSpanEA + 1 }},
		{"zero timebase div", func(c *Config) { c.TimebaseDiv = 0 }},
		{"zero MFC depth", func(c *Config) { c.MFCQueueDepth = 0 }},
		{"zero mbox depth", func(c *Config) { c.InMboxDepth = 0 }},
		{"zero EIB rings", func(c *Config) { c.EIBRings = 0 }},
		{"zero mem bandwidth", func(c *Config) { c.MemBytesPerCycle = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			defer func() {
				if recover() == nil {
					t.Errorf("%s: validate did not panic", tc.name)
				}
			}()
			cfg.validate()
		})
	}
}

func TestAllocAlignment(t *testing.T) {
	m := testMachine(t, nil)
	a := m.Alloc(10, 1)
	b := m.Alloc(16, 128)
	c := m.Alloc(1, 16)
	if a != 0 {
		t.Fatalf("first alloc at %d, want 0", a)
	}
	if b%128 != 0 {
		t.Fatalf("alloc not 128-aligned: %d", b)
	}
	if c%16 != 0 || c < b+16 {
		t.Fatalf("third alloc misplaced: %d", c)
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	m := testMachine(t, func(c *Config) { c.MemSize = 1 * KiB })
	defer func() {
		if recover() == nil {
			t.Fatal("alloc past end did not panic")
		}
	}()
	m.Alloc(2*KiB, 1)
}

func TestResolveEAMainMemory(t *testing.T) {
	m := testMachine(t, nil)
	buf, isLS, spe := m.resolveEA(128, 64)
	if isLS || spe != -1 || len(buf) != 64 {
		t.Fatalf("resolveEA main mem wrong: isLS=%v spe=%d len=%d", isLS, spe, len(buf))
	}
	buf[0] = 0xAB
	if m.Mem()[128] != 0xAB {
		t.Fatal("resolved buffer does not alias main memory")
	}
}

func TestResolveEALocalStore(t *testing.T) {
	m := testMachine(t, nil)
	ea := LSEA(3, 256)
	buf, isLS, spe := m.resolveEA(ea, 16)
	if !isLS || spe != 3 {
		t.Fatalf("resolveEA LS wrong: isLS=%v spe=%d", isLS, spe)
	}
	buf[0] = 0xCD
	if m.SPE(3).LS()[256] != 0xCD {
		t.Fatal("resolved buffer does not alias SPE 3 local store")
	}
}

func TestResolveEAUnmappedPanics(t *testing.T) {
	m := testMachine(t, nil)
	for _, tc := range []struct {
		name string
		ea   uint64
		size int
	}{
		{"hole between mem and LS", uint64(4 * MiB), 16},
		{"past last SPE", LSBaseEA + 16*LSSpanEA, 16},
		{"straddles LS end", LSEA(0, uint64(256*KiB-8)), 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			m.resolveEA(tc.ea, tc.size)
		})
	}
}

func TestTimebaseDivision(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		h.Compute(400)
		if tb := h.Timebase(); tb != 10 {
			t.Errorf("Timebase after 400 cycles = %d, want 10 (div 40)", tb)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunMainAndSPELaunch(t *testing.T) {
	m := testMachine(t, nil)
	var exit uint32
	m.RunMain(func(h Host) {
		hd := h.Run(0, "prog", func(spu SPU) uint32 {
			spu.Compute(100)
			return 42
		})
		exit = h.Wait(hd)
		if !hd.Done() {
			t.Error("handle not done after Wait")
		}
		if hd.ExitCode() != 42 {
			t.Errorf("ExitCode = %d", hd.ExitCode())
		}
		if hd.Name() != "prog" || hd.SPE().Index() != 0 {
			t.Error("handle metadata wrong")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if exit != 42 {
		t.Fatalf("exit = %d, want 42", exit)
	}
}

func TestSPEDoubleStartPanics(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		block := func(spu SPU) uint32 { spu.Compute(1000000); return 0 }
		h.Run(0, "first", block)
		defer func() {
			if recover() == nil {
				t.Error("second Run on busy SPE did not panic")
			}
			panic("unwind") // keep the machine from deadlocking on the blocked SPE
		}()
		h.Run(0, "second", block)
	})
	defer func() { recover() }()
	_ = m.Run()
}

func TestHostSpawnThread(t *testing.T) {
	m := testMachine(t, nil)
	ran := false
	m.RunMain(func(h Host) {
		h.Spawn("ppe:thread1", func(h2 Host) {
			h2.Compute(10)
			ran = true
		})
		h.Compute(100)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("spawned PPE thread did not run")
	}
}

func TestStatsAccessors(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		src := h.Alloc(1024, 16)
		hd := h.Run(0, "dma", func(spu SPU) uint32 {
			spu.Get(0, src, 1024, 0)
			spu.WaitTagAll(1 << 0)
			return 0
		})
		h.Wait(hd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if b, n, busy := m.EIBStats(); b != 1024 || n != 1 || busy == 0 {
		t.Fatalf("EIBStats = %d,%d,%d", b, n, busy)
	}
	if b, n, _ := m.MemBusStats(); b != 1024 || n != 1 {
		t.Fatalf("MemBusStats = %d,%d", b, n)
	}
	if cmds, bytes, lat := m.SPE(0).MFCStats(); cmds != 1 || bytes != 1024 || lat == 0 {
		t.Fatalf("MFCStats = %d,%d,%d", cmds, bytes, lat)
	}
}

func TestLSEAMapping(t *testing.T) {
	if LSEA(0, 0) != LSBaseEA {
		t.Fatal("LSEA(0,0) wrong")
	}
	if LSEA(7, 0x80) != LSBaseEA+7*LSSpanEA+0x80 {
		t.Fatal("LSEA(7,0x80) wrong")
	}
}

func TestCmdKindString(t *testing.T) {
	for k, want := range map[cmdKind]string{
		cmdGet: "GET", cmdPut: "PUT", cmdGetList: "GETL", cmdPutList: "PUTL",
	} {
		if k.String() != want {
			t.Fatalf("cmdKind %d String = %q", k, k.String())
		}
	}
	if !strings.Contains(cmdKind(99).String(), "?") {
		t.Fatal("unknown cmdKind should stringify to ?")
	}
}
