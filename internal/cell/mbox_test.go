package cell

import "testing"

func TestMailboxPPEToSPU(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		hd := h.Run(0, "rx", func(spu SPU) uint32 {
			if spu.InMboxCount() != 0 {
				return 9
			}
			a := spu.ReadInMbox()
			b := spu.ReadInMbox()
			if a != 0xAAAA && b != 0xBBBB {
				return 1
			}
			return 0
		})
		h.Compute(500)
		h.WriteInMbox(0, 0xAAAA)
		h.WriteInMbox(0, 0xBBBB)
		if code := h.Wait(hd); code != 0 {
			t.Errorf("exit = %d", code)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxSPUToPPEBlocksWhenFull(t *testing.T) {
	// Outbound depth 1: second write stalls until the PPE reads.
	m := testMachine(t, nil)
	var secondWriteStall uint64
	m.RunMain(func(h Host) {
		hd := h.Run(0, "tx", func(spu SPU) uint32 {
			spu.WriteOutMbox(1)
			before := spu.Now()
			spu.WriteOutMbox(2) // stalls: depth 1
			secondWriteStall = spu.Now() - before
			return 0
		})
		h.Compute(10000)
		if v := h.ReadOutMbox(0); v != 1 {
			t.Errorf("first read = %d", v)
		}
		if v := h.ReadOutMbox(0); v != 2 {
			t.Errorf("second read = %d", v)
		}
		h.Wait(hd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if secondWriteStall < 5000 {
		t.Fatalf("second write stalled only %d cycles; full-mailbox stall missing", secondWriteStall)
	}
}

func TestMailboxTryVariants(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		if _, ok := h.TryReadOutMbox(0); ok {
			t.Error("TryReadOutMbox on empty succeeded")
		}
		hd := h.Run(0, "try", func(spu SPU) uint32 {
			if _, ok := spu.TryReadInMbox(); ok {
				return 1
			}
			if !spu.TryWriteOutMbox(7) {
				return 2
			}
			if spu.TryWriteOutMbox(8) { // depth 1: full
				return 3
			}
			// wait for inbound
			for {
				if v, ok := spu.TryReadInMbox(); ok {
					if v != 55 {
						return 4
					}
					break
				}
				spu.Compute(100)
			}
			return 0
		})
		h.Compute(2000)
		if v, ok := h.TryReadOutMbox(0); !ok || v != 7 {
			t.Errorf("TryReadOutMbox = %d,%v", v, ok)
		}
		if !h.TryWriteInMbox(0, 55) {
			t.Error("TryWriteInMbox failed with space")
		}
		if code := h.Wait(hd); code != 0 {
			t.Errorf("exit = %d", code)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInterruptingMailbox(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		hd := h.Run(0, "intr", func(spu SPU) uint32 {
			spu.Compute(1000)
			spu.WriteOutIntrMbox(0xDEAD)
			return 0
		})
		if v := h.ReadOutIntrMbox(0); v != 0xDEAD {
			t.Errorf("intr mbox = %#x", v)
		}
		h.Wait(hd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInMboxDepthBackpressure(t *testing.T) {
	m := testMachine(t, nil) // depth 4
	var fifthWriteAt uint64
	m.RunMain(func(h Host) {
		hd := h.Run(0, "slowrx", func(spu SPU) uint32 {
			spu.Compute(50000)
			for i := 0; i < 5; i++ {
				spu.ReadInMbox()
			}
			return 0
		})
		for i := 0; i < 4; i++ {
			h.WriteInMbox(0, uint32(i))
		}
		h.WriteInMbox(0, 4) // blocks until the SPU drains one
		fifthWriteAt = h.Now()
		h.Wait(hd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if fifthWriteAt < 50000 {
		t.Fatalf("fifth write completed at %d, want >= 50000 (blocked on full mailbox)", fifthWriteAt)
	}
}

func TestSignalNotificationORMode(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		hd := h.Run(0, "sig", func(spu SPU) uint32 {
			spu.Compute(10000) // let both PPE writes accumulate first
			v := spu.ReadSignal1()
			if v != 0b101 { // both writes OR'ed together
				return 1
			}
			// Register must be clear now; next read blocks for sig2 path.
			w := spu.ReadSignal2()
			if w != 0x80 {
				return 2
			}
			return 0
		})
		h.Compute(100)
		h.WriteSignal1(0, 0b001)
		h.WriteSignal1(0, 0b100)
		h.Compute(100)
		h.WriteSignal2(0, 0x80)
		if code := h.Wait(hd); code != 0 {
			t.Errorf("exit = %d", code)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSignalReadClears(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		hd := h.Run(0, "sigclear", func(spu SPU) uint32 {
			if spu.ReadSignal1() == 0 {
				return 1
			}
			// A second read must block until a new signal arrives.
			start := spu.Now()
			spu.ReadSignal1()
			if spu.Now()-start < 1000 {
				return 2
			}
			return 0
		})
		h.WriteSignal1(0, 1)
		h.Compute(100000)
		h.WriteSignal1(0, 2)
		if code := h.Wait(hd); code != 0 {
			t.Errorf("exit = %d", code)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDecrementerCountsDownAtTimebase(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		hd := h.Run(0, "decr", func(spu SPU) uint32 {
			d0 := spu.ReadDecr()
			spu.Compute(4000) // 100 timebase ticks at div 40
			d1 := spu.ReadDecr()
			if d0-d1 != 100 {
				t.Errorf("decrementer moved %d, want 100", d0-d1)
			}
			return 0
		})
		h.Wait(hd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDecrAnchorRecorded(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		h.Compute(8000) // 200 timebase ticks
		hd := h.Run(0, "anchor", func(spu SPU) uint32 {
			spu.Compute(10)
			return 0
		})
		h.Wait(hd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tb, loaded := m.SPE(0).DecrAnchor()
	if loaded != 0xFFFFFFFF {
		t.Fatalf("loaded = %#x", loaded)
	}
	if tb < 200 {
		t.Fatalf("anchor timebase = %d, want >= 200", tb)
	}
}

func TestAtomicCASAndAdd(t *testing.T) {
	m := testMachine(t, nil)
	ea := m.Alloc(8, 8)
	m.WriteWord64(ea, 10)
	m.RunMain(func(h Host) {
		if !h.AtomicCAS(ea, 10, 20) {
			t.Error("CAS(10->20) failed")
		}
		if h.AtomicCAS(ea, 10, 30) {
			t.Error("stale CAS succeeded")
		}
		hd := h.Run(0, "atomic", func(spu SPU) uint32 {
			if v := spu.AtomicAdd(ea, 5); v != 25 {
				return 1
			}
			if !spu.AtomicCAS(ea, 25, 100) {
				return 2
			}
			return 0
		})
		if code := h.Wait(hd); code != 0 {
			t.Errorf("exit = %d", code)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if v := m.ReadWord64(ea); v != 100 {
		t.Fatalf("final word = %d, want 100", v)
	}
}

func TestAtomicContentionSerializes(t *testing.T) {
	m := testMachine(t, nil)
	ea := m.Alloc(8, 8)
	const perSPE = 50
	m.RunMain(func(h Host) {
		var hs []*SPEHandle
		for i := 0; i < 4; i++ {
			hs = append(hs, h.Run(i, "inc", func(spu SPU) uint32 {
				for j := 0; j < perSPE; j++ {
					spu.AtomicAdd(ea, 1)
				}
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if v := m.ReadWord64(ea); v != 4*perSPE {
		t.Fatalf("counter = %d, want %d", v, 4*perSPE)
	}
}

func TestAtomicValidation(t *testing.T) {
	m := testMachine(t, nil)
	t.Run("misaligned", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		m.ReadWord64(4)
	})
	t.Run("local store target", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		m.ReadWord64(LSEA(0, 0))
	})
}
