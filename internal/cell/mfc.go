package cell

import (
	"fmt"

	"github.com/celltrace/pdt/internal/sim"
)

// cmdKind enumerates MFC command opcodes we model.
type cmdKind uint8

const (
	cmdGet cmdKind = iota
	cmdPut
	cmdGetList
	cmdPutList
	cmdSndsig
)

func (k cmdKind) String() string {
	switch k {
	case cmdGet:
		return "GET"
	case cmdPut:
		return "PUT"
	case cmdGetList:
		return "GETL"
	case cmdPutList:
		return "PUTL"
	case cmdSndsig:
		return "SNDSIG"
	}
	return "?"
}

// mfcCmd is one queued MFC command.
type mfcCmd struct {
	kind  cmdKind
	lsOff int
	ea    uint64
	size  int
	list  []ListElem
	tag   int

	// sndsig payload
	sigTarget *signalReg
	sigValue  uint32
}

// mfc models one SPE's memory flow controller: a bounded in-order command
// queue serviced asynchronously from the SPU, with per-tag-group completion
// tracking. Each command is executed by its own short-lived simulation
// process; strict queue order is enforced by a FIFO serialization resource,
// and queue-full backpressure stalls the issuing SPU exactly as a write to
// a full MFC command queue stalls a real SPU.
type mfc struct {
	spe    *SPE
	slots  *sim.Resource // command queue occupancy (depth 16)
	serial *sim.Resource // in-order execution

	outstanding [NumTagGroups]int
	tagWaiters  *sim.WaitQueue // broadcast whenever a tag group drains

	totalCmds    uint64
	totalBytes   uint64
	totalLatency uint64
}

func newMFC(s *SPE) *mfc {
	e := s.m.eng
	return &mfc{
		spe:        s,
		slots:      sim.NewResource(e, s.m.cfg.MFCQueueDepth),
		serial:     sim.NewResource(e, 1),
		tagWaiters: sim.NewWaitQueue(e),
	}
}

// checkDMA validates architectural transfer constraints and panics (the
// model's MFC exception) on violations.
func checkDMA(lsOff int, ea uint64, size, tag, lsSize int) {
	if tag < 0 || tag >= NumTagGroups {
		panic(fmt.Sprintf("cell: DMA exception: tag %d out of range", tag))
	}
	if size <= 0 || size > MaxDMASize {
		panic(fmt.Sprintf("cell: DMA exception: size %d out of range (0,%d]", size, MaxDMASize))
	}
	switch size {
	case 1, 2, 4, 8:
		a := uint64(size)
		if uint64(lsOff)%a != 0 || ea%a != 0 {
			panic(fmt.Sprintf("cell: DMA exception: %d-byte transfer misaligned (ls=0x%x ea=0x%x)", size, lsOff, ea))
		}
	default:
		if size%16 != 0 {
			panic(fmt.Sprintf("cell: DMA exception: size %d not 1/2/4/8 or multiple of 16", size))
		}
		if lsOff%16 != 0 || ea%16 != 0 {
			panic(fmt.Sprintf("cell: DMA exception: transfer not 16-byte aligned (ls=0x%x ea=0x%x)", lsOff, ea))
		}
	}
	if lsOff < 0 || lsOff+size > lsSize {
		panic(fmt.Sprintf("cell: DMA exception: LS range [0x%x,0x%x) outside local store", lsOff, lsOff+size))
	}
}

// issue enqueues a command on behalf of the SPU process p, blocking while
// the command queue is full, then returns; execution proceeds
// asynchronously.
func (f *mfc) issue(p *sim.Proc, cmd mfcCmd) {
	switch cmd.kind {
	case cmdSndsig:
		if cmd.tag < 0 || cmd.tag >= NumTagGroups {
			panic(fmt.Sprintf("cell: DMA exception: tag %d out of range", cmd.tag))
		}
	case cmdGet, cmdPut:
		checkDMA(cmd.lsOff, cmd.ea, cmd.size, cmd.tag, len(f.spe.ls))
	case cmdGetList, cmdPutList:
		if len(cmd.list) == 0 {
			panic("cell: DMA exception: empty list command")
		}
		off := cmd.lsOff
		for _, el := range cmd.list {
			checkDMA(off, el.EA, el.Size, cmd.tag, len(f.spe.ls))
			off += el.Size
		}
	}
	p.Delay(f.spe.m.cfg.MFCIssueCost)
	f.slots.Acquire(p, 1) // stall on full command queue
	f.outstanding[cmd.tag]++
	issued := p.Now()
	f.spe.m.eng.Spawn(fmt.Sprintf("mfc%d:%s", f.spe.idx, cmd.kind), func(dp *sim.Proc) {
		f.serial.Acquire(dp, 1) // strict in-order execution
		if st := f.spe.m.DMAStall; st != nil {
			// Injected stall: holds the serial slot, so later commands
			// queue behind it.
			if extra := st(f.spe.idx, cmd.tag, dp.Now()); extra > 0 {
				dp.Delay(extra)
			}
		}
		switch cmd.kind {
		case cmdSndsig:
			// A signal send is a tiny EIB transaction to the target
			// SPE's signal-notification register.
			f.spe.m.eib.Transfer(dp, 4)
			cmd.sigTarget.write(cmd.sigValue)
		case cmdGet, cmdPut:
			f.transfer(dp, cmd.kind == cmdGet, cmd.lsOff, cmd.ea, cmd.size)
		case cmdGetList, cmdPutList:
			off := cmd.lsOff
			for _, el := range cmd.list {
				f.transfer(dp, cmd.kind == cmdGetList, off, el.EA, el.Size)
				off += el.Size
			}
		}
		f.serial.Release(1)
		f.slots.Release(1)
		f.outstanding[cmd.tag]--
		if f.outstanding[cmd.tag] == 0 {
			f.tagWaiters.Broadcast()
		}
		f.totalCmds++
		f.totalLatency += dp.Now() - issued
	})
}

// transfer moves size bytes between local store and the effective-address
// space, holding the EIB for the interconnect segment and the memory
// interface controller for main-storage targets. Latency composes the two
// segments sequentially; sustained bandwidth under load is set by the
// bottleneck server.
func (f *mfc) transfer(dp *sim.Proc, toLS bool, lsOff int, ea uint64, size int) {
	remote, remoteIsLS, _ := f.spe.m.resolveEA(ea, size)
	f.spe.m.eib.Transfer(dp, size)
	if !remoteIsLS {
		f.spe.m.memBus.Transfer(dp, size)
	}
	local := f.spe.ls[lsOff : lsOff+size]
	if toLS {
		copy(local, remote)
	} else {
		copy(remote, local)
	}
	f.totalBytes += uint64(size)
}

// status returns the subset of mask whose tag groups have no outstanding
// commands.
func (f *mfc) status(mask uint32) uint32 {
	var done uint32
	for t := 0; t < NumTagGroups; t++ {
		bit := uint32(1) << uint(t)
		if mask&bit != 0 && f.outstanding[t] == 0 {
			done |= bit
		}
	}
	return done
}

// waitAll blocks p until every tag group in mask has drained.
func (f *mfc) waitAll(p *sim.Proc, mask uint32) {
	for f.status(mask) != mask {
		f.tagWaiters.Wait(p)
	}
}

// waitAny blocks p until at least one tag group in mask has drained and
// returns the drained subset.
func (f *mfc) waitAny(p *sim.Proc, mask uint32) uint32 {
	if mask == 0 {
		return 0
	}
	for {
		if done := f.status(mask); done != 0 {
			return done
		}
		f.tagWaiters.Wait(p)
	}
}
