package cell

import "github.com/celltrace/pdt/internal/sim"

// hostCtx is the concrete (untraced) Host implementation, bound to one PPE
// thread's simulation process.
type hostCtx struct {
	m    *Machine
	p    *sim.Proc
	name string
}

var _ Host = (*hostCtx)(nil)

func (h *hostCtx) NumSPEs() int      { return len(h.m.spes) }
func (h *hostCtx) Machine() *Machine { return h.m }
func (h *hostCtx) Mem() []byte       { return h.m.mem }
func (h *hostCtx) Now() uint64       { return h.p.Now() }
func (h *hostCtx) Timebase() uint64  { return h.m.Timebase() }

func (h *hostCtx) Alloc(size, align int) uint64 { return h.m.Alloc(size, align) }

func (h *hostCtx) Run(spe int, name string, prog SPUProgram) *SPEHandle {
	h.p.Delay(h.m.cfg.SPEStartupCost)
	return h.m.spes[spe].start(name, prog, h.m.SPUWrap)
}

func (h *hostCtx) Wait(hd *SPEHandle) uint32 {
	hd.done.Wait(h.p)
	return hd.exitCode
}

func (h *hostCtx) WriteInMbox(spe int, v uint32) {
	h.p.Delay(h.m.cfg.MboxAccessCost)
	h.m.spes[spe].inMbox.Put(h.p, uint64(v))
}

func (h *hostCtx) TryWriteInMbox(spe int, v uint32) bool {
	h.p.Delay(h.m.cfg.MboxAccessCost)
	return h.m.spes[spe].inMbox.TryPut(uint64(v))
}

func (h *hostCtx) ReadOutMbox(spe int) uint32 {
	h.p.Delay(h.m.cfg.MboxAccessCost)
	return uint32(h.m.spes[spe].outMbox.Get(h.p))
}

func (h *hostCtx) TryReadOutMbox(spe int) (uint32, bool) {
	h.p.Delay(h.m.cfg.MboxAccessCost)
	v, ok := h.m.spes[spe].outMbox.TryGet()
	return uint32(v), ok
}

func (h *hostCtx) ReadOutIntrMbox(spe int) uint32 {
	h.p.Delay(h.m.cfg.MboxAccessCost)
	return uint32(h.m.spes[spe].outIntrMbox.Get(h.p))
}

func (h *hostCtx) WriteSignal1(spe int, v uint32) {
	h.p.Delay(h.m.cfg.SignalCost)
	h.m.spes[spe].sig1.write(v)
}

func (h *hostCtx) WriteSignal2(spe int, v uint32) {
	h.p.Delay(h.m.cfg.SignalCost)
	h.m.spes[spe].sig2.write(v)
}

func (h *hostCtx) DMAGet(spe int, lsOff int, ea uint64, size int, tag int) {
	h.m.spes[spe].mfc.issue(h.p, mfcCmd{kind: cmdGet, lsOff: lsOff, ea: ea, size: size, tag: tag})
}

func (h *hostCtx) DMAPut(spe int, lsOff int, ea uint64, size int, tag int) {
	h.m.spes[spe].mfc.issue(h.p, mfcCmd{kind: cmdPut, lsOff: lsOff, ea: ea, size: size, tag: tag})
}

func (h *hostCtx) DMAWaitTagAll(spe int, mask uint32) {
	h.m.spes[spe].mfc.waitAll(h.p, mask)
}

func (h *hostCtx) Compute(cycles uint64) { h.p.Delay(cycles) }

func (h *hostCtx) AtomicCAS(ea uint64, old, new uint64) bool {
	return h.m.atomicCAS(h.p, ea, old, new)
}

func (h *hostCtx) AtomicAdd(ea uint64, delta uint64) uint64 {
	return h.m.atomicAdd(h.p, ea, delta)
}

func (h *hostCtx) Spawn(name string, fn func(h Host)) {
	h.m.spawnHost(name, fn)
}
