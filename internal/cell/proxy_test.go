package cell

import "testing"

func TestSndsigSPEToSPE(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		rx := h.Run(1, "rx", func(spu SPU) uint32 {
			if v := spu.ReadSignal1(); v != 0xBEEF {
				return 1
			}
			if v := spu.ReadSignal2(); v != 0x77 {
				return 2
			}
			return 0
		})
		tx := h.Run(0, "tx", func(spu SPU) uint32 {
			spu.Compute(1000)
			spu.Sndsig(1, 1, 0xBEEF, 4)
			spu.Sndsig(1, 2, 0x77, 4)
			spu.WaitTagAll(1 << 4) // fence both sends
			return 0
		})
		if code := h.Wait(tx); code != 0 {
			t.Errorf("tx exit %d", code)
		}
		if code := h.Wait(rx); code != 0 {
			t.Errorf("rx exit %d", code)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSndsigORAccumulates(t *testing.T) {
	m := testMachine(t, nil)
	m.RunMain(func(h Host) {
		rx := h.Run(1, "rx", func(spu SPU) uint32 {
			spu.Compute(50000) // let both sends land
			if v := spu.ReadSignal1(); v != 0b11 {
				return 1
			}
			return 0
		})
		tx := h.Run(0, "tx", func(spu SPU) uint32 {
			spu.Sndsig(1, 1, 0b01, 0)
			spu.Sndsig(1, 1, 0b10, 0)
			spu.WaitTagAll(1)
			return 0
		})
		h.Wait(tx)
		if code := h.Wait(rx); code != 0 {
			t.Errorf("rx exit %d", code)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSndsigValidation(t *testing.T) {
	for name, send := range map[string]func(SPU){
		"bad target": func(spu SPU) { spu.Sndsig(99, 1, 1, 0) },
		"bad reg":    func(spu SPU) { spu.Sndsig(0, 3, 1, 0) },
		"bad tag":    func(spu SPU) { spu.Sndsig(0, 1, 1, 32) },
	} {
		t.Run(name, func(t *testing.T) {
			m := testMachine(t, nil)
			m.RunMain(func(h Host) {
				h.Wait(h.Run(1, "bad", func(spu SPU) uint32 {
					defer func() {
						if recover() == nil {
							t.Errorf("%s: no panic", name)
						}
					}()
					send(spu)
					return 0
				}))
			})
			_ = m.Run()
		})
	}
}

func TestProxyDMAGetPut(t *testing.T) {
	m := testMachine(t, nil)
	src := m.Alloc(256, 16)
	dst := m.Alloc(256, 16)
	for i := 0; i < 256; i++ {
		m.Mem()[src+uint64(i)] = byte(i ^ 0x5A)
	}
	m.RunMain(func(h Host) {
		// Load data into a passive SPE's local store by proxy DMA, have
		// the SPE transform it, then read it back by proxy.
		hd := h.Run(2, "passive", func(spu SPU) uint32 {
			// Wait for the host's load to complete (signalled by mbox).
			if spu.ReadInMbox() != 1 {
				return 1
			}
			for i := 0; i < 256; i++ {
				spu.LS()[512+i] ^= 0x5A
			}
			spu.Compute(256)
			spu.WriteOutMbox(2)
			// Park until the host has pulled the result out.
			if spu.ReadInMbox() != 3 {
				return 2
			}
			return 0
		})
		h.DMAGet(2, 512, src, 256, 5)
		h.DMAWaitTagAll(2, 1<<5)
		h.WriteInMbox(2, 1)
		if h.ReadOutMbox(2) != 2 {
			t.Error("transform ack missing")
		}
		h.DMAPut(2, 512, dst, 256, 6)
		h.DMAWaitTagAll(2, 1<<6)
		h.WriteInMbox(2, 3)
		h.Wait(hd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if m.Mem()[dst+uint64(i)] != byte(i) {
			t.Fatalf("dst[%d] = %d, want %d", i, m.Mem()[dst+uint64(i)], byte(i))
		}
	}
}

func TestProxyDMASharesQueueWithSPU(t *testing.T) {
	// Proxy commands occupy the same MFC queue: with depth 1, a host
	// proxy command must stall while an SPU command is outstanding.
	m := testMachine(t, func(c *Config) { c.MFCQueueDepth = 1 })
	src := m.Alloc(16*KiB, 128)
	var proxyIssued uint64
	m.RunMain(func(h Host) {
		hd := h.Run(0, "busy", func(spu SPU) uint32 {
			spu.Get(0, src, 16*KiB, 0) // occupies the single queue slot
			spu.Compute(1)
			return 0
		})
		h.Compute(50) // let the SPU enqueue first
		before := h.Now()
		h.DMAGet(0, 32*KiB, src, 16, 1)
		proxyIssued = h.Now() - before
		h.DMAWaitTagAll(0, 1<<1)
		h.Wait(hd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if proxyIssued < 500 {
		t.Fatalf("proxy issue stalled only %d cycles; shared queue backpressure missing", proxyIssued)
	}
}
