package cell

import (
	"fmt"

	"github.com/celltrace/pdt/internal/sim"
)

// signalReg is one signal-notification register in OR mode: writers OR
// bits in; the SPU read returns and clears the accumulated value.
type signalReg struct {
	value uint32
	wq    *sim.WaitQueue
}

func (s *signalReg) write(v uint32) {
	s.value |= v
	if s.value != 0 {
		s.wq.Broadcast()
	}
}

func (s *signalReg) read(p *sim.Proc) uint32 {
	for s.value == 0 {
		s.wq.Wait(p)
	}
	v := s.value
	s.value = 0
	return v
}

// SPE is one synergistic processing element: local store, MFC, mailboxes
// and signal registers. Program state (the running SPUProgram) is attached
// by Host.Run.
type SPE struct {
	m   *Machine
	idx int
	ls  []byte

	mfc *mfc

	inMbox      *sim.Queue // PPE -> SPU
	outMbox     *sim.Queue // SPU -> PPE
	outIntrMbox *sim.Queue // SPU -> PPE, interrupting

	sig1, sig2 *signalReg

	// decrementer state: loaded value and the timebase tick at load.
	decrLoaded uint32
	decrAnchor uint64

	running bool
}

func newSPE(m *Machine, idx int) *SPE {
	e := m.eng
	s := &SPE{
		m:           m,
		idx:         idx,
		ls:          make([]byte, m.cfg.LocalStore),
		inMbox:      sim.NewQueue(e, m.cfg.InMboxDepth),
		outMbox:     sim.NewQueue(e, m.cfg.OutMboxDepth),
		outIntrMbox: sim.NewQueue(e, m.cfg.OutIntrMboxDepth),
		sig1:        &signalReg{wq: sim.NewWaitQueue(e)},
		sig2:        &signalReg{wq: sim.NewWaitQueue(e)},
	}
	s.mfc = newMFC(s)
	return s
}

// Index returns the SPE number.
func (s *SPE) Index() int { return s.idx }

// LS returns the local store backing array.
func (s *SPE) LS() []byte { return s.ls }

// MFCStats returns lifetime DMA statistics for this SPE's MFC:
// commands executed, bytes moved, and summed command latency in cycles
// (issue to completion).
func (s *SPE) MFCStats() (cmds, bytes, latency uint64) {
	return s.mfc.totalCmds, s.mfc.totalBytes, s.mfc.totalLatency
}

// loadDecrementer models the runtime writing the decrementer at program
// start; PDT records the (timebase, decrementer) anchor pair.
func (s *SPE) loadDecrementer(v uint32) {
	s.decrLoaded = v
	s.decrAnchor = s.m.Timebase()
}

// readDecrementer returns the current down-counter value.
func (s *SPE) readDecrementer() uint32 {
	elapsed := s.m.Timebase() - s.decrAnchor
	return s.decrLoaded - uint32(elapsed)
}

// DecrAnchor returns the anchor pair (timebase tick, loaded value) set at
// program start; the tracing runtime stores it in trace metadata so the
// analyzer can convert decrementer timestamps to timebase time.
func (s *SPE) DecrAnchor() (timebase uint64, loaded uint32) {
	return s.decrAnchor, s.decrLoaded
}

// SPEHandle tracks one launched SPE program from the host side.
type SPEHandle struct {
	spe      *SPE
	name     string
	exitCode uint32
	done     *sim.Event
}

// SPE returns the SPE the program was launched on.
func (h *SPEHandle) SPE() *SPE { return h.spe }

// Name returns the program name given to Run.
func (h *SPEHandle) Name() string { return h.name }

// Done reports whether the program has exited.
func (h *SPEHandle) Done() bool { return h.done.IsSet() }

// ExitCode returns the program's exit code; valid only after Done.
func (h *SPEHandle) ExitCode() uint32 { return h.exitCode }

// start spawns the SPU program as a simulation process.
func (s *SPE) start(name string, prog SPUProgram, wrap SPUWrapper) *SPEHandle {
	if s.running {
		panic(fmt.Sprintf("cell: SPE %d already running a program", s.idx))
	}
	s.running = true
	s.loadDecrementer(0xFFFFFFFF)
	h := &SPEHandle{spe: s, name: name, done: sim.NewEvent(s.m.eng)}
	s.m.eng.Spawn(fmt.Sprintf("spe%d:%s", s.idx, name), func(p *sim.Proc) {
		var spu SPU = &spuCtx{spe: s, p: p}
		var finish func(uint32)
		if wrap != nil {
			spu, finish = wrap(spu, name)
		}
		h.exitCode = prog(spu)
		if finish != nil {
			finish(h.exitCode)
		}
		s.running = false
		h.done.Set()
	})
	return h
}
