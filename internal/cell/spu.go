package cell

import "github.com/celltrace/pdt/internal/sim"

// spuCtx is the concrete (untraced) SPU implementation, bound to the SPE
// program's simulation process.
type spuCtx struct {
	spe *SPE
	p   *sim.Proc
}

var _ SPU = (*spuCtx)(nil)

func (c *spuCtx) Index() int  { return c.spe.idx }
func (c *spuCtx) LS() []byte  { return c.spe.ls }
func (c *spuCtx) Now() uint64 { return c.p.Now() }

func (c *spuCtx) Get(lsOff int, ea uint64, size int, tag int) {
	c.spe.mfc.issue(c.p, mfcCmd{kind: cmdGet, lsOff: lsOff, ea: ea, size: size, tag: tag})
}

func (c *spuCtx) Put(lsOff int, ea uint64, size int, tag int) {
	c.spe.mfc.issue(c.p, mfcCmd{kind: cmdPut, lsOff: lsOff, ea: ea, size: size, tag: tag})
}

func (c *spuCtx) GetList(lsOff int, list []ListElem, tag int) {
	c.spe.mfc.issue(c.p, mfcCmd{kind: cmdGetList, lsOff: lsOff, list: list, tag: tag})
}

func (c *spuCtx) PutList(lsOff int, list []ListElem, tag int) {
	c.spe.mfc.issue(c.p, mfcCmd{kind: cmdPutList, lsOff: lsOff, list: list, tag: tag})
}

func (c *spuCtx) WaitTagAll(mask uint32) { c.spe.mfc.waitAll(c.p, mask) }

func (c *spuCtx) WaitTagAny(mask uint32) uint32 { return c.spe.mfc.waitAny(c.p, mask) }

func (c *spuCtx) TagStatus(mask uint32) uint32 { return c.spe.mfc.status(mask) }

func (c *spuCtx) ReadInMbox() uint32 {
	c.p.Delay(c.spe.m.cfg.MboxAccessCost)
	return uint32(c.spe.inMbox.Get(c.p))
}

func (c *spuCtx) TryReadInMbox() (uint32, bool) {
	c.p.Delay(c.spe.m.cfg.MboxAccessCost)
	v, ok := c.spe.inMbox.TryGet()
	return uint32(v), ok
}

func (c *spuCtx) InMboxCount() int { return c.spe.inMbox.Len() }

func (c *spuCtx) WriteOutMbox(v uint32) {
	c.p.Delay(c.spe.m.cfg.MboxAccessCost)
	c.spe.outMbox.Put(c.p, uint64(v))
}

func (c *spuCtx) TryWriteOutMbox(v uint32) bool {
	c.p.Delay(c.spe.m.cfg.MboxAccessCost)
	return c.spe.outMbox.TryPut(uint64(v))
}

func (c *spuCtx) WriteOutIntrMbox(v uint32) {
	c.p.Delay(c.spe.m.cfg.MboxAccessCost)
	c.spe.outIntrMbox.Put(c.p, uint64(v))
}

func (c *spuCtx) ReadSignal1() uint32 {
	c.p.Delay(c.spe.m.cfg.SignalCost)
	return c.spe.sig1.read(c.p)
}

func (c *spuCtx) ReadSignal2() uint32 {
	c.p.Delay(c.spe.m.cfg.SignalCost)
	return c.spe.sig2.read(c.p)
}

func (c *spuCtx) Sndsig(spe int, reg int, v uint32, tag int) {
	c.spe.mfc.issue(c.p, mfcCmd{
		kind: cmdSndsig, tag: tag,
		sigTarget: c.spe.m.signalReg(spe, reg), sigValue: v,
	})
}

func (c *spuCtx) ReadDecr() uint32 { return c.spe.readDecrementer() }

func (c *spuCtx) Compute(cycles uint64) { c.p.Delay(cycles) }

func (c *spuCtx) AtomicCAS(ea uint64, old, new uint64) bool {
	return c.spe.m.atomicCAS(c.p, ea, old, new)
}

func (c *spuCtx) AtomicAdd(ea uint64, delta uint64) uint64 {
	return c.spe.m.atomicAdd(c.p, ea, delta)
}
