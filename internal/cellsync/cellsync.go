// Package cellsync provides SPE-side synchronization primitives built on
// the MFC atomic (reservation) operations: a sense-reversing barrier, a
// spin mutex, and a dynamic work queue. These are the substrate of the
// paper's "sync" event group: each primitive emits PDT sync events when
// the calling context is traced, so the analyzer can attribute time spent
// in synchronization.
//
// All primitives live in main storage (one or two 8-byte words each) and
// work identically from SPEs and the PPE.
package cellsync

import (
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
)

// spinDelay is the backoff between atomic polls, in cycles. Polling a
// contended line on real hardware costs a reservation round trip; the
// backoff keeps the simulated atomic unit from livelocking the schedule.
const spinDelay = 200

// atomicOps abstracts the two contexts the primitives run under.
type atomicOps interface {
	AtomicCAS(ea uint64, old, new uint64) bool
	AtomicAdd(ea uint64, delta uint64) uint64
	Compute(cycles uint64)
}

var (
	_ atomicOps = (cell.SPU)(nil)
	_ atomicOps = (cell.Host)(nil)
)

// syncEvent emits a sync-group event when ctx is a traced SPU; host
// contexts and untraced SPUs skip it (PPE sync activity is visible through
// the atomic event group instead).
func syncEvent(ctx atomicOps, id event.ID, args ...uint64) {
	if spu, ok := ctx.(cell.SPU); ok {
		core.Sync(spu, id, args...)
	}
}

// Barrier is a sense-reversing barrier for a fixed number of parties,
// occupying two 8-byte words in main storage: a count and a generation.
type Barrier struct {
	countEA uint64
	genEA   uint64
	parties uint64
	id      uint64
}

// NewBarrier allocates barrier state in main memory for the given number
// of parties. id labels the barrier in trace events.
func NewBarrier(m *cell.Machine, id uint64, parties int) *Barrier {
	if parties <= 0 {
		panic("cellsync: barrier parties must be positive")
	}
	b := &Barrier{
		countEA: m.Alloc(8, 8),
		genEA:   m.Alloc(8, 8),
		parties: uint64(parties),
		id:      id,
	}
	m.WriteWord64(b.countEA, 0)
	m.WriteWord64(b.genEA, 0)
	return b
}

// Wait blocks until all parties arrive.
func (b *Barrier) Wait(ctx atomicOps) {
	syncEvent(ctx, event.SyncBarrierEnter, b.id)
	// Read the generation BEFORE arriving: once we increment the count,
	// the last arrival may bump the generation at any moment.
	gen := ctx.AtomicAdd(b.genEA, 0) // read via add-zero
	arrived := ctx.AtomicAdd(b.countEA, 1)
	if arrived == b.parties {
		// Last arrival: reset the count, then advance the generation.
		if !ctx.AtomicCAS(b.countEA, b.parties, 0) {
			panic("cellsync: barrier count corrupted (too many parties?)")
		}
		ctx.AtomicAdd(b.genEA, 1)
	} else {
		for ctx.AtomicAdd(b.genEA, 0) == gen {
			ctx.Compute(spinDelay)
		}
	}
	syncEvent(ctx, event.SyncBarrierExit, b.id)
}

// Mutex is a spin mutex on one 8-byte word (0 = free, owner id+1 = held).
type Mutex struct {
	ea uint64
}

// NewMutex allocates mutex state in main memory.
func NewMutex(m *cell.Machine) *Mutex {
	mu := &Mutex{ea: m.Alloc(8, 8)}
	m.WriteWord64(mu.ea, 0)
	return mu
}

// EA returns the mutex word's effective address (its identity in traces).
func (mu *Mutex) EA() uint64 { return mu.ea }

// Lock acquires the mutex, spinning with backoff.
func (mu *Mutex) Lock(ctx atomicOps, owner uint64) {
	syncEvent(ctx, event.SyncMutexEnter, mu.ea)
	for !ctx.AtomicCAS(mu.ea, 0, owner+1) {
		ctx.Compute(spinDelay)
	}
	syncEvent(ctx, event.SyncMutexAcquired, mu.ea)
}

// Unlock releases the mutex; it panics if the caller is not the owner.
func (mu *Mutex) Unlock(ctx atomicOps, owner uint64) {
	if !ctx.AtomicCAS(mu.ea, owner+1, 0) {
		panic("cellsync: Unlock by non-owner")
	}
	syncEvent(ctx, event.SyncMutexRelease, mu.ea)
}

// WorkQueue is a dynamic work distributor: a single shared counter in main
// storage handing out item indexes [0, total). It is the load-balancing
// device of the paper's dynamic-partitioning use case.
type WorkQueue struct {
	ea    uint64
	total uint64
	id    uint64
}

// NewWorkQueue allocates a work queue handing out total items.
func NewWorkQueue(m *cell.Machine, id uint64, total int) *WorkQueue {
	if total < 0 {
		panic("cellsync: negative work-queue size")
	}
	q := &WorkQueue{ea: m.Alloc(8, 8), total: uint64(total), id: id}
	m.WriteWord64(q.ea, 0)
	return q
}

// Next claims the next item index; ok is false when the queue is drained.
func (q *WorkQueue) Next(ctx atomicOps) (item uint64, ok bool) {
	syncEvent(ctx, event.SyncWQGetEnter, q.id)
	v := ctx.AtomicAdd(q.ea, 1) - 1
	if v >= q.total {
		syncEvent(ctx, event.SyncWQGetExit, q.id, ^uint64(0))
		return 0, false
	}
	syncEvent(ctx, event.SyncWQGetExit, q.id, v)
	return v, true
}

// Total returns the number of items the queue hands out.
func (q *WorkQueue) Total() uint64 { return q.total }
