package cellsync

import (
	"bytes"
	"testing"

	"github.com/celltrace/pdt/internal/analyzer"
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
)

func newMachine(t *testing.T) *cell.Machine {
	t.Helper()
	cfg := cell.DefaultConfig()
	cfg.MemSize = 16 * cell.MiB
	return cell.NewMachine(cfg)
}

func TestBarrierAllArrive(t *testing.T) {
	m := newMachine(t)
	b := NewBarrier(m, 1, 4)
	var exitTimes []uint64
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < 4; i++ {
			w := uint64((i + 1) * 10000) // staggered arrivals
			hs = append(hs, h.Run(i, "bar", func(spu cell.SPU) uint32 {
				spu.Compute(w)
				b.Wait(spu)
				exitTimes = append(exitTimes, spu.Now())
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(exitTimes) != 4 {
		t.Fatalf("exits = %d", len(exitTimes))
	}
	// Nobody may exit before the last arrival (~40000 cycles).
	for i, et := range exitTimes {
		if et < 40000 {
			t.Fatalf("party %d exited at %d, before last arrival", i, et)
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	m := newMachine(t)
	const parties, rounds = 3, 5
	b := NewBarrier(m, 1, parties)
	counts := make([]int, rounds)
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < parties; i++ {
			idx := i
			hs = append(hs, h.Run(i, "gen", func(spu cell.SPU) uint32 {
				for r := 0; r < rounds; r++ {
					spu.Compute(uint64(1000 * (idx + 1)))
					b.Wait(spu)
					counts[r]++
				}
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for r, c := range counts {
		if c != parties {
			t.Fatalf("round %d count = %d", r, c)
		}
	}
}

func TestBarrierWithPPEParty(t *testing.T) {
	m := newMachine(t)
	b := NewBarrier(m, 2, 2)
	m.RunMain(func(h cell.Host) {
		hd := h.Run(0, "p", func(spu cell.SPU) uint32 {
			b.Wait(spu)
			return 0
		})
		h.Compute(5000)
		b.Wait(h)
		h.Wait(hd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierInvalidParties(t *testing.T) {
	m := newMachine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBarrier(m, 0, 0)
}

func TestMutexExclusion(t *testing.T) {
	m := newMachine(t)
	mu := NewMutex(m)
	counterEA := m.Alloc(8, 8)
	const perSPE = 20
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < 4; i++ {
			owner := uint64(i)
			hs = append(hs, h.Run(i, "mux", func(spu cell.SPU) uint32 {
				for j := 0; j < perSPE; j++ {
					mu.Lock(spu, owner)
					// Non-atomic read-modify-write under the lock: only
					// safe if the mutex actually excludes.
					v := m.ReadWord64(counterEA)
					spu.Compute(50)
					m.WriteWord64(counterEA, v+1)
					mu.Unlock(spu, owner)
				}
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if v := m.ReadWord64(counterEA); v != 4*perSPE {
		t.Fatalf("counter = %d, want %d (mutual exclusion broken)", v, 4*perSPE)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	m := newMachine(t)
	mu := NewMutex(m)
	m.RunMain(func(h cell.Host) {
		mu.Lock(h, 1)
		defer func() {
			if recover() == nil {
				t.Error("no panic on foreign unlock")
			}
			mu.Unlock(h, 1)
		}()
		mu.Unlock(h, 2)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkQueueDistributesAllItemsOnce(t *testing.T) {
	m := newMachine(t)
	const items = 100
	q := NewWorkQueue(m, 7, items)
	var claimed [items]int
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < 4; i++ {
			hs = append(hs, h.Run(i, "wq", func(spu cell.SPU) uint32 {
				for {
					item, ok := q.Next(spu)
					if !ok {
						return 0
					}
					claimed[item]++
					spu.Compute(100)
				}
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range claimed {
		if c != 1 {
			t.Fatalf("item %d claimed %d times", i, c)
		}
	}
	if q.Total() != items {
		t.Fatalf("Total = %d", q.Total())
	}
}

func TestWorkQueueEmptyDrainsImmediately(t *testing.T) {
	m := newMachine(t)
	q := NewWorkQueue(m, 1, 0)
	m.RunMain(func(h cell.Host) {
		if _, ok := q.Next(h); ok {
			t.Error("empty queue yielded an item")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncEventsAppearInTrace(t *testing.T) {
	cfg := cell.DefaultConfig()
	cfg.MemSize = 16 * cell.MiB
	m := cell.NewMachine(cfg)
	s := core.NewSession(m, core.DefaultTraceConfig())
	s.Attach()
	b := NewBarrier(m, 3, 2)
	q := NewWorkQueue(m, 9, 4)
	mu := NewMutex(m)
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < 2; i++ {
			owner := uint64(i)
			hs = append(hs, h.Run(i, "sync", func(spu cell.SPU) uint32 {
				b.Wait(spu)
				for {
					if _, ok := q.Next(spu); !ok {
						break
					}
					mu.Lock(spu, owner)
					spu.Compute(100)
					mu.Unlock(spu, owner)
				}
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := analyzer.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[event.ID]int{}
	for _, e := range tr.Events() {
		counts[e.ID]++
	}
	if counts[event.SyncBarrierEnter] != 2 || counts[event.SyncBarrierExit] != 2 {
		t.Fatalf("barrier events = %d/%d", counts[event.SyncBarrierEnter], counts[event.SyncBarrierExit])
	}
	if counts[event.SyncWQGetEnter] != 6 { // 4 items + 2 drained probes
		t.Fatalf("wq enters = %d", counts[event.SyncWQGetEnter])
	}
	if counts[event.SyncMutexEnter] != 4 || counts[event.SyncMutexRelease] != 4 {
		t.Fatalf("mutex events = %d/%d", counts[event.SyncMutexEnter], counts[event.SyncMutexRelease])
	}
	if errs := analyzer.Errors(analyzer.Validate(tr)); len(errs) != 0 {
		t.Fatalf("validation: %v", errs)
	}
	sum := analyzer.Summarize(tr)
	if sum.TotalState(analyzer.StateStallSync) == 0 {
		t.Fatal("no sync-wait time attributed")
	}
}
