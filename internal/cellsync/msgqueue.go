package cellsync

import (
	"fmt"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
)

// MsgQueue is a bounded multi-producer/multi-consumer queue of 8-byte
// values in main storage, built on the atomic primitives: a ring of slots
// plus ticket counters. It is the main-memory alternative to mailbox
// token passing for work distribution between SPEs without PPE
// involvement.
//
// Layout: [head u64][tail u64][seq u64 x cap][val u64 x cap]. A slot's
// seq acts as its state: seq == ticket means free-to-write for that
// ticket's producer; seq == ticket+1 means readable by that ticket's
// consumer (the classic bounded MPMC ring).
type MsgQueue struct {
	baseEA   uint64
	capacity uint64
	id       uint64
}

// NewMsgQueue allocates a queue of the given capacity (a power of two).
func NewMsgQueue(m *cell.Machine, id uint64, capacity int) *MsgQueue {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("cellsync: MsgQueue capacity %d must be a power of two", capacity))
	}
	q := &MsgQueue{
		baseEA:   m.Alloc((2+2*capacity)*8, 128),
		capacity: uint64(capacity),
		id:       id,
	}
	m.WriteWord64(q.headEA(), 0)
	m.WriteWord64(q.tailEA(), 0)
	for i := 0; i < capacity; i++ {
		m.WriteWord64(q.seqEA(uint64(i)), uint64(i))
	}
	return q
}

func (q *MsgQueue) headEA() uint64 { return q.baseEA }
func (q *MsgQueue) tailEA() uint64 { return q.baseEA + 8 }
func (q *MsgQueue) seqEA(slot uint64) uint64 {
	return q.baseEA + 16 + slot*8
}
func (q *MsgQueue) valEA(slot uint64) uint64 {
	return q.baseEA + 16 + q.capacity*8 + slot*8
}

// Put enqueues v, spinning while the queue is full.
func (q *MsgQueue) Put(ctx atomicOps, v uint64) {
	syncEvent(ctx, event.SyncWQPut, q.id, v)
	// Claim a ticket.
	ticket := ctx.AtomicAdd(q.tailEA(), 1) - 1
	slot := ticket & (q.capacity - 1)
	// Wait for the slot to cycle around to our ticket.
	for ctx.AtomicAdd(q.seqEA(slot), 0) != ticket {
		ctx.Compute(spinDelay)
	}
	// Publish value, then flip the seq to readable.
	q.writeVal(ctx, slot, v)
	if !ctx.AtomicCAS(q.seqEA(slot), ticket, ticket+1) {
		panic("cellsync: MsgQueue slot seq corrupted (producer)")
	}
}

// Get dequeues a value, spinning while the queue is empty.
func (q *MsgQueue) Get(ctx atomicOps) uint64 {
	syncEvent(ctx, event.SyncWQGetEnter, q.id)
	ticket := ctx.AtomicAdd(q.headEA(), 1) - 1
	slot := ticket & (q.capacity - 1)
	for ctx.AtomicAdd(q.seqEA(slot), 0) != ticket+1 {
		ctx.Compute(spinDelay)
	}
	v := q.readVal(ctx, slot)
	// Release the slot for the producer one lap later.
	if !ctx.AtomicCAS(q.seqEA(slot), ticket+1, ticket+q.capacity) {
		panic("cellsync: MsgQueue slot seq corrupted (consumer)")
	}
	syncEvent(ctx, event.SyncWQGetExit, q.id, v)
	return v
}

// writeVal/readVal use the atomic path for the value word too: on the
// model this serializes through the atomic unit, which stands in for the
// release/acquire ordering the real hardware gets from the reservation
// protocol.
func (q *MsgQueue) writeVal(ctx atomicOps, slot uint64, v uint64) {
	// CAS from whatever is there: an unconditional store via add of the
	// difference would race, so read-modify-write until it sticks.
	for {
		cur := ctx.AtomicAdd(q.valEA(slot), 0)
		if ctx.AtomicCAS(q.valEA(slot), cur, v) {
			return
		}
		ctx.Compute(spinDelay)
	}
}

func (q *MsgQueue) readVal(ctx atomicOps, slot uint64) uint64 {
	return ctx.AtomicAdd(q.valEA(slot), 0)
}

// Cap returns the queue capacity.
func (q *MsgQueue) Cap() int { return int(q.capacity) }
