package cellsync

import (
	"testing"

	"github.com/celltrace/pdt/internal/cell"
)

func TestMsgQueueSingleProducerConsumer(t *testing.T) {
	m := newMachine(t)
	q := NewMsgQueue(m, 1, 4)
	const n = 50
	var got []uint64
	m.RunMain(func(h cell.Host) {
		prod := h.Run(0, "prod", func(spu cell.SPU) uint32 {
			for i := 0; i < n; i++ {
				q.Put(spu, uint64(1000+i))
			}
			return 0
		})
		cons := h.Run(1, "cons", func(spu cell.SPU) uint32 {
			for i := 0; i < n; i++ {
				got = append(got, q.Get(spu))
			}
			return 0
		})
		h.Wait(prod)
		h.Wait(cons)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d values", len(got))
	}
	for i, v := range got {
		if v != uint64(1000+i) {
			t.Fatalf("got[%d] = %d (FIFO order broken)", i, v)
		}
	}
}

func TestMsgQueueMPMC(t *testing.T) {
	m := newMachine(t)
	q := NewMsgQueue(m, 1, 8)
	const perProducer = 25
	seen := map[uint64]int{}
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for p := 0; p < 3; p++ {
			base := uint64(p * 1000)
			hs = append(hs, h.Run(p, "prod", func(spu cell.SPU) uint32 {
				for i := 0; i < perProducer; i++ {
					q.Put(spu, base+uint64(i))
				}
				return 0
			}))
		}
		for c := 0; c < 3; c++ {
			hs = append(hs, h.Run(3+c, "cons", func(spu cell.SPU) uint32 {
				for i := 0; i < perProducer; i++ {
					seen[q.Get(spu)]++
				}
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3*perProducer {
		t.Fatalf("distinct values = %d, want %d", len(seen), 3*perProducer)
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %d consumed %d times", v, c)
		}
	}
}

func TestMsgQueueBackpressure(t *testing.T) {
	// Capacity 2: the producer's third Put must wait for a Get.
	m := newMachine(t)
	q := NewMsgQueue(m, 1, 2)
	var thirdPutDone uint64
	m.RunMain(func(h cell.Host) {
		prod := h.Run(0, "prod", func(spu cell.SPU) uint32 {
			q.Put(spu, 1)
			q.Put(spu, 2)
			q.Put(spu, 3) // blocks until the consumer runs at t>=200000
			thirdPutDone = spu.Now()
			return 0
		})
		cons := h.Run(1, "cons", func(spu cell.SPU) uint32 {
			spu.Compute(200000)
			for i := 0; i < 3; i++ {
				q.Get(spu)
			}
			return 0
		})
		h.Wait(prod)
		h.Wait(cons)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if thirdPutDone < 200000 {
		t.Fatalf("third Put finished at %d, want >= 200000", thirdPutDone)
	}
}

func TestMsgQueueWithPPE(t *testing.T) {
	m := newMachine(t)
	q := NewMsgQueue(m, 1, 4)
	m.RunMain(func(h cell.Host) {
		hd := h.Run(0, "echo", func(spu cell.SPU) uint32 {
			for {
				v := q.Get(spu)
				if v == 0 {
					return 0
				}
				q.Put(spu, v*2)
			}
		})
		q.Put(h, 21)
		if v := q.Get(h); v != 42 {
			t.Errorf("echo = %d", v)
		}
		q.Put(h, 0)
		h.Wait(hd)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d", q.Cap())
	}
}

func TestMsgQueueValidation(t *testing.T) {
	m := newMachine(t)
	for _, c := range []int{0, 3, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d accepted", c)
				}
			}()
			NewMsgQueue(m, 1, c)
		}()
	}
}
