package cellsync

import (
	"fmt"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
)

// SignalBarrier is a barrier built entirely on the signal-notification
// fabric, the classic low-latency alternative to the atomic barrier on
// Cell: participants (SPEs 0..parties-1) send their arrival bit to the
// master SPE's signal register 2 with mfc_sndsig; the master collects all
// bits and releases everyone with a broadcast bit. No main-storage traffic
// is involved, so its latency is EIB-bound rather than memory-bound — the
// E12 ablation quantifies the difference against Barrier.
type SignalBarrier struct {
	parties int
	master  int
	tag     int
	id      uint64
}

// releaseBit is the master's broadcast bit (disjoint from arrival bits,
// which limits parties to 31).
const releaseBit = uint32(1) << 31

// NewSignalBarrier builds a barrier for SPEs 0..parties-1 using signal
// register 2 and the given MFC tag group for the sends.
func NewSignalBarrier(id uint64, parties, tag int) *SignalBarrier {
	if parties <= 0 || parties > 31 {
		panic("cellsync: SignalBarrier parties must be in 1..31")
	}
	if tag < 0 || tag >= 32 {
		panic("cellsync: SignalBarrier tag out of range")
	}
	return &SignalBarrier{parties: parties, master: 0, tag: tag, id: id}
}

// Wait blocks spu until all parties arrive. spu.Index() must be in
// 0..parties-1 and each index must participate exactly once per round.
func (b *SignalBarrier) Wait(spu cell.SPU) {
	idx := spu.Index()
	if idx >= b.parties {
		panic(fmt.Sprintf("cellsync: SPE %d outside the %d-party signal barrier", idx, b.parties))
	}
	core.Sync(spu, event.SyncBarrierEnter, b.id)
	if idx == b.master {
		// Collect every other participant's arrival bit.
		want := uint32(1)<<uint(b.parties) - 1
		want &^= 1 << uint(b.master)
		var got uint32
		for got&want != want {
			if want == 0 {
				break
			}
			got |= spu.ReadSignal2()
		}
		// Release the others.
		for p := 0; p < b.parties; p++ {
			if p != b.master {
				spu.Sndsig(p, 2, releaseBit, b.tag)
			}
		}
		spu.WaitTagAll(1 << uint(b.tag))
	} else {
		spu.Sndsig(b.master, 2, 1<<uint(idx), b.tag)
		spu.WaitTagAll(1 << uint(b.tag))
		for spu.ReadSignal2()&releaseBit == 0 {
		}
	}
	core.Sync(spu, event.SyncBarrierExit, b.id)
}
