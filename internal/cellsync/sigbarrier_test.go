package cellsync

import (
	"testing"

	"github.com/celltrace/pdt/internal/cell"
)

func TestSignalBarrierAllArrive(t *testing.T) {
	m := newMachine(t)
	b := NewSignalBarrier(1, 4, 9)
	var exits []uint64
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < 4; i++ {
			w := uint64((i + 1) * 10000)
			hs = append(hs, h.Run(i, "sb", func(spu cell.SPU) uint32 {
				spu.Compute(w)
				b.Wait(spu)
				exits = append(exits, spu.Now())
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(exits) != 4 {
		t.Fatalf("exits = %d", len(exits))
	}
	for i, e := range exits {
		if e < 40000 {
			t.Fatalf("party %d exited at %d before last arrival", i, e)
		}
	}
}

func TestSignalBarrierReusable(t *testing.T) {
	m := newMachine(t)
	const parties, rounds = 3, 6
	b := NewSignalBarrier(1, parties, 9)
	counts := make([]int, rounds)
	m.RunMain(func(h cell.Host) {
		var hs []*cell.SPEHandle
		for i := 0; i < parties; i++ {
			idx := i
			hs = append(hs, h.Run(i, "sbr", func(spu cell.SPU) uint32 {
				for r := 0; r < rounds; r++ {
					spu.Compute(uint64(500 * (idx + 1)))
					b.Wait(spu)
					counts[r]++
				}
				return 0
			}))
		}
		for _, hd := range hs {
			h.Wait(hd)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for r, c := range counts {
		if c != parties {
			t.Fatalf("round %d count = %d", r, c)
		}
	}
}

func TestSignalBarrierSingleParty(t *testing.T) {
	m := newMachine(t)
	b := NewSignalBarrier(1, 1, 9)
	m.RunMain(func(h cell.Host) {
		h.Wait(h.Run(0, "solo", func(spu cell.SPU) uint32 {
			for i := 0; i < 3; i++ {
				b.Wait(spu) // must not block: nothing to collect
			}
			return 0
		}))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSignalBarrierValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero parties": func() { NewSignalBarrier(1, 0, 9) },
		"too many":     func() { NewSignalBarrier(1, 32, 9) },
		"bad tag":      func() { NewSignalBarrier(1, 4, 32) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

func TestSignalBarrierWrongSPEPanics(t *testing.T) {
	m := newMachine(t)
	b := NewSignalBarrier(1, 2, 9)
	m.RunMain(func(h cell.Host) {
		h.Wait(h.Run(5, "out", func(spu cell.SPU) uint32 {
			defer func() {
				if recover() == nil {
					t.Error("no panic for out-of-set SPE")
				}
			}()
			b.Wait(spu)
			return 0
		}))
	})
	_ = m.Run()
}

// TestBarrierMechanismLatency compares the two barrier implementations:
// the signal barrier must beat the atomic barrier (no main-storage round
// trips and no spin backoff).
func TestBarrierMechanismLatency(t *testing.T) {
	const parties, rounds = 4, 20
	measure := func(useSignal bool) uint64 {
		m := newMachine(t)
		ab := NewBarrier(m, 1, parties)
		sb := NewSignalBarrier(2, parties, 9)
		m.RunMain(func(h cell.Host) {
			var hs []*cell.SPEHandle
			for i := 0; i < parties; i++ {
				hs = append(hs, h.Run(i, "lat", func(spu cell.SPU) uint32 {
					for r := 0; r < rounds; r++ {
						if useSignal {
							sb.Wait(spu)
						} else {
							ab.Wait(spu)
						}
					}
					return 0
				}))
			}
			for _, hd := range hs {
				h.Wait(hd)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Now()
	}
	atomic := measure(false)
	signal := measure(true)
	if signal >= atomic {
		t.Fatalf("signal barrier (%d cycles) not faster than atomic (%d)", signal, atomic)
	}
}
