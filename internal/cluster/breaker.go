package cluster

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// StateClosed: calls flow normally; consecutive failures are counted.
	StateClosed BreakerState = iota
	// StateOpen: calls are refused without touching the network until
	// the cooldown elapses.
	StateOpen
	// StateHalfOpen: the cooldown elapsed; exactly one probe call is let
	// through. Success re-closes the breaker, failure re-opens it.
	StateHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-peer circuit breaker: closed → open after Threshold
// consecutive failures, open → half-open after Cooldown, half-open →
// closed on a successful probe (or back to open on a failed one).
// Refusing calls while open is what keeps a partitioned peer from
// stalling every request for its keys behind timeouts.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam; time.Now by default

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	opens    uint64
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and probes again after cooldown. threshold <= 0 means 3;
// cooldown <= 0 means one second.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may proceed right now. While open it
// returns false until the cooldown elapses, then admits exactly one
// half-open probe at a time; the caller must report the outcome via
// Record or the breaker releases the probe slot on the next Allow after
// another cooldown.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = StateHalfOpen
		b.probing = true
		return true
	default: // StateHalfOpen
		if b.probing {
			// A probe is already out; refuse concurrent traffic rather
			// than flooding a peer that may still be down. If the probe's
			// outcome was lost (caller died), re-admit after a cooldown.
			if b.now().Sub(b.openedAt) >= 2*b.cooldown {
				b.openedAt = b.now().Add(-b.cooldown)
				return true
			}
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports a call outcome. Success always fully closes the
// breaker; failure counts toward the threshold (and immediately
// re-opens a half-open breaker).
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.state = StateClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == StateHalfOpen || (b.state == StateClosed && b.fails >= b.threshold) {
		b.state = StateOpen
		b.openedAt = b.now()
		b.opens++
	}
}

// State snapshots the current position, applying the open → half-open
// transition lazily so observers see "half-open" once the cooldown has
// elapsed even if no call has probed yet.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return StateHalfOpen
	}
	return b.state
}

// Snapshot reports (state, consecutive failures, cumulative opens).
func (b *Breaker) Snapshot() (BreakerState, int, uint64) {
	st := b.State()
	b.mu.Lock()
	defer b.mu.Unlock()
	return st, b.fails, b.opens
}
