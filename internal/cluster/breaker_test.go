package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(false)
	}
	if b.State() != StateClosed {
		t.Fatalf("state after 2 failures: %v", b.State())
	}
	b.Allow()
	b.Record(false) // third consecutive failure
	if b.State() != StateOpen {
		t.Fatalf("state after threshold: %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
}

func TestBreakerSuccessResetsTheCount(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	b.Record(false)
	b.Record(false)
	b.Record(true) // interleaved success: not consecutive anymore
	b.Record(false)
	b.Record(false)
	if b.State() != StateClosed {
		t.Fatalf("non-consecutive failures opened the breaker: %v", b.State())
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Allow()
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatal("not open")
	}
	clk.advance(time.Second)
	if b.State() != StateHalfOpen {
		t.Fatalf("state after cooldown: %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.Record(false) // probe failed: re-open
	if b.State() != StateOpen {
		t.Fatalf("state after failed probe: %v", b.State())
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("re-probe refused")
	}
	b.Record(true) // probe succeeded: close
	if b.State() != StateClosed {
		t.Fatalf("state after good probe: %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
	_, fails, opens := b.Snapshot()
	if fails != 0 || opens != 2 {
		t.Fatalf("snapshot fails=%d opens=%d, want 0/2", fails, opens)
	}
}

func TestBreakerLostProbeRecovers(t *testing.T) {
	// If a probe's outcome never arrives (its caller died), the breaker
	// must not stay stuck refusing traffic forever.
	b, clk := testBreaker(1, time.Second)
	b.Record(false)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	// Probe outcome lost. After another cooldown a new probe is let in.
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker stuck after a lost probe")
	}
}

func TestBreakerConcurrencySafe(t *testing.T) {
	b := NewBreaker(5, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 500; n++ {
				if b.Allow() {
					b.Record(n%3 == 0)
				}
				b.State()
			}
		}(i)
	}
	wg.Wait()
}
