package cluster

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Fetch errors. ErrNotCached is a clean miss — the owner answered and
// simply has nothing — and never counts against the breaker. ErrPeerDown
// means the peer's breaker refused the call without touching the
// network. Anything else is a real failure after the retry budget.
var (
	ErrNotCached = errors.New("cluster: owner has no cached artifact")
	ErrPeerDown  = errors.New("cluster: peer circuit breaker open")
	ErrNoPeer    = errors.New("cluster: unknown peer")
)

// Config wires a Client. Self and Peers are required; everything else
// has a production-sane default.
type Config struct {
	// Self is this replica's name; it must appear in Peers.
	Self string
	// Peers maps peer name → base URL (scheme://host:port).
	Peers map[string]string
	// VNodes is the virtual-node count per peer (DefaultVNodes if <= 0).
	VNodes int
	// Timeout bounds one peer call end to end (default 1s). Peeks are
	// cache reads on the far side; anything slow is a sick peer.
	Timeout time.Duration
	// Attempts is the per-fetch call budget including the first try
	// (default 2).
	Attempts int
	// BackoffBase/BackoffCap shape the capped exponential retry backoff,
	// jittered: attempt n waits roughly min(Base<<(n-1), Cap), half of it
	// deterministic and half uniformly random (defaults 25ms / 250ms —
	// the same min(Base<<(n-1), Cap) shape the job manager retries with).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerThreshold consecutive failures open a peer's breaker
	// (default 3); BreakerCooldown is the open → half-open delay
	// (default 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Transport overrides the HTTP transport (fault-injection seam;
	// http.DefaultTransport when nil).
	Transport http.RoundTripper
}

// peer is one remote replica plus its resilience state and counters.
type peer struct {
	name    string
	url     string
	breaker *Breaker

	mu       sync.Mutex
	fetches  uint64
	hits     uint64
	misses   uint64
	failures uint64
	refusals uint64 // calls the breaker refused locally
}

// PeerStatus is the observable state of one peer, as served by
// /v1/stats and asserted by the chaos suite.
type PeerStatus struct {
	Name                string `json:"name"`
	URL                 string `json:"url"`
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	Opens               uint64 `json:"opens"`
	Fetches             uint64 `json:"fetches"`
	Hits                uint64 `json:"hits"`
	Misses              uint64 `json:"misses"`
	Failures            uint64 `json:"failures"`
	Refusals            uint64 `json:"refusals"`
}

// Client routes trace keys to owner replicas and fetches cached
// artifacts from them with the full resilience stack.
type Client struct {
	cfg   Config
	ring  *Ring
	peers map[string]*peer
	hc    *http.Client

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New validates the config and builds the client.
func New(cfg Config) (*Client, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: empty self name")
	}
	if _, ok := cfg.Peers[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self %q not in peer list", cfg.Self)
	}
	names := make([]string, 0, len(cfg.Peers))
	for n := range cfg.Peers {
		names = append(names, n)
	}
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 2
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 250 * time.Millisecond
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	c := &Client{
		cfg:   cfg,
		ring:  ring,
		peers: map[string]*peer{},
		hc: &http.Client{
			Transport: cfg.Transport,
			// No client-level timeout: each call carries its own context
			// deadline so a retry's clock starts fresh.
		},
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for name, url := range cfg.Peers {
		if name == cfg.Self {
			continue
		}
		c.peers[name] = &peer{
			name: name, url: url,
			breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
	}
	return c, nil
}

// Self returns this replica's name.
func (c *Client) Self() string { return c.cfg.Self }

// Peers returns the sorted names of all ring members, self included.
func (c *Client) Peers() []string { return c.ring.Peers() }

// Owner maps a trace key to its owning replica name.
func (c *Client) Owner(key Key) string { return c.ring.Owner(key) }

// Breaker exposes a peer's breaker (nil for self/unknown) — the chaos
// suite asserts open/close transitions on it directly.
func (c *Client) Breaker(name string) *Breaker {
	if p := c.peers[name]; p != nil {
		return p.breaker
	}
	return nil
}

// targetKey carries the destination peer name on outgoing requests so a
// fault-injecting transport can tell peers apart.
type targetKey struct{}

// TargetPeer reports which peer an outgoing request is addressed to
// ("" for requests the Client did not make).
func TargetPeer(r *http.Request) string {
	name, _ := r.Context().Value(targetKey{}).(string)
	return name
}

// FetchArtifact asks the named peer for its cached artifact of
// (key, kind): GET {peer}/v1/cluster/artifact/{key}/{kind}. It returns
// ErrNotCached on a clean miss, ErrPeerDown when the breaker refuses the
// call, and the last failure once the retry budget is spent. Every
// response body is CRC-framed; a damaged frame counts as a failure, not
// a result.
func (c *Client) FetchArtifact(ctx context.Context, name string, key Key, kind string) ([]byte, error) {
	p := c.peers[name]
	if p == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoPeer, name)
	}
	var lastErr error
	for attempt := 1; attempt <= c.cfg.Attempts; attempt++ {
		if attempt > 1 {
			if err := c.sleep(ctx, c.backoff(attempt-1)); err != nil {
				return nil, err
			}
		}
		if !p.breaker.Allow() {
			p.mu.Lock()
			p.refusals++
			p.mu.Unlock()
			// The breaker refusing is not itself a peer failure; report
			// the cause we already know about.
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, ErrPeerDown
		}
		b, err := c.fetchOnce(ctx, p, key, kind)
		switch {
		case err == nil:
			p.breaker.Record(true)
			p.mu.Lock()
			p.fetches++
			p.hits++
			p.mu.Unlock()
			return b, nil
		case errors.Is(err, ErrNotCached):
			// The peer answered; its cache is just cold. A healthy miss.
			p.breaker.Record(true)
			p.mu.Lock()
			p.fetches++
			p.misses++
			p.mu.Unlock()
			return nil, ErrNotCached
		case ctx.Err() != nil:
			// Our caller's deadline died, not the peer: don't punish it.
			return nil, ctx.Err()
		default:
			p.breaker.Record(false)
			p.mu.Lock()
			p.fetches++
			p.failures++
			p.mu.Unlock()
			lastErr = err
		}
	}
	return nil, lastErr
}

// fetchOnce runs one bounded call.
func (c *Client) fetchOnce(ctx context.Context, p *peer, key Key, kind string) ([]byte, error) {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	cctx = context.WithValue(cctx, targetKey{}, p.name)
	url := fmt.Sprintf("%s/v1/cluster/artifact/%s/%s", p.url, hex.EncodeToString(key[:]), kind)
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, ErrNotCached
	default:
		return nil, fmt.Errorf("cluster: peer %s: %s", p.name, resp.Status)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxFramePayload+int64(frameHeaderSize)+1))
	if err != nil {
		return nil, err
	}
	payload, err := DecodeFrame(raw)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", p.name, err)
	}
	// The frame aliases the response buffer; copy so callers may retain.
	return append([]byte(nil), payload...), nil
}

// backoff computes the jittered capped exponential delay before retry n
// (1-based): half deterministic, half uniform random, so synchronized
// retry storms against a recovering peer spread out.
func (c *Client) backoff(n int) time.Duration {
	d := c.cfg.BackoffBase << (n - 1)
	if d > c.cfg.BackoffCap || d <= 0 {
		d = c.cfg.BackoffCap
	}
	half := d / 2
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(half) + 1))
	c.rngMu.Unlock()
	return half + j
}

// sleep waits d or until ctx dies.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status snapshots every remote peer, sorted by name.
func (c *Client) Status() []PeerStatus {
	out := make([]PeerStatus, 0, len(c.peers))
	for _, p := range c.peers {
		st, fails, opens := p.breaker.Snapshot()
		p.mu.Lock()
		out = append(out, PeerStatus{
			Name: p.name, URL: p.url,
			Breaker:             st.String(),
			ConsecutiveFailures: fails,
			Opens:               opens,
			Fetches:             p.fetches, Hits: p.hits, Misses: p.misses,
			Failures: p.failures, Refusals: p.refusals,
		})
		p.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Degraded reports whether any peer's breaker is currently open, with a
// human-readable reason ("" when healthy). The daemon's readyz surfaces
// this without failing readiness: a degraded cluster still serves every
// request locally.
func (c *Client) Degraded() (bool, string) {
	names := make([]string, 0, len(c.peers))
	for n := range c.peers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if c.peers[n].breaker.State() == StateOpen {
			return true, fmt.Sprintf("cluster: peer %s breaker open", n)
		}
	}
	return false, ""
}
