package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testCluster builds a 2-member cluster where "remote" is served by the
// given handler and "self" is this test.
func testCluster(t *testing.T, handler http.Handler, mut func(*Config)) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	cfg := Config{
		Self:        "self",
		Peers:       map[string]string{"self": "http://unused", "remote": ts.URL},
		Timeout:     2 * time.Second,
		Attempts:    2,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

func TestClientFetchHit(t *testing.T) {
	want := []byte(`{"ok":true}`)
	c, _ := testCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/cluster/artifact/") {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		_, _ = w.Write(EncodeFrame(want))
	}), nil)
	got, err := c.FetchArtifact(context.Background(), "remote", keyN(1), "summary")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("payload %q", got)
	}
	st := c.Status()
	if len(st) != 1 || st[0].Hits != 1 || st[0].Breaker != "closed" {
		t.Fatalf("status %+v", st)
	}
}

func TestClientMissIsCleanNotAFailure(t *testing.T) {
	c, _ := testCluster(t, http.NotFoundHandler(), nil)
	_, err := c.FetchArtifact(context.Background(), "remote", keyN(1), "summary")
	if !errors.Is(err, ErrNotCached) {
		t.Fatalf("err = %v", err)
	}
	st := c.Status()[0]
	if st.Misses != 1 || st.Failures != 0 || st.ConsecutiveFailures != 0 {
		t.Fatalf("a 404 miss was scored as a failure: %+v", st)
	}
}

func TestClientRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	want := []byte("second time lucky")
	c, _ := testCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(EncodeFrame(want))
	}), nil)
	got, err := c.FetchArtifact(context.Background(), "remote", keyN(2), "profile")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) || calls.Load() != 2 {
		t.Fatalf("got %q after %d calls", got, calls.Load())
	}
	// The success must have reset the consecutive-failure count.
	if st := c.Status()[0]; st.ConsecutiveFailures != 0 || st.Failures != 1 {
		t.Fatalf("status %+v", st)
	}
}

func TestClientBreakerOpensAndRefuses(t *testing.T) {
	var calls atomic.Int32
	c, _ := testCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}), func(cfg *Config) {
		cfg.Attempts = 3
		cfg.BreakerThreshold = 3
		cfg.BreakerCooldown = time.Hour
	})
	if _, err := c.FetchArtifact(context.Background(), "remote", keyN(3), "summary"); err == nil {
		t.Fatal("want failure")
	}
	after := calls.Load() // threshold hit inside the retry loop
	if after != 3 {
		t.Fatalf("calls before open: %d", after)
	}
	if deg, reason := c.Degraded(); !deg || !strings.Contains(reason, "remote") {
		t.Fatalf("degraded = %v %q", deg, reason)
	}
	// Next fetch is refused without any network traffic.
	_, err := c.FetchArtifact(context.Background(), "remote", keyN(4), "summary")
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != after {
		t.Fatal("open breaker still hit the network")
	}
	if st := c.Status()[0]; st.Breaker != "open" || st.Refusals == 0 {
		t.Fatalf("status %+v", st)
	}
}

func TestClientBreakerRecloses(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	c, _ := testCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		_, _ = w.Write(EncodeFrame([]byte("healed")))
	}), func(cfg *Config) {
		cfg.Attempts = 1
		cfg.BreakerThreshold = 1
		cfg.BreakerCooldown = 10 * time.Millisecond
	})
	if _, err := c.FetchArtifact(context.Background(), "remote", keyN(5), "summary"); err == nil {
		t.Fatal("want failure")
	}
	if c.Breaker("remote").State() != StateOpen {
		t.Fatal("breaker not open")
	}
	failing.Store(false)
	time.Sleep(20 * time.Millisecond) // past the cooldown: half-open probe allowed
	got, err := c.FetchArtifact(context.Background(), "remote", keyN(5), "summary")
	if err != nil || string(got) != "healed" {
		t.Fatalf("probe after heal: %v %q", err, got)
	}
	if c.Breaker("remote").State() != StateClosed {
		t.Fatal("breaker did not re-close after a good probe")
	}
}

func TestClientDamagedFrameIsAFailure(t *testing.T) {
	c, _ := testCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := EncodeFrame([]byte("about to be mangled"))
		enc[len(enc)-1] ^= 0xFF
		_, _ = w.Write(enc)
	}), func(cfg *Config) { cfg.Attempts = 1 })
	_, err := c.FetchArtifact(context.Background(), "remote", keyN(6), "summary")
	if err == nil || !errors.Is(err, ErrFrameCRC) {
		t.Fatalf("err = %v", err)
	}
	if st := c.Status()[0]; st.Failures != 1 {
		t.Fatalf("damaged frame not scored as failure: %+v", st)
	}
}

func TestClientTimeoutCountsAgainstThePeer(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	c, _ := testCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}), func(cfg *Config) {
		cfg.Timeout = 30 * time.Millisecond
		cfg.Attempts = 1
	})
	start := time.Now()
	_, err := c.FetchArtifact(context.Background(), "remote", keyN(7), "summary")
	if err == nil {
		t.Fatal("want timeout")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v", d)
	}
	if st := c.Status()[0]; st.Failures != 1 || st.ConsecutiveFailures != 1 {
		t.Fatalf("timeout not scored: %+v", st)
	}
}

func TestClientCallerCancellationDoesNotPunishPeer(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	c, _ := testCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}), func(cfg *Config) { cfg.Timeout = time.Hour })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.FetchArtifact(ctx, "remote", keyN(8), "summary")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if st := c.Status()[0]; st.ConsecutiveFailures != 0 {
		t.Fatalf("caller cancellation blamed the peer: %+v", st)
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: "a", Peers: map[string]string{"b": "http://x"}}); err == nil {
		t.Fatal("self outside the peer list accepted")
	}
	if _, err := New(Config{Peers: map[string]string{"b": "http://x"}}); err == nil {
		t.Fatal("empty self accepted")
	}
	c, err := New(Config{Self: "a", Peers: map[string]string{"a": "http://x", "b": "http://y"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchArtifact(context.Background(), "nope", keyN(0), "summary"); !errors.Is(err, ErrNoPeer) {
		t.Fatalf("unknown peer: %v", err)
	}
	if c.Breaker("a") != nil {
		t.Fatal("self has a breaker")
	}
	if got := c.Peers(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("peers %v", got)
	}
}

func TestTargetPeerPlumbing(t *testing.T) {
	seen := make(chan string, 1)
	tr := roundTripFunc(func(r *http.Request) (*http.Response, error) {
		seen <- TargetPeer(r)
		return nil, errors.New("synthetic transport error")
	})
	c, _ := testCluster(t, http.NotFoundHandler(), func(cfg *Config) {
		cfg.Transport = tr
		cfg.Attempts = 1
	})
	_, _ = c.FetchArtifact(context.Background(), "remote", keyN(9), "summary")
	if got := <-seen; got != "remote" {
		t.Fatalf("TargetPeer = %q", got)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
