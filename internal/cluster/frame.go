package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The peer artifact protocol wraps every payload in a small integrity
// envelope so a truncated or bit-flipped transfer is detected at the
// receiver instead of being cached and served as a wrong answer:
//
//	"PDTP1" | crc32(payload) BE | len(payload) BE uint32 | payload
//
// The frame is deliberately tiny and self-contained — no streaming
// state — because peer peeks are whole-artifact exchanges.

// frameMagic identifies a peer protocol frame (and its version).
const frameMagic = "PDTP1"

// frameHeaderSize is magic + crc32 + length.
const frameHeaderSize = len(frameMagic) + 4 + 4

// MaxFramePayload caps a decoded payload; anything larger than the
// service's own body cap is nonsense on arrival.
const MaxFramePayload = 1 << 30

// Frame decode errors.
var (
	ErrFrameMagic  = errors.New("cluster: bad frame magic")
	ErrFrameLength = errors.New("cluster: frame length mismatch")
	ErrFrameCRC    = errors.New("cluster: frame checksum mismatch")
)

// EncodeFrame wraps a payload in the peer protocol envelope.
func EncodeFrame(payload []byte) []byte {
	out := make([]byte, frameHeaderSize+len(payload))
	copy(out, frameMagic)
	binary.BigEndian.PutUint32(out[len(frameMagic):], crc32.ChecksumIEEE(payload))
	binary.BigEndian.PutUint32(out[len(frameMagic)+4:], uint32(len(payload)))
	copy(out[frameHeaderSize:], payload)
	return out
}

// DecodeFrame unwraps one complete frame. The declared length must match
// the bytes present exactly — a short read is a torn transfer, not a
// prefix to trust — and the payload CRC must verify. The returned slice
// aliases b.
func DecodeFrame(b []byte) ([]byte, error) {
	if len(b) < frameHeaderSize || string(b[:len(frameMagic)]) != frameMagic {
		return nil, ErrFrameMagic
	}
	wantCRC := binary.BigEndian.Uint32(b[len(frameMagic):])
	n := binary.BigEndian.Uint32(b[len(frameMagic)+4:])
	if n > MaxFramePayload {
		return nil, fmt.Errorf("%w: declared %d bytes", ErrFrameLength, n)
	}
	payload := b[frameHeaderSize:]
	if uint32(len(payload)) != n {
		return nil, fmt.Errorf("%w: declared %d, have %d", ErrFrameLength, n, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, ErrFrameCRC
	}
	return payload, nil
}
