package cluster

import (
	"bytes"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte(`{"workload":"julia"}`),
		bytes.Repeat([]byte{0xAB}, 1<<16),
	} {
		enc := EncodeFrame(payload)
		got, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("round trip (%d bytes): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mangled at %d bytes", len(payload))
		}
	}
}

// TestFrameEveryByteFlipDetected is the integrity contract: flipping any
// single bit position in a valid frame must make DecodeFrame fail —
// magic, CRC, length, and payload are all covered.
func TestFrameEveryByteFlipDetected(t *testing.T) {
	enc := EncodeFrame([]byte("the quick brown artifact"))
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x5A
		if _, err := DecodeFrame(mut); err == nil {
			t.Fatalf("flip at byte %d not detected", i)
		}
	}
}

func TestFrameTruncationDetected(t *testing.T) {
	enc := EncodeFrame([]byte("payload that will be cut short"))
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeFrame(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes not detected", cut)
		}
	}
	// Trailing garbage is a length mismatch, not a trusted suffix.
	if _, err := DecodeFrame(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Fatal("trailing byte not detected")
	}
}

func TestFrameDeclaredLengthOverflow(t *testing.T) {
	enc := EncodeFrame([]byte("x"))
	// Corrupt the length field to a huge declaration.
	enc[len(frameMagic)+4] = 0xFF
	if _, err := DecodeFrame(enc); err == nil {
		t.Fatal("huge declared length accepted")
	}
}

// FuzzPeerFrame drives the peer-protocol decoder with arbitrary bytes
// (never panics, never returns without a verified CRC) and checks
// encode→decode round-trips when the input is treated as a payload.
func FuzzPeerFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PDTP1"))
	f.Add(EncodeFrame(nil))
	f.Add(EncodeFrame([]byte("seed payload")))
	f.Add(EncodeFrame(bytes.Repeat([]byte{0x42}, 300)))
	f.Fuzz(func(t *testing.T, b []byte) {
		if payload, err := DecodeFrame(b); err == nil {
			// A successful decode must re-encode to the exact input:
			// the envelope has no slack bytes to hide corruption in.
			if !bytes.Equal(EncodeFrame(payload), b) {
				t.Fatalf("decode accepted a non-canonical frame (%d bytes)", len(b))
			}
		}
		enc := EncodeFrame(b)
		got, err := DecodeFrame(enc)
		if err != nil || !bytes.Equal(got, b) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
