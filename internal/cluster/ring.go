// Package cluster turns N pdt-tad replicas into a keyspace-sharding
// ring: a consistent-hash ring (virtual nodes, rendezvous tiebreak)
// maps every SHA-256 trace key to exactly one owner replica, and a
// resilience layer — per-call timeouts, capped exponential backoff with
// jitter, per-peer circuit breakers — wraps every cross-replica call so
// a slow, partitioned, or dead peer degrades service instead of
// breaking it. The package is transport-pluggable (http.RoundTripper
// seam) so chaos harnesses can drop, delay, or partition peer traffic
// deterministically.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// Key is a trace content address: SHA-256 over the raw image, the same
// keying the analysis cache uses. The ring places keys by their first 8
// bytes, which are uniformly distributed by construction.
type Key = [sha256.Size]byte

// DefaultVNodes is the virtual-node count per peer. 64 points per peer
// keeps the ownership imbalance across a handful of replicas within a
// few percent without making lookup tables large.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over a static peer list.
// Every replica builds its ring from the same -peers flag, so all
// replicas agree on ownership without any coordination traffic.
type Ring struct {
	peers  []string // sorted peer names
	vnodes int
	points []point // sorted by hash, ascending
}

// point is one virtual node: a position on the 64-bit circle owned by a
// peer.
type point struct {
	hash uint64
	peer string
}

// NewRing builds the ring. vnodes <= 0 uses DefaultVNodes. Peer names
// must be unique and non-empty.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	seen := map[string]bool{}
	r := &Ring{peers: sorted, vnodes: vnodes}
	for _, p := range sorted {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer name")
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: vnodeHash(p, i), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// Peers returns the sorted peer names.
func (r *Ring) Peers() []string { return r.peers }

// Owner maps a trace key to its owning peer: the successor virtual node
// on the circle. When several peers' virtual nodes collide on that exact
// position (possible, if vanishingly rare, with 64-bit points), the tie
// is broken by rendezvous hashing — highest hash(key, peer) wins — so
// every replica still agrees deterministically.
func (r *Ring) Owner(key Key) string {
	kh := binary.BigEndian.Uint64(key[:8])
	// First point with hash > kh, wrapping to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash > kh })
	if i == len(r.points) {
		i = 0
	}
	h := r.points[i].hash
	// Collect the (usually single) run of points sharing the successor
	// position; sort order groups equal hashes together.
	end := i
	for end+1 < len(r.points) && r.points[end+1].hash == h {
		end++
	}
	if end == i {
		return r.points[i].peer
	}
	best, bestScore := "", uint64(0)
	for j := i; j <= end; j++ {
		if s := rendezvousScore(key, r.points[j].peer); best == "" || s > bestScore {
			best, bestScore = r.points[j].peer, s
		}
	}
	return best
}

// vnodeHash positions virtual node i of a peer on the circle.
func vnodeHash(peer string, i int) uint64 {
	sum := sha256.Sum256([]byte("pdt-ring\x00" + peer + "\x00" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// rendezvousScore is the highest-random-weight score of (key, peer).
func rendezvousScore(key Key, peer string) uint64 {
	h := sha256.New()
	h.Write(key[:])
	h.Write([]byte{0})
	h.Write([]byte(peer))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}
