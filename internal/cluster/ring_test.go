package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

func keyN(n uint64) Key {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], n)
	return sha256.Sum256(seed[:])
}

func TestRingDeterministicAcrossConstructions(t *testing.T) {
	// Two rings built from the same peers (any order) must agree on
	// every key — replicas never exchange ring state, so agreement is
	// purely constructional.
	a, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"c", "a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		k := keyN(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on key %d: %s vs %s", i, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 30000
	for i := uint64(0); i < n; i++ {
		counts[r.Owner(keyN(i))]++
	}
	for peer, c := range counts {
		// With 64 vnodes each, shares should sit near n/3; accept a wide
		// band — the test guards against a broken hash, not variance.
		if c < n/6 || c > n/2 {
			t.Fatalf("peer %s owns %d of %d keys (counts %v)", peer, c, n, counts)
		}
	}
}

func TestRingConsistency(t *testing.T) {
	// Removing one peer must only remap the keys that peer owned: the
	// defining property of consistent hashing.
	full, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := uint64(0); i < 10000; i++ {
		k := keyN(i)
		before, after := full.Owner(k), reduced.Owner(k)
		if before == "c" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %d moved %s -> %s though its owner survived", i, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("peer c owned nothing; ring is degenerate")
	}
}

func TestRingSinglePeerOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"solo"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if got := r.Owner(keyN(i)); got != "solo" {
			t.Fatalf("owner = %q", got)
		}
	}
}

func TestRingRejectsBadPeerLists(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty peer name accepted")
	}
}

func TestRendezvousTiebreakDeterministic(t *testing.T) {
	// The tiebreak itself: for any key, the rendezvous winner among a
	// fixed peer set is stable and total.
	k := keyN(42)
	best, bestScore := "", uint64(0)
	for _, p := range []string{"a", "b", "c"} {
		s := rendezvousScore(k, p)
		if best == "" || s > bestScore {
			best, bestScore = p, s
		}
	}
	for i := 0; i < 10; i++ {
		got, gotScore := "", uint64(0)
		for _, p := range []string{"c", "b", "a"} {
			s := rendezvousScore(k, p)
			if got == "" || s > gotScore {
				got, gotScore = p, s
			}
		}
		if got != best {
			t.Fatalf("tiebreak unstable: %s vs %s", got, best)
		}
	}
}
