// Package core implements the PDT tracing runtime: the instrumented SPU
// and Host wrappers (the model's equivalent of the instrumented SPE/libspe2
// libraries), per-SPE trace buffers resident in the simulated local store
// and flushed to main memory by real simulated DMA, a host-side PPE buffer,
// configuration, clock-correlation metadata, and the trace session writer.
package core

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"

	"github.com/celltrace/pdt/internal/core/event"
)

// Config selects what is traced and how trace buffers behave. The zero
// value traces nothing; start from DefaultTraceConfig.
type Config struct {
	// Groups is the enabled event-group mask.
	Groups event.Group
	// EventOverride force-enables or -disables individual events,
	// overriding the group mask.
	EventOverride map[event.ID]bool

	// SPEBufferSize is the local-store trace buffer size in bytes. With
	// DoubleBuffered it is split into two halves. It is carved from the
	// top of the local store; applications must not touch that region.
	SPEBufferSize int
	// DoubleBuffered selects two half-buffers with asynchronous flushes
	// (the flush DMA overlaps tracing into the other half) instead of a
	// single buffer with a synchronous flush.
	DoubleBuffered bool
	// FlushTagA/FlushTagB are the MFC tag groups reserved for trace
	// flush DMA; applications must not use them while traced.
	FlushTagA, FlushTagB int

	// MainBufferPerSPE is the size of the per-program main-memory trace
	// region. When it fills, further records from that program are
	// dropped and counted — unless WrapMain is set.
	MainBufferPerSPE int
	// WrapMain makes a full main-memory region wrap around and overwrite
	// its oldest flushes, keeping the *last* records of the run instead
	// of the first (the mode for long-running programs where the
	// interesting behaviour is at the end). Overwritten records are
	// counted as drops in the metadata.
	WrapMain bool

	// FlushRetryMax bounds how many times a failed flush DMA is retried
	// before the bufferful is dropped (drop-newest) with exact per-SPE
	// accounting; WrapMain remains the drop policy for a full main
	// region. FlushRetryBackoff is the first retry's busy-wait in cycles;
	// each further retry doubles it. Zero values select the defaults
	// (3 retries, 256 cycles).
	FlushRetryMax     int
	FlushRetryBackoff uint64

	// SPEEventCost and PPEEventCost model the instrumentation cost of
	// recording one event (timestamp read + buffer write), in cycles.
	SPEEventCost uint64
	PPEEventCost uint64

	// WindowStart/WindowEnd restrict recording to a cycle window
	// (both zero = always on). Events outside the window still pay a
	// small check but are not recorded — PDT's dynamic-enable knob for
	// capturing only the steady state of a long run.
	WindowStart, WindowEnd uint64

	// Workload and Params annotate the trace metadata.
	Workload string
	Params   map[string]string
}

// DefaultTraceConfig traces every group with a 16 KiB double-buffered
// local-store buffer, matching the PDT defaults.
func DefaultTraceConfig() Config {
	return Config{
		Groups:            event.GroupAll,
		SPEBufferSize:     16 * 1024,
		DoubleBuffered:    true,
		FlushTagA:         31,
		FlushTagB:         30,
		MainBufferPerSPE:  4 * 1024 * 1024,
		FlushRetryMax:     3,
		FlushRetryBackoff: 256,
		SPEEventCost:      200,
		PPEEventCost:      100,
	}
}

// flushRetryMax and flushRetryBackoff apply the documented defaults for
// zero-valued configurations (hand-built Configs predating the fields).
func (c *Config) flushRetryMax() int {
	if c.FlushRetryMax <= 0 {
		return 3
	}
	return c.FlushRetryMax
}

func (c *Config) flushRetryBackoff() uint64 {
	if c.FlushRetryBackoff == 0 {
		return 256
	}
	return c.FlushRetryBackoff
}

// EventOn reports whether records of the given event type are collected.
func (c *Config) EventOn(id event.ID) bool {
	if on, ok := c.EventOverride[id]; ok {
		return on
	}
	info, ok := event.Lookup(id)
	if !ok {
		return false
	}
	return c.Groups&info.Group != 0
}

// validate panics on configurations the runtime cannot honor.
func (c *Config) validate() {
	if c.SPEBufferSize < 512 {
		panic("core: SPEBufferSize must be at least 512 bytes")
	}
	if c.SPEBufferSize%32 != 0 {
		panic("core: SPEBufferSize must be a multiple of 32")
	}
	if c.MainBufferPerSPE < c.SPEBufferSize {
		panic("core: MainBufferPerSPE smaller than the SPE buffer")
	}
	for _, tag := range []int{c.FlushTagA, c.FlushTagB} {
		if tag < 0 || tag >= 32 {
			panic(fmt.Sprintf("core: flush tag %d out of range", tag))
		}
	}
	if c.FlushTagA == c.FlushTagB {
		panic("core: flush tags must differ")
	}
}

// xmlConfig is the on-disk XML schema (the paper's PDT was configured the
// same way: an XML file selecting event groups and buffer parameters).
type xmlConfig struct {
	XMLName xml.Name `xml:"pdt"`
	Buffer  struct {
		SPE            int  `xml:"spe,attr"`
		DoubleBuffered bool `xml:"doubleBuffered,attr"`
		FlushTagA      int  `xml:"flushTagA,attr"`
		FlushTagB      int  `xml:"flushTagB,attr"`
		MainPerSPE     int  `xml:"mainPerSPE,attr"`
		Wrap           bool `xml:"wrap,attr"`
	} `xml:"buffer"`
	Cost struct {
		SPEEvent uint64 `xml:"speEvent,attr"`
		PPEEvent uint64 `xml:"ppeEvent,attr"`
	} `xml:"cost"`
	Groups []struct {
		Name    string `xml:"name,attr"`
		Enabled bool   `xml:"enabled,attr"`
	} `xml:"groups>group"`
	Events []struct {
		Name    string `xml:"name,attr"`
		Enabled bool   `xml:"enabled,attr"`
	} `xml:"events>event"`
}

// ParseConfigXML reads an XML configuration, applying it over the
// defaults: groups listed replace the default "all" mask (enabled ones are
// OR'ed in, and listing any group switches to an explicit mask); events
// listed become per-event overrides.
func ParseConfigXML(r io.Reader) (Config, error) {
	cfg := DefaultTraceConfig()
	var x xmlConfig
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&x); err != nil {
		return cfg, fmt.Errorf("core: parse config: %w", err)
	}
	if x.Buffer.SPE != 0 {
		cfg.SPEBufferSize = x.Buffer.SPE
	}
	if x.Buffer.MainPerSPE != 0 {
		cfg.MainBufferPerSPE = x.Buffer.MainPerSPE
	}
	if x.Buffer.FlushTagA != 0 || x.Buffer.FlushTagB != 0 {
		cfg.FlushTagA, cfg.FlushTagB = x.Buffer.FlushTagA, x.Buffer.FlushTagB
	}
	cfg.DoubleBuffered = x.Buffer.DoubleBuffered
	cfg.WrapMain = x.Buffer.Wrap
	if x.Cost.SPEEvent != 0 {
		cfg.SPEEventCost = x.Cost.SPEEvent
	}
	if x.Cost.PPEEvent != 0 {
		cfg.PPEEventCost = x.Cost.PPEEvent
	}
	if len(x.Groups) > 0 {
		cfg.Groups = 0
		for _, g := range x.Groups {
			bit, ok := event.ParseGroup(g.Name)
			if !ok {
				return cfg, fmt.Errorf("core: unknown group %q", g.Name)
			}
			if g.Enabled {
				cfg.Groups |= bit
			}
		}
	}
	for _, e := range x.Events {
		info, ok := event.ByName(e.Name)
		if !ok {
			return cfg, fmt.Errorf("core: unknown event %q", e.Name)
		}
		if cfg.EventOverride == nil {
			cfg.EventOverride = map[event.ID]bool{}
		}
		cfg.EventOverride[info.ID] = e.Enabled
	}
	return cfg, nil
}

// LoadConfigFile reads an XML configuration file.
func LoadConfigFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return ParseConfigXML(f)
}

// MarshalXML renders the configuration back to its XML form.
func (c Config) MarshalConfigXML() ([]byte, error) {
	var x xmlConfig
	x.Buffer.SPE = c.SPEBufferSize
	x.Buffer.DoubleBuffered = c.DoubleBuffered
	x.Buffer.FlushTagA = c.FlushTagA
	x.Buffer.FlushTagB = c.FlushTagB
	x.Buffer.MainPerSPE = c.MainBufferPerSPE
	x.Buffer.Wrap = c.WrapMain
	x.Cost.SPEEvent = c.SPEEventCost
	x.Cost.PPEEvent = c.PPEEventCost
	for _, g := range event.Groups() {
		x.Groups = append(x.Groups, struct {
			Name    string `xml:"name,attr"`
			Enabled bool   `xml:"enabled,attr"`
		}{Name: g.String(), Enabled: c.Groups&g != 0})
	}
	for id, on := range c.EventOverride {
		x.Events = append(x.Events, struct {
			Name    string `xml:"name,attr"`
			Enabled bool   `xml:"enabled,attr"`
		}{Name: id.String(), Enabled: on})
	}
	return xml.MarshalIndent(&x, "", "  ")
}

// GroupsString names the enabled groups for metadata.
func (c *Config) GroupsString() string { return c.Groups.String() }
