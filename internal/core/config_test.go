package core

import (
	"strings"
	"testing"

	"github.com/celltrace/pdt/internal/core/event"
)

func TestDefaultTraceConfig(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.validate()
	if cfg.Groups != event.GroupAll {
		t.Fatal("default should enable all groups")
	}
	if !cfg.EventOn(event.SPEMFCGet) || !cfg.EventOn(event.PPEWriteSignal) {
		t.Fatal("default config disables events")
	}
}

func TestEventOnGroupMask(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Groups = event.GroupMFC
	if !cfg.EventOn(event.SPEMFCGet) {
		t.Fatal("MFC event off under GroupMFC")
	}
	if cfg.EventOn(event.SPEReadInMboxEnter) {
		t.Fatal("mailbox event on under GroupMFC")
	}
}

func TestEventOverride(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Groups = event.GroupMFC
	cfg.EventOverride = map[event.ID]bool{
		event.SPEMFCGet:          false, // disable within enabled group
		event.SPEReadInMboxEnter: true,  // enable within disabled group
	}
	if cfg.EventOn(event.SPEMFCGet) {
		t.Fatal("override-off ignored")
	}
	if !cfg.EventOn(event.SPEReadInMboxEnter) {
		t.Fatal("override-on ignored")
	}
	if !cfg.EventOn(event.SPEMFCPut) {
		t.Fatal("non-overridden group event lost")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"tiny buffer", func(c *Config) { c.SPEBufferSize = 128 }},
		{"unaligned buffer", func(c *Config) { c.SPEBufferSize = 1000 }},
		{"main smaller than spe", func(c *Config) { c.MainBufferPerSPE = 1024; c.SPEBufferSize = 2048 }},
		{"bad flush tag", func(c *Config) { c.FlushTagA = 32 }},
		{"equal flush tags", func(c *Config) { c.FlushTagB = c.FlushTagA }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultTraceConfig()
			tc.mut(&cfg)
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			cfg.validate()
		})
	}
}

const sampleXML = `
<pdt>
  <buffer spe="8192" doubleBuffered="true" flushTagA="31" flushTagB="30" mainPerSPE="1048576"/>
  <cost speEvent="150" ppeEvent="60"/>
  <groups>
    <group name="mfc" enabled="true"/>
    <group name="mailbox" enabled="true"/>
    <group name="lifecycle" enabled="true"/>
    <group name="user" enabled="false"/>
  </groups>
  <events>
    <event name="SPE_MFC_GETL" enabled="false"/>
  </events>
</pdt>`

func TestParseConfigXML(t *testing.T) {
	cfg, err := ParseConfigXML(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SPEBufferSize != 8192 || !cfg.DoubleBuffered || cfg.MainBufferPerSPE != 1<<20 {
		t.Fatalf("buffer cfg = %+v", cfg)
	}
	if cfg.SPEEventCost != 150 || cfg.PPEEventCost != 60 {
		t.Fatalf("costs = %d/%d", cfg.SPEEventCost, cfg.PPEEventCost)
	}
	want := event.GroupMFC | event.GroupMailbox | event.GroupLifecycle
	if cfg.Groups != want {
		t.Fatalf("groups = %v, want %v", cfg.Groups, want)
	}
	if cfg.EventOn(event.SPEMFCGetList) {
		t.Fatal("per-event disable ignored")
	}
	if !cfg.EventOn(event.SPEMFCGet) {
		t.Fatal("group-enabled event off")
	}
}

func TestParseConfigXMLErrors(t *testing.T) {
	if _, err := ParseConfigXML(strings.NewReader("<pdt><groups><group name='bogus' enabled='true'/></groups></pdt>")); err == nil {
		t.Fatal("unknown group accepted")
	}
	if _, err := ParseConfigXML(strings.NewReader("<pdt><events><event name='NOPE' enabled='true'/></events></pdt>")); err == nil {
		t.Fatal("unknown event accepted")
	}
	if _, err := ParseConfigXML(strings.NewReader("not xml")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestConfigXMLRoundTrip(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Groups = event.GroupMFC | event.GroupSync
	cfg.EventOverride = map[event.ID]bool{event.SPEMFCPut: false}
	data, err := cfg.MarshalConfigXML()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseConfigXML(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if back.Groups != cfg.Groups {
		t.Fatalf("groups = %v, want %v", back.Groups, cfg.Groups)
	}
	if back.EventOn(event.SPEMFCPut) {
		t.Fatal("override lost in round trip")
	}
	if back.SPEBufferSize != cfg.SPEBufferSize || back.DoubleBuffered != cfg.DoubleBuffered {
		t.Fatal("buffer params lost")
	}
}

func TestLoadConfigFileMissing(t *testing.T) {
	if _, err := LoadConfigFile("/nonexistent/pdt.xml"); err == nil {
		t.Fatal("missing file accepted")
	}
}
