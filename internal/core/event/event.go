// Package event defines the PDT event model: event identifiers, event
// groups, and the per-event metadata table that is the single source of
// truth for record arity, argument names, and pretty-printing. The trace
// writer, the trace reader, and the analyzer all consume this table, so
// encoder and decoder can never disagree about a record's shape.
package event

import "fmt"

// Group classifies events for configuration (the paper's PDT enables or
// disables whole groups via its configuration file).
type Group uint16

const (
	GroupLifecycle Group = 1 << iota // SPE program / context lifecycle
	GroupMFC                         // DMA commands and tag waits
	GroupMailbox                     // mailbox reads/writes, both sides
	GroupSignal                      // signal-notification registers
	GroupAtomic                      // atomic (reservation) operations
	GroupSync                        // barriers, mutexes, work queues
	GroupUser                        // application-defined events
	GroupHost                        // PPE-side libspe-style calls
	GroupOverhead                    // PDT's own buffer flushes

	// GroupAll enables everything.
	GroupAll Group = 1<<iota - 1
)

var groupNames = map[Group]string{
	GroupLifecycle: "lifecycle",
	GroupMFC:       "mfc",
	GroupMailbox:   "mailbox",
	GroupSignal:    "signal",
	GroupAtomic:    "atomic",
	GroupSync:      "sync",
	GroupUser:      "user",
	GroupHost:      "host",
	GroupOverhead:  "overhead",
}

// String returns the configuration name of a single group, or a combined
// form for masks.
func (g Group) String() string {
	if s, ok := groupNames[g]; ok {
		return s
	}
	if g == GroupAll {
		return "all"
	}
	s := ""
	for bit := Group(1); bit < GroupAll; bit <<= 1 {
		if g&bit != 0 {
			if s != "" {
				s += "|"
			}
			s += groupNames[bit]
		}
	}
	if s == "" {
		return fmt.Sprintf("group(%#x)", uint16(g))
	}
	return s
}

// ParseGroup resolves a configuration name to a group bit.
func ParseGroup(name string) (Group, bool) {
	if name == "all" {
		return GroupAll, true
	}
	for g, n := range groupNames {
		if n == name {
			return g, true
		}
	}
	return 0, false
}

// Groups lists the individual group bits in declaration order.
func Groups() []Group {
	return []Group{
		GroupLifecycle, GroupMFC, GroupMailbox, GroupSignal, GroupAtomic,
		GroupSync, GroupUser, GroupHost, GroupOverhead,
	}
}

// Kind distinguishes instantaneous events from interval boundaries; the
// analyzer pairs Enter/Exit events of the same ID family into intervals.
type Kind uint8

const (
	KindPoint Kind = iota
	KindEnter
	KindExit
)

// ID identifies one event type.
type ID uint16

// SPE-side events.
const (
	idInvalid ID = iota

	SPEProgramStart // args: nameRef
	SPEProgramEnd   // args: exitCode

	SPEMFCGet     // args: lsOff, ea, size, tag
	SPEMFCPut     // args: lsOff, ea, size, tag
	SPEMFCGetList // args: lsOff, nElems, totalSize, tag
	SPEMFCPutList // args: lsOff, nElems, totalSize, tag

	SPEWaitTagEnter // args: mask
	SPEWaitTagExit  // args: mask, completed

	SPEReadInMboxEnter   // args: -
	SPEReadInMboxExit    // args: value
	SPEWriteOutMboxEnter // args: value
	SPEWriteOutMboxExit  // args: value
	SPEWriteIntrMboxEnter
	SPEWriteIntrMboxExit // args: value

	SPEReadSignalEnter // args: reg
	SPEReadSignalExit  // args: reg, value

	SPEAtomicEnter // args: op (0=cas,1=add), ea
	SPEAtomicExit  // args: op, result

	SPEUserEvent // args: id, a0, a1
	SPEUserLog   // args: -, string payload

	SPETraceFlush // args: bytes, cycles (overhead group)

	// Sync library events (emitted from cellsync through the user API).
	SyncBarrierEnter // args: barrierID
	SyncBarrierExit  // args: barrierID
	SyncMutexEnter   // args: ea
	SyncMutexAcquired
	SyncMutexRelease // args: ea
	SyncWQGetEnter   // args: queueID
	SyncWQGetExit    // args: queueID, item
	SyncWQPut        // args: queueID, item

	// PPE-side events.
	PPESPEStart // args: spe, nameRef
	PPEWaitEnter
	PPEWaitExit // args: spe, exitCode
	PPEWriteInMboxEnter
	PPEWriteInMboxExit // args: spe, value
	PPEReadOutMboxEnter
	PPEReadOutMboxExit // args: spe, value
	PPEReadIntrMboxEnter
	PPEReadIntrMboxExit // args: spe, value
	PPEWriteSignal      // args: spe, reg, value
	PPEAtomicEnter      // args: op, ea
	PPEAtomicExit       // args: op, result
	PPEUserEvent        // args: id, a0, a1
	PPEUserLog          // args: -, string payload

	// StringDef interns a string: args: ref; payload: the string.
	StringDef

	// SPESndsig is an SPE-issued signal-notification send (mfc_sndsig).
	SPESndsig // args: targetSPE, reg, value

	// PPE-side proxy DMA commands (spe_mfcio_get/put) and proxy tag wait.
	PPEDMAGet       // args: spe, lsOff, ea, size, tag
	PPEDMAPut       // args: spe, lsOff, ea, size, tag
	PPEWaitTagEnter // args: spe, mask
	PPEWaitTagExit  // args: spe, mask

	// LiveAnchor carries a clock anchor in-band: live streams emit one
	// as each SPE run starts, because their metadata was written before
	// any run existed. args: spe, timebase, loaded; payload: program.
	LiveAnchor

	maxID
)

// Info describes one event type.
type Info struct {
	ID    ID
	Name  string
	Group Group
	Kind  Kind
	Args  []string // argument names; len is the record arity
	// Pair links Enter events to their Exit ID (and vice versa).
	Pair ID
}

// table is indexed by ID.
var table = [maxID]Info{
	SPEProgramStart: {Name: "SPE_PROGRAM_START", Group: GroupLifecycle, Kind: KindPoint, Args: []string{"nameRef"}},
	SPEProgramEnd:   {Name: "SPE_PROGRAM_END", Group: GroupLifecycle, Kind: KindPoint, Args: []string{"exitCode"}},

	SPEMFCGet:     {Name: "SPE_MFC_GET", Group: GroupMFC, Kind: KindPoint, Args: []string{"lsOff", "ea", "size", "tag"}},
	SPEMFCPut:     {Name: "SPE_MFC_PUT", Group: GroupMFC, Kind: KindPoint, Args: []string{"lsOff", "ea", "size", "tag"}},
	SPEMFCGetList: {Name: "SPE_MFC_GETL", Group: GroupMFC, Kind: KindPoint, Args: []string{"lsOff", "nElems", "totalSize", "tag"}},
	SPEMFCPutList: {Name: "SPE_MFC_PUTL", Group: GroupMFC, Kind: KindPoint, Args: []string{"lsOff", "nElems", "totalSize", "tag"}},

	SPEWaitTagEnter: {Name: "SPE_WAIT_TAG_ENTER", Group: GroupMFC, Kind: KindEnter, Args: []string{"mask"}, Pair: SPEWaitTagExit},
	SPEWaitTagExit:  {Name: "SPE_WAIT_TAG_EXIT", Group: GroupMFC, Kind: KindExit, Args: []string{"mask", "completed"}, Pair: SPEWaitTagEnter},

	SPEReadInMboxEnter:    {Name: "SPE_READ_IN_MBOX_ENTER", Group: GroupMailbox, Kind: KindEnter, Pair: SPEReadInMboxExit},
	SPEReadInMboxExit:     {Name: "SPE_READ_IN_MBOX_EXIT", Group: GroupMailbox, Kind: KindExit, Args: []string{"value"}, Pair: SPEReadInMboxEnter},
	SPEWriteOutMboxEnter:  {Name: "SPE_WRITE_OUT_MBOX_ENTER", Group: GroupMailbox, Kind: KindEnter, Args: []string{"value"}, Pair: SPEWriteOutMboxExit},
	SPEWriteOutMboxExit:   {Name: "SPE_WRITE_OUT_MBOX_EXIT", Group: GroupMailbox, Kind: KindExit, Args: []string{"value"}, Pair: SPEWriteOutMboxEnter},
	SPEWriteIntrMboxEnter: {Name: "SPE_WRITE_INTR_MBOX_ENTER", Group: GroupMailbox, Kind: KindEnter, Args: []string{"value"}, Pair: SPEWriteIntrMboxExit},
	SPEWriteIntrMboxExit:  {Name: "SPE_WRITE_INTR_MBOX_EXIT", Group: GroupMailbox, Kind: KindExit, Args: []string{"value"}, Pair: SPEWriteIntrMboxEnter},

	SPEReadSignalEnter: {Name: "SPE_READ_SIGNAL_ENTER", Group: GroupSignal, Kind: KindEnter, Args: []string{"reg"}, Pair: SPEReadSignalExit},
	SPEReadSignalExit:  {Name: "SPE_READ_SIGNAL_EXIT", Group: GroupSignal, Kind: KindExit, Args: []string{"reg", "value"}, Pair: SPEReadSignalEnter},

	SPEAtomicEnter: {Name: "SPE_ATOMIC_ENTER", Group: GroupAtomic, Kind: KindEnter, Args: []string{"op", "ea"}, Pair: SPEAtomicExit},
	SPEAtomicExit:  {Name: "SPE_ATOMIC_EXIT", Group: GroupAtomic, Kind: KindExit, Args: []string{"op", "result"}, Pair: SPEAtomicEnter},

	SPEUserEvent: {Name: "SPE_USER_EVENT", Group: GroupUser, Kind: KindPoint, Args: []string{"id", "a0", "a1"}},
	SPEUserLog:   {Name: "SPE_USER_LOG", Group: GroupUser, Kind: KindPoint},

	SPETraceFlush: {Name: "SPE_TRACE_FLUSH", Group: GroupOverhead, Kind: KindPoint, Args: []string{"bytes", "cycles"}},

	SyncBarrierEnter:  {Name: "SYNC_BARRIER_ENTER", Group: GroupSync, Kind: KindEnter, Args: []string{"barrierID"}, Pair: SyncBarrierExit},
	SyncBarrierExit:   {Name: "SYNC_BARRIER_EXIT", Group: GroupSync, Kind: KindExit, Args: []string{"barrierID"}, Pair: SyncBarrierEnter},
	SyncMutexEnter:    {Name: "SYNC_MUTEX_ENTER", Group: GroupSync, Kind: KindEnter, Args: []string{"ea"}, Pair: SyncMutexAcquired},
	SyncMutexAcquired: {Name: "SYNC_MUTEX_ACQUIRED", Group: GroupSync, Kind: KindExit, Args: []string{"ea"}, Pair: SyncMutexEnter},
	SyncMutexRelease:  {Name: "SYNC_MUTEX_RELEASE", Group: GroupSync, Kind: KindPoint, Args: []string{"ea"}},
	SyncWQGetEnter:    {Name: "SYNC_WQ_GET_ENTER", Group: GroupSync, Kind: KindEnter, Args: []string{"queueID"}, Pair: SyncWQGetExit},
	SyncWQGetExit:     {Name: "SYNC_WQ_GET_EXIT", Group: GroupSync, Kind: KindExit, Args: []string{"queueID", "item"}, Pair: SyncWQGetEnter},
	SyncWQPut:         {Name: "SYNC_WQ_PUT", Group: GroupSync, Kind: KindPoint, Args: []string{"queueID", "item"}},

	PPESPEStart:          {Name: "PPE_SPE_START", Group: GroupHost, Kind: KindPoint, Args: []string{"spe", "nameRef"}},
	PPEWaitEnter:         {Name: "PPE_WAIT_ENTER", Group: GroupHost, Kind: KindEnter, Args: []string{"spe"}, Pair: PPEWaitExit},
	PPEWaitExit:          {Name: "PPE_WAIT_EXIT", Group: GroupHost, Kind: KindExit, Args: []string{"spe", "exitCode"}, Pair: PPEWaitEnter},
	PPEWriteInMboxEnter:  {Name: "PPE_WRITE_IN_MBOX_ENTER", Group: GroupHost, Kind: KindEnter, Args: []string{"spe", "value"}, Pair: PPEWriteInMboxExit},
	PPEWriteInMboxExit:   {Name: "PPE_WRITE_IN_MBOX_EXIT", Group: GroupHost, Kind: KindExit, Args: []string{"spe", "value"}, Pair: PPEWriteInMboxEnter},
	PPEReadOutMboxEnter:  {Name: "PPE_READ_OUT_MBOX_ENTER", Group: GroupHost, Kind: KindEnter, Args: []string{"spe"}, Pair: PPEReadOutMboxExit},
	PPEReadOutMboxExit:   {Name: "PPE_READ_OUT_MBOX_EXIT", Group: GroupHost, Kind: KindExit, Args: []string{"spe", "value"}, Pair: PPEReadOutMboxEnter},
	PPEReadIntrMboxEnter: {Name: "PPE_READ_INTR_MBOX_ENTER", Group: GroupHost, Kind: KindEnter, Args: []string{"spe"}, Pair: PPEReadIntrMboxExit},
	PPEReadIntrMboxExit:  {Name: "PPE_READ_INTR_MBOX_EXIT", Group: GroupHost, Kind: KindExit, Args: []string{"spe", "value"}, Pair: PPEReadIntrMboxEnter},
	PPEWriteSignal:       {Name: "PPE_WRITE_SIGNAL", Group: GroupHost, Kind: KindPoint, Args: []string{"spe", "reg", "value"}},
	PPEAtomicEnter:       {Name: "PPE_ATOMIC_ENTER", Group: GroupAtomic, Kind: KindEnter, Args: []string{"op", "ea"}, Pair: PPEAtomicExit},
	PPEAtomicExit:        {Name: "PPE_ATOMIC_EXIT", Group: GroupAtomic, Kind: KindExit, Args: []string{"op", "result"}, Pair: PPEAtomicEnter},
	PPEUserEvent:         {Name: "PPE_USER_EVENT", Group: GroupUser, Kind: KindPoint, Args: []string{"id", "a0", "a1"}},
	PPEUserLog:           {Name: "PPE_USER_LOG", Group: GroupUser, Kind: KindPoint},

	StringDef: {Name: "STRING_DEF", Group: GroupLifecycle, Kind: KindPoint, Args: []string{"ref"}},

	SPESndsig: {Name: "SPE_SNDSIG", Group: GroupSignal, Kind: KindPoint, Args: []string{"targetSPE", "reg", "value"}},

	PPEDMAGet:       {Name: "PPE_DMA_GET", Group: GroupHost, Kind: KindPoint, Args: []string{"spe", "lsOff", "ea", "size", "tag"}},
	PPEDMAPut:       {Name: "PPE_DMA_PUT", Group: GroupHost, Kind: KindPoint, Args: []string{"spe", "lsOff", "ea", "size", "tag"}},
	PPEWaitTagEnter: {Name: "PPE_WAIT_TAG_ENTER", Group: GroupHost, Kind: KindEnter, Args: []string{"spe", "mask"}, Pair: PPEWaitTagExit},
	PPEWaitTagExit:  {Name: "PPE_WAIT_TAG_EXIT", Group: GroupHost, Kind: KindExit, Args: []string{"spe", "mask"}, Pair: PPEWaitTagEnter},

	LiveAnchor: {Name: "LIVE_ANCHOR", Group: GroupOverhead, Kind: KindPoint, Args: []string{"spe", "timebase", "loaded"}},
}

func init() {
	for id := ID(1); id < maxID; id++ {
		table[id].ID = id
		if table[id].Name == "" {
			panic(fmt.Sprintf("event: missing metadata for ID %d", id))
		}
	}
}

// Lookup returns the metadata for id; ok is false for unknown IDs.
func Lookup(id ID) (Info, bool) {
	if id == idInvalid || id >= maxID {
		return Info{}, false
	}
	return table[id], true
}

// MustLookup returns the metadata for id, panicking on unknown IDs.
func MustLookup(id ID) Info {
	info, ok := Lookup(id)
	if !ok {
		panic(fmt.Sprintf("event: unknown event ID %d", id))
	}
	return info
}

// ByName resolves an event name (as in configuration files).
func ByName(name string) (Info, bool) {
	for id := ID(1); id < maxID; id++ {
		if table[id].Name == name {
			return table[id], true
		}
	}
	return Info{}, false
}

// All returns metadata for every defined event, in ID order.
func All() []Info {
	out := make([]Info, 0, int(maxID)-1)
	for id := ID(1); id < maxID; id++ {
		out = append(out, table[id])
	}
	return out
}

// NumIDs returns the exclusive upper bound of valid IDs.
func NumIDs() ID { return maxID }

func (id ID) String() string {
	if info, ok := Lookup(id); ok {
		return info.Name
	}
	return fmt.Sprintf("EVENT_%d", uint16(id))
}
