package event

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableComplete(t *testing.T) {
	for _, info := range All() {
		if info.Name == "" {
			t.Fatalf("event %d has no name", info.ID)
		}
		if info.Group == 0 {
			t.Fatalf("%s has no group", info.Name)
		}
	}
}

func TestPairSymmetry(t *testing.T) {
	for _, info := range All() {
		if info.Pair == 0 {
			if info.Kind != KindPoint {
				t.Errorf("%s is %v but has no pair", info.Name, info.Kind)
			}
			continue
		}
		peer := MustLookup(info.Pair)
		if peer.Pair != info.ID {
			t.Errorf("%s pairs to %s which pairs back to %s", info.Name, peer.Name, peer.Pair)
		}
		switch info.Kind {
		case KindEnter:
			if peer.Kind != KindExit {
				t.Errorf("%s (enter) paired to non-exit %s", info.Name, peer.Name)
			}
		case KindExit:
			if peer.Kind != KindEnter {
				t.Errorf("%s (exit) paired to non-enter %s", info.Name, peer.Name)
			}
		default:
			t.Errorf("%s is a point event with a pair", info.Name)
		}
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]ID{}
	for _, info := range All() {
		if prev, dup := seen[info.Name]; dup {
			t.Fatalf("name %s used by %d and %d", info.Name, prev, info.ID)
		}
		seen[info.Name] = info.ID
	}
}

func TestLookupBounds(t *testing.T) {
	if _, ok := Lookup(0); ok {
		t.Fatal("Lookup(0) succeeded")
	}
	if _, ok := Lookup(NumIDs()); ok {
		t.Fatal("Lookup(maxID) succeeded")
	}
	if _, ok := Lookup(SPEMFCGet); !ok {
		t.Fatal("Lookup(SPEMFCGet) failed")
	}
}

func TestByName(t *testing.T) {
	info, ok := ByName("SPE_MFC_GET")
	if !ok || info.ID != SPEMFCGet {
		t.Fatalf("ByName(SPE_MFC_GET) = %v,%v", info.ID, ok)
	}
	if _, ok := ByName("NO_SUCH_EVENT"); ok {
		t.Fatal("ByName of garbage succeeded")
	}
}

func TestGroupStringAndParse(t *testing.T) {
	for _, g := range Groups() {
		name := g.String()
		back, ok := ParseGroup(name)
		if !ok || back != g {
			t.Fatalf("ParseGroup(%q) = %v,%v", name, back, ok)
		}
	}
	if g, ok := ParseGroup("all"); !ok || g != GroupAll {
		t.Fatal("ParseGroup(all) failed")
	}
	if _, ok := ParseGroup("bogus"); ok {
		t.Fatal("ParseGroup(bogus) succeeded")
	}
	combined := GroupMFC | GroupMailbox
	if s := combined.String(); !strings.Contains(s, "mfc") || !strings.Contains(s, "mailbox") {
		t.Fatalf("combined String = %q", s)
	}
}

func TestIDString(t *testing.T) {
	if SPEMFCGet.String() != "SPE_MFC_GET" {
		t.Fatalf("got %q", SPEMFCGet.String())
	}
	if s := ID(9999).String(); !strings.Contains(s, "9999") {
		t.Fatalf("unknown id String = %q", s)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := Record{
		ID:    SPEMFCGet,
		Core:  3,
		Flags: FlagDecrTime,
		Time:  123456789,
		Args:  []uint64{0x100, 0xdeadbeef, 4096, 5},
	}
	buf, err := r.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if got.ID != r.ID || got.Core != r.Core || got.Flags != r.Flags || got.Time != r.Time {
		t.Fatalf("header mismatch: %+v vs %+v", got, r)
	}
	for i := range r.Args {
		if got.Args[i] != r.Args[i] {
			t.Fatalf("arg %d = %d, want %d", i, got.Args[i], r.Args[i])
		}
	}
}

func TestEncodeDecodeStringPayload(t *testing.T) {
	r := Record{
		ID:    SPEUserLog,
		Core:  0,
		Flags: FlagHasStr | FlagDecrTime,
		Time:  42,
		Str:   "phase: compute",
	}
	buf, err := r.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Str != r.Str {
		t.Fatalf("Str = %q, want %q", got.Str, r.Str)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good, err := (&Record{ID: SPEProgramEnd, Core: 1, Time: 1, Args: []uint64{0}}).AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short header", func(b []byte) []byte { return b[:5] }},
		{"size below header", func(b []byte) []byte { b[0] = 3; return b }},
		{"unknown id", func(b []byte) []byte { b[1], b[2] = 0xFF, 0x7F; return b }},
		{"wrong arity", func(b []byte) []byte { b[13] = 7; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			b = tc.mut(b)
			if _, _, err := Decode(b); err == nil {
				t.Fatalf("%s: decode succeeded", tc.name)
			}
		})
	}
}

func TestDecodeShortIsErrShortRecord(t *testing.T) {
	buf, err := (&Record{ID: SPEProgramEnd, Core: 1, Time: 1, Args: []uint64{0}}).AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(buf[:len(buf)-2]); err != ErrShortRecord {
		t.Fatalf("err = %v, want ErrShortRecord", err)
	}
}

func TestArgByName(t *testing.T) {
	r := Record{ID: SPEMFCPut, Args: []uint64{64, 0x2000, 512, 9}}
	if v, ok := r.Arg("size"); !ok || v != 512 {
		t.Fatalf("Arg(size) = %d,%v", v, ok)
	}
	if v, ok := r.Arg("tag"); !ok || v != 9 {
		t.Fatalf("Arg(tag) = %d,%v", v, ok)
	}
	if _, ok := r.Arg("nope"); ok {
		t.Fatal("Arg(nope) succeeded")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{ID: SPEMFCGet, Core: 2, Time: 99, Args: []uint64{0, 1, 16, 3}}
	s := r.String()
	for _, want := range []string{"SPE2", "SPE_MFC_GET", "size=16", "tag=3", "t=99"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
	p := Record{ID: PPEWriteSignal, Core: CorePPE, Args: []uint64{1, 1, 4}}
	if !strings.Contains(p.String(), "PPE") {
		t.Fatalf("PPE record String = %q", p.String())
	}
}

// Property: encode/decode round-trips arbitrary records built over the
// real metadata table.
func TestRoundTripProperty(t *testing.T) {
	ids := All()
	f := func(idIdx uint16, core uint8, time uint64, seed uint64, strLen uint8) bool {
		info := ids[int(idIdx)%len(ids)]
		r := Record{ID: info.ID, Core: core, Time: time}
		x := seed
		for range info.Args {
			x = x*6364136223846793005 + 1442695040888963407
			r.Args = append(r.Args, x)
		}
		if int(strLen)%3 == 0 {
			r.Flags |= FlagHasStr
			n := int(strLen) % MaxStrLen
			b := make([]byte, n)
			for i := range b {
				x = x*6364136223846793005 + 1442695040888963407
				b[i] = byte(x)
			}
			r.Str = string(b)
		}
		buf, err := r.AppendTo(nil)
		if err != nil {
			return false
		}
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if got.ID != r.ID || got.Core != r.Core || got.Time != r.Time || got.Str != r.Str {
			return false
		}
		for i := range r.Args {
			if got.Args[i] != r.Args[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	r := Record{ID: SPEUserEvent, Core: 1, Args: []uint64{1, 2, 3}}
	buf, err := r.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != r.EncodedSize() {
		t.Fatalf("len = %d, EncodedSize = %d", len(buf), r.EncodedSize())
	}
}
