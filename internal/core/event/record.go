package event

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CorePPE is the Record.Core value for events from the main PPE thread;
// SPE records carry the SPE index. Additional PPE threads count downward
// from CorePPE (0xFE, 0xFD, ...) so every thread has its own ordered
// stream, down to CorePPEBase.
const (
	CorePPE     = 0xFF
	CorePPEBase = 0xF0
)

// CoreName renders a core byte for humans: "SPE3", "PPE", "PPE.1", ...
func CoreName(c uint8) string {
	if c < CorePPEBase {
		return fmt.Sprintf("SPE%d", c)
	}
	if c == CorePPE {
		return "PPE"
	}
	return fmt.Sprintf("PPE.%d", CorePPE-c)
}

// Record flags.
const (
	// FlagDecrTime marks Time as elapsed SPU-decrementer ticks since the
	// program-start anchor (SPE records); without it Time is an absolute
	// PPE timebase tick.
	FlagDecrTime = 1 << 0
	// FlagHasStr marks a trailing string payload.
	FlagHasStr = 1 << 1
)

// MaxStrLen is the longest string payload a record can carry; longer
// strings are truncated by the writer.
const MaxStrLen = 200

// headerSize is the fixed part of an encoded record:
// size u8 | id u16 | core u8 | flags u8 | time u64 | nargs u8.
const headerSize = 1 + 2 + 1 + 1 + 8 + 1

// MinRecordSize is the smallest possible encoded record (a zero-arg
// record is just the header). Decoders use it to bound the record count
// of a buffer from its byte length.
const MinRecordSize = headerSize

// Record is one decoded trace record.
type Record struct {
	ID    ID
	Core  uint8 // SPE index, or CorePPE
	Flags uint8
	Time  uint64
	Args  []uint64
	Str   string
}

// IsSPE reports whether the record came from an SPE.
func (r *Record) IsSPE() bool { return r.Core < CorePPEBase }

// EncodedSize returns the byte length of the encoded record.
func (r *Record) EncodedSize() int {
	n := headerSize + 8*len(r.Args)
	if r.Flags&FlagHasStr != 0 {
		n += 2 + len(r.Str)
	}
	return n
}

// ErrRecordTooLarge is returned when a record cannot fit the 1-byte size
// field; writers must truncate strings to MaxStrLen to avoid it.
var ErrRecordTooLarge = errors.New("event: record exceeds 255 bytes")

// AppendTo appends the encoded record to buf and returns the result.
func (r *Record) AppendTo(buf []byte) ([]byte, error) {
	size := r.EncodedSize()
	if size > 255 {
		return buf, ErrRecordTooLarge
	}
	buf = append(buf, byte(size))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(r.ID))
	buf = append(buf, r.Core, r.Flags)
	buf = binary.LittleEndian.AppendUint64(buf, r.Time)
	buf = append(buf, byte(len(r.Args)))
	for _, a := range r.Args {
		buf = binary.LittleEndian.AppendUint64(buf, a)
	}
	if r.Flags&FlagHasStr != 0 {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Str)))
		buf = append(buf, r.Str...)
	}
	return buf, nil
}

// Decode decodes one record from the front of buf, returning the record
// and the number of bytes consumed. Errors identify structural corruption;
// an io-style short buffer yields ErrShortRecord so stream readers can
// distinguish truncation from garbage.
var ErrShortRecord = errors.New("event: truncated record")

// Decode parses the first record in buf.
func Decode(buf []byte) (Record, int, error) {
	if len(buf) < 1 {
		return Record{}, 0, ErrShortRecord
	}
	size := int(buf[0])
	if size < headerSize {
		return Record{}, 0, fmt.Errorf("event: record size %d below header size", size)
	}
	if len(buf) < size {
		return Record{}, 0, ErrShortRecord
	}
	var r Record
	r.ID = ID(binary.LittleEndian.Uint16(buf[1:3]))
	r.Core = buf[3]
	r.Flags = buf[4]
	r.Time = binary.LittleEndian.Uint64(buf[5:13])
	nargs := int(buf[13])
	info, ok := Lookup(r.ID)
	if !ok {
		return Record{}, 0, fmt.Errorf("event: unknown event ID %d", r.ID)
	}
	if nargs != len(info.Args) {
		return Record{}, 0, fmt.Errorf("event: %s has %d args, expected %d", info.Name, nargs, len(info.Args))
	}
	off := headerSize
	if off+8*nargs > size {
		return Record{}, 0, fmt.Errorf("event: %s args overflow record size", info.Name)
	}
	if nargs > 0 {
		r.Args = make([]uint64, nargs)
		for i := range r.Args {
			r.Args[i] = binary.LittleEndian.Uint64(buf[off : off+8])
			off += 8
		}
	}
	if r.Flags&FlagHasStr != 0 {
		if off+2 > size {
			return Record{}, 0, fmt.Errorf("event: %s string length overflows record", info.Name)
		}
		n := int(binary.LittleEndian.Uint16(buf[off : off+2]))
		off += 2
		if off+n != size {
			return Record{}, 0, fmt.Errorf("event: %s string payload inconsistent with record size", info.Name)
		}
		r.Str = string(buf[off : off+n])
		off += n
	}
	if off != size {
		return Record{}, 0, fmt.Errorf("event: %s trailing bytes in record", info.Name)
	}
	return r, size, nil
}

// Arg returns the value of the named argument, looked up through the
// metadata table.
func (r *Record) Arg(name string) (uint64, bool) {
	info, ok := Lookup(r.ID)
	if !ok {
		return 0, false
	}
	for i, n := range info.Args {
		if n == name && i < len(r.Args) {
			return r.Args[i], true
		}
	}
	return 0, false
}

// String renders the record for human consumption.
func (r *Record) String() string {
	info, _ := Lookup(r.ID)
	s := fmt.Sprintf("[%s t=%d] %s", CoreName(r.Core), r.Time, info.Name)
	for i, a := range r.Args {
		name := fmt.Sprintf("a%d", i)
		if i < len(info.Args) {
			name = info.Args[i]
		}
		s += fmt.Sprintf(" %s=%d", name, a)
	}
	if r.Flags&FlagHasStr != 0 {
		s += fmt.Sprintf(" %q", r.Str)
	}
	return s
}
