package event

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CorePPE is the Record.Core value for events from the main PPE thread;
// SPE records carry the SPE index. Additional PPE threads count downward
// from CorePPE (0xFE, 0xFD, ...) so every thread has its own ordered
// stream, down to CorePPEBase.
const (
	CorePPE     = 0xFF
	CorePPEBase = 0xF0
)

// CoreName renders a core byte for humans: "SPE3", "PPE", "PPE.1", ...
func CoreName(c uint8) string {
	if c < CorePPEBase {
		return fmt.Sprintf("SPE%d", c)
	}
	if c == CorePPE {
		return "PPE"
	}
	return fmt.Sprintf("PPE.%d", CorePPE-c)
}

// Record flags.
const (
	// FlagDecrTime marks Time as elapsed SPU-decrementer ticks since the
	// program-start anchor (SPE records); without it Time is an absolute
	// PPE timebase tick.
	FlagDecrTime = 1 << 0
	// FlagHasStr marks a trailing string payload.
	FlagHasStr = 1 << 1
)

// MaxStrLen is the longest string payload a record can carry; longer
// strings are truncated by the writer.
const MaxStrLen = 200

// headerSize is the fixed part of an encoded record:
// size u8 | id u16 | core u8 | flags u8 | time u64 | nargs u8.
const headerSize = 1 + 2 + 1 + 1 + 8 + 1

// MinRecordSize is the smallest possible encoded record (a zero-arg
// record is just the header). Decoders use it to bound the record count
// of a buffer from its byte length.
const MinRecordSize = headerSize

// Record is one decoded trace record.
type Record struct {
	ID    ID
	Core  uint8 // SPE index, or CorePPE
	Flags uint8
	Time  uint64
	Args  []uint64
	Str   string
}

// IsSPE reports whether the record came from an SPE.
func (r *Record) IsSPE() bool { return r.Core < CorePPEBase }

// EncodedSize returns the byte length of the encoded record.
func (r *Record) EncodedSize() int {
	n := headerSize + 8*len(r.Args)
	if r.Flags&FlagHasStr != 0 {
		n += 2 + len(r.Str)
	}
	return n
}

// ErrRecordTooLarge is returned when a record cannot fit the 1-byte size
// field; writers must truncate strings to MaxStrLen to avoid it.
var ErrRecordTooLarge = errors.New("event: record exceeds 255 bytes")

// AppendTo appends the encoded record to buf and returns the result.
func (r *Record) AppendTo(buf []byte) ([]byte, error) {
	size := r.EncodedSize()
	if size > 255 {
		return buf, ErrRecordTooLarge
	}
	buf = append(buf, byte(size))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(r.ID))
	buf = append(buf, r.Core, r.Flags)
	buf = binary.LittleEndian.AppendUint64(buf, r.Time)
	buf = append(buf, byte(len(r.Args)))
	for _, a := range r.Args {
		buf = binary.LittleEndian.AppendUint64(buf, a)
	}
	if r.Flags&FlagHasStr != 0 {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Str)))
		buf = append(buf, r.Str...)
	}
	return buf, nil
}

// Decode decodes one record from the front of buf, returning the record
// and the number of bytes consumed. Errors identify structural corruption;
// an io-style short buffer yields ErrShortRecord so stream readers can
// distinguish truncation from garbage.
var ErrShortRecord = errors.New("event: truncated record")

// Decode parses the first record in buf.
func Decode(buf []byte) (Record, int, error) {
	r, n, _, err := DecodeInto(buf, nil)
	return r, n, err
}

// ScanChunk walks the record framing of one chunk — size bytes and
// zero-padding runs only, no field decoding — and returns an upper bound
// on the records and argument words a full decode of the same bytes can
// produce. Bulk decoders size their record slice and argument arena from
// it instead of assuming every record is MinRecordSize, which
// over-allocates several-fold on arg-heavy streams.
//
// The bound is safe against hostile input: the scan stops at the first
// record the decoder would reject for framing (size below the header or
// past the buffer), and the word count covers every byte the scanned
// records own beyond their headers — at least the argument words
// DecodeInto can accept per record (it rejects args overflowing the
// record's declared size before appending any). The decoder therefore
// never appends more words than ScanChunk counted, so an arena sized
// from it cannot regrow while earlier records alias its backing array.
func ScanChunk(data []byte) (records, argWords int) {
	bytes := 0 // record bytes walked, headers included
	for len(data) > 0 {
		if data[0] == 0 {
			// DMA-alignment padding between buffer flushes.
			n := 1
			for n < len(data) && data[n] == 0 {
				n++
			}
			data = data[n:]
			continue
		}
		size := int(data[0])
		if size < headerSize || size > len(data) {
			break
		}
		records++
		bytes += size
		data = data[size:]
	}
	return records, (bytes - records*headerSize) / 8
}

// DecodeInto parses the first record in buf like Decode, but appends any
// arguments to arena instead of allocating a fresh slice per record; the
// returned record's Args aliases the appended tail of the returned arena.
// Bulk decoders size the arena's capacity up front (a chunk of n data
// bytes can never hold more than n/8 argument words) so growth cannot
// reallocate while earlier records' Args still alias the backing array.
// Zero-argument records keep Args nil, matching Decode.
func DecodeInto(buf []byte, arena []uint64) (Record, int, []uint64, error) {
	var r Record
	n, arena, err := DecodeNext(&r, buf, arena)
	return r, n, arena, err
}

// DecodeNext is DecodeInto writing the record into *dst instead of
// returning it by value: bulk decoders point dst at the next slot of
// their preallocated record slice, skipping two 64-byte struct copies
// per record (the return and the append). On error *dst is not written.
func DecodeNext(dst *Record, buf []byte, arena []uint64) (int, []uint64, error) {
	if len(buf) < 1 {
		return 0, arena, ErrShortRecord
	}
	size := int(buf[0])
	if size < headerSize {
		return 0, arena, fmt.Errorf("event: record size %d below header size", size)
	}
	if len(buf) < size {
		return 0, arena, ErrShortRecord
	}
	id := ID(binary.LittleEndian.Uint16(buf[1:3]))
	nargs := int(buf[13])
	// Metadata via pointer, not Lookup: copying the Info struct per
	// record is measurable in bulk decode, and only the arity and (on
	// the error paths) the name are needed.
	if id == idInvalid || id >= maxID {
		return 0, arena, fmt.Errorf("event: unknown event ID %d", id)
	}
	info := &table[id]
	if nargs != len(info.Args) {
		return 0, arena, fmt.Errorf("event: %s has %d args, expected %d", info.Name, nargs, len(info.Args))
	}
	off := headerSize
	if off+8*nargs > size {
		return 0, arena, fmt.Errorf("event: %s args overflow record size", info.Name)
	}
	flags := buf[4]
	var args []uint64
	if nargs > 0 {
		start := len(arena)
		for i := 0; i < nargs; i++ {
			arena = append(arena, binary.LittleEndian.Uint64(buf[off:off+8]))
			off += 8
		}
		args = arena[start:len(arena):len(arena)]
	}
	var str string
	if flags&FlagHasStr != 0 {
		if off+2 > size {
			return 0, arena, fmt.Errorf("event: %s string length overflows record", info.Name)
		}
		n := int(binary.LittleEndian.Uint16(buf[off : off+2]))
		off += 2
		if off+n != size {
			return 0, arena, fmt.Errorf("event: %s string payload inconsistent with record size", info.Name)
		}
		str = string(buf[off : off+n])
		off += n
	}
	if off != size {
		return 0, arena, fmt.Errorf("event: %s trailing bytes in record", info.Name)
	}
	dst.ID = id
	dst.Core = buf[3]
	dst.Flags = flags
	dst.Time = binary.LittleEndian.Uint64(buf[5:13])
	dst.Args = args
	dst.Str = str
	return size, arena, nil
}

// Arg returns the value of the named argument, looked up through the
// metadata table.
func (r *Record) Arg(name string) (uint64, bool) {
	info, ok := Lookup(r.ID)
	if !ok {
		return 0, false
	}
	for i, n := range info.Args {
		if n == name && i < len(r.Args) {
			return r.Args[i], true
		}
	}
	return 0, false
}

// String renders the record for human consumption.
func (r *Record) String() string {
	info, _ := Lookup(r.ID)
	s := fmt.Sprintf("[%s t=%d] %s", CoreName(r.Core), r.Time, info.Name)
	for i, a := range r.Args {
		name := fmt.Sprintf("a%d", i)
		if i < len(info.Args) {
			name = info.Args[i]
		}
		s += fmt.Sprintf(" %s=%d", name, a)
	}
	if r.Flags&FlagHasStr != 0 {
		s += fmt.Sprintf(" %q", r.Str)
	}
	return s
}
