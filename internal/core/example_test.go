package core_test

import (
	"bytes"
	"fmt"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// ExampleSession traces one SPE program and decodes the resulting trace
// records. Tracing is configured per event group, exactly like the
// original PDT's XML configuration.
func ExampleSession() {
	mc := cell.DefaultConfig()
	mc.MemSize = 8 * cell.MiB
	m := cell.NewMachine(mc)

	cfg := core.DefaultTraceConfig()
	cfg.Groups = event.GroupLifecycle | event.GroupMFC // only DMA activity
	cfg.Workload = "example"
	session := core.NewSession(m, cfg)
	session.Attach()

	m.RunMain(func(h cell.Host) {
		src := h.Alloc(256, 16)
		h.Wait(h.Run(0, "reader", func(spu cell.SPU) uint32 {
			spu.Get(0, src, 256, 5)
			spu.WaitTagAll(1 << 5)
			core.UserLog(spu, "not recorded: user group is off")
			return 0
		}))
	})
	if err := m.Run(); err != nil {
		panic(err)
	}

	var buf bytes.Buffer
	if err := session.WriteTrace(&buf); err != nil {
		panic(err)
	}
	f, err := traceio.Parse(buf.Bytes())
	if err != nil {
		panic(err)
	}
	for _, c := range f.Chunks {
		if c.Core == event.CorePPE {
			continue
		}
		recs, _, err := traceio.DecodeChunk(c)
		if err != nil {
			panic(err)
		}
		for _, r := range recs {
			fmt.Println(r.ID)
		}
	}
	// Output:
	// SPE_PROGRAM_START
	// SPE_MFC_GET
	// SPE_WAIT_TAG_ENTER
	// SPE_WAIT_TAG_EXIT
	// SPE_PROGRAM_END
}
