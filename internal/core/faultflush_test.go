package core

import (
	"bytes"
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// spin is a small SPE program that produces enough records to force
// several buffer flushes under a tiny trace buffer.
func spin(spu cell.SPU) uint32 {
	for i := 0; i < 40; i++ {
		spu.Get(0, 0, 128, 1)
		spu.WaitTagAll(1 << 1)
	}
	return 0
}

func TestFlushRetrySucceedsAfterTransientFailure(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.SPEBufferSize = 512 // force many flushes
	mc := cell.DefaultConfig()
	mc.MemSize = 16 * cell.MiB
	m := cell.NewMachine(mc)
	s := NewSession(m, cfg)
	// Fail the first two flush attempts; the retry loop must absorb them
	// without dropping anything.
	fails := 2
	s.InjectFlushFailures(func(spe int, now uint64) bool {
		if fails > 0 {
			fails--
			return true
		}
		return false
	})
	s.Attach()
	m.RunMain(func(h cell.Host) {
		h.Wait(h.Run(0, "spin", spin))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FlushRetries == 0 {
		t.Fatal("no retries recorded despite injected failures")
	}
	if st.FlushFailDrops != 0 || st.Dropped != 0 {
		t.Fatalf("transient failures dropped records: %+v", st)
	}
}

func TestFlushFailureExhaustionDropsExactly(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.SPEBufferSize = 512
	cfg.FlushRetryMax = 2
	cfg.FlushRetryBackoff = 64
	mc := cell.DefaultConfig()
	mc.MemSize = 16 * cell.MiB
	m := cell.NewMachine(mc)
	s := NewSession(m, cfg)
	// Every flush on SPE 0 fails permanently: all its buffered halves are
	// dropped with exact accounting.
	s.InjectFlushFailures(func(spe int, now uint64) bool { return spe == 0 })
	s.Attach()
	m.RunMain(func(h cell.Host) {
		a := h.Run(0, "spin", spin)
		b := h.Run(1, "spin", spin)
		h.Wait(a)
		h.Wait(b)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FlushFailDrops == 0 {
		t.Fatal("permanent flush failure dropped nothing")
	}
	if st.Dropped != st.FlushFailDrops {
		t.Fatalf("Dropped = %d but FlushFailDrops = %d (no other drop source ran)",
			st.Dropped, st.FlushFailDrops)
	}
	// The drop accounting must balance: produced = landed + dropped.
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := traceio.Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	landed := uint64(0)
	for _, c := range f.Chunks {
		if c.Core == event.CorePPE {
			continue
		}
		recs, trunc, err := traceio.DecodeChunk(c)
		if err != nil || trunc {
			t.Fatalf("decode: err=%v trunc=%v", err, trunc)
		}
		landed += uint64(len(recs))
	}
	if landed+st.FlushFailDrops != st.SPERecords {
		t.Fatalf("accounting: %d landed + %d dropped != %d produced",
			landed, st.FlushFailDrops, st.SPERecords)
	}
	// Per-SPE attribution: only SPE 0 lost records, and the trace
	// metadata carries the same numbers the session reports.
	var meta0, metaOther uint64
	for _, d := range f.Meta.Drops {
		if d.SPE == 0 {
			meta0 += d.Count
		} else {
			metaOther += d.Count
		}
	}
	if meta0 != st.FlushFailDrops || metaOther != 0 {
		t.Fatalf("metadata drops (spe0=%d other=%d) disagree with stats (%d)",
			meta0, metaOther, st.FlushFailDrops)
	}
}
