package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/celltrace/pdt/internal/cell"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden trace file")

// goldenTrace produces a fixed, deterministic trace exercising most
// record types.
func goldenTrace(t *testing.T) []byte {
	t.Helper()
	mc := cell.DefaultConfig()
	mc.NumSPEs = 2
	mc.MemSize = 16 * cell.MiB
	m := cell.NewMachine(mc)
	cfg := DefaultTraceConfig()
	cfg.Workload = "golden"
	cfg.Params = map[string]string{"v": "1"}
	s := NewSession(m, cfg)
	s.Attach()
	m.RunMain(func(h cell.Host) {
		src := h.Alloc(4096, 128)
		atomicEA := h.Alloc(8, 8)
		hd := h.Run(0, "golden-prog", func(spu cell.SPU) uint32 {
			spu.Get(0, src, 1024, 0)
			spu.WaitTagAll(1)
			spu.Put(0, src, 512, 1)
			spu.WaitTagAll(1 << 1)
			spu.GetList(2048, []cell.ListElem{{EA: src, Size: 64}}, 2)
			spu.WaitTagAll(1 << 2)
			spu.AtomicAdd(atomicEA, 5)
			User(spu, 9, 1, 2)
			UserLog(spu, "golden")
			spu.WriteOutMbox(0xAB)
			spu.Sndsig(1, 1, 2, 3)
			spu.WaitTagAll(1 << 3)
			return 7
		})
		hd2 := h.Run(1, "golden-sink", func(spu cell.SPU) uint32 {
			if spu.ReadSignal1() == 0 {
				return 1
			}
			return 0
		})
		if h.ReadOutMbox(0) != 0xAB {
			t.Error("mbox wrong")
		}
		h.Wait(hd)
		h.Wait(hd2)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTraceFormatStable guards the on-disk format: any byte change
// to encoding, event IDs, metadata layout, timing model or scheduler
// order shows up here. Regenerate deliberately with
// `go test ./internal/core -run Golden -update-golden` and review the
// diff before committing.
func TestGoldenTraceFormatStable(t *testing.T) {
	got := goldenTrace(t)
	path := filepath.Join("testdata", "golden.pdt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace bytes changed: got %d bytes, golden %d bytes — the file "+
			"format, event table, timing model or schedule changed; if intentional, "+
			"re-run with -update-golden and bump the format version",
			len(got), len(want))
	}
}
