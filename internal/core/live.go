package core

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// liveWriter mirrors the trace onto a second sink while the run is still
// executing: the header and metadata go out up front, every completed
// flush DMA becomes an SPE chunk, and the PPE buffer is drained as
// incremental PPE chunks. The result is a well-formed PDT stream that an
// analyzer.StreamLoader (or a batch load, once the footer lands) can
// consume concurrently with the run — the paper's post-mortem pipeline
// turned into a tail.
//
// Because the live metadata is written before any SPE program has
// started, it carries no clock anchors; instead each run start emits a
// LiveAnchor record in-band and readers rebuild the anchor table from
// those. Drop counts are likewise unknown up front, so a live stream
// never carries Drops metadata — the sealed file Session.WriteTrace
// produces remains the authoritative artifact.
type liveWriter struct {
	tw *traceio.Writer
	// ppeMark is how much of Session.ppeBuf has already been streamed.
	ppeMark int
	err     error
}

// AttachLive mirrors the session's trace onto w while the simulation
// runs. Call it once, before Machine.Run; it does not install the
// instrumentation wrappers (call Attach as usual). The stream stays open
// until CloseLive seals it with a footer; if the process dies first the
// stream is exactly the truncated, footerless shape a crashed writer
// leaves behind, which the streaming loader tolerates.
func (s *Session) AttachLive(w io.Writer) error {
	if s.live != nil {
		return errors.New("core: live stream already attached")
	}
	mc := s.m.Config()
	tw, err := traceio.NewWriter(w, traceio.Header{
		Version:     traceio.Version,
		NumSPEs:     uint8(mc.NumSPEs),
		TimebaseDiv: mc.TimebaseDiv,
		ClockHz:     NominalClockHz,
	})
	if err != nil {
		return err
	}
	meta := traceio.Meta{
		Workload:     s.cfg.Workload,
		Groups:       s.cfg.GroupsString(),
		SPEEventCost: s.cfg.SPEEventCost,
		PPEEventCost: s.cfg.PPEEventCost,
	}
	keys := make([]string, 0, len(s.cfg.Params))
	for k := range s.cfg.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		meta.Params = append(meta.Params, traceio.Param{Name: k, Value: s.cfg.Params[k]})
	}
	if err := tw.WriteMeta(&meta); err != nil {
		return err
	}
	s.live = &liveWriter{tw: tw}
	return nil
}

// LiveErr returns the first error the live sink reported, if any. Live
// write failures never disturb the run itself: the stream just stops.
func (s *Session) LiveErr() error {
	if s.live == nil {
		return nil
	}
	return s.live.err
}

// CloseLive drains the remaining PPE records and seals the live stream
// with a footer. Call it after Machine.Run returns cleanly; after a
// crash, simply don't — the truncated stream is then exactly what a
// dying writer would have left. Closing detaches the live sink.
func (s *Session) CloseLive() error {
	lw := s.live
	if lw == nil {
		return errors.New("core: no live stream attached")
	}
	s.livePPE()
	s.live = nil
	if lw.err != nil {
		return lw.err
	}
	return lw.tw.Close()
}

// livePPE streams the not-yet-sent tail of the PPE buffer as a PPE
// chunk. It runs before every SPE chunk so that StringDef records always
// precede the SPE records whose refs point at them, exactly as the
// sealed file's single up-front PPE chunk guarantees.
func (s *Session) livePPE() {
	lw := s.live
	if lw == nil || lw.err != nil {
		return
	}
	if lw.ppeMark >= len(s.ppeBuf) {
		return
	}
	lw.err = lw.tw.WriteChunk(traceio.Chunk{
		Core: event.CorePPE, AnchorIdx: traceio.NoAnchor,
		Data: s.ppeBuf[lw.ppeMark:],
	})
	lw.ppeMark = len(s.ppeBuf)
}

// liveAnchor publishes a run's clock anchor in-band. The record goes out
// in its own PPE chunk immediately, so the anchor table a streaming
// reader rebuilds is always complete before the first chunk that
// references the new index arrives. Anchor chunks are emitted in
// newSPERun order, which is exactly anchor-index order.
func (s *Session) liveAnchor(spe int, tb uint64, loaded uint32, name string) {
	lw := s.live
	if lw == nil || lw.err != nil {
		return
	}
	s.livePPE()
	if len(name) > event.MaxStrLen {
		name = name[:event.MaxStrLen]
	}
	rec := event.Record{
		ID:    event.LiveAnchor,
		Core:  event.CorePPE,
		Flags: event.FlagHasStr,
		Time:  s.m.Timebase(),
		Args:  []uint64{uint64(spe), tb, uint64(loaded)},
		Str:   name,
	}
	data, err := rec.AppendTo(nil)
	if err != nil {
		panic(fmt.Sprintf("core: live anchor encode: %v", err))
	}
	lw.err = lw.tw.WriteChunk(traceio.Chunk{
		Core: event.CorePPE, AnchorIdx: traceio.NoAnchor, Data: data,
	})
}

// liveFlush streams the landed-but-unsent part of a run's main-memory
// region as an SPE chunk. MFC commands execute strictly in order, so
// everything below the still-in-flight flush DMAs has been copied into
// main memory and is safe to publish; the in-flight tail waits for the
// next flush. Every boundary is a flush boundary, hence record-aligned
// (the decoder skips the zero padding inside).
func (s *Session) liveFlush(r *speRun) {
	lw := s.live
	if lw == nil || lw.err != nil {
		return
	}
	safe := r.regionUsed - r.inFlightBytes[0] - r.inFlightBytes[1]
	if safe <= r.liveMark {
		return
	}
	s.livePPE()
	lw.err = lw.tw.WriteChunk(traceio.Chunk{
		Core:      uint8(r.spe),
		AnchorIdx: r.anchorIdx,
		Data:      s.m.Mem()[r.regionEA+uint64(r.liveMark) : r.regionEA+uint64(safe)],
	})
	r.liveMark = safe
}
