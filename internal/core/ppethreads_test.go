package core

import (
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
)

// TestPPEThreadIdentity checks that each traced PPE thread records under
// its own core byte, keeping per-thread streams individually ordered.
func TestPPEThreadIdentity(t *testing.T) {
	f, _ := traceRun(t, DefaultTraceConfig(), nil, func(h cell.Host) {
		h.Spawn("ppe:second", func(h2 cell.Host) {
			HostUser(h2, 2, 0, 0)
			h2.Compute(1000)
			HostUser(h2, 2, 1, 0)
		})
		HostUser(h, 1, 0, 0)
		h.Compute(5000)
		HostUser(h, 1, 1, 0)
	})
	cores := map[uint8]int{}
	for _, rec := range allRecords(t, f) {
		if rec.ID == event.PPEUserEvent {
			cores[rec.Core]++
		}
	}
	if cores[event.CorePPE] != 2 {
		t.Fatalf("main thread events = %d, want 2", cores[event.CorePPE])
	}
	if cores[event.CorePPE-1] != 2 {
		t.Fatalf("second thread events = %d, want 2 (cores seen: %v)", cores[event.CorePPE-1], cores)
	}
}

// TestManyPPEThreadsExhaustCores verifies the thread-core limit fails
// loudly instead of corrupting streams.
func TestManyPPEThreadsExhaustCores(t *testing.T) {
	mc := cell.DefaultConfig()
	mc.MemSize = 8 * cell.MiB
	m := cell.NewMachine(mc)
	s := NewSession(m, DefaultTraceConfig())
	s.Attach()
	// The wrapper runs when each spawned thread starts, so the panic
	// surfaces out of Machine.Run.
	panicked := false
	func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		m.RunMain(func(h cell.Host) {
			for i := 0; i < 20; i++ {
				h.Spawn("t", func(h2 cell.Host) {})
			}
		})
		_ = m.Run()
	}()
	if !panicked {
		t.Fatal("no panic after exhausting PPE thread cores")
	}
}

func TestCoreName(t *testing.T) {
	for c, want := range map[uint8]string{
		0:                 "SPE0",
		7:                 "SPE7",
		event.CorePPE:     "PPE",
		event.CorePPE - 1: "PPE.1",
		event.CorePPEBase: "PPE.15",
	} {
		if got := event.CoreName(c); got != want {
			t.Errorf("CoreName(%#x) = %q, want %q", c, got, want)
		}
	}
}
