package core

import (
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// NominalClockHz is the modeled processor frequency, used only for
// reporting (all simulation time is in cycles).
const NominalClockHz = 3_200_000_000

// Session is one tracing run: it instruments a machine, accumulates per-
// core buffers while the simulation runs, and serializes a trace file
// afterwards. Create it before Machine.RunMain and call Attach.
type Session struct {
	cfg Config
	m   *cell.Machine

	ppeBuf   []byte // encoded PPE records (host memory)
	ppeCount uint64

	strings map[string]uint64 // interned string -> ref

	runs    []*speRun
	anchors []traceio.Anchor
	drops   map[int]uint64

	// live, when non-nil, mirrors the trace onto a second sink as the
	// run executes; see AttachLive.
	live *liveWriter

	// nextPPECore assigns a distinct record core to every PPE thread so
	// their event streams stay individually ordered (main = CorePPE,
	// then counting down).
	nextPPECore uint8

	// failFlush, when non-nil, is consulted before every flush DMA issue
	// (fault injection); see InjectFlushFailures.
	failFlush func(spe int, now uint64) bool

	// lifetime stats, exposed for the overhead experiments
	speEvents      uint64
	flushes        uint64
	flushCycles    uint64
	flushBytes     uint64
	flushRetries   uint64
	flushFailDrops uint64
}

// NewSession validates cfg and binds a session to m.
func NewSession(m *cell.Machine, cfg Config) *Session {
	cfg.validate()
	if cfg.SPEBufferSize >= m.Config().LocalStore/2 {
		panic("core: SPE trace buffer does not fit the local store")
	}
	return &Session{
		cfg:         cfg,
		m:           m,
		strings:     map[string]uint64{},
		drops:       map[int]uint64{},
		nextPPECore: event.CorePPE,
	}
}

// Config returns the session configuration.
func (s *Session) Config() Config { return s.cfg }

// Attach installs the instrumented wrappers on the machine. Programs
// started after Attach are traced.
func (s *Session) Attach() {
	s.m.SPUWrap = func(u cell.SPU, name string) (cell.SPU, func(uint32)) {
		run := s.newSPERun(u, name)
		t := &TracedSPU{u: u, run: run}
		t.run.emit(event.Record{
			ID:   event.SPEProgramStart,
			Args: []uint64{s.intern(name)},
		})
		return t, t.finish
	}
	s.m.HostWrap = func(u cell.Host) cell.Host {
		if s.nextPPECore < event.CorePPEBase {
			panic("core: too many traced PPE threads")
		}
		core := s.nextPPECore
		s.nextPPECore--
		return &TracedHost{u: u, s: s, core: core}
	}
}

// Detach removes the wrappers; programs started afterwards run untraced.
func (s *Session) Detach() {
	s.m.SPUWrap = nil
	s.m.HostWrap = nil
}

// InjectFlushFailures installs a fault hook consulted before every flush
// DMA issue; returning true fails that attempt. The runtime retries with
// exponential backoff up to Config.FlushRetryMax, then drops the
// bufferful with exact per-SPE accounting. Install before the run starts.
func (s *Session) InjectFlushFailures(hook func(spe int, now uint64) bool) {
	s.failFlush = hook
}

// inWindow reports whether the given cycle falls inside the configured
// recording window (always true when no window is set).
func (s *Session) inWindow(cycle uint64) bool {
	if s.cfg.WindowStart == 0 && s.cfg.WindowEnd == 0 {
		return true
	}
	if cycle < s.cfg.WindowStart {
		return false
	}
	return s.cfg.WindowEnd == 0 || cycle < s.cfg.WindowEnd
}

// intern returns the ref of a string, emitting a StringDef record into the
// PPE buffer on first sight.
func (s *Session) intern(str string) uint64 {
	if len(str) > event.MaxStrLen {
		str = str[:event.MaxStrLen]
	}
	if ref, ok := s.strings[str]; ok {
		return ref
	}
	ref := uint64(len(s.strings) + 1)
	s.strings[str] = ref
	rec := event.Record{
		ID:    event.StringDef,
		Core:  event.CorePPE,
		Flags: event.FlagHasStr,
		Time:  s.m.Timebase(),
		Args:  []uint64{ref},
		Str:   str,
	}
	s.appendPPE(rec)
	return ref
}

// appendPPE encodes a record into the host buffer (no cost model; callers
// charge PPEEventCost).
func (s *Session) appendPPE(rec event.Record) {
	var err error
	s.ppeBuf, err = rec.AppendTo(s.ppeBuf)
	if err != nil {
		panic(fmt.Sprintf("core: PPE record encode: %v", err))
	}
	s.ppeCount++
}

// emitPPE charges the instrumentation cost on the host thread and records
// the event with the current timebase, tagged with the thread's core.
func (s *Session) emitPPE(h cell.Host, threadCore uint8, rec event.Record) {
	if !s.cfg.EventOn(rec.ID) {
		return
	}
	if !s.inWindow(h.Now()) {
		return
	}
	h.Compute(s.cfg.PPEEventCost)
	rec.Core = threadCore
	rec.Time = s.m.Timebase()
	s.appendPPE(rec)
}

// Stats reports tracing-side counters: SPE records captured, PPE records
// captured, flush count, cycles spent flushing (DMA wait included), bytes
// flushed, and records dropped to full main-memory regions.
type Stats struct {
	SPERecords  uint64
	PPERecords  uint64
	Flushes     uint64
	FlushCycles uint64
	FlushBytes  uint64
	Dropped     uint64
	// FlushRetries counts flush attempts re-issued after an injected DMA
	// failure; FlushFailDrops counts records dropped when the retry
	// budget ran out (a subset of Dropped).
	FlushRetries   uint64
	FlushFailDrops uint64
}

// Stats returns the session counters.
func (s *Session) Stats() Stats {
	var dropped uint64
	for _, d := range s.drops {
		dropped += d
	}
	return Stats{
		SPERecords:     s.speEvents,
		PPERecords:     s.ppeCount,
		Flushes:        s.flushes,
		FlushCycles:    s.flushCycles,
		FlushBytes:     s.flushBytes,
		Dropped:        dropped,
		FlushRetries:   s.flushRetries,
		FlushFailDrops: s.flushFailDrops,
	}
}

// WriteTrace serializes the trace. Call after Machine.Run returns; every
// SPE program must have finished (their final flushes happen at program
// end).
func (s *Session) WriteTrace(w io.Writer) error { return s.writeTrace(w, false) }

// WriteCrashTrace serializes a crash-consistent trace after an aborted
// run (Machine.Run returned sim.ErrStopped): unfinished programs are
// allowed, only the bytes their flushes actually landed in main memory
// are written — records still in local-store buffers or mid-DMA are lost,
// as they would be on real hardware — and no footer is emitted, exactly
// the shape a real crash leaves on disk. Parse flags such traces
// Truncated; traceio.Salvage and `pdt-ta doctor` recover them.
func (s *Session) WriteCrashTrace(w io.Writer) error { return s.writeTrace(w, true) }

func (s *Session) writeTrace(w io.Writer, crash bool) error {
	mc := s.m.Config()
	tw, err := traceio.NewWriter(w, traceio.Header{
		Version:     traceio.Version,
		NumSPEs:     uint8(mc.NumSPEs),
		TimebaseDiv: mc.TimebaseDiv,
		ClockHz:     NominalClockHz,
	})
	if err != nil {
		return err
	}
	meta := traceio.Meta{
		Workload:     s.cfg.Workload,
		Groups:       s.cfg.GroupsString(),
		SPEEventCost: s.cfg.SPEEventCost,
		PPEEventCost: s.cfg.PPEEventCost,
		Anchors:      s.anchors,
	}
	// Deterministic metadata: iterate maps in sorted key order so two
	// serializations of the same session are byte-identical.
	spes := make([]int, 0, len(s.drops))
	for spe := range s.drops {
		spes = append(spes, spe)
	}
	sort.Ints(spes)
	for _, spe := range spes {
		if n := s.drops[spe]; n > 0 {
			meta.Drops = append(meta.Drops, traceio.Drop{SPE: spe, Count: n})
		}
	}
	keys := make([]string, 0, len(s.cfg.Params))
	for k := range s.cfg.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		meta.Params = append(meta.Params, traceio.Param{Name: k, Value: s.cfg.Params[k]})
	}
	if err := tw.WriteMeta(&meta); err != nil {
		return err
	}
	// PPE chunk first: it carries the string table other records refer to.
	if len(s.ppeBuf) > 0 {
		err := tw.WriteChunk(traceio.Chunk{
			Core: event.CorePPE, AnchorIdx: traceio.NoAnchor, Data: s.ppeBuf,
		})
		if err != nil {
			return err
		}
	}
	for _, run := range s.runs {
		if !run.finished && !crash {
			return fmt.Errorf("core: SPE %d program %q still running at WriteTo", run.spe, run.name)
		}
		data := s.m.Mem()[run.regionEA : run.regionEA+uint64(run.regionUsed)]
		err := tw.WriteChunk(traceio.Chunk{
			Core: uint8(run.spe), AnchorIdx: run.anchorIdx, Data: data,
		})
		if err != nil {
			return err
		}
	}
	if crash {
		// No footer: the writer died before it could seal the file.
		return nil
	}
	return tw.Close()
}

// WriteFile serializes the trace to a file.
func (s *Session) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
