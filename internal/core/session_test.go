package core

import (
	"bytes"
	"testing"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// traceRun executes main on a small traced machine and returns the parsed
// trace plus the session.
func traceRun(t *testing.T, cfg Config, mutMachine func(*cell.Config), main func(h cell.Host)) (*traceio.File, *Session) {
	t.Helper()
	mc := cell.DefaultConfig()
	mc.MemSize = 16 * cell.MiB
	if mutMachine != nil {
		mutMachine(&mc)
	}
	m := cell.NewMachine(mc)
	s := NewSession(m, cfg)
	s.Attach()
	m.RunMain(main)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := traceio.Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if f.Truncated {
		t.Fatal("fresh trace reported truncated")
	}
	return f, s
}

// allRecords decodes every chunk of f.
func allRecords(t *testing.T, f *traceio.File) []event.Record {
	t.Helper()
	var out []event.Record
	for _, c := range f.Chunks {
		recs, trunc, err := traceio.DecodeChunk(c)
		if err != nil || trunc {
			t.Fatalf("decode chunk core %d: err=%v trunc=%v", c.Core, err, trunc)
		}
		out = append(out, recs...)
	}
	return out
}

func countByID(recs []event.Record) map[event.ID]int {
	m := map[event.ID]int{}
	for _, r := range recs {
		m[r.ID]++
	}
	return m
}

func TestEndToEndTraceCapture(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Workload = "e2e"
	cfg.Params = map[string]string{"n": "4"}
	f, s := traceRun(t, cfg, nil, func(h cell.Host) {
		src := h.Alloc(1024, 16)
		hd := h.Run(2, "worker", func(spu cell.SPU) uint32 {
			spu.Get(0, src, 1024, 1)
			spu.WaitTagAll(1 << 1)
			spu.Compute(500)
			spu.WriteOutMbox(99)
			return 7
		})
		if v := h.ReadOutMbox(2); v != 99 {
			t.Errorf("mbox = %d", v)
		}
		if code := h.Wait(hd); code != 7 {
			t.Errorf("exit = %d", code)
		}
	})
	if f.Meta.Workload != "e2e" || len(f.Meta.Params) != 1 {
		t.Fatalf("meta = %+v", f.Meta)
	}
	if len(f.Meta.Anchors) != 1 || f.Meta.Anchors[0].SPE != 2 || f.Meta.Anchors[0].Program != "worker" {
		t.Fatalf("anchors = %+v", f.Meta.Anchors)
	}
	recs := allRecords(t, f)
	n := countByID(recs)
	for id, want := range map[event.ID]int{
		event.SPEProgramStart:      1,
		event.SPEProgramEnd:        1,
		event.SPEMFCGet:            1,
		event.SPEWaitTagEnter:      1,
		event.SPEWaitTagExit:       1,
		event.SPEWriteOutMboxEnter: 1,
		event.SPEWriteOutMboxExit:  1,
		event.PPESPEStart:          1,
		event.PPEWaitEnter:         1,
		event.PPEWaitExit:          1,
		event.PPEReadOutMboxEnter:  1,
		event.PPEReadOutMboxExit:   1,
	} {
		if n[id] != want {
			t.Errorf("%v count = %d, want %d", id, n[id], want)
		}
	}
	st := s.Stats()
	if st.SPERecords == 0 || st.PPERecords == 0 || st.Flushes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped = %d", st.Dropped)
	}
}

func TestProgramStartEndBracketEverything(t *testing.T) {
	f, _ := traceRun(t, DefaultTraceConfig(), nil, func(h cell.Host) {
		h.Wait(h.Run(0, "p", func(spu cell.SPU) uint32 {
			spu.Compute(100)
			spu.Get(0, 0, 64, 0)
			spu.WaitTagAll(1)
			return 0
		}))
	})
	for _, c := range f.Chunks {
		if c.Core == event.CorePPE {
			continue
		}
		recs, _, err := traceio.DecodeChunk(c)
		if err != nil {
			t.Fatal(err)
		}
		if recs[0].ID != event.SPEProgramStart {
			t.Fatalf("first SPE record = %v", recs[0].ID)
		}
		if recs[len(recs)-1].ID != event.SPEProgramEnd {
			t.Fatalf("last SPE record = %v", recs[len(recs)-1].ID)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Time < recs[i-1].Time {
				t.Fatalf("SPE timestamps not monotonic at %d: %d < %d", i, recs[i].Time, recs[i-1].Time)
			}
		}
	}
}

func TestGroupFilteringReducesTrace(t *testing.T) {
	run := func(groups event.Group) int {
		cfg := DefaultTraceConfig()
		cfg.Groups = groups
		f, _ := traceRun(t, cfg, nil, func(h cell.Host) {
			hd := h.Run(0, "p", func(spu cell.SPU) uint32 {
				for i := 0; i < 10; i++ {
					spu.Get(0, 0, 64, 0)
					spu.WaitTagAll(1)
					spu.WriteOutMbox(uint32(i))
				}
				return 0
			})
			for i := 0; i < 10; i++ {
				h.ReadOutMbox(0)
			}
			h.Wait(hd)
		})
		return len(allRecords(t, f))
	}
	all := run(event.GroupAll)
	mfcOnly := run(event.GroupMFC)
	lifecycleOnly := run(event.GroupLifecycle)
	if !(lifecycleOnly < mfcOnly && mfcOnly < all) {
		t.Fatalf("filtering not monotone: lifecycle=%d mfc=%d all=%d", lifecycleOnly, mfcOnly, all)
	}
	if lifecycleOnly < 2 {
		t.Fatalf("lifecycle events missing: %d", lifecycleOnly)
	}
}

func TestMultipleProgramsPerSPE(t *testing.T) {
	f, _ := traceRun(t, DefaultTraceConfig(), nil, func(h cell.Host) {
		for i := 0; i < 3; i++ {
			h.Wait(h.Run(0, "gen", func(spu cell.SPU) uint32 {
				spu.Compute(100)
				return 0
			}))
		}
	})
	if len(f.Meta.Anchors) != 3 {
		t.Fatalf("anchors = %d, want 3", len(f.Meta.Anchors))
	}
	spe := 0
	for _, c := range f.Chunks {
		if c.Core != event.CorePPE {
			spe++
			if int(c.AnchorIdx) >= len(f.Meta.Anchors) {
				t.Fatalf("chunk anchor %d out of range", c.AnchorIdx)
			}
		}
	}
	if spe != 3 {
		t.Fatalf("SPE chunks = %d, want 3", spe)
	}
}

func TestBufferFlushingSmallBuffer(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.SPEBufferSize = 512 // force many flushes
	cfg.DoubleBuffered = false
	f, s := traceRun(t, cfg, nil, func(h cell.Host) {
		h.Wait(h.Run(0, "spin", func(spu cell.SPU) uint32 {
			for i := 0; i < 200; i++ {
				spu.Get(0, 0, 64, 0)
				spu.WaitTagAll(1)
			}
			return 0
		}))
	})
	st := s.Stats()
	if st.Flushes < 10 {
		t.Fatalf("flushes = %d, want many with a 512B buffer", st.Flushes)
	}
	recs := allRecords(t, f)
	n := countByID(recs)
	if n[event.SPEMFCGet] != 200 {
		t.Fatalf("GET records = %d, want 200 (no loss)", n[event.SPEMFCGet])
	}
	if n[event.SPETraceFlush] == 0 {
		t.Fatal("no flush overhead records")
	}
}

func TestDoubleBufferedFlushCheaper(t *testing.T) {
	run := func(db bool) uint64 {
		cfg := DefaultTraceConfig()
		cfg.SPEBufferSize = 1024
		cfg.DoubleBuffered = db
		_, s := traceRun(t, cfg, nil, func(h cell.Host) {
			h.Wait(h.Run(0, "spin", func(spu cell.SPU) uint32 {
				for i := 0; i < 300; i++ {
					spu.Get(0, 0, 64, 0)
					spu.WaitTagAll(1)
					spu.Compute(2000) // give async flushes time to complete
				}
				return 0
			}))
		})
		return s.Stats().FlushCycles
	}
	single := run(false)
	double := run(true)
	if double >= single {
		t.Fatalf("double-buffered flush cycles (%d) not below single (%d)", double, single)
	}
}

func TestDropsWhenMainRegionFull(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.SPEBufferSize = 512
	cfg.DoubleBuffered = false
	cfg.MainBufferPerSPE = 1024 // tiny: fills after ~2 flushes
	_, s := traceRun(t, cfg, nil, func(h cell.Host) {
		h.Wait(h.Run(0, "noisy", func(spu cell.SPU) uint32 {
			for i := 0; i < 500; i++ {
				spu.Get(0, 0, 64, 0)
				spu.WaitTagAll(1)
			}
			return 0
		}))
	})
	st := s.Stats()
	if st.Dropped == 0 {
		t.Fatal("no drops despite tiny main region")
	}
}

func TestDropsRecordedInMeta(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.SPEBufferSize = 512
	cfg.DoubleBuffered = false
	cfg.MainBufferPerSPE = 1024
	f, _ := traceRun(t, cfg, nil, func(h cell.Host) {
		h.Wait(h.Run(0, "noisy", func(spu cell.SPU) uint32 {
			for i := 0; i < 500; i++ {
				spu.Get(0, 0, 64, 0)
				spu.WaitTagAll(1)
			}
			return 0
		}))
	})
	if len(f.Meta.Drops) != 1 || f.Meta.Drops[0].Count == 0 {
		t.Fatalf("meta drops = %+v", f.Meta.Drops)
	}
}

func TestStringInterning(t *testing.T) {
	f, _ := traceRun(t, DefaultTraceConfig(), nil, func(h cell.Host) {
		for i := 0; i < 2; i++ {
			h.Wait(h.Run(0, "same-name", func(spu cell.SPU) uint32 { return 0 }))
		}
	})
	recs := allRecords(t, f)
	defs := 0
	for _, r := range recs {
		if r.ID == event.StringDef && r.Str == "same-name" {
			defs++
		}
	}
	if defs != 1 {
		t.Fatalf("StringDef for repeated name = %d, want 1 (interned)", defs)
	}
}

func TestUserEventsAndLogs(t *testing.T) {
	f, _ := traceRun(t, DefaultTraceConfig(), nil, func(h cell.Host) {
		HostUser(h, 1, 10, 20)
		HostUserLog(h, "host phase")
		h.Wait(h.Run(0, "u", func(spu cell.SPU) uint32 {
			User(spu, 42, 1, 2)
			UserLog(spu, "spu phase")
			return 0
		}))
	})
	recs := allRecords(t, f)
	n := countByID(recs)
	if n[event.SPEUserEvent] != 1 || n[event.SPEUserLog] != 1 ||
		n[event.PPEUserEvent] != 1 || n[event.PPEUserLog] != 1 {
		t.Fatalf("user events = %+v", n)
	}
	for _, r := range recs {
		if r.ID == event.SPEUserLog && r.Str != "spu phase" {
			t.Fatalf("SPE log = %q", r.Str)
		}
	}
}

func TestUserHelpersNoopUntraced(t *testing.T) {
	mc := cell.DefaultConfig()
	mc.MemSize = 4 * cell.MiB
	m := cell.NewMachine(mc)
	m.RunMain(func(h cell.Host) {
		HostUser(h, 1, 2, 3) // must not panic
		HostUserLog(h, "x")
		h.Wait(h.Run(0, "plain", func(spu cell.SPU) uint32 {
			User(spu, 1, 2, 3)
			UserLog(spu, "y")
			return 0
		}))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTracingCostsCycles(t *testing.T) {
	run := func(traced bool) uint64 {
		mc := cell.DefaultConfig()
		mc.MemSize = 8 * cell.MiB
		m := cell.NewMachine(mc)
		if traced {
			s := NewSession(m, DefaultTraceConfig())
			s.Attach()
		}
		m.RunMain(func(h cell.Host) {
			h.Wait(h.Run(0, "w", func(spu cell.SPU) uint32 {
				for i := 0; i < 100; i++ {
					spu.Get(0, 0, 128, 0)
					spu.WaitTagAll(1)
				}
				return 0
			}))
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Now()
	}
	plain := run(false)
	traced := run(true)
	if traced <= plain {
		t.Fatalf("traced run (%d) not slower than plain (%d)", traced, plain)
	}
}

func TestAppLSLimit(t *testing.T) {
	cfg := DefaultTraceConfig()
	var limit int
	traceRun(t, cfg, nil, func(h cell.Host) {
		h.Wait(h.Run(0, "ls", func(spu cell.SPU) uint32 {
			if ts, ok := spu.(*TracedSPU); ok {
				limit = ts.AppLSLimit()
			}
			return 0
		}))
	})
	want := 256*cell.KiB - cfg.SPEBufferSize
	if limit != want {
		t.Fatalf("AppLSLimit = %d, want %d", limit, want)
	}
}

func TestDetachStopsTracing(t *testing.T) {
	mc := cell.DefaultConfig()
	mc.MemSize = 8 * cell.MiB
	m := cell.NewMachine(mc)
	s := NewSession(m, DefaultTraceConfig())
	s.Attach()
	s.Detach()
	m.RunMain(func(h cell.Host) {
		h.Wait(h.Run(0, "x", func(spu cell.SPU) uint32 { return 0 }))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SPERecords != 0 || st.PPERecords != 0 {
		t.Fatalf("detached session recorded: %+v", st)
	}
}

func TestSessionRejectsOversizeBuffer(t *testing.T) {
	mc := cell.DefaultConfig()
	m := cell.NewMachine(mc)
	cfg := DefaultTraceConfig()
	cfg.SPEBufferSize = 128 * cell.KiB // half the LS
	defer func() {
		if recover() == nil {
			t.Fatal("oversize buffer accepted")
		}
	}()
	NewSession(m, cfg)
}

func TestWriteTraceWhileRunningFails(t *testing.T) {
	mc := cell.DefaultConfig()
	mc.MemSize = 8 * cell.MiB
	m := cell.NewMachine(mc)
	s := NewSession(m, DefaultTraceConfig())
	s.Attach()
	m.RunMain(func(h cell.Host) {
		h.Run(0, "forever", func(spu cell.SPU) uint32 {
			spu.Compute(1000)
			// Try to serialize mid-run: the run is not finished.
			var buf bytes.Buffer
			if err := s.WriteTrace(&buf); err == nil {
				t.Error("WriteTrace succeeded with a running program")
			}
			return 0
		})
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
