package core

import (
	"fmt"

	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
	"github.com/celltrace/pdt/internal/core/traceio"
)

// maxFlushDMA is the largest single transfer a buffer flush issues (the
// architectural MFC limit).
const maxFlushDMA = 16 * 1024

// speRun is the tracing state of one SPE program execution: a record
// buffer resident in the top of the simulated local store, flushed to a
// per-run main-memory region by real simulated DMA, exactly as the paper's
// PDT flushed its local-store buffer. The flush DMA and the cycles spent
// waiting for it are the tracing perturbation the paper measures.
type speRun struct {
	s    *Session
	u    cell.SPU
	spe  int
	name string

	anchorIdx    uint16
	decrLoaded   uint32
	regionEA     uint64
	regionSize   int
	regionUsed   int
	lsBase       int // buffer base offset in local store
	halfSize     int // buffer (or half-buffer) size
	half         int // active half: 0 or 1 (always 0 when single-buffered)
	used         int // bytes used in the active half
	recsInHalf   uint64
	recsInRegion uint64  // records flushed since the last wrap
	inFlight     [2]bool // a flush DMA for this half is outstanding
	// inFlightBytes is the region footprint of each half's outstanding
	// flush; the live stream may only publish bytes below all of them.
	inFlightBytes [2]int
	// liveMark is the region offset already published to the live stream.
	liveMark    int
	finished    bool
	stoppedFull bool // main region exhausted; drop further records
}

// newSPERun allocates the main-memory region, records the clock anchor,
// and prepares the local-store buffer.
func (s *Session) newSPERun(u cell.SPU, name string) *speRun {
	spe := u.Index()
	tb, loaded := s.m.SPE(spe).DecrAnchor()
	run := &speRun{
		s:          s,
		u:          u,
		spe:        spe,
		name:       name,
		anchorIdx:  uint16(len(s.anchors)),
		decrLoaded: loaded,
		regionEA:   s.m.Alloc(s.cfg.MainBufferPerSPE, 128),
		regionSize: s.cfg.MainBufferPerSPE,
		lsBase:     len(u.LS()) - s.cfg.SPEBufferSize,
		halfSize:   s.cfg.SPEBufferSize,
	}
	if s.cfg.DoubleBuffered {
		run.halfSize = s.cfg.SPEBufferSize / 2
	}
	s.anchors = append(s.anchors, traceio.Anchor{
		SPE: spe, Timebase: tb, Loaded: loaded, Program: name,
	})
	s.runs = append(s.runs, run)
	s.liveAnchor(spe, tb, loaded, name)
	return run
}

// elapsed returns the decrementer ticks elapsed since the anchor.
func (r *speRun) elapsed() uint64 {
	return uint64(r.decrLoaded - r.u.ReadDecr())
}

// halfBase returns the local-store offset of the given half.
func (r *speRun) halfBase(half int) int { return r.lsBase + half*r.halfSize }

// emit records one event if its type is enabled, charging the
// instrumentation cost and flushing when the buffer fills.
func (r *speRun) emit(rec event.Record) {
	if r.finished {
		panic(fmt.Sprintf("core: SPE %d emitted %s after program end", r.spe, rec.ID))
	}
	if !r.s.cfg.EventOn(rec.ID) {
		return
	}
	if !r.s.inWindow(r.u.Now()) {
		return
	}
	r.u.Compute(r.s.cfg.SPEEventCost)
	if r.stoppedFull {
		r.s.drops[r.spe]++
		return
	}
	rec.Core = uint8(r.spe)
	rec.Flags |= event.FlagDecrTime
	rec.Time = r.elapsed()
	size := rec.EncodedSize()
	if r.used+size > r.halfSize {
		r.flush(false)
		if r.stoppedFull {
			r.s.drops[r.spe]++
			return
		}
	}
	if size > r.halfSize {
		panic("core: record larger than the SPE trace buffer half")
	}
	ls := r.u.LS()
	base := r.halfBase(r.half)
	buf, err := rec.AppendTo(ls[base+r.used : base+r.used : base+r.halfSize])
	if err != nil {
		panic(fmt.Sprintf("core: SPE record encode: %v", err))
	}
	r.used += len(buf)
	r.recsInHalf++
	r.s.speEvents++
}

// flushTag returns the MFC tag reserved for flushes of the given half.
func (r *speRun) flushTag(half int) int {
	if half == 0 {
		return r.s.cfg.FlushTagA
	}
	return r.s.cfg.FlushTagB
}

// flushPermitted consults the session's injected-failure hook before a
// flush DMA issues. On failure it retries with exponential backoff
// (busy-waiting on the SPU, as the real runtime would spin re-issuing the
// command) up to Config.FlushRetryMax attempts. It returns false when the
// whole retry budget failed; the caller then applies the drop policy.
func (r *speRun) flushPermitted() bool {
	hook := r.s.failFlush
	if hook == nil || !hook(r.spe, r.u.Now()) {
		return true
	}
	backoff := r.s.cfg.flushRetryBackoff()
	for attempt := 0; attempt < r.s.cfg.flushRetryMax(); attempt++ {
		r.u.Compute(backoff)
		backoff *= 2
		r.s.flushRetries++
		if !hook(r.spe, r.u.Now()) {
			return true
		}
	}
	return false
}

// flush DMAs the active half to the main-memory region. Single-buffered
// mode waits for the DMA; double-buffered mode issues it asynchronously
// and only waits when the target half is still in flight from last time.
// final forces a synchronous drain of everything outstanding.
func (r *speRun) flush(final bool) {
	start := r.u.Now()
	if r.used > 0 {
		// Pad to a legal DMA length (multiple of 16); zero bytes are
		// skipped by the chunk decoder.
		padded := (r.used + 15) / 16 * 16
		ls := r.u.LS()
		base := r.halfBase(r.half)
		for i := r.used; i < padded; i++ {
			ls[base+i] = 0
		}
		if r.regionUsed+padded > r.regionSize && r.s.cfg.WrapMain {
			// Wrap mode: restart the region, keeping only the records
			// written from here on (the most recent window). Everything
			// flushed before the wrap is discarded and counted.
			// A flush for the other half may still target the old
			// region tail; drain it before reusing the space.
			for h := 0; h < 2; h++ {
				if r.inFlight[h] {
					r.u.WaitTagAll(1 << uint(r.flushTag(h)))
					r.inFlight[h] = false
					r.inFlightBytes[h] = 0
				}
			}
			r.s.drops[r.spe] += r.recsInRegion
			r.recsInRegion = 0
			r.regionUsed = 0
			// The live stream restarts with the region: anything already
			// published before the wrap stays in the stream even though
			// the sealed file will drop it (live tails of wrap-mode runs
			// are a superset of the final trace).
			r.liveMark = 0
		}
		if r.regionUsed+padded > r.regionSize {
			// Main region exhausted: drop this bufferful.
			r.s.drops[r.spe] += r.recsInHalf
			r.stoppedFull = true
			r.used = 0
			r.recsInHalf = 0
		} else if !r.flushPermitted() {
			// Injected flush failure with the retry budget exhausted:
			// drop-newest — this bufferful is lost and counted exactly,
			// but the failure is transient, so tracing continues.
			r.s.drops[r.spe] += r.recsInHalf
			r.s.flushFailDrops += r.recsInHalf
			r.used = 0
			r.recsInHalf = 0
		} else {
			// A flush can exceed the 16 KiB architectural DMA limit
			// (large trace buffers): split it into maximal transfers on
			// the same tag.
			for off := 0; off < padded; off += maxFlushDMA {
				sz := padded - off
				if sz > maxFlushDMA {
					sz = maxFlushDMA
				}
				r.u.Put(base+off, r.regionEA+uint64(r.regionUsed+off), sz, r.flushTag(r.half))
			}
			r.regionUsed += padded
			r.inFlight[r.half] = true
			r.inFlightBytes[r.half] = padded
			r.s.flushes++
			r.s.flushBytes += uint64(padded)
			r.recsInRegion += r.recsInHalf
			flushedBytes := r.used
			r.used = 0
			r.recsInHalf = 0
			if r.s.cfg.DoubleBuffered && !final {
				// Switch halves; wait only if the next half's previous
				// flush has not completed.
				r.half = 1 - r.half
				if r.inFlight[r.half] {
					r.u.WaitTagAll(1 << uint(r.flushTag(r.half)))
					r.inFlight[r.half] = false
					r.inFlightBytes[r.half] = 0
				}
			} else {
				r.u.WaitTagAll(1 << uint(r.flushTag(r.half)))
				r.inFlight[r.half] = false
				r.inFlightBytes[r.half] = 0
			}
			if !final {
				cycles := r.u.Now() - start
				r.s.flushCycles += cycles
				// Record PDT's own overhead (into the fresh buffer), as
				// the paper's tool does. Skipped on the final drain:
				// there is no later flush to carry the record out.
				r.emit(event.Record{
					ID:   event.SPETraceFlush,
					Args: []uint64{uint64(flushedBytes), cycles},
				})
			}
		}
	}
	if final {
		// Drain any outstanding flush on the other half too.
		for h := 0; h < 2; h++ {
			if r.inFlight[h] {
				r.u.WaitTagAll(1 << uint(r.flushTag(h)))
				r.inFlight[h] = false
				r.inFlightBytes[h] = 0
			}
		}
		r.s.flushCycles += r.u.Now() - start
	}
	r.s.liveFlush(r)
}
