package core

import (
	"github.com/celltrace/pdt/internal/cell"
	"github.com/celltrace/pdt/internal/core/event"
)

// TracedHost is the instrumented PPE runtime (the model's instrumented
// libspe2). It implements cell.Host and records GroupHost events into the
// session's host buffer.
type TracedHost struct {
	u    cell.Host
	s    *Session
	core uint8 // this thread's record core (CorePPE, CorePPE-1, ...)
}

var _ cell.Host = (*TracedHost)(nil)

// Unwrap returns the raw Host.
func (t *TracedHost) Unwrap() cell.Host { return t.u }

func (t *TracedHost) NumSPEs() int                 { return t.u.NumSPEs() }
func (t *TracedHost) Machine() *cell.Machine       { return t.u.Machine() }
func (t *TracedHost) Mem() []byte                  { return t.u.Mem() }
func (t *TracedHost) Alloc(size, align int) uint64 { return t.u.Alloc(size, align) }
func (t *TracedHost) Now() uint64                  { return t.u.Now() }
func (t *TracedHost) Timebase() uint64             { return t.u.Timebase() }
func (t *TracedHost) Compute(cycles uint64)        { t.u.Compute(cycles) }

func (t *TracedHost) Run(spe int, name string, prog cell.SPUProgram) *cell.SPEHandle {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPESPEStart,
		Args: []uint64{uint64(spe), t.s.intern(name)}})
	return t.u.Run(spe, name, prog)
}

func (t *TracedHost) Wait(h *cell.SPEHandle) uint32 {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEWaitEnter,
		Args: []uint64{uint64(h.SPE().Index())}})
	code := t.u.Wait(h)
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEWaitExit,
		Args: []uint64{uint64(h.SPE().Index()), uint64(code)}})
	return code
}

func (t *TracedHost) WriteInMbox(spe int, v uint32) {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEWriteInMboxEnter,
		Args: []uint64{uint64(spe), uint64(v)}})
	t.u.WriteInMbox(spe, v)
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEWriteInMboxExit,
		Args: []uint64{uint64(spe), uint64(v)}})
}

func (t *TracedHost) TryWriteInMbox(spe int, v uint32) bool {
	return t.u.TryWriteInMbox(spe, v)
}

func (t *TracedHost) ReadOutMbox(spe int) uint32 {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEReadOutMboxEnter,
		Args: []uint64{uint64(spe)}})
	v := t.u.ReadOutMbox(spe)
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEReadOutMboxExit,
		Args: []uint64{uint64(spe), uint64(v)}})
	return v
}

func (t *TracedHost) TryReadOutMbox(spe int) (uint32, bool) {
	return t.u.TryReadOutMbox(spe)
}

func (t *TracedHost) ReadOutIntrMbox(spe int) uint32 {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEReadIntrMboxEnter,
		Args: []uint64{uint64(spe)}})
	v := t.u.ReadOutIntrMbox(spe)
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEReadIntrMboxExit,
		Args: []uint64{uint64(spe), uint64(v)}})
	return v
}

func (t *TracedHost) WriteSignal1(spe int, v uint32) {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEWriteSignal,
		Args: []uint64{uint64(spe), 1, uint64(v)}})
	t.u.WriteSignal1(spe, v)
}

func (t *TracedHost) WriteSignal2(spe int, v uint32) {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEWriteSignal,
		Args: []uint64{uint64(spe), 2, uint64(v)}})
	t.u.WriteSignal2(spe, v)
}

func (t *TracedHost) DMAGet(spe int, lsOff int, ea uint64, size int, tag int) {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEDMAGet,
		Args: []uint64{uint64(spe), uint64(lsOff), ea, uint64(size), uint64(tag)}})
	t.u.DMAGet(spe, lsOff, ea, size, tag)
}

func (t *TracedHost) DMAPut(spe int, lsOff int, ea uint64, size int, tag int) {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEDMAPut,
		Args: []uint64{uint64(spe), uint64(lsOff), ea, uint64(size), uint64(tag)}})
	t.u.DMAPut(spe, lsOff, ea, size, tag)
}

func (t *TracedHost) DMAWaitTagAll(spe int, mask uint32) {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEWaitTagEnter,
		Args: []uint64{uint64(spe), uint64(mask)}})
	t.u.DMAWaitTagAll(spe, mask)
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEWaitTagExit,
		Args: []uint64{uint64(spe), uint64(mask)}})
}

func (t *TracedHost) AtomicCAS(ea uint64, old, new uint64) bool {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEAtomicEnter, Args: []uint64{atomicOpCAS, ea}})
	ok := t.u.AtomicCAS(ea, old, new)
	var res uint64
	if ok {
		res = 1
	}
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEAtomicExit, Args: []uint64{atomicOpCAS, res}})
	return ok
}

func (t *TracedHost) AtomicAdd(ea uint64, delta uint64) uint64 {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEAtomicEnter, Args: []uint64{atomicOpAdd, ea}})
	v := t.u.AtomicAdd(ea, delta)
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEAtomicExit, Args: []uint64{atomicOpAdd, v}})
	return v
}

func (t *TracedHost) Spawn(name string, fn func(h cell.Host)) { t.u.Spawn(name, fn) }

// UserEvent records an application-defined PPE point event.
func (t *TracedHost) UserEvent(id uint32, a0, a1 uint64) {
	t.s.emitPPE(t.u, t.core, event.Record{ID: event.PPEUserEvent, Args: []uint64{uint64(id), a0, a1}})
}

// UserLog records an application-defined PPE string annotation.
func (t *TracedHost) UserLog(msg string) {
	if len(msg) > event.MaxStrLen {
		msg = msg[:event.MaxStrLen]
	}
	if !t.s.cfg.EventOn(event.PPEUserLog) {
		return
	}
	t.u.Compute(t.s.cfg.PPEEventCost)
	t.s.appendPPE(event.Record{
		ID: event.PPEUserLog, Core: t.core, Flags: event.FlagHasStr,
		Time: t.s.m.Timebase(), Str: msg,
	})
}

// HostUserTracer is probed by the HostUser helpers.
type HostUserTracer interface {
	UserEvent(id uint32, a0, a1 uint64)
	UserLog(msg string)
}

// HostUser records an application event if h is traced; no-op otherwise.
func HostUser(h cell.Host, id uint32, a0, a1 uint64) {
	if t, ok := h.(HostUserTracer); ok {
		t.UserEvent(id, a0, a1)
	}
}

// HostUserLog records a string annotation if h is traced.
func HostUserLog(h cell.Host, msg string) {
	if t, ok := h.(HostUserTracer); ok {
		t.UserLog(msg)
	}
}
